#!/usr/bin/env python3
"""Chrome-trace export validator (CI smoke for src/obs).

Checks that a trace exported by QueryEngine::ExportChromeTrace (e.g. by
`throughput_concurrent --mixed --smoke` with AQE_TRACE_JSON set) is a
well-formed trace-event-format file a viewer will actually load:

  - parses as JSON with a non-empty "traceEvents" array
  - the rings lost no events ("otherData.dropped_lost" == 0): CI sizes
    the rings for the smoke workload (AQE_TRACE_RING_EVENTS), so a *lost*
    event means either the sizing or the ring accounting regressed.
    "dropped_sampled" (deliberate 1-in-N decimation of bulk morsel/slice
    events once a ring has wrapped) is allowed — it is the saturation
    behavior working as designed, not data loss
  - every event carries the required keys for its phase type
  - complete events ("X") have numeric ts and dur >= 0
  - per-worker thread_name metadata is present
  - the engine's span vocabulary shows up (slices at minimum; morsels,
    admission waits etc. depend on workload timing)
  - per-query flow events are well-formed: every flow id that starts
    ("s") also finishes ("f"), with binding points on real events

Usage: check_trace.py trace.json   (exit 0 = valid, 1 = report + fail)
"""

import json
import sys

REQUIRED_BY_PHASE = {
    "X": ("name", "pid", "tid", "ts", "dur"),
    "i": ("name", "pid", "tid", "ts"),
    "M": ("name", "pid", "args"),
    "s": ("name", "id", "pid", "tid", "ts"),
    "t": ("name", "id", "pid", "tid", "ts"),
    "f": ("name", "id", "pid", "tid", "ts"),
}


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} trace.json", file=sys.stderr)
        return 2
    path = sys.argv[1]
    errors = []
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            print(f"trace check FAILED: {path} is not valid JSON: {e}")
            return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"trace check FAILED: no traceEvents array in {path}")
        return 1

    other = doc.get("otherData", {})
    for key in ("dropped", "dropped_sampled", "dropped_lost"):
        if not isinstance(other.get(key), int):
            errors.append(
                f"otherData.{key} missing or non-integer: {other.get(key)!r}")
    dropped = other.get("dropped")
    lost = other.get("dropped_lost")
    sampled = other.get("dropped_sampled")
    if isinstance(dropped, int) and isinstance(lost, int) \
            and isinstance(sampled, int):
        if sampled + lost != dropped:
            errors.append(
                f"otherData drop split inconsistent: sampled {sampled} + "
                f"lost {lost} != dropped {dropped}")
        if lost > 0:
            errors.append(
                f"trace rings lost {lost} events (recorded "
                f"{other.get('recorded')}, {sampled} decimated); the smoke "
                f"run must not lose critical events — grow "
                f"AQE_TRACE_RING_EVENTS or fix the ring accounting")

    names = set()
    phases = {}
    thread_names = 0
    flows = {}  # id -> set of flow phases seen
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in REQUIRED_BY_PHASE:
            errors.append(f"event {i}: unexpected phase {ph!r}")
            continue
        phases[ph] = phases.get(ph, 0) + 1
        for key in REQUIRED_BY_PHASE[ph]:
            if key not in ev:
                errors.append(f"event {i} (ph={ph}): missing key {key!r}")
        if ph == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)):
                errors.append(f"event {i}: non-numeric ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i}: bad dur {dur!r}")
            names.add(ev.get("name"))
        elif ph == "i":
            names.add(ev.get("name"))
        elif ph == "M":
            if ev.get("name") == "thread_name":
                thread_names += 1
        else:  # flow point
            flows.setdefault(ev.get("id"), set()).add(ph)

    if phases.get("X", 0) == 0:
        errors.append("no complete ('X') span events")
    if thread_names == 0:
        errors.append("no thread_name metadata (per-worker tracks)")
    if "slice" not in names:
        errors.append(f"no task-slice spans (names seen: {sorted(names)})")
    if not flows:
        errors.append("no per-query flow events")
    else:
        # Every flow opens with 's' (the exporter promotes the first
        # surviving point); 'f' can be lost to ring wraparound for
        # long-finished queries, but at least one query must complete.
        for flow_id, seen in flows.items():
            if "s" not in seen:
                errors.append(f"flow {flow_id!r}: no start ('s') point")
        if not any("f" in seen for seen in flows.values()):
            errors.append("no flow has a finish ('f') point")

    if errors:
        print(f"trace check FAILED for {path}:")
        for e in errors[:20]:
            print(f"  {e}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        return 1
    print(f"trace check passed: {len(events)} events, 0 lost, "
          f"{other.get('dropped_sampled', 0)} decimated "
          f"({phases.get('X', 0)} spans, {phases.get('i', 0)} instants, "
          f"{len(flows)} query flows, {thread_names} worker tracks), "
          f"span names: {sorted(n for n in names if n)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
