#!/usr/bin/env python3
"""Perf-regression smoke gate.

Runs the dispatch microbenchmark and the string-predicate benchmark in
--smoke mode and checks the performance *ratios* they report (fused-tier
speedup over the plain switch interpreter, SIMD speedup over the forced
scalar tier) against the floors in ci/perf_floors.json. Ratios are taken
within a single run, so the absolute speed of the CI machine cancels out;
the floors are deliberately tolerant (see the JSON) to survive noisy
shared runners while still catching the failure modes that matter: a
superinstruction tier silently stops firing, the SIMD dispatch falls back
to scalar, or a translator change pessimizes the IR the JIT compiles.

Usage: check_perf_floors.py [build_dir]   (default: build)

Exits 0 on pass or on non-x86 hosts (the SIMD tiers and the tuned floors
are x86-specific); exits 1 with a per-rule report on regression. A failing
rule is retried once with a fresh benchmark run before it counts.
"""

import json
import os
import platform
import subprocess
import sys


def run_json_lines(cmd, cwd, env=None):
    """Runs cmd and returns the parsed JSON-line records from its stdout."""
    full_env = dict(os.environ)
    if env:
        full_env.update(env)
    proc = subprocess.run(
        cmd, cwd=cwd, env=full_env, stdout=subprocess.PIPE, check=True,
        text=True, timeout=600)
    records = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line.startswith("{"):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                pass
    return records


def find(records, **keys):
    for r in records:
        if all(r.get(k) == v for k, v in keys.items()):
            return r
    return None


def check_micro(build, rules, failures):
    bench = os.path.join("bench", "micro_vm_dispatch")
    recs = run_json_lines([bench, "--smoke"], cwd=build)
    retried = None
    for rule in rules:
        # Four rule shapes: fused-tier speedups over the switch baseline,
        # and the three observability overhead floors (traced/untraced,
        # profiled/unprofiled, and instrumented/bare resource accounting).
        if "min_speedup_vs_switch" in rule:
            field, want = "speedup_vs_switch", rule["min_speedup_vs_switch"]
        elif "min_ratio_vs_untraced" in rule:
            field, want = "ratio_vs_untraced", rule["min_ratio_vs_untraced"]
        elif "min_ratio_vs_bare" in rule:
            field, want = "ratio_vs_bare", rule["min_ratio_vs_bare"]
        else:
            field, want = ("ratio_vs_unprofiled",
                           rule["min_ratio_vs_unprofiled"])
        key = dict(kernel=rule["kernel"], config=rule["config"])
        rec = find(recs, **key)
        got = rec[field] if rec else 0.0
        if got < want:
            # One retry with a fresh run: --smoke budgets are short enough
            # that a scheduler hiccup can dent a single measurement.
            if retried is None:
                retried = run_json_lines([bench, "--smoke"], cwd=build)
            rec2 = find(retried, **key)
            got = max(got, rec2[field] if rec2 else 0.0)
        status = "ok" if got >= want else "FAIL"
        print(f"  [{status}] micro_vm_dispatch {rule['kernel']}/"
              f"{rule['config']}: {field} {got:.2f} (floor {want})")
        if got < want:
            failures.append(f"micro_vm_dispatch {key}: {got:.2f} < {want}")


def check_strings_simd(build, simd, rules, probe, failures):
    bench = os.path.join("bench", "string_predicates")
    if simd and simd[0].get("simd") == "scalar":
        print("  [skip] string_predicates: no SIMD tier on this CPU")
        return
    scalar = run_json_lines([bench, "--smoke"], cwd=build,
                            env={"AQE_SIMD": "scalar"})
    # Pure-kernel floor: the default run's summary carries the directly
    # measured BitmapProbeSelI32 speedup (active tier vs forced scalar).
    summary = next((r["summary"] for r in simd if "summary" in r), {})
    got = summary.get("probe_kernel_speedup", 0.0)
    want = probe["min_speedup"]
    status = "ok" if got >= want else "FAIL"
    print(f"  [{status}] string_predicates probe kernel: "
          f"simd speedup {got:.2f} (floor {want})")
    if got < want:
        failures.append(f"string_predicates probe_kernel: {got:.2f} < {want}")
    for rule in rules:
        want = rule["min_scalar_over_simd_ns"]
        key = dict(workload=rule["workload"], path=rule["path"],
                   engine=rule["engine"])
        a, b = find(simd, **key), find(scalar, **key)
        got = (b["ns_per_row"] / a["ns_per_row"]) if a and b else 0.0
        status = "ok" if got >= want else "FAIL"
        print(f"  [{status}] string_predicates {rule['workload']}/"
              f"{rule['path']}/{rule['engine']}: simd speedup {got:.2f} "
              f"(floor {want})")
        if got < want:
            failures.append(f"string_predicates {key}: {got:.2f} < {want}")


def check_strings_index(simd, rules, failures):
    """Index access-path floors (src/index/): within-run ratios from the
    default string_predicates run's summary record. Unlike the SIMD floors
    these hold on any CPU — pruning is a scheduling decision, not a kernel
    tier — so there is no scalar-host skip."""
    summary = next((r["summary"] for r in simd if "summary" in r), {})
    checks = [
        ("index_over_call", summary.get("index_over_call", 0.0),
         rules["min_index_over_call"], True),
        ("zonemap_selected_fraction",
         summary.get("zonemap_selected_fraction", 1.0),
         rules["max_zonemap_selected_fraction"], False),
        ("zonemap_speedup", summary.get("zonemap_speedup", 0.0),
         rules["min_zonemap_speedup"], True),
    ]
    for name, got, bound, is_floor in checks:
        ok = got >= bound if is_floor else got < bound
        status = "ok" if ok else "FAIL"
        rel = "floor" if is_floor else "ceiling"
        print(f"  [{status}] string_predicates index {name}: "
              f"{got:.2f} ({rel} {bound})")
        if not ok:
            failures.append(
                f"string_predicates index {name}: {got:.2f} vs {rel} {bound}")


def load_metrics_snapshot(path):
    """Loads and structurally validates a MetricsSnapshot::ToJson() dump.

    Shared with ci/check_metrics_endpoint.py. Raises ValueError on any
    structural problem: the C++ serializer promises unique keys per
    section (sections are emitted in a fixed order: registry first, then
    the engine's own counters) and, per histogram, ascending
    [upper_bound, count] buckets whose counts sum to the total count.
    """
    def no_dupes(pairs):
        keys = [k for k, _ in pairs]
        if len(keys) != len(set(keys)):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"{path}: duplicate keys {dupes}")
        return dict(pairs)

    with open(path) as f:
        # decode errors propagate: malformed is fatal
        snap = json.load(f, object_pairs_hook=no_dupes)
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snap.get(section), dict):
            raise ValueError(f"{path}: missing object {section!r}")
    for name, h in snap["histograms"].items():
        for field in ("count", "sum", "max", "mean", "p50", "p95", "p99",
                      "buckets"):
            if field not in h:
                raise ValueError(f"{path}: histogram {name!r} lacks {field!r}")
        buckets = h["buckets"]
        uppers = [b[0] for b in buckets]
        if uppers != sorted(uppers):
            raise ValueError(
                f"{path}: histogram {name!r} buckets not ascending: {uppers}")
        if sum(b[1] for b in buckets) != h["count"]:
            raise ValueError(
                f"{path}: histogram {name!r} bucket counts sum to "
                f"{sum(b[1] for b in buckets)}, expected count {h['count']}")
    return snap


def check_observability_json(build, failures):
    """Round-trips the last bench run's metrics dump, when one exists (the
    endpoint-check step produces it; earlier steps may run first)."""
    path = os.path.join(build, "BENCH_observability.json")
    if not os.path.exists(path):
        print("  [skip] BENCH_observability.json not present yet")
        return
    try:
        snap = load_metrics_snapshot(path)
        print(f"  [ok] BENCH_observability.json: {len(snap['counters'])} "
              f"counters, {len(snap['histograms'])} histograms round-trip")
    except (ValueError, json.JSONDecodeError) as e:
        print(f"  [FAIL] BENCH_observability.json: {e}")
        failures.append(f"observability json: {e}")


def main():
    if platform.machine().lower() not in ("x86_64", "amd64"):
        print(f"perf gate: skipping on {platform.machine()} (x86-only floors)")
        return 0
    build = sys.argv[1] if len(sys.argv) > 1 else "build"
    floors_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "perf_floors.json")
    with open(floors_path) as f:
        floors = json.load(f)
    failures = []
    print("perf gate: micro_vm_dispatch ratios")
    check_micro(build, floors["micro_vm_dispatch"], failures)
    # One default-mode string_predicates run feeds both the SIMD-vs-scalar
    # ratios (which rerun it with AQE_SIMD=scalar for the comparison) and
    # the index access-path floors (pure within-run summary ratios).
    strings = run_json_lines(
        [os.path.join("bench", "string_predicates"), "--smoke"], cwd=build)
    print("perf gate: string_predicates SIMD-vs-scalar ratios")
    check_strings_simd(build, strings, floors["string_predicates_simd"],
                       floors["string_predicates_probe_kernel"], failures)
    print("perf gate: string_predicates index access-path ratios")
    check_strings_index(strings, floors["string_predicates_index"], failures)
    print("perf gate: observability snapshot round-trip")
    check_observability_json(build, failures)
    if failures:
        print("perf gate FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
