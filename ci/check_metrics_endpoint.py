#!/usr/bin/env python3
"""Live stats-endpoint smoke (CI check for src/obs/stats_server).

Starts `bench/throughput_concurrent --smoke` with AQE_STATS_PORT=0 (the
engine picks an ephemeral port and the bench prints it), then, while the
bench is running, exercises every route of the in-process stats server:

  - GET /metrics returns Prometheus text-format 0.0.4: at least 30
    well-formed `# TYPE` series of known types, every sample line
    syntactically valid, histogram series carrying cumulative
    `_bucket{le=...}` samples ending in `le="+Inf"`, and the PR-10
    resource-accounting gauges (aqe_mem_current_bytes,
    aqe_mem_peak_bytes) present
  - GET /trace.json parses as a Chrome trace with a traceEvents array
  - GET /profiles parses as JSON with a "profiles" array (the bench
    requests collect_profile on a fraction of queries) and an
    "anomalies" array
  - GET /profile returns the continuous profiler's collapsed stacks as
    text/plain, every non-empty line `frame[;frame...] <count>`
  - an unknown path returns 404

After the bench exits it validates the BENCH_observability.json metrics
dump through check_perf_floors.load_metrics_snapshot (same loader the
perf gate uses), so the snapshot serializer is round-tripped in CI.

Usage: check_metrics_endpoint.py [build_dir]   (default: build)
"""

import json
import os
import re
import subprocess
import sys
import threading
import urllib.error
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_perf_floors import load_metrics_snapshot  # noqa: E402

PORT_LINE = re.compile(r"stats server: http://127\.0\.0\.1:(\d+)")
TYPE_LINE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                       r"(counter|gauge|histogram)$")
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$")
COLLAPSED_LINE = re.compile(r"^\S[^ ]* \d+$")  # "frame;frame;... count"
REQUIRED_GAUGES = ("aqe_mem_current_bytes", "aqe_mem_peak_bytes")


def http_get(port, path):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), \
            resp.read().decode()


def check_metrics_text(body, errors):
    series = {}
    for lineno, line in enumerate(body.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            m = TYPE_LINE.match(line)
            if not m:
                errors.append(f"/metrics line {lineno}: bad TYPE line "
                              f"{line!r}")
                continue
            series[m.group(1)] = m.group(2)
        elif line.startswith("#"):
            continue  # HELP / comments
        elif not SAMPLE_LINE.match(line):
            errors.append(f"/metrics line {lineno}: malformed sample "
                          f"{line!r}")
    if len(series) < 30:
        errors.append(f"/metrics: only {len(series)} # TYPE series, "
                      f"expected >= 30")
    hist = [name for name, kind in series.items() if kind == "histogram"]
    if not hist:
        errors.append("/metrics: no histogram series")
    for name in hist:
        if f'{name}_bucket{{le="+Inf"}}' not in body:
            errors.append(f"/metrics: histogram {name} lacks a "
                          f'+Inf bucket sample')
    for name in REQUIRED_GAUGES:
        if series.get(name) != "gauge":
            errors.append(f"/metrics: missing resource-accounting gauge "
                          f"{name}")
    return len(series)


def main():
    build = sys.argv[1] if len(sys.argv) > 1 else "build"
    bench = os.path.join("bench", "throughput_concurrent")
    env = dict(os.environ)
    env.setdefault("AQE_SF", "0.01")
    env.setdefault("AQE_BENCH_SECONDS", "2.0")
    env["AQE_STATS_PORT"] = "0"

    proc = subprocess.Popen(
        [bench, "--smoke"], cwd=build, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)

    # The bench flushes the stats-server banner as soon as the engine is
    # up; read until we see it (or the process dies without printing it).
    port = None
    lines = []
    for line in proc.stdout:
        lines.append(line)
        m = PORT_LINE.search(line)
        if m:
            port = int(m.group(1))
            break
    if port is None:
        proc.wait(timeout=60)
        print("metrics endpoint check FAILED: bench never announced a "
              "stats port. Output:")
        sys.stdout.write("".join(lines))
        return 1
    print(f"bench up, stats server on port {port}")

    # Keep draining stdout so the bench never blocks on a full pipe.
    drain = threading.Thread(
        target=lambda: [lines.append(l) for l in proc.stdout], daemon=True)
    drain.start()

    errors = []
    try:
        status, ctype, body = http_get(port, "/metrics")
        if status != 200:
            errors.append(f"/metrics: HTTP {status}")
        if not ctype.startswith("text/plain"):
            errors.append(f"/metrics: content-type {ctype!r}")
        nseries = check_metrics_text(body, errors)
        print(f"/metrics: {nseries} series, "
              f"{len(body.splitlines())} lines")

        status, ctype, body = http_get(port, "/trace.json")
        if status != 200 or "application/json" not in ctype:
            errors.append(f"/trace.json: HTTP {status}, type {ctype!r}")
        else:
            trace = json.loads(body)
            events = trace.get("traceEvents")
            if not isinstance(events, list) or not events:
                errors.append("/trace.json: empty or missing traceEvents")
            else:
                print(f"/trace.json: {len(events)} events")

        status, ctype, body = http_get(port, "/profiles")
        if status != 200 or "application/json" not in ctype:
            errors.append(f"/profiles: HTTP {status}, type {ctype!r}")
        else:
            doc = json.loads(body)
            if not isinstance(doc.get("profiles"), list):
                errors.append("/profiles: missing profiles array")
            if not isinstance(doc.get("anomalies"), list):
                errors.append("/profiles: missing anomalies array")
            if isinstance(doc.get("profiles"), list):
                print(f"/profiles: {len(doc['profiles'])} query profiles, "
                      f"{len(doc.get('anomalies', []))} anomalies")

        status, ctype, body = http_get(port, "/profile")
        if status != 200:
            errors.append(f"/profile: HTTP {status}")
        if not ctype.startswith("text/plain"):
            errors.append(f"/profile: content-type {ctype!r}")
        stack_lines = [l for l in body.splitlines() if l]
        bad = [l for l in stack_lines if not COLLAPSED_LINE.match(l)]
        if bad:
            errors.append(f"/profile: {len(bad)} malformed collapsed-stack "
                          f"lines, e.g. {bad[0]!r}")
        print(f"/profile: {len(stack_lines)} collapsed stacks")

        try:
            http_get(port, "/nope")
            errors.append("/nope: expected HTTP 404, got 200")
        except urllib.error.HTTPError as e:
            if e.code != 404:
                errors.append(f"/nope: expected 404, got {e.code}")
    except Exception as e:  # connection refused, timeout, bad JSON ...
        errors.append(f"endpoint probe failed: {e!r}")

    rc = proc.wait(timeout=300)
    drain.join(timeout=10)
    if rc != 0:
        errors.append(f"bench exited with rc {rc}")
        sys.stdout.write("".join(lines[-40:]))

    obs_path = os.path.join(build, "BENCH_observability.json")
    try:
        snap = load_metrics_snapshot(obs_path)
        print(f"BENCH_observability.json: {len(snap['counters'])} counters, "
              f"{len(snap['histograms'])} histograms round-trip")
    except (OSError, ValueError, json.JSONDecodeError) as e:
        errors.append(f"BENCH_observability.json: {e}")

    if errors:
        print("metrics endpoint check FAILED:")
        for e in errors[:20]:
            print(f"  {e}")
        return 1
    print("metrics endpoint check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
