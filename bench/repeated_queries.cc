// Repeated-query benchmark: the artifact cache's acceptance harness. A
// production engine sees the same plan shapes over and over; this measures
// what the plan-fingerprint cache turns that into — cold (first-ever) vs
// warm (repeated) latency over a Zipf-distributed TPC-H query mix, with
// literal-only Q6 variants exercising the constant-patch path.
//
// The Q6 literal variants are submitted as *prepared statements*: their
// cold run uses the optimized strategy, so an opt machine-code variant is
// published for each literal set. Warm adaptive re-runs then seed straight
// into that code (code_hits). Without this, whether any code variant ever
// exists at smoke scale depends on a borderline §III-C promotion of a
// single pipeline — the cache's code-seed path went untested on runs where
// the promotion didn't fire (the historical `code_hits: 0` snapshots).
//
// Phases:
//   cold   every distinct plan once, cache initially empty
//   warm   closed loop for AQE_BENCH_SECONDS, plans drawn Zipf(s=1.2)
//
// Emits JSON lines (also to BENCH_repeated_queries.json): cold/warm p50,
// warm qps, the fraction of warm runs that skipped translation entirely,
// the fraction seeded straight into compiled code, and the engine's
// hit/miss/evict counters. `warm_speedup_p50` is the median over plans of
// (that plan's cold latency / its median warm latency) — a like-for-like
// ratio. The raw cold-p50 / warm-p50 quotient is NOT that: cold weights
// all plans equally while warm is Zipf-weighted, so a heavy head plan can
// drag the aggregate warm p50 above the aggregate cold p50 (the historical
// `warm_speedup_p50: 0.874`) even when every plan individually got faster.
//
// `--smoke` runs a scaled-down pass and *asserts* the acceptance criteria:
// warm-hit counters > 0 (including code_hits > 0 from the prepared Q6
// variants), per-plan warm speedup >= 1, and warm submissions skipping
// translation (exit 1 otherwise) — CI runs this so the cache path is
// exercised outside ctest.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"

using namespace aqe;

namespace {

struct PlanSpec {
  std::string label;
  int tpch_number = 0;       ///< 0 = Q6 literal variant / Q14 LIKE variant
  TpchQ6Literals literals;   ///< used when tpch_number == 0 and no pattern
  std::string like_pattern;  ///< Q14 p_type pattern variant when non-empty
  /// Prepared statement: the cold run compiles eagerly (optimized
  /// strategy), publishing a machine-code variant that warm adaptive runs
  /// seed from. See the header comment.
  bool compile_eagerly = false;
};

QueryProgram Build(const PlanSpec& plan, const Catalog& catalog) {
  if (!plan.like_pattern.empty()) {
    return BuildTpchQ14Variant(catalog, plan.like_pattern);
  }
  return plan.tpch_number > 0 ? BuildTpchQuery(plan.tpch_number, catalog)
                              : BuildTpchQ6Variant(catalog, plan.literals);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  return values[static_cast<size_t>(p * static_cast<double>(values.size() - 1))];
}

/// Zipf(s) over ranks [0, n): rank r with weight 1/(r+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s, uint64_t seed) : rng_(seed) {
    double total = 0;
    for (size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }
  size_t Next() {
    double u = uniform_(rng_);
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  std::vector<double> cdf_;
};

void EmitJson(const char* line, std::FILE* json_out) {
  std::printf("%s\n", line);
  if (json_out != nullptr) std::fprintf(json_out, "%s\n", line);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double sf = bench::EnvDouble("AQE_SF", smoke ? 0.01 : 0.02);
  const double budget = bench::EnvDouble("AQE_BENCH_SECONDS", smoke ? 0.5 : 3.0);
  const int threads = bench::EnvInt("AQE_THREADS", 2);
  Catalog* catalog = bench::TpchAtScale(sf);
  QueryEngine engine(catalog, threads);
  std::FILE* json_out = std::fopen("BENCH_repeated_queries.json", "w");

  // The plan population: every implemented TPC-H query plus three Q6
  // literal variants (fingerprint-equal to Q6 — they share its bytecode
  // through the constant-patch table).
  std::vector<PlanSpec> plans;
  for (int number : ImplementedTpchQueries()) {
    plans.push_back({"q" + std::to_string(number), number, {}});
  }
  for (int v = 1; v <= 3; ++v) {
    TpchQ6Literals lit = DefaultQ6Literals();
    lit.ship_date_lo += 31 * v;
    lit.ship_date_hi += 31 * v;
    lit.quantity_limit += 100 * v;
    plans.push_back({"q6var" + std::to_string(v), 0, lit, "",
                     /*compile_eagerly=*/true});
  }
  // Q14 LIKE-pattern variants: fingerprint-equal to q14 (the prefix lowers
  // to code-range literals on the sorted dictionary), exercising
  // pattern-literal sharing through the constant-patch table.
  for (const char* pattern : {"STANDARD%", "SMALL%", "LARGE%"}) {
    plans.push_back({std::string("q14like_") + pattern, 0, {}, pattern});
  }

  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kAdaptive;

  std::printf("Repeated-query artifact cache benchmark (SF %g, %d workers, "
              "%zu distinct plans, %.1fs warm phase)%s\n",
              sf, threads, plans.size(), budget, smoke ? " [smoke]" : "");

  // --- cold phase: first execution of every plan ---------------------------
  std::vector<double> cold_ms;
  double cold_translate_ms = 0;
  for (const PlanSpec& plan : plans) {
    QueryProgram q = Build(plan, *catalog);
    QueryRunOptions cold_options = options;
    if (plan.compile_eagerly) {
      cold_options.strategy = ExecutionStrategy::kOptimized;
    }
    Timer timer;
    QueryRunResult r = engine.Run(q, cold_options);
    cold_ms.push_back(timer.ElapsedMillis());
    cold_translate_ms += r.translate_millis_total;
    if (std::getenv("AQE_DIAG") != nullptr) {
      for (const auto& p : r.pipelines) {
        std::printf("DIAG cold %s pipe tuples=%llu init=%s final=%s pruned=%d sel=%.3f\n",
                    plan.label.c_str(), (unsigned long long)p.tuples,
                    ExecModeName(p.initial_mode), ExecModeName(p.final_mode),
                    (int)p.pruning.analyzed, p.pruning.selected_fraction());
      }
    }
    if (r.rows.empty()) std::abort();
  }

  // Phase boundary: snapshot the monotonic cache + translator counters so
  // the warm phase reports its own delta, not cold-phase pollution.
  const ArtifactCacheStats cold_stats = engine.artifact_cache_stats();
  const TranslatorCounters cold_tc = TranslatorCountersSnapshot();
  const uint64_t cold_anomalies =
      engine.ObservabilitySnapshot().counter("engine.anomalies");

  // --- warm phase: Zipf-repeated submissions -------------------------------
  std::vector<double> warm_ms;
  std::vector<double> warm_wait_ms;
  std::vector<std::vector<double>> warm_by_plan(plans.size());
  // Per-plan warm peak-memory extremes: a warm re-run of the same plan at
  // the same scale factor should allocate the same hash tables and output
  // chunks, so max/min per plan stays near 1 (smoke asserts a 4x ceiling —
  // a blowout means a leaked charge or double-count in the tracker).
  std::vector<uint64_t> warm_peak_min(plans.size(), 0);
  std::vector<uint64_t> warm_peak_max(plans.size(), 0);
  uint64_t warm_runs = 0, warm_no_translate = 0, warm_seeded = 0;
  ZipfSampler zipf(plans.size(), 1.2, 42);
  Timer phase_timer;
  while (phase_timer.ElapsedSeconds() < budget) {
    const size_t rank = zipf.Next();
    const PlanSpec& plan = plans[rank];
    QueryProgram q = Build(plan, *catalog);
    Timer timer;
    QueryRunResult r = engine.Run(q, options);
    warm_ms.push_back(timer.ElapsedMillis());
    warm_by_plan[rank].push_back(warm_ms.back());
    warm_wait_ms.push_back(r.queue_wait_seconds * 1e3);
    if (warm_peak_min[rank] == 0 || r.peak_memory_bytes < warm_peak_min[rank]) {
      warm_peak_min[rank] = r.peak_memory_bytes;
    }
    warm_peak_max[rank] = std::max(warm_peak_max[rank], r.peak_memory_bytes);
    ++warm_runs;
    if (r.translate_millis_total == 0 && r.codegen_millis_total == 0) {
      ++warm_no_translate;
    }
    for (const auto& p : r.pipelines) {
      if (p.initial_mode != ExecMode::kBytecode) {
        ++warm_seeded;
        break;
      }
    }
    if (r.rows.empty()) std::abort();
  }

  const ArtifactCacheStats stats = engine.artifact_cache_stats();
  // Warm-phase delta (operator- subtracts the monotonic counters;
  // bytes/entries stay at their current residency).
  const ArtifactCacheStats warm_stats = stats - cold_stats;
  const TranslatorCounters tc = TranslatorCountersSnapshot();
  const uint64_t warm_translations = tc.programs - cold_tc.programs;
  const double cold_p50 = Percentile(cold_ms, 0.5);
  const double warm_p50 = Percentile(warm_ms, 0.5);
  const double warm_p99 = Percentile(warm_ms, 0.99);
  const double warm_qps =
      static_cast<double>(warm_runs) / phase_timer.ElapsedSeconds();
  const double no_translate_frac =
      warm_runs > 0 ? static_cast<double>(warm_no_translate) /
                          static_cast<double>(warm_runs)
                    : 0;
  // Like-for-like warm speedup: each plan's cold run vs the median of its
  // own warm runs, then the median over plans that were drawn at all. The
  // aggregate warm p50 is over a Zipf-weighted mix while cold p50 weights
  // every plan once, so their quotient is a mix-shift artifact, not a
  // speedup (see header).
  std::vector<double> per_plan_speedup;
  for (size_t i = 0; i < plans.size(); ++i) {
    if (warm_by_plan[i].empty()) continue;
    const double plan_warm_p50 = Percentile(warm_by_plan[i], 0.5);
    if (plan_warm_p50 > 0) {
      per_plan_speedup.push_back(cold_ms[i] / plan_warm_p50);
    }
  }
  const double warm_speedup_p50 = Percentile(per_plan_speedup, 0.5);

  // Warm peak-memory stability across plans drawn at least twice: the worst
  // per-plan max/min ratio, and the overall warm peak range for the JSON.
  double worst_peak_ratio = 0;
  uint64_t warm_peak_overall_max = 0;
  size_t peak_stable_plans = 0;
  for (size_t i = 0; i < plans.size(); ++i) {
    warm_peak_overall_max = std::max(warm_peak_overall_max, warm_peak_max[i]);
    if (warm_by_plan[i].size() < 2 || warm_peak_min[i] == 0) continue;
    ++peak_stable_plans;
    worst_peak_ratio =
        std::max(worst_peak_ratio, static_cast<double>(warm_peak_max[i]) /
                                       static_cast<double>(warm_peak_min[i]));
  }

  std::printf("\n%-22s %10s %10s\n", "", "cold", "warm");
  std::printf("%-22s %9.2fms %9.2fms\n", "p50 latency", cold_p50, warm_p50);
  std::printf("%-22s %10zu %10llu\n", "runs", cold_ms.size(),
              static_cast<unsigned long long>(warm_runs));
  std::printf("%-22s %10s %9.1f%%\n", "translation skipped", "-",
              100.0 * no_translate_frac);
  std::printf("%-22s %10s %10.1f\n", "queries/sec", "-", warm_qps);
  std::printf("%-22s %10s %9.2fx\n", "per-plan speedup p50", "-",
              warm_speedup_p50);
  std::printf("%-22s %10s %9.1fKB\n", "peak memory (max)", "-",
              static_cast<double>(warm_peak_overall_max) / 1024.0);
  std::printf("%-22s %10s %9.2fx\n", "peak max/min (worst)", "-",
              worst_peak_ratio);
  std::printf("cache: %llu bytecode hits (%llu patched), %llu code hits, "
              "%llu misses, %llu evictions, %llu entries, %.1f KiB\n",
              (unsigned long long)stats.bytecode_hits,
              (unsigned long long)stats.patched_hits,
              (unsigned long long)stats.code_hits,
              (unsigned long long)stats.bytecode_misses,
              (unsigned long long)stats.evictions,
              (unsigned long long)stats.entries, stats.bytes / 1024.0);
  std::printf("warm phase only: %llu bytecode hits (%llu patched), %llu code "
              "hits, %llu misses, %llu translations\n",
              (unsigned long long)warm_stats.bytecode_hits,
              (unsigned long long)warm_stats.patched_hits,
              (unsigned long long)warm_stats.code_hits,
              (unsigned long long)warm_stats.bytecode_misses,
              (unsigned long long)warm_translations);

  char line[640];
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"repeated_queries\",\"sf\":%g,\"workers\":%d,"
                "\"plans\":%zu,\"cold_p50_ms\":%.3f,\"warm_p50_ms\":%.3f,"
                "\"warm_p99_ms\":%.3f,\"warm_qps\":%.2f,"
                "\"warm_runs\":%llu,\"warm_no_translate_frac\":%.4f,"
                "\"warm_seeded\":%llu,\"warm_speedup_p50\":%.3f,"
                "\"warm_speedup_plans\":%zu,"
                "\"warm_queue_wait_p50_ms\":%.3f,"
                "\"warm_queue_wait_p99_ms\":%.3f,"
                "\"warm_peak_bytes_max\":%llu,"
                "\"warm_peak_ratio_worst\":%.3f}",
                sf, threads, plans.size(), cold_p50, warm_p50, warm_p99,
                warm_qps, (unsigned long long)warm_runs, no_translate_frac,
                (unsigned long long)warm_seeded, warm_speedup_p50,
                per_plan_speedup.size(),
                Percentile(warm_wait_ms, 0.5), Percentile(warm_wait_ms, 0.99),
                (unsigned long long)warm_peak_overall_max, worst_peak_ratio);
  EmitJson(line, json_out);
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"repeated_queries\",\"counters\":{"
                "\"entry_hits\":%llu,\"entry_misses\":%llu,"
                "\"bytecode_hits\":%llu,\"patched_hits\":%llu,"
                "\"code_hits\":%llu,\"bytecode_misses\":%llu,"
                "\"publishes\":%llu,\"evictions\":%llu,\"entries\":%llu,"
                "\"bytes\":%llu}}",
                (unsigned long long)stats.entry_hits,
                (unsigned long long)stats.entry_misses,
                (unsigned long long)stats.bytecode_hits,
                (unsigned long long)stats.patched_hits,
                (unsigned long long)stats.code_hits,
                (unsigned long long)stats.bytecode_misses,
                (unsigned long long)stats.publishes,
                (unsigned long long)stats.evictions,
                (unsigned long long)stats.entries,
                (unsigned long long)stats.bytes);
  EmitJson(line, json_out);
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"repeated_queries\",\"warm_counters\":{"
                "\"bytecode_hits\":%llu,\"patched_hits\":%llu,"
                "\"code_hits\":%llu,\"bytecode_misses\":%llu,"
                "\"publishes\":%llu,\"translations\":%llu,"
                "\"fused_instructions\":%llu}}",
                (unsigned long long)warm_stats.bytecode_hits,
                (unsigned long long)warm_stats.patched_hits,
                (unsigned long long)warm_stats.code_hits,
                (unsigned long long)warm_stats.bytecode_misses,
                (unsigned long long)warm_stats.publishes,
                (unsigned long long)warm_translations,
                (unsigned long long)(tc.fused_instructions -
                                     cold_tc.fused_instructions));
  EmitJson(line, json_out);
  if (json_out != nullptr) std::fclose(json_out);

  std::printf("\nexpected shape: per-plan warm speedup >= 1 (no translation, "
              "best cached mode from the first morsel), translation skipped "
              "on ~100%% of warm runs, patched hits > 0 from the Q6 "
              "variants, code hits > 0 from their prepared (eagerly "
              "compiled) cold runs\n");

  if (smoke) {
    // Acceptance assertions (CI): warm hits observed, translation skipped.
    int failures = 0;
    if (warm_stats.bytecode_hits + warm_stats.patched_hits +
            warm_stats.code_hits ==
        0) {
      std::fprintf(stderr, "SMOKE FAIL: no warm cache hits recorded\n");
      ++failures;
    }
    // The prepared Q6 variants published opt code variants in the cold
    // phase; across ~>=100 Zipf draws the chance none of the three is
    // drawn is negligible, so zero here means the publish -> seed path is
    // broken (the counter this guards regressed to 0 silently once).
    if (warm_stats.code_hits == 0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: no warm run seeded a published machine-code "
                   "variant (code_hits == 0)\n");
      ++failures;
    }
    // Per-plan: repeating a plan must not be slower than first running it
    // (warm skips codegen + translation and seeds the best known mode).
    // Floor at 1.0 with no tolerance: cold includes translation, so the
    // like-for-like median sits comfortably above 1 unless reuse breaks.
    if (warm_speedup_p50 < 1.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: per-plan warm speedup p50 %.3f < 1.0 over "
                   "%zu plans\n",
                   warm_speedup_p50, per_plan_speedup.size());
      ++failures;
    }
    if (warm_runs > 0 && warm_no_translate == 0) {
      std::fprintf(stderr, "SMOKE FAIL: no warm run skipped translation\n");
      ++failures;
    }
    // Every warm run must report a non-zero tracked peak (output chunks and
    // binding arenas are always charged), and repeated runs of a plan must
    // land near the same peak — warm re-execution allocates the same state,
    // so a >4x spread means charges leak or double-count.
    if (warm_runs > 0 && warm_peak_overall_max == 0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: warm runs reported zero peak memory\n");
      ++failures;
    }
    if (peak_stable_plans > 0 && worst_peak_ratio > 4.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: warm peak memory unstable: worst per-plan "
                   "max/min ratio %.2fx > 4x over %zu plans\n",
                   worst_peak_ratio, peak_stable_plans);
      ++failures;
    }
    if (stats.entry_misses == 0) {
      std::fprintf(stderr, "SMOKE FAIL: cold phase recorded no misses\n");
      ++failures;
    }
    // The regression sentinel must stay silent across the warm phase:
    // repeated warm hits of the same fingerprints are its steady state,
    // and an alert here means the deviation guard is miscalibrated.
    const uint64_t warm_anomalies =
        engine.ObservabilitySnapshot().counter("engine.anomalies") -
        cold_anomalies;
    if (warm_anomalies != 0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: regression sentinel flagged %llu warm-phase "
                   "runs (expected 0)\n",
                   (unsigned long long)warm_anomalies);
      ++failures;
    }
    if (failures > 0) return 1;
    std::printf("smoke assertions passed: warm hits=%llu (%llu code), "
                "translation-free warm runs=%llu/%llu, per-plan speedup "
                "p50 %.2fx\n",
                (unsigned long long)(warm_stats.bytecode_hits +
                                     warm_stats.patched_hits +
                                     warm_stats.code_hits),
                (unsigned long long)warm_stats.code_hits,
                (unsigned long long)warm_no_translate,
                (unsigned long long)warm_runs,
                warm_speedup_p50);
  }
  return 0;
}
