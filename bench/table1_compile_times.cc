// Regenerates Table I: planning and compilation times per query — plan
// build, code generation, bytecode translation, unoptimized and optimized
// machine-code generation — plus the max over all implemented queries.
// (The baselines' "plan" column equals ours: they share the plan builder.)
#include <algorithm>

#include "bench/bench_util.h"
#include "common/timer.h"

using namespace aqe;

int main() {
  Catalog* catalog = bench::TpchAtScale(bench::EnvDouble("AQE_SF", 0.01));
  QueryEngine engine(catalog, 1);

  std::printf("Table I — planning and compilation times [ms]\n");
  std::printf("%6s %8s %8s %8s %10s %10s\n", "query", "plan", "cdg.", "bc.",
              "unopt.", "opt.");
  double max_plan = 0, max_cdg = 0, max_bc = 0, max_unopt = 0, max_opt = 0;
  for (int number : ImplementedTpchQueries()) {
    Timer plan_timer;
    QueryProgram q = BuildTpchQuery(number, *catalog);
    double plan_ms = plan_timer.ElapsedMillis();
    auto costs = engine.MeasureCompileCosts(q);
    double cdg = 0, bc = 0, unopt = 0, opt = 0;
    for (const auto& c : costs) {
      cdg += c.codegen_millis;
      bc += c.bytecode_millis;
      unopt += c.unopt_millis;
      opt += c.opt_millis;
    }
    std::printf("%6d %8.2f %8.2f %8.2f %10.2f %10.2f\n", number, plan_ms, cdg,
                bc, unopt, opt);
    max_plan = std::max(max_plan, plan_ms);
    max_cdg = std::max(max_cdg, cdg);
    max_bc = std::max(max_bc, bc);
    max_unopt = std::max(max_unopt, unopt);
    max_opt = std::max(max_opt, opt);
  }
  std::printf("%6s %8.2f %8.2f %8.2f %10.2f %10.2f\n", "max", max_plan,
              max_cdg, max_bc, max_unopt, max_opt);
  std::printf("\nexpected shape: plan/cdg./bc. all small and similar; unopt. "
              "~10x plan+cdg; opt. several-fold above unopt.\n");
  return 0;
}
