// Regenerates Fig 2: single-threaded compilation time vs execution time of
// TPC-H Q1 for: handwritten C++, LLVM optimized, LLVM unoptimized, the
// bytecode VM, and direct LLVM-IR interpretation.
#include "bench/bench_util.h"
#include "common/timer.h"
#include "queries/handwritten_q1.h"

using namespace aqe;

int main() {
  double sf = bench::EnvDouble("AQE_SF", 0.1);
  Catalog* catalog = bench::TpchAtScale(sf);
  QueryEngine engine(catalog, /*num_threads=*/1);

  std::printf("Fig 2 — Q1 (SF %g), single thread: compile vs execute\n", sf);
  std::printf("%-16s %14s %14s\n", "mode", "compile [ms]", "execute [ms]");

  {  // handwritten C++ (no compilation at query time)
    Timer t;
    auto rows = HandwrittenQ1(*catalog);
    std::printf("%-16s %14.2f %14.2f\n", "handwritten", 0.0,
                t.ElapsedMillis());
  }
  struct ModeRow {
    const char* label;
    ExecutionStrategy strategy;
  };
  const ModeRow modes[] = {
      {"LLVM optimized", ExecutionStrategy::kOptimized},
      {"LLVM unopt.", ExecutionStrategy::kUnoptimized},
      {"LLVM bytecode", ExecutionStrategy::kBytecode},
  };
  for (const ModeRow& mode : modes) {
    QueryProgram q1 = BuildTpchQuery(1, *catalog);
    QueryRunOptions options;
    options.strategy = mode.strategy;
    QueryRunResult r = engine.Run(q1, options);
    double compile_ms = r.codegen_millis_total + r.translate_millis_total +
                        r.compile_millis_total;
    std::printf("%-16s %14.2f %14.2f\n", mode.label, compile_ms,
                bench::ExecOnlySeconds(r) * 1e3);
  }
  {  // naive IR interpretation — measured on a smaller SF and scaled
     // linearly (it is orders of magnitude slower; Fig 2's point).
    double naive_sf = std::min(sf, bench::EnvDouble("AQE_NAIVE_SF", 0.002));
    Catalog* small = bench::TpchAtScale(naive_sf);
    QueryEngine small_engine(small, 1);
    QueryProgram q1 = BuildTpchQuery(1, *small);
    QueryRunOptions options;
    options.engine = EngineKind::kNaiveIr;
    QueryRunResult r = small_engine.Run(q1, options);
    double scaled = bench::ExecOnlySeconds(r) * 1e3 * (sf / naive_sf);
    std::printf("%-16s %14.2f %14.2f   (measured at SF %g, scaled)\n",
                "LLVM IR interp", r.codegen_millis_total, scaled, naive_sf);
  }
  std::printf("\nexpected shape: optimized = slowest compile/fastest exec; "
              "bytecode = ~0 compile/slowest exec (but far faster than IR "
              "interpretation); handwritten slightly beats optimized (no "
              "overflow checks)\n");
  return 0;
}
