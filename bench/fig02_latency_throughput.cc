// Regenerates Fig 2: single-threaded compilation time vs execution time of
// TPC-H Q1 for: handwritten C++, LLVM optimized, LLVM unoptimized, the
// bytecode VM, and direct LLVM-IR interpretation.
//
// Each mode also prints one machine-readable JSON line (written to
// BENCH_fig02_latency_throughput.json, one snapshot per run) so the
// benchmark trajectory can be archived and compared across PRs, like
// micro_vm_dispatch does.
#include "bench/bench_util.h"
#include "common/timer.h"
#include "queries/handwritten_q1.h"

using namespace aqe;

namespace {

void Report(const char* mode, double sf, double compile_ms, double exec_ms,
            std::FILE* json_out, const char* note = "") {
  std::printf("%-16s %14.2f %14.2f   %s\n", mode, compile_ms, exec_ms, note);
  char line[256];
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"fig02_latency_throughput\",\"mode\":\"%s\","
                "\"sf\":%g,\"compile_ms\":%.4f,\"exec_ms\":%.4f}",
                mode, sf, compile_ms, exec_ms);
  std::printf("%s\n", line);
  if (json_out != nullptr) std::fprintf(json_out, "%s\n", line);
}

}  // namespace

int main() {
  double sf = bench::EnvDouble("AQE_SF", 0.1);
  Catalog* catalog = bench::TpchAtScale(sf);
  QueryEngine engine(catalog, /*num_threads=*/1);
  std::FILE* json_out = std::fopen("BENCH_fig02_latency_throughput.json", "w");

  std::printf("Fig 2 — Q1 (SF %g), single thread: compile vs execute\n", sf);
  std::printf("%-16s %14s %14s\n", "mode", "compile [ms]", "execute [ms]");

  {  // handwritten C++ (no compilation at query time)
    Timer t;
    auto rows = HandwrittenQ1(*catalog);
    Report("handwritten", sf, 0.0, t.ElapsedMillis(), json_out);
  }
  struct ModeRow {
    const char* label;
    ExecutionStrategy strategy;
  };
  const ModeRow modes[] = {
      {"llvm-optimized", ExecutionStrategy::kOptimized},
      {"llvm-unopt", ExecutionStrategy::kUnoptimized},
      {"llvm-bytecode", ExecutionStrategy::kBytecode},
  };
  for (const ModeRow& mode : modes) {
    QueryProgram q1 = BuildTpchQuery(1, *catalog);
    QueryRunOptions options;
    options.strategy = mode.strategy;
    options.single_threaded = true;  // Fig 2 is a single-threaded figure
    // Fig 2 reports *cold* compile cost per mode; the engine-level artifact
    // cache would zero it from the second mode on.
    options.use_artifact_cache = false;
    QueryRunResult r = engine.Run(q1, options);
    double compile_ms = r.codegen_millis_total + r.translate_millis_total +
                        r.compile_millis_total;
    Report(mode.label, sf, compile_ms, bench::ExecOnlySeconds(r) * 1e3,
           json_out);
  }
  {  // naive IR interpretation — measured on a smaller SF and scaled
     // linearly (it is orders of magnitude slower; Fig 2's point).
    double naive_sf = std::min(sf, bench::EnvDouble("AQE_NAIVE_SF", 0.002));
    Catalog* small = bench::TpchAtScale(naive_sf);
    QueryEngine small_engine(small, 1);
    QueryProgram q1 = BuildTpchQuery(1, *small);
    QueryRunOptions options;
    options.engine = EngineKind::kNaiveIr;
    QueryRunResult r = small_engine.Run(q1, options);
    double scaled = bench::ExecOnlySeconds(r) * 1e3 * (sf / naive_sf);
    char note[64];
    std::snprintf(note, sizeof(note), "(measured at SF %g, scaled)",
                  naive_sf);
    Report("llvm-ir-interp", sf, r.codegen_millis_total, scaled, json_out,
           note);
  }
  std::printf("\nexpected shape: optimized = slowest compile/fastest exec; "
              "bytecode = ~0 compile/slowest exec (but far faster than IR "
              "interpretation); handwritten slightly beats optimized (no "
              "overflow checks)\n");
  if (json_out != nullptr) std::fclose(json_out);
  return 0;
}
