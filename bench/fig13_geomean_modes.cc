// Regenerates Fig 13: geometric mean over the implemented TPC-H queries of
// total query time (planning + compilation + execution) for the four
// strategies across scale factors. The paper's headline: adaptive execution
// matches or beats the best static mode at every data size.
#include "bench/bench_util.h"

using namespace aqe;

int main() {
  auto sfs = bench::EnvDoubleList("AQE_SF_LIST", "0.01,0.1,0.3");
  int threads = bench::EnvInt("AQE_THREADS", 4);

  struct ModeRow {
    const char* label;
    ExecutionStrategy strategy;
  };
  const ModeRow modes[] = {
      {"bytecode", ExecutionStrategy::kBytecode},
      {"unoptimized", ExecutionStrategy::kUnoptimized},
      {"optimized", ExecutionStrategy::kOptimized},
      {"adaptive", ExecutionStrategy::kAdaptive},
  };

  std::printf("Fig 13 — geometric mean over %zu TPC-H queries, %d threads\n",
              ImplementedTpchQueries().size(), threads);
  std::printf("%-8s", "SF");
  for (const ModeRow& mode : modes) std::printf(" %14s", mode.label);
  std::printf("\n");

  for (double sf : sfs) {
    Catalog* catalog = bench::TpchAtScale(sf);
    QueryEngine engine(catalog, threads);
    std::printf("%-8.3g", sf);
    for (const ModeRow& mode : modes) {
      std::vector<double> times;
      for (int number : ImplementedTpchQueries()) {
        QueryProgram q = BuildTpchQuery(number, *catalog);
        QueryRunOptions options;
        options.strategy = mode.strategy;
        // Cold total latency per mode is the figure's subject.
        options.use_artifact_cache = false;
        QueryRunResult r = engine.Run(q, options);
        times.push_back(r.total_seconds);
      }
      std::printf(" %12.1fms", bench::GeometricMean(times) * 1e3);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: bytecode wins at tiny SF, optimized at "
              "large SF; adaptive tracks (or beats) the best static mode "
              "everywhere\n");
  return 0;
}
