// Multi-client throughput benchmark: N concurrent clients share one
// QueryEngine via the Submit() future API, versus the serial baseline of
// back-to-back Run() calls from a single client — the first throughput
// point in the bench trajectory (the paper's premise is serving queries
// with low latency while compilation happens concurrently; this measures
// how many of them per second the task scheduler sustains).
//
// Workload: alternating TPC-H Q6 (single scan pipeline) and Q1 (scan +
// aggregate) at AQE_SF. Client counts sweep 1x/2x/4x the engine's worker
// count (closed loop: each client submits, waits, repeats).
//
// `--mixed` instead runs the weighted-fairness harness: long-scan clients
// in the default class 0 against short-query clients in high-weight class
// 3, with per-class p50/p99 latency and queue wait emitted as JSON to
// BENCH_fairness.json. `--smoke` (CI) scales it down and *asserts* that
// the short class's p99 stays within a multiple of its isolated latency —
// the resumable-pipeline + weighted-fair-admission acceptance criterion.
//
// Emits one machine-readable JSON line per phase (also written to
// BENCH_throughput_concurrent.json / BENCH_fairness.json): queries/sec,
// p50/p99 latency, queue-wait p50/p99, and the speedup over serial.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"

using namespace aqe;

namespace {

struct Sample {
  double latency_ms;
  double queue_wait_ms;
  uint64_t peak_bytes;  ///< QueryRunResult::peak_memory_bytes
};

struct PhaseResult {
  int clients = 0;
  uint64_t queries = 0;
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double wait_p50_ms = 0;
  double wait_p99_ms = 0;
  uint64_t peak_bytes_p50 = 0;
  uint64_t peak_bytes_max = 0;

  double qps() const { return static_cast<double>(queries) / seconds; }
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index =
      static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[index];
}

PhaseResult Summarize(const std::vector<std::vector<Sample>>& per_client,
                      double seconds) {
  PhaseResult result;
  result.clients = static_cast<int>(per_client.size());
  result.seconds = seconds;
  std::vector<double> latencies, waits, peaks;
  for (const auto& samples : per_client) {
    result.queries += samples.size();
    for (const Sample& s : samples) {
      latencies.push_back(s.latency_ms);
      waits.push_back(s.queue_wait_ms);
      peaks.push_back(static_cast<double>(s.peak_bytes));
      result.peak_bytes_max = std::max(result.peak_bytes_max, s.peak_bytes);
    }
  }
  result.p50_ms = Percentile(latencies, 0.50);
  result.p99_ms = Percentile(latencies, 0.99);
  result.wait_p50_ms = Percentile(waits, 0.50);
  result.wait_p99_ms = Percentile(waits, 0.99);
  result.peak_bytes_p50 = static_cast<uint64_t>(Percentile(peaks, 0.50));
  return result;
}

/// One closed-loop client: build query -> Run -> record latency, until the
/// shared deadline. `tpch_number` 0 alternates Q6/Q1 per iteration.
void ClientLoop(QueryEngine* engine, const Catalog* catalog, int client_id,
                int tpch_number, int query_class, double budget_seconds,
                std::vector<Sample>* samples) {
  Timer phase_timer;
  int i = 0;
  while (phase_timer.ElapsedSeconds() < budget_seconds) {
    int number = tpch_number != 0
                     ? tpch_number
                     : ((client_id + i) % 2 == 0 ? 6 : 1);
    ++i;
    QueryProgram program = BuildTpchQuery(number, *catalog);
    QueryRunOptions options;
    options.strategy = ExecutionStrategy::kAdaptive;
    options.query_class = query_class;
    // Profile a sample of queries so the stats server's /profiles endpoint
    // has live material; cheap enough to leave on unconditionally.
    options.collect_profile = i % 8 == 1;
    Timer query_timer;
    QueryRunResult result = engine->Run(program, options);
    samples->push_back({query_timer.ElapsedMillis(),
                        result.queue_wait_seconds * 1e3,
                        result.peak_memory_bytes});
    if (result.rows.empty()) std::abort();  // paranoia: results must exist
  }
}

PhaseResult RunPhase(QueryEngine* engine, const Catalog* catalog, int clients,
                     double budget_seconds) {
  std::vector<std::vector<Sample>> samples(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  Timer timer;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(ClientLoop, engine, catalog, c, /*tpch_number=*/0,
                         /*query_class=*/0, budget_seconds,
                         &samples[static_cast<size_t>(c)]);
  }
  for (auto& t : threads) t.join();
  return Summarize(samples, timer.ElapsedSeconds());
}

void Report(const PhaseResult& r, const char* label, double serial_qps,
            int workers, std::FILE* json_out) {
  std::printf("%-10s %8d %10llu %12.1f %10.2f %10.2f %9.2fx\n", label,
              r.clients, static_cast<unsigned long long>(r.queries), r.qps(),
              r.p50_ms, r.p99_ms, serial_qps > 0 ? r.qps() / serial_qps : 1.0);
  char line[400];
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"throughput_concurrent\",\"phase\":\"%s\","
                "\"clients\":%d,\"workers\":%d,\"queries\":%llu,"
                "\"queries_per_sec\":%.3f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
                "\"queue_wait_p50_ms\":%.3f,\"queue_wait_p99_ms\":%.3f,"
                "\"speedup_vs_serial\":%.4f}",
                label, r.clients, workers,
                static_cast<unsigned long long>(r.queries), r.qps(), r.p50_ms,
                r.p99_ms, r.wait_p50_ms, r.wait_p99_ms,
                serial_qps > 0 ? r.qps() / serial_qps : 1.0);
  std::printf("%s\n", line);
  if (json_out != nullptr) std::fprintf(json_out, "%s\n", line);
}

/// The fairness harness (`--mixed`): long Q1 clients in class 0 vs short Q6
/// clients in high-weight class 3 on a shared saturated engine. Returns the
/// process exit code (non-zero when `smoke` assertions fail).
int RunMixed(QueryEngine* engine, const Catalog* catalog, int workers,
             double budget, bool smoke) {
  constexpr int kShortClass = 3;
  constexpr int kShortWeight = 8;
  engine->set_class_weight(kShortClass, kShortWeight);
  std::FILE* json_out = std::fopen("BENCH_fairness.json", "w");

  std::printf("Mixed-class fairness (class %d weight %d for shorts, "
              "%.1fs phase)\n",
              kShortClass, kShortWeight, budget);

  // Isolated short-query latency: Q6 alone on the idle engine (warm).
  std::vector<std::vector<Sample>> iso(1);
  {
    Timer t;
    ClientLoop(engine, catalog, 0, /*tpch_number=*/6, kShortClass,
               std::min(budget, 0.5), &iso[0]);
  }
  PhaseResult isolated = Summarize(iso, 1);
  const double isolated_p50 = isolated.p50_ms;
  std::printf("isolated short p50: %.2f ms (%llu runs)\n", isolated_p50,
              static_cast<unsigned long long>(isolated.queries));

  // Mixed phase: saturate with long clients, stream shorts beside them.
  const int long_clients = std::max(2, workers);
  const int short_clients = std::max(2, workers / 2);
  std::vector<std::vector<Sample>> long_samples(
      static_cast<size_t>(long_clients));
  std::vector<std::vector<Sample>> short_samples(
      static_cast<size_t>(short_clients));
  std::vector<std::thread> threads;
  Timer timer;
  for (int c = 0; c < long_clients; ++c) {
    threads.emplace_back(ClientLoop, engine, catalog, c, /*tpch_number=*/1,
                         /*query_class=*/0, budget,
                         &long_samples[static_cast<size_t>(c)]);
  }
  for (int c = 0; c < short_clients; ++c) {
    threads.emplace_back(ClientLoop, engine, catalog, c, /*tpch_number=*/6,
                         kShortClass, budget,
                         &short_samples[static_cast<size_t>(c)]);
  }
  for (auto& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();
  PhaseResult longs = Summarize(long_samples, seconds);
  PhaseResult shorts = Summarize(short_samples, seconds);

  std::printf("%-10s %8s %10s %12s %10s %10s %10s %10s\n", "class",
              "clients", "queries", "queries/s", "p50 [ms]", "p99 [ms]",
              "wait p50", "wait p99");
  for (const auto& [label, r] :
       {std::pair<const char*, const PhaseResult&>{"short", shorts},
        std::pair<const char*, const PhaseResult&>{"long", longs}}) {
    std::printf("%-10s %8d %10llu %12.1f %10.2f %10.2f %10.2f %10.2f\n",
                label, r.clients, static_cast<unsigned long long>(r.queries),
                r.qps(), r.p50_ms, r.p99_ms, r.wait_p50_ms, r.wait_p99_ms);
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"fairness\",\"class\":\"%s\",\"clients\":%d,"
        "\"workers\":%d,\"weight\":%d,\"queries\":%llu,"
        "\"queries_per_sec\":%.3f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
        "\"queue_wait_p50_ms\":%.3f,\"queue_wait_p99_ms\":%.3f,"
        "\"peak_bytes_p50\":%llu,\"peak_bytes_max\":%llu,"
        "\"isolated_short_p50_ms\":%.3f}",
        label, r.clients, workers,
        std::strcmp(label, "short") == 0 ? kShortWeight : 1,
        static_cast<unsigned long long>(r.queries), r.qps(), r.p50_ms,
        r.p99_ms, r.wait_p50_ms, r.wait_p99_ms,
        static_cast<unsigned long long>(r.peak_bytes_p50),
        static_cast<unsigned long long>(r.peak_bytes_max), isolated_p50);
    std::printf("%s\n", line);
    if (json_out != nullptr) std::fprintf(json_out, "%s\n", line);
  }
  if (json_out != nullptr) std::fclose(json_out);

  std::printf("\nexpected shape: short-class p99 stays within a small "
              "multiple of its isolated latency while the long class "
              "saturates the workers (resumable pipelines + weighted-fair "
              "admission); without them it would queue behind whole "
              "long pipelines.\n");

  // Continuous-profiler output over the whole mixed phase, in collapsed-stack
  // form (pipe through flamegraph.pl or load in speedscope).
  const std::string stacks = engine->CollapsedStacks();
  if (std::FILE* f = std::fopen("BENCH_flamegraph.txt", "w")) {
    std::fwrite(stacks.data(), 1, stacks.size(), f);
    std::fclose(f);
  }
  const size_t stack_lines =
      static_cast<size_t>(std::count(stacks.begin(), stacks.end(), '\n'));
  std::printf("flamegraph: %zu collapsed stacks -> BENCH_flamegraph.txt\n",
              stack_lines);

  // Memory-budget enforcement, end to end: the short class's Q6 fingerprint
  // now carries a learned peak-memory EWMA, so capping class 3 far below it
  // makes the next class-3 Q6 fail admission with the typed error while the
  // same query in uncapped class 0 still completes.
  engine->set_class_memory_budget(kShortClass, 1024);
  bool budget_rejected = false;
  bool rejected_at_admission = false;
  unsigned long long attempted_bytes = 0;
  {
    QueryProgram q6 = BuildTpchQuery(6, *catalog);
    QueryRunOptions options;
    options.query_class = kShortClass;
    try {
      engine->Run(q6, options);
    } catch (const MemoryBudgetExceeded& e) {
      budget_rejected = true;
      rejected_at_admission = e.at_admission();
      attempted_bytes = static_cast<unsigned long long>(e.attempted_bytes());
    }
  }
  bool other_class_ok = false;
  {
    QueryProgram q6 = BuildTpchQuery(6, *catalog);
    QueryRunOptions options;
    options.query_class = 0;
    other_class_ok = !engine->Run(q6, options).rows.empty();
  }
  engine->set_class_memory_budget(kShortClass, 0);
  std::printf("budget demo: class-%d Q6 vs 1 KiB cap -> %s (%s, estimated "
              "%llu bytes); uncapped class-0 Q6 %s\n",
              kShortClass,
              budget_rejected ? "rejected" : "NOT rejected",
              rejected_at_admission ? "at admission" : "at runtime",
              attempted_bytes,
              other_class_ok ? "completed" : "FAILED");

  if (smoke) {
    // Acceptance: the short class was served, and its p99 is bounded by a
    // generous multiple of isolated latency (CI machines are noisy; the
    // regression this guards is the unbounded "behind a whole long scan"
    // latency, orders of magnitude above the bound).
    const double bound = std::max(250.0, 40.0 * std::max(isolated_p50, 1.0));
    int failures = 0;
    if (shorts.queries == 0) {
      std::fprintf(stderr, "SMOKE FAIL: no short-class query completed\n");
      ++failures;
    }
    if (shorts.p99_ms >= bound) {
      std::fprintf(stderr,
                   "SMOKE FAIL: short-class p99 %.2f ms >= bound %.2f ms "
                   "(isolated p50 %.2f ms)\n",
                   shorts.p99_ms, bound, isolated_p50);
      ++failures;
    }
    if (shorts.peak_bytes_max == 0 || longs.peak_bytes_max == 0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: per-query peak memory not tracked (short "
                   "max %llu, long max %llu)\n",
                   static_cast<unsigned long long>(shorts.peak_bytes_max),
                   static_cast<unsigned long long>(longs.peak_bytes_max));
      ++failures;
    }
    if (stack_lines == 0) {
      std::fprintf(stderr, "SMOKE FAIL: profiler produced no collapsed "
                           "stacks during the mixed phase\n");
      ++failures;
    }
    if (!budget_rejected || !rejected_at_admission) {
      std::fprintf(stderr,
                   "SMOKE FAIL: over-budget class-%d query was %s\n",
                   kShortClass,
                   budget_rejected ? "rejected at runtime, not admission"
                                   : "not rejected");
      ++failures;
    }
    if (!other_class_ok) {
      std::fprintf(stderr, "SMOKE FAIL: uncapped class-0 query failed "
                           "while class-%d was capped\n",
                   kShortClass);
      ++failures;
    }
    if (failures > 0) return 1;
    std::printf("smoke assertions passed: short p99 %.2f ms < %.2f ms "
                "(isolated p50 %.2f ms, %llu shorts, %llu longs, "
                "%zu stacks, budget rejection typed)\n",
                shorts.p99_ms, bound, isolated_p50,
                static_cast<unsigned long long>(shorts.queries),
                static_cast<unsigned long long>(longs.queries), stack_lines);
  }
  return 0;
}

/// End-of-run observability dump: the engine's full metrics snapshot as one
/// JSON line (stdout + BENCH_observability.json), and — when AQE_TRACE_JSON
/// names a path — the Chrome-trace export of the per-worker rings, loadable
/// in chrome://tracing / ui.perfetto.dev (CI validates it with
/// ci/check_trace.py).
void ExportObservability(QueryEngine* engine, const char* bench_name) {
  MetricsSnapshot snap = engine->ObservabilitySnapshot();
  const std::string stats = snap.ToJson();
  std::printf("{\"bench\":\"%s\",\"observability\":%s}\n", bench_name,
              stats.c_str());
  if (std::FILE* f = std::fopen("BENCH_observability.json", "w")) {
    std::fprintf(f, "%s\n", stats.c_str());
    std::fclose(f);
  }
  const char* trace_path = std::getenv("AQE_TRACE_JSON");
  if (trace_path != nullptr && *trace_path != '\0') {
    const std::string trace = engine->ExportChromeTrace();
    if (std::FILE* f = std::fopen(trace_path, "w")) {
      std::fwrite(trace.data(), 1, trace.size(), f);
      std::fclose(f);
      std::printf("trace: wrote %zu bytes to %s (recorded %llu, dropped "
                  "%llu events)\n",
                  trace.size(), trace_path,
                  static_cast<unsigned long long>(
                      engine->tracer().total_recorded()),
                  static_cast<unsigned long long>(
                      engine->tracer().total_dropped()));
    } else {
      std::fprintf(stderr, "trace: cannot open %s\n", trace_path);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool mixed = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mixed") == 0) mixed = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double sf = bench::EnvDouble("AQE_SF", smoke ? 0.01 : 0.02);
  const double budget =
      bench::EnvDouble("AQE_BENCH_SECONDS", smoke ? 1.0 : 2.0);
  const int hw = std::min(static_cast<int>(std::thread::hardware_concurrency()),
                          TaskScheduler::kMaxWorkers);
  const int workers = bench::EnvInt("AQE_THREADS", std::max(1, hw));
  Catalog* catalog = bench::TpchAtScale(sf);
  QueryEngineOptions engine_options;
  engine_options.num_threads = workers;
  // AQE_STATS_PORT: serve /metrics, /trace.json and /profiles while the
  // bench runs (0 picks an ephemeral port; ci/check_metrics_endpoint.py
  // parses the line below and curls the endpoints mid-run).
  if (const char* port_env = std::getenv("AQE_STATS_PORT");
      port_env != nullptr && *port_env != '\0') {
    engine_options.stats_port = std::atoi(port_env);
  }
  QueryEngine engine(catalog, engine_options);
  if (engine.stats_port() >= 0) {
    std::printf("stats server: http://127.0.0.1:%d "
                "(/metrics /trace.json /profiles /profile)\n",
                engine.stats_port());
    std::fflush(stdout);  // consumers poll the pipe for this line
  }

  {  // warmup: fault in the catalog, LLVM init, first JIT
    QueryProgram q6 = BuildTpchQuery(6, *catalog);
    engine.Run(q6);
  }

  if (mixed) {
    const int rc = RunMixed(&engine, catalog, workers, budget, smoke);
    ExportObservability(&engine, "fairness");
    return rc;
  }

  std::FILE* json_out = std::fopen("BENCH_throughput_concurrent.json", "w");
  std::printf(
      "Concurrent query throughput (SF %g, %d workers, %.1fs per phase)\n",
      sf, workers, budget);
  std::printf("%-10s %8s %10s %12s %10s %10s %10s\n", "phase", "clients",
              "queries", "queries/s", "p50 [ms]", "p99 [ms]", "speedup");

  // Serial baseline: one client, back-to-back Run().
  PhaseResult serial = RunPhase(&engine, catalog, 1, budget);
  Report(serial, "serial", 0, workers, json_out);

  // Concurrent phases: 1x / 2x / 4x the worker count.
  for (int mult : {1, 2, 4}) {
    int clients = std::max(2, mult * workers);
    PhaseResult r = RunPhase(&engine, catalog, clients, budget);
    Report(r, mult == 1 ? "conc-1x" : (mult == 2 ? "conc-2x" : "conc-4x"),
           serial.qps(), workers, json_out);
  }

  std::printf(
      "\nexpected shape: queries/s grows with clients until the workers "
      "saturate; p99 grows with queueing. The 2x-core-count phase is the "
      "acceptance point (>= 2x serial qps on multi-core hosts).\n");
  if (json_out != nullptr) std::fclose(json_out);
  ExportObservability(&engine, "throughput_concurrent");
  return 0;
}
