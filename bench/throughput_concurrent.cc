// Multi-client throughput benchmark: N concurrent clients share one
// QueryEngine via the Submit() future API, versus the serial baseline of
// back-to-back Run() calls from a single client — the first throughput
// point in the bench trajectory (the paper's premise is serving queries
// with low latency while compilation happens concurrently; this measures
// how many of them per second the task scheduler sustains).
//
// Workload: alternating TPC-H Q6 (single scan pipeline) and Q1 (scan +
// aggregate) at AQE_SF. Client counts sweep 1x/2x/4x the engine's worker
// count (closed loop: each client submits, waits, repeats).
//
// Emits one machine-readable JSON line per phase (also written to
// BENCH_throughput_concurrent.json): queries/sec, p50/p99 latency, and the
// speedup over the serial baseline.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"

using namespace aqe;

namespace {

struct PhaseResult {
  int clients = 0;
  uint64_t queries = 0;
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;

  double qps() const { return static_cast<double>(queries) / seconds; }
};

double Percentile(std::vector<double>* latencies_ms, double p) {
  if (latencies_ms->empty()) return 0;
  std::sort(latencies_ms->begin(), latencies_ms->end());
  size_t index = static_cast<size_t>(p * static_cast<double>(
                                             latencies_ms->size() - 1));
  return (*latencies_ms)[index];
}

/// One closed-loop client: build query -> Run -> record latency, until the
/// shared deadline. Queries alternate Q6/Q1 so both pipeline shapes mix.
void ClientLoop(QueryEngine* engine, const Catalog* catalog, int client_id,
                double budget_seconds, std::vector<double>* latencies_ms) {
  Timer phase_timer;
  int i = 0;
  while (phase_timer.ElapsedSeconds() < budget_seconds) {
    QueryProgram program =
        BuildTpchQuery((client_id + i++) % 2 == 0 ? 6 : 1, *catalog);
    QueryRunOptions options;
    options.strategy = ExecutionStrategy::kAdaptive;
    Timer query_timer;
    QueryRunResult result = engine->Run(program, options);
    latencies_ms->push_back(query_timer.ElapsedMillis());
    if (result.rows.empty()) std::abort();  // paranoia: results must exist
  }
}

PhaseResult RunPhase(QueryEngine* engine, const Catalog* catalog, int clients,
                     double budget_seconds) {
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  Timer timer;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(ClientLoop, engine, catalog, c, budget_seconds,
                         &latencies[static_cast<size_t>(c)]);
  }
  for (auto& t : threads) t.join();
  PhaseResult result;
  result.clients = clients;
  result.seconds = timer.ElapsedSeconds();
  std::vector<double> all;
  for (auto& l : latencies) {
    result.queries += l.size();
    all.insert(all.end(), l.begin(), l.end());
  }
  result.p50_ms = Percentile(&all, 0.50);
  result.p99_ms = Percentile(&all, 0.99);
  return result;
}

void Report(const PhaseResult& r, const char* label, double serial_qps,
            int workers, std::FILE* json_out) {
  std::printf("%-10s %8d %10llu %12.1f %10.2f %10.2f %9.2fx\n", label,
              r.clients, static_cast<unsigned long long>(r.queries), r.qps(),
              r.p50_ms, r.p99_ms, serial_qps > 0 ? r.qps() / serial_qps : 1.0);
  char line[320];
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"throughput_concurrent\",\"phase\":\"%s\","
                "\"clients\":%d,\"workers\":%d,\"queries\":%llu,"
                "\"queries_per_sec\":%.3f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
                "\"speedup_vs_serial\":%.4f}",
                label, r.clients, workers,
                static_cast<unsigned long long>(r.queries), r.qps(), r.p50_ms,
                r.p99_ms, serial_qps > 0 ? r.qps() / serial_qps : 1.0);
  std::printf("%s\n", line);
  if (json_out != nullptr) std::fprintf(json_out, "%s\n", line);
}

}  // namespace

int main() {
  const double sf = bench::EnvDouble("AQE_SF", 0.02);
  const double budget = bench::EnvDouble("AQE_BENCH_SECONDS", 2.0);
  const int hw = std::min(static_cast<int>(std::thread::hardware_concurrency()),
                          TaskScheduler::kMaxWorkers);
  const int workers = bench::EnvInt("AQE_THREADS", std::max(1, hw));
  Catalog* catalog = bench::TpchAtScale(sf);
  QueryEngine engine(catalog, workers);
  std::FILE* json_out = std::fopen("BENCH_throughput_concurrent.json", "w");

  std::printf(
      "Concurrent query throughput (SF %g, %d workers, %.1fs per phase)\n",
      sf, workers, budget);
  std::printf("%-10s %8s %10s %12s %10s %10s %10s\n", "phase", "clients",
              "queries", "queries/s", "p50 [ms]", "p99 [ms]", "speedup");

  {  // warmup: fault in the catalog, LLVM init, first JIT
    QueryProgram q6 = BuildTpchQuery(6, *catalog);
    engine.Run(q6);
  }

  // Serial baseline: one client, back-to-back Run().
  PhaseResult serial = RunPhase(&engine, catalog, 1, budget);
  Report(serial, "serial", 0, workers, json_out);

  // Concurrent phases: 1x / 2x / 4x the worker count.
  for (int mult : {1, 2, 4}) {
    int clients = std::max(2, mult * workers);
    PhaseResult r = RunPhase(&engine, catalog, clients, budget);
    Report(r, mult == 1 ? "conc-1x" : (mult == 2 ? "conc-2x" : "conc-4x"),
           serial.qps(), workers, json_out);
  }

  std::printf(
      "\nexpected shape: queries/s grows with clients until the workers "
      "saturate; p99 grows with queueing. The 2x-core-count phase is the "
      "acceptance point (>= 2x serial qps on multi-core hosts).\n");
  if (json_out != nullptr) std::fclose(json_out);
  return 0;
}
