// String predicate benchmark: the src/strings/ acceptance harness. LIKE
// predicates run end-to-end under three per-row representations —
//
//   bitmap   dictionary pre-evaluation: byte-per-code bitmap probe (or a
//            code-range compare for prefix patterns), fuses with br_*
//   call     per-row aqe_like_match runtime call: the call-heavy regime
//            where compiled speedup shrinks (runtime-call-density signal)
//   index    the same runtime-call lowering with scan pruning enabled: the
//            inverted token index intersects postings and only candidate
//            morsels are ever scheduled (src/index/); the call is the
//            residual verify. Only orders.o_comment carries a token index,
//            so the other workloads measure the no-index fallback.
//   (all measured interpreted and compiled, across both VM dispatch
//   engines, the JIT and the adaptive controller; bitmap/call run with
//   pruning disabled so their per-row numbers keep meaning full scans)
//
// over three workloads:
//
//   dict      lineitem: l_shipinstruct LIKE '%TAKE%BACK%' (4 distinct
//             strings; general pattern, see note on kWorkloads)
//   q16       part:     NOT p_type LIKE 'MEDIUM POLISHED%' (range compare)
//   highcard  orders:   o_comment LIKE '%special%requests%' (Q13's
//             predicate; nearly every comment distinct, so kAuto takes the
//             runtime-call path and the shift-or matcher runs per row)
//
// Emits JSON lines (also to BENCH_strings.json): ns/row, match counts,
// runtime-call density, adaptive final mode. `--smoke` asserts the
// acceptance criteria: all engines agree on every workload, and on the
// dictionary workload the bitmap path is >= 3x the runtime-call path per
// row (exit 1 otherwise) — CI runs this in the Release jobs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "simd/simd.h"
#include "strings/like_lowering.h"

using namespace aqe;

namespace {

struct Workload {
  const char* name;
  const char* table;
  const char* column;
  const char* pattern;
  bool negate = false;
};

// The dict workload's pattern is deliberately *general* (two '%'-separated
// segments -> the compiled shift-or matcher): the bitmap path's per-row
// probe cost is pattern-independent — pre-evaluation absorbs any matcher
// complexity at setup — while the call path pays it per row. A bare
// contains pattern would understate the gap the bitmap path exists to
// close.
const Workload kWorkloads[] = {
    {"dict", "lineitem", "l_shipinstruct", "%TAKE%BACK%", false},
    {"q16", "part", "p_type", "MEDIUM POLISHED%", true},
    {"highcard", "orders", "o_comment", "%special%requests%", false},
};

/// SELECT count(*) FROM <table> WHERE [NOT] <column> LIKE <pattern>.
const char* PathName(LikeStrategy strategy) {
  switch (strategy) {
    case LikeStrategy::kBitmap: return "bitmap";
    case LikeStrategy::kIndex: return "index";
    default: return "call";
  }
}

QueryProgram BuildLikeCount(const Catalog& catalog, const Workload& w,
                            LikeStrategy strategy) {
  QueryProgram q(std::string("strings_") + w.name + "_" +
                 PathName(strategy));
  const Table* table = catalog.GetTable(w.table);
  int t = q.DeclareBaseTable(w.table);
  LikeLoweringOptions options;
  options.strategy = strategy;
  LoweredLike lowered = LowerLikePredicate(
      &q, *table, table->ColumnIndex(w.column), /*code_slot=*/0, w.pattern,
      options);
  ExprPtr predicate = std::move(lowered.expr);
  if (w.negate) predicate = Not(std::move(predicate));

  int agg = q.DeclareAggSet(1, {0});
  PipelineSpec p;
  p.name = std::string("scan ") + w.table;
  p.source_table = t;
  p.scan_columns = {table->ColumnIndex(w.column)};
  p.ops.push_back(OpFilter{std::move(predicate)});
  SinkAgg sink;
  sink.agg = agg;
  sink.key = I64(0);
  sink.items.push_back({AggKind::kCount, nullptr, false});
  p.sink = std::move(sink);
  q.AddPipeline(std::move(p));
  q.AddStep([agg](QueryContext* ctx) {
    AggHashTable merged(1, {0});
    ctx->agg_sets[static_cast<size_t>(agg)]->MergeInto(
        &merged, [](uint32_t, int64_t* acc, int64_t v) { *acc += v; });
    int64_t count = 0;
    merged.ForEach([&count](int64_t, void* payload) {
      count = static_cast<const int64_t*>(payload)[0];
    });
    ctx->result.push_back({count});
  });
  return q;
}

/// SELECT count(*) FROM orders WHERE lo <= o_orderkey < hi. o_orderkey is
/// appended in ascending order, so the predicate is clustered: zone maps
/// can prune every morsel outside the key window before scheduling. This
/// is the zone-map probe's plan (pruning off vs on on the same plan).
QueryProgram BuildRangeCount(const Catalog& catalog, int64_t lo, int64_t hi) {
  QueryProgram q("strings_zonemap_range");
  const Table* table = catalog.GetTable("orders");
  int t = q.DeclareBaseTable("orders");
  int agg = q.DeclareAggSet(1, {0});
  PipelineSpec p;
  p.name = "scan orders";
  p.source_table = t;
  p.scan_columns = {table->ColumnIndex("o_orderkey")};
  p.ops.push_back(
      OpFilter{And(Ge(Slot(0), I64(lo)), Lt(Slot(0), I64(hi)))});
  SinkAgg sink;
  sink.agg = agg;
  sink.key = I64(0);
  sink.items.push_back({AggKind::kCount, nullptr, false});
  p.sink = std::move(sink);
  q.AddPipeline(std::move(p));
  q.AddStep([agg](QueryContext* ctx) {
    AggHashTable merged(1, {0});
    ctx->agg_sets[static_cast<size_t>(agg)]->MergeInto(
        &merged, [](uint32_t, int64_t* acc, int64_t v) { *acc += v; });
    int64_t count = 0;
    merged.ForEach([&count](int64_t, void* payload) {
      count = static_cast<const int64_t*>(payload)[0];
    });
    ctx->result.push_back({count});
  });
  return q;
}

struct EngineConfig {
  EngineKind engine;
  ExecutionStrategy strategy;
  VmDispatch vm_dispatch;
  const char* label;
};

const EngineConfig kConfigs[] = {
    {EngineKind::kVolcano, ExecutionStrategy::kBytecode, VmDispatch::kDefault,
     "volcano"},
    {EngineKind::kVectorized, ExecutionStrategy::kBytecode,
     VmDispatch::kDefault, "vectorized"},
    {EngineKind::kCompiled, ExecutionStrategy::kBytecode, VmDispatch::kSwitch,
     "vm-switch"},
    {EngineKind::kCompiled, ExecutionStrategy::kBytecode,
     VmDispatch::kThreaded, "vm-threaded"},
    {EngineKind::kCompiled, ExecutionStrategy::kOptimized,
     VmDispatch::kDefault, "jit-opt"},
    {EngineKind::kCompiled, ExecutionStrategy::kAdaptive, VmDispatch::kDefault,
     "adaptive"},
};

void EmitJson(const char* line, std::FILE* json_out) {
  std::printf("%s\n", line);
  if (json_out != nullptr) std::fprintf(json_out, "%s\n", line);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Smoke needs enough rows that the bitmap path's ns/row isn't dominated
  // by fixed pipeline overhead (the 3x acceptance ratio is a per-row
  // claim), hence 0.02 rather than the usual 0.01 smoke scale.
  const double sf = bench::EnvDouble("AQE_SF", smoke ? 0.02 : 0.05);
  const int threads = bench::EnvInt("AQE_THREADS", 2);
  // Best-of-N with one untimed warmup per config; smoke repeats more so
  // the >= 3x acceptance ratio is stable on a noisy 1-core host (best-of
  // converges monotonically, and ~20% run-to-run variance was observed
  // with only 3 repeats).
  const int repeats = bench::EnvInt("AQE_REPEATS", smoke ? 9 : 5);
  Catalog* catalog = bench::TpchAtScale(sf);
  QueryEngine engine(catalog, threads);
  // A forced-level rerun (AQE_SIMD set) appends to the snapshot instead of
  // replacing it, so one file holds both levels side by side and the SIMD
  // speedup can be read off directly.
  std::FILE* json_out = std::fopen(
      "BENCH_strings.json", std::getenv("AQE_SIMD") != nullptr ? "a" : "w");

  // AQE_SIMD=scalar re-runs the whole bench on the scalar reference
  // kernels, isolating the SIMD speedup in the archived JSON (the level is
  // stamped into every line).
  const char* simd = SimdLevelName(ActiveSimdLevel());
  std::printf("String predicate benchmark (SF %g, %d workers, simd %s)%s\n",
              sf, threads, simd, smoke ? " [smoke]" : "");
  std::printf("%-9s %-7s %-11s %12s %10s %9s %s\n", "workload", "path",
              "engine", "rows", "matches", "ns/row", "final-mode");

  // best exec-seconds per (workload, path-label, engine-label)
  int failures = 0;
  double dict_bitmap_best_ns = 0, dict_call_best_ns = 0;
  double highcard_call_best_ns = 0, highcard_index_best_ns = 0;
  double highcard_index_selected_fraction = 1.0;

  for (const Workload& w : kWorkloads) {
    const Table* table = catalog->GetTable(w.table);
    const double rows = static_cast<double>(table->num_rows());
    int64_t reference_count = -1;

    for (LikeStrategy strategy :
         {LikeStrategy::kBitmap, LikeStrategy::kRuntimeCall,
          LikeStrategy::kIndex}) {
      const char* path = PathName(strategy);

      // Runtime-call density of this plan's scan pipeline (cost-model
      // input; ~0 on the bitmap path).
      QueryProgram cost_probe = BuildLikeCount(*catalog, w, strategy);
      const auto costs = engine.MeasureCompileCosts(
          cost_probe, /*measure_unopt=*/false, /*measure_opt=*/false);
      const double call_fraction =
          costs.empty() ? 0 : costs.front().runtime_call_fraction;

      for (const EngineConfig& config : kConfigs) {
        double best_exec = 0;
        int64_t matches = -1;
        ExecMode final_mode = ExecMode::kBytecode;
        double selected_fraction = 1.0;
        for (int r = -1; r < repeats; ++r) {  // r == -1: untimed warmup
          QueryProgram q = BuildLikeCount(*catalog, w, strategy);
          QueryRunOptions options;
          options.engine = config.engine;
          options.strategy = config.strategy;
          options.vm_dispatch = config.vm_dispatch;
          // Only the index path runs with scan pruning: bitmap/call keep
          // full scans so their per-row numbers stay comparable across PRs.
          options.scan_pruning = strategy == LikeStrategy::kIndex;
          // Whole pipeline on one thread (the paper's latency setup):
          // per-row costs aren't blurred by morsel scheduling, which
          // matters for the sub-ms bitmap-path runs the smoke asserts on.
          options.single_threaded = true;
          QueryRunResult result = engine.Run(q, options);
          const double exec = bench::ExecOnlySeconds(result);
          if (r <= 0 || exec < best_exec) best_exec = exec;
          matches = result.rows.at(0).at(0);
          for (const PipelineReport& p : result.pipelines) {
            final_mode = p.final_mode;
            if (p.pruning.analyzed) {
              selected_fraction = p.pruning.selected_fraction();
            }
          }
        }
        if (reference_count < 0) reference_count = matches;
        if (matches != reference_count) {
          std::fprintf(
              stderr, "DIFFERENTIAL FAIL: %s/%s/%s count %lld != reference "
                      "%lld\n",
              w.name, path, config.label, static_cast<long long>(matches),
              static_cast<long long>(reference_count));
          ++failures;
        }
        const double ns_per_row = best_exec / rows * 1e9;
        const bool compiled = config.engine == EngineKind::kCompiled;
        std::printf("%-9s %-7s %-11s %12.0f %10lld %9.2f %s\n", w.name, path,
                    config.label, rows, static_cast<long long>(matches),
                    ns_per_row,
                    compiled ? ExecModeName(final_mode) : "-");
        char line[512];
        std::snprintf(
            line, sizeof(line),
            "{\"bench\":\"string_predicates\",\"sf\":%g,\"simd\":\"%s\","
            "\"workload\":\"%s\","
            "\"path\":\"%s\",\"engine\":\"%s\",\"rows\":%.0f,"
            "\"matches\":%lld,\"ns_per_row\":%.3f,"
            "\"runtime_call_fraction\":%.4f,\"selected_fraction\":%.4f,"
            "\"final_mode\":\"%s\"}",
            sf, simd, w.name, path, config.label, rows,
            static_cast<long long>(matches), ns_per_row, call_fraction,
            selected_fraction, compiled ? ExecModeName(final_mode) : "-");
        EmitJson(line, json_out);

        if (std::strcmp(w.name, "dict") == 0 &&
            std::strcmp(config.label, "jit-opt") == 0) {
          if (strategy == LikeStrategy::kBitmap) {
            dict_bitmap_best_ns = ns_per_row;
          } else if (strategy == LikeStrategy::kRuntimeCall) {
            dict_call_best_ns = ns_per_row;
          }
        }
        if (std::strcmp(w.name, "highcard") == 0 &&
            std::strcmp(config.label, "jit-opt") == 0) {
          if (strategy == LikeStrategy::kRuntimeCall) {
            highcard_call_best_ns = ns_per_row;
          } else if (strategy == LikeStrategy::kIndex) {
            highcard_index_best_ns = ns_per_row;
            highcard_index_selected_fraction = selected_fraction;
          }
        }
      }
    }
  }

  // --- pure-kernel probe: active SIMD tier vs forced scalar -----------------
  // The engine-level dict numbers above are Amdahl-capped by the scan and
  // aggregation around the probe; this times BitmapProbeSelI32 itself on a
  // synthetic dictionary-code column, so the archived JSON carries the
  // kernel-level SIMD speedup directly. Skipped when the active level is
  // already scalar (nothing to compare).
  double probe_kernel_speedup = 0;
  if (ActiveSimdLevel() != SimdLevel::kScalar) {
    constexpr int kCodes = 1 << 16;
    constexpr int kDictSize = 1024;
    std::vector<int32_t> codes(kCodes);
    uint32_t rng = 0x9e3779b9u;
    for (int i = 0; i < kCodes; ++i) {
      rng = rng * 1664525u + 1013904223u;  // LCG: deterministic input
      codes[i] = static_cast<int32_t>(rng % kDictSize);
    }
    // ~5% of dictionary entries match, scattered at random — the shape of a
    // selective LIKE predicate. Selectivity matters: the scalar probe's
    // per-element branch mispredicts on a scattered bitmap, which is where
    // the branch-free gather+movemask kernel wins; at high selectivity the
    // compressed-store work dominates and the tiers converge.
    std::vector<uint8_t> bitmap(kDictSize + kSimdBitmapPadding, 0);
    for (int c = 0; c < kDictSize; ++c) {
      rng = rng * 1664525u + 1013904223u;
      bitmap[c] = (rng % 100) < 5 ? 1 : 0;
    }
    std::vector<int32_t> sel(kCodes);
    const SimdLevel levels[2] = {ActiveSimdLevel(), SimdLevel::kScalar};
    double mcodes[2] = {0, 0};
    for (int l = 0; l < 2; ++l) {
      volatile int sink = 0;
      for (int r = -1; r < repeats; ++r) {  // r == -1: untimed warmup
        const int passes = smoke ? 64 : 256;
        Timer timer;
        for (int p = 0; p < passes; ++p) {
          sink = BitmapProbeSelI32At(levels[l], codes.data(), kCodes,
                                     bitmap.data(), sel.data());
        }
        const double rate = passes * static_cast<double>(kCodes) /
                            (timer.ElapsedMillis() * 1e-3) / 1e6;
        if (r >= 0) mcodes[l] = std::max(mcodes[l], rate);
      }
      (void)sink;
      char kline[256];
      std::snprintf(kline, sizeof(kline),
                    "{\"bench\":\"string_predicates\","
                    "\"kernel\":\"bitmap_probe_sel_i32\",\"level\":\"%s\","
                    "\"mcodes_per_sec\":%.1f}",
                    SimdLevelName(levels[l]), mcodes[l]);
      EmitJson(kline, json_out);
    }
    probe_kernel_speedup = mcodes[1] > 0 ? mcodes[0] / mcodes[1] : 0;
    std::printf("\nbitmap probe kernel: %s %.0f Mcodes/s vs scalar %.0f "
                "Mcodes/s -> %.1fx\n",
                SimdLevelName(levels[0]), mcodes[0], mcodes[1],
                probe_kernel_speedup);
  }

  // --- zone-map probe: clustered range scan, pruning off vs on --------------
  // o_orderkey is appended in ascending order, so a 10%-of-rows key window
  // is clustered: zone maps should keep only the morsels overlapping the
  // window and never schedule the rest. Same plan, pruning toggled, so the
  // ratio is purely scan work saved (plus the differential count check).
  double zonemap_selected_fraction = 1.0;
  double zonemap_full_ns = 0, zonemap_pruned_ns = 0;
  {
    const Table* orders = catalog->GetTable("orders");
    const uint64_t orows = orders->num_rows();
    const Column& okey = orders->column("o_orderkey");
    const int64_t lo = okey.GetI64(orows * 45 / 100);
    const int64_t hi = okey.GetI64(orows * 55 / 100);
    int64_t reference_count = -1;
    for (const bool pruning : {false, true}) {
      double best_exec = 0;
      int64_t count = -1;
      double selected_fraction = 1.0;
      for (int r = -1; r < repeats; ++r) {  // r == -1: untimed warmup
        QueryProgram q = BuildRangeCount(*catalog, lo, hi);
        QueryRunOptions options;
        options.engine = EngineKind::kCompiled;
        options.strategy = ExecutionStrategy::kBytecode;
        options.scan_pruning = pruning;
        options.single_threaded = true;
        QueryRunResult result = engine.Run(q, options);
        const double exec = bench::ExecOnlySeconds(result);
        if (r <= 0 || exec < best_exec) best_exec = exec;
        count = result.rows.at(0).at(0);
        for (const PipelineReport& p : result.pipelines) {
          if (p.pruning.analyzed) {
            selected_fraction = p.pruning.selected_fraction();
          }
        }
      }
      if (reference_count < 0) reference_count = count;
      if (count != reference_count) {
        std::fprintf(stderr,
                     "DIFFERENTIAL FAIL: zonemap pruned count %lld != full "
                     "scan %lld\n",
                     static_cast<long long>(count),
                     static_cast<long long>(reference_count));
        ++failures;
      }
      const double ns_per_row = best_exec / static_cast<double>(orows) * 1e9;
      if (pruning) {
        zonemap_pruned_ns = ns_per_row;
        zonemap_selected_fraction = selected_fraction;
      } else {
        zonemap_full_ns = ns_per_row;
      }
      std::printf("%-9s %-7s %-11s %12llu %10lld %9.2f -\n", "zonemap",
                  pruning ? "pruned" : "full", "vm-switch",
                  static_cast<unsigned long long>(orows),
                  static_cast<long long>(count), ns_per_row);
      char zline[384];
      std::snprintf(
          zline, sizeof(zline),
          "{\"bench\":\"string_predicates\",\"sf\":%g,\"simd\":\"%s\","
          "\"workload\":\"zonemap\",\"path\":\"%s\",\"engine\":\"vm-switch\","
          "\"rows\":%llu,\"matches\":%lld,\"ns_per_row\":%.3f,"
          "\"selected_fraction\":%.4f}",
          sf, simd, pruning ? "pruned" : "full",
          static_cast<unsigned long long>(orows),
          static_cast<long long>(count), ns_per_row, selected_fraction);
      EmitJson(zline, json_out);
    }
  }

  const double bitmap_advantage =
      dict_bitmap_best_ns > 0 ? dict_call_best_ns / dict_bitmap_best_ns : 0;
  const double index_advantage =
      highcard_index_best_ns > 0 ? highcard_call_best_ns / highcard_index_best_ns
                                 : 0;
  const double zonemap_advantage =
      zonemap_pruned_ns > 0 ? zonemap_full_ns / zonemap_pruned_ns : 0;
  char line[640];
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"string_predicates\",\"summary\":{"
                "\"simd\":\"%s\","
                "\"dict_bitmap_ns_per_row\":%.3f,"
                "\"dict_call_ns_per_row\":%.3f,"
                "\"bitmap_over_call\":%.2f,"
                "\"highcard_index_ns_per_row\":%.3f,"
                "\"highcard_call_ns_per_row\":%.3f,"
                "\"index_over_call\":%.2f,"
                "\"highcard_selected_fraction\":%.4f,"
                "\"zonemap_selected_fraction\":%.4f,"
                "\"zonemap_speedup\":%.2f,"
                "\"probe_kernel_speedup\":%.2f}}",
                simd, dict_bitmap_best_ns, dict_call_best_ns,
                bitmap_advantage, highcard_index_best_ns,
                highcard_call_best_ns, index_advantage,
                highcard_index_selected_fraction, zonemap_selected_fraction,
                zonemap_advantage, probe_kernel_speedup);
  EmitJson(line, json_out);
  if (json_out != nullptr) std::fclose(json_out);

  std::printf("\ndictionary workload, jit-opt: bitmap %.2f ns/row vs call "
              "%.2f ns/row -> %.1fx\n",
              dict_bitmap_best_ns, dict_call_best_ns, bitmap_advantage);
  std::printf("highcard workload, jit-opt: index %.2f ns/row (%.1f%% of rows "
              "scheduled) vs call %.2f ns/row -> %.1fx\n",
              highcard_index_best_ns,
              highcard_index_selected_fraction * 100, highcard_call_best_ns,
              index_advantage);
  std::printf("zonemap range scan: pruned %.2f ns/row (%.1f%% of rows "
              "scheduled) vs full %.2f ns/row -> %.1fx\n",
              zonemap_pruned_ns, zonemap_selected_fraction * 100,
              zonemap_full_ns, zonemap_advantage);

  if (smoke) {
    // Acceptance: the pre-evaluated bitmap probe must beat the per-row
    // runtime call by >= 3x on the dictionary-encoded workload.
    if (bitmap_advantage < 3.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: bitmap path only %.2fx the runtime-call "
                   "path (need >= 3x)\n",
                   bitmap_advantage);
      ++failures;
    }
    // Acceptance (src/index/): the inverted-index access path must beat
    // the full-scan runtime-call path >= 10x per input row on the highcard
    // contains workload, and the clustered zone-map range scan must
    // schedule < 20% of the table's rows.
    if (index_advantage < 10.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: index path only %.2fx the runtime-call "
                   "path on highcard (need >= 10x)\n",
                   index_advantage);
      ++failures;
    }
    if (zonemap_selected_fraction >= 0.2) {
      std::fprintf(stderr,
                   "SMOKE FAIL: zone-map range scan scheduled %.1f%% of "
                   "rows (need < 20%%)\n",
                   zonemap_selected_fraction * 100);
      ++failures;
    }
    if (failures == 0) {
      std::printf("smoke assertions passed: engines agree, bitmap %.1fx "
                  ">= 3x call path, index %.1fx >= 10x call path, zonemap "
                  "scheduled %.1f%% < 20%%\n",
                  bitmap_advantage, index_advantage,
                  zonemap_selected_fraction * 100);
    }
  }
  // Engine disagreement is a correctness failure in any mode; the perf
  // ratio only gates --smoke.
  return failures > 0 ? 1 : 0;
}
