// Regenerates Fig 14: the execution trace of TPC-H Q11 under bytecode,
// unoptimized and adaptive execution — morsel timelines per worker thread
// with compilation events. Adaptive should interpret the small pipelines
// and compile only the two big partsupp scans.
#include "bench/bench_util.h"

using namespace aqe;

int main() {
  double sf = bench::EnvDouble("AQE_SF", 1.0);
  int threads = bench::EnvInt("AQE_THREADS", 4);
  Catalog* catalog = bench::TpchAtScale(sf);
  QueryEngine engine(catalog, threads);

  struct ModeRow {
    const char* label;
    ExecutionStrategy strategy;
  };
  const ModeRow modes[] = {
      {"bytecode", ExecutionStrategy::kBytecode},
      {"unoptimized", ExecutionStrategy::kUnoptimized},
      {"adaptive", ExecutionStrategy::kAdaptive},
  };
  std::printf("Fig 14 — execution trace of TPC-H Q11 (SF %g, %d threads)\n\n",
              sf, threads);
  for (const ModeRow& mode : modes) {
    TraceRecorder trace;
    trace.Start();
    QueryProgram q = BuildTpchQuery(11, *catalog);
    QueryRunOptions options;
    options.strategy = mode.strategy;
    options.trace = &trace;
    // The trace shows cold compiles; cached artifacts would blank them.
    options.use_artifact_cache = false;
    QueryRunResult r = engine.Run(q, options);
    std::printf("--- %s (total %.2f ms, final modes:", mode.label,
                r.total_seconds * 1e3);
    for (const auto& p : r.pipelines) {
      std::printf(" %s=%s", p.name.c_str(), ExecModeName(p.final_mode));
    }
    std::printf(")\n%s\n", trace.Render(threads, 100).c_str());
  }
  std::printf("expected shape: adaptive compiles ('#') only the two partsupp "
              "pipelines and beats both static modes\n");
  return 0;
}
