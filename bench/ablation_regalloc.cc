// §IV-C ablation: register-file sizes and translation times under the three
// register-allocation strategies (no-reuse / fixed-window / loop-aware) —
// the paper's 36 KB / 21 KB / 6 KB comparison on its largest query.
#include "bench/bench_util.h"
#include "queries/generated_queries.h"
#include "vm/register_allocator.h"

using namespace aqe;

namespace {

void Report(QueryEngine* engine, const Catalog& catalog,
            const std::string& label, QueryProgram (*build)(int, const Catalog&),
            int arg) {
  const RegAllocStrategy strategies[] = {
      RegAllocStrategy::kNoReuse, RegAllocStrategy::kWindow,
      RegAllocStrategy::kLoopAware};
  std::printf("%-10s", label.c_str());
  for (RegAllocStrategy strategy : strategies) {
    QueryProgram q = build(arg, catalog);
    TranslatorOptions options;
    options.strategy = strategy;
    auto costs =
        engine->MeasureCompileCosts(q, false, false, options);
    uint32_t bytes = 0;
    double ms = 0;
    for (const auto& c : costs) {
      bytes = std::max(bytes, c.register_file_bytes);
      ms += c.bytecode_millis;
    }
    std::printf(" %9u B %8.2f ms", bytes, ms);
  }
  std::printf("\n");
}

QueryProgram BuildTpch(int number, const Catalog& catalog) {
  return BuildTpchQuery(number, catalog);
}

}  // namespace

int main() {
  Catalog* catalog = bench::TpchAtScale(bench::EnvDouble("AQE_SF", 0.01));
  QueryEngine engine(catalog, 1);

  std::printf("Register allocation ablation (largest worker per query)\n");
  std::printf("%-10s %22s %22s %22s\n", "query", "no-reuse", "window",
              "loop-aware");
  for (int number : ImplementedTpchQueries()) {
    Report(&engine, *catalog, "q" + std::to_string(number), &BuildTpch,
           number);
  }
  for (int n : {200, 800}) {
    Report(&engine, *catalog, "gen" + std::to_string(n),
           &BuildGeneratedAggregateQuery, n);
  }
  std::printf("\nexpected shape: loop-aware several-fold below no-reuse "
              "(paper: 36KB -> 6KB on TPC-DS q55), window in between; "
              "translation time stays linear for all three\n");
  return 0;
}
