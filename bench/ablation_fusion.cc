// §IV-F ablation: effect of macro-operation fusion (overflow-check
// sequences and GEP+load/store folding) on bytecode size and interpreter
// throughput, on the arithmetic-heavy Q1 and the filter-heavy Q6.
#include "bench/bench_util.h"

using namespace aqe;

int main() {
  double sf = bench::EnvDouble("AQE_SF", 0.1);
  Catalog* catalog = bench::TpchAtScale(sf);
  QueryEngine engine(catalog, 1);

  std::printf("Macro-op fusion ablation (SF %g, bytecode mode, 1 thread)\n",
              sf);
  std::printf("%6s %10s %12s %12s %10s\n", "query", "fusion", "bc size[ops]",
              "translate", "exec [ms]");
  for (int number : {1, 6, 14}) {
    for (bool fuse : {true, false}) {
      QueryProgram q = BuildTpchQuery(number, *catalog);
      QueryRunOptions options;
      options.strategy = ExecutionStrategy::kBytecode;
      options.translator.fuse_macro_ops = fuse;
      QueryRunResult r = engine.Run(q, options);
      // Count translated ops via compile-cost API for the same setting.
      QueryProgram q2 = BuildTpchQuery(number, *catalog);
      auto costs =
          engine.MeasureCompileCosts(q2, false, false, options.translator);
      uint64_t instrs = 0;
      for (const auto& c : costs) instrs += c.bytecode_ops;
      std::printf("%6d %10s %12llu %10.2fms %10.1f\n", number,
                  fuse ? "on" : "off",
                  static_cast<unsigned long long>(instrs),
                  r.translate_millis_total,
                  bench::ExecOnlySeconds(r) * 1e3);
    }
  }
  std::printf("\nexpected shape: fusion reduces executed VM instructions and "
              "execution time (paper: 'greatly reduces the number of "
              "instructions for some queries')\n");
  return 0;
}
