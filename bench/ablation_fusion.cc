// §IV-F ablation: effect of macro-operation fusion (overflow-check
// sequences, GEP+load/store folding, and compare-and-branch
// superinstructions) on bytecode size and interpreter throughput, on the
// arithmetic-heavy Q1 and the filter-heavy Q6.
#include "bench/bench_util.h"

using namespace aqe;

int main() {
  double sf = bench::EnvDouble("AQE_SF", 0.1);
  Catalog* catalog = bench::TpchAtScale(sf);
  QueryEngine engine(catalog, 1);

  struct FusionConfig {
    const char* label;
    bool macro_ops;
    bool cmp_branches;
  };
  const FusionConfig configs[] = {
      {"none", false, false},
      {"macro", true, false},
      {"macro+cmpbr", true, true},
  };

  std::printf(
      "Macro-op fusion ablation (SF %g, bytecode mode, 1 thread)\n", sf);
  std::printf("%6s %12s %12s %8s %8s %12s %10s\n", "query", "fusion",
              "bc size[ops]", "fused", "cmp-brs", "translate", "exec [ms]");
  for (int number : {1, 6, 14}) {
    for (const FusionConfig& config : configs) {
      QueryProgram q = BuildTpchQuery(number, *catalog);
      QueryRunOptions options;
      options.strategy = ExecutionStrategy::kBytecode;
      options.translator.fuse_macro_ops = config.macro_ops;
      options.translator.fuse_cmp_branches = config.cmp_branches;
      QueryRunResult r = engine.Run(q, options);
      // Count translated ops via compile-cost API for the same setting.
      QueryProgram q2 = BuildTpchQuery(number, *catalog);
      auto costs =
          engine.MeasureCompileCosts(q2, false, false, options.translator);
      uint64_t instrs = 0, fused = 0, cmp_brs = 0;
      for (const auto& c : costs) {
        instrs += c.bytecode_ops;
        fused += c.fused_ops;
        cmp_brs += c.fused_cmp_branches;
      }
      std::printf("%6d %12s %12llu %8llu %8llu %10.2fms %10.1f\n", number,
                  config.label, static_cast<unsigned long long>(instrs),
                  static_cast<unsigned long long>(fused),
                  static_cast<unsigned long long>(cmp_brs),
                  r.translate_millis_total,
                  bench::ExecOnlySeconds(r) * 1e3);
    }
  }
  std::printf("\nexpected shape: each fusion class reduces executed VM "
              "instructions and execution time (paper: 'greatly reduces the "
              "number of instructions for some queries')\n");
  return 0;
}
