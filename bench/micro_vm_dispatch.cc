// Microbenchmark: raw dispatch throughput of the interpreter engines (and
// the JIT tiers for context) on interpreter-mode kernels, isolating
// interpretation overhead from query plumbing.
//
// Configs compared side by side:
//   switch          for(;;)-switch dispatch, no cmp-branch fusion — the
//                   seed interpreter's shape (macro-op fusion on)
//   switch+fused    switch dispatch + compare-and-branch superinstructions
//   threaded        direct-threaded (computed goto) dispatch
//   threaded+fused  threaded dispatch + compare-and-branch fusion
//
// Two kernels: TPC-H Q6's scan-filter-sum pipeline (real generated code)
// and a synthetic expression loop (compare/branch/arithmetic heavy, the
// worst case for dispatch overhead).
//
// Each config prints one machine-readable JSON line (also written to
// BENCH_micro_vm_dispatch.json, one snapshot per run) so each PR's perf
// numbers can be archived and compared.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <llvm/IR/IRBuilder.h>

#include "bench/bench_util.h"
#include "codegen/query_compiler.h"
#include "common/timer.h"
#include "engine/query_engine.h"
#include "ir/ir_module.h"
#include "jit/jit_compiler.h"
#include "obs/memory_tracker.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace_ring.h"
#include "runtime/runtime_registry.h"
#include "vm/interpreter.h"
#include "vm/translator.h"

namespace aqe {
namespace {

struct Q6Kernel {
  Catalog* catalog;
  QueryProgram program;
  std::unique_ptr<QueryContext> ctx;
  PipelineBindings bindings;
  std::vector<uint64_t> binding_values;  ///< the worker's `state` argument
  uint64_t rows;

  explicit Q6Kernel(double sf)
      : catalog(bench::TpchAtScale(sf)),
        program(BuildTpchQuery(6, *catalog)) {
    ctx = program.MakeContext(catalog);
    bindings = BindPipeline(program, program.pipelines()[0], *ctx);
    binding_values = bindings.Pack();
    rows = catalog->GetTable("lineitem")->num_rows();
  }
  const PipelineSpec& spec() const { return program.pipelines()[0]; }
  void* state() { return binding_values.data(); }
};

/// Builds `i64 f(i64 lo, i64 n, ptr buf)`: a loop over `n` rows of i64
/// data with a filter compare, a data-dependent branch, and a running sum —
/// the expression shape whose cost is almost entirely dispatch.
void BuildExpressionKernel(IrModule* mod) {
  auto& ctx = mod->context();
  llvm::IRBuilder<> b(ctx);
  auto* i64 = llvm::Type::getInt64Ty(ctx);
  auto* fty = llvm::FunctionType::get(
      i64, {i64, i64, llvm::Type::getInt64PtrTy(ctx)}, false);
  auto* fn = llvm::Function::Create(fty, llvm::Function::ExternalLinkage, "f",
                                    &mod->module());
  auto* entry = llvm::BasicBlock::Create(ctx, "entry", fn);
  auto* head = llvm::BasicBlock::Create(ctx, "head", fn);
  auto* body = llvm::BasicBlock::Create(ctx, "body", fn);
  auto* keep = llvm::BasicBlock::Create(ctx, "keep", fn);
  auto* next = llvm::BasicBlock::Create(ctx, "next", fn);
  auto* exit = llvm::BasicBlock::Create(ctx, "exit", fn);

  b.SetInsertPoint(entry);
  b.CreateBr(head);

  b.SetInsertPoint(head);
  auto* i = b.CreatePHI(i64, 2, "i");
  auto* sum = b.CreatePHI(i64, 2, "sum");
  auto* cond = b.CreateICmpSLT(i, fn->getArg(1));
  b.CreateCondBr(cond, body, exit);

  b.SetInsertPoint(body);
  auto* gep = b.CreateGEP(i64, fn->getArg(2), i);
  auto* v = b.CreateLoad(i64, gep);
  auto* pass = b.CreateICmpSGT(v, fn->getArg(0));
  b.CreateCondBr(pass, keep, next);

  b.SetInsertPoint(keep);
  auto* scaled = b.CreateMul(v, b.getInt64(3));
  auto* masked = b.CreateXor(scaled, b.CreateAnd(v, b.getInt64(0xFF)));
  auto* sum2 = b.CreateAdd(sum, masked);
  b.CreateBr(next);

  b.SetInsertPoint(next);
  auto* sum3 = b.CreatePHI(i64, 2, "sum3");
  auto* i2 = b.CreateAdd(i, b.getInt64(1));
  b.CreateBr(head);

  b.SetInsertPoint(exit);
  b.CreateRet(sum);

  i->addIncoming(b.getInt64(0), entry);
  i->addIncoming(i2, next);
  sum->addIncoming(b.getInt64(0), entry);
  sum->addIncoming(sum3, next);
  sum3->addIncoming(sum2, keep);
  sum3->addIncoming(sum, body);
}

/// Builds `i64 f(i64 k, i64 n, ptr buf)`: a selection count whose loaded
/// value is used ONLY by the filter compare — the canonical scan-filter
/// shape where load+compare+branch collapses into one br_load_* dispatch.
void BuildScanFilterKernel(IrModule* mod) {
  auto& ctx = mod->context();
  llvm::IRBuilder<> b(ctx);
  auto* i64 = llvm::Type::getInt64Ty(ctx);
  auto* fty = llvm::FunctionType::get(
      i64, {i64, i64, llvm::Type::getInt64PtrTy(ctx)}, false);
  auto* fn = llvm::Function::Create(fty, llvm::Function::ExternalLinkage, "f",
                                    &mod->module());
  auto* entry = llvm::BasicBlock::Create(ctx, "entry", fn);
  auto* head = llvm::BasicBlock::Create(ctx, "head", fn);
  auto* body = llvm::BasicBlock::Create(ctx, "body", fn);
  auto* keep = llvm::BasicBlock::Create(ctx, "keep", fn);
  auto* next = llvm::BasicBlock::Create(ctx, "next", fn);
  auto* exit = llvm::BasicBlock::Create(ctx, "exit", fn);

  b.SetInsertPoint(entry);
  b.CreateBr(head);

  b.SetInsertPoint(head);
  auto* i = b.CreatePHI(i64, 2, "i");
  auto* count = b.CreatePHI(i64, 2, "count");
  auto* cond = b.CreateICmpSLT(i, fn->getArg(1));
  b.CreateCondBr(cond, body, exit);

  b.SetInsertPoint(body);
  auto* gep = b.CreateGEP(i64, fn->getArg(2), i);
  auto* v = b.CreateLoad(i64, gep);
  auto* pass = b.CreateICmpSGT(v, fn->getArg(0));
  b.CreateCondBr(pass, keep, next);

  b.SetInsertPoint(keep);
  auto* count2 = b.CreateAdd(count, b.getInt64(1));
  b.CreateBr(next);

  b.SetInsertPoint(next);
  auto* count3 = b.CreatePHI(i64, 2, "count3");
  auto* i2 = b.CreateAdd(i, b.getInt64(1));
  b.CreateBr(head);

  b.SetInsertPoint(exit);
  b.CreateRet(count);

  i->addIncoming(b.getInt64(0), entry);
  i->addIncoming(i2, next);
  count->addIncoming(b.getInt64(0), entry);
  count->addIncoming(count3, next);
  count3->addIncoming(count2, keep);
  count3->addIncoming(count, body);
}

struct Config {
  const char* name;
  VmDispatch dispatch;
  bool fuse_cmp_branches;
  bool fuse_load_cmp_branches;
};

constexpr Config kConfigs[] = {
    {"switch", VmDispatch::kSwitch, false, false},
    {"switch+fused", VmDispatch::kSwitch, true, false},
    {"switch+ldfused", VmDispatch::kSwitch, true, true},
    {"threaded", VmDispatch::kThreaded, false, false},
    {"threaded+fused", VmDispatch::kThreaded, true, false},
    {"threaded+ldfused", VmDispatch::kThreaded, true, true},
};

struct Measurement {
  std::string config;
  double rows_per_sec = 0;
  uint64_t fused_cmp_branches = 0;
  uint64_t fused_cmp_branch_imms = 0;
  uint64_t fused_load_cmp_branches = 0;
};

void Report(const char* kernel, std::vector<Measurement>& results,
            std::FILE* json_out) {
  double base = results.empty() ? 0 : results[0].rows_per_sec;
  std::printf("\n%-18s %14s %10s %8s %8s %8s\n", kernel, "rows/s", "speedup",
              "cmp-brs", "imm-brs", "ld-brs");
  for (const Measurement& m : results) {
    std::printf("%-18s %14.3e %9.2fx %8llu %8llu %8llu\n", m.config.c_str(),
                m.rows_per_sec, m.rows_per_sec / base,
                static_cast<unsigned long long>(m.fused_cmp_branches),
                static_cast<unsigned long long>(m.fused_cmp_branch_imms),
                static_cast<unsigned long long>(m.fused_load_cmp_branches));
    char line[384];
    std::snprintf(line, sizeof(line),
                  "{\"bench\":\"micro_vm_dispatch\",\"kernel\":\"%s\","
                  "\"config\":\"%s\",\"rows_per_sec\":%.6e,"
                  "\"speedup_vs_switch\":%.4f,\"fused_cmp_branches\":%llu,"
                  "\"fused_cmp_branch_imms\":%llu,"
                  "\"fused_load_cmp_branches\":%llu}",
                  kernel, m.config.c_str(), m.rows_per_sec,
                  m.rows_per_sec / base,
                  static_cast<unsigned long long>(m.fused_cmp_branches),
                  static_cast<unsigned long long>(m.fused_cmp_branch_imms),
                  static_cast<unsigned long long>(m.fused_load_cmp_branches));
    std::printf("%s\n", line);
    if (json_out != nullptr) std::fprintf(json_out, "%s\n", line);
  }
}

/// Runs `fn` repeatedly until ~`budget_seconds` elapsed; returns calls/sec
/// scaled by `rows` to rows/sec.
template <typename Fn>
double Throughput(uint64_t rows, double budget_seconds, const Fn& fn) {
  fn();  // warmup
  uint64_t iters = 0;
  Timer timer;
  do {
    fn();
    ++iters;
  } while (timer.ElapsedSeconds() < budget_seconds);
  return static_cast<double>(rows) * static_cast<double>(iters) /
         timer.ElapsedSeconds();
}

}  // namespace
}  // namespace aqe

int main(int argc, char** argv) {
  using namespace aqe;
  // --smoke: the CI perf gate's quick mode — short budgets, same JSON
  // shape; ci/check_perf_floors.py compares the archived ratios against
  // checked-in floors.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double sf = bench::EnvDouble("AQE_SF", 0.01);
  const double budget =
      bench::EnvDouble("AQE_BENCH_SECONDS", smoke ? 0.25 : 1.0);
  std::FILE* json_out = std::fopen("BENCH_micro_vm_dispatch.json", "w");

  std::printf("VM dispatch microbenchmark (SF %g, %.2fs per config)%s\n", sf,
              budget, smoke ? " [smoke]" : "");
  std::printf("threaded dispatch available: %s\n",
              VmThreadedDispatchAvailable() ? "yes" : "no");

  // --- kernel 1: TPC-H Q6 scan-filter-sum pipeline -------------------------
  {
    Q6Kernel k(sf);
    std::vector<Measurement> results;
    for (const Config& config : kConfigs) {
      GeneratedPipeline gen = GeneratePipeline(k.spec(), k.bindings);
      TranslatorOptions options;
      options.fuse_cmp_branches = config.fuse_cmp_branches;
      options.fuse_load_cmp_branches = config.fuse_load_cmp_branches;
      BcProgram bc = TranslateToBytecode(
          *gen.mod->module().getFunction("worker"), RuntimeRegistry::Global(),
          options);
      Measurement m;
      m.config = config.name;
      m.fused_cmp_branches = bc.fused_cmp_branches;
      m.fused_cmp_branch_imms = bc.fused_cmp_branch_imms;
      m.fused_load_cmp_branches = bc.fused_load_cmp_branches;
      bc.dispatch = config.dispatch;
      m.rows_per_sec = Throughput(k.rows, budget, [&] {
        VmExecuteWorker(bc, k.state(), 0, k.rows);
      });
      results.push_back(std::move(m));
    }
    // JIT tiers for context.
    for (JitMode mode : {JitMode::kUnoptimized, JitMode::kOptimized}) {
      GeneratedPipeline gen = GeneratePipeline(k.spec(), k.bindings);
      auto compiled =
          JitCompile(std::move(*gen.mod), mode, RuntimeRegistry::Global());
      auto* fn = reinterpret_cast<void (*)(void*, uint64_t, uint64_t,
                                           const void*)>(
          compiled->Lookup("worker"));
      Measurement m;
      m.config = mode == JitMode::kOptimized ? "jit-opt" : "jit-unopt";
      m.rows_per_sec =
          Throughput(k.rows, budget, [&] { fn(k.state(), 0, k.rows, nullptr); });
      results.push_back(std::move(m));
    }
    Report("q6-pipeline", results, json_out);
  }

  // --- kernel 2: scan-filter selection count -------------------------------
  {
    const uint64_t rows = 1 << 18;
    std::vector<int64_t> data(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      data[r] = static_cast<int64_t>((r * 2654435761u) % 1000);
    }
    std::vector<Measurement> results;
    for (const Config& config : kConfigs) {
      IrModule mod("scan");
      BuildScanFilterKernel(&mod);
      TranslatorOptions options;
      options.fuse_cmp_branches = config.fuse_cmp_branches;
      options.fuse_load_cmp_branches = config.fuse_load_cmp_branches;
      BcProgram bc =
          TranslateToBytecode(*mod.module().getFunction("f"),
                              RuntimeRegistry::Global(), options);
      bc.dispatch = config.dispatch;
      Measurement m;
      m.config = config.name;
      m.fused_cmp_branches = bc.fused_cmp_branches;
      m.fused_cmp_branch_imms = bc.fused_cmp_branch_imms;
      m.fused_load_cmp_branches = bc.fused_load_cmp_branches;
      uint64_t args[3] = {500, rows, reinterpret_cast<uint64_t>(data.data())};
      m.rows_per_sec =
          Throughput(rows, budget, [&] { VmExecute(bc, args, 3); });
      results.push_back(std::move(m));
    }
    Report("scan-filter", results, json_out);
  }

  // --- kernel 3: synthetic expression loop ---------------------------------
  {
    const uint64_t rows = 1 << 18;
    std::vector<int64_t> data(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      data[r] = static_cast<int64_t>((r * 2654435761u) % 1000);
    }
    std::vector<Measurement> results;
    for (const Config& config : kConfigs) {
      IrModule mod("expr");
      BuildExpressionKernel(&mod);
      TranslatorOptions options;
      options.fuse_cmp_branches = config.fuse_cmp_branches;
      options.fuse_load_cmp_branches = config.fuse_load_cmp_branches;
      BcProgram bc =
          TranslateToBytecode(*mod.module().getFunction("f"),
                              RuntimeRegistry::Global(), options);
      bc.dispatch = config.dispatch;
      Measurement m;
      m.config = config.name;
      m.fused_cmp_branches = bc.fused_cmp_branches;
      m.fused_cmp_branch_imms = bc.fused_cmp_branch_imms;
      m.fused_load_cmp_branches = bc.fused_load_cmp_branches;
      uint64_t args[3] = {500, rows, reinterpret_cast<uint64_t>(data.data())};
      m.rows_per_sec =
          Throughput(rows, budget, [&] { VmExecute(bc, args, 3); });
      results.push_back(std::move(m));
    }
    Report("expression-loop", results, json_out);
  }

  // --- kernel 4: per-morsel tracing overhead -------------------------------
  // The CI floor for src/obs: the scan-filter kernel executed in
  // morsel-sized chunks, bare vs with the engine's full per-morsel
  // instrumentation (two MonotonicNanos reads, one TraceRing push, one
  // counter add — exactly what adaptive/controller.cc's ExecuteMorsel
  // records). The traced/untraced throughput ratio must stay >= the
  // obs floor in ci/perf_floors.json (0.97, i.e. <= 3% overhead).
  {
    const uint64_t rows = 1 << 18;
    const uint64_t chunk = 4096;  // mid-schedule morsel (1024..16384)
    std::vector<int64_t> data(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      data[r] = static_cast<int64_t>((r * 2654435761u) % 1000);
    }
    IrModule mod("scan");
    BuildScanFilterKernel(&mod);
    BcProgram bc = TranslateToBytecode(*mod.module().getFunction("f"),
                                       RuntimeRegistry::Global(), {});
    const auto run_chunk = [&](uint64_t begin, uint64_t end) {
      uint64_t args[3] = {500, end - begin,
                          reinterpret_cast<uint64_t>(data.data() + begin)};
      VmExecute(bc, args, 3);
    };
    const double untraced = Throughput(rows, budget, [&] {
      for (uint64_t begin = 0; begin < rows; begin += chunk) {
        run_chunk(begin, std::min(begin + chunk, rows));
      }
    });
    TraceRing ring(4096);
    Counter morsels;
    const double traced = Throughput(rows, budget, [&] {
      for (uint64_t begin = 0; begin < rows; begin += chunk) {
        const uint64_t end = std::min(begin + chunk, rows);
        const int64_t t0 = MonotonicNanos();
        run_chunk(begin, end);
        const int64_t t1 = MonotonicNanos();
        TraceEvent ev;
        ev.start_nanos = t0;
        ev.end_nanos = t1;
        ev.payload = end - begin;
        ev.query_id = 1;
        ev.kind = TraceEventKind::kMorsel;
        ring.Push(ev);
        morsels.Add();
      }
    });
    const double ratio = untraced > 0 ? traced / untraced : 0.0;
    std::printf("\n%-18s %14s %10s\n", "trace-overhead", "rows/s", "ratio");
    std::printf("%-18s %14.3e %9.2fx\n", "untraced", untraced, 1.0);
    std::printf("%-18s %14.3e %9.3fx\n", "traced", traced, ratio);
    for (const auto& [name, rps] :
         {std::pair<const char*, double>{"untraced", untraced},
          std::pair<const char*, double>{"traced", traced}}) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "{\"bench\":\"micro_vm_dispatch\","
                    "\"kernel\":\"trace-overhead\",\"config\":\"%s\","
                    "\"rows_per_sec\":%.6e,\"ratio_vs_untraced\":%.4f}",
                    name, rps, untraced > 0 ? rps / untraced : 0.0);
      std::printf("%s\n", line);
      if (json_out != nullptr) std::fprintf(json_out, "%s\n", line);
    }
  }

  // --- kernel 5: EXPLAIN ANALYZE collection overhead -----------------------
  // The CI floor for the query profiler: the same engine query run with
  // QueryRunOptions::collect_profile off vs on. The profiled path pays one
  // trace-ring snapshot plus the QueryProfile fold per query; the
  // profiled/unprofiled throughput ratio must stay >= the floor in
  // ci/perf_floors.json (0.97, i.e. <= 3% overhead).
  {
    // Bound the snapshot copy: the fold only needs the completing query's
    // own events, so a small per-lane ring keeps the per-query snapshot
    // cost proportional to one query, not to the whole history.
    setenv("AQE_TRACE_RING_EVENTS", "512", 1);
    Catalog* catalog = bench::TpchAtScale(sf);
    QueryEngine engine(catalog, 2);
    QueryProgram q6 = BuildTpchQuery(6, *catalog);
    const uint64_t rows = catalog->GetTable("lineitem")->num_rows();
    QueryRunOptions plain;
    plain.single_threaded = true;  // deterministic: no helper-task jitter
    // Pin the mode: the adaptive controller warms up across runs (later
    // runs would reuse cached optimized code), which would skew whichever
    // config runs second. Profile-collection cost is mode-independent.
    plain.strategy = ExecutionStrategy::kBytecode;
    QueryRunOptions profiled_opts = plain;
    profiled_opts.collect_profile = true;
    // Interleave the two configs in alternating blocks so slow drift
    // (frequency scaling, cache state, background load) hits both equally
    // — the ratio is what the CI floor gates, not the absolute rates.
    engine.Run(q6, plain);          // warmup: translation, table binding
    engine.Run(q6, profiled_opts);  // warmup: profile path allocations
    double un_seconds = 0, pr_seconds = 0;
    uint64_t reps = 0;
    Timer total;
    do {
      Timer t_un;
      for (int i = 0; i < 8; ++i) engine.Run(q6, plain);
      un_seconds += t_un.ElapsedSeconds();
      Timer t_pr;
      for (int i = 0; i < 8; ++i) engine.Run(q6, profiled_opts);
      pr_seconds += t_pr.ElapsedSeconds();
      reps += 8;
    } while (total.ElapsedSeconds() < 2 * budget);
    unsetenv("AQE_TRACE_RING_EVENTS");
    const double unprofiled =
        static_cast<double>(rows) * static_cast<double>(reps) / un_seconds;
    const double profiled =
        static_cast<double>(rows) * static_cast<double>(reps) / pr_seconds;
    const double ratio = unprofiled > 0 ? profiled / unprofiled : 0.0;
    std::printf("\n%-18s %14s %10s\n", "profile-overhead", "rows/s", "ratio");
    std::printf("%-18s %14.3e %9.2fx\n", "unprofiled", unprofiled, 1.0);
    std::printf("%-18s %14.3e %9.3fx\n", "profiled", profiled, ratio);
    for (const auto& [name, rps] :
         {std::pair<const char*, double>{"unprofiled", unprofiled},
          std::pair<const char*, double>{"profiled", profiled}}) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "{\"bench\":\"micro_vm_dispatch\","
                    "\"kernel\":\"profile-overhead\",\"config\":\"%s\","
                    "\"rows_per_sec\":%.6e,\"ratio_vs_unprofiled\":%.4f}",
                    name, rps, unprofiled > 0 ? rps / unprofiled : 0.0);
      std::printf("%s\n", line);
      if (json_out != nullptr) std::fprintf(json_out, "%s\n", line);
    }
  }

  // --- kernel 6: memory-tracker + beacon + live-sampler overhead -----------
  // The CI floor for PR 10's resource-accounting layer: the same
  // morsel-chunked scan-filter kernel bare vs with everything a production
  // morsel now pays — one tracker Charge/Release pair (the chunk-granular
  // allocation sites), one beacon publish/restore (two relaxed stores each
  // way) — while a live ContinuousProfiler samples the beacon board at its
  // default rate from another thread. The instrumented/bare throughput
  // ratio must stay >= the resource floor in ci/perf_floors.json (0.97,
  // i.e. <= 3% overhead).
  {
    const uint64_t rows = 1 << 18;
    const uint64_t chunk = 4096;
    std::vector<int64_t> data(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      data[r] = static_cast<int64_t>((r * 2654435761u) % 1000);
    }
    IrModule mod("scan");
    BuildScanFilterKernel(&mod);
    BcProgram bc = TranslateToBytecode(*mod.module().getFunction("f"),
                                       RuntimeRegistry::Global(), {});
    const auto run_chunk = [&](uint64_t begin, uint64_t end) {
      uint64_t args[3] = {500, end - begin,
                          reinterpret_cast<uint64_t>(data.data() + begin)};
      VmExecute(bc, args, 3);
    };
    MetricsRegistry metrics;
    BeaconBoard board;
    ContinuousProfiler profiler(&board, 97,
                                metrics.GetCounter("profiler.samples"));
    QueryMemoryTracker tracker;
    WorkerBeacon* beacon = board.lane(0);
    const auto bare_pass = [&] {
      for (uint64_t begin = 0; begin < rows; begin += chunk) {
        run_chunk(begin, std::min(begin + chunk, rows));
      }
    };
    const auto instrumented_pass = [&] {
      for (uint64_t begin = 0; begin < rows; begin += chunk) {
        const uint64_t end = std::min(begin + chunk, rows);
        const uint64_t prior =
            beacon->word0.load(std::memory_order_relaxed);
        PublishBeacon(beacon, 1, 0, 0, BeaconActivity::kMorsel, end - begin);
        tracker.Charge((end - begin) * sizeof(int64_t));
        run_chunk(begin, end);
        tracker.Release((end - begin) * sizeof(int64_t));
        beacon->word0.store(prior, std::memory_order_relaxed);
      }
    };
    // Interleave the two configs in short alternating blocks (same scheme
    // as the profile-overhead kernel): the sampler thread, frequency drift
    // and background load then tax both sides equally, and the ratio — the
    // only thing the CI floor gates — stays stable even on a one-core host.
    bare_pass();          // warmup
    instrumented_pass();  // warmup: tracker slots, beacon lane
    double bare_seconds = 0, inst_seconds = 0;
    uint64_t reps = 0;
    Timer total;
    do {
      Timer t_bare;
      for (int i = 0; i < 8; ++i) bare_pass();
      bare_seconds += t_bare.ElapsedSeconds();
      Timer t_inst;
      for (int i = 0; i < 8; ++i) instrumented_pass();
      inst_seconds += t_inst.ElapsedSeconds();
      reps += 8;
    } while (total.ElapsedSeconds() < 2 * budget);
    const double bare =
        static_cast<double>(rows) * static_cast<double>(reps) / bare_seconds;
    const double instrumented =
        static_cast<double>(rows) * static_cast<double>(reps) / inst_seconds;
    const double ratio = bare > 0 ? instrumented / bare : 0.0;
    std::printf("\n%-18s %14s %10s\n", "resource-overhead", "rows/s", "ratio");
    std::printf("%-18s %14.3e %9.2fx\n", "bare", bare, 1.0);
    std::printf("%-18s %14.3e %9.3fx\n", "instrumented", instrumented, ratio);
    std::printf("(sampler took %llu samples during the instrumented runs)\n",
                static_cast<unsigned long long>(profiler.total_samples()));
    for (const auto& [name, rps] :
         {std::pair<const char*, double>{"bare", bare},
          std::pair<const char*, double>{"instrumented", instrumented}}) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "{\"bench\":\"micro_vm_dispatch\","
                    "\"kernel\":\"resource-overhead\",\"config\":\"%s\","
                    "\"rows_per_sec\":%.6e,\"ratio_vs_bare\":%.4f}",
                    name, rps, bare > 0 ? rps / bare : 0.0);
      std::printf("%s\n", line);
      if (json_out != nullptr) std::fprintf(json_out, "%s\n", line);
    }
  }

  if (json_out != nullptr) std::fclose(json_out);
  return 0;
}
