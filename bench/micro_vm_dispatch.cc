// Microbenchmark (google-benchmark): raw dispatch throughput of the three
// execution tiers on one pipeline-shaped kernel (TPC-H Q6's scan-filter-sum
// loop), isolating interpretation overhead from query plumbing.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "codegen/query_compiler.h"
#include "jit/jit_compiler.h"
#include "runtime/runtime_registry.h"
#include "vm/interpreter.h"
#include "vm/translator.h"

namespace aqe {
namespace {

struct Q6Kernel {
  Catalog* catalog;
  QueryProgram program;
  std::unique_ptr<QueryContext> ctx;
  PipelineBindings bindings;
  uint64_t rows;

  Q6Kernel()
      : catalog(bench::TpchAtScale(0.01)),
        program(BuildTpchQuery(6, *catalog)) {
    ctx = program.MakeContext(catalog);
    bindings = BindPipeline(program, program.pipelines()[0], *ctx);
    rows = catalog->GetTable("lineitem")->num_rows();
  }
  const PipelineSpec& spec() const { return program.pipelines()[0]; }
};

Q6Kernel& Kernel() {
  static Q6Kernel* kernel = new Q6Kernel();
  return *kernel;
}

void BM_BytecodeVm(benchmark::State& state) {
  Q6Kernel& k = Kernel();
  GeneratedPipeline gen = GeneratePipeline(k.spec(), k.bindings);
  BcProgram bc = TranslateToBytecode(
      *gen.mod->module().getFunction("worker"), RuntimeRegistry::Global());
  for (auto _ : state) {
    VmExecuteWorker(bc, nullptr, 0, k.rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(k.rows) * state.iterations());
}
BENCHMARK(BM_BytecodeVm);

void BM_BytecodeVmNoFusion(benchmark::State& state) {
  Q6Kernel& k = Kernel();
  GeneratedPipeline gen = GeneratePipeline(k.spec(), k.bindings);
  TranslatorOptions options;
  options.fuse_macro_ops = false;
  BcProgram bc = TranslateToBytecode(
      *gen.mod->module().getFunction("worker"), RuntimeRegistry::Global(),
      options);
  for (auto _ : state) {
    VmExecuteWorker(bc, nullptr, 0, k.rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(k.rows) * state.iterations());
}
BENCHMARK(BM_BytecodeVmNoFusion);

void RunJitKernel(benchmark::State& state, JitMode mode) {
  Q6Kernel& k = Kernel();
  GeneratedPipeline gen = GeneratePipeline(k.spec(), k.bindings);
  auto compiled =
      JitCompile(std::move(*gen.mod), mode, RuntimeRegistry::Global());
  auto* fn = reinterpret_cast<void (*)(void*, uint64_t, uint64_t,
                                       const void*)>(
      compiled->Lookup("worker"));
  for (auto _ : state) {
    fn(nullptr, 0, k.rows, nullptr);
  }
  state.SetItemsProcessed(static_cast<int64_t>(k.rows) * state.iterations());
}

void BM_JitUnoptimized(benchmark::State& state) {
  RunJitKernel(state, JitMode::kUnoptimized);
}
BENCHMARK(BM_JitUnoptimized);

void BM_JitOptimized(benchmark::State& state) {
  RunJitKernel(state, JitMode::kOptimized);
}
BENCHMARK(BM_JitOptimized);

}  // namespace
}  // namespace aqe

BENCHMARK_MAIN();
