#ifndef AQE_BENCH_BENCH_UTIL_H_
#define AQE_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "queries/tpch_queries.h"
#include "tpch/tpch_gen.h"

namespace aqe::bench {

/// Environment knobs shared by the harnesses (the host has 1 physical core;
/// defaults are scaled so the full bench suite completes in minutes while
/// preserving the paper's shapes — see EXPERIMENTS.md).
inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}
inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}
inline std::vector<double> EnvDoubleList(const char* name,
                                         const std::string& fallback) {
  const char* v = std::getenv(name);
  std::string s = v == nullptr ? fallback : v;
  std::vector<double> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atof(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

inline double GeometricMean(const std::vector<double>& values) {
  double log_sum = 0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

/// Builds (once) and caches a TPC-H database per scale factor.
inline Catalog* TpchAtScale(double sf) {
  static std::vector<std::pair<double, Catalog*>> cache;
  for (auto& [cached_sf, catalog] : cache) {
    if (cached_sf == sf) return catalog;
  }
  std::fprintf(stderr, "[bench] generating TPC-H data at SF %.3g...\n", sf);
  auto* catalog = new Catalog();
  tpch::BuildTpchDatabase(catalog, sf);
  cache.emplace_back(sf, catalog);
  return catalog;
}

/// Query wall time excluding code generation, translation and machine-code
/// compilation (Table II reports pure execution; compilation latency is
/// Table I's subject). The engine now reports this directly — pipeline run
/// time minus controller-blocking compiles, plus engine steps — so cache
/// hits and cold runs are compared on identical terms.
inline double ExecOnlySeconds(const QueryRunResult& result) {
  return result.exec_seconds_total;
}

}  // namespace aqe::bench

#endif  // AQE_BENCH_BENCH_UTIL_H_
