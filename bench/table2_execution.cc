// Regenerates Table II: execution times (compilation excluded) per query
// for the Volcano baseline ("PG"), the vectorized baseline ("Monet"), and
// the bytecode / unoptimized / optimized modes, single- and multi-threaded,
// with the geometric mean over all implemented queries.
#include "bench/bench_util.h"

using namespace aqe;

namespace {

double RunOnce(QueryEngine* engine, Catalog* catalog, int number,
               EngineKind kind, ExecutionStrategy strategy) {
  QueryProgram q = BuildTpchQuery(number, *catalog);
  QueryRunOptions options;
  options.engine = kind;
  options.strategy = strategy;
  options.use_artifact_cache = false;  // Table II is a cold-execution table
  return bench::ExecOnlySeconds(engine->Run(q, options)) * 1e3;
}

}  // namespace

int main() {
  double sf = bench::EnvDouble("AQE_SF", 0.1);
  int threads = bench::EnvInt("AQE_THREADS", 4);
  Catalog* catalog = bench::TpchAtScale(sf);
  QueryEngine single(catalog, 1);
  QueryEngine multi(catalog, threads);

  std::printf("Table II — execution times [ms], SF %g\n", sf);
  std::printf("%6s | %9s %9s %9s %9s %9s | %9s %9s %9s (%d threads)\n",
              "query", "PG", "Monet", "bc.", "unopt.", "opt.", "bc.",
              "unopt.", "opt.", threads);
  std::vector<std::vector<double>> columns(8);
  for (int number : ImplementedTpchQueries()) {
    double pg = RunOnce(&single, catalog, number, EngineKind::kVolcano,
                        ExecutionStrategy::kBytecode);
    double monet = RunOnce(&single, catalog, number, EngineKind::kVectorized,
                           ExecutionStrategy::kBytecode);
    double bc1 = RunOnce(&single, catalog, number, EngineKind::kCompiled,
                         ExecutionStrategy::kBytecode);
    double un1 = RunOnce(&single, catalog, number, EngineKind::kCompiled,
                         ExecutionStrategy::kUnoptimized);
    double op1 = RunOnce(&single, catalog, number, EngineKind::kCompiled,
                         ExecutionStrategy::kOptimized);
    double bcn = RunOnce(&multi, catalog, number, EngineKind::kCompiled,
                         ExecutionStrategy::kBytecode);
    double unn = RunOnce(&multi, catalog, number, EngineKind::kCompiled,
                         ExecutionStrategy::kUnoptimized);
    double opn = RunOnce(&multi, catalog, number, EngineKind::kCompiled,
                         ExecutionStrategy::kOptimized);
    double row[8] = {pg, monet, bc1, un1, op1, bcn, unn, opn};
    for (int c = 0; c < 8; ++c) columns[static_cast<size_t>(c)].push_back(row[c]);
    std::printf("%6d | %9.1f %9.1f %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f\n",
                number, pg, monet, bc1, un1, op1, bcn, unn, opn);
    std::fflush(stdout);
  }
  std::printf("%6s | %9.1f %9.1f %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f\n",
              "geo.m.", bench::GeometricMean(columns[0]),
              bench::GeometricMean(columns[1]),
              bench::GeometricMean(columns[2]),
              bench::GeometricMean(columns[3]),
              bench::GeometricMean(columns[4]),
              bench::GeometricMean(columns[5]),
              bench::GeometricMean(columns[6]),
              bench::GeometricMean(columns[7]));
  std::printf("\nexpected shape: bc. several-fold slower than unopt.; unopt. "
              "modestly slower than opt.; bc. well ahead of PG; (note: the "
              "host has 1 physical core, so multi-threaded numbers "
              "timeshare)\n");
  return 0;
}
