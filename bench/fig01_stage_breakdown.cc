// Regenerates Fig 1 (architecture stage times) and Fig 3 (per-mode
// compilation times) for TPC-H Q1: planning, code generation, bytecode
// translation, unoptimized compilation, LLVM optimization passes and
// optimized compilation.
#include "bench/bench_util.h"
#include "common/timer.h"
#include "jit/jit_compiler.h"
#include "codegen/query_compiler.h"
#include "runtime/runtime_registry.h"
#include "vm/translator.h"

using namespace aqe;

int main() {
  double sf = bench::EnvDouble("AQE_SF", 0.1);
  Catalog* catalog = bench::TpchAtScale(sf);

  Timer plan_timer;
  QueryProgram q1 = BuildTpchQuery(1, *catalog);
  double plan_ms = plan_timer.ElapsedMillis();

  QueryEngine engine(catalog, 1);
  auto costs = engine.MeasureCompileCosts(q1);

  // Split the optimized compile into IR passes + backend using JitCompile's
  // own instrumentation on a fresh module.
  auto ctx = q1.MakeContext(catalog);
  const PipelineSpec& spec = q1.pipelines()[0];
  PipelineBindings bindings = BindPipeline(q1, spec, *ctx);
  GeneratedPipeline generated = GeneratePipeline(spec, bindings);
  auto compiled = JitCompile(std::move(*generated.mod), JitMode::kOptimized,
                             RuntimeRegistry::Global());

  std::printf("Fig 1 / Fig 3 — compilation stage breakdown, TPC-H Q1 (SF %g)\n",
              sf);
  std::printf("%-28s %10s\n", "stage", "time [ms]");
  std::printf("%-28s %10.3f\n", "planning (plan build)", plan_ms);
  double cdg = 0, bc = 0, unopt = 0, opt = 0;
  uint64_t instrs = 0;
  for (const auto& c : costs) {
    cdg += c.codegen_millis;
    bc += c.bytecode_millis;
    unopt += c.unopt_millis;
    opt += c.opt_millis;
    instrs += c.instructions;
  }
  std::printf("%-28s %10.3f\n", "code generation (LLVM IR)", cdg);
  std::printf("%-28s %10.3f\n", "bytecode translation", bc);
  std::printf("%-28s %10.3f\n", "LLVM comp. unoptimized", unopt);
  std::printf("%-28s %10.3f\n", "LLVM opt. passes",
              compiled->ir_pass_millis());
  std::printf("%-28s %10.3f\n", "LLVM comp. optimized (total)", opt);
  std::printf("\nworker functions: %zu, total LLVM instructions: %llu\n",
              costs.size(), static_cast<unsigned long long>(instrs));
  std::printf("expected shape: plan+codegen+bytecode each ~100x cheaper than "
              "optimized compilation\n");
  return 0;
}
