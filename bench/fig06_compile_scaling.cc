// Regenerates Fig 6: machine-code compilation time versus the number of
// LLVM instructions per worker function, across all implemented TPC-H
// queries plus generated queries (unoptimized and optimized modes). The
// fitted linear coefficients feed CostModelParams.
#include <algorithm>

#include "bench/bench_util.h"
#include "queries/generated_queries.h"

using namespace aqe;

int main() {
  Catalog* catalog = bench::TpchAtScale(bench::EnvDouble("AQE_SF", 0.01));
  QueryEngine engine(catalog, 1);

  std::printf("Fig 6 — compile time vs worker-function size\n");
  std::printf("%-24s %10s %12s %12s\n", "pipeline", "LLVM instr",
              "unopt [ms]", "opt [ms]");
  struct Point {
    double instructions;
    double unopt_ms;
    double opt_ms;
  };
  std::vector<Point> points;
  auto report = [&points](const std::string& query,
                          const std::vector<PipelineCompileCosts>& costs) {
    for (const auto& c : costs) {
      std::printf("%-24s %10llu %12.3f %12.3f\n",
                  (query + "/" + c.name).substr(0, 24).c_str(),
                  static_cast<unsigned long long>(c.instructions),
                  c.unopt_millis, c.opt_millis);
      points.push_back({static_cast<double>(c.instructions), c.unopt_millis,
                        c.opt_millis});
    }
  };
  for (int number : ImplementedTpchQueries()) {
    QueryProgram q = BuildTpchQuery(number, *catalog);
    report("q" + std::to_string(number), engine.MeasureCompileCosts(q));
  }
  for (int n : {25, 50, 100, 200}) {
    QueryProgram q = BuildGeneratedAggregateQuery(n, *catalog);
    report("gen" + std::to_string(n), engine.MeasureCompileCosts(q));
  }

  // Least-squares linear fit: compile_ms = base + per_instr * n.
  auto fit = [&points](auto get) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    double n = static_cast<double>(points.size());
    for (const Point& p : points) {
      sx += p.instructions;
      sy += get(p);
      sxx += p.instructions * p.instructions;
      sxy += p.instructions * get(p);
    }
    double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    double base = (sy - slope * sx) / n;
    return std::make_pair(base, slope);
  };
  auto [ub, us] = fit([](const Point& p) { return p.unopt_ms; });
  auto [ob, os] = fit([](const Point& p) { return p.opt_ms; });
  std::printf("\nlinear fit (cost model parameters):\n");
  std::printf("  unoptimized: %.3f ms + %.5f ms/instr\n", ub, us);
  std::printf("  optimized:   %.3f ms + %.5f ms/instr\n", ob, os);
  std::printf("expected shape: near-linear growth; optimized ~3-10x above "
              "unoptimized\n");
  return 0;
}
