// Regenerates Fig 15: compilation/translation time of machine-generated
// queries (single scan, N aggregate expressions) as N grows. Optimized
// LLVM compilation grows super-linearly; bytecode translation stays linear
// (the paper's §V-E argument for why the translator must be linear-time).
#include "bench/bench_util.h"
#include "queries/generated_queries.h"

using namespace aqe;

int main() {
  Catalog* catalog = bench::TpchAtScale(bench::EnvDouble("AQE_SF", 0.01));
  QueryEngine engine(catalog, 1);
  int max_opt = bench::EnvInt("AQE_FIG15_MAX_OPT", 400);
  int max_n = bench::EnvInt("AQE_FIG15_MAX_N", 1200);

  std::printf("Fig 15 — compilation time vs generated query size\n");
  std::printf("%8s %12s %12s %12s %12s\n", "N aggs", "LLVM instr",
              "bytecode[ms]", "unopt [ms]", "opt [ms]");
  for (int n : {10, 25, 50, 100, 200, 400, 800, 1200}) {
    if (n > max_n) break;
    QueryProgram q = BuildGeneratedAggregateQuery(n, *catalog);
    bool do_opt = n <= max_opt;
    auto costs = engine.MeasureCompileCosts(q, /*measure_unopt=*/true,
                                            /*measure_opt=*/do_opt);
    const auto& c = costs[0];
    std::printf("%8d %12llu %12.2f %12.2f ", n,
                static_cast<unsigned long long>(c.instructions),
                c.bytecode_millis, c.unopt_millis);
    if (do_opt) {
      std::printf("%12.2f\n", c.opt_millis);
    } else {
      std::printf("%12s\n", "(skipped)");
    }
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: bytecode linear and ~2 orders of magnitude "
              "below optimized; optimized growth super-linear\n");
  return 0;
}
