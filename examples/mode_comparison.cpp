// Runs one TPC-H query under every engine and execution mode and prints a
// latency comparison — a miniature of the paper's whole evaluation.
#include <cstdio>
#include <cstdlib>

#include "engine/query_engine.h"
#include "queries/tpch_queries.h"
#include "tpch/tpch_gen.h"

using namespace aqe;

int main(int argc, char** argv) {
  int number = argc > 1 ? std::atoi(argv[1]) : 1;
  double sf = argc > 2 ? std::atof(argv[2]) : 0.1;

  std::printf("TPC-H Q%d at SF %g\n", number, sf);
  Catalog catalog;
  tpch::BuildTpchDatabase(&catalog, sf);
  QueryEngine engine(&catalog, 4);

  struct Config {
    const char* label;
    EngineKind engine;
    ExecutionStrategy strategy;
  };
  const Config configs[] = {
      {"volcano (tuple-at-a-time)", EngineKind::kVolcano, {}},
      {"vectorized (column-at-a-time)", EngineKind::kVectorized, {}},
      {"compiled: bytecode VM", EngineKind::kCompiled,
       ExecutionStrategy::kBytecode},
      {"compiled: unoptimized JIT", EngineKind::kCompiled,
       ExecutionStrategy::kUnoptimized},
      {"compiled: optimized JIT", EngineKind::kCompiled,
       ExecutionStrategy::kOptimized},
      {"compiled: adaptive", EngineKind::kCompiled,
       ExecutionStrategy::kAdaptive},
  };
  std::printf("%-32s %12s %12s\n", "engine/mode", "total [ms]",
              "compile [ms]");
  size_t result_rows = 0;
  for (const Config& config : configs) {
    QueryProgram q = BuildTpchQuery(number, catalog);
    QueryRunOptions options;
    options.engine = config.engine;
    options.strategy = config.strategy;
    // The table contrasts *cold* compile cost per mode; the engine's
    // artifact cache would zero it from the second mode on.
    options.use_artifact_cache = false;
    QueryRunResult r = engine.Run(q, options);
    std::printf("%-32s %12.2f %12.2f\n", config.label, r.total_seconds * 1e3,
                r.codegen_millis_total + r.translate_millis_total +
                    r.compile_millis_total);
    result_rows = r.rows.size();
  }
  std::printf("\n(all produce the same %zu result rows)\n", result_rows);
  return 0;
}
