// The §V-E scenario: a machine-generated query (hundreds of aggregate
// expressions, as BI tools emit) where optimized compilation alone costs
// more than the whole interpreted execution — the workload that makes fast
// bytecode translation indispensable.
#include <cstdio>

#include "common/timer.h"
#include "engine/query_engine.h"
#include "queries/generated_queries.h"
#include "tpch/tpch_gen.h"

using namespace aqe;

int main() {
  Catalog catalog;
  tpch::BuildTpchDatabase(&catalog, 0.05);
  QueryEngine engine(&catalog, 2);

  const int kAggregates = 500;
  std::printf("machine-generated query with %d aggregate expressions\n\n",
              kAggregates);

  // Compilation costs first (without running).
  QueryProgram probe = BuildGeneratedAggregateQuery(kAggregates, catalog);
  auto costs = engine.MeasureCompileCosts(probe, /*measure_unopt=*/true,
                                          /*measure_opt=*/true);
  std::printf("worker function: %llu LLVM instructions\n",
              (unsigned long long)costs[0].instructions);
  std::printf("  bytecode translation: %8.1f ms\n", costs[0].bytecode_millis);
  std::printf("  unoptimized compile:  %8.1f ms\n", costs[0].unopt_millis);
  std::printf("  optimized compile:    %8.1f ms\n", costs[0].opt_millis);

  // Now run it end to end, interpreted vs compiled-up-front.
  for (auto [label, strategy] :
       {std::pair{"bytecode", ExecutionStrategy::kBytecode},
        std::pair{"optimized", ExecutionStrategy::kOptimized},
        std::pair{"adaptive", ExecutionStrategy::kAdaptive}}) {
    QueryProgram q = BuildGeneratedAggregateQuery(kAggregates, catalog);
    QueryRunOptions options;
    options.strategy = strategy;
    options.use_artifact_cache = false;  // cold compile costs are the point
    QueryRunResult r = engine.Run(q, options);
    std::printf("%-10s total %8.1f ms (compile %8.1f ms)\n", label,
                r.total_seconds * 1e3, r.compile_millis_total);
  }
  std::printf("\nthe interpreter finishes before the optimizing compiler "
              "would have produced code — §V-E's point\n");
  return 0;
}
