// Quickstart: build a tiny database, define a query with the public plan
// API, and execute it adaptively. Shows the three moving parts a user
// touches: Catalog/Table (storage), QueryProgram (plans), QueryEngine
// (execution).
#include <cstdio>

#include "engine/query_engine.h"
#include "plan/expr.h"
#include "plan/plan.h"
#include "storage/table.h"

using namespace aqe;

int main() {
  // 1. A table: sales(product i64, amount i64-decimal).
  Catalog catalog;
  Table* sales = catalog.CreateTable("sales");
  sales->AddColumn("product", DataType::kI64);
  sales->AddColumn("amount", DataType::kI64);
  for (int64_t i = 0; i < 1000000; ++i) {
    sales->column(0).AppendI64(i % 5);
    sales->column(1).AppendI64((i % 997) * 100);  // decimal, scale 100
  }

  // 2. A query: SELECT product, sum(amount), count(*) FROM sales
  //             WHERE amount > 500.00 GROUP BY product ORDER BY product.
  QueryProgram query("quickstart");
  int table = query.DeclareBaseTable("sales");
  int agg = query.DeclareAggSet(2, {0, 0});
  PipelineSpec scan;
  scan.name = "scan sales";
  scan.source_table = table;
  scan.scan_columns = {0, 1};
  scan.ops.push_back(OpFilter{Gt(Slot(1), I64(50000))});
  SinkAgg sink;
  sink.agg = agg;
  sink.key = Slot(0);
  sink.items.push_back({AggKind::kSum, Slot(1), /*checked=*/true});
  sink.items.push_back({AggKind::kCount, nullptr, false});
  scan.sink = std::move(sink);
  query.AddPipeline(std::move(scan));
  query.AddStep([agg](QueryContext* ctx) {
    AggHashTable merged(2, {0, 0});
    ctx->agg_sets[agg]->MergeInto(
        &merged, [](uint32_t, int64_t* acc, int64_t v) { *acc += v; });
    merged.ForEach([ctx](int64_t key, void* payload) {
      const auto* p = static_cast<const int64_t*>(payload);
      ctx->result.push_back({key, p[0], p[1]});
    });
    SortRows(&ctx->result, {{0, false, false}});
  });

  // 3. Execute adaptively: starts in the bytecode interpreter and promotes
  //    the pipeline to machine code only if that pays off.
  QueryEngine engine(&catalog, /*num_threads=*/4);
  QueryRunOptions options;
  options.strategy = ExecutionStrategy::kAdaptive;
  QueryRunResult result = engine.Run(query, options);

  std::printf("product | sum(amount) | count\n");
  for (const auto& row : result.rows) {
    std::printf("%7lld | %11.2f | %lld\n", (long long)row[0],
                row[1] / 100.0, (long long)row[2]);
  }
  std::printf("\nexecuted in %.2f ms; pipeline finished in mode '%s'\n",
              result.total_seconds * 1e3,
              ExecModeName(result.pipelines[0].final_mode));
  return 0;
}
