// Watch adaptive execution decide, live: runs TPC-H Q11 (the paper's Fig 14
// query) with the trace recorder attached and prints per-thread swimlanes —
// interpreted morsels (digits), compilation events ('#'), and compiled
// morsels (letters).
#include <cstdio>

#include "engine/query_engine.h"
#include "queries/tpch_queries.h"
#include "tpch/tpch_gen.h"

using namespace aqe;

int main() {
  std::printf("generating TPC-H data (SF 0.2)...\n");
  Catalog catalog;
  tpch::BuildTpchDatabase(&catalog, 0.2);
  QueryEngine engine(&catalog, /*num_threads=*/4);

  TraceRecorder trace;
  trace.Start();
  QueryProgram q11 = BuildTpchQuery(11, catalog);
  QueryRunOptions options;
  options.use_artifact_cache = false;  // show the cold adaptive compiles
  options.strategy = ExecutionStrategy::kAdaptive;
  options.trace = &trace;
  QueryRunResult result = engine.Run(q11, options);

  std::printf("\nQ11 adaptive execution trace:\n%s\n",
              trace.Render(engine.num_threads(), 100).c_str());
  std::printf("pipeline decisions:\n");
  for (const auto& p : result.pipelines) {
    std::printf("  %-18s %9llu tuples, %4llu LLVM instrs -> %s", p.name.c_str(),
                (unsigned long long)p.tuples,
                (unsigned long long)p.instructions,
                ExecModeName(p.final_mode));
    for (const auto& [mode, seconds] : p.compiles) {
      std::printf(" (compiled %s in %.1f ms)", ExecModeName(mode),
                  seconds * 1e3);
    }
    std::printf("\n");
  }
  std::printf("\ntop results (partkey, value):\n");
  for (size_t i = 0; i < result.rows.size() && i < 5; ++i) {
    std::printf("  %8lld %14.2f\n", (long long)result.rows[i][0],
                result.rows[i][1] / 10000.0);
  }
  return 0;
}
