#include "sched/scheduler.h"

#include "common/status.h"
#include "runtime/agg_hash_table.h"

namespace aqe {
namespace {

/// Worker identity of the calling thread (see CurrentWorker). External
/// threads keep the {-1, nullptr} defaults.
thread_local int t_worker_index = -1;
thread_local TaskScheduler* t_scheduler = nullptr;

}  // namespace

TaskScheduler::TaskScheduler(int num_workers) {
  AQE_CHECK(num_workers >= 1 && num_workers <= kMaxWorkers);
  for (int c = 0; c < kNumTaskClasses; ++c) {
    weights_[c].store(1, std::memory_order_relaxed);
    vtime_[c].store(0, std::memory_order_relaxed);
    class_slices_[c].store(0, std::memory_order_relaxed);
    class_pending_[c].store(0, std::memory_order_relaxed);
  }
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Threads start only after every Worker exists: a fast first worker may
  // immediately scan siblings for steal victims.
  for (int i = 0; i < num_workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::make_unique<std::thread>([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_.store(true, std::memory_order_seq_cst);
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker->thread->join();
  // Tasks still queued are destroyed without running; a query task's
  // promise breaks, so futures handed out by Submit() never hang.
  for (auto& worker : workers_) {
    for (int c = 0; c < kNumTaskClasses; ++c) {
      while (Task* task = worker->normal[c].PopLocal()) delete task;
    }
    while (Task* task = worker->low.PopLocal()) delete task;
  }
}

void TaskScheduler::set_class_weight(int cls, int weight) {
  AQE_CHECK(weight >= 1);
  // Above kVtimeScale the per-slice charge kVtimeScale/weight would
  // truncate to 0 and freeze the class's clock (permanent starvation of
  // every other class); shares beyond 1024:1 are indistinguishable anyway.
  if (weight > static_cast<int>(kVtimeScale)) {
    weight = static_cast<int>(kVtimeScale);
  }
  weights_[static_cast<size_t>(ClampClass(cls))].store(
      weight, std::memory_order_relaxed);
}

int TaskScheduler::CurrentWorker() { return t_worker_index; }
TaskScheduler* TaskScheduler::CurrentScheduler() { return t_scheduler; }

void TaskScheduler::Submit(std::unique_ptr<Task> task, TaskPriority priority) {
  int worker;
  if (t_scheduler == this) {
    worker = t_worker_index;  // spawned work stays local until stolen
  } else {
    worker = static_cast<int>(round_robin_.fetch_add(
                 1, std::memory_order_relaxed) %
             static_cast<uint64_t>(workers_.size()));
  }
  Enqueue(worker, task.release(), priority);
}

void TaskScheduler::SubmitTo(int worker, std::unique_ptr<Task> task,
                             TaskPriority priority) {
  AQE_CHECK(worker >= 0 && worker < num_workers());
  Enqueue(worker, task.release(), priority);
}

void TaskScheduler::Enqueue(int worker, Task* task, TaskPriority priority) {
  Worker& w = *workers_[static_cast<size_t>(worker)];
  if (priority == TaskPriority::kLow) {
    w.low.PushLocal(task);
  } else {
    const int cls = ClampClass(task->scheduling_class());
    if (class_pending_[static_cast<size_t>(cls)].fetch_add(
            1, std::memory_order_acq_rel) == 0) {
      OnClassActivated(cls);
    }
    w.normal[cls].PushLocal(task);
  }
  pending_.fetch_add(1, std::memory_order_seq_cst);
  // Dekker-style pairing with the parking path: workers either see
  // pending_ > 0 before sleeping or are woken under the mutex.
  {
    std::lock_guard<std::mutex> lock(mutex_);
  }
  work_available_.notify_one();
}

Task* TaskScheduler::FindLow(int index) {
  const int n = num_workers();
  if (Task* task = workers_[static_cast<size_t>(index)]->low.PopLocal()) {
    return task;
  }
  for (int offset = 1; offset < n; ++offset) {
    size_t victim = static_cast<size_t>((index + offset) % n);
    if (workers_[victim]->low.ApproxSize() == 0) continue;  // skip the lock
    if (Task* task = workers_[victim]->low.Steal()) return task;
  }
  return nullptr;
}

void TaskScheduler::ClassPickOrder(int* order) const {
  // Snapshot the active classes' clocks and insertion-sort them most-behind
  // first (kNumTaskClasses is tiny). Globally empty classes get -1 slots at
  // the tail so FindNormal skips their lanes without touching any lock.
  uint64_t vt[kNumTaskClasses];
  int count = 0;
  for (int c = 0; c < kNumTaskClasses; ++c) {
    if (class_pending_[c].load(std::memory_order_acquire) <= 0) continue;
    uint64_t v = vtime_[c].load(std::memory_order_relaxed);
    int pos = count++;
    while (pos > 0 && vt[pos - 1] > v) {
      vt[pos] = vt[pos - 1];
      order[pos] = order[pos - 1];
      --pos;
    }
    vt[pos] = v;
    order[pos] = c;
  }
  for (int k = count; k < kNumTaskClasses; ++k) order[k] = -1;
}

void TaskScheduler::OnClassActivated(int cls) {
  // An idle class's clock stood still; without this clamp it would return
  // with banked credit and lock out every other class until it caught up.
  uint64_t min_active = UINT64_MAX;
  for (int c = 0; c < kNumTaskClasses; ++c) {
    if (c == cls) continue;
    if (class_pending_[c].load(std::memory_order_relaxed) > 0) {
      uint64_t v = vtime_[c].load(std::memory_order_relaxed);
      if (v < min_active) min_active = v;
    }
  }
  if (min_active == UINT64_MAX) return;
  uint64_t cur = vtime_[static_cast<size_t>(cls)].load(
      std::memory_order_relaxed);
  while (cur < min_active &&
         !vtime_[static_cast<size_t>(cls)].compare_exchange_weak(
             cur, min_active, std::memory_order_relaxed)) {
  }
}

Task* TaskScheduler::FindNormal(int index) {
  int order[kNumTaskClasses];
  ClassPickOrder(order);
  Worker& w = *workers_[static_cast<size_t>(index)];
  // Own lanes first, most-behind class first (LIFO within a lane).
  // class_pending_ is NOT decremented here: a popped task still executing
  // keeps its class "active" (RunTask decrements on completion), so a class
  // with a single long yielding task is not treated as freshly activated —
  // and clock-clamped — on every one of its slices.
  for (int k = 0; k < kNumTaskClasses; ++k) {
    const int cls = order[k];
    if (cls < 0) break;
    if (Task* task = w.normal[cls].PopLocal()) return task;
  }
  // Steal in the same class order: fairness beats locality for a class
  // that is behind.
  const int n = num_workers();
  for (int k = 0; k < kNumTaskClasses; ++k) {
    const int cls = order[k];
    if (cls < 0) break;
    for (int offset = 1; offset < n; ++offset) {
      size_t victim = static_cast<size_t>((index + offset) % n);
      if (workers_[victim]->normal[cls].ApproxSize() == 0) continue;
      if (Task* task = workers_[victim]->normal[cls].Steal()) return task;
    }
  }
  return nullptr;
}

Task* TaskScheduler::FindWork(int index, uint64_t picks, bool* from_low) {
  // Periodic low-priority tick: without it, back-to-back morsel yields
  // would keep the normal lanes non-empty forever and starve compilations.
  if (picks % kLowPriorityTick == kLowPriorityTick - 1) {
    if (Task* task = FindLow(index)) {
      *from_low = true;
      return task;
    }
  }
  if (Task* task = FindNormal(index)) {
    *from_low = false;
    return task;
  }
  *from_low = true;
  return FindLow(index);
}

void TaskScheduler::RunTask(Task* task, int worker, bool from_low) {
  executed_slices_.fetch_add(1, std::memory_order_relaxed);
  const int cls = ClampClass(task->scheduling_class());
  Task::Status status = task->Run(worker);
  // Weighted-fair accounting: one slice advances the class clock by
  // 1/weight, so heavier classes fall behind slower and are picked more.
  class_slices_[cls].fetch_add(1, std::memory_order_relaxed);
  const int weight = weights_[cls].load(std::memory_order_relaxed);
  const uint64_t my_vtime =
      vtime_[cls].fetch_add(kVtimeScale / static_cast<uint64_t>(weight),
                            std::memory_order_relaxed) +
      kVtimeScale / static_cast<uint64_t>(weight);
  // Credit cap (see kMaxClassCredit): if this class still lags every other
  // active class by more than the cap — e.g. its activation clamp raced a
  // preempted submitter — pull its clock forward so the monopoly burst
  // stays bounded.
  uint64_t min_other = UINT64_MAX;
  for (int c = 0; c < kNumTaskClasses; ++c) {
    if (c == cls) continue;
    if (class_pending_[c].load(std::memory_order_relaxed) > 0) {
      uint64_t v = vtime_[c].load(std::memory_order_relaxed);
      if (v < min_other) min_other = v;
    }
  }
  if (min_other != UINT64_MAX && min_other > kMaxClassCredit &&
      my_vtime < min_other - kMaxClassCredit) {
    const uint64_t target = min_other - kMaxClassCredit;
    uint64_t cur = my_vtime;
    while (cur < target && !vtime_[cls].compare_exchange_weak(
                               cur, target, std::memory_order_relaxed)) {
    }
  }
  if (status == Task::Status::kYield) {
    // Back at the *steal* end of its class lane: other local tasks run
    // first, and thieves pick the yielder up — a long pipeline cannot
    // monopolize its worker. A normal-lane task stayed "pending" across
    // its slice (see FindNormal); a low-lane yielder enters the class
    // accounting here for the first time.
    if (from_low &&
        class_pending_[cls].fetch_add(1, std::memory_order_acq_rel) == 0) {
      OnClassActivated(cls);
    }
    workers_[static_cast<size_t>(worker)]->normal[cls].PushSteal(task);
    pending_.fetch_add(1, std::memory_order_seq_cst);
    // Same Dekker pairing as Enqueue: without touching the mutex, the
    // notify could land in a parker's pred-check-to-block gap and be lost.
    {
      std::lock_guard<std::mutex> lock(mutex_);
    }
    work_available_.notify_one();
  } else {
    // Completion deactivates: the pop in FindNormal left the class counted
    // as pending while the slice ran.
    if (!from_low) class_pending_[cls].fetch_sub(1, std::memory_order_acq_rel);
    delete task;
  }
}

void TaskScheduler::WorkerLoop(int index) {
  runtime_internal::SetThreadIndex(index);
  t_worker_index = index;
  t_scheduler = this;
  uint64_t picks = 0;
  std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
  for (;;) {
    // Checked every iteration (not only when idle): on shutdown, queued and
    // yielded tasks stop being resumed and are destroyed by the destructor.
    // A task mid-slice still finishes its slice.
    if (shutdown_.load(std::memory_order_seq_cst)) return;
    bool from_low = false;
    Task* task = FindWork(index, picks++, &from_low);
    if (task != nullptr) {
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      RunTask(task, index, from_low);
      continue;
    }
    // Brief spin before parking: morsel yields re-arrive within
    // microseconds, an OS sleep would dominate them.
    bool ready = false;
    for (int spin = 0; spin < 64; ++spin) {
      if (pending_.load(std::memory_order_seq_cst) > 0) {
        ready = true;
        break;
      }
      std::this_thread::yield();
    }
    if (ready) continue;
    lock.lock();
    work_available_.wait(lock, [this] {
      return shutdown_.load(std::memory_order_seq_cst) ||
             pending_.load(std::memory_order_seq_cst) > 0;
    });
    lock.unlock();
  }
}

}  // namespace aqe
