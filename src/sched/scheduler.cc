#include "sched/scheduler.h"

#include "common/status.h"
#include "runtime/agg_hash_table.h"

namespace aqe {
namespace {

/// Worker identity of the calling thread (see CurrentWorker). External
/// threads keep the {-1, nullptr} defaults.
thread_local int t_worker_index = -1;
thread_local TaskScheduler* t_scheduler = nullptr;

}  // namespace

TaskScheduler::TaskScheduler(int num_workers) {
  AQE_CHECK(num_workers >= 1 && num_workers <= kMaxWorkers);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Threads start only after every Worker exists: a fast first worker may
  // immediately scan siblings for steal victims.
  for (int i = 0; i < num_workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::make_unique<std::thread>([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_.store(true, std::memory_order_seq_cst);
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker->thread->join();
  // Tasks still queued are destroyed without running; a query task's
  // promise breaks, so futures handed out by Submit() never hang.
  for (auto& worker : workers_) {
    for (StealingDeque* deque : {&worker->normal, &worker->low}) {
      while (Task* task = deque->PopLocal()) delete task;
    }
  }
}

int TaskScheduler::CurrentWorker() { return t_worker_index; }
TaskScheduler* TaskScheduler::CurrentScheduler() { return t_scheduler; }

void TaskScheduler::Submit(std::unique_ptr<Task> task, TaskPriority priority) {
  int worker;
  if (t_scheduler == this) {
    worker = t_worker_index;  // spawned work stays local until stolen
  } else {
    worker = static_cast<int>(round_robin_.fetch_add(
                 1, std::memory_order_relaxed) %
             static_cast<uint64_t>(workers_.size()));
  }
  Enqueue(worker, task.release(), priority);
}

void TaskScheduler::SubmitTo(int worker, std::unique_ptr<Task> task,
                             TaskPriority priority) {
  AQE_CHECK(worker >= 0 && worker < num_workers());
  Enqueue(worker, task.release(), priority);
}

void TaskScheduler::Enqueue(int worker, Task* task, TaskPriority priority) {
  Worker& w = *workers_[static_cast<size_t>(worker)];
  (priority == TaskPriority::kLow ? w.low : w.normal).PushLocal(task);
  pending_.fetch_add(1, std::memory_order_seq_cst);
  // Dekker-style pairing with the parking path: workers either see
  // pending_ > 0 before sleeping or are woken under the mutex.
  {
    std::lock_guard<std::mutex> lock(mutex_);
  }
  work_available_.notify_one();
}

Task* TaskScheduler::FindLow(int index) {
  const int n = num_workers();
  if (Task* task = workers_[static_cast<size_t>(index)]->low.PopLocal()) {
    return task;
  }
  for (int offset = 1; offset < n; ++offset) {
    size_t victim = static_cast<size_t>((index + offset) % n);
    if (workers_[victim]->low.ApproxSize() == 0) continue;  // skip the lock
    if (Task* task = workers_[victim]->low.Steal()) return task;
  }
  return nullptr;
}

Task* TaskScheduler::FindWork(int index, uint64_t picks) {
  // Periodic low-priority tick: without it, back-to-back morsel yields
  // would keep the normal deque non-empty forever and starve compilations.
  if (picks % kLowPriorityTick == kLowPriorityTick - 1) {
    if (Task* task = FindLow(index)) return task;
  }
  if (Task* task = workers_[static_cast<size_t>(index)]->normal.PopLocal()) {
    return task;
  }
  const int n = num_workers();
  for (int offset = 1; offset < n; ++offset) {
    size_t victim = static_cast<size_t>((index + offset) % n);
    if (workers_[victim]->normal.ApproxSize() == 0) continue;  // skip the lock
    if (Task* task = workers_[victim]->normal.Steal()) return task;
  }
  return FindLow(index);
}

void TaskScheduler::RunTask(Task* task, int worker) {
  executed_slices_.fetch_add(1, std::memory_order_relaxed);
  Task::Status status = task->Run(worker);
  if (status == Task::Status::kYield) {
    // Back at the *steal* end: other local tasks run first, and thieves
    // pick the yielder up — a long pipeline cannot monopolize its worker.
    workers_[static_cast<size_t>(worker)]->normal.PushSteal(task);
    pending_.fetch_add(1, std::memory_order_seq_cst);
    // Same Dekker pairing as Enqueue: without touching the mutex, the
    // notify could land in a parker's pred-check-to-block gap and be lost.
    {
      std::lock_guard<std::mutex> lock(mutex_);
    }
    work_available_.notify_one();
  } else {
    delete task;
  }
}

void TaskScheduler::WorkerLoop(int index) {
  runtime_internal::SetThreadIndex(index);
  t_worker_index = index;
  t_scheduler = this;
  uint64_t picks = 0;
  std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
  for (;;) {
    // Checked every iteration (not only when idle): on shutdown, queued and
    // yielded tasks stop being resumed and are destroyed by the destructor.
    // A task mid-slice still finishes its slice.
    if (shutdown_.load(std::memory_order_seq_cst)) return;
    Task* task = FindWork(index, picks++);
    if (task != nullptr) {
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      RunTask(task, index);
      continue;
    }
    // Brief spin before parking: morsel yields re-arrive within
    // microseconds, an OS sleep would dominate them.
    bool ready = false;
    for (int spin = 0; spin < 64; ++spin) {
      if (pending_.load(std::memory_order_seq_cst) > 0) {
        ready = true;
        break;
      }
      std::this_thread::yield();
    }
    if (ready) continue;
    lock.lock();
    work_available_.wait(lock, [this] {
      return shutdown_.load(std::memory_order_seq_cst) ||
             pending_.load(std::memory_order_seq_cst) > 0;
    });
    lock.unlock();
  }
}

}  // namespace aqe
