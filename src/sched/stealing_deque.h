#ifndef AQE_SCHED_STEALING_DEQUE_H_
#define AQE_SCHED_STEALING_DEQUE_H_

#include <atomic>
#include <cstddef>
#include <deque>

namespace aqe {

class Task;

/// Per-worker work-stealing deque of Task pointers (ownership stays with
/// the scheduler). The owner pushes and pops at the *local* end (LIFO, hot
/// in cache); thieves take from the *steal* end (FIFO, the oldest — and
/// therefore largest-remaining — work). Yielded tasks are re-enqueued at
/// the steal end so sibling tasks interleave instead of one task
/// monopolizing its worker.
///
/// "Lock-free(ish)": every operation is a handful of instructions under a
/// per-deque test-and-set spinlock. With one owner and occasional thieves
/// the lock is almost never contended, and unlike a Chase-Lev buffer it
/// supports pushes at both ends, which the yield protocol needs. The
/// `approx_size_` atomic lets FindWork scan victims without touching their
/// locks.
class StealingDeque {
 public:
  /// Owner side: push at the local (LIFO) end.
  void PushLocal(Task* task) {
    Lock lock(flag_);
    tasks_.push_back(task);
    approx_size_.store(tasks_.size(), std::memory_order_relaxed);
  }

  /// Push at the steal (FIFO) end: yielded tasks go here so that other
  /// local tasks run first and thieves pick the yielder up.
  void PushSteal(Task* task) {
    Lock lock(flag_);
    tasks_.push_front(task);
    approx_size_.store(tasks_.size(), std::memory_order_relaxed);
  }

  /// Owner side: pop the most recently pushed task (LIFO). nullptr if empty.
  Task* PopLocal() {
    Lock lock(flag_);
    if (tasks_.empty()) return nullptr;
    Task* task = tasks_.back();
    tasks_.pop_back();
    approx_size_.store(tasks_.size(), std::memory_order_relaxed);
    return task;
  }

  /// Thief side: pop the oldest task (FIFO). nullptr if empty.
  Task* Steal() {
    Lock lock(flag_);
    if (tasks_.empty()) return nullptr;
    Task* task = tasks_.front();
    tasks_.pop_front();
    approx_size_.store(tasks_.size(), std::memory_order_relaxed);
    return task;
  }

  /// Racy size hint for victim selection; never used for correctness.
  size_t ApproxSize() const {
    return approx_size_.load(std::memory_order_relaxed);
  }

 private:
  struct Lock {
    explicit Lock(std::atomic_flag& flag) : flag_(flag) {
      while (flag_.test_and_set(std::memory_order_acquire)) {
      }
    }
    ~Lock() { flag_.clear(std::memory_order_release); }
    std::atomic_flag& flag_;
  };

  mutable std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  std::deque<Task*> tasks_;
  std::atomic<size_t> approx_size_{0};
};

}  // namespace aqe

#endif  // AQE_SCHED_STEALING_DEQUE_H_
