#ifndef AQE_SCHED_TASK_H_
#define AQE_SCHED_TASK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

namespace aqe {

/// Scheduling class of a task (see DESIGN.md for the exact pick order).
/// kNormal: query control flow and morsel work. kLow: background work that
/// must not displace morsel processing but must still make progress —
/// currently the adaptive controller's JIT compilations and cache publishes.
enum class TaskPriority : uint8_t { kNormal = 0, kLow = 1 };

/// Number of weighted-fair scheduling classes (per-client priority lanes).
/// Class 0 is the default; higher classes are meant for lower-latency
/// tenants, but the mapping is purely a weight question — see
/// TaskScheduler::set_class_weight and DESIGN.md §Admission & fairness.
constexpr int kNumTaskClasses = 4;

/// A unit of schedulable work. Tasks run on TaskScheduler workers; a task
/// that has more work than one bounded slice returns kYield and is
/// re-enqueued at the *steal* end of its worker's deque, so other local
/// tasks (and thieves) get a turn between slices — this is what keeps a
/// long scan from starving short queries that land on the same worker.
///
/// Every task carries a scheduling class. Normal-priority tasks are queued
/// in their class's per-worker lane; the scheduler accounts executed slices
/// per class (weighted virtual time) and picks the most-behind class first,
/// so a high-weight class of short queries overtakes a saturating low-class
/// scan at slice granularity. The class survives yields: a re-enqueued
/// slice stays in its lane.
class Task {
 public:
  enum class Status : uint8_t {
    kDone,   ///< finished; the scheduler releases the task
    kYield,  ///< more work; re-enqueue at the steal end of the local deque
  };

  virtual ~Task() = default;

  /// Runs one bounded slice on worker `worker` (0..num_workers-1).
  virtual Status Run(int worker) = 0;

  /// Weighted-fair class (0..kNumTaskClasses-1). Set before submission;
  /// out-of-range values are clamped by the scheduler.
  uint8_t scheduling_class() const { return scheduling_class_; }
  void set_scheduling_class(int cls) {
    if (cls < 0) cls = 0;
    if (cls >= kNumTaskClasses) cls = kNumTaskClasses - 1;
    scheduling_class_ = static_cast<uint8_t>(cls);
  }

 private:
  uint8_t scheduling_class_ = 0;
};

/// Wraps a callable as a one-shot task.
class ClosureTask : public Task {
 public:
  explicit ClosureTask(std::function<void(int)> fn) : fn_(std::move(fn)) {}

  Status Run(int worker) override {
    fn_(worker);
    return Status::kDone;
  }

 private:
  std::function<void(int)> fn_;
};

inline std::unique_ptr<Task> MakeClosureTask(std::function<void(int)> fn) {
  return std::make_unique<ClosureTask>(std::move(fn));
}

}  // namespace aqe

#endif  // AQE_SCHED_TASK_H_
