#ifndef AQE_SCHED_TASK_H_
#define AQE_SCHED_TASK_H_

#include <functional>
#include <memory>
#include <utility>

namespace aqe {

/// Scheduling class of a task (see DESIGN.md for the exact pick order).
/// kNormal: query control flow and morsel work. kLow: background work that
/// must not displace morsel processing but must still make progress —
/// currently the adaptive controller's JIT compilations.
enum class TaskPriority : uint8_t { kNormal = 0, kLow = 1 };

/// A unit of schedulable work. Tasks run on TaskScheduler workers; a task
/// that has more work than one bounded slice returns kYield and is
/// re-enqueued at the *steal* end of its worker's deque, so other local
/// tasks (and thieves) get a turn between slices — this is what keeps a
/// long scan from starving short queries that land on the same worker.
class Task {
 public:
  enum class Status : uint8_t {
    kDone,   ///< finished; the scheduler releases the task
    kYield,  ///< more work; re-enqueue at the steal end of the local deque
  };

  virtual ~Task() = default;

  /// Runs one bounded slice on worker `worker` (0..num_workers-1).
  virtual Status Run(int worker) = 0;
};

/// Wraps a callable as a one-shot task.
class ClosureTask : public Task {
 public:
  explicit ClosureTask(std::function<void(int)> fn) : fn_(std::move(fn)) {}

  Status Run(int worker) override {
    fn_(worker);
    return Status::kDone;
  }

 private:
  std::function<void(int)> fn_;
};

inline std::unique_ptr<Task> MakeClosureTask(std::function<void(int)> fn) {
  return std::make_unique<ClosureTask>(std::move(fn));
}

}  // namespace aqe

#endif  // AQE_SCHED_TASK_H_
