#ifndef AQE_SCHED_SCHEDULER_H_
#define AQE_SCHED_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/stealing_deque.h"
#include "sched/task.h"

namespace aqe {

/// Task scheduler with per-worker work-stealing deques — the execution
/// substrate that replaced the gang-scheduled WorkerPool. Queries, morsels
/// and JIT compilations are all tasks on it, so N concurrent queries (and
/// the adaptive controller's background compilations) share one set of
/// cores. See DESIGN.md in this directory for invariants (task lifetime,
/// steal protocol, priority and class rules).
///
/// Normal-priority work is split into kNumTaskClasses weighted-fair lanes
/// (one deque per class per worker). The scheduler keeps one global virtual
/// time per class — each executed slice advances its class's clock by
/// 1/weight — and always serves the most-behind (minimum virtual time)
/// non-empty class first, both for local pops and steals. An idle class's
/// clock is clamped forward when it re-activates, so sleeping never banks
/// credit. This is weighted fair queueing at task-slice (= morsel)
/// granularity: a weight-8 class receives ~8x the slices of a weight-1
/// class while both are backlogged.
///
/// Work pick order for worker w (DESIGN.md §priority):
///   1. every kLowPriorityTick picks: a low-priority task (own, then steal)
///   2. w's own class lanes, most-behind class first (LIFO within a lane)
///   3. steal from other workers' lanes (FIFO end), same class order
///   4. any low-priority task
/// Then spin briefly and park until new work is submitted.
///
/// Shutdown: the destructor stops all workers after their current task
/// slice; tasks still queued are destroyed *without running*. A destroyed
/// query task breaks its promise, so Submit() futures never hang.
class TaskScheduler {
 public:
  /// Workers use runtime thread indices [0, num_workers); indices
  /// [kMaxWorkers, 64) are reserved for external pipeline-controller
  /// threads (see EnsureExternalRuntimeIndex in adaptive/controller.cc),
  /// so the two can never alias a per-thread runtime partition.
  static constexpr int kMaxWorkers = 48;

  explicit TaskScheduler(int num_workers);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Thread-safe; callable from workers and external
  /// threads. External submissions round-robin across workers.
  void Submit(std::unique_ptr<Task> task,
              TaskPriority priority = TaskPriority::kNormal);

  /// Enqueues a task on a specific worker's deque (it may still be stolen).
  void SubmitTo(int worker, std::unique_ptr<Task> task,
                TaskPriority priority = TaskPriority::kNormal);

  /// Index of the worker the calling thread is, or -1 for external threads.
  static int CurrentWorker();
  /// The scheduler whose worker the calling thread is, or nullptr.
  static TaskScheduler* CurrentScheduler();

  /// Total task slices executed (yields count once per slice). Test hook.
  uint64_t executed_slices() const {
    return executed_slices_.load(std::memory_order_relaxed);
  }

  /// Weighted-fair share of a scheduling class (default 1). A class with
  /// weight w receives ~w times the slices of a weight-1 class while both
  /// are backlogged. Weights are clamped to [1, kVtimeScale]. Thread-safe;
  /// takes effect on the next slice.
  void set_class_weight(int cls, int weight);
  int class_weight(int cls) const {
    return weights_[static_cast<size_t>(ClampClass(cls))].load(
        std::memory_order_relaxed);
  }

  /// Slices executed per class (yields count once per slice). Test hook
  /// for fairness assertions.
  uint64_t class_slices(int cls) const {
    return class_slices_[static_cast<size_t>(ClampClass(cls))].load(
        std::memory_order_relaxed);
  }

 private:
  struct Worker {
    StealingDeque normal[kNumTaskClasses];
    StealingDeque low;
    std::unique_ptr<std::thread> thread;
  };

  /// A low-priority task is considered at least once per this many picks
  /// even when normal work is plentiful, bounding compile-task latency to a
  /// few morsels without letting compilations displace morsel processing.
  static constexpr uint64_t kLowPriorityTick = 4;

  static int ClampClass(int cls) {
    return cls < 0 ? 0 : (cls >= kNumTaskClasses ? kNumTaskClasses - 1 : cls);
  }

  /// Virtual-time increment of one slice for a weight-1 class; a weight-w
  /// class advances by kVtimeScale / w.
  static constexpr uint64_t kVtimeScale = 1024;

  /// Maximum virtual-time lag (banked credit) any class may hold behind
  /// the other active classes, in weight-1 slices. The activation clamp in
  /// OnClassActivated can race a preempted submitter and leave a class
  /// arbitrarily far behind; this continuous bound caps the resulting
  /// monopoly burst at ~64 slices. Steady-state lag between fairly-served
  /// classes is ~1 slice, so the cap never distorts the weighted shares.
  static constexpr uint64_t kMaxClassCredit = 64 * kVtimeScale;

  void WorkerLoop(int index);
  /// `from_low` reports which lane kind the task came from: low-lane tasks
  /// are outside the per-class pending accounting.
  Task* FindWork(int index, uint64_t picks, bool* from_low);
  Task* FindNormal(int index);
  Task* FindLow(int index);
  void RunTask(Task* task, int worker, bool from_low);
  void Enqueue(int worker, Task* task, TaskPriority priority);
  /// Sorts the class indices by virtual time (most-behind first) into
  /// `order`; classes with no queued work anywhere go last.
  void ClassPickOrder(int* order) const;
  /// Clamps a re-activating idle class's clock to the minimum active
  /// virtual time, so an idle period never banks credit.
  void OnClassActivated(int cls);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> round_robin_{0};
  std::atomic<uint64_t> executed_slices_{0};

  // Weighted-fair accounting (see the class comment). All relaxed: the
  // fairness target is statistical, not exact.
  std::atomic<int> weights_[kNumTaskClasses];
  std::atomic<uint64_t> vtime_[kNumTaskClasses];
  std::atomic<uint64_t> class_slices_[kNumTaskClasses];
  /// Queued normal-priority tasks per class across all workers (activation
  /// detection + lets FindNormal skip globally empty classes).
  std::atomic<int64_t> class_pending_[kNumTaskClasses];

  // Parking. pending_ counts queued tasks; workers park only when it is 0
  // and re-check under the mutex, so a Submit cannot be missed.
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::atomic<int> pending_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace aqe

#endif  // AQE_SCHED_SCHEDULER_H_
