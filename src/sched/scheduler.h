#ifndef AQE_SCHED_SCHEDULER_H_
#define AQE_SCHED_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/stealing_deque.h"
#include "sched/task.h"

namespace aqe {

/// Task scheduler with one work-stealing deque pair per worker thread —
/// the execution substrate that replaced the gang-scheduled WorkerPool.
/// Queries, morsels and JIT compilations are all tasks on it, so N
/// concurrent queries (and the adaptive controller's background
/// compilations) share one set of cores. See DESIGN.md in this directory
/// for invariants (task lifetime, steal protocol, priority rules).
///
/// Work pick order for worker w (DESIGN.md §priority):
///   1. w's normal deque, local end (LIFO)
///   2. every kLowPriorityTick picks, or whenever 1–3 all fail: a low-
///      priority task (own deque first, then steal)
///   3. steal from another worker's normal deque (FIFO end)
/// Then spin briefly and park until new work is submitted.
///
/// Shutdown: the destructor stops all workers after their current task
/// slice; tasks still queued are destroyed *without running*. A destroyed
/// query task breaks its promise, so Submit() futures never hang.
class TaskScheduler {
 public:
  /// Workers use runtime thread indices [0, num_workers); indices
  /// [kMaxWorkers, 64) are reserved for external pipeline-controller
  /// threads (see EnsureExternalRuntimeIndex in adaptive/controller.cc),
  /// so the two can never alias a per-thread runtime partition.
  static constexpr int kMaxWorkers = 48;

  explicit TaskScheduler(int num_workers);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Thread-safe; callable from workers and external
  /// threads. External submissions round-robin across workers.
  void Submit(std::unique_ptr<Task> task,
              TaskPriority priority = TaskPriority::kNormal);

  /// Enqueues a task on a specific worker's deque (it may still be stolen).
  void SubmitTo(int worker, std::unique_ptr<Task> task,
                TaskPriority priority = TaskPriority::kNormal);

  /// Index of the worker the calling thread is, or -1 for external threads.
  static int CurrentWorker();
  /// The scheduler whose worker the calling thread is, or nullptr.
  static TaskScheduler* CurrentScheduler();

  /// Total task slices executed (yields count once per slice). Test hook.
  uint64_t executed_slices() const {
    return executed_slices_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    StealingDeque normal;
    StealingDeque low;
    std::unique_ptr<std::thread> thread;
  };

  /// A low-priority task is considered at least once per this many picks
  /// even when normal work is plentiful, bounding compile-task latency to a
  /// few morsels without letting compilations displace morsel processing.
  static constexpr uint64_t kLowPriorityTick = 4;

  void WorkerLoop(int index);
  Task* FindWork(int index, uint64_t picks);
  Task* FindLow(int index);
  void RunTask(Task* task, int worker);
  void Enqueue(int worker, Task* task, TaskPriority priority);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> round_robin_{0};
  std::atomic<uint64_t> executed_slices_{0};

  // Parking. pending_ counts queued tasks; workers park only when it is 0
  // and re-check under the mutex, so a Submit cannot be missed.
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::atomic<int> pending_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace aqe

#endif  // AQE_SCHED_SCHEDULER_H_
