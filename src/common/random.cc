#include "common/random.h"

#include "common/status.h"

namespace aqe {

namespace {
// splitmix64 to expand the seed into two independent state words.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t state = seed;
  s0_ = SplitMix64(&state);
  s1_ = SplitMix64(&state);
  if (s0_ == 0 && s1_ == 0) s0_ = 1;  // xorshift must not be all-zero
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::NextBelow(uint64_t n) {
  AQE_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::NextRange(int64_t lo, int64_t hi) {
  AQE_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::NextBool(double p) { return NextDouble() < p; }

}  // namespace aqe
