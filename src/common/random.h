#ifndef AQE_COMMON_RANDOM_H_
#define AQE_COMMON_RANDOM_H_

#include <cstdint>

namespace aqe {

/// Deterministic 64-bit PRNG (xorshift128+). Used by the TPC-H generator and
/// the property-test program generator so every run is reproducible.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace aqe

#endif  // AQE_COMMON_RANDOM_H_
