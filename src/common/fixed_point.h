#ifndef AQE_COMMON_FIXED_POINT_H_
#define AQE_COMMON_FIXED_POINT_H_

#include <cstdint>
#include <string>

namespace aqe {

/// TPC-H decimals are represented as int64 fixed-point values scaled by 100
/// (two fractional digits), matching HyPer's practice. All arithmetic on them
/// in generated code is overflow-checked (the §IV-F macro-op pattern).
constexpr int64_t kDecimalScale = 100;

/// Converts a double to scaled fixed point (rounding half away from zero).
int64_t DecimalFromDouble(double value);

/// Converts scaled fixed point to double.
double DecimalToDouble(int64_t value);

/// Formats a scaled decimal as "123.45".
std::string DecimalToString(int64_t value);

/// Multiplies two scale-100 decimals, rescaling the result to scale 100.
/// CHECK-fails on overflow (runtime helpers report instead; this is the
/// host-side reference used by tests and baselines).
int64_t DecimalMul(int64_t a, int64_t b);

}  // namespace aqe

#endif  // AQE_COMMON_FIXED_POINT_H_
