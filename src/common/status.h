#ifndef AQE_COMMON_STATUS_H_
#define AQE_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace aqe {

/// Lightweight error-status type. aqe does not use C++ exceptions; fallible
/// public APIs return Status (or a value plus CHECK on internal invariants).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return message_.empty(); }
  /// Error message; empty for OK.
  const std::string& message() const { return message_; }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}

  std::string message_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* msg);
}  // namespace internal

/// Fatal assertion used for internal invariants. Always on (also in release
/// builds): a database engine that silently corrupts results is worse than
/// one that aborts.
#define AQE_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::aqe::internal::CheckFailed(__FILE__, __LINE__, #expr, "");     \
    }                                                                  \
  } while (0)

#define AQE_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::aqe::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg));  \
    }                                                                  \
  } while (0)

#define AQE_UNREACHABLE(msg) \
  ::aqe::internal::CheckFailed(__FILE__, __LINE__, "unreachable", (msg))

}  // namespace aqe

#endif  // AQE_COMMON_STATUS_H_
