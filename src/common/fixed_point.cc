#include "common/fixed_point.h"

#include <cmath>
#include <cstdio>

#include "common/status.h"

namespace aqe {

int64_t DecimalFromDouble(double value) {
  return static_cast<int64_t>(std::llround(value * kDecimalScale));
}

double DecimalToDouble(int64_t value) {
  return static_cast<double>(value) / kDecimalScale;
}

std::string DecimalToString(int64_t value) {
  char buf[32];
  int64_t whole = value / kDecimalScale;
  int64_t frac = value % kDecimalScale;
  if (frac < 0) frac = -frac;
  if (value < 0 && whole == 0) {
    std::snprintf(buf, sizeof(buf), "-0.%02lld", static_cast<long long>(frac));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld.%02lld",
                  static_cast<long long>(whole), static_cast<long long>(frac));
  }
  return buf;
}

int64_t DecimalMul(int64_t a, int64_t b) {
  __int128 wide = static_cast<__int128>(a) * b / kDecimalScale;
  AQE_CHECK_MSG(wide <= INT64_MAX && wide >= INT64_MIN,
                "decimal multiplication overflow");
  return static_cast<int64_t>(wide);
}

}  // namespace aqe
