#ifndef AQE_COMMON_TIMER_H_
#define AQE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace aqe {

/// Monotonic wall-clock timer with millisecond helpers. Used both by the
/// bench harnesses and by the adaptive controller's progress tracking.
class Timer {
 public:
  /// Starts the timer at construction.
  Timer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic timestamp in nanoseconds since an arbitrary epoch. Used by the
/// trace recorder so events from different threads share one timeline.
int64_t MonotonicNanos();

/// Formats a duration in seconds as a human-readable string ("12.3ms").
std::string FormatDuration(double seconds);

}  // namespace aqe

#endif  // AQE_COMMON_TIMER_H_
