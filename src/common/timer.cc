#include "common/timer.h"

#include <cstdio>

namespace aqe {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

}  // namespace aqe
