#include "common/status.h"

namespace aqe {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const char* msg) {
  std::fprintf(stderr, "AQE_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               msg);
  std::abort();
}

}  // namespace internal
}  // namespace aqe
