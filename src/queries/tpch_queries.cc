#include "queries/tpch_queries.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/fixed_point.h"
#include "common/status.h"
#include "strings/like_lowering.h"
#include "tpch/tpch_schema.h"

namespace aqe {
namespace {

using tpch::DateToDays;

/// Shorthand: column index in a base table.
int Col(const Catalog& cat, const char* table, const char* column) {
  return cat.GetTable(table)->ColumnIndex(column);
}

/// Dictionary code of a string constant (CHECK-fails if the value does not
/// occur — the workload generator registers all spec values).
int64_t DictCode(const Catalog& cat, const char* table, const char* column,
                 const char* value) {
  const Table* t = cat.GetTable(table);
  int32_t code = t->dictionary(t->ColumnIndex(column)).Find(value);
  AQE_CHECK_MSG(code >= 0, value);
  return code;
}

/// Merges all per-thread aggregation tables of `agg` into one, respecting
/// the per-slot aggregate kinds.
AggHashTable MergeAgg(QueryContext* ctx, int agg,
                      const std::vector<AggItem>& items,
                      const std::vector<int64_t>& init) {
  AggHashTable merged(static_cast<uint32_t>(items.size()), init);
  ctx->agg_sets[static_cast<size_t>(agg)]->MergeInto(
      &merged, [&items](uint32_t slot, int64_t* acc, int64_t v) {
        switch (items[slot].kind) {
          case AggKind::kSum:
          case AggKind::kCount: *acc += v; break;
          case AggKind::kMin: *acc = std::min(*acc, v); break;
          case AggKind::kMax: *acc = std::max(*acc, v); break;
        }
      });
  return merged;
}

std::vector<AggItem> CloneItems(const std::vector<AggItem>& items) {
  std::vector<AggItem> clone;
  for (const AggItem& item : items) {
    AggItem c;
    c.kind = item.kind;
    c.checked = item.checked;
    if (item.value != nullptr) c.value = CloneExpr(*item.value);
    clone.push_back(std::move(c));
  }
  return clone;
}

int64_t AggInitFor(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
    case AggKind::kCount: return 0;
    case AggKind::kMin: return INT64_MAX;
    case AggKind::kMax: return INT64_MIN;
  }
  AQE_UNREACHABLE("bad AggKind");
}

std::vector<int64_t> InitsFor(const std::vector<AggItem>& items) {
  std::vector<int64_t> init;
  for (const AggItem& item : items) init.push_back(AggInitFor(item.kind));
  return init;
}

double F64FromBits(int64_t bits) {
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}
int64_t BitsFromF64(double d) {
  int64_t bits;
  std::memcpy(&bits, &d, 8);
  return bits;
}

/// Adds an engine step that creates join table `ht` sized for `table`.
void AddMakeJoinTable(QueryProgram* q, int ht, std::string table,
                      uint32_t payload_slots) {
  q->AddStep([ht, table = std::move(table), payload_slots](QueryContext* ctx) {
    ctx->join_tables[static_cast<size_t>(ht)] = std::make_unique<JoinHashTable>(
        ctx->catalog->GetTable(table)->num_rows(), payload_slots,
        ctx->memory.get());
  });
}

// =============================================================================
// Q1: pricing summary report. 1 pipeline over lineitem; group by
// (returnflag, linestatus); the heavy checked decimal arithmetic query.
// =============================================================================
QueryProgram BuildQ1(const Catalog& cat) {
  QueryProgram q("q1");
  int lineitem = q.DeclareBaseTable("lineitem");

  // Scan slots.
  enum { kQty, kPrice, kDisc, kTax, kRetFlag, kLineStatus, kShipDate };
  PipelineSpec scan;
  scan.name = "scan lineitem";
  scan.source_table = lineitem;
  scan.scan_columns = {
      Col(cat, "lineitem", "l_quantity"),
      Col(cat, "lineitem", "l_extendedprice"),
      Col(cat, "lineitem", "l_discount"),
      Col(cat, "lineitem", "l_tax"),
      Col(cat, "lineitem", "l_returnflag"),
      Col(cat, "lineitem", "l_linestatus"),
      Col(cat, "lineitem", "l_shipdate"),
  };
  scan.ops.push_back(
      OpFilter{Le(Slot(kShipDate), I64(DateToDays(1998, 9, 2)))});
  // disc_price = price * (1.00 - disc); charge = disc_price * (1.00 + tax).
  // Fixed-point: factors are at scale 100, products at scale 1e4 / 1e6.
  scan.ops.push_back(OpCompute{
      CheckedMul(Slot(kPrice), Sub(I64(100), Slot(kDisc)))});  // slot 7
  scan.ops.push_back(OpCompute{
      CheckedMul(Slot(7), Add(I64(100), Slot(kTax)))});        // slot 8

  SinkAgg agg_sink;
  std::vector<AggItem> items;
  items.push_back({AggKind::kSum, Slot(kQty), true});
  items.push_back({AggKind::kSum, Slot(kPrice), true});
  items.push_back({AggKind::kSum, Slot(7), true});
  items.push_back({AggKind::kSum, Slot(8), true});
  items.push_back({AggKind::kSum, Slot(kDisc), true});
  items.push_back({AggKind::kCount, nullptr, false});
  int agg = q.DeclareAggSet(6, InitsFor(items));
  agg_sink.agg = agg;
  agg_sink.key = Add(Mul(Slot(kRetFlag), I64(256)), Slot(kLineStatus));
  agg_sink.items = CloneItems(items);
  scan.sink = std::move(agg_sink);
  q.AddPipeline(std::move(scan));

  q.AddStep([agg, items = std::make_shared<const std::vector<AggItem>>(CloneItems(items))](QueryContext* ctx) {
    AggHashTable merged = MergeAgg(ctx, agg, *items, InitsFor(*items));
    merged.ForEach([ctx](int64_t key, void* payload) {
      const auto* p = static_cast<const int64_t*>(payload);
      int64_t count = p[5];
      // avg_qty, avg_price, avg_disc as doubles.
      ctx->result.push_back(
          {key >> 8, key & 255, p[0], p[1], p[2], p[3],
           BitsFromF64(static_cast<double>(p[0]) / kDecimalScale / count),
           BitsFromF64(static_cast<double>(p[1]) / kDecimalScale / count),
           BitsFromF64(static_cast<double>(p[4]) / kDecimalScale / count),
           count});
    });
    SortRows(&ctx->result, {{0, false, false}, {1, false, false}});
  });
  return q;
}

// =============================================================================
// Q6: forecasting revenue change. 1 pipeline, highly selective filter.
// =============================================================================
QueryProgram BuildQ6Impl(const Catalog& cat, const TpchQ6Literals& lit) {
  QueryProgram q("q6");
  int lineitem = q.DeclareBaseTable("lineitem");
  enum { kShipDate, kDisc, kQty, kPrice };
  PipelineSpec scan;
  scan.name = "scan lineitem";
  scan.source_table = lineitem;
  scan.scan_columns = {
      Col(cat, "lineitem", "l_shipdate"),
      Col(cat, "lineitem", "l_discount"),
      Col(cat, "lineitem", "l_quantity"),
      Col(cat, "lineitem", "l_extendedprice"),
  };
  scan.ops.push_back(OpFilter{And(
      And(Ge(Slot(kShipDate), I64(lit.ship_date_lo)),
          Lt(Slot(kShipDate), I64(lit.ship_date_hi))),
      And(And(Ge(Slot(kDisc), I64(lit.discount_lo)),
              Le(Slot(kDisc), I64(lit.discount_hi))),
          Lt(Slot(kQty), I64(lit.quantity_limit))))});

  std::vector<AggItem> items;
  items.push_back(
      {AggKind::kSum, CheckedMul(Slot(kPrice), Slot(kDisc)), true});
  int agg = q.DeclareAggSet(1, InitsFor(items));
  SinkAgg sink;
  sink.agg = agg;
  sink.key = I64(0);
  sink.items = CloneItems(items);
  scan.sink = std::move(sink);
  q.AddPipeline(std::move(scan));

  q.AddStep([agg, items = std::make_shared<const std::vector<AggItem>>(CloneItems(items))](QueryContext* ctx) {
    AggHashTable merged = MergeAgg(ctx, agg, *items, InitsFor(*items));
    int64_t revenue = 0;
    merged.ForEach([&revenue](int64_t, void* payload) {
      revenue = *static_cast<const int64_t*>(payload);
    });
    ctx->result.push_back({revenue});
  });
  return q;
}

QueryProgram BuildQ6(const Catalog& cat) {
  return BuildQ6Impl(cat, DefaultQ6Literals());
}

// =============================================================================
// Q3: shipping priority. customer -> orders -> lineitem, top-10.
// =============================================================================
QueryProgram BuildQ3(const Catalog& cat) {
  QueryProgram q("q3");
  int customer = q.DeclareBaseTable("customer");
  int orders = q.DeclareBaseTable("orders");
  int lineitem = q.DeclareBaseTable("lineitem");
  int cust_ht = q.DeclareJoinTable(0);   // semi: qualifying customers
  int order_ht = q.DeclareJoinTable(2);  // payload: orderdate, shippriority

  const int64_t cutoff = DateToDays(1995, 3, 15);
  const int64_t building = DictCode(cat, "customer", "c_mktsegment", "BUILDING");

  AddMakeJoinTable(&q, cust_ht, "customer", 0);
  {
    PipelineSpec build;
    build.name = "build customer";
    build.source_table = customer;
    build.scan_columns = {Col(cat, "customer", "c_custkey"),
                          Col(cat, "customer", "c_mktsegment")};
    build.ops.push_back(OpFilter{Eq(Slot(1), I64(building))});
    SinkBuild sink;
    sink.ht = cust_ht;
    sink.key = Slot(0);
    build.sink = std::move(sink);
    q.AddPipeline(std::move(build));
  }
  AddMakeJoinTable(&q, order_ht, "orders", 2);
  {
    PipelineSpec build;
    build.name = "build orders";
    build.source_table = orders;
    build.scan_columns = {Col(cat, "orders", "o_orderkey"),
                          Col(cat, "orders", "o_custkey"),
                          Col(cat, "orders", "o_orderdate"),
                          Col(cat, "orders", "o_shippriority")};
    build.ops.push_back(OpFilter{Lt(Slot(2), I64(cutoff))});
    OpProbe probe;
    probe.ht = cust_ht;
    probe.key = Slot(1);
    probe.kind = JoinKind::kSemi;
    build.ops.push_back(std::move(probe));
    SinkBuild sink;
    sink.ht = order_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(2));
    sink.payload.push_back(Slot(3));
    build.sink = std::move(sink);
    q.AddPipeline(std::move(build));
  }
  std::vector<AggItem> items;
  items.push_back({AggKind::kSum, nullptr, true});  // revenue, expr below
  items.push_back({AggKind::kMin, nullptr, false}); // orderdate carrier
  items.push_back({AggKind::kMin, nullptr, false}); // shippriority carrier
  items[0].value = CheckedMul(Slot(2), Sub(I64(100), Slot(3)));
  items[1].value = Slot(4);
  items[2].value = Slot(5);
  int agg = q.DeclareAggSet(3, InitsFor(items));
  {
    PipelineSpec probe;
    probe.name = "scan lineitem";
    probe.source_table = lineitem;
    probe.scan_columns = {Col(cat, "lineitem", "l_orderkey"),
                          Col(cat, "lineitem", "l_shipdate"),
                          Col(cat, "lineitem", "l_extendedprice"),
                          Col(cat, "lineitem", "l_discount")};
    probe.ops.push_back(OpFilter{Gt(Slot(1), I64(cutoff))});
    OpProbe op;
    op.ht = order_ht;
    op.key = Slot(0);
    op.payload_slots = 2;  // orderdate -> slot 4, shippriority -> slot 5
    probe.ops.push_back(std::move(op));
    SinkAgg sink;
    sink.agg = agg;
    sink.key = Slot(0);  // group by orderkey (unique per group)
    sink.items = CloneItems(items);
    probe.sink = std::move(sink);
    q.AddPipeline(std::move(probe));
  }
  q.AddStep([agg, items = std::make_shared<const std::vector<AggItem>>(CloneItems(items))](QueryContext* ctx) {
    AggHashTable merged = MergeAgg(ctx, agg, *items, InitsFor(*items));
    merged.ForEach([ctx](int64_t key, void* payload) {
      const auto* p = static_cast<const int64_t*>(payload);
      ctx->result.push_back({key, p[0], p[1], p[2]});
    });
    // ORDER BY revenue DESC, o_orderdate; LIMIT 10.
    TopK(&ctx->result, {{1, true, false}, {2, false, false}}, 10);
  });
  return q;
}

// =============================================================================
// Q4: order priority checking. Semi join orders -> lineitem(exists).
// =============================================================================
QueryProgram BuildQ4(const Catalog& cat) {
  QueryProgram q("q4");
  int lineitem = q.DeclareBaseTable("lineitem");
  int orders = q.DeclareBaseTable("orders");
  int li_ht = q.DeclareJoinTable(0);

  AddMakeJoinTable(&q, li_ht, "lineitem", 0);
  {
    PipelineSpec build;
    build.name = "build lineitem exists";
    build.source_table = lineitem;
    build.scan_columns = {Col(cat, "lineitem", "l_orderkey"),
                          Col(cat, "lineitem", "l_commitdate"),
                          Col(cat, "lineitem", "l_receiptdate")};
    build.ops.push_back(OpFilter{Lt(Slot(1), Slot(2))});
    SinkBuild sink;
    sink.ht = li_ht;
    sink.key = Slot(0);
    build.sink = std::move(sink);
    q.AddPipeline(std::move(build));
  }
  std::vector<AggItem> items;
  items.push_back({AggKind::kCount, nullptr, false});
  int agg = q.DeclareAggSet(1, InitsFor(items));
  {
    PipelineSpec probe;
    probe.name = "scan orders";
    probe.source_table = orders;
    probe.scan_columns = {Col(cat, "orders", "o_orderkey"),
                          Col(cat, "orders", "o_orderdate"),
                          Col(cat, "orders", "o_orderpriority")};
    probe.ops.push_back(
        OpFilter{And(Ge(Slot(1), I64(DateToDays(1993, 7, 1))),
                     Lt(Slot(1), I64(DateToDays(1993, 10, 1))))});
    OpProbe op;
    op.ht = li_ht;
    op.key = Slot(0);
    op.kind = JoinKind::kSemi;
    probe.ops.push_back(std::move(op));
    SinkAgg sink;
    sink.agg = agg;
    sink.key = Slot(2);
    sink.items = CloneItems(items);
    probe.sink = std::move(sink);
    q.AddPipeline(std::move(probe));
  }
  q.AddStep([agg, items = std::make_shared<const std::vector<AggItem>>(CloneItems(items))](QueryContext* ctx) {
    AggHashTable merged = MergeAgg(ctx, agg, *items, InitsFor(*items));
    merged.ForEach([ctx](int64_t key, void* payload) {
      ctx->result.push_back({key, *static_cast<const int64_t*>(payload)});
    });
    SortRows(&ctx->result, {{0, false, false}});
  });
  return q;
}

// =============================================================================
// Q5: local supplier volume. 6 pipelines (region, nation, customer, orders,
// supplier builds + lineitem probe).
// =============================================================================
QueryProgram BuildQ5(const Catalog& cat) {
  QueryProgram q("q5");
  int region = q.DeclareBaseTable("region");
  int nation = q.DeclareBaseTable("nation");
  int customer = q.DeclareBaseTable("customer");
  int orders = q.DeclareBaseTable("orders");
  int supplier = q.DeclareBaseTable("supplier");
  int lineitem = q.DeclareBaseTable("lineitem");

  int region_ht = q.DeclareJoinTable(0);
  int nation_ht = q.DeclareJoinTable(0);
  int cust_ht = q.DeclareJoinTable(1);    // payload: c_nationkey
  int order_ht = q.DeclareJoinTable(1);   // payload: c_nationkey
  int supp_ht = q.DeclareJoinTable(1);    // payload: s_nationkey

  const int64_t asia = DictCode(cat, "region", "r_name", "ASIA");

  AddMakeJoinTable(&q, region_ht, "region", 0);
  {
    PipelineSpec p;
    p.name = "build region";
    p.source_table = region;
    p.scan_columns = {Col(cat, "region", "r_regionkey"),
                      Col(cat, "region", "r_name")};
    p.ops.push_back(OpFilter{Eq(Slot(1), I64(asia))});
    SinkBuild sink;
    sink.ht = region_ht;
    sink.key = Slot(0);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  AddMakeJoinTable(&q, nation_ht, "nation", 0);
  {
    PipelineSpec p;
    p.name = "build nation";
    p.source_table = nation;
    p.scan_columns = {Col(cat, "nation", "n_nationkey"),
                      Col(cat, "nation", "n_regionkey")};
    OpProbe probe;
    probe.ht = region_ht;
    probe.key = Slot(1);
    probe.kind = JoinKind::kSemi;
    p.ops.push_back(std::move(probe));
    SinkBuild sink;
    sink.ht = nation_ht;
    sink.key = Slot(0);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  AddMakeJoinTable(&q, cust_ht, "customer", 1);
  {
    PipelineSpec p;
    p.name = "build customer";
    p.source_table = customer;
    p.scan_columns = {Col(cat, "customer", "c_custkey"),
                      Col(cat, "customer", "c_nationkey")};
    OpProbe probe;
    probe.ht = nation_ht;
    probe.key = Slot(1);
    probe.kind = JoinKind::kSemi;
    p.ops.push_back(std::move(probe));
    SinkBuild sink;
    sink.ht = cust_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(1));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  AddMakeJoinTable(&q, order_ht, "orders", 1);
  {
    PipelineSpec p;
    p.name = "build orders";
    p.source_table = orders;
    p.scan_columns = {Col(cat, "orders", "o_orderkey"),
                      Col(cat, "orders", "o_custkey"),
                      Col(cat, "orders", "o_orderdate")};
    p.ops.push_back(OpFilter{And(Ge(Slot(2), I64(DateToDays(1994, 1, 1))),
                                 Lt(Slot(2), I64(DateToDays(1995, 1, 1))))});
    OpProbe probe;
    probe.ht = cust_ht;
    probe.key = Slot(1);
    probe.payload_slots = 1;  // c_nationkey -> slot 3
    p.ops.push_back(std::move(probe));
    SinkBuild sink;
    sink.ht = order_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(3));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  AddMakeJoinTable(&q, supp_ht, "supplier", 1);
  {
    PipelineSpec p;
    p.name = "build supplier";
    p.source_table = supplier;
    p.scan_columns = {Col(cat, "supplier", "s_suppkey"),
                      Col(cat, "supplier", "s_nationkey")};
    SinkBuild sink;
    sink.ht = supp_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(1));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  std::vector<AggItem> items;
  items.push_back(
      {AggKind::kSum, CheckedMul(Slot(2), Sub(I64(100), Slot(3))), true});
  int agg = q.DeclareAggSet(1, InitsFor(items));
  {
    PipelineSpec p;
    p.name = "scan lineitem";
    p.source_table = lineitem;
    p.scan_columns = {Col(cat, "lineitem", "l_orderkey"),
                      Col(cat, "lineitem", "l_suppkey"),
                      Col(cat, "lineitem", "l_extendedprice"),
                      Col(cat, "lineitem", "l_discount")};
    OpProbe probe_orders;
    probe_orders.ht = order_ht;
    probe_orders.key = Slot(0);
    probe_orders.payload_slots = 1;  // c_nationkey -> slot 4
    p.ops.push_back(std::move(probe_orders));
    OpProbe probe_supp;
    probe_supp.ht = supp_ht;
    probe_supp.key = Slot(1);
    probe_supp.payload_slots = 1;  // s_nationkey -> slot 5
    p.ops.push_back(std::move(probe_supp));
    p.ops.push_back(OpFilter{Eq(Slot(4), Slot(5))});
    SinkAgg sink;
    sink.agg = agg;
    sink.key = Slot(5);  // group by nation
    sink.items = CloneItems(items);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  q.AddStep([agg, items = std::make_shared<const std::vector<AggItem>>(CloneItems(items))](QueryContext* ctx) {
    AggHashTable merged = MergeAgg(ctx, agg, *items, InitsFor(*items));
    merged.ForEach([ctx](int64_t key, void* payload) {
      ctx->result.push_back({key, *static_cast<const int64_t*>(payload)});
    });
    SortRows(&ctx->result, {{1, true, false}});
  });
  return q;
}

// =============================================================================
// Q11: important stock identification. The Fig 14 trace query: two large
// partsupp scans dominate.
// =============================================================================
QueryProgram BuildQ11(const Catalog& cat) {
  QueryProgram q("q11");
  int nation = q.DeclareBaseTable("nation");
  int supplier = q.DeclareBaseTable("supplier");
  int partsupp = q.DeclareBaseTable("partsupp");
  int nation_ht = q.DeclareJoinTable(0);
  int supp_ht = q.DeclareJoinTable(0);

  const int64_t germany = DictCode(cat, "nation", "n_name", "GERMANY");

  AddMakeJoinTable(&q, nation_ht, "nation", 0);
  {
    PipelineSpec p;
    p.name = "build nation";
    p.source_table = nation;
    p.scan_columns = {Col(cat, "nation", "n_nationkey"),
                      Col(cat, "nation", "n_name")};
    p.ops.push_back(OpFilter{Eq(Slot(1), I64(germany))});
    SinkBuild sink;
    sink.ht = nation_ht;
    sink.key = Slot(0);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  AddMakeJoinTable(&q, supp_ht, "supplier", 0);
  {
    PipelineSpec p;
    p.name = "build supplier";
    p.source_table = supplier;
    p.scan_columns = {Col(cat, "supplier", "s_suppkey"),
                      Col(cat, "supplier", "s_nationkey")};
    OpProbe probe;
    probe.ht = nation_ht;
    probe.key = Slot(1);
    probe.kind = JoinKind::kSemi;
    p.ops.push_back(std::move(probe));
    SinkBuild sink;
    sink.ht = supp_ht;
    sink.key = Slot(0);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  // Pipeline "scan partsupp 1": per-part value sums.
  std::vector<AggItem> part_items;
  part_items.push_back(
      {AggKind::kSum, CheckedMul(Slot(3), Mul(Slot(2), I64(100))), true});
  int part_agg = q.DeclareAggSet(1, InitsFor(part_items));
  {
    PipelineSpec p;
    p.name = "scan partsupp 1";
    p.source_table = partsupp;
    p.scan_columns = {Col(cat, "partsupp", "ps_partkey"),
                      Col(cat, "partsupp", "ps_suppkey"),
                      Col(cat, "partsupp", "ps_availqty"),
                      Col(cat, "partsupp", "ps_supplycost")};
    OpProbe probe;
    probe.ht = supp_ht;
    probe.key = Slot(1);
    probe.kind = JoinKind::kSemi;
    p.ops.push_back(std::move(probe));
    SinkAgg sink;
    sink.agg = part_agg;
    sink.key = Slot(0);
    sink.items = CloneItems(part_items);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  // Pipeline "scan partsupp 2": total value.
  std::vector<AggItem> total_items;
  total_items.push_back(
      {AggKind::kSum, CheckedMul(Slot(3), Mul(Slot(2), I64(100))), true});
  int total_agg = q.DeclareAggSet(1, InitsFor(total_items));
  {
    PipelineSpec p;
    p.name = "scan partsupp 2";
    p.source_table = partsupp;
    p.scan_columns = {Col(cat, "partsupp", "ps_partkey"),
                      Col(cat, "partsupp", "ps_suppkey"),
                      Col(cat, "partsupp", "ps_availqty"),
                      Col(cat, "partsupp", "ps_supplycost")};
    OpProbe probe;
    probe.ht = supp_ht;
    probe.key = Slot(1);
    probe.kind = JoinKind::kSemi;
    p.ops.push_back(std::move(probe));
    SinkAgg sink;
    sink.agg = total_agg;
    sink.key = I64(0);
    sink.items = CloneItems(total_items);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  q.AddStep([part_agg, total_agg, part_items = std::make_shared<const std::vector<AggItem>>(CloneItems(part_items)),
             total_items = std::make_shared<const std::vector<AggItem>>(CloneItems(total_items))](QueryContext* ctx) {
    AggHashTable totals =
        MergeAgg(ctx, total_agg, *total_items, InitsFor(*total_items));
    int64_t total = 0;
    totals.ForEach([&total](int64_t, void* payload) {
      total = *static_cast<const int64_t*>(payload);
    });
    // HAVING value > total * 0.0001 (the spec's fraction/SF; we use the
    // SF-1 fraction).
    const int64_t threshold =
        static_cast<int64_t>(static_cast<double>(total) * 0.0001);
    AggHashTable parts =
        MergeAgg(ctx, part_agg, *part_items, InitsFor(*part_items));
    parts.ForEach([ctx, threshold](int64_t key, void* payload) {
      int64_t value = *static_cast<const int64_t*>(payload);
      if (value > threshold) ctx->result.push_back({key, value});
    });
    SortRows(&ctx->result, {{1, true, false}});
  });
  return q;
}

// =============================================================================
// Q12: shipping modes and order priority.
// =============================================================================
QueryProgram BuildQ12(const Catalog& cat) {
  QueryProgram q("q12");
  int orders = q.DeclareBaseTable("orders");
  int lineitem = q.DeclareBaseTable("lineitem");
  int order_ht = q.DeclareJoinTable(1);  // payload: o_orderpriority

  const int64_t mail = DictCode(cat, "lineitem", "l_shipmode", "MAIL");
  const int64_t ship = DictCode(cat, "lineitem", "l_shipmode", "SHIP");
  const int64_t urgent =
      DictCode(cat, "orders", "o_orderpriority", "1-URGENT");
  const int64_t high = DictCode(cat, "orders", "o_orderpriority", "2-HIGH");

  AddMakeJoinTable(&q, order_ht, "orders", 1);
  {
    PipelineSpec p;
    p.name = "build orders";
    p.source_table = orders;
    p.scan_columns = {Col(cat, "orders", "o_orderkey"),
                      Col(cat, "orders", "o_orderpriority")};
    SinkBuild sink;
    sink.ht = order_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(1));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  // high_line_count = sum(priority in (URGENT, HIGH)); low = sum(not).
  std::vector<AggItem> items;
  items.push_back({AggKind::kSum,
                   Or(Eq(Slot(6), I64(urgent)), Eq(Slot(6), I64(high))),
                   false});
  items.push_back({AggKind::kSum,
                   And(Ne(Slot(6), I64(urgent)), Ne(Slot(6), I64(high))),
                   false});
  int agg = q.DeclareAggSet(2, InitsFor(items));
  {
    PipelineSpec p;
    p.name = "scan lineitem";
    p.source_table = lineitem;
    p.scan_columns = {Col(cat, "lineitem", "l_orderkey"),
                      Col(cat, "lineitem", "l_shipmode"),
                      Col(cat, "lineitem", "l_commitdate"),
                      Col(cat, "lineitem", "l_receiptdate"),
                      Col(cat, "lineitem", "l_shipdate")};
    p.ops.push_back(OpFilter{And(
        Or(Eq(Slot(1), I64(mail)), Eq(Slot(1), I64(ship))),
        And(And(Lt(Slot(2), Slot(3)), Lt(Slot(4), Slot(2))),
            And(Ge(Slot(3), I64(DateToDays(1994, 1, 1))),
                Lt(Slot(3), I64(DateToDays(1995, 1, 1))))))});
    OpProbe probe;
    probe.ht = order_ht;
    probe.key = Slot(0);
    probe.payload_slots = 1;  // o_orderpriority -> slot 5... slot index 5
    p.ops.push_back(std::move(probe));
    // NOTE: payload lands in slot 5; expressions above reference slot 6
    // because a compute op below copies it (keeps the agg exprs readable).
    p.ops.push_back(OpCompute{Add(Slot(5), I64(0))});  // slot 6 = priority
    SinkAgg sink;
    sink.agg = agg;
    sink.key = Slot(1);  // group by shipmode
    sink.items = CloneItems(items);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  q.AddStep([agg, items = std::make_shared<const std::vector<AggItem>>(CloneItems(items))](QueryContext* ctx) {
    AggHashTable merged = MergeAgg(ctx, agg, *items, InitsFor(*items));
    merged.ForEach([ctx](int64_t key, void* payload) {
      const auto* p = static_cast<const int64_t*>(payload);
      ctx->result.push_back({key, p[0], p[1]});
    });
    SortRows(&ctx->result, {{0, false, false}});
  });
  return q;
}

// =============================================================================
// Q14: promotion effect. part -> lineitem with a LIKE-prefix predicate on
// p_type, lowered by the string predicate subsystem (on the sorted
// dictionary this is a code-range compare; pattern variants differ only in
// the range literals and patch-share q14's cached bytecode).
// =============================================================================
QueryProgram BuildQ14Impl(const Catalog& cat, const std::string& pattern) {
  QueryProgram q("q14");
  int part = q.DeclareBaseTable("part");
  int lineitem = q.DeclareBaseTable("lineitem");
  int part_ht = q.DeclareJoinTable(1);  // payload: is_promo

  const Table* part_table = cat.GetTable("part");
  LoweredLike promo = LowerLikePredicate(
      &q, *part_table, part_table->ColumnIndex("p_type"), /*code_slot=*/1,
      pattern);

  AddMakeJoinTable(&q, part_ht, "part", 1);
  {
    PipelineSpec p;
    p.name = "build part";
    p.source_table = part;
    p.scan_columns = {Col(cat, "part", "p_partkey"),
                      Col(cat, "part", "p_type")};
    p.ops.push_back(OpCompute{std::move(promo.expr)});  // slot 2
    SinkBuild sink;
    sink.ht = part_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(2));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  std::vector<AggItem> items;
  // revenue = price * (100 - disc); promo_revenue = is_promo * revenue.
  items.push_back({AggKind::kSum,
                   Mul(Slot(4), CheckedMul(Slot(2), Sub(I64(100), Slot(3)))),
                   true});
  items.push_back(
      {AggKind::kSum, CheckedMul(Slot(2), Sub(I64(100), Slot(3))), true});
  int agg = q.DeclareAggSet(2, InitsFor(items));
  {
    PipelineSpec p;
    p.name = "scan lineitem";
    p.source_table = lineitem;
    p.scan_columns = {Col(cat, "lineitem", "l_partkey"),
                      Col(cat, "lineitem", "l_shipdate"),
                      Col(cat, "lineitem", "l_extendedprice"),
                      Col(cat, "lineitem", "l_discount")};
    p.ops.push_back(OpFilter{And(Ge(Slot(1), I64(DateToDays(1995, 9, 1))),
                                 Lt(Slot(1), I64(DateToDays(1995, 10, 1))))});
    OpProbe probe;
    probe.ht = part_ht;
    probe.key = Slot(0);
    probe.payload_slots = 1;  // is_promo -> slot 4
    p.ops.push_back(std::move(probe));
    SinkAgg sink;
    sink.agg = agg;
    sink.key = I64(0);
    sink.items = CloneItems(items);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  q.AddStep([agg, items = std::make_shared<const std::vector<AggItem>>(CloneItems(items))](QueryContext* ctx) {
    AggHashTable merged = MergeAgg(ctx, agg, *items, InitsFor(*items));
    int64_t promo = 0, total = 0;
    merged.ForEach([&promo, &total](int64_t, void* payload) {
      const auto* p = static_cast<const int64_t*>(payload);
      promo = p[0];
      total = p[1];
    });
    double pct = total == 0 ? 0
                            : 100.0 * static_cast<double>(promo) /
                                  static_cast<double>(total);
    ctx->result.push_back({BitsFromF64(pct), promo, total});
  });
  return q;
}

QueryProgram BuildQ14(const Catalog& cat) {
  return BuildQ14Impl(cat, "PROMO%");
}

// =============================================================================
// Q18: large volume customer. Group lineitem by orderkey, HAVING sum > 300.
// =============================================================================
QueryProgram BuildQ18(const Catalog& cat) {
  QueryProgram q("q18");
  int lineitem = q.DeclareBaseTable("lineitem");
  int orders = q.DeclareBaseTable("orders");
  int qualify_ht = q.DeclareJoinTable(1);  // payload: sum(l_quantity)

  std::vector<AggItem> items;
  items.push_back({AggKind::kSum, Slot(1), true});
  int agg = q.DeclareAggSet(1, InitsFor(items));
  {
    PipelineSpec p;
    p.name = "agg lineitem";
    p.source_table = lineitem;
    p.scan_columns = {Col(cat, "lineitem", "l_orderkey"),
                      Col(cat, "lineitem", "l_quantity")};
    SinkAgg sink;
    sink.agg = agg;
    sink.key = Slot(0);
    sink.items = CloneItems(items);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  // Engine step: materialize qualifying orderkeys (sum > 300.00) into a
  // join hash table (the paper's queryStart-style C++ glue).
  q.AddStep([agg, qualify_ht, items = std::make_shared<const std::vector<AggItem>>(CloneItems(items))](QueryContext* ctx) {
    AggHashTable merged = MergeAgg(ctx, agg, *items, InitsFor(*items));
    auto ht = std::make_unique<JoinHashTable>(merged.size() + 1, 1,
                                              ctx->memory.get());
    merged.ForEach([&ht](int64_t key, void* payload) {
      int64_t sum = *static_cast<const int64_t*>(payload);
      if (sum > 300 * kDecimalScale) {
        *static_cast<int64_t*>(ht->Insert(key)) = sum;
      }
    });
    ctx->join_tables[static_cast<size_t>(qualify_ht)] = std::move(ht);
  });
  {
    PipelineSpec p;
    p.name = "scan orders";
    p.source_table = orders;
    p.scan_columns = {Col(cat, "orders", "o_orderkey"),
                      Col(cat, "orders", "o_custkey"),
                      Col(cat, "orders", "o_orderdate"),
                      Col(cat, "orders", "o_totalprice")};
    OpProbe probe;
    probe.ht = qualify_ht;
    probe.key = Slot(0);
    probe.payload_slots = 1;  // sum(l_quantity) -> slot 4
    p.ops.push_back(std::move(probe));
    int output = q.DeclareOutput(5);
    SinkOutput sink;
    sink.output = output;
    sink.values.push_back(Slot(1));  // custkey
    sink.values.push_back(Slot(0));  // orderkey
    sink.values.push_back(Slot(2));  // orderdate
    sink.values.push_back(Slot(3));  // totalprice
    sink.values.push_back(Slot(4));  // sum qty
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
    q.AddStep([output](QueryContext* ctx) {
      ctx->result = ctx->outputs[static_cast<size_t>(output)]->Rows();
      // ORDER BY o_totalprice DESC, o_orderdate; LIMIT 100.
      TopK(&ctx->result, {{3, true, false}, {2, false, false}}, 100);
    });
  }
  return q;
}

// =============================================================================
// Q19: discounted revenue — the big disjunctive predicate over part
// attributes and lineitem, evaluated after the part join.
// =============================================================================
QueryProgram BuildQ19(const Catalog& cat) {
  QueryProgram q("q19");
  int part = q.DeclareBaseTable("part");
  int lineitem = q.DeclareBaseTable("lineitem");
  int part_ht = q.DeclareJoinTable(3);  // payload: brand, container, size

  const Table* pt = cat.GetTable("part");
  const Dictionary& containers =
      pt->dictionary(pt->ColumnIndex("p_container"));
  const uint8_t* sm = q.AddBitmap(
      containers.MatchIn({"SM CASE", "SM BOX", "SM PACK", "SM PKG"}));
  const uint8_t* med = q.AddBitmap(
      containers.MatchIn({"MED BAG", "MED BOX", "MED PKG", "MED PACK"}));
  const uint8_t* lg = q.AddBitmap(
      containers.MatchIn({"LG CASE", "LG BOX", "LG PACK", "LG PKG"}));
  const int64_t brand12 = DictCode(cat, "part", "p_brand", "Brand#12");
  const int64_t brand23 = DictCode(cat, "part", "p_brand", "Brand#23");
  const int64_t brand34 = DictCode(cat, "part", "p_brand", "Brand#34");
  const Table* lt = cat.GetTable("lineitem");
  const uint8_t* air_modes = q.AddBitmap(
      lt->dictionary(lt->ColumnIndex("l_shipmode"))
          .MatchIn({"AIR", "REG AIR"}));
  const int64_t deliver = DictCode(cat, "lineitem", "l_shipinstruct",
                                   "DELIVER IN PERSON");

  AddMakeJoinTable(&q, part_ht, "part", 3);
  {
    PipelineSpec p;
    p.name = "build part";
    p.source_table = part;
    p.scan_columns = {Col(cat, "part", "p_partkey"),
                      Col(cat, "part", "p_brand"),
                      Col(cat, "part", "p_container"),
                      Col(cat, "part", "p_size")};
    SinkBuild sink;
    sink.ht = part_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(1));
    sink.payload.push_back(Slot(2));
    sink.payload.push_back(Slot(3));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  std::vector<AggItem> items;
  items.push_back(
      {AggKind::kSum, CheckedMul(Slot(2), Sub(I64(100), Slot(3))), true});
  int agg = q.DeclareAggSet(1, InitsFor(items));
  {
    PipelineSpec p;
    p.name = "scan lineitem";
    p.source_table = lineitem;
    // 0 partkey, 1 qty, 2 price, 3 disc, 4 shipmode, 5 shipinstruct
    p.scan_columns = {Col(cat, "lineitem", "l_partkey"),
                      Col(cat, "lineitem", "l_quantity"),
                      Col(cat, "lineitem", "l_extendedprice"),
                      Col(cat, "lineitem", "l_discount"),
                      Col(cat, "lineitem", "l_shipmode"),
                      Col(cat, "lineitem", "l_shipinstruct")};
    p.ops.push_back(OpFilter{And(Eq(Slot(5), I64(deliver)),
                                 BitmapTest(air_modes, Slot(4)))});
    OpProbe probe;
    probe.ht = part_ht;
    probe.key = Slot(0);
    probe.payload_slots = 3;  // brand->6, container->7, size->8
    p.ops.push_back(std::move(probe));
    auto branch = [&](int64_t brand, const uint8_t* bitmap, int64_t qlo,
                      int64_t qhi, int64_t size_hi) {
      return And(
          And(Eq(Slot(6), I64(brand)), BitmapTest(bitmap, Slot(7))),
          And(And(Ge(Slot(1), I64(qlo * 100)), Le(Slot(1), I64(qhi * 100))),
              And(Ge(Slot(8), I64(1)), Le(Slot(8), I64(size_hi)))));
    };
    p.ops.push_back(OpFilter{Or(
        Or(branch(brand12, sm, 1, 11, 5), branch(brand23, med, 10, 20, 10)),
        branch(brand34, lg, 20, 30, 15))});
    SinkAgg sink;
    sink.agg = agg;
    sink.key = I64(0);
    sink.items = CloneItems(items);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  q.AddStep([agg, items = std::make_shared<const std::vector<AggItem>>(CloneItems(items))](QueryContext* ctx) {
    AggHashTable merged = MergeAgg(ctx, agg, *items, InitsFor(*items));
    int64_t revenue = 0;
    merged.ForEach([&revenue](int64_t, void* payload) {
      revenue = *static_cast<const int64_t*>(payload);
    });
    ctx->result.push_back({revenue});
  });
  return q;
}


// =============================================================================
// Q7: volume shipping. supplier x lineitem x orders x customer with two
// nation filters and per-year revenue (year via date-threshold arithmetic).
// =============================================================================
QueryProgram BuildQ7(const Catalog& cat) {
  QueryProgram q("q7");
  int supplier = q.DeclareBaseTable("supplier");
  int customer = q.DeclareBaseTable("customer");
  int orders = q.DeclareBaseTable("orders");
  int lineitem = q.DeclareBaseTable("lineitem");
  int supp_ht = q.DeclareJoinTable(1);   // payload: s_nationkey
  int cust_ht = q.DeclareJoinTable(1);   // payload: c_nationkey
  int order_ht = q.DeclareJoinTable(1);  // payload: c_nationkey

  const int64_t france = DictCode(cat, "nation", "n_name", "FRANCE");
  const int64_t germany = DictCode(cat, "nation", "n_name", "GERMANY");
  // n_name dictionary codes are not nation keys; map via the nation table.
  const Table* nt = cat.GetTable("nation");
  int64_t fr_key = -1, de_key = -1;
  for (uint64_t r = 0; r < nt->num_rows(); ++r) {
    int64_t name = nt->column("n_name").GetI32(r);
    if (name == france) fr_key = nt->column("n_nationkey").GetI32(r);
    if (name == germany) de_key = nt->column("n_nationkey").GetI32(r);
  }
  AQE_CHECK(fr_key >= 0 && de_key >= 0);

  AddMakeJoinTable(&q, supp_ht, "supplier", 1);
  {
    PipelineSpec p;
    p.name = "build supplier";
    p.source_table = supplier;
    p.scan_columns = {Col(cat, "supplier", "s_suppkey"),
                      Col(cat, "supplier", "s_nationkey")};
    p.ops.push_back(
        OpFilter{Or(Eq(Slot(1), I64(fr_key)), Eq(Slot(1), I64(de_key)))});
    SinkBuild sink;
    sink.ht = supp_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(1));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  AddMakeJoinTable(&q, cust_ht, "customer", 1);
  {
    PipelineSpec p;
    p.name = "build customer";
    p.source_table = customer;
    p.scan_columns = {Col(cat, "customer", "c_custkey"),
                      Col(cat, "customer", "c_nationkey")};
    p.ops.push_back(
        OpFilter{Or(Eq(Slot(1), I64(fr_key)), Eq(Slot(1), I64(de_key)))});
    SinkBuild sink;
    sink.ht = cust_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(1));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  AddMakeJoinTable(&q, order_ht, "orders", 1);
  {
    PipelineSpec p;
    p.name = "build orders";
    p.source_table = orders;
    p.scan_columns = {Col(cat, "orders", "o_orderkey"),
                      Col(cat, "orders", "o_custkey")};
    OpProbe probe;
    probe.ht = cust_ht;
    probe.key = Slot(1);
    probe.payload_slots = 1;  // c_nationkey -> slot 2
    p.ops.push_back(std::move(probe));
    SinkBuild sink;
    sink.ht = order_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(2));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  std::vector<AggItem> items;
  items.push_back(
      {AggKind::kSum, CheckedMul(Slot(2), Sub(I64(100), Slot(3))), true});
  int agg = q.DeclareAggSet(1, InitsFor(items));
  {
    PipelineSpec p;
    p.name = "scan lineitem";
    p.source_table = lineitem;
    // 0 orderkey, 1 suppkey, 2 price, 3 disc, 4 shipdate
    p.scan_columns = {Col(cat, "lineitem", "l_orderkey"),
                      Col(cat, "lineitem", "l_suppkey"),
                      Col(cat, "lineitem", "l_extendedprice"),
                      Col(cat, "lineitem", "l_discount"),
                      Col(cat, "lineitem", "l_shipdate")};
    p.ops.push_back(OpFilter{And(Ge(Slot(4), I64(DateToDays(1995, 1, 1))),
                                 Le(Slot(4), I64(DateToDays(1996, 12, 31))))});
    OpProbe probe_supp;
    probe_supp.ht = supp_ht;
    probe_supp.key = Slot(1);
    probe_supp.payload_slots = 1;  // s_nationkey -> slot 5
    p.ops.push_back(std::move(probe_supp));
    OpProbe probe_ord;
    probe_ord.ht = order_ht;
    probe_ord.key = Slot(0);
    probe_ord.payload_slots = 1;  // c_nationkey -> slot 6
    p.ops.push_back(std::move(probe_ord));
    p.ops.push_back(OpFilter{
        Or(And(Eq(Slot(5), I64(fr_key)), Eq(Slot(6), I64(de_key))),
           And(Eq(Slot(5), I64(de_key)), Eq(Slot(6), I64(fr_key))))});
    // year = 1995 + (shipdate >= 1996-01-01) -> slot 7
    p.ops.push_back(OpCompute{Add(
        I64(1995), BoolToI64(Ge(Slot(4), I64(DateToDays(1996, 1, 1)))))});
    SinkAgg sink;
    sink.agg = agg;
    // group key packs (supp_nation, cust_nation, year).
    sink.key = Add(Mul(Slot(5), I64(1 << 20)),
                   Add(Mul(Slot(6), I64(4096)), Slot(7)));
    sink.items = CloneItems(items);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  q.AddStep([agg, items = std::make_shared<const std::vector<AggItem>>(
                      CloneItems(items))](QueryContext* ctx) {
    AggHashTable merged = MergeAgg(ctx, agg, *items, InitsFor(*items));
    merged.ForEach([ctx](int64_t key, void* payload) {
      ctx->result.push_back({key >> 20, (key >> 12) & 255, key & 4095,
                             *static_cast<const int64_t*>(payload)});
    });
    SortRows(&ctx->result,
             {{0, false, false}, {1, false, false}, {2, false, false}});
  });
  return q;
}

// =============================================================================
// Q9: product type profit measure. The spec filters p_name LIKE '%green%';
// our generator has no p_name column, so we filter p_type LIKE '%BRASS%'
// (similar ~1/5 selectivity, same code path). Composite
// (partkey, suppkey) partsupp key packed into one i64; per-nation/year
// profit. The largest worker function among the implemented queries.
// =============================================================================
QueryProgram BuildQ9(const Catalog& cat) {
  QueryProgram q("q9");
  int part = q.DeclareBaseTable("part");
  int supplier = q.DeclareBaseTable("supplier");
  int partsupp = q.DeclareBaseTable("partsupp");
  int orders = q.DeclareBaseTable("orders");
  int lineitem = q.DeclareBaseTable("lineitem");
  int part_ht = q.DeclareJoinTable(0);   // green parts (semi)
  int supp_ht = q.DeclareJoinTable(1);   // payload: s_nationkey
  int ps_ht = q.DeclareJoinTable(1);     // payload: ps_supplycost
  int order_ht = q.DeclareJoinTable(1);  // payload: o_orderdate

  const Table* pt = cat.GetTable("part");
  const uint8_t* green = q.AddBitmap(
      pt->dictionary(pt->ColumnIndex("p_type")).MatchContains("BRASS"));

  AddMakeJoinTable(&q, part_ht, "part", 0);
  {
    PipelineSpec p;
    p.name = "build part";
    p.source_table = part;
    p.scan_columns = {Col(cat, "part", "p_partkey"),
                      Col(cat, "part", "p_type")};
    p.ops.push_back(OpFilter{BitmapTest(green, Slot(1))});
    SinkBuild sink;
    sink.ht = part_ht;
    sink.key = Slot(0);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  AddMakeJoinTable(&q, supp_ht, "supplier", 1);
  {
    PipelineSpec p;
    p.name = "build supplier";
    p.source_table = supplier;
    p.scan_columns = {Col(cat, "supplier", "s_suppkey"),
                      Col(cat, "supplier", "s_nationkey")};
    SinkBuild sink;
    sink.ht = supp_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(1));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  AddMakeJoinTable(&q, ps_ht, "partsupp", 1);
  {
    PipelineSpec p;
    p.name = "build partsupp";
    p.source_table = partsupp;
    p.scan_columns = {Col(cat, "partsupp", "ps_partkey"),
                      Col(cat, "partsupp", "ps_suppkey"),
                      Col(cat, "partsupp", "ps_supplycost")};
    SinkBuild sink;
    sink.ht = ps_ht;
    // composite key: partkey * 2^20 + suppkey (fits for SF <= ~500)
    sink.key = Add(Mul(Slot(0), I64(1 << 20)), Slot(1));
    sink.payload.push_back(Slot(2));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  AddMakeJoinTable(&q, order_ht, "orders", 1);
  {
    PipelineSpec p;
    p.name = "build orders";
    p.source_table = orders;
    p.scan_columns = {Col(cat, "orders", "o_orderkey"),
                      Col(cat, "orders", "o_orderdate")};
    SinkBuild sink;
    sink.ht = order_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(1));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  std::vector<AggItem> items;
  // profit = price*(100-disc) - supplycost*qty  (both at scale 1e4)
  items.push_back({AggKind::kSum,
                   CheckedSub(CheckedMul(Slot(4), Sub(I64(100), Slot(5))),
                              CheckedMul(Slot(8), Slot(3))),
                   true});
  int agg = q.DeclareAggSet(1, InitsFor(items));
  {
    PipelineSpec p;
    p.name = "scan lineitem";
    p.source_table = lineitem;
    // 0 orderkey, 1 partkey, 2 suppkey, 3 qty, 4 price, 5 disc
    p.scan_columns = {Col(cat, "lineitem", "l_orderkey"),
                      Col(cat, "lineitem", "l_partkey"),
                      Col(cat, "lineitem", "l_suppkey"),
                      Col(cat, "lineitem", "l_quantity"),
                      Col(cat, "lineitem", "l_extendedprice"),
                      Col(cat, "lineitem", "l_discount")};
    OpProbe probe_part;
    probe_part.ht = part_ht;
    probe_part.key = Slot(1);
    probe_part.kind = JoinKind::kSemi;
    p.ops.push_back(std::move(probe_part));
    OpProbe probe_supp;
    probe_supp.ht = supp_ht;
    probe_supp.key = Slot(2);
    probe_supp.payload_slots = 1;  // s_nationkey -> slot 6
    p.ops.push_back(std::move(probe_supp));
    OpProbe probe_ord;
    probe_ord.ht = order_ht;
    probe_ord.key = Slot(0);
    probe_ord.payload_slots = 1;  // o_orderdate -> slot 7
    p.ops.push_back(std::move(probe_ord));
    OpProbe probe_ps;
    probe_ps.ht = ps_ht;
    probe_ps.key = Add(Mul(Slot(1), I64(1 << 20)), Slot(2));
    probe_ps.payload_slots = 1;  // ps_supplycost -> slot 8
    p.ops.push_back(std::move(probe_ps));
    // year(o_orderdate) = 1992 + sum of >=-year-boundary indicators
    ExprPtr year = I64(1992);
    for (int y = 1993; y <= 1998; ++y) {
      year = Add(std::move(year),
                 BoolToI64(Ge(Slot(7), I64(DateToDays(y, 1, 1)))));
    }
    p.ops.push_back(OpCompute{std::move(year)});  // slot 9
    SinkAgg sink;
    sink.agg = agg;
    sink.key = Add(Mul(Slot(6), I64(4096)), Slot(9));
    sink.items = CloneItems(items);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  q.AddStep([agg, items = std::make_shared<const std::vector<AggItem>>(
                      CloneItems(items))](QueryContext* ctx) {
    AggHashTable merged = MergeAgg(ctx, agg, *items, InitsFor(*items));
    merged.ForEach([ctx](int64_t key, void* payload) {
      ctx->result.push_back(
          {key >> 12, key & 4095, *static_cast<const int64_t*>(payload)});
    });
    // ORDER BY nation, o_year DESC.
    SortRows(&ctx->result, {{0, false, false}, {1, true, false}});
  });
  return q;
}

// =============================================================================
// Q10: returned item reporting. Top-20 customers by lost revenue.
// =============================================================================
QueryProgram BuildQ10(const Catalog& cat) {
  QueryProgram q("q10");
  int customer = q.DeclareBaseTable("customer");
  int orders = q.DeclareBaseTable("orders");
  int lineitem = q.DeclareBaseTable("lineitem");
  int cust_ht = q.DeclareJoinTable(1);   // payload: c_nationkey
  int order_ht = q.DeclareJoinTable(1);  // payload: o_custkey

  const int64_t returned = DictCode(cat, "lineitem", "l_returnflag", "R");

  AddMakeJoinTable(&q, cust_ht, "customer", 1);
  {
    PipelineSpec p;
    p.name = "build customer";
    p.source_table = customer;
    p.scan_columns = {Col(cat, "customer", "c_custkey"),
                      Col(cat, "customer", "c_nationkey")};
    SinkBuild sink;
    sink.ht = cust_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(1));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  AddMakeJoinTable(&q, order_ht, "orders", 1);
  {
    PipelineSpec p;
    p.name = "build orders";
    p.source_table = orders;
    p.scan_columns = {Col(cat, "orders", "o_orderkey"),
                      Col(cat, "orders", "o_custkey"),
                      Col(cat, "orders", "o_orderdate")};
    p.ops.push_back(OpFilter{And(Ge(Slot(2), I64(DateToDays(1993, 10, 1))),
                                 Lt(Slot(2), I64(DateToDays(1994, 1, 1))))});
    SinkBuild sink;
    sink.ht = order_ht;
    sink.key = Slot(0);
    sink.payload.push_back(Slot(1));
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  std::vector<AggItem> items;
  items.push_back(
      {AggKind::kSum, CheckedMul(Slot(2), Sub(I64(100), Slot(3))), true});
  items.push_back({AggKind::kMin, Slot(5), false});  // nationkey carrier
  int agg = q.DeclareAggSet(2, InitsFor(items));
  {
    PipelineSpec p;
    p.name = "scan lineitem";
    p.source_table = lineitem;
    // 0 orderkey, 1 returnflag, 2 price, 3 disc
    p.scan_columns = {Col(cat, "lineitem", "l_orderkey"),
                      Col(cat, "lineitem", "l_returnflag"),
                      Col(cat, "lineitem", "l_extendedprice"),
                      Col(cat, "lineitem", "l_discount")};
    p.ops.push_back(OpFilter{Eq(Slot(1), I64(returned))});
    OpProbe probe_ord;
    probe_ord.ht = order_ht;
    probe_ord.key = Slot(0);
    probe_ord.payload_slots = 1;  // o_custkey -> slot 4
    p.ops.push_back(std::move(probe_ord));
    OpProbe probe_cust;
    probe_cust.ht = cust_ht;
    probe_cust.key = Slot(4);
    probe_cust.payload_slots = 1;  // c_nationkey -> slot 5
    p.ops.push_back(std::move(probe_cust));
    SinkAgg sink;
    sink.agg = agg;
    sink.key = Slot(4);  // group by custkey
    sink.items = CloneItems(items);
    p.sink = std::move(sink);
    q.AddPipeline(std::move(p));
  }
  q.AddStep([agg, items = std::make_shared<const std::vector<AggItem>>(
                      CloneItems(items))](QueryContext* ctx) {
    AggHashTable merged = MergeAgg(ctx, agg, *items, InitsFor(*items));
    merged.ForEach([ctx](int64_t key, void* payload) {
      const auto* p = static_cast<const int64_t*>(payload);
      ctx->result.push_back({key, p[1], p[0]});
    });
    // ORDER BY revenue DESC LIMIT 20.
    TopK(&ctx->result, {{2, true, false}, {0, false, false}}, 20);
  });
  return q;
}

}  // namespace

QueryProgram BuildTpchQuery(int number, const Catalog& catalog) {
  switch (number) {
    case 1: return BuildQ1(catalog);
    case 3: return BuildQ3(catalog);
    case 4: return BuildQ4(catalog);
    case 5: return BuildQ5(catalog);
    case 6: return BuildQ6(catalog);
    case 7: return BuildQ7(catalog);
    case 9: return BuildQ9(catalog);
    case 10: return BuildQ10(catalog);
    case 11: return BuildQ11(catalog);
    case 12: return BuildQ12(catalog);
    case 14: return BuildQ14(catalog);
    case 18: return BuildQ18(catalog);
    case 19: return BuildQ19(catalog);
    default:
      AQE_UNREACHABLE("TPC-H query not implemented");
  }
}

const std::vector<int>& ImplementedTpchQueries() {
  static const std::vector<int> kQueries = {1, 3, 4,  5,  6,  7, 9,
                                            10, 11, 12, 14, 18, 19};
  return kQueries;
}

TpchQ6Literals DefaultQ6Literals() {
  return {DateToDays(1994, 1, 1), DateToDays(1995, 1, 1), 5, 7, 2400};
}

QueryProgram BuildTpchQ6Variant(const Catalog& catalog,
                                const TpchQ6Literals& literals) {
  return BuildQ6Impl(catalog, literals);
}

QueryProgram BuildTpchQ14Variant(const Catalog& catalog,
                                 const std::string& type_pattern) {
  return BuildQ14Impl(catalog, type_pattern);
}

}  // namespace aqe
