#ifndef AQE_QUERIES_TPCH_QUERIES_H_
#define AQE_QUERIES_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "plan/plan.h"

namespace aqe {

/// Builds the physical QueryProgram for a TPC-H query against `catalog`
/// (dictionary codes and predicate bitmaps are resolved at build time —
/// this is the paper's "Planning + Code Generation" input). Implemented
/// queries: 1, 3, 4, 5, 6, 7, 9, 10, 11, 12, 14, 18, 19 (see DESIGN.md).
QueryProgram BuildTpchQuery(int number, const Catalog& catalog);

/// The implemented query numbers, ascending.
const std::vector<int>& ImplementedTpchQueries();

}  // namespace aqe

#endif  // AQE_QUERIES_TPCH_QUERIES_H_
