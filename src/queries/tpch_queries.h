#ifndef AQE_QUERIES_TPCH_QUERIES_H_
#define AQE_QUERIES_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "plan/plan.h"

namespace aqe {

/// Builds the physical QueryProgram for a TPC-H query against `catalog`
/// (dictionary codes and predicate bitmaps are resolved at build time —
/// this is the paper's "Planning + Code Generation" input). Implemented
/// queries: 1, 3, 4, 5, 6, 7, 9, 10, 11, 12, 14, 18, 19 (see DESIGN.md).
QueryProgram BuildTpchQuery(int number, const Catalog& catalog);

/// The implemented query numbers, ascending.
const std::vector<int>& ImplementedTpchQueries();

/// The literals of TPC-H Q6's filter. Variants that differ only here share
/// a plan fingerprint (and, via the constant-patch table, cached bytecode)
/// with the standard Q6 — the repeated-query workload's parameterized
/// query.
struct TpchQ6Literals {
  int64_t ship_date_lo;  ///< days since 1970-01-01, inclusive
  int64_t ship_date_hi;  ///< exclusive
  int64_t discount_lo;   ///< hundredths, inclusive
  int64_t discount_hi;   ///< inclusive
  int64_t quantity_limit;  ///< hundredths, exclusive
};

/// The standard Q6 parameters (1994, discount 5..7, quantity < 24).
TpchQ6Literals DefaultQ6Literals();

/// Q6 with substituted literals; BuildTpchQuery(6, ...) ==
/// BuildTpchQ6Variant(catalog, DefaultQ6Literals()).
QueryProgram BuildTpchQ6Variant(const Catalog& catalog,
                                const TpchQ6Literals& literals);

/// Q14 with the p_type LIKE pattern replaced ("PROMO%" is the standard
/// query). Prefix patterns lower to code-range literals on the sorted
/// dictionary, so variants share q14's plan fingerprint and patch-share
/// its cached bytecode — the string-pattern analogue of the Q6 literal
/// variants.
QueryProgram BuildTpchQ14Variant(const Catalog& catalog,
                                 const std::string& type_pattern);

}  // namespace aqe

#endif  // AQE_QUERIES_TPCH_QUERIES_H_
