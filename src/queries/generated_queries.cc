#include "queries/generated_queries.h"

#include "common/status.h"

namespace aqe {

QueryProgram BuildGeneratedAggregateQuery(int num_aggregates,
                                          const Catalog& catalog) {
  AQE_CHECK(num_aggregates >= 1);
  QueryProgram q("generated_" + std::to_string(num_aggregates));
  int lineitem = q.DeclareBaseTable("lineitem");

  PipelineSpec scan;
  scan.name = "generated aggregates";
  scan.source_table = lineitem;
  const Table* t = catalog.GetTable("lineitem");
  // 0 qty, 1 price, 2 disc, 3 tax
  scan.scan_columns = {
      t->ColumnIndex("l_quantity"), t->ColumnIndex("l_extendedprice"),
      t->ColumnIndex("l_discount"), t->ColumnIndex("l_tax")};

  // Each aggregate k is a distinct expression mixing the four columns with
  // k-dependent constants so nothing folds away:
  //   sum((price + a*qty) * (disc + b) - tax * c)   [checked]
  std::vector<AggItem> items;
  for (int k = 0; k < num_aggregates; ++k) {
    int64_t a = k % 13 + 1;
    int64_t b = k % 7 + 1;
    int64_t c = k % 29 + 1;
    ExprPtr value = CheckedSub(
        CheckedMul(CheckedAdd(Slot(1), Mul(Slot(0), I64(a))),
                   Add(Slot(2), I64(b))),
        Mul(Slot(3), I64(c)));
    items.push_back({AggKind::kSum, std::move(value), true});
  }
  int agg =
      q.DeclareAggSet(static_cast<uint32_t>(num_aggregates),
                      std::vector<int64_t>(
                          static_cast<size_t>(num_aggregates), 0));
  SinkAgg sink;
  sink.agg = agg;
  sink.key = I64(0);
  for (const AggItem& item : items) {
    sink.items.push_back({item.kind, CloneExpr(*item.value), item.checked});
  }
  scan.sink = std::move(sink);
  q.AddPipeline(std::move(scan));

  q.AddStep([agg, n = num_aggregates](QueryContext* ctx) {
    AggHashTable merged(static_cast<uint32_t>(n),
                        std::vector<int64_t>(static_cast<size_t>(n), 0));
    ctx->agg_sets[static_cast<size_t>(agg)]->MergeInto(
        &merged,
        [](uint32_t, int64_t* acc, int64_t v) { *acc += v; });
    merged.ForEach([ctx, n](int64_t, void* payload) {
      const auto* p = static_cast<const int64_t*>(payload);
      ctx->result.emplace_back(p, p + n);
    });
  });
  return q;
}

}  // namespace aqe
