#include "queries/handwritten_q1.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/fixed_point.h"
#include "runtime/sorter.h"
#include "tpch/tpch_schema.h"

namespace aqe {

std::vector<std::vector<int64_t>> HandwrittenQ1(const Catalog& catalog) {
  const Table* li = catalog.GetTable("lineitem");
  const auto* qty = static_cast<const int64_t*>(li->column("l_quantity").data());
  const auto* price =
      static_cast<const int64_t*>(li->column("l_extendedprice").data());
  const auto* disc = static_cast<const int64_t*>(li->column("l_discount").data());
  const auto* tax = static_cast<const int64_t*>(li->column("l_tax").data());
  const auto* rf = static_cast<const int32_t*>(li->column("l_returnflag").data());
  const auto* ls = static_cast<const int32_t*>(li->column("l_linestatus").data());
  const auto* sd = static_cast<const int32_t*>(li->column("l_shipdate").data());
  const uint64_t rows = li->num_rows();
  const int32_t cutoff = tpch::DateToDays(1998, 9, 2);

  struct Group {
    int64_t sum_qty = 0;
    int64_t sum_price = 0;
    int64_t sum_disc_price = 0;
    int64_t sum_charge = 0;
    int64_t sum_disc = 0;
    int64_t count = 0;
  };
  // At most 3*2 groups; a tiny dense map mirrors what a human would write.
  Group groups[3 * 4] = {};
  for (uint64_t i = 0; i < rows; ++i) {
    if (sd[i] > cutoff) continue;
    Group& g = groups[rf[i] * 4 + ls[i]];
    g.sum_qty += qty[i];
    g.sum_price += price[i];
    int64_t disc_price = price[i] * (100 - disc[i]);
    g.sum_disc_price += disc_price;
    g.sum_charge += disc_price * (100 + tax[i]);
    g.sum_disc += disc[i];
    g.count += 1;
  }

  auto bits = [](double d) {
    int64_t b;
    std::memcpy(&b, &d, 8);
    return b;
  };
  std::vector<std::vector<int64_t>> result;
  for (int key = 0; key < 12; ++key) {
    const Group& g = groups[key];
    if (g.count == 0) continue;
    result.push_back(
        {key / 4, key % 4, g.sum_qty, g.sum_price, g.sum_disc_price,
         g.sum_charge,
         bits(static_cast<double>(g.sum_qty) / kDecimalScale / g.count),
         bits(static_cast<double>(g.sum_price) / kDecimalScale / g.count),
         bits(static_cast<double>(g.sum_disc) / kDecimalScale / g.count),
         g.count});
  }
  SortRows(&result, {{0, false, false}, {1, false, false}});
  return result;
}

}  // namespace aqe
