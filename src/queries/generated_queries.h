#ifndef AQE_QUERIES_GENERATED_QUERIES_H_
#define AQE_QUERIES_GENERATED_QUERIES_H_

#include "plan/plan.h"

namespace aqe {

/// The §V-E machine-generated query family: a single lineitem scan with
/// `num_aggregates` distinct overflow-checked aggregate expressions, giving
/// worker functions from ~1,000 to ~160,000 LLVM instructions as
/// num_aggregates scales from 10 to 1900 — the workload on which optimized
/// LLVM compilation explodes while bytecode translation stays linear
/// (Fig 15).
QueryProgram BuildGeneratedAggregateQuery(int num_aggregates,
                                          const Catalog& catalog);

}  // namespace aqe

#endif  // AQE_QUERIES_GENERATED_QUERIES_H_
