#ifndef AQE_QUERIES_HANDWRITTEN_Q1_H_
#define AQE_QUERIES_HANDWRITTEN_Q1_H_

#include <vector>

#include "storage/table.h"

namespace aqe {

/// Hand-written C++ implementation of TPC-H Q1 — the "handwritten" point of
/// Fig 2. Mirrors the compiled plan exactly, except that (like the paper's
/// version, see its footnote 2) it performs no overflow checks, which is why
/// it runs slightly faster than optimized generated code. Single-threaded.
/// Returns rows shaped like BuildTpchQuery(1)'s result.
std::vector<std::vector<int64_t>> HandwrittenQ1(const Catalog& catalog);

}  // namespace aqe

#endif  // AQE_QUERIES_HANDWRITTEN_Q1_H_
