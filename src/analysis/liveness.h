#ifndef AQE_ANALYSIS_LIVENESS_H_
#define AQE_ANALYSIS_LIVENESS_H_

#include <cstdint>
#include <vector>

#include <llvm/ADT/DenseMap.h>
#include <llvm/IR/Value.h>

#include "analysis/cfg_analysis.h"
#include "common/status.h"

namespace aqe {

/// A value's live range as a closed interval of reverse-postorder block
/// labels (§IV-D: "liveness of a value as a live-range with a start block
/// and an end block").
struct LiveRange {
  int32_t start;
  int32_t end;
};

/// Result of the paper's linear-time liveness computation (Fig 11).
class LivenessInfo {
 public:
  /// Range for a tracked value (instructions with results and arguments).
  const LiveRange& range(const llvm::Value* v) const {
    auto it = ranges_.find(v);
    AQE_CHECK_MSG(it != ranges_.end(), "value not tracked by liveness");
    return it->second;
  }

  bool tracked(const llvm::Value* v) const { return ranges_.count(v) != 0; }

  /// Tracked values in deterministic (function textual) order.
  const std::vector<const llvm::Value*>& values() const { return values_; }

 private:
  friend LivenessInfo ComputeLiveness(const llvm::Function& fn,
                                      const CfgAnalysis& cfg);
  llvm::DenseMap<const llvm::Value*, LiveRange> ranges_;
  std::vector<const llvm::Value*> values_;
};

/// Computes live ranges for all arguments and result-producing instructions
/// of `fn` using the loop structure in `cfg`:
///  - B_v = blocks containing the definition and all users of v, where a phi
///    operand counts as used at the end of its incoming block and a phi
///    result counts as defined in each incoming block and in its own block;
///  - C_v = innermost loop containing all of B_v;
///  - the range is extended, per block in B_v, either by the block itself
///    (if its innermost loop is C_v) or by the whole extent of the outermost
///    loop below C_v containing it (Fig 10's [2,6] example).
LivenessInfo ComputeLiveness(const llvm::Function& fn, const CfgAnalysis& cfg);

}  // namespace aqe

#endif  // AQE_ANALYSIS_LIVENESS_H_
