#include <llvm/IR/CFG.h>

#include "analysis/cfg_analysis.h"
#include "common/status.h"

namespace aqe {

CfgAnalysis::CfgAnalysis(const llvm::Function& fn) {
  ComputeOrder(fn);
  ComputeDominators();
  ComputeLoops();
}

int CfgAnalysis::LabelOf(const llvm::BasicBlock* bb) const {
  auto it = label_.find(bb);
  return it == label_.end() ? -1 : it->second;
}

void CfgAnalysis::ComputeOrder(const llvm::Function& fn) {
  AQE_CHECK_MSG(!fn.empty(), "CfgAnalysis on empty function");
  // Iterative post-order DFS from the entry block; reversing the finish
  // order yields a reverse postorder in which every block appears after all
  // of its non-back-edge predecessors ("control flow order", §IV-D).
  //
  // Successors are explored in reverse declaration order: a successor that
  // finishes earlier lands *later* in reverse postorder, and our code
  // generator emits `condbr cond, continue, exit`, so exploring `exit`
  // first keeps loop bodies contiguous with their heads and loop exits
  // after the loop — the layout Fig 10 assumes.
  llvm::DenseMap<const llvm::BasicBlock*, bool> visited;
  std::vector<const llvm::BasicBlock*> postorder;
  struct Frame {
    const llvm::BasicBlock* bb;
    int next;  // index into successors, counting down
  };
  auto num_succs = [](const llvm::BasicBlock* bb) {
    return static_cast<int>(bb->getTerminator()->getNumSuccessors());
  };
  std::vector<Frame> stack;
  const llvm::BasicBlock* entry = &fn.getEntryBlock();
  visited[entry] = true;
  stack.push_back({entry, num_succs(entry) - 1});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next < 0) {
      postorder.push_back(frame.bb);
      stack.pop_back();
      continue;
    }
    const llvm::BasicBlock* succ =
        frame.bb->getTerminator()->getSuccessor(
            static_cast<unsigned>(frame.next--));
    if (!visited[succ]) {
      visited[succ] = true;
      stack.push_back({succ, num_succs(succ) - 1});
    }
  }
  blocks_.assign(postorder.rbegin(), postorder.rend());
  for (int i = 0; i < static_cast<int>(blocks_.size()); ++i) {
    label_[blocks_[static_cast<size_t>(i)]] = i;
  }
}

int CfgAnalysis::CommonLoop(int loop_a, int loop_b) const {
  // Walk the deeper loop up until depths match, then walk both up in
  // lockstep. Loop nesting depth is small in generated query code, so this
  // is effectively constant time.
  while (loops_[static_cast<size_t>(loop_a)].depth >
         loops_[static_cast<size_t>(loop_b)].depth) {
    loop_a = loops_[static_cast<size_t>(loop_a)].parent;
  }
  while (loops_[static_cast<size_t>(loop_b)].depth >
         loops_[static_cast<size_t>(loop_a)].depth) {
    loop_b = loops_[static_cast<size_t>(loop_b)].parent;
  }
  while (loop_a != loop_b) {
    loop_a = loops_[static_cast<size_t>(loop_a)].parent;
    loop_b = loops_[static_cast<size_t>(loop_b)].parent;
  }
  return loop_a;
}

int CfgAnalysis::OutermostLoopBelow(int loop, int ancestor) const {
  AQE_CHECK(loop != ancestor);
  while (loops_[static_cast<size_t>(loop)].parent != ancestor) {
    loop = loops_[static_cast<size_t>(loop)].parent;
    AQE_CHECK_MSG(loop >= 0, "ancestor is not on the loop's parent chain");
  }
  return loop;
}

}  // namespace aqe
