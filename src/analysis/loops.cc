#include <llvm/IR/CFG.h>

#include <algorithm>

#include "analysis/cfg_analysis.h"
#include "common/status.h"

namespace aqe {

// Loop identification per Fig 11: the whole function body is one pseudo
// loop; every jump edge B -> B' where B' dominates B marks B' as a loop
// head. Each loop's extent is the label interval [head, last back-edge
// source]; blocks are associated with their innermost enclosing loop by one
// sweep over the labels with a stack of open loops.
void CfgAnalysis::ComputeLoops() {
  const int n = num_blocks();
  is_loop_head_.assign(static_cast<size_t>(n), false);
  std::vector<int> loop_last(static_cast<size_t>(n), -1);

  // The entry block heads the pseudo loop spanning the whole function.
  is_loop_head_[0] = true;
  loop_last[0] = n - 1;

  for (int label = 0; label < n; ++label) {
    const llvm::BasicBlock* bb = blocks_[static_cast<size_t>(label)];
    for (const llvm::BasicBlock* succ : llvm::successors(bb)) {
      int target = LabelOf(succ);
      if (target < 0) continue;
      if (Dominates(target, label)) {
        // Back edge: `target` is a loop head whose body extends at least to
        // this jump's source.
        is_loop_head_[static_cast<size_t>(target)] = true;
        loop_last[static_cast<size_t>(target)] =
            std::max(loop_last[static_cast<size_t>(target)], label);
      }
    }
  }

  // Build the loop list in ascending head order and associate blocks using a
  // stack of open loops. If a nested loop's `last` exceeds its parent's we
  // extend the parent (a safe over-approximation that keeps the intervals
  // properly nested; the paper accepts exactly this kind of conservative
  // lifetime extension in exchange for linearity).
  loops_.clear();
  block_loop_.assign(static_cast<size_t>(n), 0);
  std::vector<int> open;  // indices into loops_
  for (int label = 0; label < n; ++label) {
    while (!open.empty() &&
           label > loops_[static_cast<size_t>(open.back())].last) {
      open.pop_back();
    }
    if (is_loop_head_[static_cast<size_t>(label)]) {
      Loop loop;
      loop.head = label;
      loop.last = loop_last[static_cast<size_t>(label)];
      loop.parent = open.empty() ? -1 : open.back();
      loop.depth = open.empty() ? 0 : loops_[static_cast<size_t>(open.back())].depth + 1;
      if (loop.parent >= 0) {
        Loop& parent = loops_[static_cast<size_t>(loop.parent)];
        if (loop.last > parent.last) {
          // Extend ancestors so intervals nest.
          for (int anc = loop.parent; anc >= 0;
               anc = loops_[static_cast<size_t>(anc)].parent) {
            loops_[static_cast<size_t>(anc)].last =
                std::max(loops_[static_cast<size_t>(anc)].last, loop.last);
          }
        }
      }
      int index = static_cast<int>(loops_.size());
      loops_.push_back(loop);
      open.push_back(index);
    }
    AQE_CHECK(!open.empty());
    block_loop_[static_cast<size_t>(label)] = open.back();
  }
}

}  // namespace aqe
