#include <llvm/IR/CFG.h>

#include "analysis/cfg_analysis.h"
#include "common/status.h"

namespace aqe {

// Cooper, Harvey, Kennedy: "A Simple, Fast Dominance Algorithm". Operates on
// RPO labels; converges in a couple of passes on reducible CFGs, which is
// what the query compiler emits. (The paper cites Georgiadis/Tarjan-style
// algorithms; CHK has the same practical linearity with far less machinery.)
void CfgAnalysis::ComputeDominators() {
  const int n = num_blocks();
  idom_.assign(static_cast<size_t>(n), -1);
  if (n == 0) return;
  idom_[0] = 0;  // sentinel: entry's idom is itself during iteration

  auto intersect = [this](int a, int b) {
    while (a != b) {
      while (a > b) a = idom_[static_cast<size_t>(a)];
      while (b > a) b = idom_[static_cast<size_t>(b)];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (int label = 1; label < n; ++label) {
      const llvm::BasicBlock* bb = blocks_[static_cast<size_t>(label)];
      int new_idom = -1;
      for (const llvm::BasicBlock* pred : llvm::predecessors(bb)) {
        int p = LabelOf(pred);
        if (p < 0) continue;                          // unreachable pred
        if (idom_[static_cast<size_t>(p)] < 0) continue;  // not processed yet
        new_idom = new_idom < 0 ? p : intersect(new_idom, p);
      }
      AQE_CHECK_MSG(new_idom >= 0, "reachable block with no processed preds");
      if (idom_[static_cast<size_t>(label)] != new_idom) {
        idom_[static_cast<size_t>(label)] = new_idom;
        changed = true;
      }
    }
  }
  idom_[0] = -1;  // entry has no dominator

  // Pre/post-order labels on the dominator tree for O(1) Dominates()
  // (the XPath-style interval containment the paper adopts from Grust).
  std::vector<std::vector<int>> children(static_cast<size_t>(n));
  for (int label = 1; label < n; ++label) {
    children[static_cast<size_t>(idom_[static_cast<size_t>(label)])].push_back(
        label);
  }
  dom_pre_.assign(static_cast<size_t>(n), 0);
  dom_post_.assign(static_cast<size_t>(n), 0);
  int counter = 0;
  struct Frame {
    int label;
    size_t next_child;
  };
  std::vector<Frame> stack{{0, 0}};
  dom_pre_[0] = counter++;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    auto& kids = children[static_cast<size_t>(frame.label)];
    if (frame.next_child == kids.size()) {
      dom_post_[static_cast<size_t>(frame.label)] = counter++;
      stack.pop_back();
      continue;
    }
    int child = kids[frame.next_child++];
    dom_pre_[static_cast<size_t>(child)] = counter++;
    stack.push_back({child, 0});
  }
}

}  // namespace aqe
