#include "analysis/liveness.h"

#include <algorithm>

#include <llvm/IR/Argument.h>
#include <llvm/IR/Instructions.h>

#include "common/status.h"

namespace aqe {

namespace {

// Collects the labels of all blocks in B_v for one value. Labels may repeat;
// that is fine, the consumer only extends intervals.
void CollectBlocks(const llvm::Value* v, const CfgAnalysis& cfg,
                   std::vector<int>* labels) {
  labels->clear();
  // Definition point(s).
  if (const auto* inst = llvm::dyn_cast<llvm::Instruction>(v)) {
    if (const auto* phi = llvm::dyn_cast<llvm::PHINode>(inst)) {
      // The phi result is written at the end of every incoming block and
      // read in its own block.
      for (unsigned i = 0; i < phi->getNumIncomingValues(); ++i) {
        int l = cfg.LabelOf(phi->getIncomingBlock(i));
        if (l >= 0) labels->push_back(l);
      }
      int own = cfg.LabelOf(phi->getParent());
      if (own >= 0) labels->push_back(own);
    } else {
      int l = cfg.LabelOf(inst->getParent());
      if (l >= 0) labels->push_back(l);
    }
  } else {
    AQE_CHECK(llvm::isa<llvm::Argument>(v));
    labels->push_back(0);  // arguments materialize in the entry block
  }
  // Users.
  for (const llvm::User* user : v->users()) {
    const auto* inst = llvm::dyn_cast<llvm::Instruction>(user);
    if (inst == nullptr) continue;
    if (const auto* phi = llvm::dyn_cast<llvm::PHINode>(inst)) {
      // A phi operand is read at the end of its incoming block.
      for (unsigned i = 0; i < phi->getNumIncomingValues(); ++i) {
        if (phi->getIncomingValue(i) == v) {
          int l = cfg.LabelOf(phi->getIncomingBlock(i));
          if (l >= 0) labels->push_back(l);
        }
      }
    } else {
      int l = cfg.LabelOf(inst->getParent());
      if (l >= 0) labels->push_back(l);
    }
  }
}

LiveRange RangeForBlocks(const std::vector<int>& labels,
                         const CfgAnalysis& cfg) {
  AQE_CHECK(!labels.empty());
  // C_v: innermost loop containing all blocks.
  int cv = cfg.InnermostLoopOf(labels[0]);
  for (size_t i = 1; i < labels.size(); ++i) {
    cv = cfg.CommonLoop(cv, cfg.InnermostLoopOf(labels[i]));
  }
  // Extend the interval per Fig 11.
  LiveRange range{INT32_MAX, INT32_MIN};
  auto extend = [&range](int lo, int hi) {
    range.start = std::min(range.start, lo);
    range.end = std::max(range.end, hi);
  };
  for (int label : labels) {
    int innermost = cfg.InnermostLoopOf(label);
    if (innermost == cv) {
      extend(label, label);
    } else {
      int outer = cfg.OutermostLoopBelow(innermost, cv);
      const CfgAnalysis::Loop& loop = cfg.loops()[static_cast<size_t>(outer)];
      extend(loop.head, loop.last);
    }
  }
  return range;
}

}  // namespace

LivenessInfo ComputeLiveness(const llvm::Function& fn,
                             const CfgAnalysis& cfg) {
  LivenessInfo info;
  std::vector<int> labels;
  auto track = [&](const llvm::Value* v) {
    CollectBlocks(v, cfg, &labels);
    info.ranges_[v] = RangeForBlocks(labels, cfg);
    info.values_.push_back(v);
  };
  for (const llvm::Argument& arg : fn.args()) track(&arg);
  for (const llvm::BasicBlock& bb : fn) {
    if (cfg.LabelOf(&bb) < 0) continue;  // unreachable
    for (const llvm::Instruction& inst : bb) {
      if (inst.getType()->isVoidTy()) continue;
      track(&inst);
    }
  }
  return info;
}

}  // namespace aqe
