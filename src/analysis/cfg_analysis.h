#ifndef AQE_ANALYSIS_CFG_ANALYSIS_H_
#define AQE_ANALYSIS_CFG_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include <llvm/ADT/DenseMap.h>
#include <llvm/IR/BasicBlock.h>
#include <llvm/IR/Function.h>

namespace aqe {

/// CFG analyses required by the paper's linear-time liveness computation
/// (§IV-D, Fig 11): reverse-postorder block labels, dominator tree with
/// pre/post-order interval labels for O(1) ancestor tests, loop heads found
/// via dominator back edges, and the loop nesting forest.
///
/// Every step is (near-)linear in blocks+edges: RPO is one DFS, dominators
/// use the Cooper-Harvey-Kennedy iterative algorithm on RPO numbers (linear
/// in practice on reducible query CFGs), the dominator-tree labeling is one
/// DFS, and loop association is one sweep over block labels with a stack.
class CfgAnalysis {
 public:
  /// A (possibly pseudo) loop. loops()[0] is the whole-function pseudo loop
  /// the paper introduces to avoid edge cases for blocks outside any loop.
  struct Loop {
    int head;    ///< label of the loop-head block
    int last;    ///< label of the last block in the loop (inclusive)
    int parent;  ///< index of the enclosing loop; -1 for the pseudo root
    int depth;   ///< nesting depth; 0 for the pseudo root
  };

  explicit CfgAnalysis(const llvm::Function& fn);

  int num_blocks() const { return static_cast<int>(blocks_.size()); }

  /// Reverse-postorder label of a block. Unreachable blocks get label -1.
  int LabelOf(const llvm::BasicBlock* bb) const;

  /// Block with the given label (0 = entry).
  const llvm::BasicBlock* BlockAt(int label) const {
    return blocks_[static_cast<size_t>(label)];
  }

  /// Label of the immediate dominator; -1 for the entry block.
  int ImmediateDominator(int label) const {
    return idom_[static_cast<size_t>(label)];
  }

  /// True iff block `a` dominates block `b` (reflexive). O(1) via the
  /// pre/post-order interval labels on the dominator tree.
  bool Dominates(int a, int b) const {
    return dom_pre_[static_cast<size_t>(a)] <=
               dom_pre_[static_cast<size_t>(b)] &&
           dom_post_[static_cast<size_t>(b)] <=
               dom_post_[static_cast<size_t>(a)];
  }

  const std::vector<Loop>& loops() const { return loops_; }

  /// Index (into loops()) of the innermost loop containing the block.
  int InnermostLoopOf(int label) const {
    return block_loop_[static_cast<size_t>(label)];
  }

  /// True iff the block with this label is a loop head.
  bool IsLoopHead(int label) const {
    return is_loop_head_[static_cast<size_t>(label)];
  }

  /// Innermost loop (index) that contains both labels `a` and `b`, walking
  /// up the loop forest. Used to find the paper's C_v.
  int CommonLoop(int loop_a, int loop_b) const;

  /// Walks up from `loop` to the child of `ancestor` on that path, i.e. the
  /// "outermost loop below C_v containing b" of Fig 11. Requires `ancestor`
  /// to be a proper ancestor of `loop`.
  int OutermostLoopBelow(int loop, int ancestor) const;

 private:
  void ComputeOrder(const llvm::Function& fn);  // cfg_order.cc
  void ComputeDominators();                     // dominators.cc
  void ComputeLoops();                          // loops.cc

  std::vector<const llvm::BasicBlock*> blocks_;  // index = RPO label
  llvm::DenseMap<const llvm::BasicBlock*, int> label_;
  std::vector<int> idom_;      // per label
  std::vector<int> dom_pre_;   // dominator-tree preorder number
  std::vector<int> dom_post_;  // dominator-tree postorder number
  std::vector<bool> is_loop_head_;
  std::vector<Loop> loops_;
  std::vector<int> block_loop_;  // per label: innermost loop index
};

}  // namespace aqe

#endif  // AQE_ANALYSIS_CFG_ANALYSIS_H_
