#include "adaptive/cost_model.h"

#include <algorithm>

#include "common/status.h"

namespace aqe {

const char* DecisionName(Decision decision) {
  switch (decision) {
    case Decision::kDoNothing: return "do-nothing";
    case Decision::kCompileUnoptimized: return "compile-unoptimized";
    case Decision::kCompileOptimized: return "compile-optimized";
  }
  AQE_UNREACHABLE("bad Decision");
}

double RuntimeCallFraction(uint64_t loop_instructions, uint64_t loop_calls,
                           const CostModelParams& params) {
  if (loop_calls == 0 || loop_instructions == 0) return 0;
  const double calls = static_cast<double>(loop_calls);
  const double plain = static_cast<double>(
      loop_instructions > loop_calls ? loop_instructions - loop_calls : 0);
  const double weighted = calls * params.runtime_call_weight;
  return weighted / (plain + weighted);
}

Decision ExtrapolatePipelineDurations(double tuples_per_second_per_thread,
                                      uint64_t remaining_tuples,
                                      int active_workers,
                                      uint64_t function_instructions,
                                      ExecMode current_mode,
                                      const CostModelParams& params,
                                      double runtime_call_fraction,
                                      ExtrapolationBreakdown* breakdown) {
  if (breakdown != nullptr) *breakdown = {};
  if (current_mode == ExecMode::kOptimized) return Decision::kDoNothing;
  if (remaining_tuples == 0 || tuples_per_second_per_thread <= 0) {
    return Decision::kDoNothing;
  }
  const double r0 = tuples_per_second_per_thread;
  const double n = static_cast<double>(remaining_tuples);
  const double w = static_cast<double>(std::max(1, active_workers));

  // Call-heavy pipelines spend a fixed fraction of per-tuple time inside
  // runtime functions; compilation only accelerates the rest.
  const double s1 = CostModelParams::EffectiveSpeedup(params.unopt_speedup,
                                                      runtime_call_fraction);
  const double s2 = CostModelParams::EffectiveSpeedup(params.opt_speedup,
                                                      runtime_call_fraction);

  // Speedups are defined relative to bytecode; rescale to the current mode.
  const double current_factor =
      current_mode == ExecMode::kBytecode ? 1.0 : s1;

  const double t0 = n / r0 / w;

  double t1 = t0;
  if (current_mode == ExecMode::kBytecode) {
    const double c1 = params.UnoptCompileSeconds(function_instructions);
    const double r1 = r0 * (s1 / current_factor);
    t1 = c1 + std::max(n - (w - 1) * r0 * c1, 0.0) / r1 / w;
  }

  const double c2 = params.OptCompileSeconds(function_instructions);
  const double r2 = r0 * (s2 / current_factor);
  const double t2 = c2 + std::max(n - (w - 1) * r0 * c2, 0.0) / r2 / w;

  if (breakdown != nullptr) *breakdown = {t0, t1, t2};

  if (t0 <= t1 && t0 <= t2) return Decision::kDoNothing;
  if (t1 <= t2) {
    return current_mode == ExecMode::kBytecode ? Decision::kCompileUnoptimized
                                               : Decision::kDoNothing;
  }
  return Decision::kCompileOptimized;
}

}  // namespace aqe
