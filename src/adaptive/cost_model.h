#ifndef AQE_ADAPTIVE_COST_MODEL_H_
#define AQE_ADAPTIVE_COST_MODEL_H_

#include <cstdint>

#include "exec/function_handle.h"

namespace aqe {

/// Empirical parameters of the Fig 7 extrapolation. Compilation time is
/// modeled as linear in the worker function's LLVM instruction count (the
/// near-linear correlation of Fig 6); speedups are the Table II empirical
/// ratios. Defaults are calibrated for this repository's substrate (see
/// bench/fig06_compile_scaling, which re-derives them) and can be
/// overridden.
struct CostModelParams {
  // compile_seconds(n) = base + per_instruction * n
  double unopt_base_seconds = 2e-3;
  double unopt_per_instruction_seconds = 9e-6;
  double opt_base_seconds = 5e-3;
  double opt_per_instruction_seconds = 45e-6;

  /// Throughput ratios over the bytecode interpreter. The paper's Table II
  /// reports 3.6 / 5.0 against its switch-dispatch interpreter; the
  /// direct-threaded engine with compare-and-branch superinstructions
  /// narrowed this repository's measured geomean gap to ~2.9 / ~3.5
  /// (bench/table2_execution, SF 0.05), which shifts the adaptive
  /// controller's break-even points toward staying interpreted longer.
  double unopt_speedup = 2.9;
  double opt_speedup = 3.5;

  double UnoptCompileSeconds(uint64_t instructions) const {
    return unopt_base_seconds +
           unopt_per_instruction_seconds * static_cast<double>(instructions);
  }
  double OptCompileSeconds(uint64_t instructions) const {
    return opt_base_seconds +
           opt_per_instruction_seconds * static_cast<double>(instructions);
  }
};

/// Field-wise equality; the engine uses it to detect "caller left the cost
/// model at its defaults" and substitute micro-calibrated speedups
/// (AQE_CALIBRATE, src/adaptive/calibrate.h).
inline bool operator==(const CostModelParams& a, const CostModelParams& b) {
  return a.unopt_base_seconds == b.unopt_base_seconds &&
         a.unopt_per_instruction_seconds == b.unopt_per_instruction_seconds &&
         a.opt_base_seconds == b.opt_base_seconds &&
         a.opt_per_instruction_seconds == b.opt_per_instruction_seconds &&
         a.unopt_speedup == b.unopt_speedup && a.opt_speedup == b.opt_speedup;
}
inline bool operator!=(const CostModelParams& a, const CostModelParams& b) {
  return !(a == b);
}

/// The three options continuously evaluated per pipeline (§III-C).
enum class Decision { kDoNothing, kCompileUnoptimized, kCompileOptimized };

const char* DecisionName(Decision decision);

/// Fig 7, verbatim: extrapolates the remaining pipeline duration under
/// (1) the current mode, (2) unoptimized and (3) optimized compilation, and
/// returns the winner.
///
///   r0 = average tuple rate per thread in the current mode
///   n  = remaining tuples, w = active worker threads
///   t0 = n / r0 / w
///   ti = ci + max(n - (w-1)*r0*ci, 0) / ri / w
///
/// (while one thread compiles for ci seconds, the other w-1 threads keep
/// processing at r0). `current_mode` generalizes the paper's bytecode-only
/// starting point: from kUnoptimized only the optimized upgrade is
/// considered, from kOptimized the answer is always kDoNothing.
Decision ExtrapolatePipelineDurations(double tuples_per_second_per_thread,
                                      uint64_t remaining_tuples,
                                      int active_workers,
                                      uint64_t function_instructions,
                                      ExecMode current_mode,
                                      const CostModelParams& params);

}  // namespace aqe

#endif  // AQE_ADAPTIVE_COST_MODEL_H_
