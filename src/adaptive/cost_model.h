#ifndef AQE_ADAPTIVE_COST_MODEL_H_
#define AQE_ADAPTIVE_COST_MODEL_H_

#include <cstdint>

#include "exec/function_handle.h"

namespace aqe {

/// Empirical parameters of the Fig 7 extrapolation. Compilation time is
/// modeled as linear in the worker function's LLVM instruction count (the
/// near-linear correlation of Fig 6); speedups are the Table II empirical
/// ratios. Defaults are calibrated for this repository's substrate (see
/// bench/fig06_compile_scaling, which re-derives them) and can be
/// overridden.
struct CostModelParams {
  // compile_seconds(n) = base + per_instruction * n
  double unopt_base_seconds = 2e-3;
  double unopt_per_instruction_seconds = 9e-6;
  double opt_base_seconds = 5e-3;
  double opt_per_instruction_seconds = 45e-6;

  /// Throughput ratios over the bytecode interpreter. The paper's Table II
  /// reports 3.6 / 5.0 against its switch-dispatch interpreter; this
  /// repository's measured geomean gap (bench/table2_execution, SF 0.05)
  /// is ~3.2 / ~3.8. The superinstruction tiers spread the per-query gap
  /// wide apart — load-compare-branch fusion and branch-chain splitting
  /// pull scan-filter shapes (Q6) to near-compiled speed, while join- and
  /// call-heavy plans keep the full compiled advantage — so the flat
  /// geomean default matters mostly as a prior; the runtime-call-density
  /// discount below and per-plan EWMA feedback do the per-shape work.
  double unopt_speedup = 3.2;
  double opt_speedup = 3.8;

  /// Cost of one opaque runtime call relative to one straight-line LLVM
  /// instruction, for the runtime-call-density signal: a call's
  /// save/call/ret plus the C++ work behind it (hash-table probes, string
  /// matchers) dwarfs an interpreted add, and compilation cannot shrink
  /// it. Feeds RuntimeCallFraction below.
  double runtime_call_weight = 12.0;

  /// Amdahl-style discount: the fraction `call_fraction` of per-tuple time
  /// spent inside runtime calls runs at the same speed in every mode, so
  /// the effective speedup of a compiled mode over bytecode is
  ///   1 / (f + (1 - f) / s).
  /// Call-heavy pipelines (string predicates through aqe_like_match) see
  /// their compiled advantage shrink toward 1, which keeps the §III-C
  /// mode-switch decisions calibrated on workloads fusion cannot help.
  static double EffectiveSpeedup(double speedup, double call_fraction) {
    if (call_fraction <= 0) return speedup;
    if (call_fraction >= 1) return 1.0;
    return 1.0 / (call_fraction + (1.0 - call_fraction) / speedup);
  }

  double UnoptCompileSeconds(uint64_t instructions) const {
    return unopt_base_seconds +
           unopt_per_instruction_seconds * static_cast<double>(instructions);
  }
  double OptCompileSeconds(uint64_t instructions) const {
    return opt_base_seconds +
           opt_per_instruction_seconds * static_cast<double>(instructions);
  }
};

/// Field-wise equality; the engine uses it to detect "caller left the cost
/// model at its defaults" and substitute micro-calibrated speedups
/// (AQE_CALIBRATE, src/adaptive/calibrate.h).
inline bool operator==(const CostModelParams& a, const CostModelParams& b) {
  return a.unopt_base_seconds == b.unopt_base_seconds &&
         a.unopt_per_instruction_seconds == b.unopt_per_instruction_seconds &&
         a.opt_base_seconds == b.opt_base_seconds &&
         a.opt_per_instruction_seconds == b.opt_per_instruction_seconds &&
         a.unopt_speedup == b.unopt_speedup && a.opt_speedup == b.opt_speedup &&
         a.runtime_call_weight == b.runtime_call_weight;
}
inline bool operator!=(const CostModelParams& a, const CostModelParams& b) {
  return !(a == b);
}

/// The three options continuously evaluated per pipeline (§III-C).
enum class Decision { kDoNothing, kCompileUnoptimized, kCompileOptimized };

const char* DecisionName(Decision decision);

/// Fig 7, verbatim: extrapolates the remaining pipeline duration under
/// (1) the current mode, (2) unoptimized and (3) optimized compilation, and
/// returns the winner.
///
///   r0 = average tuple rate per thread in the current mode
///   n  = remaining tuples, w = active worker threads
///   t0 = n / r0 / w
///   ti = ci + max(n - (w-1)*r0*ci, 0) / ri / w
///
/// (while one thread compiles for ci seconds, the other w-1 threads keep
/// processing at r0). `current_mode` generalizes the paper's bytecode-only
/// starting point: from kUnoptimized only the optimized upgrade is
/// considered, from kOptimized the answer is always kDoNothing.
/// Estimated fraction of a pipeline's per-tuple time spent inside opaque
/// runtime calls, from the worker function's loop-body IR counts
/// (IrFunctionStats.loop_instructions / loop_calls) weighted by
/// `params.runtime_call_weight`. 0 for call-free scan filters; approaches
/// 1 for call-per-row predicates like the LIKE runtime path.
double RuntimeCallFraction(uint64_t loop_instructions, uint64_t loop_calls,
                           const CostModelParams& params);

/// The extrapolated durations behind a Decision, for tracing: what the
/// model predicted for staying put and for each compile option (seconds;
/// an option that was not evaluated repeats t_current).
struct ExtrapolationBreakdown {
  double t_current = 0;
  double t_unopt = 0;
  double t_opt = 0;

  double chosen_seconds(Decision decision) const {
    switch (decision) {
      case Decision::kCompileUnoptimized: return t_unopt;
      case Decision::kCompileOptimized: return t_opt;
      default: return t_current;
    }
  }
};

/// `runtime_call_fraction` discounts both compiled speedups via
/// CostModelParams::EffectiveSpeedup before the extrapolation.
/// `breakdown`, when non-null, receives the three candidate durations.
Decision ExtrapolatePipelineDurations(double tuples_per_second_per_thread,
                                      uint64_t remaining_tuples,
                                      int active_workers,
                                      uint64_t function_instructions,
                                      ExecMode current_mode,
                                      const CostModelParams& params,
                                      double runtime_call_fraction = 0.0,
                                      ExtrapolationBreakdown* breakdown = nullptr);

}  // namespace aqe

#endif  // AQE_ADAPTIVE_COST_MODEL_H_
