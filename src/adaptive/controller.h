#ifndef AQE_ADAPTIVE_CONTROLLER_H_
#define AQE_ADAPTIVE_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "adaptive/cost_model.h"
#include "exec/function_handle.h"
#include "exec/scheduler.h"
#include "exec/trace.h"

namespace aqe {

/// How a query/pipeline is executed (§V's four contenders).
enum class ExecutionStrategy {
  kBytecode,     ///< pure interpretation
  kUnoptimized,  ///< compile unoptimized up front, then run
  kOptimized,    ///< compile optimized up front, then run
  kAdaptive,     ///< start interpreting, switch on runtime feedback (§III)
};

const char* ExecutionStrategyName(ExecutionStrategy strategy);

/// One pipeline's execution request.
struct PipelineTask {
  FunctionHandle* handle = nullptr;  ///< starts in bytecode mode
  void* state = nullptr;
  uint64_t total_tuples = 0;          ///< known at pipeline start (§III-A)
  uint64_t function_instructions = 0; ///< LLVM instruction count (cost model)
  /// Compiles the pipeline's worker function in the given mode and returns
  /// the machine code (the callee keeps the compiled module alive). Invoked
  /// from a worker thread, at most once per mode.
  std::function<WorkerFn(ExecMode)> compile;
  int pipeline_id = 0;
};

struct PipelineRunStats {
  double total_seconds = 0;
  ExecMode final_mode = ExecMode::kBytecode;
  /// Mode switches performed, with the compile time spent on each.
  std::vector<std::pair<ExecMode, double>> compiles;
};

/// Executes pipelines under a strategy on a shared worker pool, applying the
/// §III-C policy for kAdaptive: every worker tracks its local tuple rate per
/// morsel; a single evaluator thread (worker 0), starting 1 ms into the
/// pipeline and re-checking after every one of its morsels, runs the Fig 7
/// extrapolation; when compilation wins, the evaluator itself compiles
/// (occupying one worker, like the paper's trace in Fig 14) and flips the
/// FunctionHandle, after which all threads pick up the new variant and the
/// rates are reset.
class PipelineRunner {
 public:
  PipelineRunner(WorkerPool* pool, ExecutionStrategy strategy,
                 CostModelParams params = {}, TraceRecorder* trace = nullptr);

  PipelineRunStats Run(const PipelineTask& task);

  /// First adaptive evaluation happens this long after pipeline start
  /// (paper: 1 ms, "to increase the accuracy of the estimates").
  void set_first_evaluation_delay_seconds(double seconds) {
    first_eval_delay_seconds_ = seconds;
  }

 private:
  struct alignas(64) ThreadRate {
    std::atomic<uint64_t> tuples{0};
    std::atomic<uint64_t> nanos{0};
    std::atomic<uint64_t> epoch{0};
  };

  WorkerPool* pool_;
  ExecutionStrategy strategy_;
  CostModelParams params_;
  TraceRecorder* trace_;
  double first_eval_delay_seconds_ = 1e-3;
};

}  // namespace aqe

#endif  // AQE_ADAPTIVE_CONTROLLER_H_
