#ifndef AQE_ADAPTIVE_CONTROLLER_H_
#define AQE_ADAPTIVE_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "adaptive/cost_model.h"
#include "exec/function_handle.h"
#include "exec/scheduler.h"
#include "exec/trace.h"
#include "sched/scheduler.h"

namespace aqe {

/// How a query/pipeline is executed (§V's four contenders).
enum class ExecutionStrategy {
  kBytecode,     ///< pure interpretation
  kUnoptimized,  ///< compile unoptimized up front, then run
  kOptimized,    ///< compile optimized up front, then run
  kAdaptive,     ///< start interpreting, switch on runtime feedback (§III)
};

const char* ExecutionStrategyName(ExecutionStrategy strategy);

/// One pipeline's execution request.
struct PipelineTask {
  FunctionHandle* handle = nullptr;  ///< starts in bytecode mode
  void* state = nullptr;
  uint64_t total_tuples = 0;          ///< known at pipeline start (§III-A)
  uint64_t function_instructions = 0; ///< LLVM instruction count (cost model)
  /// Compiles the pipeline's worker function in the given mode and returns
  /// the machine code (the callee keeps the compiled module alive). Invoked
  /// from a worker thread, at most once per mode.
  std::function<WorkerFn(ExecMode)> compile;
  int pipeline_id = 0;
};

struct PipelineRunStats {
  double total_seconds = 0;
  ExecMode final_mode = ExecMode::kBytecode;
  /// Mode switches performed, with the compile time spent on each.
  std::vector<std::pair<ExecMode, double>> compiles;
  /// Compile time that occupied the controller thread (the up-front static
  /// compiles and adaptive compiles claimed inline). total_seconds minus
  /// this is pure execution: what the engine reports as exec time so cache
  /// hits (which compile nothing) are visible next to cold runs. Compiles
  /// picked up by other workers overlap execution and are not counted.
  double blocking_compile_seconds = 0;
};

/// Executes pipelines under a strategy, applying the §III-C policy for
/// kAdaptive: every participating thread tracks its local tuple rate per
/// morsel; a single evaluator thread (the pipeline's controller), starting
/// 1 ms into the pipeline and re-checking after every one of its morsels,
/// runs the Fig 7 extrapolation; when compilation wins, the worker function
/// is compiled and the FunctionHandle flipped, after which all threads pick
/// up the new variant and the rates are reset.
///
/// Two substrates:
///  - TaskScheduler (the engine's path): the calling thread is the
///    controller. It shards the morsel domain across the scheduler's
///    workers, submits one morsel helper task per other worker (each
///    yields after every morsel, so concurrent queries interleave), and
///    drains morsels itself. Adaptive compilations are submitted as
///    low-priority tasks that any worker may pick up; if none has within a
///    few controller morsels, the controller compiles inline — occupying
///    one thread, exactly the paper's dedicated-path behavior — so the
///    mode-switch handshake (decide → compile → install → reset rates) is
///    preserved under both substrates.
///  - WorkerPool (legacy shim): the original gang-scheduled path, kept as
///    the differential-testing baseline; worker 0 is the evaluator and
///    compiles inline.
class PipelineRunner {
 public:
  /// Legacy gang-scheduled substrate.
  PipelineRunner(WorkerPool* pool, ExecutionStrategy strategy,
                 CostModelParams params = {}, TraceRecorder* trace = nullptr);

  /// Task-scheduler substrate; the calling thread becomes the pipeline's
  /// controller (it may itself be a scheduler worker running a query task,
  /// or an external thread).
  PipelineRunner(TaskScheduler* scheduler, ExecutionStrategy strategy,
                 CostModelParams params = {}, TraceRecorder* trace = nullptr);

  PipelineRunStats Run(const PipelineTask& task);

  /// First adaptive evaluation happens this long after pipeline start
  /// (paper: 1 ms, "to increase the accuracy of the estimates").
  void set_first_evaluation_delay_seconds(double seconds) {
    first_eval_delay_seconds_ = seconds;
  }

  /// Task-scheduler substrate only: run every morsel on the controller and
  /// compile inline — strictly one thread touches the pipeline (baselines
  /// and the paper's latency figures need this).
  void set_single_threaded(bool single_threaded) {
    single_threaded_ = single_threaded;
  }

 private:
  PipelineRunStats RunGang(const PipelineTask& task);
  PipelineRunStats RunTasks(const PipelineTask& task);

  WorkerPool* pool_ = nullptr;
  TaskScheduler* sched_ = nullptr;
  ExecutionStrategy strategy_;
  CostModelParams params_;
  TraceRecorder* trace_;
  double first_eval_delay_seconds_ = 1e-3;
  bool single_threaded_ = false;
};

}  // namespace aqe

#endif  // AQE_ADAPTIVE_CONTROLLER_H_
