#ifndef AQE_ADAPTIVE_CONTROLLER_H_
#define AQE_ADAPTIVE_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "adaptive/cost_model.h"
#include "exec/function_handle.h"
#include "exec/morsel.h"
#include "exec/scheduler.h"
#include "exec/trace.h"
#include "obs/observability.h"
#include "sched/scheduler.h"
#include "sched/task.h"

namespace aqe {

/// How a query/pipeline is executed (§V's four contenders).
enum class ExecutionStrategy {
  kBytecode,     ///< pure interpretation
  kUnoptimized,  ///< compile unoptimized up front, then run
  kOptimized,    ///< compile optimized up front, then run
  kAdaptive,     ///< start interpreting, switch on runtime feedback (§III)
};

const char* ExecutionStrategyName(ExecutionStrategy strategy);

/// One pipeline's execution request.
struct PipelineTask {
  FunctionHandle* handle = nullptr;  ///< starts in bytecode mode
  void* state = nullptr;
  uint64_t total_tuples = 0;          ///< known at pipeline start (§III-A)
  /// Index/zone-map pruned scan domain (src/index/): when set, only the
  /// domain's ranges are ever scheduled and `total_tuples` must equal
  /// domain->selected(), so the §III-C extrapolation reasons over the rows
  /// that will actually run. Null = dense scan over [0, total_tuples).
  std::shared_ptr<const ScanDomain> domain;
  uint64_t function_instructions = 0; ///< LLVM instruction count (cost model)
  /// Fraction of per-tuple time spent in opaque runtime calls
  /// (RuntimeCallFraction over the worker's loop-body IR): discounts the
  /// compiled speedups in every §III-C evaluation, so call-heavy pipelines
  /// (LIKE via aqe_like_match) stay interpreted longer.
  double runtime_call_fraction = 0;
  /// Compiles the pipeline's worker function in the given mode and returns
  /// the machine code (the callee keeps the compiled module alive). Invoked
  /// from a worker thread, at most once per mode.
  std::function<WorkerFn(ExecMode)> compile;
  int pipeline_id = 0;
  /// Weighted-fair scheduling class the pipeline's helper and compile tasks
  /// inherit (the submitting query's class; see sched/task.h).
  int scheduling_class = 0;
  /// Engine observability: ring-buffer trace events (morsels, mode-switch
  /// decisions with their cost-model inputs, compiles) and metric updates
  /// flow through these handles; default-empty pipelines record nothing.
  PipelineObs obs;
};

/// One §III-C decision that chose a compile, with the extrapolation's
/// inputs and — filled in when the pipeline drains — the realized time from
/// the decision to pipeline completion. The prediction-vs-realized audit
/// trail EXPLAIN ANALYZE renders; unlike the kModeSwitch ring event this is
/// carried on the run itself, so it survives ring overwrites.
struct ModeSwitchRecord {
  ExecMode target = ExecMode::kUnoptimized;
  int64_t decision_nanos = 0;    ///< MonotonicNanos at the decision
  double r0 = 0;                 ///< observed rate [tuples/s/thread]
  uint64_t remaining_tuples = 0;
  double t_current_seconds = 0;  ///< extrapolated: stay in current mode
  double t_chosen_seconds = 0;   ///< extrapolated: switch (T(chosen))
  double realized_seconds = 0;   ///< decision -> pipeline end (actual)
};

struct PipelineRunStats {
  double total_seconds = 0;
  ExecMode final_mode = ExecMode::kBytecode;
  /// Mode switches performed, with the compile time spent on each.
  std::vector<std::pair<ExecMode, double>> compiles;
  /// Compile time that occupied the controller thread (the up-front static
  /// compiles and adaptive compiles claimed inline). total_seconds minus
  /// this is pure execution: what the engine reports as exec time so cache
  /// hits (which compile nothing) are visible next to cold runs. Compiles
  /// picked up by other workers overlap execution and are not counted.
  double blocking_compile_seconds = 0;
  /// Every adaptive compile decision with its predicted durations and the
  /// realized remainder (TaskScheduler substrate; the legacy gang path
  /// leaves it empty).
  std::vector<ModeSwitchRecord> mode_switches;
};

/// Shared state of one pipeline execution on the task scheduler (defined in
/// controller.cc; held via shared_ptr by the controller and every helper /
/// compile task).
struct PipelineExecState;

/// One pipeline execution as a *resumable state machine*: the adaptive
/// controller's run loop, checkpointed at morsel boundaries. Each Step()
/// call runs one bounded slice — one controller morsel (plus the §III-C
/// cost-model evaluation), one up-front compile, or one drain check — and
/// returns Task::Status::kYield until the pipeline completes, exactly like
/// the morsel helper tasks it spawns. A query task embedding a PipelineRun
/// therefore never blocks its worker for a whole pipeline: the scheduler
/// interleaves other queries' slices between the controller's morsels, and
/// the run may resume on a *different* worker after a steal.
///
/// ===================== Suspension invariants =====================
///
/// 1. All mode-switch state survives suspension. The tuple-rate samples,
///    the compile handshake word (kIdle/kQueued/kRunning + target mode),
///    the rate-reset epoch, the recorded compiles and the calibrated
///    cost-model parameters live in PipelineExecState / PipelineRun
///    members, never on a worker's stack — a resumed controller continues
///    the §III-C evaluation exactly where it left off, and the mode-switch
///    trace is identical to the blocking controller's (differential-tested
///    in tests/sched_test.cc and tests/fairness_test.cc).
///
/// 2. The controller's identity is fixed at the *first* Step. Its rate
///    slot, preferred shard and participant count are chosen once (the
///    first-step worker's index, or the extra slot for an external thread)
///    and stored; migration to another worker after a yield changes only
///    which thread executes — the migrated controller keeps draining its
///    own shard and rate slot, which no helper task ever uses, so slots
///    never collide. Per-thread runtime partitions (aggregation tables,
///    output buffers) are always indexed by the *executing* thread, which
///    is correct under migration because every merge step covers all
///    partitions.
///
/// 3. Raw pipeline pointers outlive the run. `task.handle`, `task.state`
///    and the compile hook are dereferenced by helper/compile tasks only
///    after a successful morsel or compile-job claim. The drain phase
///    (and the destructor, for a run abandoned at scheduler shutdown)
///    closes the morsel domain and waits until no claim is in flight
///    (`active_helpers == 0 && compile_state == kIdle`), so the owner may
///    free the handle, binding array and captured state the moment the run
///    is done or destroyed. Straggler tasks scheduled after that touch
///    only the shared_ptr-owned PipelineExecState, fail their claim, and
///    die.
///
/// 4. `single_threaded` pins the pledge, not the wall clock: the whole
///    pipeline (morsels and compiles) executes inside one Step on the
///    calling thread, so baselines and the paper's latency figures see the
///    exact pre-refactor behavior.
class PipelineRun {
 public:
  /// `task`'s raw pointers (handle, state, compile captures) must stay
  /// valid until done() or destruction (invariant 3).
  PipelineRun(TaskScheduler* scheduler, ExecutionStrategy strategy,
              CostModelParams params, TraceRecorder* trace,
              const PipelineTask& task, bool single_threaded,
              double first_eval_delay_seconds);
  ~PipelineRun();

  PipelineRun(const PipelineRun&) = delete;
  PipelineRun& operator=(const PipelineRun&) = delete;

  /// Runs one bounded slice on the calling thread. kYield: call again (on
  /// any thread); kDone: the pipeline finished and stats() is valid.
  Task::Status Step();

  bool done() const { return phase_ == Phase::kDone; }
  /// True when all morsels are claimed and the run is only waiting out
  /// in-flight helper/compile slices.
  bool draining() const { return phase_ == Phase::kDrain; }

  /// Blocking callers (PipelineRunner::Run) park here between drain-phase
  /// steps instead of spinning; bounded by a 1 ms re-check.
  void WaitDrainBriefly();

  /// The run's statistics; valid once done().
  const PipelineRunStats& stats() const { return stats_; }
  PipelineRunStats TakeStats() { return std::move(stats_); }

 private:
  enum class Phase { kStart, kMorsels, kDrain, kDone };

  void Start();
  Task::Status StepMorsel();
  Task::Status StepDrain();
  Task::Status RunSingleThreaded();  // whole pipeline, one slice (inv. 4)
  void Evaluate();
  /// Runtime thread index of the calling thread (worker index, or a leased
  /// external-controller index).
  int CurrentRuntimeThread() const;

  TaskScheduler* sched_;
  ExecutionStrategy strategy_;
  CostModelParams params_;
  TraceRecorder* trace_;
  PipelineTask task_;
  bool single_threaded_;
  double first_eval_delay_seconds_;

  Phase phase_ = Phase::kStart;
  std::shared_ptr<PipelineExecState> st_;
  PipelineRunStats stats_;
  int participants_ = 1;
  int controller_slot_ = 0;
  int morsels_since_queued_ = 0;
  int64_t start_nanos_ = 0;
  bool adaptive_ = false;
};

/// Executes pipelines under a strategy, applying the §III-C policy for
/// kAdaptive: every participating thread tracks its local tuple rate per
/// morsel; a single evaluator thread (the pipeline's controller), starting
/// 1 ms into the pipeline and re-checking after every one of its morsels,
/// runs the Fig 7 extrapolation; when compilation wins, the worker function
/// is compiled and the FunctionHandle flipped, after which all threads pick
/// up the new variant and the rates are reset.
///
/// Two substrates:
///  - TaskScheduler (the engine's path): a PipelineRun stepped to
///    completion on the calling thread, which is the controller (the
///    engine embeds PipelineRun in its query tasks directly and yields
///    between steps; this blocking wrapper serves benches/tests and
///    external threads). It shards the morsel domain across the
///    scheduler's workers, submits one morsel helper task per other worker
///    (each yields after every morsel, so concurrent queries interleave),
///    and drains morsels itself. Adaptive compilations are submitted as
///    low-priority tasks that any worker may pick up; if none has within a
///    few controller morsels, the controller compiles inline — occupying
///    one thread, exactly the paper's dedicated-path behavior — so the
///    mode-switch handshake (decide → compile → install → reset rates) is
///    preserved under both substrates.
///  - WorkerPool (legacy shim): the original gang-scheduled path, kept as
///    the differential-testing baseline; worker 0 is the evaluator and
///    compiles inline.
class PipelineRunner {
 public:
  /// Legacy gang-scheduled substrate.
  PipelineRunner(WorkerPool* pool, ExecutionStrategy strategy,
                 CostModelParams params = {}, TraceRecorder* trace = nullptr);

  /// Task-scheduler substrate; the calling thread becomes the pipeline's
  /// controller (it may itself be a scheduler worker running a query task,
  /// or an external thread).
  PipelineRunner(TaskScheduler* scheduler, ExecutionStrategy strategy,
                 CostModelParams params = {}, TraceRecorder* trace = nullptr);

  PipelineRunStats Run(const PipelineTask& task);

  /// First adaptive evaluation happens this long after pipeline start
  /// (paper: 1 ms, "to increase the accuracy of the estimates").
  void set_first_evaluation_delay_seconds(double seconds) {
    first_eval_delay_seconds_ = seconds;
  }

  /// Task-scheduler substrate only: run every morsel on the controller and
  /// compile inline — strictly one thread touches the pipeline (baselines
  /// and the paper's latency figures need this).
  void set_single_threaded(bool single_threaded) {
    single_threaded_ = single_threaded;
  }

 private:
  PipelineRunStats RunGang(const PipelineTask& task);
  PipelineRunStats RunTasks(const PipelineTask& task);

  WorkerPool* pool_ = nullptr;
  TaskScheduler* sched_ = nullptr;
  ExecutionStrategy strategy_;
  CostModelParams params_;
  TraceRecorder* trace_;
  double first_eval_delay_seconds_ = 1e-3;
  bool single_threaded_ = false;
};

}  // namespace aqe

#endif  // AQE_ADAPTIVE_CONTROLLER_H_
