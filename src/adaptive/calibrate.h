#ifndef AQE_ADAPTIVE_CALIBRATE_H_
#define AQE_ADAPTIVE_CALIBRATE_H_

#include "adaptive/cost_model.h"

namespace aqe {

/// True when the AQE_CALIBRATE environment variable requests cost-model
/// micro-calibration at engine startup (any value but "0"/"" enables it).
bool CostModelCalibrationRequested();

/// Measures this machine's real interpreter-vs-compiled speedups on a tiny
/// scan-filter-sum kernel (translated bytecode vs unoptimized vs optimized
/// machine code of the same IR) and returns CostModelParams with the
/// measured `unopt_speedup` / `opt_speedup` in place of the hand-measured
/// 3.2 / 3.8. Compile-time coefficients keep their defaults — they already
/// come from bench/fig06_compile_scaling's linear fit.
///
/// Runs once per process (memoized, thread-safe); costs roughly the price
/// of one small optimized compilation plus a few milliseconds of kernel
/// executions.
const CostModelParams& CalibratedCostModelParams();

}  // namespace aqe

#endif  // AQE_ADAPTIVE_CALIBRATE_H_
