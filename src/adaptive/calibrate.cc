#include "adaptive/calibrate.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <llvm/IR/IRBuilder.h>

#include "common/timer.h"
#include "ir/ir_module.h"
#include "jit/jit_compiler.h"
#include "runtime/runtime_registry.h"
#include "vm/interpreter.h"
#include "vm/translator.h"

namespace aqe {
namespace {

/// Builds `i64 kernel(i64 threshold, i64 n, i64 buf)`: a scan loop with a
/// filter compare and a running checked-free sum — the same shape as a
/// generated scan-filter-aggregate worker, which is what the speedup ratios
/// are applied to.
void BuildCalibrationKernel(IrModule* mod) {
  auto& ctx = mod->context();
  llvm::IRBuilder<> b(ctx);
  auto* i64 = llvm::Type::getInt64Ty(ctx);
  auto* fty = llvm::FunctionType::get(i64, {i64, i64, i64}, false);
  auto* fn = llvm::Function::Create(fty, llvm::Function::ExternalLinkage,
                                    "kernel", &mod->module());
  auto* entry = llvm::BasicBlock::Create(ctx, "entry", fn);
  auto* head = llvm::BasicBlock::Create(ctx, "head", fn);
  auto* body = llvm::BasicBlock::Create(ctx, "body", fn);
  auto* keep = llvm::BasicBlock::Create(ctx, "keep", fn);
  auto* next = llvm::BasicBlock::Create(ctx, "next", fn);
  auto* exit = llvm::BasicBlock::Create(ctx, "exit", fn);

  b.SetInsertPoint(entry);
  auto* base =
      b.CreateIntToPtr(fn->getArg(2), i64->getPointerTo());
  b.CreateBr(head);

  b.SetInsertPoint(head);
  auto* i = b.CreatePHI(i64, 2, "i");
  auto* sum = b.CreatePHI(i64, 2, "sum");
  b.CreateCondBr(b.CreateICmpULT(i, fn->getArg(1)), body, exit);

  b.SetInsertPoint(body);
  auto* v = b.CreateLoad(i64, b.CreateGEP(i64, base, i));
  b.CreateCondBr(b.CreateICmpSGT(v, fn->getArg(0)), keep, next);

  b.SetInsertPoint(keep);
  auto* scaled = b.CreateMul(v, b.getInt64(3));
  auto* sum2 = b.CreateAdd(sum, b.CreateXor(scaled, b.getInt64(0x55)));
  b.CreateBr(next);

  b.SetInsertPoint(next);
  auto* sum3 = b.CreatePHI(i64, 2, "sum3");
  auto* i2 = b.CreateAdd(i, b.getInt64(1));
  b.CreateBr(head);

  b.SetInsertPoint(exit);
  b.CreateRet(sum);

  i->addIncoming(b.getInt64(0), entry);
  i->addIncoming(i2, next);
  sum->addIncoming(b.getInt64(0), entry);
  sum->addIncoming(sum3, next);
  sum3->addIncoming(sum2, keep);
  sum3->addIncoming(sum, body);
}

/// rows/second of `run` (called repeatedly over `rows` until ~budget).
template <typename Fn>
double MeasureRate(uint64_t rows, double budget_seconds, const Fn& run) {
  run();  // warmup
  uint64_t iters = 0;
  Timer timer;
  do {
    run();
    ++iters;
  } while (timer.ElapsedSeconds() < budget_seconds);
  return static_cast<double>(rows) * static_cast<double>(iters) /
         timer.ElapsedSeconds();
}

CostModelParams RunCalibration() {
  CostModelParams params;  // compile-time coefficients stay at defaults
  const RuntimeRegistry& registry = RuntimeRegistry::Global();
  constexpr uint64_t kRows = 1 << 16;
  constexpr double kBudgetSeconds = 8e-3;

  std::vector<int64_t> data(kRows);
  for (uint64_t r = 0; r < kRows; ++r) {
    data[r] = static_cast<int64_t>((r * 2654435761ULL) % 1000);
  }
  uint64_t args[3] = {500, kRows, reinterpret_cast<uint64_t>(data.data())};

  IrModule vm_mod("calibrate_vm");
  BuildCalibrationKernel(&vm_mod);
  BcProgram bytecode = TranslateToBytecode(
      *vm_mod.module().getFunction("kernel"), registry, {});
  const double vm_rate = MeasureRate(
      kRows, kBudgetSeconds, [&] { VmExecute(bytecode, args, 3); });

  double jit_rates[2] = {0, 0};
  const JitMode modes[2] = {JitMode::kUnoptimized, JitMode::kOptimized};
  for (int m = 0; m < 2; ++m) {
    IrModule mod("calibrate_jit");
    BuildCalibrationKernel(&mod);
    auto compiled = JitCompile(std::move(mod), modes[m], registry);
    auto* fn = reinterpret_cast<int64_t (*)(int64_t, int64_t, int64_t)>(
        compiled->Lookup("kernel"));
    jit_rates[m] = MeasureRate(kRows, kBudgetSeconds, [&] {
      fn(500, static_cast<int64_t>(kRows),
         static_cast<int64_t>(reinterpret_cast<uint64_t>(data.data())));
    });
  }

  // Clamp to a sane band: a wildly off measurement (e.g. a descheduled
  // calibration run on a loaded box) must not wedge the controller into
  // never or always compiling.
  if (vm_rate > 0) {
    params.unopt_speedup = std::clamp(jit_rates[0] / vm_rate, 1.2, 30.0);
    params.opt_speedup =
        std::clamp(jit_rates[1] / vm_rate, params.unopt_speedup, 50.0);
  }
  return params;
}

}  // namespace

bool CostModelCalibrationRequested() {
  const char* v = std::getenv("AQE_CALIBRATE");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

const CostModelParams& CalibratedCostModelParams() {
  static const CostModelParams params = RunCalibration();
  return params;
}

}  // namespace aqe
