#include "adaptive/controller.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "common/timer.h"
#include "exec/morsel.h"
#include "obs/profiler.h"
#include "runtime/agg_hash_table.h"
#include "sched/task.h"

namespace aqe {

/// Compile-handshake phases (PipelineExecState::compile_state):
/// kIdle -> kQueued (evaluator decides) -> kRunning (a thread claims the
/// job) -> kIdle (installed + rates reset). The controller aborts a still-
/// kQueued job at drain time and waits out a kRunning one.
enum CompilePhase : int { kCompIdle = 0, kCompQueued = 1, kCompRunning = 2 };

/// Shared state of one pipeline execution on the task scheduler. Held via
/// shared_ptr by the controller (PipelineRun) and every helper/compile
/// task, so a task that runs after the pipeline finished touches only this
/// struct: the raw pipeline pointers (handle, state, compile) are
/// dereferenced only after a successful morsel claim or compile-job claim,
/// both of which the controller's drain phase (or the PipelineRun
/// destructor) waits out before the owner frees them.
struct PipelineExecState {
  /// Per-participant tuple-rate sample slot (§III-C), cache-line isolated.
  struct alignas(64) SlotRate {
    std::atomic<uint64_t> tuples{0};
    std::atomic<uint64_t> nanos{0};
    std::atomic<uint64_t> epoch{0};
  };

  PipelineExecState(uint64_t total_tuples, int participants)
      : shards(total_tuples, participants), rates(participants) {}

  /// Pruned-scan variant: shards the domain's selected rows instead of a
  /// dense [0, total) — pruned morsels are never scheduled on any shard.
  PipelineExecState(std::shared_ptr<const ScanDomain> domain, int participants)
      : shards(std::move(domain), participants), rates(participants) {}

  ShardedMorselQueue shards;
  std::vector<SlotRate> rates;
  std::atomic<uint64_t> epoch{0};
  std::atomic<int> active_helpers{0};

  FunctionHandle* handle = nullptr;
  void* state = nullptr;
  TraceRecorder* trace = nullptr;
  int pipeline_id = 0;
  uint64_t function_instructions = 0;
  PipelineObs obs;
  const std::function<WorkerFn(ExecMode)>* compile = nullptr;

  std::atomic<int> compile_state{kCompIdle};
  ExecMode compile_target = ExecMode::kUnoptimized;

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<ExecMode, double>> compiles;  ///< guarded by mu
};

namespace {

/// After this many controller morsels with a compile job still kQueued,
/// the controller claims it inline — occupying one thread exactly like the
/// paper's dedicated path — so a saturated scheduler cannot delay a mode
/// switch indefinitely.
constexpr int kInlineCompileAfterMorsels = 2;

void RecordRate(PipelineExecState& st, int slot, uint64_t tuples,
                uint64_t nanos) {
  auto& rate = st.rates[static_cast<size_t>(slot)];
  uint64_t current_epoch = st.epoch.load(std::memory_order_relaxed);
  if (rate.epoch.load(std::memory_order_relaxed) != current_epoch) {
    rate.tuples.store(0, std::memory_order_relaxed);
    rate.nanos.store(0, std::memory_order_relaxed);
    rate.epoch.store(current_epoch, std::memory_order_relaxed);
  }
  rate.tuples.fetch_add(tuples, std::memory_order_relaxed);
  rate.nanos.fetch_add(nanos, std::memory_order_relaxed);
}

/// Runs one claimed batch through the current variant, with rate and
/// trace bookkeeping. `slot` is the rate slot, `thread` the trace lane.
/// The batch (one range on dense scans, up to kMaxRanges fragments of a
/// pruned domain) shares a single rate sample and trace event, so the
/// bookkeeping cost stays per-claim, not per-fragment; the recorded rate
/// honestly includes the inter-fragment dispatch overhead.
void ExecuteMorsel(PipelineExecState& st, const MorselBatch& batch, int slot,
                   int thread) {
  ExecMode mode = st.handle->mode();
  // Beacon for the sampling profiler: publish the morsel (query, pipeline,
  // mode), restore whatever the enclosing slice published afterwards — a
  // helper task's slice beacon must survive its morsels.
  WorkerBeacon* beacon =
      st.obs.beacons != nullptr ? st.obs.beacons->lane(thread) : nullptr;
  uint64_t prior_word0 = 0;
  if (beacon != nullptr) {
    prior_word0 = beacon->word0.load(std::memory_order_relaxed);
    PublishBeacon(beacon, st.obs.query_id,
                  static_cast<uint16_t>(st.pipeline_id),
                  static_cast<uint8_t>(mode), BeaconActivity::kMorsel,
                  batch.rows);
  }
  int64_t t0 = MonotonicNanos();
  for (int i = 0; i < batch.count; ++i) {
    st.handle->Call(st.state, batch.ranges[i].begin, batch.ranges[i].end);
  }
  int64_t t1 = MonotonicNanos();
  if (beacon != nullptr) {
    beacon->word0.store(prior_word0, std::memory_order_relaxed);
  }
  RecordRate(st, slot, batch.rows, static_cast<uint64_t>(t1 - t0));
  if (st.trace != nullptr) {
    st.trace->Record({TraceRecorder::EventKind::kMorsel, thread,
                      st.pipeline_id, mode, t0, t1, batch.rows});
  }
  if (st.obs.enabled()) {
    TraceEvent e;
    e.kind = TraceEventKind::kMorsel;
    e.start_nanos = t0;
    e.end_nanos = t1;
    e.payload = batch.rows;
    e.query_id = st.obs.query_id;
    e.pipeline_id = static_cast<uint16_t>(st.pipeline_id);
    e.detail = static_cast<uint8_t>(mode);
    st.obs.tracer->Record(thread, e);
  }
  if (st.obs.morsels != nullptr) st.obs.morsels->Add();
}

/// Claims and performs a pending compile job: compile -> install into the
/// handle -> record -> bump the epoch (rate reset, §III-C) -> notify the
/// controller. Returns false when no job is pending or another thread owns
/// it. Callable from any scheduler worker or the controller; controller
/// call sites pass `blocking_seconds` to attribute the compile to blocked
/// execution time (see PipelineRunStats).
bool TryRunCompileJob(PipelineExecState& st,
                      double* blocking_seconds = nullptr) {
  int expected = kCompQueued;
  if (!st.compile_state.compare_exchange_strong(expected, kCompRunning,
                                                std::memory_order_acq_rel)) {
    return false;
  }
  AQE_CHECK_MSG(*st.compile != nullptr, "pipeline has no compile hook");
  const ExecMode target = st.compile_target;
  // Compiles are ms-scale, the one activity long enough for the sampler to
  // attribute reliably; publish it on this thread's beacon lane.
  WorkerBeacon* beacon =
      st.obs.beacons != nullptr
          ? st.obs.beacons->lane(runtime_internal::GetThreadIndex())
          : nullptr;
  uint64_t prior_word0 = 0;
  if (beacon != nullptr) {
    prior_word0 = beacon->word0.load(std::memory_order_relaxed);
    PublishBeacon(beacon, st.obs.query_id,
                  static_cast<uint16_t>(st.pipeline_id),
                  static_cast<uint8_t>(target), BeaconActivity::kCompile,
                  st.function_instructions);
  }
  Timer compile_timer;
  int64_t t0 = MonotonicNanos();
  WorkerFn fn = (*st.compile)(target);
  double seconds = compile_timer.ElapsedSeconds();
  st.handle->SetCompiled(fn, target);
  const int64_t t1 = MonotonicNanos();
  if (beacon != nullptr) {
    beacon->word0.store(prior_word0, std::memory_order_relaxed);
  }
  if (st.trace != nullptr) {
    st.trace->Record({TraceRecorder::EventKind::kCompile,
                      runtime_internal::GetThreadIndex(), st.pipeline_id,
                      target, t0, t1, 0});
  }
  if (st.obs.enabled()) {
    TraceEvent e;
    e.kind = TraceEventKind::kCompile;
    e.start_nanos = t0;
    e.end_nanos = t1;
    e.payload = st.function_instructions;
    e.query_id = st.obs.query_id;
    e.pipeline_id = static_cast<uint16_t>(st.pipeline_id);
    e.detail = static_cast<uint8_t>(target);
    st.obs.tracer->Record(runtime_internal::GetThreadIndex(), e);
  }
  if (st.obs.compiles != nullptr) st.obs.compiles->Add();
  if (st.obs.compile_us != nullptr) {
    st.obs.compile_us->Record(static_cast<uint64_t>(seconds * 1e6));
  }
  st.epoch.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(st.mu);
    st.compiles.emplace_back(target, seconds);
  }
  st.compile_state.store(kCompIdle, std::memory_order_release);
  st.cv.notify_all();
  if (blocking_seconds != nullptr) *blocking_seconds += seconds;
  return true;
}

/// Processes one morsel per slice from its preferred shard (stealing when
/// dry), yielding between morsels so concurrent queries on the same worker
/// interleave at morsel granularity.
class MorselHelperTask : public Task {
 public:
  MorselHelperTask(std::shared_ptr<PipelineExecState> st, int slot)
      : st_(std::move(st)), slot_(slot) {}

  Status Run(int worker) override {
    PipelineExecState& st = *st_;
    // active_helpers is raised *before* the claim: the controller treats
    // "domain drained && active_helpers == 0" as completion, so a helper
    // between claim and call can never be missed.
    st.active_helpers.fetch_add(1, std::memory_order_seq_cst);
    MorselBatch morsel;
    if (!st.shards.Next(slot_, &morsel)) {
      FinishSlice(st);
      return Status::kDone;
    }
    ExecuteMorsel(st, morsel, slot_, worker);
    FinishSlice(st);
    return Status::kYield;
  }

 private:
  static void FinishSlice(PipelineExecState& st) {
    if (st.active_helpers.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
        st.shards.remaining() == 0) {
      std::lock_guard<std::mutex> lock(st.mu);
      st.cv.notify_all();
    }
  }

  std::shared_ptr<PipelineExecState> st_;
  const int slot_;
};

/// A controller thread that is not a scheduler worker still executes
/// morsels, and the runtime's per-thread partitions (aggregation tables,
/// output buffers) are indexed by the thread-local runtime index — which
/// defaults to 0 and would alias worker 0's partitions. External
/// controller threads therefore lease a unique index from the top of the
/// runtime's 64-slot range (workers occupy [0, kMaxSchedulerWorkers) from
/// the bottom; TaskScheduler enforces the split), once per thread, and
/// return it to the pool when the thread exits — so thread churn cannot
/// exhaust the range, only >16 *live* external controllers can.
constexpr int kFirstExternalIndex = 48;

std::mutex& ExternalIndexMutex() {
  static std::mutex mutex;
  return mutex;
}
std::vector<int>& ExternalIndexFreeList() {
  static std::vector<int> free_list = [] {
    std::vector<int> all;
    for (int i = 63; i >= kFirstExternalIndex; --i) all.push_back(i);
    return all;
  }();
  return free_list;
}

int EnsureExternalRuntimeIndex() {
  struct Lease {
    int index = -1;
    ~Lease() {
      if (index < 0) return;
      std::lock_guard<std::mutex> lock(ExternalIndexMutex());
      ExternalIndexFreeList().push_back(index);
    }
  };
  thread_local Lease lease;
  if (lease.index < 0) {
    std::lock_guard<std::mutex> lock(ExternalIndexMutex());
    std::vector<int>& free_list = ExternalIndexFreeList();
    AQE_CHECK_MSG(!free_list.empty(),
                  "more than 16 live external controller threads");
    lease.index = free_list.back();
    free_list.pop_back();
    runtime_internal::SetThreadIndex(lease.index);
  }
  return lease.index;
}

/// Low-priority carrier for an adaptive compile decision.
class CompileJobTask : public Task {
 public:
  explicit CompileJobTask(std::shared_ptr<PipelineExecState> st)
      : st_(std::move(st)) {}

  Status Run(int) override {
    TryRunCompileJob(*st_);
    return Status::kDone;
  }

 private:
  std::shared_ptr<PipelineExecState> st_;
};

}  // namespace

const char* ExecutionStrategyName(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kBytecode: return "bytecode";
    case ExecutionStrategy::kUnoptimized: return "unoptimized";
    case ExecutionStrategy::kOptimized: return "optimized";
    case ExecutionStrategy::kAdaptive: return "adaptive";
  }
  AQE_UNREACHABLE("bad ExecutionStrategy");
}

PipelineRunner::PipelineRunner(WorkerPool* pool, ExecutionStrategy strategy,
                               CostModelParams params, TraceRecorder* trace)
    : pool_(pool), strategy_(strategy), params_(params), trace_(trace) {
  AQE_CHECK(pool_ != nullptr);
}

PipelineRunner::PipelineRunner(TaskScheduler* scheduler,
                               ExecutionStrategy strategy,
                               CostModelParams params, TraceRecorder* trace)
    : sched_(scheduler), strategy_(strategy), params_(params), trace_(trace) {
  AQE_CHECK(sched_ != nullptr);
}

PipelineRunStats PipelineRunner::Run(const PipelineTask& task) {
  AQE_CHECK(task.handle != nullptr);
  return sched_ != nullptr ? RunTasks(task) : RunGang(task);
}

PipelineRunStats PipelineRunner::RunTasks(const PipelineTask& task) {
  // Blocking wrapper over the resumable state machine: step to completion
  // on the calling thread, parking briefly while the drain phase waits out
  // in-flight helper/compile slices.
  PipelineRun run(sched_, strategy_, params_, trace_, task, single_threaded_,
                  first_eval_delay_seconds_);
  while (run.Step() == Task::Status::kYield) {
    if (run.draining()) run.WaitDrainBriefly();
  }
  return run.TakeStats();
}

// --- PipelineRun: the resumable controller --------------------------------

PipelineRun::PipelineRun(TaskScheduler* scheduler, ExecutionStrategy strategy,
                         CostModelParams params, TraceRecorder* trace,
                         const PipelineTask& task, bool single_threaded,
                         double first_eval_delay_seconds)
    : sched_(scheduler),
      strategy_(strategy),
      params_(params),
      trace_(trace),
      task_(task),
      single_threaded_(single_threaded),
      first_eval_delay_seconds_(first_eval_delay_seconds),
      adaptive_(strategy == ExecutionStrategy::kAdaptive) {
  AQE_CHECK(sched_ != nullptr);
  AQE_CHECK(task_.handle != nullptr);
}

PipelineRun::~PipelineRun() {
  if (st_ == nullptr || phase_ == Phase::kDone) return;
  // Abandoned mid-run (the scheduler's destructor destroying a suspended
  // query task): close the morsel domain, abort an unclaimed compile job,
  // and wait out in-flight claims so the owner may free handle/state/
  // bindings right after us (invariant 3). With the workers joined nothing
  // claims anew, so this returns immediately.
  MorselBatch discard;
  while (st_->shards.Next(controller_slot_, &discard)) {
  }
  int expected = kCompQueued;
  st_->compile_state.compare_exchange_strong(expected, kCompIdle,
                                             std::memory_order_acq_rel);
  std::unique_lock<std::mutex> lock(st_->mu);
  while (st_->active_helpers.load(std::memory_order_seq_cst) != 0 ||
         st_->compile_state.load(std::memory_order_seq_cst) != kCompIdle) {
    st_->cv.wait_for(lock, std::chrono::milliseconds(1));
  }
}

int PipelineRun::CurrentRuntimeThread() const {
  // External controllers get a runtime thread index that cannot collide
  // with any worker's per-thread runtime partitions.
  return TaskScheduler::CurrentScheduler() == sched_
             ? TaskScheduler::CurrentWorker()
             : EnsureExternalRuntimeIndex();
}

void PipelineRun::Start() {
  start_nanos_ = MonotonicNanos();
  // The controller's identity — fixed now, at the first step (invariant 2):
  // a scheduler worker when stepped from a query task, or an external
  // thread (tests, benches) that gets the extra slot/shard.
  const int self = TaskScheduler::CurrentScheduler() == sched_
                       ? TaskScheduler::CurrentWorker()
                       : -1;
  const int workers = sched_->num_workers();
  participants_ = single_threaded_ ? 1 : (self >= 0 ? workers : workers + 1);
  controller_slot_ = single_threaded_ ? 0 : (self >= 0 ? self : workers);

  st_ = task_.domain != nullptr
            ? std::make_shared<PipelineExecState>(task_.domain, participants_)
            : std::make_shared<PipelineExecState>(task_.total_tuples,
                                                  participants_);
  st_->handle = task_.handle;
  st_->state = task_.state;
  st_->trace = trace_;
  st_->pipeline_id = task_.pipeline_id;
  st_->function_instructions = task_.function_instructions;
  st_->obs = task_.obs;
  st_->compile = &task_.compile;  // task_ is our member copy: stable address

  if (st_->obs.enabled()) {
    TraceEvent e;
    e.kind = TraceEventKind::kPipelineStart;
    e.start_nanos = start_nanos_;
    e.end_nanos = start_nanos_;
    e.payload = task_.total_tuples;
    e.query_id = st_->obs.query_id;
    e.pipeline_id = static_cast<uint16_t>(task_.pipeline_id);
    st_->obs.tracer->Record(CurrentRuntimeThread(), e);
  }

  // Static compile-up-front strategies (single-threaded compilation before
  // any morsel runs — exactly the §III critique). Skipped when the handle
  // was seeded with cached machine code already in the requested mode.
  auto compile_inline = [&](ExecMode mode) {
    st_->compile_target = mode;
    st_->compile_state.store(kCompQueued, std::memory_order_release);
    AQE_CHECK(TryRunCompileJob(*st_, &stats_.blocking_compile_seconds));
  };
  if (strategy_ == ExecutionStrategy::kUnoptimized) {
    if (task_.handle->mode() != ExecMode::kUnoptimized) {
      compile_inline(ExecMode::kUnoptimized);
    }
  } else if (strategy_ == ExecutionStrategy::kOptimized) {
    if (task_.handle->mode() != ExecMode::kOptimized) {
      compile_inline(ExecMode::kOptimized);
    }
  }

  if (!single_threaded_) {
    for (int v = 0; v < workers; ++v) {
      if (v == self) continue;  // the controller drains its own shard
      auto helper = std::make_unique<MorselHelperTask>(st_, v);
      helper->set_scheduling_class(task_.scheduling_class);
      sched_->SubmitTo(v, std::move(helper));
    }
  }
  phase_ = Phase::kMorsels;
}

Task::Status PipelineRun::Step() {
  switch (phase_) {
    case Phase::kStart:
      if (single_threaded_) return RunSingleThreaded();
      Start();
      return Task::Status::kYield;
    case Phase::kMorsels:
      return StepMorsel();
    case Phase::kDrain:
      return StepDrain();
    case Phase::kDone:
      return Task::Status::kDone;
  }
  AQE_UNREACHABLE("bad PipelineRun phase");
}

Task::Status PipelineRun::RunSingleThreaded() {
  // Invariant 4: strictly one thread touches the pipeline, in one slice —
  // no helpers, no yields, compiles inline.
  Start();
  const int thread = CurrentRuntimeThread();
  MorselBatch morsel;
  while (st_->shards.Next(controller_slot_, &morsel)) {
    ExecuteMorsel(*st_, morsel, controller_slot_, thread);
    if (adaptive_) Evaluate();
  }
  phase_ = Phase::kDrain;
  return StepDrain();
}

Task::Status PipelineRun::StepMorsel() {
  MorselBatch morsel;
  if (!st_->shards.Next(controller_slot_, &morsel)) {
    // Domain drained. Abort a compile job nobody started (it would be
    // wasted work); a running one must finish — the compile hook references
    // owner state — as must in-flight helper morsels.
    int expected = kCompQueued;
    st_->compile_state.compare_exchange_strong(expected, kCompIdle,
                                               std::memory_order_acq_rel);
    phase_ = Phase::kDrain;
    return StepDrain();
  }
  // The checkpoint: exactly one controller morsel (plus the §III-C
  // re-evaluation) per slice, then hand the worker back to the scheduler.
  ExecuteMorsel(*st_, morsel, controller_slot_, CurrentRuntimeThread());
  if (adaptive_) Evaluate();
  return Task::Status::kYield;
}

Task::Status PipelineRun::StepDrain() {
  if (st_->active_helpers.load(std::memory_order_seq_cst) != 0 ||
      st_->compile_state.load(std::memory_order_seq_cst) != kCompIdle) {
    // Helpers mid-morsel notify within microseconds — plain re-check. A
    // *running* JIT compile is ms-scale though: park briefly on the state
    // condvar instead of spinning through the scheduler for its whole
    // duration (the wait is bounded, so other tasks queued on this worker
    // stall at most 200 µs — and thieves can take them meanwhile).
    if (st_->compile_state.load(std::memory_order_seq_cst) == kCompRunning) {
      std::unique_lock<std::mutex> lock(st_->mu);
      if (st_->compile_state.load(std::memory_order_seq_cst) ==
          kCompRunning) {
        st_->cv.wait_for(lock, std::chrono::microseconds(200));
      }
    }
    return Task::Status::kYield;  // check again next slice
  }
  {
    std::lock_guard<std::mutex> lock(st_->mu);
    stats_.compiles = std::move(st_->compiles);
  }
  const int64_t end_nanos = MonotonicNanos();
  stats_.total_seconds = static_cast<double>(end_nanos - start_nanos_) / 1e9;
  stats_.final_mode = task_.handle->mode();
  for (ModeSwitchRecord& rec : stats_.mode_switches) {
    rec.realized_seconds =
        static_cast<double>(end_nanos - rec.decision_nanos) / 1e9;
  }
  phase_ = Phase::kDone;
  return Task::Status::kDone;
}

void PipelineRun::WaitDrainBriefly() {
  std::unique_lock<std::mutex> lock(st_->mu);
  if (st_->active_helpers.load(std::memory_order_seq_cst) != 0 ||
      st_->compile_state.load(std::memory_order_seq_cst) != kCompIdle) {
    // Timed wait: completion is signalled, but a 1 ms re-check also makes
    // the drain robust against any missed notify.
    st_->cv.wait_for(lock, std::chrono::milliseconds(1));
  }
}

/// §III-C: the extrapolation is performed by a single thread — the
/// controller — re-evaluated after every one of its morsels.
void PipelineRun::Evaluate() {
  ExecMode mode = task_.handle->mode();
  if (mode == ExecMode::kOptimized) return;
  int phase = st_->compile_state.load(std::memory_order_acquire);
  if (phase == kCompRunning) return;
  if (phase == kCompQueued) {
    if (++morsels_since_queued_ >= kInlineCompileAfterMorsels) {
      TryRunCompileJob(*st_, &stats_.blocking_compile_seconds);
    }
    return;
  }
  if (static_cast<double>(MonotonicNanos() - start_nanos_) <
      first_eval_delay_seconds_ * 1e9) {
    return;
  }
  // Average per-participant rate in the current epoch (Fig 7's r0).
  uint64_t current_epoch = st_->epoch.load(std::memory_order_relaxed);
  double rate_sum = 0;
  int rate_count = 0;
  for (const auto& rate : st_->rates) {
    if (rate.epoch.load(std::memory_order_relaxed) != current_epoch) {
      continue;
    }
    uint64_t nanos = rate.nanos.load(std::memory_order_relaxed);
    uint64_t tuples = rate.tuples.load(std::memory_order_relaxed);
    if (nanos == 0 || tuples == 0) continue;
    rate_sum +=
        static_cast<double>(tuples) / (static_cast<double>(nanos) / 1e9);
    ++rate_count;
  }
  if (rate_count == 0) return;
  double r0 = rate_sum / rate_count;
  const uint64_t remaining = st_->shards.remaining();
  ExtrapolationBreakdown breakdown;
  Decision decision = ExtrapolatePipelineDurations(
      r0, remaining, participants_, task_.function_instructions, mode,
      params_, task_.runtime_call_fraction, &breakdown);
  if (decision == Decision::kDoNothing) return;
  st_->compile_target = decision == Decision::kCompileUnoptimized
                            ? ExecMode::kUnoptimized
                            : ExecMode::kOptimized;
  const int64_t decision_nanos = MonotonicNanos();
  {
    // Prediction-vs-realized bookkeeping: keep the decision on the run
    // itself (stats_ is controller-thread-only), realized filled at drain.
    ModeSwitchRecord rec;
    rec.target = st_->compile_target;
    rec.decision_nanos = decision_nanos;
    rec.r0 = r0;
    rec.remaining_tuples = remaining;
    rec.t_current_seconds = breakdown.t_current;
    rec.t_chosen_seconds = breakdown.chosen_seconds(decision);
    stats_.mode_switches.push_back(rec);
  }
  if (st_->obs.enabled()) {
    // The §III-C decision with its cost-model inputs: what the controller
    // observed (r0) and what it extrapolated for staying vs. switching.
    TraceEvent e;
    e.kind = TraceEventKind::kModeSwitch;
    e.start_nanos = decision_nanos;
    e.end_nanos = e.start_nanos;
    e.payload = remaining;
    e.payload2 = TraceEventDoubleToBits(task_.runtime_call_fraction);
    e.d0 = r0;
    e.d1 = breakdown.t_current;
    e.d2 = breakdown.chosen_seconds(decision);
    e.query_id = st_->obs.query_id;
    e.pipeline_id = static_cast<uint16_t>(task_.pipeline_id);
    e.detail = static_cast<uint8_t>(st_->compile_target);
    st_->obs.tracer->Record(CurrentRuntimeThread(), e);
  }
  if (st_->obs.mode_switch_decisions != nullptr) {
    st_->obs.mode_switch_decisions->Add();
  }
  morsels_since_queued_ = 0;
  st_->compile_state.store(kCompQueued, std::memory_order_release);
  if (single_threaded_ || participants_ == 1) {
    // No other thread can ever pick the job up: compile inline now.
    TryRunCompileJob(*st_, &stats_.blocking_compile_seconds);
  } else {
    auto job = std::make_unique<CompileJobTask>(st_);
    job->set_scheduling_class(task_.scheduling_class);
    sched_->Submit(std::move(job), TaskPriority::kLow);
  }
}

PipelineRunStats PipelineRunner::RunGang(const PipelineTask& task) {
  PipelineRunStats stats;
  Timer total_timer;

  auto compile_and_install = [&](ExecMode mode) {
    AQE_CHECK_MSG(task.compile != nullptr, "pipeline has no compile hook");
    Timer compile_timer;
    int64_t t0 = MonotonicNanos();
    WorkerFn fn = task.compile(mode);
    double seconds = compile_timer.ElapsedSeconds();
    task.handle->SetCompiled(fn, mode);
    stats.compiles.emplace_back(mode, seconds);
    stats.blocking_compile_seconds += seconds;
    if (trace_ != nullptr) {
      trace_->Record({TraceRecorder::EventKind::kCompile,
                      runtime_internal::GetThreadIndex(), task.pipeline_id,
                      mode, t0, MonotonicNanos(), 0});
    }
  };

  // Static compile-up-front strategies (single-threaded compilation, all
  // other workers idle — exactly the §III critique). Skipped when the
  // handle was seeded with cached code already in the requested mode.
  if (strategy_ == ExecutionStrategy::kUnoptimized) {
    if (task.handle->mode() != ExecMode::kUnoptimized) {
      compile_and_install(ExecMode::kUnoptimized);
    }
  } else if (strategy_ == ExecutionStrategy::kOptimized) {
    if (task.handle->mode() != ExecMode::kOptimized) {
      compile_and_install(ExecMode::kOptimized);
    }
  }

  auto queue_storage =
      task.domain != nullptr
          ? std::make_unique<MorselQueue>(task.domain, 0,
                                          task.domain->selected())
          : std::make_unique<MorselQueue>(task.total_tuples);
  MorselQueue& queue = *queue_storage;
  std::vector<std::unique_ptr<PipelineExecState::SlotRate>> rates;
  for (int i = 0; i < pool_->num_threads(); ++i) {
    rates.push_back(std::make_unique<PipelineExecState::SlotRate>());
  }
  std::atomic<uint64_t> epoch{0};
  const int64_t pipeline_start = MonotonicNanos();
  const bool adaptive = strategy_ == ExecutionStrategy::kAdaptive;

  auto evaluate = [&]() {
    ExecMode mode = task.handle->mode();
    if (mode == ExecMode::kOptimized) return;
    if (static_cast<double>(MonotonicNanos() - pipeline_start) <
        first_eval_delay_seconds_ * 1e9) {
      return;
    }
    // Average per-thread rate in the current epoch (Fig 7's r0).
    uint64_t current_epoch = epoch.load(std::memory_order_relaxed);
    double rate_sum = 0;
    int rate_count = 0;
    for (const auto& rate : rates) {
      if (rate->epoch.load(std::memory_order_relaxed) != current_epoch) {
        continue;
      }
      uint64_t nanos = rate->nanos.load(std::memory_order_relaxed);
      uint64_t tuples = rate->tuples.load(std::memory_order_relaxed);
      if (nanos == 0 || tuples == 0) continue;
      rate_sum += static_cast<double>(tuples) /
                  (static_cast<double>(nanos) / 1e9);
      ++rate_count;
    }
    if (rate_count == 0) return;
    double r0 = rate_sum / rate_count;
    Decision decision = ExtrapolatePipelineDurations(
        r0, queue.remaining(), pool_->num_threads(),
        task.function_instructions, mode, params_,
        task.runtime_call_fraction);
    if (decision == Decision::kDoNothing) return;
    compile_and_install(decision == Decision::kCompileUnoptimized
                            ? ExecMode::kUnoptimized
                            : ExecMode::kOptimized);
    // Reset all processing rates (§III-C): bump the epoch, workers lazily
    // clear their slots.
    epoch.fetch_add(1, std::memory_order_relaxed);
  };

  pool_->RunParallel([&](int thread) {
    PipelineExecState::SlotRate& rate = *rates[static_cast<size_t>(thread)];
    MorselBatch morsel;
    while (queue.Next(&morsel)) {
      ExecMode mode = task.handle->mode();
      int64_t t0 = MonotonicNanos();
      for (int i = 0; i < morsel.count; ++i) {
        task.handle->Call(task.state, morsel.ranges[i].begin,
                          morsel.ranges[i].end);
      }
      int64_t t1 = MonotonicNanos();

      uint64_t current_epoch = epoch.load(std::memory_order_relaxed);
      if (rate.epoch.load(std::memory_order_relaxed) != current_epoch) {
        rate.tuples.store(0, std::memory_order_relaxed);
        rate.nanos.store(0, std::memory_order_relaxed);
        rate.epoch.store(current_epoch, std::memory_order_relaxed);
      }
      rate.tuples.fetch_add(morsel.rows, std::memory_order_relaxed);
      rate.nanos.fetch_add(static_cast<uint64_t>(t1 - t0),
                           std::memory_order_relaxed);
      if (trace_ != nullptr) {
        trace_->Record({TraceRecorder::EventKind::kMorsel, thread,
                        task.pipeline_id, mode, t0, t1, morsel.rows});
      }
      // §III-C: the extrapolation is performed by a single worker thread,
      // re-evaluated after every one of its morsels.
      if (adaptive && thread == 0) evaluate();
    }
  });

  stats.total_seconds = total_timer.ElapsedSeconds();
  stats.final_mode = task.handle->mode();
  return stats;
}

}  // namespace aqe
