#include "adaptive/controller.h"

#include <memory>

#include "common/status.h"
#include "common/timer.h"
#include "exec/morsel.h"
#include "runtime/agg_hash_table.h"

namespace aqe {

const char* ExecutionStrategyName(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kBytecode: return "bytecode";
    case ExecutionStrategy::kUnoptimized: return "unoptimized";
    case ExecutionStrategy::kOptimized: return "optimized";
    case ExecutionStrategy::kAdaptive: return "adaptive";
  }
  AQE_UNREACHABLE("bad ExecutionStrategy");
}

PipelineRunner::PipelineRunner(WorkerPool* pool, ExecutionStrategy strategy,
                               CostModelParams params, TraceRecorder* trace)
    : pool_(pool), strategy_(strategy), params_(params), trace_(trace) {
  AQE_CHECK(pool_ != nullptr);
}

PipelineRunStats PipelineRunner::Run(const PipelineTask& task) {
  AQE_CHECK(task.handle != nullptr);
  PipelineRunStats stats;
  Timer total_timer;

  auto compile_and_install = [&](ExecMode mode) {
    AQE_CHECK_MSG(task.compile != nullptr, "pipeline has no compile hook");
    Timer compile_timer;
    int64_t t0 = MonotonicNanos();
    WorkerFn fn = task.compile(mode);
    double seconds = compile_timer.ElapsedSeconds();
    task.handle->SetCompiled(fn, mode);
    stats.compiles.emplace_back(mode, seconds);
    if (trace_ != nullptr) {
      trace_->Record({TraceRecorder::EventKind::kCompile,
                      runtime_internal::GetThreadIndex(), task.pipeline_id,
                      mode, t0, MonotonicNanos(), 0});
    }
  };

  // Static compile-up-front strategies (single-threaded compilation, all
  // other workers idle — exactly the §III critique).
  if (strategy_ == ExecutionStrategy::kUnoptimized) {
    compile_and_install(ExecMode::kUnoptimized);
  } else if (strategy_ == ExecutionStrategy::kOptimized) {
    compile_and_install(ExecMode::kOptimized);
  }

  MorselQueue queue(task.total_tuples);
  std::vector<std::unique_ptr<ThreadRate>> rates;
  for (int i = 0; i < pool_->num_threads(); ++i) {
    rates.push_back(std::make_unique<ThreadRate>());
  }
  std::atomic<uint64_t> epoch{0};
  const int64_t pipeline_start = MonotonicNanos();
  const bool adaptive = strategy_ == ExecutionStrategy::kAdaptive;

  auto evaluate = [&]() {
    ExecMode mode = task.handle->mode();
    if (mode == ExecMode::kOptimized) return;
    if (static_cast<double>(MonotonicNanos() - pipeline_start) <
        first_eval_delay_seconds_ * 1e9) {
      return;
    }
    // Average per-thread rate in the current epoch (Fig 7's r0).
    uint64_t current_epoch = epoch.load(std::memory_order_relaxed);
    double rate_sum = 0;
    int rate_count = 0;
    for (const auto& rate : rates) {
      if (rate->epoch.load(std::memory_order_relaxed) != current_epoch) {
        continue;
      }
      uint64_t nanos = rate->nanos.load(std::memory_order_relaxed);
      uint64_t tuples = rate->tuples.load(std::memory_order_relaxed);
      if (nanos == 0 || tuples == 0) continue;
      rate_sum += static_cast<double>(tuples) /
                  (static_cast<double>(nanos) / 1e9);
      ++rate_count;
    }
    if (rate_count == 0) return;
    double r0 = rate_sum / rate_count;
    Decision decision = ExtrapolatePipelineDurations(
        r0, queue.remaining(), pool_->num_threads(),
        task.function_instructions, mode, params_);
    if (decision == Decision::kDoNothing) return;
    compile_and_install(decision == Decision::kCompileUnoptimized
                            ? ExecMode::kUnoptimized
                            : ExecMode::kOptimized);
    // Reset all processing rates (§III-C): bump the epoch, workers lazily
    // clear their slots.
    epoch.fetch_add(1, std::memory_order_relaxed);
  };

  pool_->RunParallel([&](int thread) {
    ThreadRate& rate = *rates[static_cast<size_t>(thread)];
    MorselRange morsel;
    while (queue.Next(&morsel)) {
      ExecMode mode = task.handle->mode();
      int64_t t0 = MonotonicNanos();
      task.handle->Call(task.state, morsel.begin, morsel.end);
      int64_t t1 = MonotonicNanos();

      uint64_t current_epoch = epoch.load(std::memory_order_relaxed);
      if (rate.epoch.load(std::memory_order_relaxed) != current_epoch) {
        rate.tuples.store(0, std::memory_order_relaxed);
        rate.nanos.store(0, std::memory_order_relaxed);
        rate.epoch.store(current_epoch, std::memory_order_relaxed);
      }
      rate.tuples.fetch_add(morsel.end - morsel.begin,
                            std::memory_order_relaxed);
      rate.nanos.fetch_add(static_cast<uint64_t>(t1 - t0),
                           std::memory_order_relaxed);
      if (trace_ != nullptr) {
        trace_->Record({TraceRecorder::EventKind::kMorsel, thread,
                        task.pipeline_id, mode, t0, t1,
                        morsel.end - morsel.begin});
      }
      // §III-C: the extrapolation is performed by a single worker thread,
      // re-evaluated after every one of its morsels.
      if (adaptive && thread == 0) evaluate();
    }
  });

  stats.total_seconds = total_timer.ElapsedSeconds();
  stats.final_mode = task.handle->mode();
  return stats;
}

}  // namespace aqe
