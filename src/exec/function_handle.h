#ifndef AQE_EXEC_FUNCTION_HANDLE_H_
#define AQE_EXEC_FUNCTION_HANDLE_H_

#include <atomic>
#include <cstdint>

namespace aqe {

/// Execution modes of a worker function, ordered from lowest latency to
/// highest throughput (Fig 3).
enum class ExecMode : uint8_t { kBytecode = 0, kUnoptimized = 1, kOptimized = 2 };

const char* ExecModeName(ExecMode mode);

/// The worker-function ABI (§III-A/IV-E):
///   worker(state, morsel_begin, morsel_end, extra)
/// `extra` carries the bytecode program for interpreted variants and is
/// redundant (but harmless) for machine code — which is precisely what lets
/// a single atomic pointer swap switch modes without tagged pointers or
/// extra branches.
using WorkerFn = void (*)(void* state, uint64_t begin, uint64_t end,
                          const void* extra);

/// The handle indirection of Fig 5: "instead of identifying a worker
/// function by its memory address, we introduce an additional handle…
/// To change the execution mode, one only needs to set a function pointer
/// in this handle object. Once set, all remaining morsels will be processed
/// using the new variant."
class FunctionHandle {
 public:
  /// Starts in bytecode mode: `interpreter` is the VM trampoline,
  /// `program` the translated bytecode (owned by the caller).
  FunctionHandle(WorkerFn interpreter, const void* program);

  /// Installs a compiled variant. Threads pick it up on their next morsel.
  void SetCompiled(WorkerFn fn, ExecMode mode);

  /// Dispatches one morsel through the current fastest variant.
  void Call(void* state, uint64_t begin, uint64_t end) const {
    WorkerFn fn = fn_.load(std::memory_order_acquire);
    fn(state, begin, end, extra_.load(std::memory_order_acquire));
  }

  ExecMode mode() const { return mode_.load(std::memory_order_acquire); }
  bool is_compiled() const { return mode() != ExecMode::kBytecode; }

 private:
  std::atomic<WorkerFn> fn_;
  std::atomic<const void*> extra_;
  std::atomic<ExecMode> mode_{ExecMode::kBytecode};
};

}  // namespace aqe

#endif  // AQE_EXEC_FUNCTION_HANDLE_H_
