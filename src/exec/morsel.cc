#include "exec/morsel.h"

#include <algorithm>

#include "common/status.h"

namespace aqe {

std::shared_ptr<const ScanDomain> ScanDomain::Make(
    std::vector<MorselRange> ranges, uint64_t table_rows) {
  std::sort(ranges.begin(), ranges.end(),
            [](const MorselRange& a, const MorselRange& b) {
              return a.begin < b.begin;
            });
  auto domain = std::make_shared<ScanDomain>();
  domain->table_rows = table_rows;
  for (const MorselRange& r : ranges) {
    const uint64_t begin = r.begin;
    const uint64_t end = std::min(r.end, table_rows);
    if (begin >= end) continue;
    if (!domain->ranges.empty() && begin <= domain->ranges.back().end) {
      domain->ranges.back().end = std::max(domain->ranges.back().end, end);
    } else {
      domain->ranges.push_back({begin, end});
    }
  }
  domain->prefix.reserve(domain->ranges.size() + 1);
  uint64_t selected = 0;
  domain->prefix.push_back(0);
  for (const MorselRange& r : domain->ranges) {
    selected += r.end - r.begin;
    domain->prefix.push_back(selected);
  }
  return domain;
}

size_t ScanDomain::RangeIndexFor(uint64_t v) const {
  AQE_CHECK(v < selected());
  // First prefix entry strictly greater than v belongs to the next range.
  auto it = std::upper_bound(prefix.begin(), prefix.end(), v);
  return static_cast<size_t>(it - prefix.begin()) - 1;
}

MorselQueue::MorselQueue(uint64_t total, uint64_t initial_size,
                         uint64_t max_size, uint64_t grow_every)
    : total_(total),
      initial_size_(std::max<uint64_t>(1, initial_size)),
      max_size_(std::max(initial_size_, max_size)),
      grow_every_(std::max<uint64_t>(1, grow_every)) {}

MorselQueue::MorselQueue(std::shared_ptr<const ScanDomain> domain,
                         uint64_t vbase, uint64_t vend, uint64_t initial_size,
                         uint64_t max_size, uint64_t grow_every)
    : MorselQueue(vend - vbase, initial_size, max_size, grow_every) {
  AQE_CHECK(domain != nullptr && vbase <= vend && vend <= domain->selected());
  domain_ = std::move(domain);
  vbase_ = vbase;
}

uint64_t MorselQueue::SizeAt(uint64_t offset) const {
  // The first `grow_every_` morsels have size s0 and cover [0, g*s0); the
  // next `grow_every_` have size 2*s0; and so on until max_size_.
  uint64_t size = initial_size_;
  uint64_t boundary = grow_every_ * size;
  while (offset >= boundary && size < max_size_) {
    size = std::min(size * 2, max_size_);
    boundary += grow_every_ * size;
  }
  return size;
}

bool MorselQueue::Next(MorselRange* out) {
  uint64_t begin = cursor_.load(std::memory_order_relaxed);
  uint64_t size;
  uint64_t phys_begin = 0;
  do {
    if (begin >= total_) return false;
    size = std::min(SizeAt(begin), total_ - begin);
    if (domain_ != nullptr) {
      // Clamp to the containing domain range *before* the claim so the
      // cursor advances by exactly the rows this morsel covers — a morsel
      // never spans two physical ranges and no virtual rows are lost.
      const uint64_t v = vbase_ + begin;
      const size_t idx = domain_->RangeIndexFor(v);
      const MorselRange& range = domain_->ranges[idx];
      const uint64_t offset_in_range = v - domain_->prefix[idx];
      size = std::min(size, (range.end - range.begin) - offset_in_range);
      phys_begin = range.begin + offset_in_range;
    }
  } while (!cursor_.compare_exchange_weak(begin, begin + size,
                                          std::memory_order_relaxed));
  if (domain_ != nullptr) {
    out->begin = phys_begin;
    out->end = phys_begin + size;
  } else {
    out->begin = begin;
    out->end = begin + size;
  }
  return true;
}

bool MorselQueue::Next(MorselBatch* out) {
  if (domain_ == nullptr) {
    MorselRange r;
    if (!Next(&r)) return false;
    out->ranges[0] = r;
    out->count = 1;
    out->rows = r.end - r.begin;
    return true;
  }
  uint64_t begin = cursor_.load(std::memory_order_relaxed);
  uint64_t size;
  size_t first_idx;
  do {
    if (begin >= total_) return false;
    size = std::min(SizeAt(begin), total_ - begin);
    const uint64_t v = vbase_ + begin;
    first_idx = domain_->RangeIndexFor(v);
    // Clamp the claim at the farthest boundary the batch can hold, so the
    // cursor advances by exactly the rows handed out below.
    const size_t last = std::min(first_idx + MorselBatch::kMaxRanges,
                                 domain_->ranges.size());
    size = std::min(size, domain_->prefix[last] - vbase_ - begin);
  } while (!cursor_.compare_exchange_weak(begin, begin + size,
                                          std::memory_order_relaxed));
  out->count = 0;
  out->rows = size;
  uint64_t v = vbase_ + begin;
  uint64_t left = size;
  for (size_t idx = first_idx; left > 0; ++idx) {
    const MorselRange& range = domain_->ranges[idx];
    const uint64_t offset_in_range = v - domain_->prefix[idx];
    const uint64_t take =
        std::min(left, (range.end - range.begin) - offset_in_range);
    out->ranges[out->count++] = {range.begin + offset_in_range,
                                 range.begin + offset_in_range + take};
    v += take;
    left -= take;
  }
  return true;
}

ShardedMorselQueue::ShardedMorselQueue(uint64_t total, int num_shards,
                                       uint64_t initial_size,
                                       uint64_t max_size, uint64_t grow_every)
    : total_(total) {
  AQE_CHECK(num_shards >= 1);
  const uint64_t n = static_cast<uint64_t>(num_shards);
  const uint64_t per_shard = total / n;
  uint64_t base = 0;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (uint64_t s = 0; s < n; ++s) {
    const uint64_t rows = s + 1 == n ? total - base : per_shard;
    shards_.push_back({base, std::make_unique<MorselQueue>(
                                 rows, initial_size, max_size, grow_every)});
    base += rows;
  }
}

ShardedMorselQueue::ShardedMorselQueue(std::shared_ptr<const ScanDomain> domain,
                                       int num_shards, uint64_t initial_size,
                                       uint64_t max_size, uint64_t grow_every)
    : total_(domain ? domain->selected() : 0) {
  AQE_CHECK(domain != nullptr && num_shards >= 1);
  const uint64_t n = static_cast<uint64_t>(num_shards);
  const uint64_t per_shard = total_ / n;
  uint64_t vbase = 0;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (uint64_t s = 0; s < n; ++s) {
    const uint64_t rows = s + 1 == n ? total_ - vbase : per_shard;
    // base = 0: a domain queue already emits physical coordinates.
    shards_.push_back(
        {0, std::make_unique<MorselQueue>(domain, vbase, vbase + rows,
                                          initial_size, max_size, grow_every)});
    vbase += rows;
  }
}

bool ShardedMorselQueue::NextFrom(size_t shard, MorselRange* out) {
  MorselRange local;
  if (!shards_[shard].queue->Next(&local)) return false;
  out->begin = shards_[shard].base + local.begin;
  out->end = shards_[shard].base + local.end;
  return true;
}

bool ShardedMorselQueue::NextFrom(size_t shard, MorselBatch* out) {
  if (!shards_[shard].queue->Next(out)) return false;
  const uint64_t base = shards_[shard].base;
  if (base != 0) {
    for (int i = 0; i < out->count; ++i) {
      out->ranges[i].begin += base;
      out->ranges[i].end += base;
    }
  }
  return true;
}

bool ShardedMorselQueue::Next(int shard, MorselRange* out) {
  AQE_CHECK(shard >= 0 && shard < num_shards());
  if (NextFrom(static_cast<size_t>(shard), out)) return true;
  // Own shard dry: steal from the shard with the most remaining rows.
  // Loop because a near-empty victim can be drained between the size scan
  // and the claim.
  for (;;) {
    size_t victim = shards_.size();
    uint64_t victim_remaining = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      uint64_t r = shards_[s].queue->remaining();
      if (r > victim_remaining) {
        victim_remaining = r;
        victim = s;
      }
    }
    if (victim == shards_.size()) return false;
    if (NextFrom(victim, out)) return true;
  }
}

bool ShardedMorselQueue::Next(int shard, MorselBatch* out) {
  AQE_CHECK(shard >= 0 && shard < num_shards());
  if (NextFrom(static_cast<size_t>(shard), out)) return true;
  for (;;) {
    size_t victim = shards_.size();
    uint64_t victim_remaining = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      uint64_t r = shards_[s].queue->remaining();
      if (r > victim_remaining) {
        victim_remaining = r;
        victim = s;
      }
    }
    if (victim == shards_.size()) return false;
    if (NextFrom(victim, out)) return true;
  }
}

uint64_t ShardedMorselQueue::remaining() const {
  uint64_t sum = 0;
  for (const Shard& shard : shards_) sum += shard.queue->remaining();
  return sum;
}

uint64_t ShardedMorselQueue::shard_remaining(int shard) const {
  AQE_CHECK(shard >= 0 && shard < num_shards());
  return shards_[static_cast<size_t>(shard)].queue->remaining();
}

}  // namespace aqe
