#include "exec/morsel.h"

#include <algorithm>

#include "common/status.h"

namespace aqe {

MorselQueue::MorselQueue(uint64_t total, uint64_t initial_size,
                         uint64_t max_size, uint64_t grow_every)
    : total_(total),
      initial_size_(std::max<uint64_t>(1, initial_size)),
      max_size_(std::max(initial_size_, max_size)),
      grow_every_(std::max<uint64_t>(1, grow_every)) {}

bool MorselQueue::Next(MorselRange* out) {
  // Size depends on how many morsels have been handed out so far: double
  // every `grow_every_` morsels until `max_size_`.
  uint64_t index = handed_out_.fetch_add(1, std::memory_order_relaxed);
  uint64_t size = initial_size_;
  for (uint64_t steps = index / grow_every_; steps > 0 && size < max_size_;
       --steps) {
    size *= 2;
  }
  size = std::min(size, max_size_);

  uint64_t begin = cursor_.fetch_add(size, std::memory_order_relaxed);
  if (begin >= total_) return false;
  out->begin = begin;
  out->end = std::min(begin + size, total_);
  return true;
}

}  // namespace aqe
