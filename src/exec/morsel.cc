#include "exec/morsel.h"

#include <algorithm>

#include "common/status.h"

namespace aqe {

MorselQueue::MorselQueue(uint64_t total, uint64_t initial_size,
                         uint64_t max_size, uint64_t grow_every)
    : total_(total),
      initial_size_(std::max<uint64_t>(1, initial_size)),
      max_size_(std::max(initial_size_, max_size)),
      grow_every_(std::max<uint64_t>(1, grow_every)) {}

uint64_t MorselQueue::SizeAt(uint64_t offset) const {
  // The first `grow_every_` morsels have size s0 and cover [0, g*s0); the
  // next `grow_every_` have size 2*s0; and so on until max_size_.
  uint64_t size = initial_size_;
  uint64_t boundary = grow_every_ * size;
  while (offset >= boundary && size < max_size_) {
    size = std::min(size * 2, max_size_);
    boundary += grow_every_ * size;
  }
  return size;
}

bool MorselQueue::Next(MorselRange* out) {
  uint64_t begin = cursor_.load(std::memory_order_relaxed);
  uint64_t size;
  do {
    if (begin >= total_) return false;
    size = SizeAt(begin);
  } while (!cursor_.compare_exchange_weak(begin, begin + size,
                                          std::memory_order_relaxed));
  out->begin = begin;
  out->end = std::min(begin + size, total_);  // last morsel may be partial
  return true;
}

ShardedMorselQueue::ShardedMorselQueue(uint64_t total, int num_shards,
                                       uint64_t initial_size,
                                       uint64_t max_size, uint64_t grow_every)
    : total_(total) {
  AQE_CHECK(num_shards >= 1);
  const uint64_t n = static_cast<uint64_t>(num_shards);
  const uint64_t per_shard = total / n;
  uint64_t base = 0;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (uint64_t s = 0; s < n; ++s) {
    const uint64_t rows = s + 1 == n ? total - base : per_shard;
    shards_.push_back({base, std::make_unique<MorselQueue>(
                                 rows, initial_size, max_size, grow_every)});
    base += rows;
  }
}

bool ShardedMorselQueue::NextFrom(size_t shard, MorselRange* out) {
  MorselRange local;
  if (!shards_[shard].queue->Next(&local)) return false;
  out->begin = shards_[shard].base + local.begin;
  out->end = shards_[shard].base + local.end;
  return true;
}

bool ShardedMorselQueue::Next(int shard, MorselRange* out) {
  AQE_CHECK(shard >= 0 && shard < num_shards());
  if (NextFrom(static_cast<size_t>(shard), out)) return true;
  // Own shard dry: steal from the shard with the most remaining rows.
  // Loop because a near-empty victim can be drained between the size scan
  // and the claim.
  for (;;) {
    size_t victim = shards_.size();
    uint64_t victim_remaining = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      uint64_t r = shards_[s].queue->remaining();
      if (r > victim_remaining) {
        victim_remaining = r;
        victim = s;
      }
    }
    if (victim == shards_.size()) return false;
    if (NextFrom(victim, out)) return true;
  }
}

uint64_t ShardedMorselQueue::remaining() const {
  uint64_t sum = 0;
  for (const Shard& shard : shards_) sum += shard.queue->remaining();
  return sum;
}

uint64_t ShardedMorselQueue::shard_remaining(int shard) const {
  AQE_CHECK(shard >= 0 && shard < num_shards());
  return shards_[static_cast<size_t>(shard)].queue->remaining();
}

}  // namespace aqe
