#ifndef AQE_EXEC_SCHEDULER_H_
#define AQE_EXEC_SCHEDULER_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aqe {

/// LEGACY SHIM — the gang-scheduled substrate the engine ran on before the
/// task scheduler (src/sched/) replaced it. Kept only as the baseline for
/// the differential adaptive-controller tests and the original unit tests;
/// new code should use TaskScheduler.
///
/// A fixed pool of worker threads reused across pipelines (thread creation
/// inside the measured query would distort the latency experiments).
/// RunParallel executes fn(thread_index) on every worker (index 0..n-1) and
/// returns when all are done. Each worker's runtime thread index is set so
/// thread-local runtime structures (aggregation tables, output buffers)
/// work.
class WorkerPool {
 public:
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Runs `fn` on all workers and blocks until every invocation returns.
  void RunParallel(const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int index);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(int)>* current_fn_ = nullptr;
  uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace aqe

#endif  // AQE_EXEC_SCHEDULER_H_
