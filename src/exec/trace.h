#ifndef AQE_EXEC_TRACE_H_
#define AQE_EXEC_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "exec/function_handle.h"

namespace aqe {

/// Records per-morsel and per-compilation events so the Fig 14 execution
/// trace (threads × time, colored by pipeline and mode) can be regenerated.
class TraceRecorder {
 public:
  enum class EventKind : uint8_t { kMorsel, kCompile, kPipelineStart };

  struct Event {
    EventKind kind;
    int thread;
    int pipeline;
    ExecMode mode;        ///< for kMorsel: mode used; for kCompile: target
    int64_t start_nanos;  ///< MonotonicNanos timeline
    int64_t end_nanos;
    uint64_t tuples;      ///< morsel size (0 for other events)
  };

  /// Marks the origin of the trace's relative timeline.
  void Start();

  void Record(const Event& event);

  /// All events, sorted by start time, with times relative to Start().
  std::vector<Event> Events() const;

  /// Renders an ASCII swimlane chart (one row per thread, one column per
  /// time bucket) like Fig 14. `width` = number of columns.
  std::string Render(int num_threads, int width = 100) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  int64_t origin_nanos_ = 0;
};

}  // namespace aqe

#endif  // AQE_EXEC_TRACE_H_
