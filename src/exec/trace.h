#ifndef AQE_EXEC_TRACE_H_
#define AQE_EXEC_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/function_handle.h"
#include "obs/tracer.h"

namespace aqe {

/// Records per-morsel and per-compilation events so the Fig 14 execution
/// trace (threads × time, colored by pipeline and mode) can be regenerated.
///
/// Compatibility shim over the lock-free obs substrate: the old
/// mutex-guarded event vector is gone; events land in per-thread TraceRings
/// (EngineTracer) and Record() is wait-free on the morsel hot path. The
/// `thread` field selects the lane, so callers must pass their runtime
/// thread index (workers and external-controller leases are unique per live
/// thread, satisfying the rings' single-producer contract). Rings are
/// sized so standalone-recorder runs retain every compile event alongside
/// full morsel history.
class TraceRecorder {
 public:
  enum class EventKind : uint8_t { kMorsel, kCompile, kPipelineStart };

  struct Event {
    EventKind kind;
    int thread;
    int pipeline;
    ExecMode mode;        ///< for kMorsel: mode used; for kCompile: target
    int64_t start_nanos;  ///< MonotonicNanos timeline
    int64_t end_nanos;
    uint64_t tuples;      ///< morsel size (0 for other events)
  };

  /// Events retained per thread lane (large enough that compile events
  /// survive long morsel streams).
  static constexpr size_t kRingEvents = 16384;

  TraceRecorder() : tracer_(kRingEvents) {}

  /// Marks the origin of the trace's relative timeline and clears prior
  /// events. Producers must be quiescent (between runs).
  void Start() { tracer_.Reset(); }

  void Record(const Event& event);

  /// All retained events, sorted by start time, with times relative to
  /// Start(). Events overwritten by ring wraparound are absent.
  std::vector<Event> Events() const;

  /// Renders an ASCII swimlane chart (one row per thread, one column per
  /// time bucket) like Fig 14. `width` = number of columns.
  std::string Render(int num_threads, int width = 100) const;

  /// The tracer underneath, for the obs exporters (Chrome-trace JSON).
  EngineTracer& tracer() { return tracer_; }
  const EngineTracer& tracer() const { return tracer_; }

 private:
  EngineTracer tracer_;
};

}  // namespace aqe

#endif  // AQE_EXEC_TRACE_H_
