#include "exec/scheduler.h"

#include "common/status.h"
#include "runtime/agg_hash_table.h"

namespace aqe {

WorkerPool::WorkerPool(int num_threads) {
  AQE_CHECK(num_threads >= 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::RunParallel(const std::function<void(int)>& fn) {
  std::unique_lock<std::mutex> lock(mutex_);
  current_fn_ = &fn;
  pending_ = num_threads();
  ++generation_;
  work_ready_.notify_all();
  work_done_.wait(lock, [this] { return pending_ == 0; });
  current_fn_ = nullptr;
}

void WorkerPool::WorkerLoop(int index) {
  runtime_internal::SetThreadIndex(index);
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      fn = current_fn_;
    }
    (*fn)(index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace aqe
