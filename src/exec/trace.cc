#include "exec/trace.h"

#include <algorithm>

#include "obs/export.h"

namespace aqe {

namespace {

TraceEventKind ToObsKind(TraceRecorder::EventKind kind) {
  switch (kind) {
    case TraceRecorder::EventKind::kMorsel:
      return TraceEventKind::kMorsel;
    case TraceRecorder::EventKind::kCompile:
      return TraceEventKind::kCompile;
    case TraceRecorder::EventKind::kPipelineStart:
      return TraceEventKind::kPipelineStart;
  }
  return TraceEventKind::kNone;
}

}  // namespace

void TraceRecorder::Record(const Event& event) {
  TraceEvent e;
  e.kind = ToObsKind(event.kind);
  e.start_nanos = event.start_nanos;
  e.end_nanos = event.end_nanos;
  e.payload = event.tuples;
  e.pipeline_id = static_cast<uint16_t>(event.pipeline);
  e.detail = static_cast<uint8_t>(event.mode);
  tracer_.Record(event.thread, e);
}

std::vector<TraceRecorder::Event> TraceRecorder::Events() const {
  const TraceSnapshot snap = tracer_.Snapshot();
  std::vector<Event> events;
  events.reserve(snap.total_recorded() - snap.total_dropped());
  for (const auto& lane : snap.lanes) {
    for (const TraceEvent& e : lane.events) {
      EventKind kind;
      switch (e.kind) {
        case TraceEventKind::kMorsel:
          kind = EventKind::kMorsel;
          break;
        case TraceEventKind::kCompile:
          kind = EventKind::kCompile;
          break;
        case TraceEventKind::kPipelineStart:
          kind = EventKind::kPipelineStart;
          break;
        default:
          continue;
      }
      events.push_back({kind, lane.lane, static_cast<int>(e.pipeline_id),
                        static_cast<ExecMode>(e.detail),
                        e.start_nanos - snap.origin_nanos,
                        e.end_nanos - snap.origin_nanos, e.payload});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              return a.start_nanos < b.start_nanos;
            });
  return events;
}

std::string TraceRecorder::Render(int num_threads, int width) const {
  return RenderTextTrace(tracer_.Snapshot(), num_threads, width);
}

}  // namespace aqe
