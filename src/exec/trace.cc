#include "exec/trace.h"

#include <algorithm>

#include "common/status.h"
#include "common/timer.h"

namespace aqe {

void TraceRecorder::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  origin_nanos_ = MonotonicNanos();
}

void TraceRecorder::Record(const Event& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::vector<TraceRecorder::Event> TraceRecorder::Events() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  for (Event& e : events) {
    e.start_nanos -= origin_nanos_;
    e.end_nanos -= origin_nanos_;
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              return a.start_nanos < b.start_nanos;
            });
  return events;
}

std::string TraceRecorder::Render(int num_threads, int width) const {
  std::vector<Event> events = Events();
  if (events.empty()) return "(empty trace)\n";
  int64_t horizon = 0;
  for (const Event& e : events) horizon = std::max(horizon, e.end_nanos);
  if (horizon == 0) horizon = 1;

  // One lane per thread. Morsels print the pipeline digit (lowercase if
  // interpreted, uppercase if compiled); compilations print '#'.
  std::vector<std::string> lanes(static_cast<size_t>(num_threads),
                                 std::string(static_cast<size_t>(width), '.'));
  for (const Event& e : events) {
    if (e.thread < 0 || e.thread >= num_threads) continue;
    int from = static_cast<int>(e.start_nanos * width / horizon);
    int to = static_cast<int>(e.end_nanos * width / horizon);
    from = std::clamp(from, 0, width - 1);
    to = std::clamp(to, from, width - 1);
    char symbol;
    if (e.kind == EventKind::kCompile) {
      symbol = '#';
    } else if (e.kind == EventKind::kPipelineStart) {
      continue;
    } else {
      char digit = static_cast<char>('0' + e.pipeline % 10);
      symbol = e.mode == ExecMode::kBytecode
                   ? digit
                   : static_cast<char>('A' + e.pipeline % 10);
    }
    for (int c = from; c <= to; ++c) {
      lanes[static_cast<size_t>(e.thread)][static_cast<size_t>(c)] = symbol;
    }
  }
  std::string out;
  out += "time ->  (digits: interpreted morsels by pipeline; letters: "
         "compiled morsels; '#': compilation)\n";
  char label[32];
  for (int t = 0; t < num_threads; ++t) {
    std::snprintf(label, sizeof(label), "thread %d |", t);
    out += label;
    out += lanes[static_cast<size_t>(t)];
    out += "|\n";
  }
  double total_ms = static_cast<double>(horizon) / 1e6;
  std::snprintf(label, sizeof(label), "total: %.2f ms\n", total_ms);
  out += label;
  return out;
}

}  // namespace aqe
