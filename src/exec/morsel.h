#ifndef AQE_EXEC_MORSEL_H_
#define AQE_EXEC_MORSEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace aqe {

/// A morsel: the smallest unit of work (§III-B), a range of row indices.
struct MorselRange {
  uint64_t begin;
  uint64_t end;
};

/// Hands out morsels of a pipeline's input domain [0, total) to worker
/// threads from a single atomic cursor: whichever thread finishes first
/// grabs the next morsel, so no thread imbalance can build up (§III-A).
///
/// Morsel sizes grow dynamically from `initial_size` to `max_size`
/// (doubling after every `grow_every` morsels of the current size), which
/// gives the adaptive controller many early sample points for its rate
/// estimates (§III-C: "dynamically growing morsel size, yielding a higher
/// number of sample points"). The size is a pure function of the cursor
/// position, so the sequence of morsel boundaries is deterministic no
/// matter how many threads claim concurrently.
class MorselQueue {
 public:
  explicit MorselQueue(uint64_t total, uint64_t initial_size = 1024,
                       uint64_t max_size = 16384, uint64_t grow_every = 8);

  /// Claims the next morsel. Returns false when the domain is exhausted.
  bool Next(MorselRange* out);

  uint64_t total() const { return total_; }

  /// Rows already handed out (an upper bound on rows processed).
  uint64_t dispatched() const {
    return std::min(cursor_.load(std::memory_order_relaxed), total_);
  }

  /// Rows not yet handed out — the `n` of Fig 7.
  uint64_t remaining() const { return total_ - dispatched(); }

  /// The morsel size used at cursor position `offset` (doubles after every
  /// `grow_every` morsels of each size, clamped at `max_size`). Exposed so
  /// the growth schedule is unit-testable.
  uint64_t SizeAt(uint64_t offset) const;

 private:
  uint64_t total_;
  uint64_t initial_size_;
  uint64_t max_size_;
  uint64_t grow_every_;
  std::atomic<uint64_t> cursor_{0};
};

/// A MorselQueue sharded into per-worker contiguous ranges with stealing
/// across shards: worker w claims from shard w (preserving cache/NUMA
/// locality and avoiding a single hammered cursor) and falls back to the
/// richest other shard when its own runs dry, so the no-imbalance property
/// of the flat queue is kept. Each shard runs the dynamic growth schedule
/// independently, so early pipelines still produce many small sample
/// morsels per worker.
class ShardedMorselQueue {
 public:
  ShardedMorselQueue(uint64_t total, int num_shards,
                     uint64_t initial_size = 1024, uint64_t max_size = 16384,
                     uint64_t grow_every = 8);

  /// Claims a morsel, preferring `shard` and stealing from the shard with
  /// the most remaining rows otherwise. Returns false when every shard is
  /// exhausted.
  bool Next(int shard, MorselRange* out);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  uint64_t total() const { return total_; }
  uint64_t remaining() const;

  /// Rows remaining in one shard (steal-victim selection, tests).
  uint64_t shard_remaining(int shard) const;

 private:
  struct Shard {
    uint64_t base;  ///< global row offset of this shard's subdomain
    std::unique_ptr<MorselQueue> queue;
  };

  bool NextFrom(size_t shard, MorselRange* out);

  uint64_t total_;
  std::vector<Shard> shards_;
};

}  // namespace aqe

#endif  // AQE_EXEC_MORSEL_H_
