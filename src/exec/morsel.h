#ifndef AQE_EXEC_MORSEL_H_
#define AQE_EXEC_MORSEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace aqe {

/// A morsel: the smallest unit of work (§III-B), a range of row indices.
struct MorselRange {
  uint64_t begin;
  uint64_t end;
};

/// One claim's worth of work: the physical row ranges covered by a single
/// cursor advance. Dense scans always yield one range. A pruned scan's
/// domain can be fragmented into clusters far smaller than the morsel
/// schedule (a selective text-index scan keeps ~3-row islands); claiming
/// them one range at a time would pay the full per-claim bookkeeping (CAS,
/// rate sample, trace event, handle dispatch) per island. A batch claims
/// one schedule-sized virtual window spanning up to kMaxRanges ranges, so
/// that bookkeeping amortizes across the fragments while the claimed row
/// count — the checkpoint granularity — stays bounded by the schedule.
struct MorselBatch {
  static constexpr int kMaxRanges = 32;
  MorselRange ranges[kMaxRanges];
  int count = 0;
  uint64_t rows = 0;  ///< total rows across ranges
};

/// The surviving portion of a scan after index/zone-map pruning: a sorted,
/// disjoint set of physical row ranges plus prefix sums that map a *virtual*
/// position (0 .. selected) onto a physical row. Morsel queues run their
/// cursor in virtual coordinates — the growth schedule, remaining() and the
/// cost model all see only the rows that will actually be scheduled — and
/// translate each claim back to physical rows. Shared (immutable) between
/// all shards of one pipeline and, via the pruning cache, between repeated
/// runs of the same plan fingerprint.
struct ScanDomain {
  std::vector<MorselRange> ranges;  ///< sorted, disjoint, non-empty
  /// prefix[i] = selected rows before ranges[i]; prefix.back() = selected().
  std::vector<uint64_t> prefix;
  uint64_t table_rows = 0;  ///< unpruned scan cardinality

  /// Normalizes `ranges` (sorts, merges overlapping/adjacent, drops empty)
  /// and builds the prefix sums.
  static std::shared_ptr<const ScanDomain> Make(std::vector<MorselRange> ranges,
                                                uint64_t table_rows);

  uint64_t selected() const { return prefix.empty() ? 0 : prefix.back(); }

  /// Index of the range containing virtual position `v` (v < selected()).
  size_t RangeIndexFor(uint64_t v) const;
};

/// Hands out morsels of a pipeline's input domain [0, total) to worker
/// threads from a single atomic cursor: whichever thread finishes first
/// grabs the next morsel, so no thread imbalance can build up (§III-A).
///
/// Morsel sizes grow dynamically from `initial_size` to `max_size`
/// (doubling after every `grow_every` morsels of the current size), which
/// gives the adaptive controller many early sample points for its rate
/// estimates (§III-C: "dynamically growing morsel size, yielding a higher
/// number of sample points"). The size is a pure function of the cursor
/// position, so the sequence of morsel boundaries is deterministic no
/// matter how many threads claim concurrently.
///
/// With a ScanDomain attached the cursor runs over a virtual window
/// [vbase, vbase + total) of the domain's selected rows and each claim is
/// translated to physical coordinates; a morsel never spans two domain
/// ranges (its size is additionally clamped to the distance to the next
/// range boundary), so workers always receive one contiguous row range.
class MorselQueue {
 public:
  explicit MorselQueue(uint64_t total, uint64_t initial_size = 1024,
                       uint64_t max_size = 16384, uint64_t grow_every = 8);

  /// Pruned-scan mode: serves the domain's virtual rows [vbase, vend) in
  /// physical coordinates.
  MorselQueue(std::shared_ptr<const ScanDomain> domain, uint64_t vbase,
              uint64_t vend, uint64_t initial_size = 1024,
              uint64_t max_size = 16384, uint64_t grow_every = 8);

  /// Claims the next morsel. Returns false when the domain is exhausted.
  /// A domain-mode claim is clamped at the containing range's boundary, so
  /// fragmented domains should prefer the batch overload.
  bool Next(MorselRange* out);

  /// Claims the next batch: one schedule-sized window of (virtual) rows
  /// covering up to MorselBatch::kMaxRanges physical ranges. Dense mode
  /// fills exactly one range.
  bool Next(MorselBatch* out);

  uint64_t total() const { return total_; }

  /// Rows already handed out (an upper bound on rows processed). Virtual
  /// (selected) rows when a ScanDomain is attached.
  uint64_t dispatched() const {
    return std::min(cursor_.load(std::memory_order_relaxed), total_);
  }

  /// Rows not yet handed out — the `n` of Fig 7. Selected rows only when
  /// pruned, so rate extrapolation sees the work that will actually run.
  uint64_t remaining() const { return total_ - dispatched(); }

  /// The morsel size used at cursor position `offset` (doubles after every
  /// `grow_every` morsels of each size, clamped at `max_size`). Exposed so
  /// the growth schedule is unit-testable.
  uint64_t SizeAt(uint64_t offset) const;

 private:
  uint64_t total_;
  uint64_t initial_size_;
  uint64_t max_size_;
  uint64_t grow_every_;
  std::shared_ptr<const ScanDomain> domain_;  ///< null = dense [0, total)
  uint64_t vbase_ = 0;  ///< domain virtual offset of cursor position 0
  std::atomic<uint64_t> cursor_{0};
};

/// A MorselQueue sharded into per-worker contiguous ranges with stealing
/// across shards: worker w claims from shard w (preserving cache/NUMA
/// locality and avoiding a single hammered cursor) and falls back to the
/// richest other shard when its own runs dry, so the no-imbalance property
/// of the flat queue is kept. Each shard runs the dynamic growth schedule
/// independently, so early pipelines still produce many small sample
/// morsels per worker.
class ShardedMorselQueue {
 public:
  ShardedMorselQueue(uint64_t total, int num_shards,
                     uint64_t initial_size = 1024, uint64_t max_size = 16384,
                     uint64_t grow_every = 8);

  /// Pruned-morsel-set constructor: shards the domain's *selected* rows
  /// evenly (contiguous virtual windows per shard; all shards share the one
  /// immutable domain). Pruned rows never reach any shard, so they are never
  /// scheduled.
  ShardedMorselQueue(std::shared_ptr<const ScanDomain> domain, int num_shards,
                     uint64_t initial_size = 1024, uint64_t max_size = 16384,
                     uint64_t grow_every = 8);

  /// Claims a morsel, preferring `shard` and stealing from the shard with
  /// the most remaining rows otherwise. Returns false when every shard is
  /// exhausted.
  bool Next(int shard, MorselRange* out);

  /// Batch counterpart (see MorselQueue::Next(MorselBatch*)).
  bool Next(int shard, MorselBatch* out);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Selected rows when pruned (what the cost model should extrapolate on).
  uint64_t total() const { return total_; }
  uint64_t remaining() const;

  /// Rows remaining in one shard (steal-victim selection, tests).
  uint64_t shard_remaining(int shard) const;

 private:
  struct Shard {
    uint64_t base;  ///< global row offset of this shard's subdomain
    std::unique_ptr<MorselQueue> queue;
  };

  bool NextFrom(size_t shard, MorselRange* out);
  bool NextFrom(size_t shard, MorselBatch* out);

  uint64_t total_;
  std::vector<Shard> shards_;
};

}  // namespace aqe

#endif  // AQE_EXEC_MORSEL_H_
