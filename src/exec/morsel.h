#ifndef AQE_EXEC_MORSEL_H_
#define AQE_EXEC_MORSEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace aqe {

/// A morsel: the smallest unit of work (§III-B), a range of row indices.
struct MorselRange {
  uint64_t begin;
  uint64_t end;
};

/// Hands out morsels of a pipeline's input domain [0, total) to worker
/// threads. A single atomic cursor implements work stealing: whichever
/// thread finishes first grabs the next morsel, so no thread imbalance can
/// build up (§III-A).
///
/// Morsel sizes grow dynamically from `initial_size` to `max_size`
/// (doubling every `grow_every` morsels), which gives the adaptive
/// controller many early sample points for its rate estimates (§III-C:
/// "dynamically growing morsel size, yielding a higher number of sample
/// points").
class MorselQueue {
 public:
  explicit MorselQueue(uint64_t total, uint64_t initial_size = 1024,
                       uint64_t max_size = 16384, uint64_t grow_every = 8);

  /// Claims the next morsel. Returns false when the domain is exhausted.
  bool Next(MorselRange* out);

  uint64_t total() const { return total_; }

  /// Rows already handed out (an upper bound on rows processed).
  uint64_t dispatched() const {
    return std::min(cursor_.load(std::memory_order_relaxed), total_);
  }

  /// Rows not yet handed out — the `n` of Fig 7.
  uint64_t remaining() const { return total_ - dispatched(); }

 private:
  uint64_t total_;
  uint64_t initial_size_;
  uint64_t max_size_;
  uint64_t grow_every_;
  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> handed_out_{0};
};

}  // namespace aqe

#endif  // AQE_EXEC_MORSEL_H_
