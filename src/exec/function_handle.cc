#include "exec/function_handle.h"

#include "common/status.h"

namespace aqe {

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kBytecode: return "bytecode";
    case ExecMode::kUnoptimized: return "unoptimized";
    case ExecMode::kOptimized: return "optimized";
  }
  AQE_UNREACHABLE("bad ExecMode");
}

FunctionHandle::FunctionHandle(WorkerFn interpreter, const void* program)
    : fn_(interpreter), extra_(program) {
  AQE_CHECK(interpreter != nullptr);
}

void FunctionHandle::SetCompiled(WorkerFn fn, ExecMode mode) {
  AQE_CHECK(fn != nullptr && mode != ExecMode::kBytecode);
  // Machine code ignores the extra argument; leaving the program pointer in
  // place keeps the swap a single atomic store.
  fn_.store(fn, std::memory_order_release);
  mode_.store(mode, std::memory_order_release);
}

}  // namespace aqe
