#ifndef AQE_ENGINE_QUERY_ENGINE_H_
#define AQE_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "adaptive/controller.h"
#include "exec/scheduler.h"
#include "exec/trace.h"
#include "plan/plan.h"
#include "vm/translator.h"

namespace aqe {

/// Which execution engine runs the pipelines.
enum class EngineKind {
  kCompiled,    ///< generated code: bytecode VM / JIT / adaptive (§III-IV)
  kVolcano,     ///< tuple-at-a-time baseline (PostgreSQL stand-in)
  kVectorized,  ///< column-at-a-time baseline (MonetDB stand-in)
  kNaiveIr,     ///< direct LLVM-IR interpretation (Fig 2's "LLVM IR")
};

const char* EngineKindName(EngineKind kind);

struct QueryRunOptions {
  EngineKind engine = EngineKind::kCompiled;
  /// Mode policy for kCompiled (ignored by the baselines).
  ExecutionStrategy strategy = ExecutionStrategy::kAdaptive;
  CostModelParams cost_model;
  TranslatorOptions translator;
  /// Interpreter loop for bytecode execution (kDefault = compile-time
  /// AQE_VM_DISPATCH selection; both engines give bit-identical results).
  VmDispatch vm_dispatch = VmDispatch::kDefault;
  TraceRecorder* trace = nullptr;
  /// Baselines and kNaiveIr always run single-threaded.
  bool single_threaded = false;
};

/// Per-pipeline execution report.
struct PipelineReport {
  std::string name;
  uint64_t tuples = 0;
  uint64_t instructions = 0;       ///< LLVM instructions of the worker
  double codegen_millis = 0;       ///< IR generation
  double translate_millis = 0;     ///< bytecode translation (§IV-B)
  uint32_t register_file_bytes = 0;
  double exec_seconds = 0;         ///< pipeline wall time (incl. switches)
  ExecMode final_mode = ExecMode::kBytecode;
  std::vector<std::pair<ExecMode, double>> compiles;  ///< mode switches
};

struct QueryRunResult {
  std::vector<std::vector<int64_t>> rows;  ///< final result
  double total_seconds = 0;                ///< whole query wall time
  std::vector<PipelineReport> pipelines;
  double codegen_millis_total = 0;
  double translate_millis_total = 0;
  double compile_millis_total = 0;  ///< machine-code generation
};

/// Per-pipeline compilation-cost measurements (Table I / Fig 6 / Fig 15),
/// without executing the query.
struct PipelineCompileCosts {
  std::string name;
  uint64_t instructions = 0;
  double codegen_millis = 0;
  double bytecode_millis = 0;
  double unopt_millis = 0;
  double opt_millis = 0;
  uint32_t register_file_bytes = 0;
  uint64_t bytecode_ops = 0;  ///< fixed-length VM instructions emitted
  uint64_t fused_ops = 0;     ///< LLVM instructions folded by macro fusion
  uint64_t fused_cmp_branches = 0;  ///< compare-and-branch superinstructions
};

/// The public facade: executes QueryPrograms against a catalog under any
/// engine/mode combination. Owns the worker pool; one engine can run many
/// queries.
class QueryEngine {
 public:
  QueryEngine(const Catalog* catalog, int num_threads = 4);
  ~QueryEngine();

  int num_threads() const;

  /// Runs a query and returns its result plus instrumentation.
  QueryRunResult Run(const QueryProgram& program,
                     const QueryRunOptions& options = {});

  /// Measures code generation / bytecode translation / machine-code
  /// compilation costs for every pipeline of `program`. `measure_jit`
  /// can be disabled when only translation times matter (huge generated
  /// queries, Fig 15, where optimized compilation takes minutes).
  std::vector<PipelineCompileCosts> MeasureCompileCosts(
      const QueryProgram& program, bool measure_unopt = true,
      bool measure_opt = true,
      const TranslatorOptions& translator_options = {});

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace aqe

#endif  // AQE_ENGINE_QUERY_ENGINE_H_
