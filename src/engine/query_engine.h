#ifndef AQE_ENGINE_QUERY_ENGINE_H_
#define AQE_ENGINE_QUERY_ENGINE_H_

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/controller.h"
#include "cache/artifact_cache.h"
#include "exec/trace.h"
#include "index/access_path.h"
#include "obs/memory_tracker.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "obs/regression.h"
#include "obs/tracer.h"
#include "plan/plan.h"
#include "vm/translator.h"

namespace aqe {

/// Which execution engine runs the pipelines.
enum class EngineKind {
  kCompiled,    ///< generated code: bytecode VM / JIT / adaptive (§III-IV)
  kVolcano,     ///< tuple-at-a-time baseline (PostgreSQL stand-in)
  kVectorized,  ///< column-at-a-time baseline (MonetDB stand-in)
  kNaiveIr,     ///< direct LLVM-IR interpretation (Fig 2's "LLVM IR")
};

const char* EngineKindName(EngineKind kind);

struct QueryRunOptions {
  EngineKind engine = EngineKind::kCompiled;
  /// Mode policy for kCompiled (ignored by the baselines).
  ExecutionStrategy strategy = ExecutionStrategy::kAdaptive;
  CostModelParams cost_model;
  TranslatorOptions translator;
  /// Interpreter loop for bytecode execution (kDefault = compile-time
  /// AQE_VM_DISPATCH selection; both engines give bit-identical results).
  VmDispatch vm_dispatch = VmDispatch::kDefault;
  TraceRecorder* trace = nullptr;
  /// Strictly one thread executes the query's pipelines (no morsel helper
  /// tasks, compilations inline). Baselines and kNaiveIr are single-
  /// threaded by construction; set this for kCompiled to reproduce the
  /// paper's single-threaded latency figures.
  bool single_threaded = false;
  /// First adaptive cost-model evaluation happens this long after pipeline
  /// start (paper: 1 ms). Tests lower it to force early mode switches.
  double adaptive_first_eval_seconds = 1e-3;
  /// Consult the engine's plan-keyed artifact cache before translating /
  /// compiling, and publish artifacts back (kCompiled only). Benches that
  /// measure cold compilation costs switch it off.
  bool use_artifact_cache = true;
  /// Weighted-fair class of this query (0..kNumTaskClasses-1; out-of-range
  /// values are clamped). The class scopes both admission (per-class
  /// weighted-fair release order, see QueryEngine::set_class_weight) and
  /// execution (every task the query spawns — stages, morsel helpers,
  /// adaptive compiles — runs in the class's scheduler lane). Use a
  /// high-weight class for latency-sensitive tenants so their short
  /// queries overtake saturating low-class scans.
  int query_class = 0;
  /// Index/zone-map scan pruning (src/index/): evaluate each compiled
  /// pipeline's filter conjuncts against the scanned table's indexes and
  /// schedule only the morsel ranges that can match (kCompiled only; the
  /// baselines always full-scan, which is what the differential tests
  /// compare against). The decision is cached per plan fingerprint.
  bool scan_pruning = true;
  /// Build a QueryProfile (EXPLAIN ANALYZE input) from the trace rings when
  /// the query completes and attach it to the result — Submit() users get
  /// it on the future. Off by default: profiling snapshots every ring once
  /// per query, which is measurable on sub-millisecond queries (the
  /// profile-overhead perf floor gates the on-cost, not the default path).
  bool collect_profile = false;
};

/// Per-pipeline execution report.
struct PipelineReport {
  std::string name;
  /// The plan's pipeline index — what morsel trace events carry as
  /// pipeline_id (report order is stage order, which may differ).
  uint32_t pipeline_index = 0;
  uint64_t tuples = 0;
  uint64_t instructions = 0;       ///< LLVM instructions of the worker
  double codegen_millis = 0;       ///< IR generation
  double translate_millis = 0;     ///< bytecode translation (§IV-B)
  uint32_t register_file_bytes = 0;
  double exec_seconds = 0;         ///< pipeline wall time (incl. switches)
  /// exec_seconds minus compile time that blocked the pipeline's controller
  /// thread — pure execution, comparable between cold runs and cache hits.
  double exec_only_seconds = 0;
  /// Mode of the first morsel: kBytecode on a cold adaptive start, the best
  /// cached mode when the artifact cache seeded the pipeline's handle.
  ExecMode initial_mode = ExecMode::kBytecode;
  ExecMode final_mode = ExecMode::kBytecode;
  bool artifact_cache_hit = false;  ///< bytecode or machine code reused
  std::vector<std::pair<ExecMode, double>> compiles;  ///< mode switches
  /// §III-C compile decisions with predicted vs realized durations
  /// (adaptive runs on the task scheduler; empty otherwise).
  std::vector<ModeSwitchRecord> mode_switches;
  /// Scan-pruning outcome (access path chosen, rows/blocks pruned,
  /// posting-list work). `pruning.analyzed` is false when the source table
  /// has no indexes or pruning was disabled; `tuples` above is the
  /// *scheduled* (post-pruning) row count.
  PruningStats pruning;
  /// The per-fingerprint pruning decision was reused from the artifact
  /// cache instead of re-analyzed.
  bool pruning_cache_hit = false;
};

struct QueryRunResult {
  std::vector<std::vector<int64_t>> rows;  ///< final result
  double total_seconds = 0;                ///< whole query wall time
  /// Admission-to-first-slice wait: how long the query sat in the engine's
  /// admission queue plus the scheduler's deque before its first task slice
  /// ran. Makes fairness and cache-aware overtaking observable per query
  /// (total_seconds - queue_wait_seconds ≈ service time).
  double queue_wait_seconds = 0;
  std::vector<PipelineReport> pipelines;
  double codegen_millis_total = 0;
  double translate_millis_total = 0;
  double compile_millis_total = 0;  ///< machine-code generation
  /// Pure execution: pipeline run time (minus controller-blocking compiles)
  /// plus engine steps. Translation/compilation are reported separately
  /// above — on a warm artifact-cache hit they are ~0 while this stays.
  double exec_seconds_total = 0;
  /// Peak tracked allocation across the query's lifetime (hash tables,
  /// output buffers, binding arenas, cloned programs). Always populated —
  /// memory accounting is on for every engine query.
  uint64_t peak_memory_bytes = 0;
  /// Set when the query ran with QueryRunOptions::collect_profile: the
  /// trace-ring fold ExplainAnalyze(result) renders. shared_ptr keeps the
  /// result copyable and lets the engine retain the last 64 profiles for
  /// the stats server's /profiles endpoint.
  std::shared_ptr<const QueryProfile> profile;
};

/// Per-pipeline compilation-cost measurements (Table I / Fig 6 / Fig 15),
/// without executing the query.
struct PipelineCompileCosts {
  std::string name;
  uint64_t instructions = 0;
  double codegen_millis = 0;
  double bytecode_millis = 0;
  double unopt_millis = 0;
  double opt_millis = 0;
  uint32_t register_file_bytes = 0;
  uint64_t bytecode_ops = 0;  ///< fixed-length VM instructions emitted
  uint64_t fused_ops = 0;     ///< LLVM instructions folded by macro fusion
  uint64_t fused_cmp_branches = 0;  ///< compare-and-branch superinstructions
  uint64_t fused_cmp_branch_imms = 0;  ///< ...with a literal-pool immediate
  uint64_t runtime_calls = 0;  ///< per-tuple opaque runtime calls (loop body)
  /// Runtime-call-density cost-model input (adaptive/cost_model.h):
  /// fraction of per-tuple time the model attributes to runtime calls.
  double runtime_call_fraction = 0;
};

/// Engine-level construction options (the two-arg constructor covers the
/// common case; this struct is for the optional subsystems).
struct QueryEngineOptions {
  int num_threads = 4;
  /// >= 0 starts the observability HTTP server (obs/stats_server.h) on
  /// 127.0.0.1:<stats_port> serving GET /metrics (Prometheus text),
  /// /trace.json (Chrome trace), /profiles (last 64 QueryProfiles +
  /// anomalies) and /profile (continuous-profiler collapsed stacks). 0
  /// binds an ephemeral port — read it back via QueryEngine::stats_port().
  /// -1 (default): no server, no socket.
  int stats_port = -1;
  /// Continuous-profiler sampling rate. -1 (default): the AQE_PROFILE_HZ
  /// env override, or 97 Hz (prime, so the sampler never phase-locks with
  /// msec-periodic engine activity). 0 disables the sampler thread.
  int profile_hz = -1;
};

/// The public facade: executes QueryPrograms against a catalog under any
/// engine/mode combination. Owns a TaskScheduler of `num_threads` workers;
/// one engine serves many concurrent queries — every query, morsel and
/// adaptive JIT compilation is a task on the shared scheduler (see
/// src/sched/DESIGN.md).
class QueryEngine {
 public:
  QueryEngine(const Catalog* catalog, int num_threads = 4);
  QueryEngine(const Catalog* catalog, const QueryEngineOptions& options);
  ~QueryEngine();

  int num_threads() const;

  /// Bound port of the stats server, or -1 when it is disabled / failed to
  /// bind. The server is stopped in the engine destructor.
  int stats_port() const;

  /// Enqueues a query for execution and returns a future for its result.
  /// Thread-safe: N clients share one engine. An admission layer caps the
  /// number of queries in flight; excess queries wait in per-class queues
  /// released weighted-fair (FIFO within a class, with bounded cache-aware
  /// overtaking: a fully-cached plan may jump ahead of cold ones since it
  /// will finish in a fraction of the time). Pipelines execute as
  /// resumable state machines that yield at morsel boundaries, so a long
  /// scan never blocks a worker against later-submitted short queries.
  /// `program` (and `options.trace`, if set) must stay alive until the
  /// future is ready. Destroying the engine abandons queued queries: their
  /// futures throw std::future_error (broken_promise) — they never hang.
  std::future<QueryRunResult> Submit(const QueryProgram& program,
                                     const QueryRunOptions& options = {});

  /// Runs a query synchronously: Submit(...).get(). Must not be called
  /// from inside one of this engine's own tasks (it would deadlock waiting
  /// on the worker it occupies).
  QueryRunResult Run(const QueryProgram& program,
                     const QueryRunOptions& options = {});

  /// Caps concurrently executing queries (admission control). Default:
  /// max(2, 2 * num_threads). Thread-safe; affects queries submitted later.
  void set_max_concurrent_queries(int max_queries);

  /// Weighted-fair share of a query class (default 1), applied at both
  /// layers: admission releases waiting queries class-by-class in
  /// proportion to weight (charging each query its cache-estimated service
  /// time, so a fully-cached plan overtakes cold ones), and the task
  /// scheduler serves the class's slices in the same proportion.
  /// Thread-safe; takes effect immediately.
  void set_class_weight(int query_class, int weight);

  /// Per-class peak-memory budget in bytes (0 = unlimited, the default).
  /// Enforced twice: at Submit, a fingerprint whose cached peak-memory
  /// estimate exceeds the budget is rejected before it queues; at runtime,
  /// a query whose tracked allocation crosses the budget fails at the next
  /// slice boundary. Both paths fail the query's future with a typed
  /// MemoryBudgetExceeded (obs/memory_tracker.h); other classes are
  /// unaffected. Thread-safe; takes effect for queries submitted later.
  void set_class_memory_budget(int query_class, uint64_t bytes);

  /// Collapsed-stack text of the continuous profiler (flamegraph.pl /
  /// speedscope input): one "frame;frame;... count" line per distinct
  /// (plan, pipeline, mode, activity) stack, plus engine idle time. Also
  /// served at GET /profile when the stats server is on. Thread-safe.
  std::string CollapsedStacks() const;

  /// One consistent snapshot of every engine metric, by name: counters and
  /// per-class latency histograms from the metrics registry
  /// (admission.queue_wait_us.classN, engine.exec_latency_us.classN,
  /// jit.compile_us, exec.morsels, ...), folded together with the
  /// scheduler's slice counters, the artifact-cache counters, the
  /// translator's cumulative fusion counters, the VM's per-opcode dispatch
  /// counts (vm.op.*, populated while opcode profiling is on) and the trace
  /// rings' recorded/dropped totals. Thread-safe; see src/obs/DESIGN.md.
  MetricsSnapshot ObservabilitySnapshot() const;

  /// Chrome-trace/Perfetto JSON of the engine's per-worker trace rings:
  /// one track per worker, spans for admission waits / task slices /
  /// morsels / compiles, instants for mode-switch decisions and cache
  /// events, one flow per query. Load in chrome://tracing or
  /// ui.perfetto.dev. Thread-safe (concurrent queries keep recording).
  std::string ExportChromeTrace() const;

  /// ASCII swimlane dump of the trace rings (threads × time, Fig 14
  /// style). Thread-safe.
  std::string RenderTrace(int width = 100) const;

  /// Zeroes every resettable statistic: metric counters and histograms,
  /// trace rings, artifact-cache counters (residency untouched), VM
  /// per-opcode counts and translator counters. Phase-delta hygiene for
  /// benches; gauges and the scheduler's lifetime slice counters persist.
  void ResetObservabilityStats();

  /// Routes interpreted execution through the counting dispatch loop so
  /// ObservabilitySnapshot() reports per-opcode counters (vm.op.*). Off by
  /// default (AQE_VM_PROFILE also enables it, with an atexit dump).
  /// Process-wide, like the counters themselves.
  void set_vm_opcode_profiling(bool enabled);

  /// The engine's always-on tracer (tests and custom exporters; prefer
  /// ExportChromeTrace / RenderTrace).
  const EngineTracer& tracer() const;

  /// Counters and resident footprint of the plan-keyed artifact cache
  /// (hits/misses/evictions; see src/cache/DESIGN.md). Thread-safe.
  ArtifactCacheStats artifact_cache_stats() const;

  /// Read-only view of the artifact cache for introspection: Peek entries
  /// by ArtifactCacheKey (cache/fingerprint.h) to inspect per-pipeline
  /// artifacts, best modes and observed morsel stats.
  const ArtifactCache& artifact_cache() const;

  /// LRU byte budget of the artifact cache (default 256 MiB). Shrinking it
  /// evicts immediately; queries mid-flight keep their artifacts alive via
  /// shared ownership. Thread-safe.
  void set_artifact_cache_byte_budget(uint64_t bytes);

  /// Evicts every artifact-cache entry (ops flush; also how tests force
  /// the eviction->anomaly path deterministically). In-flight queries keep
  /// their artifacts alive via shared ownership. Thread-safe.
  void ClearArtifactCache();

  /// Regression-sentinel sensitivity: a completed query is anomalous when
  /// its service time exceeds `factor` x the fingerprint's EWMA (and
  /// deviates beyond the MAD guard). Default 4.0. Thread-safe.
  void set_anomaly_deviation_factor(double factor);

  /// The regression sentinel's recent anomaly ring (newest last), for
  /// tests and the /profiles endpoint. Thread-safe.
  std::vector<AnomalyRecord> RecentAnomalies() const;

  /// Measures code generation / bytecode translation / machine-code
  /// compilation costs for every pipeline of `program`. `measure_jit`
  /// can be disabled when only translation times matter (huge generated
  /// queries, Fig 15, where optimized compilation takes minutes).
  /// `cost_model` only affects the reported runtime_call_fraction (pass
  /// the same params the queries will run with so the report matches the
  /// adaptive controller's input).
  std::vector<PipelineCompileCosts> MeasureCompileCosts(
      const QueryProgram& program, bool measure_unopt = true,
      bool measure_opt = true,
      const TranslatorOptions& translator_options = {},
      const CostModelParams& cost_model = {});

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace aqe

#endif  // AQE_ENGINE_QUERY_ENGINE_H_
