#include "engine/query_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>

#include "adaptive/calibrate.h"
#include "cache/fingerprint.h"
#include "codegen/query_compiler.h"
#include "common/status.h"
#include "common/timer.h"
#include "exec/morsel.h"
#include "jit/jit_compiler.h"
#include "jit/naive_interpreter.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "obs/stats_server.h"
#include "runtime/runtime_registry.h"
#include "sched/scheduler.h"
#include "sched/task.h"
#include "vm/interpreter.h"
#include "volcano/volcano.h"
#include "vectorized/vectorized.h"

namespace aqe {
namespace {

/// WorkerFn trampoline dispatching a morsel into the bytecode VM; `extra`
/// is the BcProgram (§IV-E interoperability).
void VmWorkerTrampoline(void* state, uint64_t begin, uint64_t end,
                        const void* extra) {
  const auto* program = static_cast<const BcProgram*>(extra);
  uint64_t args[4] = {reinterpret_cast<uint64_t>(state), begin, end,
                      reinterpret_cast<uint64_t>(extra)};
  VmExecute(*program, args, 4);
}

void NeverCalledWorker(void*, uint64_t, uint64_t, const void*) {
  AQE_UNREACHABLE("placeholder worker variant must never run");
}

/// QueryEngineOptions::profile_hz resolution: -1 defers to the
/// AQE_PROFILE_HZ env override, falling back to 97 Hz (prime, so the
/// sampler never phase-locks with msec-periodic engine activity).
int ResolveProfileHz(int requested) {
  if (requested >= 0) return requested;
  if (const char* env = std::getenv("AQE_PROFILE_HZ")) {
    const int hz = std::atoi(env);
    return hz > 0 ? hz : 0;
  }
  return 97;
}

}  // namespace

/// The engine's observability state: the always-on tracer, the metrics
/// registry, and pre-resolved metric handles so query/morsel hot paths
/// never touch the registry's mutex. One per engine, alive for its whole
/// lifetime (declared before the scheduler, so tasks finishing during
/// shutdown still record safely).
struct EngineObs {
  EngineTracer tracer;
  MetricsRegistry metrics;
  std::atomic<uint32_t> next_query_id{1};

  /// Per-lane beacons the continuous profiler samples. Lives here (before
  /// the scheduler in Impl) so a worker publishing during shutdown still
  /// touches live memory.
  BeaconBoard beacons;

  // Declaration order matters: handles resolve against `metrics` above.
  Counter* queries_submitted = metrics.GetCounter("engine.queries_submitted");
  Counter* queries_completed = metrics.GetCounter("engine.queries_completed");
  Counter* morsels = metrics.GetCounter("exec.morsels");
  Counter* mode_switches = metrics.GetCounter("adaptive.mode_switches");
  Counter* compiles = metrics.GetCounter("jit.compiles");
  Counter* anomalies = metrics.GetCounter("engine.anomalies");
  /// Per-cause anomaly counters, indexed by AnomalyCause.
  Counter* anomalies_by_cause[5] = {
      metrics.GetCounter("engine.anomalies.unknown"),
      metrics.GetCounter("engine.anomalies.cache_evicted"),
      metrics.GetCounter("engine.anomalies.mode_regressed"),
      metrics.GetCounter("engine.anomalies.queue_wait"),
      metrics.GetCounter("engine.anomalies.memory_blowup"),
  };
  /// Memory-budget enforcement outcomes, split by where the query failed.
  Counter* budget_rej_admission =
      metrics.GetCounter("mem.budget_rejections.admission");
  Counter* budget_rej_runtime =
      metrics.GetCounter("mem.budget_rejections.runtime");
  /// Accepted (coherent) profiler samples — liveness signal for /metrics.
  Counter* profiler_samples = metrics.GetCounter("profiler.samples");
  Histogram* compile_us = metrics.GetHistogram("jit.compile_us");
  // Scan pruning (src/index/): registry counters, so metrics.Reset()
  // covers them (phase-delta hygiene) and BuildSnapshot picks them up with
  // every other registry metric.
  Counter* pruned_pipelines = metrics.GetCounter("index.pruned_pipelines");
  Counter* rows_pruned = metrics.GetCounter("index.rows_pruned");
  Counter* rows_selected = metrics.GetCounter("index.rows_selected");
  Counter* zone_blocks_pruned = metrics.GetCounter("index.zone_blocks_pruned");
  Counter* posting_entries = metrics.GetCounter("index.posting_entries");
  Counter* prune_cache_hits = metrics.GetCounter("index.prune_cache_hits");
  Counter* prune_cache_misses =
      metrics.GetCounter("index.prune_cache_misses");
  Histogram* queue_wait_us[kNumTaskClasses];
  Histogram* exec_latency_us[kNumTaskClasses];
  /// Completed queries' tracked peak bytes, per admission class — the
  /// distribution class budgets are set against.
  Histogram* mem_peak_by_class[kNumTaskClasses];

  /// Per-fingerprint latency sentinel (obs/regression.h); fed by every
  /// completed cached query, read by snapshots and the stats server.
  RegressionTracker sentinel;

  /// Ring of the last kRecentProfiles collect_profile query profiles, for
  /// the stats server's /profiles endpoint. shared_ptr: a client holding
  /// the query's own result shares the same object.
  static constexpr size_t kRecentProfiles = 64;
  mutable std::mutex profiles_mu;
  std::deque<std::shared_ptr<const QueryProfile>> recent_profiles;

  /// Serializes ResetObservabilityStats against snapshot assembly: a
  /// snapshot taken concurrently with a reset sees either every resettable
  /// source pre-reset or every one post-reset, never a mix. `stats_epoch`
  /// counts resets and is exported as the `obs.epoch` gauge so readers can
  /// detect that a phase boundary moved under them.
  mutable std::mutex stats_mu;
  std::atomic<uint64_t> stats_epoch{0};

  /// Live per-query memory trackers, for the mem.current_bytes gauge.
  /// weak_ptr: a finished query's tracker drops out on its own; Submit
  /// prunes expired slots opportunistically.
  mutable std::mutex trackers_mu;
  std::vector<std::weak_ptr<QueryMemoryTracker>> live_trackers;
  /// Engine-lifetime high-water across all queries' tracked peaks.
  std::atomic<uint64_t> engine_peak_bytes{0};

  EngineObs() {
    char name[64];
    for (int c = 0; c < kNumTaskClasses; ++c) {
      std::snprintf(name, sizeof(name), "admission.queue_wait_us.class%d", c);
      queue_wait_us[c] = metrics.GetHistogram(name);
      std::snprintf(name, sizeof(name), "engine.exec_latency_us.class%d", c);
      exec_latency_us[c] = metrics.GetHistogram(name);
      std::snprintf(name, sizeof(name), "mem.query_peak_bytes.class%d", c);
      mem_peak_by_class[c] = metrics.GetHistogram(name);
    }
  }

  /// (Re)starts the sampler at `hz`; 0 leaves the profiler off. Called
  /// before any query traffic, so tearing down a default-rate sampler from
  /// the delegating constructor races nothing.
  void StartProfiler(int hz) {
    profiler.reset();
    if (hz > 0) {
      profiler =
          std::make_unique<ContinuousProfiler>(&beacons, hz, profiler_samples);
    }
  }

  void RecordQueryPeak(uint64_t peak_bytes, int query_class) {
    mem_peak_by_class[query_class]->Record(static_cast<double>(peak_bytes));
    uint64_t prev = engine_peak_bytes.load(std::memory_order_relaxed);
    while (prev < peak_bytes &&
           !engine_peak_bytes.compare_exchange_weak(
               prev, peak_bytes, std::memory_order_relaxed)) {
    }
  }

  void AddProfile(std::shared_ptr<const QueryProfile> profile) {
    std::lock_guard<std::mutex> lock(profiles_mu);
    recent_profiles.push_back(std::move(profile));
    if (recent_profiles.size() > kRecentProfiles) recent_profiles.pop_front();
  }

  PipelineObs MakePipelineObs(uint32_t query_id) {
    PipelineObs obs;
    obs.tracer = &tracer;
    obs.beacons = &beacons;
    obs.morsels = morsels;
    obs.mode_switch_decisions = mode_switches;
    obs.compiles = compiles;
    obs.compile_us = compile_us;
    obs.query_id = query_id;
    return obs;
  }

  /// Declared last: the sampler thread reads `beacons` and bumps
  /// `profiler_samples`, so it must stop (reverse destruction order)
  /// before either goes away. Null when profile_hz resolved to 0.
  std::unique_ptr<ContinuousProfiler> profiler;
};

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kCompiled: return "compiled";
    case EngineKind::kVolcano: return "volcano";
    case EngineKind::kVectorized: return "vectorized";
    case EngineKind::kNaiveIr: return "naive-ir";
  }
  AQE_UNREACHABLE("bad EngineKind");
}

struct QueryEngine::Impl {
  const Catalog* catalog;

  // Plan-keyed artifact cache (fingerprint -> bytecode + machine code).
  // Declared before the scheduler so publish tasks that run during
  // shutdown still find it alive.
  ArtifactCache cache;

  // Trace rings + metrics registry. Same lifetime rule as the cache: tasks
  // record events until the scheduler's workers join.
  EngineObs obs;

  // Micro-calibrated cost-model speedups (AQE_CALIBRATE), substituted for
  // QueryRunOptions that leave the cost model at its defaults.
  CostModelParams calibrated;
  bool use_calibrated = false;

  // Admission layer: at most `max_active` queries execute concurrently;
  // excess queries wait in one FIFO queue per class and are released
  // weighted-fair as running queries finish, so a burst cannot pile
  // unbounded task state onto the scheduler and every class gets its share
  // of slots. Each class keeps a virtual admission clock: releasing a
  // query advances its class's clock by estimated_cost / weight, and the
  // most-behind non-empty class is always served next — weighted fair
  // queueing over service time, not query count, so a class of cheap
  // cached queries admits many per heavy cold query. Within a class,
  // release is FIFO except for a bounded cache-aware overtake (see
  // PickFromClassLocked).
  struct WaitingQuery {
    std::unique_ptr<Task> job;
    double cost_ms = 0;        ///< cache-estimated service time
    bool fully_cached = false; ///< every pipeline artifact is resident
    int bypassed = 0;          ///< times a cached waiter overtook this one
  };
  /// A fully-cached waiter may overtake from at most this many queue
  /// positions back, and a cold query at the head may be bypassed at most
  /// this many times — both bounds keep a cold query's extra wait finite
  /// even under a sustained stream of cached arrivals.
  static constexpr size_t kMaxCacheOvertake = 8;

  std::mutex admission_mutex;
  std::deque<WaitingQuery> waiting[kNumTaskClasses];
  double admit_vtime[kNumTaskClasses] = {};
  int active = 0;
  int max_active;

  /// Per-class peak-memory budgets (0 = unlimited). Checked at Submit
  /// against the fingerprint's cached peak estimate and installed as each
  /// admitted query's tracker soft limit.
  std::atomic<uint64_t> class_budget[kNumTaskClasses] = {};

  // Declared last on purpose: its destructor joins the workers, and a
  // finishing query task touches the admission fields above — they must
  // outlive the workers.
  TaskScheduler sched;

  // Declared after `sched` on purpose: the server thread's handlers walk
  // the tracer and metrics, so it must stop before anything else tears
  // down — destruction runs in reverse declaration order. Null unless
  // QueryEngineOptions::stats_port asked for it (and the bind succeeded).
  std::unique_ptr<StatsServer> stats_server;

  // Thread count clamped to the scheduler's worker range: callers pass
  // hardware_concurrency() on big machines, and indices above
  // TaskScheduler::kMaxWorkers are reserved for external controllers.
  Impl(const Catalog* catalog, int num_threads)
      : catalog(catalog),
        max_active(std::max(2, 2 * num_threads)),
        sched(std::min(std::max(1, num_threads), TaskScheduler::kMaxWorkers)) {
    if (CostModelCalibrationRequested()) {
      calibrated = CalibratedCostModelParams();
      use_calibrated = true;
    }
    // Evictions feed the regression sentinel so a post-eviction slowdown
    // of the same fingerprint can name its cause.
    cache.set_eviction_listener(
        [this](uint64_t key) { obs.sentinel.MarkEvicted(key); });
    // The profiler is always on (AQE_PROFILE_HZ=0 opts out); the options
    // constructor below restarts it when profile_hz overrides the default.
    obs.StartProfiler(ResolveProfileHz(-1));
  }

  Impl(const Catalog* catalog, const QueryEngineOptions& options)
      : Impl(catalog, options.num_threads) {
    if (options.profile_hz >= 0) obs.StartProfiler(options.profile_hz);
    if (options.stats_port >= 0) {
      StatsServer::Handlers handlers;
      handlers.metrics_text = [this] { return PrometheusText(BuildSnapshot()); };
      handlers.trace_json = [this] {
        return ChromeTraceJson(obs.tracer.Snapshot());
      };
      handlers.profiles_json = [this] { return ProfilesJson(); };
      handlers.profile_text = [this] {
        return obs.profiler != nullptr ? obs.profiler->CollapsedStacks()
                                       : std::string();
      };
      stats_server =
          std::make_unique<StatsServer>(options.stats_port, std::move(handlers));
      if (!stats_server->ok()) stats_server.reset();
    }
  }

  MetricsSnapshot BuildSnapshot() const;
  std::string ProfilesJson() const;

  void Admit(std::unique_ptr<Task> job, int cls, double cost_ms,
             bool fully_cached) {
    std::vector<std::unique_ptr<Task>> ready;
    {
      std::lock_guard<std::mutex> lock(admission_mutex);
      std::deque<WaitingQuery>& queue = waiting[static_cast<size_t>(cls)];
      if (queue.empty()) {
        // The clocks only mean anything while some class is backlogged: a
        // class served without contention still gets charged, and that
        // banked *debt* would lock it out when another class later becomes
        // backlogged. With no waiters anywhere, restart all clocks.
        bool any_waiting = false;
        for (int c = 0; c < kNumTaskClasses; ++c) {
          if (!waiting[c].empty()) {
            any_waiting = true;
            break;
          }
        }
        if (!any_waiting) {
          for (int c = 0; c < kNumTaskClasses; ++c) admit_vtime[c] = 0;
        }
        // An idle class's clock stood still; clamp it forward so it cannot
        // return with banked credit and starve the others.
        double min_active_vtime = -1;
        for (int c = 0; c < kNumTaskClasses; ++c) {
          if (c == cls || waiting[c].empty()) continue;
          if (min_active_vtime < 0 || admit_vtime[c] < min_active_vtime) {
            min_active_vtime = admit_vtime[c];
          }
        }
        if (min_active_vtime > admit_vtime[cls]) {
          admit_vtime[cls] = min_active_vtime;
        }
      }
      queue.push_back({std::move(job), cost_ms, fully_cached, 0});
      DrainWaitingLocked(&ready);
    }
    for (auto& task : ready) sched.Submit(std::move(task));
  }

  /// Called by a finishing query task: hands its admission slot to the
  /// most-behind class's next waiting query, if any.
  void OnQueryFinished() {
    std::vector<std::unique_ptr<Task>> ready;
    {
      std::lock_guard<std::mutex> lock(admission_mutex);
      --active;
      DrainWaitingLocked(&ready);
    }
    for (auto& task : ready) sched.Submit(std::move(task));
  }

  void SetMaxActive(int max_queries) {
    std::vector<std::unique_ptr<Task>> ready;
    {
      std::lock_guard<std::mutex> lock(admission_mutex);
      max_active = max_queries;
      // A raised cap releases already-waiting queries immediately.
      DrainWaitingLocked(&ready);
    }
    for (auto& task : ready) sched.Submit(std::move(task));
  }

  /// Pops the next query of class `cls`: the oldest waiter, unless it is
  /// cold and a fully-cached one sits within the first kMaxCacheOvertake
  /// positions behind it — that one overtakes (it will finish in a
  /// fraction of the time). A head that has already been bypassed
  /// kMaxCacheOvertake times is released unconditionally, so a sustained
  /// stream of cached arrivals cannot starve a cold query.
  WaitingQuery PickFromClassLocked(int cls) {
    std::deque<WaitingQuery>& queue = waiting[static_cast<size_t>(cls)];
    size_t pick = 0;
    if (!queue.front().fully_cached &&
        queue.front().bypassed < static_cast<int>(kMaxCacheOvertake)) {
      const size_t horizon = std::min(queue.size(), kMaxCacheOvertake + 1);
      for (size_t i = 1; i < horizon; ++i) {
        if (queue[i].fully_cached) {
          pick = i;
          ++queue.front().bypassed;
          break;
        }
      }
    }
    WaitingQuery picked = std::move(queue[pick]);
    queue.erase(queue.begin() + static_cast<ptrdiff_t>(pick));
    return picked;
  }

  /// Moves waiting queries into `ready` (weighted-fair across classes)
  /// while slots exist. Caller holds admission_mutex and submits outside
  /// the lock.
  void DrainWaitingLocked(std::vector<std::unique_ptr<Task>>* ready) {
    while (active < max_active) {
      int cls = -1;
      for (int c = 0; c < kNumTaskClasses; ++c) {
        if (waiting[c].empty()) continue;
        if (cls < 0 || admit_vtime[c] < admit_vtime[cls]) cls = c;
      }
      if (cls < 0) return;  // nothing waiting
      WaitingQuery picked = PickFromClassLocked(cls);
      admit_vtime[cls] +=
          picked.cost_ms / static_cast<double>(sched.class_weight(cls));
      ++active;
      ready->push_back(std::move(picked.job));
    }
  }
};

namespace {

/// Low-priority task that writes a freshly compiled worker back into the
/// plan's cache entry (the ISSUE's "cache publish as a task": publishing is
/// off the query's critical path, claimable by any worker). The entry and
/// code are held by shared_ptr, so a publish racing engine shutdown or LRU
/// eviction touches only live memory.
class CachePublishTask : public Task {
 public:
  CachePublishTask(ArtifactCache* cache, std::shared_ptr<CacheEntry> entry,
                   size_t pipeline, ExecMode mode,
                   std::shared_ptr<CachedCode> code,
                   std::vector<uint64_t> constants,
                   std::vector<DataType> column_types, uint64_t instructions,
                   double runtime_call_fraction, EngineTracer* tracer,
                   uint32_t query_id)
      : cache_(cache),
        entry_(std::move(entry)),
        pipeline_(pipeline),
        mode_(mode),
        code_(std::move(code)),
        constants_(std::move(constants)),
        column_types_(std::move(column_types)),
        instructions_(instructions),
        runtime_call_fraction_(runtime_call_fraction),
        tracer_(tracer),
        query_id_(query_id) {}

  Status Run(int worker) override {
    int64_t delta = 0;
    {
      std::lock_guard<std::mutex> lock(entry_->mu);
      PipelineArtifact& a = entry_->pipelines[pipeline_];
      if (a.column_types.empty()) {
        a.column_types = column_types_;
      } else if (a.column_types != column_types_) {
        return Status::kDone;  // schema drifted (temp table): don't publish
      }
      CodeVariant* v = a.FindVariant(constants_);
      if (v == nullptr) {
        if (a.code_variants.size() < PipelineArtifact::kMaxCodeVariants) {
          v = &a.code_variants.emplace_back();
        } else {
          // Evict the least-recently-used variant's code and reuse its slot.
          v = &*std::min_element(
              a.code_variants.begin(), a.code_variants.end(),
              [](const CodeVariant& x, const CodeVariant& y) {
                return x.last_use < y.last_use;
              });
          if (v->unopt != nullptr) {
            delta -= static_cast<int64_t>(v->unopt->approx_bytes);
          }
          if (v->opt != nullptr) {
            delta -= static_cast<int64_t>(v->opt->approx_bytes);
          }
          *v = CodeVariant{};
        }
        v->constants = constants_;
      }
      v->last_use = ++a.variant_clock;
      std::shared_ptr<CachedCode>& slot =
          mode_ == ExecMode::kOptimized ? v->opt : v->unopt;
      if (slot != nullptr) delta -= static_cast<int64_t>(slot->approx_bytes);
      delta += static_cast<int64_t>(code_->approx_bytes);
      slot = std::move(code_);
      if (a.instructions == 0) a.instructions = instructions_;
      if (a.runtime_call_fraction == 0) {
        a.runtime_call_fraction = runtime_call_fraction_;
      }
      a.best_mode = std::max(a.best_mode, mode_);
    }
    cache_->OnBytesChanged(*entry_, delta);
    cache_->CountPublish();
    TraceEvent ev;
    ev.start_nanos = MonotonicNanos();
    ev.end_nanos = ev.start_nanos;
    ev.payload = 1;  // machine code (bytecode publishes happen inline)
    ev.query_id = query_id_;
    ev.pipeline_id = static_cast<uint16_t>(pipeline_);
    ev.kind = TraceEventKind::kCachePublish;
    ev.detail = static_cast<uint8_t>(mode_);
    tracer_->Record(worker, ev);
    return Status::kDone;
  }

 private:
  ArtifactCache* cache_;
  std::shared_ptr<CacheEntry> entry_;
  size_t pipeline_;
  ExecMode mode_;
  std::shared_ptr<CachedCode> code_;
  std::vector<uint64_t> constants_;
  std::vector<DataType> column_types_;
  uint64_t instructions_;
  double runtime_call_fraction_;
  EngineTracer* tracer_;
  uint32_t query_id_;
};

/// Shares `bc` when its resolved dispatch already matches `want`, clones
/// otherwise — cached programs are immutable while queries execute them.
std::shared_ptr<const BcProgram> ProgramForDispatch(
    std::shared_ptr<const BcProgram> bc, VmDispatch want) {
  if (VmResolveDispatch(want) == VmResolveDispatch(bc->dispatch)) return bc;
  auto copy = std::make_shared<BcProgram>(*bc);
  copy->dispatch = want;
  return copy;
}

/// One query in flight: a task that executes one bounded slice at a time —
/// an engine step, a pipeline-setup (bind + cache lookup + translation), or
/// one controller morsel of the embedded resumable PipelineRun — and yields
/// between slices, so concurrent queries sharing a worker interleave at
/// morsel granularity even inside a pipeline. All state lives in this
/// object, not on any thread: a yielded query can resume on whichever
/// worker picks it up (steals included), mid-pipeline.
class QueryJob : public Task {
 public:
  QueryJob(const Catalog* catalog, TaskScheduler* sched, ArtifactCache* cache,
           const CostModelParams* calibrated, EngineObs* obs,
           uint32_t query_id, const QueryProgram& program,
           const QueryRunOptions& options, std::function<void()> on_finished)
      : sched_(sched),
        cache_(cache),
        obs_(obs),
        query_id_(query_id),
        submit_nanos_(MonotonicNanos()),
        program_(&program),
        options_(options),
        ctx_(program.MakeContext(catalog)),
        on_finished_(std::move(on_finished)) {
    // Cost-model micro-calibration (AQE_CALIBRATE): substitute measured
    // speedups when the caller left the cost model at its defaults.
    if (calibrated != nullptr && options_.cost_model == CostModelParams{}) {
      options_.cost_model = *calibrated;
    }
    // Every engine query is memory-accounted: the tracker rides the context
    // into the agg sets / output buffers now, and into join tables as
    // engine steps create them (they read ctx->memory themselves).
    memory_ = std::make_shared<QueryMemoryTracker>();
    ctx_->AttachMemoryTracker(memory_);
    if (options_.engine == EngineKind::kCompiled &&
        options_.use_artifact_cache && !program.pipelines().empty()) {
      // Fingerprint on the submitting thread: cheap (a hash walk over the
      // plan), and it makes the entry visible before any stage runs.
      fingerprint_ = FingerprintProgram(program);
      entry_ = cache_->Intern(
          ArtifactCacheKey(fingerprint_, options_.translator),
          program.pipelines().size(), program.name());
      // A 64-bit key collision between different plans would alias their
      // artifacts; name/shape mismatch downgrades to uncached execution.
      if (entry_->pipelines.size() != program.pipelines().size() ||
          entry_->plan_name != program.name()) {
        entry_.reset();
      }
      if (entry_ != nullptr) {
        // Auxiliary pruning-cache key: the fingerprint's constants alone
        // under-key a pruning decision — bytecode patch-shares across
        // literal variants, and LIKE patterns / predicate bitmaps are not
        // constants at all. Hash the run's string literals and bitmap
        // *contents* so each distinct predicate gets its own cached domain.
        uint64_t h = 1469598103934665603ull;
        const auto mix = [&h](const uint8_t* bytes, size_t n, uint8_t sep) {
          for (size_t i = 0; i < n; ++i) {
            h = (h ^ bytes[i]) * 1099511628211ull;
          }
          h = (h ^ sep) * 1099511628211ull;
        };
        for (const std::string& s : fingerprint_.string_literals) {
          mix(reinterpret_cast<const uint8_t*>(s.data()), s.size(), 0xff);
        }
        for (const auto& bitmap : program.bitmaps()) {
          mix(bitmap->data(), bitmap->size(), 0xfe);
        }
        pruning_aux_hash_ = h;
      }
    }
    EstimateCost();
  }

  std::future<QueryRunResult> GetFuture() { return promise_.get_future(); }

  /// Cache-estimated service time and residency, for cache-aware
  /// admission. Computed on the submitting thread from the interned entry.
  double estimated_cost_ms() const { return estimated_cost_ms_; }
  bool fully_cached() const { return fully_cached_; }

  /// Cache-estimated peak footprint (the fingerprint's peak-memory EWMA;
  /// 0 when the plan has no completed runs). What admission checks against
  /// the class byte budget.
  uint64_t estimated_peak_bytes() const { return estimated_peak_bytes_; }
  std::shared_ptr<QueryMemoryTracker> tracker() const { return memory_; }

  /// Installs the class budget as the tracker's soft limit (0 = none);
  /// runtime growth past it fails the query at the next slice boundary.
  void set_memory_budget(uint64_t bytes) { memory_->set_soft_limit(bytes); }

  /// Admission-time rejection: fails the future with the typed error
  /// without ever admitting the job (the caller drops it; on_finished_
  /// must not run — no admission slot was taken).
  void FailAdmission(uint64_t budget_bytes) {
    promise_.set_exception(std::make_exception_ptr(MemoryBudgetExceeded(
        scheduling_class(), budget_bytes, estimated_peak_bytes_,
        /*at_admission=*/true)));
  }

  /// One bounded slice, bracketed by trace events. Client threads never
  /// touch the single-producer rings, so the admission wait is recorded
  /// retroactively by whichever worker runs the first slice (the span
  /// still starts at submit time).
  Status Run(int worker) override {
    const int64_t t0 = MonotonicNanos();
    // Publish the slice beacon for the continuous profiler; morsel and
    // compile sites inside the slice overwrite it with richer detail and
    // restore it on their way out.
    WorkerBeacon* beacon = obs_->beacons.lane(worker);
    PublishBeacon(beacon, query_id_, static_cast<uint16_t>(stage_index_),
                  /*mode=*/0, BeaconActivity::kSlice, 0);
    if (!started_) {
      started_ = true;
      first_slice_nanos_ = t0;
      result_.queue_wait_seconds = total_timer_.ElapsedSeconds();
      const int cls = scheduling_class();
      obs_->queue_wait_us[cls]->Record(result_.queue_wait_seconds * 1e6);
      TraceEvent ev;
      ev.start_nanos = submit_nanos_;
      ev.end_nanos = t0;
      ev.d0 = estimated_cost_ms_;
      ev.query_id = query_id_;
      ev.kind = TraceEventKind::kAdmissionWait;
      ev.detail = static_cast<uint8_t>(cls);
      obs_->tracer.Record(worker, ev);
    }
    const Status status = RunSlice(worker);
    ClearBeacon(beacon);
    const int64_t t1 = MonotonicNanos();
    TraceEvent ev;
    ev.start_nanos = t0;
    ev.end_nanos = t1;
    ev.payload = stage_index_;
    ev.query_id = query_id_;
    ev.kind = TraceEventKind::kTaskSlice;
    ev.detail = static_cast<uint8_t>(scheduling_class());
    obs_->tracer.Record(worker, ev);
    if (status == Status::kDone) {
      TraceEvent done;
      done.start_nanos = first_slice_nanos_;
      done.end_nanos = t1;
      done.payload = done_rows_;
      done.d0 = done_queue_wait_seconds_;
      done.d1 = done_total_seconds_;
      done.query_id = query_id_;
      done.kind = TraceEventKind::kQueryDone;
      done.detail = static_cast<uint8_t>(scheduling_class());
      obs_->tracer.Record(worker, done);
    }
    return status;
  }

 private:
  /// Per-pipeline state that must survive suspension: the worker reads
  /// every runtime address out of the packed binding array, the handle is
  /// flipped by compile tasks, and the PipelineRun checkpoints the
  /// controller between morsels. Destroyed only after the run quiesced
  /// (PipelineRun's drain phase / destructor, invariant 3 in
  /// adaptive/controller.h) — `run` is declared last so it goes first.
  struct ActivePipeline {
    ActivePipeline(WorkerFn fn, const void* extra) : handle(fn, extra) {}

    size_t p = 0;  ///< pipeline index
    PipelineReport report;
    PipelineBindings bindings;
    std::vector<uint64_t> binding_values;
    std::vector<uint64_t> my_constants;
    std::shared_ptr<const BcProgram> bytecode;
    std::shared_ptr<CachedCode> seed_code;  ///< eviction-safe seeded code
    FunctionHandle handle;
    std::unique_ptr<PipelineRun> run;
  };

  /// Runtime budget enforcement: when the tracker latched over-budget
  /// (Charge never throws under VM/JIT frames; the flag is checked here,
  /// at slice boundaries, where unwinding is safe), fail the future with
  /// the typed error and release the admission slot. Returns true when the
  /// query was failed. An active PipelineRun is destroyed through its
  /// abandoned-run path (drain the domain, wait out in-flight helpers),
  /// so no task touches freed state.
  bool FailIfOverBudget() {
    // Slice boundaries are the tracker's quiesce points: fold the
    // thread-slot residues so the budget latch and the peak high-water see
    // every byte charged since the last boundary, however small.
    memory_->FoldResidues();
    if (!memory_->over_budget()) return false;
    obs_->budget_rej_runtime->Add();
    const uint64_t budget = memory_->soft_limit();
    const uint64_t current = memory_->current_bytes();
    // Admission-estimate feedback even though the run never completes
    // (RecordServiceTime is skipped on this path): fold the observed
    // footprint into the fingerprint's peak EWMA so the next submission of
    // this plan is rejected at admission instead of executing to the
    // failure point again. The peak at the kill point is a lower bound on
    // the full-run footprint — and already over budget — so the blend must
    // not dilute it below the observed value. The truncated service time is
    // likewise a lower bound; folding it avoids seeding the cost EWMA at
    // zero if the budget is later raised.
    if (entry_ != nullptr) {
      constexpr double kAlpha = 0.3;
      const double peak = static_cast<double>(memory_->peak_bytes());
      const double service_ms = std::max(
          0.0,
          (total_timer_.ElapsedSeconds() - result_.queue_wait_seconds) * 1e3);
      std::lock_guard<std::mutex> lock(entry_->mu);
      const bool first = entry_->observed_queries == 0;
      entry_->ewma_peak_bytes =
          first ? peak
                : std::max(peak, kAlpha * peak +
                                     (1 - kAlpha) * entry_->ewma_peak_bytes);
      entry_->ewma_service_ms =
          first ? service_ms
                : kAlpha * service_ms +
                      (1 - kAlpha) * entry_->ewma_service_ms;
      ++entry_->observed_queries;
    }
    active_.reset();
    memory_->Release(active_charged_bytes_);
    active_charged_bytes_ = 0;
    if (obs_->profiler != nullptr) {
      obs_->profiler->RetireQuery(query_id_, program_->name());
    }
    promise_.set_exception(std::make_exception_ptr(MemoryBudgetExceeded(
        scheduling_class(), budget, current, /*at_admission=*/false)));
    on_finished_();
    return true;
  }

  /// The pre-instrumentation slice body: one engine step, pipeline setup,
  /// or controller checkpoint of the embedded PipelineRun.
  Status RunSlice(int worker) {
    if (FailIfOverBudget()) return Status::kDone;
    if (active_ != nullptr) {
      // Mid-pipeline: one controller checkpoint per slice.
      if (active_->run->Step() != Task::Status::kDone) return Status::kYield;
      FinishCompiledPipeline();
      active_.reset();
      if (++stage_index_ < program_->stages().size()) return Status::kYield;
    } else if (stage_index_ < program_->stages().size()) {
      // The size check comes first: a QueryProgram with no stages at all
      // must still produce an (empty) result.
      RunStage(program_->stages()[stage_index_], worker);
      if (active_ != nullptr) return Status::kYield;  // pipeline started
      if (++stage_index_ < program_->stages().size()) return Status::kYield;
    }
    // The last stage may have grown past the budget inside its own slice.
    if (FailIfOverBudget()) return Status::kDone;
    result_.rows = std::move(ctx_->result);
    result_.total_seconds = total_timer_.ElapsedSeconds();
    result_.peak_memory_bytes = memory_->peak_bytes();
    obs_->RecordQueryPeak(result_.peak_memory_bytes, scheduling_class());
    // Retire this query's live profiler samples into the per-plan
    // aggregate — every query, profiled or not, so CollapsedStacks and
    // /profile cover the whole workload.
    uint64_t cpu_samples = 0;
    if (obs_->profiler != nullptr) {
      cpu_samples = obs_->profiler->RetireQuery(query_id_, program_->name());
    }
    RecordServiceTime(worker);
    if (options_.collect_profile) {
      // Fold this query's trace events into a structured profile before the
      // promise resolves, so the client's future carries it. The engine
      // keeps the last few for the stats server's /profiles endpoint.
      auto profile = std::make_shared<QueryProfile>(BuildQueryProfile(
          obs_->tracer.Snapshot(), result_, query_id_, program_->name()));
      profile->cpu_samples = cpu_samples;
      profile->peak_memory_bytes = result_.peak_memory_bytes;
      result_.profile = profile;
      obs_->AddProfile(std::move(profile));
    }
    // The caller's completion events outlive the moved-from result.
    done_rows_ = result_.rows.size();
    done_queue_wait_seconds_ = result_.queue_wait_seconds;
    done_total_seconds_ = result_.total_seconds;
    // Completion metrics land before the promise resolves, so a client
    // that saw its future ready observes them in the very next snapshot.
    obs_->exec_latency_us[scheduling_class()]->Record(
        std::max(0.0, done_total_seconds_ - done_queue_wait_seconds_) * 1e6);
    obs_->queries_completed->Add();
    promise_.set_value(std::move(result_));
    on_finished_();
    return Status::kDone;
  }

  void EstimateCost();
  void RecordServiceTime(int worker);
  void RunStage(const QueryProgram::Stage& stage, int worker);
  void StartCompiledPipeline(const QueryProgram::Stage& stage,
                             const PipelineSpec& spec,
                             PipelineBindings bindings,
                             PipelineReport report, int worker);
  void FinishCompiledPipeline();

  TaskScheduler* sched_;
  ArtifactCache* cache_;
  EngineObs* obs_;
  uint32_t query_id_;
  int64_t submit_nanos_;
  int64_t first_slice_nanos_ = 0;
  uint64_t done_rows_ = 0;
  double done_queue_wait_seconds_ = 0;
  double done_total_seconds_ = 0;
  const QueryProgram* program_;
  QueryRunOptions options_;
  /// Per-query memory accounting; shared with ctx_ and every runtime
  /// structure created on the query's behalf. Declared before ctx_ so it
  /// is destroyed after the context: charged structures hold raw
  /// tracker pointers and call Release() from their destructors.
  std::shared_ptr<QueryMemoryTracker> memory_;
  std::unique_ptr<QueryContext> ctx_;
  PlanFingerprint fingerprint_;
  uint64_t pruning_aux_hash_ = 0;  ///< literals + bitmap contents (pruning key)
  std::shared_ptr<CacheEntry> entry_;  ///< null when the cache is bypassed
  /// Keeps compiled code alive until the query finishes; pushed from
  /// compile tasks on any worker. Shared with the cache, so LRU eviction
  /// mid-query cannot free code this query still executes.
  std::vector<std::shared_ptr<CachedCode>> keepalive_;
  std::mutex keepalive_mutex_;
  QueryRunResult result_;
  size_t stage_index_ = 0;
  bool started_ = false;
  double estimated_cost_ms_ = 0;
  uint64_t estimated_peak_bytes_ = 0;
  /// Tracker bytes charged for the active pipeline's binding array and
  /// private bytecode; released when the pipeline finishes or is abandoned.
  uint64_t active_charged_bytes_ = 0;
  bool fully_cached_ = false;
  Timer total_timer_;  ///< from Submit — total_seconds includes queue wait
  std::promise<QueryRunResult> promise_;
  std::function<void()> on_finished_;
  /// Declared after ctx_: destroyed first, so a run abandoned at shutdown
  /// quiesces while the context its bindings point into is still alive.
  std::unique_ptr<ActivePipeline> active_;
};

/// Cache-aware admission estimate. The service-time source, best first:
/// the plan's EWMA of completed runs (admission cost feedback — converges
/// per fingerprint whether or not artifacts are still resident), else the
/// sum of last observed pipeline times when every artifact is resident,
/// else a flat pessimistic cold default. Residency is tracked separately:
/// only a fully-cached query may overtake cold waiters.
void QueryJob::EstimateCost() {
  constexpr double kColdCostMs = 10.0;
  estimated_cost_ms_ = kColdCostMs;
  if (entry_ == nullptr) return;
  double observed = 0;
  bool all_resident = true;
  double ewma_ms = 0;
  double ewma_peak = 0;
  uint64_t ewma_runs = 0;
  {
    std::lock_guard<std::mutex> lock(entry_->mu);
    ewma_ms = entry_->ewma_service_ms;
    ewma_peak = entry_->ewma_peak_bytes;
    ewma_runs = entry_->observed_queries;
    for (const PipelineArtifact& a : entry_->pipelines) {
      if (a.bytecode == nullptr && a.code_variants.empty()) {
        all_resident = false;
        break;
      }
      observed += a.observed_seconds * 1e3;
    }
  }
  fully_cached_ = all_resident;
  if (ewma_runs > 0) {
    estimated_cost_ms_ = std::max(0.05, ewma_ms);
    // Peak-memory estimate for admission budget checks: only a plan with
    // completed runs has one — a cold plan is admitted optimistically and
    // caught by the runtime soft limit instead.
    estimated_peak_bytes_ = static_cast<uint64_t>(ewma_peak);
  } else if (all_resident) {
    estimated_cost_ms_ = std::max(0.05, observed);
  }
}

/// Admission cost feedback: fold this run's observed service time (queue
/// wait excluded) into the plan's EWMA. alpha = 0.3 tracks drift (cache
/// warming, data growth) while smoothing scheduler noise. The same sample
/// feeds the regression sentinel, which flags the run (counter + kAnomaly
/// trace event on this worker's lane) when it deviates from the
/// fingerprint's baseline.
void QueryJob::RecordServiceTime(int worker) {
  if (entry_ == nullptr) return;
  constexpr double kAlpha = 0.3;
  const double service_ms = std::max(
      0.0, (result_.total_seconds - result_.queue_wait_seconds) * 1e3);
  const double peak_bytes = static_cast<double>(result_.peak_memory_bytes);
  {
    std::lock_guard<std::mutex> lock(entry_->mu);
    entry_->ewma_service_ms =
        entry_->observed_queries == 0
            ? service_ms
            : kAlpha * service_ms + (1 - kAlpha) * entry_->ewma_service_ms;
    // Same fold for the admission memory estimate: the class-budget check
    // at Submit reads this EWMA as the fingerprint's expected footprint.
    entry_->ewma_peak_bytes =
        entry_->observed_queries == 0
            ? peak_bytes
            : kAlpha * peak_bytes + (1 - kAlpha) * entry_->ewma_peak_bytes;
    ++entry_->observed_queries;
  }
  cache_->CountCostFeedback();

  RegressionTracker::Observation sample;
  sample.fingerprint = entry_->key;
  sample.query_id = query_id_;
  sample.service_ms = service_ms;
  sample.queue_wait_ms = result_.queue_wait_seconds * 1e3;
  sample.peak_bytes = result_.peak_memory_bytes;
  for (const PipelineReport& report : result_.pipelines) {
    sample.final_mode = std::max(sample.final_mode, report.final_mode);
  }
  sample.plan_name = program_->name();
  AnomalyRecord anomaly;
  if (obs_->sentinel.Observe(sample, &anomaly)) {
    obs_->anomalies->Add();
    obs_->anomalies_by_cause[static_cast<int>(anomaly.cause)]->Add();
    TraceEvent ev;
    ev.start_nanos = anomaly.nanos;
    ev.end_nanos = anomaly.nanos;
    ev.payload = anomaly.fingerprint;
    ev.d0 = anomaly.expected_ms;
    ev.d1 = anomaly.observed_ms;
    ev.d2 = anomaly.queue_wait_ms;
    ev.query_id = query_id_;
    ev.kind = TraceEventKind::kAnomaly;
    ev.detail = static_cast<uint8_t>(anomaly.cause);
    obs_->tracer.Record(worker, ev);
  }
}

void QueryJob::RunStage(const QueryProgram::Stage& stage, int worker) {
  const QueryProgram& program = *program_;
  const QueryRunOptions& options = options_;
  const RuntimeRegistry& registry = RuntimeRegistry::Global();

  if (stage.pipeline < 0) {
    Timer timer;
    stage.step(ctx_.get());
    result_.exec_seconds_total += timer.ElapsedSeconds();
    return;
  }
  const PipelineSpec& spec =
      program.pipelines()[static_cast<size_t>(stage.pipeline)];
  PipelineReport report;
  report.name = spec.name;
  report.pipeline_index = static_cast<uint32_t>(stage.pipeline);
  report.tuples = PipelineCardinality(program, spec, *ctx_);

  PipelineBindings bindings = BindPipeline(program, spec, *ctx_);

  if (options.engine == EngineKind::kVolcano) {
    Timer timer;
    RunPipelineVolcano(program, spec, ctx_.get());
    report.exec_seconds = timer.ElapsedSeconds();
    report.exec_only_seconds = report.exec_seconds;
    result_.exec_seconds_total += report.exec_only_seconds;
    result_.pipelines.push_back(std::move(report));
    return;
  }
  if (options.engine == EngineKind::kVectorized) {
    Timer timer;
    RunPipelineVectorized(program, spec, ctx_.get());
    report.exec_seconds = timer.ElapsedSeconds();
    report.exec_only_seconds = report.exec_seconds;
    result_.exec_seconds_total += report.exec_only_seconds;
    result_.pipelines.push_back(std::move(report));
    return;
  }

  if (options.engine == EngineKind::kNaiveIr) {
    // Fig 2's "LLVM IR" mode: interpret the IR objects directly,
    // single-threaded, morsel by morsel.
    ValidatePipelineBindings(spec, bindings);
    std::vector<uint64_t> binding_values = bindings.Pack();
    GeneratedPipeline generated = GeneratePipeline(spec, bindings);
    report.instructions = generated.instructions;
    report.codegen_millis = generated.codegen_millis;
    result_.codegen_millis_total += generated.codegen_millis;
    const llvm::Function* fn = generated.mod->module().getFunction("worker");
    Timer timer;
    MorselQueue queue(report.tuples);
    MorselRange morsel;
    while (queue.Next(&morsel)) {
      uint64_t args[4] = {reinterpret_cast<uint64_t>(binding_values.data()),
                          morsel.begin, morsel.end, 0};
      NaiveIrInterpret(*fn, args, 4, registry);
    }
    report.exec_seconds = timer.ElapsedSeconds();
    report.exec_only_seconds = report.exec_seconds;
    result_.exec_seconds_total += report.exec_only_seconds;
    result_.pipelines.push_back(std::move(report));
    return;
  }

  AQE_CHECK(options.engine == EngineKind::kCompiled);
  StartCompiledPipeline(stage, spec, std::move(bindings), std::move(report),
                        worker);
}

/// Sets up one compiled pipeline and hands it to a resumable PipelineRun:
/// bind, artifact-cache lookup, (on miss) codegen + translation, handle
/// seeding. Everything the run touches across suspensions moves into the
/// ActivePipeline member; the caller's Run() loop then steps the pipeline
/// one morsel per slice.
void QueryJob::StartCompiledPipeline(const QueryProgram::Stage& stage,
                                     const PipelineSpec& spec,
                                     PipelineBindings bindings,
                                     PipelineReport report, int worker) {
  const QueryRunOptions& options = options_;
  const RuntimeRegistry& registry = RuntimeRegistry::Global();
  const auto p = static_cast<size_t>(stage.pipeline);

  // Cache lookup outcomes below emit instant events on this worker's lane.
  const auto cache_instant = [&](TraceEventKind kind, uint64_t payload) {
    TraceEvent ev;
    ev.start_nanos = MonotonicNanos();
    ev.end_nanos = ev.start_nanos;
    ev.payload = payload;
    ev.query_id = query_id_;
    ev.pipeline_id = static_cast<uint16_t>(p);
    ev.kind = kind;
    obs_->tracer.Record(worker, ev);
  };

  // The worker reads every runtime address out of this packed binding
  // array (its `state` argument); it must outlive the pipeline run.
  ValidatePipelineBindings(spec, bindings);
  std::vector<uint64_t> binding_values = bindings.Pack();

  const bool needs_bytecode =
      options.strategy == ExecutionStrategy::kBytecode ||
      options.strategy == ExecutionStrategy::kAdaptive;

  // --- artifact-cache lookup ----------------------------------------------
  // Snapshot this pipeline's artifacts under the entry lock; shared_ptrs
  // keep everything alive regardless of concurrent publishes or eviction.
  PipelineArtifact snap;
  std::shared_ptr<CachedCode> snap_unopt, snap_opt;
  std::vector<uint64_t> my_constants;
  if (entry_ != nullptr) {
    const auto [cb, ce] = fingerprint_.pipeline_constants[p];
    my_constants.assign(fingerprint_.constants.begin() + cb,
                        fingerprint_.constants.begin() + ce);
    std::lock_guard<std::mutex> lock(entry_->mu);
    PipelineArtifact& a = entry_->pipelines[p];
    snap.bytecode = a.bytecode;
    snap.bytecode_constants = a.bytecode_constants;
    snap.patchable = a.patchable;
    snap.patch_slots = a.patch_slots;
    snap.column_types = a.column_types;
    snap.instructions = a.instructions;
    snap.runtime_call_fraction = a.runtime_call_fraction;
    if (CodeVariant* v = a.FindVariant(my_constants); v != nullptr) {
      v->last_use = ++a.variant_clock;
      snap_unopt = v->unopt;
      snap_opt = v->opt;
    }
  }
  // Column types are the one plan property only knowable at bind time
  // (temp-table schemas); artifacts recorded under other types don't fit.
  const bool types_fit =
      entry_ != nullptr &&
      (snap.column_types.empty() || snap.column_types == bindings.column_types);

  // Bytecode: exact-constant hits share the cached program, literal-only
  // variants clone it and patch the constant pool.
  std::shared_ptr<const BcProgram> bytecode;
  if (needs_bytecode && types_fit && snap.bytecode != nullptr) {
    if (snap.bytecode_constants == my_constants) {
      bytecode = ProgramForDispatch(snap.bytecode, options.vm_dispatch);
      cache_->CountBytecodeHit(/*patched=*/false);
      cache_instant(TraceEventKind::kCacheHit, /*payload=*/0);
    } else if (snap.patchable) {
      // Pinned constants (0/1, interned duplicates) have no private pool
      // slot; the variant must agree on them to patch-share.
      bool pins_match = true;
      for (size_t k = 0; k < my_constants.size(); ++k) {
        if (snap.patch_slots[k] == ConstantPatchTable::kPinned &&
            my_constants[k] != snap.bytecode_constants[k]) {
          pins_match = false;
          break;
        }
      }
      if (pins_match) {
        auto patched = std::make_shared<BcProgram>(*snap.bytecode);
        for (size_t k = 0; k < my_constants.size(); ++k) {
          const uint32_t slot = snap.patch_slots[k];
          if (slot == ConstantPatchTable::kPinned) continue;
          if (slot & ConstantPatchTable::kLiteralPoolBit) {
            // Immediate-operand superinstruction: the constant lives in the
            // literal pool, not in a register-file slot.
            patched->literal_pool[slot & ~ConstantPatchTable::kLiteralPoolBit] =
                my_constants[k];
          } else {
            patched->constant_pool[slot].value = my_constants[k];
          }
        }
        patched->dispatch = options.vm_dispatch;
        bytecode = std::move(patched);
        cache_->CountBytecodeHit(/*patched=*/true);
        cache_instant(TraceEventKind::kCacheHit, /*payload=*/0);
      }
    }
  }
  if (bytecode != nullptr) report.artifact_cache_hit = true;

  // Machine code is only reusable for the exact literals it embeds; the
  // snapshot above already picked the variant matching my_constants.
  std::shared_ptr<CachedCode> seed_code;
  ExecMode seed_mode = ExecMode::kBytecode;
  if (types_fit) {
    if (options.strategy == ExecutionStrategy::kAdaptive) {
      // Start straight in the best mode this plan ever reached.
      if (snap_opt != nullptr) {
        seed_code = snap_opt;
        seed_mode = ExecMode::kOptimized;
      } else if (snap_unopt != nullptr) {
        seed_code = snap_unopt;
        seed_mode = ExecMode::kUnoptimized;
      }
    } else if (options.strategy == ExecutionStrategy::kUnoptimized &&
               snap_unopt != nullptr) {
      seed_code = snap_unopt;
      seed_mode = ExecMode::kUnoptimized;
    } else if (options.strategy == ExecutionStrategy::kOptimized &&
               snap_opt != nullptr) {
      seed_code = snap_opt;
      seed_mode = ExecMode::kOptimized;
    }
  }

  // --- code generation / translation (cache misses only) ------------------
  uint64_t instructions = snap.instructions;
  double call_fraction = snap.runtime_call_fraction;
  GeneratedPipeline generated;  // .mod stays null when cached artifacts hit
  const bool need_translation = needs_bytecode && bytecode == nullptr;
  const bool static_strategy_covered =
      !needs_bytecode && seed_code != nullptr;
  if (need_translation || (!needs_bytecode && !static_strategy_covered)) {
    generated = GeneratePipeline(spec, bindings);
    instructions = generated.instructions;
    call_fraction = RuntimeCallFraction(
        generated.loop_instructions, generated.loop_calls,
        options_.cost_model);
    report.codegen_millis = generated.codegen_millis;
    result_.codegen_millis_total += generated.codegen_millis;
  }
  report.instructions = instructions;

  if (need_translation) {
    Timer timer;
    auto fresh = std::make_shared<BcProgram>(TranslateToBytecode(
        *generated.mod->module().getFunction("worker"), registry,
        options.translator));
    report.translate_millis = timer.ElapsedMillis();
    result_.translate_millis_total += report.translate_millis;

    if (entry_ != nullptr) {
      cache_->CountBytecodeMiss();
      cache_instant(TraceEventKind::kCacheMiss, /*payload=*/0);
      // Skip the (codegen + translation sized) patch-table build when the
      // publish below is bound to be discarded — e.g. a variant whose
      // pinned constants mismatch re-translates every run, and must not
      // also pay the sentinel pass every run. A benign race just wastes
      // one patch-table build.
      bool worth_publishing;
      {
        std::lock_guard<std::mutex> lock(entry_->mu);
        const PipelineArtifact& a = entry_->pipelines[p];
        worth_publishing =
            a.bytecode == nullptr &&
            (a.column_types.empty() ||
             a.column_types == bindings.column_types);
      }
      int64_t delta = 0;
      if (worth_publishing) {
        // Publish position-independently (dispatch stays kDefault) with
        // the constant-patch table that lets literal variants reuse it.
        ConstantPatchTable patch = BuildConstantPatchTable(
            *fresh, spec, bindings, registry, options.translator,
            fingerprint_.constants, fingerprint_.pipeline_constants[p].first,
            fingerprint_.pipeline_constants[p].second);
        std::lock_guard<std::mutex> lock(entry_->mu);
        PipelineArtifact& a = entry_->pipelines[p];
        if (a.bytecode == nullptr &&
            (a.column_types.empty() ||
             a.column_types == bindings.column_types)) {
          a.bytecode = fresh;
          a.bytecode_constants = my_constants;
          a.patchable = patch.patchable;
          a.patch_slots = std::move(patch.pool_indices);
          a.column_types = bindings.column_types;
          if (a.instructions == 0) a.instructions = instructions;
          if (a.runtime_call_fraction == 0) {
            a.runtime_call_fraction = call_fraction;
          }
          delta = static_cast<int64_t>(BcProgramBytes(*fresh));
        }
      }
      if (delta != 0) {
        cache_->OnBytesChanged(*entry_, delta);
        cache_->CountPublish();
        cache_instant(TraceEventKind::kCachePublish, /*payload=*/0);
      }
    }
    bytecode = ProgramForDispatch(std::move(fresh), options.vm_dispatch);
  }
  if (bytecode != nullptr) {
    report.register_file_bytes = bytecode->register_file_size;
  }

  // --- scan pruning: the index access-path decision (src/index/) ----------
  // Runs against the *source table's* immutable indexes; the resulting
  // domain restricts which morsels the PipelineRun ever schedules. The
  // decision is cached per (fingerprint, constants, literals/bitmaps hash)
  // in the pipeline's artifact, so warm runs skip the analysis entirely.
  std::shared_ptr<const ScanDomain> scan_domain;
  if (options.scan_pruning) {
    const Table* source = program_->ResolveTable(spec.source_table, *ctx_);
    if (source != nullptr && source->indexes() != nullptr) {
      bool reused = false;
      if (entry_ != nullptr) {
        std::lock_guard<std::mutex> lock(entry_->mu);
        PipelineArtifact& a = entry_->pipelines[p];
        if (PipelineArtifact::PruningVariant* v =
                a.FindPruning(my_constants, pruning_aux_hash_);
            v != nullptr) {
          v->last_use = ++a.pruning_clock;
          scan_domain = v->domain;
          report.pruning = v->stats;
          report.pruning.analysis_seconds = 0;  // no analysis this run
          report.pruning_cache_hit = true;
          reused = true;
        }
      }
      if (!reused) {
        ScanPruning pruning = AnalyzeScanPruning(spec, *source);
        report.pruning = pruning.stats;
        scan_domain = std::move(pruning.domain);
        if (entry_ != nullptr) {
          std::lock_guard<std::mutex> lock(entry_->mu);
          PipelineArtifact& a = entry_->pipelines[p];
          if (a.FindPruning(my_constants, pruning_aux_hash_) == nullptr) {
            if (a.pruning_variants.size() >=
                PipelineArtifact::kMaxPruningVariants) {
              size_t victim = 0;
              for (size_t i = 1; i < a.pruning_variants.size(); ++i) {
                if (a.pruning_variants[i].last_use <
                    a.pruning_variants[victim].last_use) {
                  victim = i;
                }
              }
              a.pruning_variants.erase(a.pruning_variants.begin() +
                                       static_cast<std::ptrdiff_t>(victim));
            }
            PipelineArtifact::PruningVariant v;
            v.constants = my_constants;
            v.aux_hash = pruning_aux_hash_;
            v.domain = scan_domain;
            v.stats = report.pruning;
            v.last_use = ++a.pruning_clock;
            a.pruning_variants.push_back(std::move(v));
          }
        }
      }
      if (report.pruning.analyzed) {
        if (entry_ != nullptr) {
          (reused ? obs_->prune_cache_hits : obs_->prune_cache_misses)->Add();
        }
        obs_->rows_selected->Add(report.pruning.selected_rows);
        obs_->posting_entries->Add(report.pruning.posting_entries);
        if (scan_domain != nullptr) {
          obs_->pruned_pipelines->Add();
          obs_->rows_pruned->Add(report.pruning.table_rows -
                                 report.pruning.selected_rows);
          obs_->zone_blocks_pruned->Add(report.pruning.zone_blocks_pruned);
          // The scheduled-row count every downstream consumer reasons over
          // (§III-C extrapolation, observed morsel stats, EXPLAIN ANALYZE).
          report.tuples = report.pruning.selected_rows;
        }
        TraceEvent ev;
        ev.start_nanos = MonotonicNanos();
        ev.end_nanos = ev.start_nanos;
        ev.payload = report.pruning.selected_rows;
        ev.payload2 = report.pruning.table_rows;
        ev.d0 = report.pruning.selected_fraction();
        ev.d1 = report.pruning.analysis_seconds;
        ev.d2 = static_cast<double>(report.pruning.posting_entries);
        ev.query_id = query_id_;
        ev.pipeline_id = static_cast<uint16_t>(p);
        ev.kind = TraceEventKind::kScanPrune;
        ev.detail = static_cast<uint8_t>(report.pruning.primary_path);
        obs_->tracer.Record(worker, ev);
      }
    }
  }

  auto ap = std::make_unique<ActivePipeline>(
      bytecode != nullptr ? &VmWorkerTrampoline : &NeverCalledWorker,
      static_cast<const void*>(bytecode.get()));
  ap->p = p;
  ap->bindings = std::move(bindings);
  ap->binding_values = std::move(binding_values);
  ap->my_constants = std::move(my_constants);
  ap->bytecode = std::move(bytecode);
  // Per-run allocations the context's trackers can't see: the packed
  // binding array and any private bytecode this run cloned (patched
  // constants, dispatch clone, fresh translation). A shared cache-resident
  // program is the cache's footprint, not this query's.
  uint64_t run_bytes = ap->binding_values.size() * sizeof(uint64_t);
  if (ap->bytecode != nullptr && ap->bytecode.get() != snap.bytecode.get()) {
    run_bytes += BcProgramBytes(*ap->bytecode);
  }
  memory_->Charge(run_bytes);
  active_charged_bytes_ = run_bytes;
  if (seed_code != nullptr) {
    ap->handle.SetCompiled(seed_code->fn, seed_mode);
    ap->seed_code = std::move(seed_code);
    cache_->CountCodeHit();
    cache_instant(TraceEventKind::kCacheHit, /*payload=*/1);
    report.artifact_cache_hit = true;
  }
  report.initial_mode = ap->handle.mode();
  ap->report = std::move(report);

  PipelineTask task;
  task.handle = &ap->handle;
  task.state = ap->binding_values.data();
  task.total_tuples = ap->report.tuples;
  task.function_instructions = instructions;
  task.runtime_call_fraction = call_fraction;
  task.pipeline_id = stage.pipeline;
  task.scheduling_class = options.query_class;
  task.obs = obs_->MakePipelineObs(query_id_);
  // Pruned scans hand the run a restricted morsel domain; total_tuples
  // (already report.tuples = selected rows) must match its selected count.
  task.domain = scan_domain;
  ActivePipeline* raw_ap = ap.get();
  task.compile = [this, raw_ap, &spec](ExecMode mode) -> WorkerFn {
    // Regenerate IR (codegen is ~100x cheaper than machine-code
    // generation, Fig 1) so each compilation owns its LLVMContext —
    // required because adaptive compilation runs on a worker thread.
    // `spec` lives in the (caller-owned) program, `raw_ap` in this job;
    // both outlive the run (PipelineRun invariant 3).
    GeneratedPipeline fresh = GeneratePipeline(spec, raw_ap->bindings);
    auto compiled =
        JitCompile(std::move(*fresh.mod),
                   mode == ExecMode::kOptimized ? JitMode::kOptimized
                                                : JitMode::kUnoptimized,
                   RuntimeRegistry::Global());
    auto* fn = reinterpret_cast<WorkerFn>(compiled->Lookup("worker"));
    AQE_CHECK(fn != nullptr);
    auto code = std::make_shared<CachedCode>();
    code->approx_bytes = compiled->approx_code_bytes();
    code->module = std::move(compiled);
    code->fn = fn;
    {
      std::lock_guard<std::mutex> lock(keepalive_mutex_);
      keepalive_.push_back(code);
    }
    if (entry_ != nullptr) {
      // Write-back happens off the critical path, as a low-priority task.
      sched_->Submit(std::make_unique<CachePublishTask>(
                         cache_, entry_, raw_ap->p, mode, std::move(code),
                         raw_ap->my_constants, raw_ap->bindings.column_types,
                         fresh.instructions,
                         RuntimeCallFraction(fresh.loop_instructions,
                                             fresh.loop_calls,
                                             options_.cost_model),
                         &obs_->tracer, query_id_),
                     TaskPriority::kLow);
    }
    return fn;
  };

  ap->run = std::make_unique<PipelineRun>(
      sched_, options.strategy, options.cost_model, options.trace, task,
      options.single_threaded, options.adaptive_first_eval_seconds);
  active_ = std::move(ap);
}

/// Post-run accounting, after the embedded PipelineRun reported kDone.
void QueryJob::FinishCompiledPipeline() {
  memory_->Release(active_charged_bytes_);
  active_charged_bytes_ = 0;
  ActivePipeline& ap = *active_;
  PipelineReport report = std::move(ap.report);
  PipelineRunStats stats = ap.run->TakeStats();
  report.exec_seconds = stats.total_seconds;
  report.exec_only_seconds =
      stats.total_seconds - stats.blocking_compile_seconds;
  result_.exec_seconds_total += report.exec_only_seconds;
  report.final_mode = stats.final_mode;
  report.compiles = stats.compiles;
  report.mode_switches = std::move(stats.mode_switches);
  for (const auto& [mode, seconds] : stats.compiles) {
    result_.compile_millis_total += seconds * 1e3;
  }

  if (entry_ != nullptr) {
    // Observed morsel stats: what the plan achieved on this run.
    std::lock_guard<std::mutex> lock(entry_->mu);
    PipelineArtifact& a = entry_->pipelines[ap.p];
    a.best_mode = std::max(a.best_mode, stats.final_mode);
    a.observed_tuples = report.tuples;
    a.observed_seconds = report.exec_only_seconds;
  }
  result_.pipelines.push_back(std::move(report));
}

}  // namespace

QueryEngine::QueryEngine(const Catalog* catalog, int num_threads)
    : impl_(std::make_unique<Impl>(catalog, num_threads)) {}

QueryEngine::QueryEngine(const Catalog* catalog,
                         const QueryEngineOptions& options)
    : impl_(std::make_unique<Impl>(catalog, options)) {}

QueryEngine::~QueryEngine() = default;

int QueryEngine::stats_port() const {
  return impl_->stats_server != nullptr ? impl_->stats_server->port() : -1;
}

int QueryEngine::num_threads() const { return impl_->sched.num_workers(); }

void QueryEngine::set_max_concurrent_queries(int max_queries) {
  AQE_CHECK(max_queries >= 1);
  impl_->SetMaxActive(max_queries);
}

void QueryEngine::set_class_weight(int query_class, int weight) {
  // One weight drives both layers: admission release order and the
  // scheduler's per-class slice shares.
  impl_->sched.set_class_weight(query_class, weight);
}

void QueryEngine::set_class_memory_budget(int query_class, uint64_t bytes) {
  AQE_CHECK(query_class >= 0 && query_class < kNumTaskClasses);
  impl_->class_budget[query_class].store(bytes, std::memory_order_relaxed);
}

std::string QueryEngine::CollapsedStacks() const {
  return impl_->obs.profiler != nullptr ? impl_->obs.profiler->CollapsedStacks()
                                        : std::string();
}

std::future<QueryRunResult> QueryEngine::Submit(
    const QueryProgram& program, const QueryRunOptions& options) {
  Impl* impl = impl_.get();
  const uint32_t query_id =
      impl->obs.next_query_id.fetch_add(1, std::memory_order_relaxed);
  impl->obs.queries_submitted->Add();
  auto job = std::make_unique<QueryJob>(
      impl->catalog, &impl->sched, &impl->cache,
      impl->use_calibrated ? &impl->calibrated : nullptr, &impl->obs,
      query_id, program, options, [impl] { impl->OnQueryFinished(); });
  std::future<QueryRunResult> future = job->GetFuture();
  const double cost_ms = job->estimated_cost_ms();
  const bool cached = job->fully_cached();
  int cls = options.query_class;
  if (cls < 0) cls = 0;
  if (cls >= kNumTaskClasses) cls = kNumTaskClasses - 1;
  job->set_scheduling_class(cls);
  // Per-class memory budget, checked before the query ever queues: a
  // fingerprint whose cached peak estimate exceeds the budget fails with
  // the typed error here — it never takes an admission slot, so other
  // classes (and this class's in-budget plans) are unaffected.
  const uint64_t budget = impl->class_budget[cls].load(std::memory_order_relaxed);
  if (budget > 0 && job->estimated_peak_bytes() > budget) {
    impl->obs.budget_rej_admission->Add();
    job->FailAdmission(budget);
    return future;
  }
  job->set_memory_budget(budget);
  {
    // Register the tracker for the mem.current_bytes gauge; prune expired
    // slots of finished queries while the lock is held anyway.
    std::lock_guard<std::mutex> lock(impl->obs.trackers_mu);
    auto& live = impl->obs.live_trackers;
    live.erase(std::remove_if(live.begin(), live.end(),
                              [](const std::weak_ptr<QueryMemoryTracker>& w) {
                                return w.expired();
                              }),
               live.end());
    live.push_back(job->tracker());
  }
  impl_->Admit(std::move(job), cls, cost_ms, cached);
  return future;
}

ArtifactCacheStats QueryEngine::artifact_cache_stats() const {
  return impl_->cache.stats();
}

const ArtifactCache& QueryEngine::artifact_cache() const {
  return impl_->cache;
}

void QueryEngine::set_artifact_cache_byte_budget(uint64_t bytes) {
  impl_->cache.set_byte_budget(bytes);
}

void QueryEngine::ClearArtifactCache() { impl_->cache.Clear(); }

void QueryEngine::set_anomaly_deviation_factor(double factor) {
  impl_->obs.sentinel.set_deviation_factor(factor);
}

std::vector<AnomalyRecord> QueryEngine::RecentAnomalies() const {
  return impl_->obs.sentinel.RecentAnomalies();
}

MetricsSnapshot QueryEngine::ObservabilitySnapshot() const {
  return impl_->BuildSnapshot();
}

MetricsSnapshot QueryEngine::Impl::BuildSnapshot() const {
  // Serialized against ResetObservabilityStats: a concurrent reset either
  // happened entirely before this snapshot or entirely after it.
  std::lock_guard<std::mutex> epoch_lock(obs.stats_mu);
  MetricsSnapshot snap = obs.metrics.Snapshot();
  char name[64];

  // Scheduler: lifetime slice counters and per-class weighted-fair shares.
  snap.counters.emplace_back("sched.executed_slices",
                             sched.executed_slices());
  for (int c = 0; c < kNumTaskClasses; ++c) {
    std::snprintf(name, sizeof(name), "sched.class_slices.class%d", c);
    snap.counters.emplace_back(name, sched.class_slices(c));
    std::snprintf(name, sizeof(name), "sched.class_weight.class%d", c);
    snap.gauges.emplace_back(name, sched.class_weight(c));
  }

  // Artifact cache: monotonic counters plus residency gauges.
  const ArtifactCacheStats cs = cache.stats();
  snap.counters.emplace_back("cache.entry_hits", cs.entry_hits);
  snap.counters.emplace_back("cache.entry_misses", cs.entry_misses);
  snap.counters.emplace_back("cache.bytecode_hits", cs.bytecode_hits);
  snap.counters.emplace_back("cache.patched_hits", cs.patched_hits);
  snap.counters.emplace_back("cache.bytecode_misses", cs.bytecode_misses);
  snap.counters.emplace_back("cache.code_hits", cs.code_hits);
  snap.counters.emplace_back("cache.publishes", cs.publishes);
  snap.counters.emplace_back("cache.evictions", cs.evictions);
  snap.counters.emplace_back("cache.cost_feedback_updates",
                             cs.cost_feedback_updates);
  snap.gauges.emplace_back("cache.bytes", static_cast<int64_t>(cs.bytes));
  snap.gauges.emplace_back("cache.entries", static_cast<int64_t>(cs.entries));

  // Translator: cumulative fusion counters (§IV-F effectiveness).
  const TranslatorCounters tc = TranslatorCountersSnapshot();
  snap.counters.emplace_back("translator.programs", tc.programs);
  snap.counters.emplace_back("translator.bytecode_ops", tc.bytecode_ops);
  snap.counters.emplace_back("translator.fused_instructions",
                             tc.fused_instructions);
  snap.counters.emplace_back("translator.fused_cmp_branches",
                             tc.fused_cmp_branches);
  snap.counters.emplace_back("translator.fused_cmp_branch_imms",
                             tc.fused_cmp_branch_imms);
  snap.counters.emplace_back("translator.fused_load_cmp_branches",
                             tc.fused_load_cmp_branches);

  // VM: per-opcode dispatch counts (populated while opcode profiling is
  // on — set_vm_opcode_profiling or AQE_VM_PROFILE).
  for (const VmOpcodeCount& oc : VmProfileCounts()) {
    std::string op_name = "vm.op.";
    op_name += oc.opcode;
    snap.counters.emplace_back(std::move(op_name), oc.count);
  }

  // Trace rings: how much the exporters can still see — the totals plus a
  // per-lane breakdown, so a single overflowing worker is identifiable.
  // `dropped` splits into deliberate bulk-event decimation under ring
  // pressure (`dropped.sampled`) vs genuine loss of lossless-class events
  // (`dropped.lost` — what ci/check_trace.py gates at 0).
  snap.counters.emplace_back("trace.recorded", obs.tracer.total_recorded());
  snap.counters.emplace_back("trace.dropped", obs.tracer.total_dropped());
  snap.counters.emplace_back("trace.dropped.sampled",
                             obs.tracer.total_dropped_sampled());
  snap.counters.emplace_back("trace.dropped.lost",
                             obs.tracer.total_dropped_lost());
  for (const EngineTracer::LaneStats& ls : obs.tracer.lane_stats()) {
    std::snprintf(name, sizeof(name), "obs.ring.dropped.lane%d", ls.lane);
    snap.counters.emplace_back(name, ls.dropped);
  }

  // Regression sentinel.
  snap.counters.emplace_back("engine.anomalies_total",
                             obs.sentinel.anomaly_count());

  // Memory accounting: live tracked bytes across in-flight queries and the
  // engine-lifetime peak. The profiler's sampling rate rides along so
  // scrapers can interpret profiler.samples as a rate.
  uint64_t mem_current = 0;
  {
    std::lock_guard<std::mutex> lock(obs.trackers_mu);
    for (const std::weak_ptr<QueryMemoryTracker>& w : obs.live_trackers) {
      if (std::shared_ptr<QueryMemoryTracker> t = w.lock()) {
        mem_current += t->current_bytes();
      }
    }
  }
  snap.gauges.emplace_back("mem.current_bytes",
                           static_cast<int64_t>(mem_current));
  snap.gauges.emplace_back(
      "mem.peak_bytes",
      static_cast<int64_t>(obs.engine_peak_bytes.load()));
  snap.gauges.emplace_back(
      "profiler.hz", obs.profiler != nullptr ? obs.profiler->hz() : 0);

  // Reset epoch last (tests key on it closing the gauge list; it moves
  // when a concurrent ResetObservabilityStats landed between snapshots).
  snap.gauges.emplace_back("obs.epoch",
                           static_cast<int64_t>(obs.stats_epoch.load()));
  return snap;
}

std::string QueryEngine::Impl::ProfilesJson() const {
  std::string out = "{\"profiles\":[";
  {
    std::lock_guard<std::mutex> lock(obs.profiles_mu);
    bool first = true;
    for (const auto& profile : obs.recent_profiles) {
      if (!first) out += ',';
      out += profile->ToJson();
      first = false;
    }
  }
  out += "],\"anomalies\":[";
  bool first = true;
  for (const AnomalyRecord& a : obs.sentinel.RecentAnomalies()) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"fingerprint\":\"%016llx\",\"query\":%u,"
                  "\"cause\":\"%s\",\"expected_ms\":%.3f,"
                  "\"observed_ms\":%.3f,\"queue_wait_ms\":%.3f,\"plan\":\"",
                  first ? "" : ",",
                  static_cast<unsigned long long>(a.fingerprint), a.query_id,
                  AnomalyCauseName(a.cause), a.expected_ms, a.observed_ms,
                  a.queue_wait_ms);
    out += buf;
    for (char c : a.plan_name) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
    out += "\"}";
    first = false;
  }
  out += "]}";
  return out;
}

std::string QueryEngine::ExportChromeTrace() const {
  return ChromeTraceJson(impl_->obs.tracer.Snapshot());
}

std::string QueryEngine::RenderTrace(int width) const {
  return RenderTextTrace(impl_->obs.tracer.Snapshot(),
                         impl_->sched.num_workers(), width);
}

void QueryEngine::ResetObservabilityStats() {
  // One epoch: every resettable source zeroes under the same lock
  // BuildSnapshot holds, so a concurrent snapshot never sees half a reset.
  std::lock_guard<std::mutex> epoch_lock(impl_->obs.stats_mu);
  impl_->obs.stats_epoch.fetch_add(1, std::memory_order_relaxed);
  impl_->obs.metrics.Reset();
  impl_->obs.tracer.Reset();
  impl_->obs.sentinel.ResetAnomalies();
  if (impl_->obs.profiler != nullptr) impl_->obs.profiler->Reset();
  impl_->cache.ResetStats();
  VmResetProfileCounts();
  ResetTranslatorCounters();
}

void QueryEngine::set_vm_opcode_profiling(bool enabled) {
  VmSetProfileCounting(enabled);
}

const EngineTracer& QueryEngine::tracer() const { return impl_->obs.tracer; }

QueryRunResult QueryEngine::Run(const QueryProgram& program,
                                const QueryRunOptions& options) {
  AQE_CHECK_MSG(TaskScheduler::CurrentScheduler() != &impl_->sched,
                "QueryEngine::Run from one of this engine's own tasks would "
                "deadlock; use Submit");
  return Submit(program, options).get();
}

std::vector<PipelineCompileCosts> QueryEngine::MeasureCompileCosts(
    const QueryProgram& program, bool measure_unopt, bool measure_opt,
    const TranslatorOptions& translator_options,
    const CostModelParams& cost_model) {
  std::vector<PipelineCompileCosts> costs;
  std::unique_ptr<QueryContext> ctx = program.MakeContext(impl_->catalog);
  const RuntimeRegistry& registry = RuntimeRegistry::Global();

  for (const QueryProgram::Stage& stage : program.stages()) {
    if (stage.pipeline < 0) {
      stage.step(ctx.get());
      continue;
    }
    const PipelineSpec& spec =
        program.pipelines()[static_cast<size_t>(stage.pipeline)];
    PipelineBindings bindings = BindPipeline(program, spec, *ctx);
    PipelineCompileCosts cost;
    cost.name = spec.name;

    GeneratedPipeline generated = GeneratePipeline(spec, bindings);
    cost.instructions = generated.instructions;
    cost.codegen_millis = generated.codegen_millis;
    cost.runtime_calls = generated.loop_calls;
    cost.runtime_call_fraction = RuntimeCallFraction(
        generated.loop_instructions, generated.loop_calls, cost_model);

    {
      Timer timer;
      BcProgram bytecode = TranslateToBytecode(
          *generated.mod->module().getFunction("worker"), registry,
          translator_options);
      cost.bytecode_millis = timer.ElapsedMillis();
      cost.register_file_bytes = bytecode.register_file_size;
      cost.bytecode_ops = bytecode.code.size();
      cost.fused_ops = bytecode.fused_instructions;
      cost.fused_cmp_branches = bytecode.fused_cmp_branches;
      cost.fused_cmp_branch_imms = bytecode.fused_cmp_branch_imms;
    }
    if (measure_unopt) {
      GeneratedPipeline fresh = GeneratePipeline(spec, bindings);
      Timer timer;
      auto compiled =
          JitCompile(std::move(*fresh.mod), JitMode::kUnoptimized, registry);
      cost.unopt_millis = timer.ElapsedMillis();
    }
    if (measure_opt) {
      GeneratedPipeline fresh = GeneratePipeline(spec, bindings);
      Timer timer;
      auto compiled =
          JitCompile(std::move(*fresh.mod), JitMode::kOptimized, registry);
      cost.opt_millis = timer.ElapsedMillis();
    }
    costs.push_back(std::move(cost));

    // Execute the pipeline (interpreted) so later pipelines can bind to the
    // hash tables / temp tables this one produces.
    RunPipelineVolcano(program, spec, ctx.get());
  }
  return costs;
}

}  // namespace aqe
