#include "engine/query_engine.h"

#include <deque>
#include <memory>
#include <mutex>

#include "codegen/query_compiler.h"
#include "common/status.h"
#include "common/timer.h"
#include "exec/morsel.h"
#include "jit/jit_compiler.h"
#include "jit/naive_interpreter.h"
#include "runtime/runtime_registry.h"
#include "sched/scheduler.h"
#include "sched/task.h"
#include "vm/interpreter.h"
#include "volcano/volcano.h"
#include "vectorized/vectorized.h"

namespace aqe {
namespace {

/// WorkerFn trampoline dispatching a morsel into the bytecode VM; `extra`
/// is the BcProgram (§IV-E interoperability).
void VmWorkerTrampoline(void* state, uint64_t begin, uint64_t end,
                        const void* extra) {
  const auto* program = static_cast<const BcProgram*>(extra);
  uint64_t args[4] = {reinterpret_cast<uint64_t>(state), begin, end,
                      reinterpret_cast<uint64_t>(extra)};
  VmExecute(*program, args, 4);
}

void NeverCalledWorker(void*, uint64_t, uint64_t, const void*) {
  AQE_UNREACHABLE("placeholder worker variant must never run");
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kCompiled: return "compiled";
    case EngineKind::kVolcano: return "volcano";
    case EngineKind::kVectorized: return "vectorized";
    case EngineKind::kNaiveIr: return "naive-ir";
  }
  AQE_UNREACHABLE("bad EngineKind");
}

struct QueryEngine::Impl {
  const Catalog* catalog;

  // Admission layer: at most `max_active` queries execute concurrently;
  // excess queries wait here in FIFO order and are released as running
  // queries finish, so a burst cannot pile unbounded task state onto the
  // scheduler and every query eventually gets cores.
  std::mutex admission_mutex;
  std::deque<std::unique_ptr<Task>> waiting;
  int active = 0;
  int max_active;

  // Declared last on purpose: its destructor joins the workers, and a
  // finishing query task touches the admission fields above — they must
  // outlive the workers.
  TaskScheduler sched;

  // Thread count clamped to the scheduler's worker range: callers pass
  // hardware_concurrency() on big machines, and indices above
  // TaskScheduler::kMaxWorkers are reserved for external controllers.
  Impl(const Catalog* catalog, int num_threads)
      : catalog(catalog),
        max_active(std::max(2, 2 * num_threads)),
        sched(std::min(std::max(1, num_threads), TaskScheduler::kMaxWorkers)) {
  }

  void Admit(std::unique_ptr<Task> job) {
    std::vector<std::unique_ptr<Task>> ready;
    {
      std::lock_guard<std::mutex> lock(admission_mutex);
      // Strict FIFO: always enqueue behind existing waiters (a newly
      // submitted query must not overtake them after a cap raise).
      waiting.push_back(std::move(job));
      DrainWaitingLocked(&ready);
    }
    for (auto& task : ready) sched.Submit(std::move(task));
  }

  /// Called by a finishing query task: hands its admission slot to the
  /// oldest waiting query, if any.
  void OnQueryFinished() {
    std::vector<std::unique_ptr<Task>> ready;
    {
      std::lock_guard<std::mutex> lock(admission_mutex);
      --active;
      DrainWaitingLocked(&ready);
    }
    for (auto& task : ready) sched.Submit(std::move(task));
  }

  void SetMaxActive(int max_queries) {
    std::vector<std::unique_ptr<Task>> ready;
    {
      std::lock_guard<std::mutex> lock(admission_mutex);
      max_active = max_queries;
      // A raised cap releases already-waiting queries immediately.
      DrainWaitingLocked(&ready);
    }
    for (auto& task : ready) sched.Submit(std::move(task));
  }

  /// Moves waiting queries into `ready` (oldest first) while slots exist.
  /// Caller holds admission_mutex and submits outside the lock.
  void DrainWaitingLocked(std::vector<std::unique_ptr<Task>>* ready) {
    while (active < max_active && !waiting.empty()) {
      ++active;
      ready->push_back(std::move(waiting.front()));
      waiting.pop_front();
    }
  }
};

namespace {

/// One query in flight: a task that executes one QueryProgram stage per
/// slice and yields between stages, so concurrent queries sharing a worker
/// interleave. Stage state lives in this object, not on any thread — a
/// yielded query can resume on whichever worker picks it up (steals
/// included).
class QueryJob : public Task {
 public:
  QueryJob(const Catalog* catalog, TaskScheduler* sched,
           const QueryProgram& program, const QueryRunOptions& options,
           std::function<void()> on_finished)
      : sched_(sched),
        program_(&program),
        options_(options),
        ctx_(program.MakeContext(catalog)),
        on_finished_(std::move(on_finished)) {}

  std::future<QueryRunResult> GetFuture() { return promise_.get_future(); }

  Status Run(int) override {
    // The size check comes first: a QueryProgram with no stages at all
    // must still produce an (empty) result.
    if (stage_index_ < program_->stages().size()) {
      RunStage(program_->stages()[stage_index_]);
      if (++stage_index_ < program_->stages().size()) return Status::kYield;
    }
    result_.rows = std::move(ctx_->result);
    result_.total_seconds = total_timer_.ElapsedSeconds();
    promise_.set_value(std::move(result_));
    on_finished_();
    return Status::kDone;
  }

 private:
  void RunStage(const QueryProgram::Stage& stage);

  TaskScheduler* sched_;
  const QueryProgram* program_;
  QueryRunOptions options_;
  std::unique_ptr<QueryContext> ctx_;
  /// Keeps compiled modules alive until the query finishes; pushed from
  /// compile tasks on any worker.
  std::vector<std::unique_ptr<CompiledModule>> keepalive_;
  std::mutex keepalive_mutex_;
  QueryRunResult result_;
  size_t stage_index_ = 0;
  Timer total_timer_;  ///< from Submit — total_seconds includes queue wait
  std::promise<QueryRunResult> promise_;
  std::function<void()> on_finished_;
};

void QueryJob::RunStage(const QueryProgram::Stage& stage) {
  const QueryProgram& program = *program_;
  const QueryRunOptions& options = options_;
  const RuntimeRegistry& registry = RuntimeRegistry::Global();

  if (stage.pipeline < 0) {
    stage.step(ctx_.get());
    return;
  }
  const PipelineSpec& spec =
      program.pipelines()[static_cast<size_t>(stage.pipeline)];
  PipelineReport report;
  report.name = spec.name;
  report.tuples = PipelineCardinality(program, spec, *ctx_);

  PipelineBindings bindings = BindPipeline(program, spec, *ctx_);

  if (options.engine == EngineKind::kVolcano) {
    Timer timer;
    RunPipelineVolcano(program, spec, ctx_.get());
    report.exec_seconds = timer.ElapsedSeconds();
    result_.pipelines.push_back(std::move(report));
    return;
  }
  if (options.engine == EngineKind::kVectorized) {
    Timer timer;
    RunPipelineVectorized(program, spec, ctx_.get());
    report.exec_seconds = timer.ElapsedSeconds();
    result_.pipelines.push_back(std::move(report));
    return;
  }

  // Engines below need generated IR.
  GeneratedPipeline generated = GeneratePipeline(spec, bindings);
  report.instructions = generated.instructions;
  report.codegen_millis = generated.codegen_millis;
  result_.codegen_millis_total += generated.codegen_millis;

  if (options.engine == EngineKind::kNaiveIr) {
    // Fig 2's "LLVM IR" mode: interpret the IR objects directly,
    // single-threaded, morsel by morsel.
    const llvm::Function* fn = generated.mod->module().getFunction("worker");
    Timer timer;
    MorselQueue queue(report.tuples);
    MorselRange morsel;
    while (queue.Next(&morsel)) {
      uint64_t args[4] = {0, morsel.begin, morsel.end, 0};
      NaiveIrInterpret(*fn, args, 4, registry);
    }
    report.exec_seconds = timer.ElapsedSeconds();
    result_.pipelines.push_back(std::move(report));
    return;
  }

  AQE_CHECK(options.engine == EngineKind::kCompiled);

  // Bytecode translation (skipped when machine code is compiled up
  // front — the static modes never touch the interpreter).
  const bool needs_bytecode =
      options.strategy == ExecutionStrategy::kBytecode ||
      options.strategy == ExecutionStrategy::kAdaptive;
  BcProgram bytecode;
  if (needs_bytecode) {
    Timer timer;
    bytecode = TranslateToBytecode(
        *generated.mod->module().getFunction("worker"), registry,
        options.translator);
    bytecode.dispatch = options.vm_dispatch;
    report.translate_millis = timer.ElapsedMillis();
    report.register_file_bytes = bytecode.register_file_size;
    result_.translate_millis_total += report.translate_millis;
  }

  FunctionHandle handle(
      needs_bytecode ? &VmWorkerTrampoline : &NeverCalledWorker,
      needs_bytecode ? static_cast<const void*>(&bytecode) : &bytecode);

  PipelineTask task;
  task.handle = &handle;
  task.state = nullptr;  // everything is embedded in the generated code
  task.total_tuples = report.tuples;
  task.function_instructions = generated.instructions;
  task.pipeline_id = stage.pipeline;
  task.compile = [&](ExecMode mode) -> WorkerFn {
    // Regenerate IR (codegen is ~100x cheaper than machine-code
    // generation, Fig 1) so each compilation owns its LLVMContext —
    // required because adaptive compilation runs on a worker thread.
    GeneratedPipeline fresh = GeneratePipeline(spec, bindings);
    auto compiled =
        JitCompile(std::move(*fresh.mod),
                   mode == ExecMode::kOptimized ? JitMode::kOptimized
                                                : JitMode::kUnoptimized,
                   registry);
    auto* fn = reinterpret_cast<WorkerFn>(compiled->Lookup("worker"));
    AQE_CHECK(fn != nullptr);
    std::lock_guard<std::mutex> lock(keepalive_mutex_);
    keepalive_.push_back(std::move(compiled));
    return fn;
  };

  PipelineRunner runner(sched_, options.strategy, options.cost_model,
                        options.trace);
  runner.set_single_threaded(options.single_threaded);
  runner.set_first_evaluation_delay_seconds(
      options.adaptive_first_eval_seconds);
  PipelineRunStats stats = runner.Run(task);
  report.exec_seconds = stats.total_seconds;
  report.final_mode = stats.final_mode;
  report.compiles = stats.compiles;
  for (const auto& [mode, seconds] : stats.compiles) {
    result_.compile_millis_total += seconds * 1e3;
  }
  result_.pipelines.push_back(std::move(report));
}

}  // namespace

QueryEngine::QueryEngine(const Catalog* catalog, int num_threads)
    : impl_(std::make_unique<Impl>(catalog, num_threads)) {}

QueryEngine::~QueryEngine() = default;

int QueryEngine::num_threads() const { return impl_->sched.num_workers(); }

void QueryEngine::set_max_concurrent_queries(int max_queries) {
  AQE_CHECK(max_queries >= 1);
  impl_->SetMaxActive(max_queries);
}

std::future<QueryRunResult> QueryEngine::Submit(
    const QueryProgram& program, const QueryRunOptions& options) {
  Impl* impl = impl_.get();
  auto job = std::make_unique<QueryJob>(
      impl->catalog, &impl->sched, program, options,
      [impl] { impl->OnQueryFinished(); });
  std::future<QueryRunResult> future = job->GetFuture();
  impl_->Admit(std::move(job));
  return future;
}

QueryRunResult QueryEngine::Run(const QueryProgram& program,
                                const QueryRunOptions& options) {
  AQE_CHECK_MSG(TaskScheduler::CurrentScheduler() != &impl_->sched,
                "QueryEngine::Run from one of this engine's own tasks would "
                "deadlock; use Submit");
  return Submit(program, options).get();
}

std::vector<PipelineCompileCosts> QueryEngine::MeasureCompileCosts(
    const QueryProgram& program, bool measure_unopt, bool measure_opt,
    const TranslatorOptions& translator_options) {
  std::vector<PipelineCompileCosts> costs;
  std::unique_ptr<QueryContext> ctx = program.MakeContext(impl_->catalog);
  const RuntimeRegistry& registry = RuntimeRegistry::Global();

  for (const QueryProgram::Stage& stage : program.stages()) {
    if (stage.pipeline < 0) {
      stage.step(ctx.get());
      continue;
    }
    const PipelineSpec& spec =
        program.pipelines()[static_cast<size_t>(stage.pipeline)];
    PipelineBindings bindings = BindPipeline(program, spec, *ctx);
    PipelineCompileCosts cost;
    cost.name = spec.name;

    GeneratedPipeline generated = GeneratePipeline(spec, bindings);
    cost.instructions = generated.instructions;
    cost.codegen_millis = generated.codegen_millis;

    {
      Timer timer;
      BcProgram bytecode = TranslateToBytecode(
          *generated.mod->module().getFunction("worker"), registry,
          translator_options);
      cost.bytecode_millis = timer.ElapsedMillis();
      cost.register_file_bytes = bytecode.register_file_size;
      cost.bytecode_ops = bytecode.code.size();
      cost.fused_ops = bytecode.fused_instructions;
      cost.fused_cmp_branches = bytecode.fused_cmp_branches;
    }
    if (measure_unopt) {
      GeneratedPipeline fresh = GeneratePipeline(spec, bindings);
      Timer timer;
      auto compiled =
          JitCompile(std::move(*fresh.mod), JitMode::kUnoptimized, registry);
      cost.unopt_millis = timer.ElapsedMillis();
    }
    if (measure_opt) {
      GeneratedPipeline fresh = GeneratePipeline(spec, bindings);
      Timer timer;
      auto compiled =
          JitCompile(std::move(*fresh.mod), JitMode::kOptimized, registry);
      cost.opt_millis = timer.ElapsedMillis();
    }
    costs.push_back(std::move(cost));

    // Execute the pipeline (interpreted) so later pipelines can bind to the
    // hash tables / temp tables this one produces.
    RunPipelineVolcano(program, spec, ctx.get());
  }
  return costs;
}

}  // namespace aqe
