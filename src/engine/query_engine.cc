#include "engine/query_engine.h"

#include <memory>
#include <mutex>

#include "codegen/query_compiler.h"
#include "common/status.h"
#include "common/timer.h"
#include "exec/morsel.h"
#include "jit/jit_compiler.h"
#include "jit/naive_interpreter.h"
#include "runtime/runtime_registry.h"
#include "vm/interpreter.h"
#include "volcano/volcano.h"
#include "vectorized/vectorized.h"

namespace aqe {
namespace {

/// WorkerFn trampoline dispatching a morsel into the bytecode VM; `extra`
/// is the BcProgram (§IV-E interoperability).
void VmWorkerTrampoline(void* state, uint64_t begin, uint64_t end,
                        const void* extra) {
  const auto* program = static_cast<const BcProgram*>(extra);
  uint64_t args[4] = {reinterpret_cast<uint64_t>(state), begin, end,
                      reinterpret_cast<uint64_t>(extra)};
  VmExecute(*program, args, 4);
}

void NeverCalledWorker(void*, uint64_t, uint64_t, const void*) {
  AQE_UNREACHABLE("placeholder worker variant must never run");
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kCompiled: return "compiled";
    case EngineKind::kVolcano: return "volcano";
    case EngineKind::kVectorized: return "vectorized";
    case EngineKind::kNaiveIr: return "naive-ir";
  }
  AQE_UNREACHABLE("bad EngineKind");
}

struct QueryEngine::Impl {
  const Catalog* catalog;
  WorkerPool pool;

  Impl(const Catalog* catalog, int num_threads)
      : catalog(catalog), pool(num_threads) {}
};

QueryEngine::QueryEngine(const Catalog* catalog, int num_threads)
    : impl_(std::make_unique<Impl>(catalog, num_threads)) {}

QueryEngine::~QueryEngine() = default;

int QueryEngine::num_threads() const { return impl_->pool.num_threads(); }

QueryRunResult QueryEngine::Run(const QueryProgram& program,
                                const QueryRunOptions& options) {
  QueryRunResult result;
  Timer total_timer;
  std::unique_ptr<QueryContext> ctx = program.MakeContext(impl_->catalog);
  const RuntimeRegistry& registry = RuntimeRegistry::Global();

  // Keeps compiled modules alive until the query finishes.
  std::vector<std::unique_ptr<CompiledModule>> keepalive;
  std::mutex keepalive_mutex;

  for (const QueryProgram::Stage& stage : program.stages()) {
    if (stage.pipeline < 0) {
      stage.step(ctx.get());
      continue;
    }
    const PipelineSpec& spec =
        program.pipelines()[static_cast<size_t>(stage.pipeline)];
    PipelineReport report;
    report.name = spec.name;
    report.tuples = PipelineCardinality(program, spec, *ctx);

    PipelineBindings bindings = BindPipeline(program, spec, *ctx);

    if (options.engine == EngineKind::kVolcano) {
      Timer timer;
      RunPipelineVolcano(program, spec, ctx.get());
      report.exec_seconds = timer.ElapsedSeconds();
      result.pipelines.push_back(std::move(report));
      continue;
    }
    if (options.engine == EngineKind::kVectorized) {
      Timer timer;
      RunPipelineVectorized(program, spec, ctx.get());
      report.exec_seconds = timer.ElapsedSeconds();
      result.pipelines.push_back(std::move(report));
      continue;
    }

    // Engines below need generated IR.
    GeneratedPipeline generated = GeneratePipeline(spec, bindings);
    report.instructions = generated.instructions;
    report.codegen_millis = generated.codegen_millis;
    result.codegen_millis_total += generated.codegen_millis;

    if (options.engine == EngineKind::kNaiveIr) {
      // Fig 2's "LLVM IR" mode: interpret the IR objects directly,
      // single-threaded, morsel by morsel.
      const llvm::Function* fn = generated.mod->module().getFunction("worker");
      Timer timer;
      MorselQueue queue(report.tuples);
      MorselRange morsel;
      while (queue.Next(&morsel)) {
        uint64_t args[4] = {0, morsel.begin, morsel.end, 0};
        NaiveIrInterpret(*fn, args, 4, registry);
      }
      report.exec_seconds = timer.ElapsedSeconds();
      result.pipelines.push_back(std::move(report));
      continue;
    }

    AQE_CHECK(options.engine == EngineKind::kCompiled);

    // Bytecode translation (skipped when machine code is compiled up
    // front — the static modes never touch the interpreter).
    const bool needs_bytecode =
        options.strategy == ExecutionStrategy::kBytecode ||
        options.strategy == ExecutionStrategy::kAdaptive;
    BcProgram bytecode;
    if (needs_bytecode) {
      Timer timer;
      bytecode = TranslateToBytecode(
          *generated.mod->module().getFunction("worker"), registry,
          options.translator);
      bytecode.dispatch = options.vm_dispatch;
      report.translate_millis = timer.ElapsedMillis();
      report.register_file_bytes = bytecode.register_file_size;
      result.translate_millis_total += report.translate_millis;
    }

    FunctionHandle handle(
        needs_bytecode ? &VmWorkerTrampoline : &NeverCalledWorker,
        needs_bytecode ? static_cast<const void*>(&bytecode) : &bytecode);

    PipelineTask task;
    task.handle = &handle;
    task.state = nullptr;  // everything is embedded in the generated code
    task.total_tuples = report.tuples;
    task.function_instructions = generated.instructions;
    task.pipeline_id = stage.pipeline;
    task.compile = [&](ExecMode mode) -> WorkerFn {
      // Regenerate IR (codegen is ~100x cheaper than machine-code
      // generation, Fig 1) so each compilation owns its LLVMContext —
      // required because adaptive compilation runs on a worker thread.
      GeneratedPipeline fresh = GeneratePipeline(spec, bindings);
      auto compiled =
          JitCompile(std::move(*fresh.mod),
                     mode == ExecMode::kOptimized ? JitMode::kOptimized
                                                  : JitMode::kUnoptimized,
                     registry);
      auto* fn = reinterpret_cast<WorkerFn>(compiled->Lookup("worker"));
      AQE_CHECK(fn != nullptr);
      std::lock_guard<std::mutex> lock(keepalive_mutex);
      keepalive.push_back(std::move(compiled));
      return fn;
    };

    PipelineRunner runner(&impl_->pool, options.strategy, options.cost_model,
                          options.trace);
    PipelineRunStats stats = runner.Run(task);
    report.exec_seconds = stats.total_seconds;
    report.final_mode = stats.final_mode;
    report.compiles = stats.compiles;
    for (const auto& [mode, seconds] : stats.compiles) {
      result.compile_millis_total += seconds * 1e3;
    }
    result.pipelines.push_back(std::move(report));
  }

  result.rows = std::move(ctx->result);
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

std::vector<PipelineCompileCosts> QueryEngine::MeasureCompileCosts(
    const QueryProgram& program, bool measure_unopt, bool measure_opt,
    const TranslatorOptions& translator_options) {
  std::vector<PipelineCompileCosts> costs;
  std::unique_ptr<QueryContext> ctx = program.MakeContext(impl_->catalog);
  const RuntimeRegistry& registry = RuntimeRegistry::Global();

  for (const QueryProgram::Stage& stage : program.stages()) {
    if (stage.pipeline < 0) {
      stage.step(ctx.get());
      continue;
    }
    const PipelineSpec& spec =
        program.pipelines()[static_cast<size_t>(stage.pipeline)];
    PipelineBindings bindings = BindPipeline(program, spec, *ctx);
    PipelineCompileCosts cost;
    cost.name = spec.name;

    GeneratedPipeline generated = GeneratePipeline(spec, bindings);
    cost.instructions = generated.instructions;
    cost.codegen_millis = generated.codegen_millis;

    {
      Timer timer;
      BcProgram bytecode = TranslateToBytecode(
          *generated.mod->module().getFunction("worker"), registry,
          translator_options);
      cost.bytecode_millis = timer.ElapsedMillis();
      cost.register_file_bytes = bytecode.register_file_size;
      cost.bytecode_ops = bytecode.code.size();
      cost.fused_ops = bytecode.fused_instructions;
      cost.fused_cmp_branches = bytecode.fused_cmp_branches;
    }
    if (measure_unopt) {
      GeneratedPipeline fresh = GeneratePipeline(spec, bindings);
      Timer timer;
      auto compiled =
          JitCompile(std::move(*fresh.mod), JitMode::kUnoptimized, registry);
      cost.unopt_millis = timer.ElapsedMillis();
    }
    if (measure_opt) {
      GeneratedPipeline fresh = GeneratePipeline(spec, bindings);
      Timer timer;
      auto compiled =
          JitCompile(std::move(*fresh.mod), JitMode::kOptimized, registry);
      cost.opt_millis = timer.ElapsedMillis();
    }
    costs.push_back(std::move(cost));

    // Execute the pipeline (interpreted) so later pipelines can bind to the
    // hash tables / temp tables this one produces.
    RunPipelineVolcano(program, spec, ctx.get());
  }
  return costs;
}

}  // namespace aqe
