#ifndef AQE_OBS_TRACER_H_
#define AQE_OBS_TRACER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace_ring.h"

namespace aqe {

/// A tracer's full event state at one moment: every non-empty lane with its
/// retained events (oldest first) plus drop accounting, and the timeline
/// origin the exporters subtract.
struct TraceSnapshot {
  struct Lane {
    int lane = 0;
    uint64_t recorded = 0;
    uint64_t dropped = 0;
    std::vector<TraceEvent> events;
  };
  int64_t origin_nanos = 0;
  std::vector<Lane> lanes;

  uint64_t total_recorded() const {
    uint64_t n = 0;
    for (const Lane& l : lanes) n += l.recorded;
    return n;
  }
  uint64_t total_dropped() const {
    uint64_t n = 0;
    for (const Lane& l : lanes) n += l.dropped;
    return n;
  }
};

/// Always-on, per-thread trace recorder: one single-producer TraceRing per
/// runtime thread index (scheduler workers [0, 48), leased external
/// controllers [48, 64)), allocated lazily on a lane's first event so idle
/// lanes cost one atomic pointer. Record() is the hot path — callers pass
/// their own runtime thread index as the lane and must be that lane's only
/// producer (worker indices and external-controller leases are unique per
/// live thread, so engine call sites satisfy this by construction).
class EngineTracer {
 public:
  static constexpr int kMaxLanes = 64;
  static constexpr size_t kDefaultRingEvents = 4096;

  /// `ring_capacity` = events retained per lane; 0 selects the
  /// AQE_TRACE_RING_EVENTS env override or the default.
  explicit EngineTracer(size_t ring_capacity = 0);

  EngineTracer(const EngineTracer&) = delete;
  EngineTracer& operator=(const EngineTracer&) = delete;
  ~EngineTracer();

  /// Records into `lane`'s ring (caller must be the lane's single
  /// producer; out-of-range lanes clamp to 0).
  void Record(int lane, const TraceEvent& event);

  /// Steady-clock origin (construction / last Reset); exporters emit
  /// timestamps relative to it.
  int64_t origin_nanos() const {
    return origin_nanos_.load(std::memory_order_relaxed);
  }

  /// Clears every lane and restarts the timeline. Quiescent producers
  /// only (same contract as the old TraceRecorder::Start).
  void Reset();

  TraceSnapshot Snapshot() const;

  uint64_t total_recorded() const;
  uint64_t total_dropped() const;

  /// Per-lane record/drop counters without copying events — cheap enough
  /// for every ObservabilitySnapshot(). Only allocated lanes appear.
  struct LaneStats {
    int lane = 0;
    uint64_t recorded = 0;
    uint64_t dropped = 0;
  };
  std::vector<LaneStats> lane_stats() const;

 private:
  TraceRing* Lane(int lane);

  size_t ring_capacity_;
  std::atomic<TraceRing*> lanes_[kMaxLanes] = {};
  std::mutex create_mu_;  ///< serializes lazy lane allocation only
  std::atomic<int64_t> origin_nanos_;
};

}  // namespace aqe

#endif  // AQE_OBS_TRACER_H_
