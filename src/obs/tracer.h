#ifndef AQE_OBS_TRACER_H_
#define AQE_OBS_TRACER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace_ring.h"

namespace aqe {

/// A tracer's full event state at one moment: every non-empty lane with its
/// retained events (oldest first) plus drop accounting, and the timeline
/// origin the exporters subtract. `recorded` counts events *offered* to the
/// lane; `dropped = dropped_sampled + dropped_lost` splits what didn't
/// survive into deliberate pressure sampling of bulk events vs genuine
/// loss of lossless-class events (the CI gate requires the latter be 0).
struct TraceSnapshot {
  struct Lane {
    int lane = 0;
    uint64_t recorded = 0;
    uint64_t dropped = 0;
    uint64_t dropped_sampled = 0;
    uint64_t dropped_lost = 0;
    std::vector<TraceEvent> events;
  };
  int64_t origin_nanos = 0;
  std::vector<Lane> lanes;

  uint64_t total_recorded() const {
    uint64_t n = 0;
    for (const Lane& l : lanes) n += l.recorded;
    return n;
  }
  uint64_t total_dropped() const {
    uint64_t n = 0;
    for (const Lane& l : lanes) n += l.dropped;
    return n;
  }
  uint64_t total_dropped_sampled() const {
    uint64_t n = 0;
    for (const Lane& l : lanes) n += l.dropped_sampled;
    return n;
  }
  uint64_t total_dropped_lost() const {
    uint64_t n = 0;
    for (const Lane& l : lanes) n += l.dropped_lost;
    return n;
  }
};

/// Always-on, per-thread trace recorder: per runtime thread index
/// (scheduler workers [0, 48), leased external controllers [48, 64)) a
/// *pair* of single-producer TraceRings, allocated lazily on a lane's
/// first event so idle lanes cost one atomic pointer. Record() is the hot
/// path — callers pass their own runtime thread index as the lane and must
/// be that lane's only producer (worker indices and external-controller
/// leases are unique per live thread, so engine call sites satisfy this by
/// construction).
///
/// The pair splits the event vocabulary by loss tolerance:
///  - **bulk** (kMorsel, kTaskSlice): the high-frequency classes that
///    saturate rings under load. Once the bulk ring has wrapped, further
///    bulk events are sampled 1-in-kBulkSampleEvery; skipped events and
///    bulk-ring overwrites count as `dropped_sampled` — a deliberate,
///    accounted decimation, not data loss.
///  - **critical** (everything else: admission waits, mode switches,
///    compiles, cache traffic, anomalies, query/pipeline markers): sized
///    at max(kMinCriticalEvents, bulk/4) and kept lossless by sizing;
///    overwrites there count as `dropped_lost`, which ci/check_trace.py
///    gates at 0.
class EngineTracer {
 public:
  static constexpr int kMaxLanes = 64;
  static constexpr size_t kDefaultRingEvents = 4096;
  static constexpr uint64_t kBulkSampleEvery = 8;
  static constexpr size_t kMinCriticalEvents = 256;

  /// `ring_capacity` = bulk events retained per lane; 0 selects the
  /// AQE_TRACE_RING_EVENTS env override or the default. The critical ring
  /// gets max(kMinCriticalEvents, ring_capacity / 4).
  explicit EngineTracer(size_t ring_capacity = 0);

  EngineTracer(const EngineTracer&) = delete;
  EngineTracer& operator=(const EngineTracer&) = delete;
  ~EngineTracer();

  /// Records into `lane`'s ring pair (caller must be the lane's single
  /// producer; out-of-range lanes clamp to 0).
  void Record(int lane, const TraceEvent& event);

  /// Steady-clock origin (construction / last Reset); exporters emit
  /// timestamps relative to it.
  int64_t origin_nanos() const {
    return origin_nanos_.load(std::memory_order_relaxed);
  }

  /// Clears every lane and restarts the timeline. Quiescent producers
  /// only (same contract as the old TraceRecorder::Start).
  void Reset();

  TraceSnapshot Snapshot() const;

  uint64_t total_recorded() const;
  uint64_t total_dropped() const;
  uint64_t total_dropped_sampled() const;
  uint64_t total_dropped_lost() const;

  /// Per-lane record/drop counters without copying events — cheap enough
  /// for every ObservabilitySnapshot(). Only allocated lanes appear.
  struct LaneStats {
    int lane = 0;
    uint64_t recorded = 0;
    uint64_t dropped = 0;
    uint64_t dropped_sampled = 0;
    uint64_t dropped_lost = 0;
  };
  std::vector<LaneStats> lane_stats() const;

 private:
  /// One lane's ring pair plus the offered/sampling accounting. The
  /// counters are written by the lane's single producer and read by
  /// snapshots from any thread, hence atomic with relaxed ordering.
  struct LaneRings {
    LaneRings(size_t bulk_capacity, size_t critical_capacity)
        : bulk(bulk_capacity), critical(critical_capacity) {}
    TraceRing bulk;
    TraceRing critical;
    std::atomic<uint64_t> offered{0};        ///< every event Record()ed
    std::atomic<uint64_t> sampled_seq{0};    ///< bulk events under pressure
    std::atomic<uint64_t> sampled_skips{0};  ///< bulk events decimated away

    uint64_t dropped_sampled() const {
      return sampled_skips.load(std::memory_order_relaxed) + bulk.dropped();
    }
    uint64_t dropped_lost() const { return critical.dropped(); }
  };

  LaneRings* Lane(int lane);

  size_t ring_capacity_;
  std::atomic<LaneRings*> lanes_[kMaxLanes] = {};
  std::mutex create_mu_;  ///< serializes lazy lane allocation only
  std::atomic<int64_t> origin_nanos_;
};

}  // namespace aqe

#endif  // AQE_OBS_TRACER_H_
