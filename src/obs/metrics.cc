#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace aqe {

namespace {

int Log2Floor(uint64_t v) {
  int log = 0;
  while (v >>= 1) ++log;
  return log;
}

}  // namespace

int Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int octave = Log2Floor(value);
  const int sub = static_cast<int>((value - (uint64_t{1} << octave)) >>
                                   (octave - kSubBucketBits));
  return (octave - kSubBucketBits + 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  const int octave = (bucket >> kSubBucketBits) + kSubBucketBits - 1;
  const uint64_t sub = static_cast<uint64_t>(bucket & (kSubBuckets - 1));
  return (uint64_t{1} << octave) + (sub << (octave - kSubBucketBits));
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket + 1 >= kBuckets) return UINT64_MAX;
  return BucketLowerBound(bucket + 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (cur < value && !max_.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  uint64_t buckets[kBuckets];
  uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    total += buckets[b];
  }
  HistogramSnapshot snap;
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  if (total == 0) return snap;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets[b] != 0) {
      snap.buckets.emplace_back(BucketUpperBound(b), buckets[b]);
    }
  }

  // Percentiles by linear interpolation inside the log-linear bucket that
  // crosses the target rank; the top percentile clamps to the exact max.
  auto percentile = [&](double p) -> double {
    const double target = p * static_cast<double>(total);
    uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (buckets[b] == 0) continue;
      const double before = static_cast<double>(cum);
      cum += buckets[b];
      if (static_cast<double>(cum) < target) continue;
      const double lower = static_cast<double>(BucketLowerBound(b));
      const double upper =
          std::min(static_cast<double>(BucketUpperBound(b)),
                   static_cast<double>(snap.max) + 1.0);
      const double frac =
          (target - before) / static_cast<double>(buckets[b]);
      return std::min(lower + frac * (upper - lower),
                      static_cast<double>(snap.max));
    }
    return static_cast<double>(snap.max);
  };
  snap.p50 = percentile(0.50);
  snap.p95 = percentile(0.95);
  snap.p99 = percentile(0.99);
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  char buf[256];
  bool first = true;
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", first ? "" : ",",
                  name.c_str(), static_cast<unsigned long long>(v));
    out += buf;
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%lld", first ? "" : ",",
                  name.c_str(), static_cast<long long>(v));
    out += buf;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    // Never-recorded series stay out of exports (they still appear in the
    // in-memory Snapshot so callers can probe them by name).
    if (h.count == 0) continue;
    std::snprintf(
        buf, sizeof(buf),
        "%s\"%s\":{\"count\":%llu,\"sum\":%llu,\"max\":%llu,"
        "\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,"
        "\"buckets\":[",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum),
        static_cast<unsigned long long>(h.max), h.mean(), h.p50, h.p95,
        h.p99);
    out += buf;
    bool first_bucket = true;
    for (const auto& [upper, n] : h.buckets) {
      std::snprintf(buf, sizeof(buf), "%s[%llu,%llu]",
                    first_bucket ? "" : ",",
                    static_cast<unsigned long long>(upper),
                    static_cast<unsigned long long>(n));
      out += buf;
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += "}}";
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

}  // namespace aqe
