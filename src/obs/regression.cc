#include "obs/regression.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"

namespace aqe {

namespace {
constexpr double kEwmaAlpha = 0.3;  ///< matches the cache's service EWMA
}  // namespace

const char* AnomalyCauseName(AnomalyCause cause) {
  switch (cause) {
    case AnomalyCause::kCacheEvicted: return "cache-evicted";
    case AnomalyCause::kModeRegressed: return "mode-regressed";
    case AnomalyCause::kQueueWait: return "queue-wait";
    case AnomalyCause::kMemoryBlowup: return "memory-blowup";
    default: return "unknown";
  }
}

RegressionTracker::RegressionTracker(double deviation_factor)
    : factor_(deviation_factor) {}

bool RegressionTracker::Observe(const Observation& obs,
                                AnomalyRecord* anomaly) {
  std::lock_guard<std::mutex> lock(mu_);
  Tracked& t = tracked_[obs.fingerprint];

  bool flagged = false;
  AnomalyRecord rec;
  if (t.runs >= kMinRuns) {
    // Deviation test against the *pre-update* baseline: a factor over the
    // EWMA (relative) and a multiple of the MAD estimate (absolute guard
    // so microsecond-scale noise on fast plans never alerts).
    const double dev = obs.service_ms - t.ewma_ms;
    const double guard = 4.0 * std::max(t.mad_ms, kMadFloorMs);
    if (obs.service_ms > factor_ * t.ewma_ms && dev > guard) {
      flagged = true;
      rec.fingerprint = obs.fingerprint;
      rec.query_id = obs.query_id;
      rec.nanos = MonotonicNanos();
      rec.expected_ms = t.ewma_ms;
      rec.observed_ms = obs.service_ms;
      rec.queue_wait_ms = obs.queue_wait_ms;
      rec.expected_peak_bytes = static_cast<uint64_t>(t.ewma_peak_bytes);
      rec.observed_peak_bytes = obs.peak_bytes;
      rec.plan_name = obs.plan_name;
      // kPeakFloorBytes keeps KiB-scale jitter on small plans from being
      // named a blowup; the baseline must also have real support.
      constexpr double kPeakFloorBytes = 1 << 20;
      if (t.evicted_since_last) {
        rec.cause = AnomalyCause::kCacheEvicted;
      } else if (t.ewma_peak_bytes > 0 &&
                 static_cast<double>(obs.peak_bytes) >
                     4.0 * t.ewma_peak_bytes &&
                 static_cast<double>(obs.peak_bytes) > kPeakFloorBytes) {
        rec.cause = AnomalyCause::kMemoryBlowup;
      } else if (obs.final_mode < t.best_mode) {
        rec.cause = AnomalyCause::kModeRegressed;
      } else if (obs.queue_wait_ms > obs.service_ms) {
        rec.cause = AnomalyCause::kQueueWait;
      } else {
        rec.cause = AnomalyCause::kUnknown;
      }
    }
  }

  // Fold the sample in (anomalous ones too: a persistent shift converges
  // to the new normal instead of alerting on every run).
  if (t.runs == 0) {
    t.ewma_ms = obs.service_ms;
    t.ewma_peak_bytes = static_cast<double>(obs.peak_bytes);
  } else {
    const double abs_dev = std::fabs(obs.service_ms - t.ewma_ms);
    t.mad_ms = t.runs == 1
                   ? abs_dev
                   : kEwmaAlpha * abs_dev + (1 - kEwmaAlpha) * t.mad_ms;
    t.ewma_ms =
        kEwmaAlpha * obs.service_ms + (1 - kEwmaAlpha) * t.ewma_ms;
    t.ewma_peak_bytes = kEwmaAlpha * static_cast<double>(obs.peak_bytes) +
                        (1 - kEwmaAlpha) * t.ewma_peak_bytes;
  }
  ++t.runs;
  t.best_mode = std::max(t.best_mode, obs.final_mode);
  t.evicted_since_last = false;  // consumed by this run's cause probe

  if (flagged) {
    ++anomaly_count_;
    recent_.push_back(rec);
    if (recent_.size() > kRecentAnomalies) recent_.pop_front();
    if (anomaly != nullptr) *anomaly = std::move(rec);
  }
  return flagged;
}

void RegressionTracker::MarkEvicted(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tracked_.find(fingerprint);
  if (it != tracked_.end()) it->second.evicted_since_last = true;
}

std::vector<AnomalyRecord> RegressionTracker::RecentAnomalies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {recent_.begin(), recent_.end()};
}

uint64_t RegressionTracker::anomaly_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return anomaly_count_;
}

void RegressionTracker::set_deviation_factor(double factor) {
  std::lock_guard<std::mutex> lock(mu_);
  factor_ = factor;
}

void RegressionTracker::ResetAnomalies() {
  std::lock_guard<std::mutex> lock(mu_);
  recent_.clear();
  anomaly_count_ = 0;
}

}  // namespace aqe
