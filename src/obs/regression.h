#ifndef AQE_OBS_REGRESSION_H_
#define AQE_OBS_REGRESSION_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/function_handle.h"

namespace aqe {

/// Machine-readable "why did this query template get slower" probe, in
/// priority order (the first applicable cause wins).
enum class AnomalyCause : uint8_t {
  kUnknown = 0,
  /// The artifact cache evicted this fingerprint's entry since its last
  /// run: the slowdown is re-translation / re-compilation.
  kCacheEvicted = 1,
  /// The run finished in a slower ExecMode than the best this fingerprint
  /// has reached (e.g. the adaptive controller never re-upgraded).
  kModeRegressed = 2,
  /// Admission/queue wait exceeded the service time itself: load, not the
  /// plan, dominated the latency.
  kQueueWait = 3,
  /// Peak memory blew past the fingerprint's baseline by 4x: the slowdown
  /// tracks allocation churn (hash-table growth, spill-scale buffering).
  kMemoryBlowup = 4,
};

const char* AnomalyCauseName(AnomalyCause cause);

struct AnomalyRecord {
  uint64_t fingerprint = 0;  ///< ArtifactCacheKey of the plan
  uint32_t query_id = 0;
  int64_t nanos = 0;  ///< MonotonicNanos at detection
  AnomalyCause cause = AnomalyCause::kUnknown;
  double expected_ms = 0;  ///< the fingerprint's EWMA before this run
  double observed_ms = 0;  ///< this run's service time
  double queue_wait_ms = 0;
  uint64_t expected_peak_bytes = 0;  ///< peak-memory EWMA before this run
  uint64_t observed_peak_bytes = 0;  ///< this run's tracked peak
  std::string plan_name;
};

/// Per-fingerprint latency sentinel: maintains an EWMA and a MAD-style
/// deviation estimate of service time per plan fingerprint and flags a
/// completed run as anomalous when it deviates by a configurable factor.
/// The cache reports evictions in (MarkEvicted) so the probe can name
/// "your compiled variant was evicted" as the cause. All methods are
/// thread-safe; Observe is one mutex acquisition per completed query —
/// noise next to a query's admission bookkeeping.
class RegressionTracker {
 public:
  /// What the engine reports per completed query.
  struct Observation {
    uint64_t fingerprint = 0;
    uint32_t query_id = 0;
    double service_ms = 0;
    double queue_wait_ms = 0;
    /// Fastest final mode across the query's pipelines this run.
    ExecMode final_mode = ExecMode::kBytecode;
    /// Tracked peak memory of this run (0 when accounting is off).
    uint64_t peak_bytes = 0;
    std::string plan_name;
  };

  static constexpr uint64_t kMinRuns = 3;       ///< runs before flagging
  static constexpr double kMadFloorMs = 0.25;   ///< deviation guard floor
  static constexpr size_t kRecentAnomalies = 64;

  explicit RegressionTracker(double deviation_factor = 4.0);

  /// Folds one completed run into the fingerprint's baseline. Returns true
  /// (and fills `anomaly`, which may be null) when the run deviates:
  /// service > factor x EWMA *and* beyond 4 x the MAD guard, after at
  /// least kMinRuns prior runs. The anomalous sample still updates the
  /// baseline, so a persistent shift becomes the new normal instead of
  /// alerting forever.
  bool Observe(const Observation& obs, AnomalyRecord* anomaly);

  /// The artifact cache evicted this fingerprint's entry; the next
  /// anomalous run of the fingerprint is attributed to the eviction.
  void MarkEvicted(uint64_t fingerprint);

  std::vector<AnomalyRecord> RecentAnomalies() const;
  uint64_t anomaly_count() const;

  void set_deviation_factor(double factor);

  /// Clears the anomaly ring and counter. Baselines persist: they describe
  /// the workload, not a measurement phase (phase-delta hygiene resets
  /// counters, not state).
  void ResetAnomalies();

 private:
  struct Tracked {
    double ewma_ms = 0;
    double mad_ms = 0;  ///< EWMA of |deviation| (MAD-style, same alpha)
    double ewma_peak_bytes = 0;
    uint64_t runs = 0;
    ExecMode best_mode = ExecMode::kBytecode;
    bool evicted_since_last = false;
  };

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Tracked> tracked_;
  std::deque<AnomalyRecord> recent_;
  uint64_t anomaly_count_ = 0;
  double factor_;
};

}  // namespace aqe

#endif  // AQE_OBS_REGRESSION_H_
