#include "obs/export.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "exec/function_handle.h"
#include "index/access_path.h"

namespace aqe {

namespace {

constexpr int kFirstExternalLane = 48;  ///< mirrors the scheduler's lease base

void Append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

double Micros(int64_t nanos, int64_t origin) {
  return static_cast<double>(nanos - origin) / 1e3;
}

const char* ModeName(uint8_t detail) {
  return ExecModeName(static_cast<ExecMode>(detail));
}

/// Event-specific "args" object, matching the schema in trace_event.h.
std::string EventArgs(const TraceEvent& e) {
  std::string args;
  switch (e.kind) {
    case TraceEventKind::kAdmissionWait:
      Append(args, "{\"class\":%d,\"est_cost_ms\":%.3f,\"query\":%u}",
             static_cast<int>(e.detail), e.d0, e.query_id);
      break;
    case TraceEventKind::kTaskSlice:
      Append(args, "{\"class\":%d,\"stage\":%llu,\"query\":%u}",
             static_cast<int>(e.detail),
             static_cast<unsigned long long>(e.payload), e.query_id);
      break;
    case TraceEventKind::kMorsel:
      Append(args, "{\"mode\":\"%s\",\"tuples\":%llu,\"pipeline\":%u}",
             ModeName(e.detail), static_cast<unsigned long long>(e.payload),
             static_cast<unsigned>(e.pipeline_id));
      break;
    case TraceEventKind::kPipelineStart:
      Append(args, "{\"tuples\":%llu,\"pipeline\":%u}",
             static_cast<unsigned long long>(e.payload),
             static_cast<unsigned>(e.pipeline_id));
      break;
    case TraceEventKind::kModeSwitch:
      Append(args,
             "{\"target\":\"%s\",\"remaining_tuples\":%llu,"
             "\"r0_tuples_per_s\":%.1f,\"t_current_s\":%.6f,"
             "\"t_chosen_s\":%.6f,\"runtime_call_fraction\":%.4f}",
             ModeName(e.detail), static_cast<unsigned long long>(e.payload),
             e.d0, e.d1, e.d2, TraceEventBitsToDouble(e.payload2));
      break;
    case TraceEventKind::kCompile:
      Append(args, "{\"target\":\"%s\",\"instructions\":%llu}",
             ModeName(e.detail), static_cast<unsigned long long>(e.payload));
      break;
    case TraceEventKind::kCacheHit:
      Append(args, "{\"artifact\":\"%s\"}",
             e.payload == 0 ? "bytecode" : "code");
      break;
    case TraceEventKind::kCachePublish:
      Append(args, "{\"mode\":\"%s\"}", ModeName(e.detail));
      break;
    case TraceEventKind::kQueryDone:
      Append(args,
             "{\"rows\":%llu,\"queue_wait_s\":%.6f,\"total_s\":%.6f,"
             "\"query\":%u}",
             static_cast<unsigned long long>(e.payload), e.d0, e.d1,
             e.query_id);
      break;
    case TraceEventKind::kAnomaly:
      Append(args,
             "{\"fingerprint\":\"%016llx\",\"cause\":%d,"
             "\"expected_ms\":%.3f,\"observed_ms\":%.3f,"
             "\"queue_wait_ms\":%.3f,\"query\":%u}",
             static_cast<unsigned long long>(e.payload),
             static_cast<int>(e.detail), e.d0, e.d1, e.d2, e.query_id);
      break;
    case TraceEventKind::kScanPrune:
      Append(args,
             "{\"path\":\"%s\",\"selected_rows\":%llu,\"table_rows\":%llu,"
             "\"selectivity\":%.6f,\"analysis_s\":%.6f,"
             "\"posting_entries\":%.0f}",
             AccessPathKindName(static_cast<AccessPathKind>(e.detail)),
             static_cast<unsigned long long>(e.payload),
             static_cast<unsigned long long>(e.payload2), e.d0, e.d1, e.d2);
      break;
    default:
      args = "{}";
      break;
  }
  return args;
}

}  // namespace

std::string ChromeTraceJson(const TraceSnapshot& snapshot) {
  const int64_t origin = snapshot.origin_nanos;
  std::string out;
  out.reserve(snapshot.total_recorded() * 160 + 1024);
  Append(out,
         "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"recorded\":%llu,"
         "\"dropped\":%llu,\"dropped_sampled\":%llu,\"dropped_lost\":%llu},"
         "\"traceEvents\":[",
         static_cast<unsigned long long>(snapshot.total_recorded()),
         static_cast<unsigned long long>(snapshot.total_dropped()),
         static_cast<unsigned long long>(snapshot.total_dropped_sampled()),
         static_cast<unsigned long long>(snapshot.total_dropped_lost()));
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
    out += '\n';
  };

  // One named, ordered track per lane.
  for (const auto& lane : snapshot.lanes) {
    comma();
    Append(out,
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\","
           "\"args\":{\"name\":\"%s %d\"}}",
           lane.lane, lane.lane < kFirstExternalLane ? "worker" : "control",
           lane.lane < kFirstExternalLane ? lane.lane
                                          : lane.lane - kFirstExternalLane);
    comma();
    Append(out,
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":"
           "\"thread_sort_index\",\"args\":{\"sort_index\":%d}}",
           lane.lane, lane.lane);
  }

  // Spans and instants, per lane.
  for (const auto& lane : snapshot.lanes) {
    for (const TraceEvent& e : lane.events) {
      const bool instant = e.end_nanos <= e.start_nanos;
      comma();
      if (instant) {
        Append(out,
               "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
               "\"cat\":\"engine\",\"s\":\"t\",\"ts\":%.3f,\"args\":%s}",
               lane.lane, TraceEventKindName(e.kind),
               Micros(e.start_nanos, origin), EventArgs(e).c_str());
      } else {
        Append(out,
               "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
               "\"cat\":\"engine\",\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}",
               lane.lane, TraceEventKindName(e.kind),
               Micros(e.start_nanos, origin),
               static_cast<double>(e.end_nanos - e.start_nanos) / 1e3,
               EventArgs(e).c_str());
      }
    }
  }

  // One flow per query: start at the admission wait, step through every
  // task slice (they may run on different workers), finish at completion.
  struct FlowPoint {
    int64_t nanos;
    int lane;
    char ph;  ///< 's' start, 't' step, 'f' finish
    uint32_t query_id;
  };
  std::vector<FlowPoint> flows;
  for (const auto& lane : snapshot.lanes) {
    for (const TraceEvent& e : lane.events) {
      if (e.query_id == 0) continue;
      if (e.kind == TraceEventKind::kAdmissionWait) {
        flows.push_back({e.start_nanos, lane.lane, 's', e.query_id});
      } else if (e.kind == TraceEventKind::kTaskSlice) {
        flows.push_back({e.start_nanos, lane.lane, 't', e.query_id});
      } else if (e.kind == TraceEventKind::kQueryDone) {
        flows.push_back({e.end_nanos, lane.lane, 'f', e.query_id});
      }
    }
  }
  std::sort(flows.begin(), flows.end(),
            [](const FlowPoint& a, const FlowPoint& b) {
              if (a.query_id != b.query_id) return a.query_id < b.query_id;
              return a.nanos < b.nanos;
            });
  for (size_t i = 0; i < flows.size(); ++i) {
    const FlowPoint& f = flows[i];
    // The ring may have dropped the admission event; promote the first
    // surviving point of each query to the flow start.
    const bool first_of_query =
        i == 0 || flows[i - 1].query_id != f.query_id;
    const char ph = first_of_query ? 's' : f.ph == 's' ? 't' : f.ph;
    comma();
    Append(out,
           "{\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"name\":\"query\","
           "\"cat\":\"flow\",\"id\":%u,\"ts\":%.3f%s}",
           ph, f.lane, f.query_id, Micros(f.nanos, origin),
           ph == 'f' ? ",\"bp\":\"e\"" : "");
  }

  out += "\n]}\n";
  return out;
}

namespace {

/// Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names use
/// '.'-separated segments and '-' inside words; both map to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = "aqe_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.counters.size() * 64 +
              snapshot.histograms.size() * 512 + 1024);
  for (const auto& [name, v] : snapshot.counters) {
    const std::string n = PrometheusName(name);
    Append(out, "# TYPE %s counter\n%s %llu\n", n.c_str(), n.c_str(),
           static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string n = PrometheusName(name);
    Append(out, "# TYPE %s gauge\n%s %lld\n", n.c_str(), n.c_str(),
           static_cast<long long>(v));
  }
  for (const auto& [name, h] : snapshot.histograms) {
    if (h.count == 0) continue;  // never-recorded series stay out of exports
    const std::string n = PrometheusName(name);
    Append(out, "# TYPE %s histogram\n", n.c_str());
    uint64_t cum = 0;
    for (const auto& [upper, count] : h.buckets) {
      cum += count;
      Append(out, "%s_bucket{le=\"%llu\"} %llu\n", n.c_str(),
             static_cast<unsigned long long>(upper),
             static_cast<unsigned long long>(cum));
    }
    Append(out, "%s_bucket{le=\"+Inf\"} %llu\n", n.c_str(),
           static_cast<unsigned long long>(h.count));
    Append(out, "%s_sum %llu\n", n.c_str(),
           static_cast<unsigned long long>(h.sum));
    Append(out, "%s_count %llu\n", n.c_str(),
           static_cast<unsigned long long>(h.count));
  }
  return out;
}

std::string RenderTextTrace(const TraceSnapshot& snapshot, int num_lanes,
                            int width) {
  const int64_t origin = snapshot.origin_nanos;
  int64_t horizon = 0;
  size_t drawable = 0;
  for (const auto& lane : snapshot.lanes) {
    for (const TraceEvent& e : lane.events) {
      if (e.kind != TraceEventKind::kMorsel &&
          e.kind != TraceEventKind::kCompile) {
        continue;
      }
      horizon = std::max(horizon, e.end_nanos - origin);
      ++drawable;
    }
  }
  if (drawable == 0) return "(empty trace)\n";
  if (horizon == 0) horizon = 1;

  std::vector<std::string> lanes(static_cast<size_t>(num_lanes),
                                 std::string(static_cast<size_t>(width), '.'));
  for (const auto& lane : snapshot.lanes) {
    if (lane.lane < 0 || lane.lane >= num_lanes) continue;
    std::string& row = lanes[static_cast<size_t>(lane.lane)];
    for (const TraceEvent& e : lane.events) {
      char symbol;
      if (e.kind == TraceEventKind::kCompile) {
        symbol = '#';
      } else if (e.kind == TraceEventKind::kMorsel) {
        const char digit = static_cast<char>('0' + e.pipeline_id % 10);
        symbol = static_cast<ExecMode>(e.detail) == ExecMode::kBytecode
                     ? digit
                     : static_cast<char>('A' + e.pipeline_id % 10);
      } else {
        continue;
      }
      int from =
          static_cast<int>((e.start_nanos - origin) * width / horizon);
      int to = static_cast<int>((e.end_nanos - origin) * width / horizon);
      from = std::clamp(from, 0, width - 1);
      to = std::clamp(to, from, width - 1);
      for (int c = from; c <= to; ++c) {
        row[static_cast<size_t>(c)] = symbol;
      }
    }
  }
  std::string out;
  out += "time ->  (digits: interpreted morsels by pipeline; letters: "
         "compiled morsels; '#': compilation)\n";
  char label[32];
  for (int t = 0; t < num_lanes; ++t) {
    std::snprintf(label, sizeof(label), "thread %d |", t);
    out += label;
    out += lanes[static_cast<size_t>(t)];
    out += "|\n";
  }
  Append(out, "total: %.2f ms\n", static_cast<double>(horizon) / 1e6);
  return out;
}

}  // namespace aqe
