#include "obs/trace_ring.h"

#include <cstring>

namespace aqe {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(size_t capacity) : capacity_(RoundUpPow2(capacity)) {
  words_ = std::make_unique<std::atomic<uint64_t>[]>(capacity_ *
                                                     kWordsPerEvent);
  // Value-initialized by make_unique; nothing reads slots beyond head_
  // anyway.
}

void TraceRing::Push(const TraceEvent& event) {
  uint64_t words[kWordsPerEvent];
  std::memcpy(words, &event, sizeof(event));
  const uint64_t seq = head_.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* slot =
      &words_[(seq & (capacity_ - 1)) * kWordsPerEvent];
  for (size_t i = 0; i < kWordsPerEvent; ++i) {
    slot[i].store(words[i], std::memory_order_relaxed);
  }
  head_.store(seq + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const uint64_t end = head_.load(std::memory_order_acquire);
  const uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  std::vector<TraceEvent> events;
  events.reserve(static_cast<size_t>(end - begin));
  std::vector<uint64_t> seqs;
  seqs.reserve(static_cast<size_t>(end - begin));
  uint64_t words[kWordsPerEvent];
  for (uint64_t seq = begin; seq < end; ++seq) {
    const std::atomic<uint64_t>* slot =
        &words_[(seq & (capacity_ - 1)) * kWordsPerEvent];
    for (size_t i = 0; i < kWordsPerEvent; ++i) {
      words[i] = slot[i].load(std::memory_order_relaxed);
    }
    TraceEvent e;
    std::memcpy(&e, words, sizeof(e));
    events.push_back(e);
    seqs.push_back(seq);
  }
  // The producer may have lapped us during the copy: any slot it re-entered
  // holds (possibly torn) newer words. Re-read head; the push in progress
  // (at most one, single producer) targets slot `final % capacity`, which
  // aliases seq `final - capacity` — discard up to and including it.
  const uint64_t final_head = head_.load(std::memory_order_acquire);
  const uint64_t safe_begin =
      final_head + 1 > capacity_ ? final_head + 1 - capacity_ : 0;
  if (safe_begin > begin) {
    size_t keep_from = 0;
    while (keep_from < seqs.size() && seqs[keep_from] < safe_begin) {
      ++keep_from;
    }
    events.erase(events.begin(),
                 events.begin() + static_cast<ptrdiff_t>(keep_from));
  }
  return events;
}

}  // namespace aqe
