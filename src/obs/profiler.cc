#include "obs/profiler.h"

#include <chrono>
#include <cstdio>
#include <vector>

#include "exec/function_handle.h"
#include "obs/metrics.h"

namespace aqe {

namespace {

const char* ActivityName(uint8_t activity) {
  switch (static_cast<BeaconActivity>(activity)) {
    case BeaconActivity::kIdle:
      return "idle";
    case BeaconActivity::kSlice:
      return "engine-step";
    case BeaconActivity::kMorsel:
      return "morsel";
    case BeaconActivity::kCompile:
      return "compile";
  }
  return "unknown";
}

}  // namespace

ContinuousProfiler::ContinuousProfiler(const BeaconBoard* board, int hz,
                                       Counter* samples_counter)
    : board_(board),
      hz_(hz > 0 ? hz : 1),
      samples_counter_(samples_counter),
      sampler_([this] { SamplerLoop(); }) {}

ContinuousProfiler::~ContinuousProfiler() {
  stop_.store(true, std::memory_order_relaxed);
  sampler_.join();
}

void ContinuousProfiler::SamplerLoop() {
  const auto period =
      std::chrono::nanoseconds(1000000000ll / static_cast<int64_t>(hz_));
  while (!stop_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int lane = 0; lane < BeaconBoard::kLanes; ++lane) {
        uint64_t w0 = 0, w1 = 0;
        if (!SampleBeacon(board_->lane(lane), &w0, &w1)) continue;
        FoldSample(w0);
      }
    }
    // Sleep in short hops so destruction is prompt even at low Hz.
    auto remaining = period;
    const auto hop = std::chrono::milliseconds(20);
    while (remaining.count() > 0 && !stop_.load(std::memory_order_relaxed)) {
      const auto step = remaining < hop ? remaining : hop;
      std::this_thread::sleep_for(step);
      remaining -= step;
    }
  }
}

void ContinuousProfiler::FoldSample(uint64_t w0) {
  total_samples_.fetch_add(1, std::memory_order_relaxed);
  if (samples_counter_ != nullptr) samples_counter_->Add();
  const uint32_t query_id = static_cast<uint32_t>(w0 >> 32);
  if (query_id == 0) {
    ++idle_samples_;
    return;
  }
  auto it = live_.find(w0);
  if (it != live_.end()) {
    ++it->second;
  } else if (live_.size() < kMaxStacks) {
    live_.emplace(w0, 1);
  } else {
    ++overflow_samples_;
  }
}

uint64_t ContinuousProfiler::RetireQuery(uint32_t query_id,
                                         const std::string& plan_name) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t samples = 0;
  for (auto it = live_.begin(); it != live_.end();) {
    const uint64_t w0 = it->first;
    if (static_cast<uint32_t>(w0 >> 32) != query_id) {
      ++it;
      continue;
    }
    const uint16_t pipeline = static_cast<uint16_t>(w0 >> 16);
    const uint8_t mode = static_cast<uint8_t>(w0 >> 8);
    const uint8_t activity = static_cast<uint8_t>(w0);
    char frame[192];
    if (static_cast<BeaconActivity>(activity) == BeaconActivity::kSlice) {
      // Slice bookkeeping is pipeline-agnostic engine-step time.
      std::snprintf(frame, sizeof(frame), "engine;%s;engine-step",
                    plan_name.c_str());
    } else {
      std::snprintf(frame, sizeof(frame), "engine;%s;pipeline%u;%s;%s",
                    plan_name.c_str(), static_cast<unsigned>(pipeline),
                    ExecModeName(static_cast<ExecMode>(mode)),
                    ActivityName(activity));
    }
    samples += it->second;
    if (retired_.size() < kMaxStacks || retired_.count(frame) != 0) {
      retired_[frame] += it->second;
    } else {
      overflow_samples_ += it->second;
    }
    it = live_.erase(it);
  }
  return samples;
}

std::string ContinuousProfiler::CollapsedStacks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(retired_.size() * 48 + 64);
  for (const auto& [stack, count] : retired_) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  if (idle_samples_ > 0) {
    out += "engine;idle " + std::to_string(idle_samples_) + "\n";
  }
  if (overflow_samples_ > 0) {
    out += "engine;overflow " + std::to_string(overflow_samples_) + "\n";
  }
  return out;
}

void ContinuousProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  live_.clear();
  retired_.clear();
  idle_samples_ = 0;
  overflow_samples_ = 0;
  total_samples_.store(0, std::memory_order_relaxed);
}

}  // namespace aqe
