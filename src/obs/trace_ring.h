#ifndef AQE_OBS_TRACE_RING_H_
#define AQE_OBS_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace_event.h"

namespace aqe {

/// Fixed-capacity single-producer event ring: the recording substrate of
/// the always-on tracer. One thread pushes (lock-free, wait-free: two
/// relaxed atomic loads, eight relaxed stores, one release store); any
/// thread may snapshot concurrently. Full rings overwrite the oldest event
/// — recent history is what traces are for — and account every overwrite
/// in dropped().
///
/// Storage is an array of atomic words, eight per event: a producer writes
/// the event's words relaxed and publishes them with a release store of
/// head_; a reader acquires head_, copies, then re-reads head_ and
/// discards any slot the producer may have re-entered during the copy. No
/// word is ever accessed non-atomically, so concurrent record/snapshot is
/// exactly as clean under TSan as it is in the machine model.
class TraceRing {
 public:
  static constexpr size_t kWordsPerEvent = sizeof(TraceEvent) / 8;

  /// `capacity` (events) is rounded up to a power of two; minimum 8.
  explicit TraceRing(size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Single producer only.
  void Push(const TraceEvent& event);

  size_t capacity() const { return capacity_; }
  /// Events ever pushed.
  uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Events overwritten before any snapshot could retain them.
  uint64_t dropped() const {
    const uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }

  /// Copies the retained events, oldest first. Safe concurrently with the
  /// producer; events the producer might have overwritten mid-copy are
  /// dropped from the result rather than returned torn.
  std::vector<TraceEvent> Snapshot() const;

  /// Resets head to zero. The caller must guarantee the producer is
  /// quiescent (this is the TraceRecorder::Start contract, unchanged from
  /// the mutex-era recorder).
  void Clear() { head_.store(0, std::memory_order_release); }

 private:
  size_t capacity_;  ///< power of two
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  std::atomic<uint64_t> head_{0};  ///< events published
};

}  // namespace aqe

#endif  // AQE_OBS_TRACE_RING_H_
