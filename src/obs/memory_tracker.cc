#include "obs/memory_tracker.h"

#include <cstdio>

namespace aqe {

namespace runtime_internal {
int GetThreadIndex();  // defined in runtime/join_hash_table.cc
}

MemoryBudgetExceeded::MemoryBudgetExceeded(int query_class,
                                           uint64_t budget_bytes,
                                           uint64_t attempted_bytes,
                                           bool at_admission)
    : std::runtime_error([&] {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "memory budget exceeded (%s): class %d budget %llu "
                      "bytes, query %s %llu bytes",
                      at_admission ? "admission" : "runtime", query_class,
                      static_cast<unsigned long long>(budget_bytes),
                      at_admission ? "estimated" : "reached",
                      static_cast<unsigned long long>(attempted_bytes));
        return std::string(buf);
      }()),
      query_class_(query_class),
      budget_bytes_(budget_bytes),
      attempted_bytes_(attempted_bytes),
      at_admission_(at_admission) {}

void QueryMemoryTracker::FoldShared(int64_t delta) {
  const int64_t now = shared_.fetch_add(delta, std::memory_order_relaxed) +
                      delta;
  if (delta <= 0 || now <= 0) return;
  const uint64_t unow = static_cast<uint64_t>(now);
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (unow > peak &&
         !peak_.compare_exchange_weak(peak, unow, std::memory_order_relaxed)) {
  }
  const uint64_t limit = soft_limit_.load(std::memory_order_relaxed);
  if (limit != 0 && unow > limit) {
    over_budget_.store(true, std::memory_order_relaxed);
  }
}

void QueryMemoryTracker::Charge(uint64_t bytes) {
  const int64_t delta = static_cast<int64_t>(bytes);
  if (delta >= kFlushBytes) {
    FoldShared(delta);
    return;
  }
  Slot& slot = slots_[runtime_internal::GetThreadIndex() % kSlots];
  const int64_t pending =
      slot.pending.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (pending >= kFlushBytes) {
    // Claim whatever is in the slot now (concurrent sharers of the slot
    // index may have added more; the exchange keeps the sum exact).
    FoldShared(slot.pending.exchange(0, std::memory_order_relaxed));
  }
}

void QueryMemoryTracker::Release(uint64_t bytes) {
  const int64_t delta = static_cast<int64_t>(bytes);
  if (delta >= kFlushBytes) {
    FoldShared(-delta);
    return;
  }
  Slot& slot = slots_[runtime_internal::GetThreadIndex() % kSlots];
  const int64_t pending =
      slot.pending.fetch_sub(delta, std::memory_order_relaxed) - delta;
  if (pending <= -kFlushBytes) {
    FoldShared(slot.pending.exchange(0, std::memory_order_relaxed));
  }
}

void QueryMemoryTracker::FoldResidues() {
  int64_t residue = 0;
  for (Slot& slot : slots_) {
    residue += slot.pending.exchange(0, std::memory_order_relaxed);
  }
  if (residue != 0) FoldShared(residue);
}

uint64_t QueryMemoryTracker::current_bytes() const {
  int64_t total = shared_.load(std::memory_order_relaxed);
  for (const Slot& slot : slots_) {
    total += slot.pending.load(std::memory_order_relaxed);
  }
  return total > 0 ? static_cast<uint64_t>(total) : 0;
}

uint64_t QueryMemoryTracker::peak_bytes() const {
  return peak_.load(std::memory_order_relaxed);
}

}  // namespace aqe
