#ifndef AQE_OBS_OBSERVABILITY_H_
#define AQE_OBS_OBSERVABILITY_H_

#include <cstdint>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace aqe {

class BeaconBoard;

/// The observability hooks a pipeline execution carries with it: the
/// engine's tracer plus pre-resolved metric handles, so hot paths never
/// touch the registry. All pointers may be null (standalone runner/test
/// pipelines trace nothing); query_id 0 means "not a query".
struct PipelineObs {
  EngineTracer* tracer = nullptr;
  BeaconBoard* beacons = nullptr;  ///< continuous-profiler beacon lanes
  Counter* morsels = nullptr;
  Counter* mode_switch_decisions = nullptr;
  Counter* compiles = nullptr;
  Histogram* compile_us = nullptr;  ///< JIT compile latency
  uint32_t query_id = 0;

  bool enabled() const { return tracer != nullptr; }
};

}  // namespace aqe

#endif  // AQE_OBS_OBSERVABILITY_H_
