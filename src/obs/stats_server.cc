#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

namespace aqe {

namespace {

void SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing to clean up
    sent += static_cast<size_t>(n);
  }
}

void SendResponse(int fd, const char* status, const char* content_type,
                  const std::string& body) {
  char header[256];
  const int n = std::snprintf(header, sizeof(header),
                              "HTTP/1.0 %s\r\n"
                              "Content-Type: %s\r\n"
                              "Content-Length: %zu\r\n"
                              "Connection: close\r\n\r\n",
                              status, content_type, body.size());
  SendAll(fd, header, static_cast<size_t>(n));
  SendAll(fd, body.data(), body.size());
}

/// Reads until the request-line is complete (first CRLF). HTTP/1.0 GETs
/// have no body; headers past the first line are irrelevant here.
std::string ReadRequestLine(int fd) {
  char buf[1024];
  std::string req;
  while (req.find('\n') == std::string::npos && req.size() < 4096) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, 2000) <= 0) break;  // stalled client: give up
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<size_t>(n));
  }
  const size_t eol = req.find_first_of("\r\n");
  return eol == std::string::npos ? req : req.substr(0, eol);
}

}  // namespace

StatsServer::StatsServer(int port, Handlers handlers)
    : handlers_(std::move(handlers)) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  thread_ = std::thread([this] { Serve(); });
}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void StatsServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);  // bounded wait: Stop() is prompt
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    const std::string request = ReadRequestLine(client);
    // "GET <path> HTTP/1.x" — anything else is a bad request.
    std::string path;
    if (request.rfind("GET ", 0) == 0) {
      const size_t end = request.find(' ', 4);
      path = request.substr(4, end == std::string::npos ? std::string::npos
                                                        : end - 4);
    }
    if (path == "/metrics" && handlers_.metrics_text) {
      SendResponse(client, "200 OK", "text/plain; version=0.0.4",
                   handlers_.metrics_text());
    } else if (path == "/trace.json" && handlers_.trace_json) {
      SendResponse(client, "200 OK", "application/json",
                   handlers_.trace_json());
    } else if (path == "/profiles" && handlers_.profiles_json) {
      SendResponse(client, "200 OK", "application/json",
                   handlers_.profiles_json());
    } else if (path == "/profile" && handlers_.profile_text) {
      SendResponse(client, "200 OK", "text/plain", handlers_.profile_text());
    } else if (path.empty()) {
      SendResponse(client, "400 Bad Request", "text/plain", "bad request\n");
    } else {
      SendResponse(client, "404 Not Found", "text/plain",
                   "not found; routes: /metrics /trace.json /profiles "
                   "/profile\n");
    }
    ::close(client);
  }
}

}  // namespace aqe
