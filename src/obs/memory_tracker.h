#ifndef AQE_OBS_MEMORY_TRACKER_H_
#define AQE_OBS_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace aqe {

/// Typed failure for per-class memory budgets: thrown through the query's
/// promise (never across a worker's VM/JIT frames) when a query's
/// cache-estimated footprint exceeds its class budget at admission, or when
/// its live allocations cross the budget at a runtime growth point. Clients
/// catch it like any other query failure; the engine stays healthy and
/// other classes keep running.
class MemoryBudgetExceeded : public std::runtime_error {
 public:
  MemoryBudgetExceeded(int query_class, uint64_t budget_bytes,
                       uint64_t attempted_bytes, bool at_admission);

  int query_class() const { return query_class_; }
  uint64_t budget_bytes() const { return budget_bytes_; }
  uint64_t attempted_bytes() const { return attempted_bytes_; }
  /// true: rejected before admission from the fingerprint's cached peak
  /// estimate; false: the running query's tracker crossed the budget.
  bool at_admission() const { return at_admission_; }

 private:
  int query_class_;
  uint64_t budget_bytes_;
  uint64_t attempted_bytes_;
  bool at_admission_;
};

/// Per-query memory accounting: one tracker per submitted query, shared
/// (via shared_ptr) with every runtime structure that allocates on the
/// query's behalf — join/agg hash tables, output buffers, binding arrays,
/// patched bytecode clones. Allocation sites are chunk-granular (1 MiB
/// arena chunks, doubling hash directories, 8 KiB output chunks), so a
/// charge is rare relative to row work; small charges are additionally
/// thread-cached in per-thread slots and folded into the shared counters
/// only when a slot accumulates `kFlushBytes`, so even byte-granular
/// callers never contend.
///
/// `current_bytes()` is exact at any quiesce point (it folds the slot
/// residues in); `peak_bytes()` tracks the shared counter's high-water and
/// can under-report by up to `kFlushBytes` per concurrently-charging
/// thread *between* folds. The engine closes that skew at every slice
/// boundary and at completion by calling `FoldResidues()`, which moves all
/// slot residues into the shared counter — so the peak a query reports and
/// the budget latch both see every byte the query ever held across a
/// boundary, and only sub-slice transients can hide in the slots.
///
/// Budgets are *soft*: `Charge` never throws (it may run under a JIT/VM
/// frame); crossing the limit latches `over_budget()`, and the engine
/// checks the flag at slice boundaries where unwinding is safe.
class QueryMemoryTracker {
 public:
  static constexpr int kSlots = 64;  ///< == the runtime's kMaxThreads
  static constexpr int64_t kFlushBytes = 64 << 10;

  QueryMemoryTracker() = default;
  QueryMemoryTracker(const QueryMemoryTracker&) = delete;
  QueryMemoryTracker& operator=(const QueryMemoryTracker&) = delete;

  void Charge(uint64_t bytes);
  void Release(uint64_t bytes);

  /// Moves every thread slot's residue into the shared counter, updating
  /// the peak high-water and the over-budget latch. Safe against concurrent
  /// Charge/Release (exchange keeps the books exact); the engine calls it
  /// at slice boundaries and query completion — the quiesce points where
  /// peak and budget answers must be exact.
  void FoldResidues();

  /// Shared counter plus all thread-slot residues, clamped at 0 (a release
  /// can fold in before its charge's slot flushes).
  uint64_t current_bytes() const;
  /// High-water of the shared counter (see class comment for the skew).
  uint64_t peak_bytes() const;

  /// 0 = unlimited. Crossing the limit latches over_budget(); it never
  /// unlatches (a query that ever exceeded its budget is failed).
  void set_soft_limit(uint64_t bytes) {
    soft_limit_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t soft_limit() const {
    return soft_limit_.load(std::memory_order_relaxed);
  }
  bool over_budget() const {
    return over_budget_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> pending{0};
  };

  /// Moves `delta` into the shared counter, updates the peak high-water
  /// and the over-budget latch.
  void FoldShared(int64_t delta);

  Slot slots_[kSlots];
  std::atomic<int64_t> shared_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> soft_limit_{0};
  std::atomic<bool> over_budget_{false};
};

}  // namespace aqe

#endif  // AQE_OBS_MEMORY_TRACKER_H_
