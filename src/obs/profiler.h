#ifndef AQE_OBS_PROFILER_H_
#define AQE_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace aqe {

class Counter;

/// What a worker is doing right now, published in its beacon. The values
/// are part of the collapsed-stack vocabulary (frame names below).
enum class BeaconActivity : uint8_t {
  kIdle = 0,     ///< no query work on this lane
  kSlice = 1,    ///< QueryJob engine-step bookkeeping inside a slice
  kMorsel = 2,   ///< executing a morsel (mode byte says which tier)
  kCompile = 3,  ///< running a JIT compile job
};

/// One worker's published execution state: two relaxed atomic words the
/// worker stores at boundaries it already crosses (slice start/end, morsel
/// start/end, compile start/end) and a sampler thread reads at its own
/// cadence. word0 packs query_id(32) | pipeline(16) | mode(8) | activity(8);
/// word1 carries free-form detail (currently the morsel's tuple count or
/// the compile's instruction count). Each word is a single atomic so it can
/// never tear; the *pair* is validated by the seqlock-lite read protocol in
/// SampleBeacon (read w0, read w1, re-read w0 — accept only if w0 held
/// still). Publishing is two relaxed stores: no fence, no RMW, nothing the
/// morsel loop can stall on.
struct alignas(64) WorkerBeacon {
  std::atomic<uint64_t> word0{0};
  std::atomic<uint64_t> word1{0};
};

inline uint64_t PackBeaconWord(uint32_t query_id, uint16_t pipeline,
                               uint8_t mode, BeaconActivity activity) {
  return (static_cast<uint64_t>(query_id) << 32) |
         (static_cast<uint64_t>(pipeline) << 16) |
         (static_cast<uint64_t>(mode) << 8) |
         static_cast<uint64_t>(activity);
}

inline void PublishBeacon(WorkerBeacon* b, uint32_t query_id,
                          uint16_t pipeline, uint8_t mode,
                          BeaconActivity activity, uint64_t detail) {
  if (b == nullptr) return;
  b->word1.store(detail, std::memory_order_relaxed);
  b->word0.store(PackBeaconWord(query_id, pipeline, mode, activity),
                 std::memory_order_relaxed);
}

inline void ClearBeacon(WorkerBeacon* b) {
  if (b == nullptr) return;
  b->word0.store(0, std::memory_order_relaxed);
}

/// Coherent read of one beacon: returns false (skip the sample) when the
/// worker republished mid-read, so a sample never pairs one publication's
/// word0 with another's word1. Relaxed loads are sufficient — a stale-but-
/// consistent pair is an acceptable sample; a mixed pair is not.
inline bool SampleBeacon(const WorkerBeacon& b, uint64_t* w0, uint64_t* w1) {
  const uint64_t first = b.word0.load(std::memory_order_relaxed);
  *w1 = b.word1.load(std::memory_order_relaxed);
  *w0 = b.word0.load(std::memory_order_relaxed);
  return *w0 == first;
}

/// The engine's beacon array: one lane per scheduler worker plus the
/// external-controller lease range, mirroring EngineTracer's lane map.
class BeaconBoard {
 public:
  static constexpr int kLanes = 64;

  WorkerBeacon* lane(int index) {
    if (index < 0 || index >= kLanes) index = 0;
    return &lanes_[index];
  }
  const WorkerBeacon& lane(int index) const {
    if (index < 0 || index >= kLanes) index = 0;
    return lanes_[index];
  }

 private:
  WorkerBeacon lanes_[kLanes];
};

/// Always-on VM-aware sampling profiler: a single thread reads every
/// beacon at `hz` and folds each coherent sample into a bounded
/// (query, pipeline, mode, activity) count map. Completed queries are
/// retired into per-plan collapsed-stack aggregates
/// (`engine;<plan>;pipelineN;<mode>;<activity> <count>`), the format
/// flamegraph.pl / speedscope load directly; lanes with no work fold into
/// `engine;idle`. Sampling-skew caveats are documented in
/// src/obs/DESIGN.md — headline: a sample attributes the whole sampling
/// interval to one instant, so counts converge on true time shares only over
/// many samples, and sub-interval activities are invisible.
class ContinuousProfiler {
 public:
  /// `samples_counter` (optional) is bumped once per accepted sample so
  /// the metrics snapshot can report profiler liveness; it lives in the
  /// engine's MetricsRegistry and must outlive the profiler.
  ContinuousProfiler(const BeaconBoard* board, int hz,
                     Counter* samples_counter);
  ~ContinuousProfiler();

  ContinuousProfiler(const ContinuousProfiler&) = delete;
  ContinuousProfiler& operator=(const ContinuousProfiler&) = delete;

  /// Folds the live samples of `query_id` into the per-plan aggregate
  /// under `plan_name` and returns how many samples the query got. Called
  /// by the engine at query completion (every query, profiled or not).
  uint64_t RetireQuery(uint32_t query_id, const std::string& plan_name);

  /// Collapsed-stack text: one `frame;frame;... count` line per distinct
  /// stack, retired aggregates plus idle. Live (unretired) queries appear
  /// once they complete.
  std::string CollapsedStacks() const;

  uint64_t total_samples() const {
    return total_samples_.load(std::memory_order_relaxed);
  }

  /// Drops all folded samples (phase-delta hygiene; the sampler keeps
  /// running).
  void Reset();

  int hz() const { return hz_; }

 private:
  void SamplerLoop();
  void FoldSample(uint64_t w0);

  const BeaconBoard* board_;
  const int hz_;
  Counter* samples_counter_;

  mutable std::mutex mu_;
  /// Live samples keyed by packed beacon word0 (query/pipeline/mode/
  /// activity); retired_ keyed by the rendered collapsed stack. Both
  /// bounded: kMaxStacks distinct keys, further samples fold into an
  /// overflow bucket so a pathological workload can't grow memory.
  static constexpr size_t kMaxStacks = 4096;
  std::map<uint64_t, uint64_t> live_;
  std::map<std::string, uint64_t> retired_;
  uint64_t idle_samples_ = 0;
  uint64_t overflow_samples_ = 0;

  std::atomic<uint64_t> total_samples_{0};
  std::atomic<bool> stop_{false};
  std::thread sampler_;
};

}  // namespace aqe

#endif  // AQE_OBS_PROFILER_H_
