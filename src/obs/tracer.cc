#include "obs/tracer.h"

#include <cstdlib>

#include "common/timer.h"

namespace aqe {

namespace {

size_t RingCapacityFromEnv(size_t fallback) {
  const char* v = std::getenv("AQE_TRACE_RING_EVENTS");
  if (v == nullptr || v[0] == '\0') return fallback;
  const long n = std::atol(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

const char* kKindNames[] = {
    "none",        "admission-wait", "slice",     "morsel",
    "pipeline",    "mode-switch",    "compile",   "cache-hit",
    "cache-miss",  "cache-publish",  "query",     "anomaly",
    "scan-prune",
};

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  const auto i = static_cast<size_t>(kind);
  if (i >= sizeof(kKindNames) / sizeof(kKindNames[0])) return "?";
  return kKindNames[i];
}

EngineTracer::EngineTracer(size_t ring_capacity)
    : ring_capacity_(ring_capacity != 0
                         ? ring_capacity
                         : RingCapacityFromEnv(kDefaultRingEvents)),
      origin_nanos_(MonotonicNanos()) {}

EngineTracer::~EngineTracer() {
  for (auto& slot : lanes_) {
    delete slot.load(std::memory_order_acquire);
  }
}

TraceRing* EngineTracer::Lane(int lane) {
  auto& slot = lanes_[lane];
  TraceRing* ring = slot.load(std::memory_order_acquire);
  if (ring != nullptr) return ring;
  std::lock_guard<std::mutex> lock(create_mu_);
  ring = slot.load(std::memory_order_acquire);
  if (ring == nullptr) {
    ring = new TraceRing(ring_capacity_);
    slot.store(ring, std::memory_order_release);
  }
  return ring;
}

void EngineTracer::Record(int lane, const TraceEvent& event) {
  if (lane < 0 || lane >= kMaxLanes) lane = 0;
  Lane(lane)->Push(event);
}

void EngineTracer::Reset() {
  for (auto& slot : lanes_) {
    if (TraceRing* ring = slot.load(std::memory_order_acquire)) {
      ring->Clear();
    }
  }
  origin_nanos_.store(MonotonicNanos(), std::memory_order_relaxed);
}

TraceSnapshot EngineTracer::Snapshot() const {
  TraceSnapshot snap;
  snap.origin_nanos = origin_nanos();
  for (int lane = 0; lane < kMaxLanes; ++lane) {
    const TraceRing* ring = lanes_[lane].load(std::memory_order_acquire);
    if (ring == nullptr || ring->recorded() == 0) continue;
    TraceSnapshot::Lane l;
    l.lane = lane;
    l.events = ring->Snapshot();
    l.recorded = ring->recorded();
    l.dropped = ring->dropped();
    snap.lanes.push_back(std::move(l));
  }
  return snap;
}

uint64_t EngineTracer::total_recorded() const {
  uint64_t n = 0;
  for (const auto& slot : lanes_) {
    if (const TraceRing* ring = slot.load(std::memory_order_acquire)) {
      n += ring->recorded();
    }
  }
  return n;
}

std::vector<EngineTracer::LaneStats> EngineTracer::lane_stats() const {
  std::vector<LaneStats> stats;
  for (int lane = 0; lane < kMaxLanes; ++lane) {
    const TraceRing* ring = lanes_[lane].load(std::memory_order_acquire);
    if (ring == nullptr || ring->recorded() == 0) continue;
    stats.push_back({lane, ring->recorded(), ring->dropped()});
  }
  return stats;
}

uint64_t EngineTracer::total_dropped() const {
  uint64_t n = 0;
  for (const auto& slot : lanes_) {
    if (const TraceRing* ring = slot.load(std::memory_order_acquire)) {
      n += ring->dropped();
    }
  }
  return n;
}

}  // namespace aqe
