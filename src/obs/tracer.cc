#include "obs/tracer.h"

#include <algorithm>
#include <cstdlib>

#include "common/timer.h"

namespace aqe {

namespace {

size_t RingCapacityFromEnv(size_t fallback) {
  const char* v = std::getenv("AQE_TRACE_RING_EVENTS");
  if (v == nullptr || v[0] == '\0') return fallback;
  const long n = std::atol(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

const char* kKindNames[] = {
    "none",        "admission-wait", "slice",     "morsel",
    "pipeline",    "mode-switch",    "compile",   "cache-hit",
    "cache-miss",  "cache-publish",  "query",     "anomaly",
    "scan-prune",
};

/// The high-frequency classes that saturate rings under load; everything
/// else is admission/decision/anomaly-grade and must stay lossless.
bool IsBulkKind(TraceEventKind kind) {
  return kind == TraceEventKind::kMorsel || kind == TraceEventKind::kTaskSlice;
}

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  const auto i = static_cast<size_t>(kind);
  if (i >= sizeof(kKindNames) / sizeof(kKindNames[0])) return "?";
  return kKindNames[i];
}

EngineTracer::EngineTracer(size_t ring_capacity)
    : ring_capacity_(ring_capacity != 0
                         ? ring_capacity
                         : RingCapacityFromEnv(kDefaultRingEvents)),
      origin_nanos_(MonotonicNanos()) {}

EngineTracer::~EngineTracer() {
  for (auto& slot : lanes_) {
    delete slot.load(std::memory_order_acquire);
  }
}

EngineTracer::LaneRings* EngineTracer::Lane(int lane) {
  auto& slot = lanes_[lane];
  LaneRings* rings = slot.load(std::memory_order_acquire);
  if (rings != nullptr) return rings;
  std::lock_guard<std::mutex> lock(create_mu_);
  rings = slot.load(std::memory_order_acquire);
  if (rings == nullptr) {
    rings = new LaneRings(ring_capacity_,
                          std::max(kMinCriticalEvents, ring_capacity_ / 4));
    slot.store(rings, std::memory_order_release);
  }
  return rings;
}

void EngineTracer::Record(int lane, const TraceEvent& event) {
  if (lane < 0 || lane >= kMaxLanes) lane = 0;
  LaneRings* rings = Lane(lane);
  rings->offered.fetch_add(1, std::memory_order_relaxed);
  if (!IsBulkKind(event.kind)) {
    rings->critical.Push(event);
    return;
  }
  // Bulk path: record losslessly until the ring has wrapped once, then
  // decimate to 1-in-kBulkSampleEvery — under saturation the ring keeps a
  // *longer* (sparser) history instead of churning through overwrites,
  // and the skips are accounted as dropped_sampled.
  if (rings->bulk.recorded() >= rings->bulk.capacity()) {
    const uint64_t seq =
        rings->sampled_seq.fetch_add(1, std::memory_order_relaxed);
    if (seq % kBulkSampleEvery != kBulkSampleEvery - 1) {
      rings->sampled_skips.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  rings->bulk.Push(event);
}

void EngineTracer::Reset() {
  for (auto& slot : lanes_) {
    if (LaneRings* rings = slot.load(std::memory_order_acquire)) {
      rings->bulk.Clear();
      rings->critical.Clear();
      rings->offered.store(0, std::memory_order_relaxed);
      rings->sampled_seq.store(0, std::memory_order_relaxed);
      rings->sampled_skips.store(0, std::memory_order_relaxed);
    }
  }
  origin_nanos_.store(MonotonicNanos(), std::memory_order_relaxed);
}

TraceSnapshot EngineTracer::Snapshot() const {
  TraceSnapshot snap;
  snap.origin_nanos = origin_nanos();
  for (int lane = 0; lane < kMaxLanes; ++lane) {
    const LaneRings* rings = lanes_[lane].load(std::memory_order_acquire);
    if (rings == nullptr ||
        rings->offered.load(std::memory_order_relaxed) == 0) {
      continue;
    }
    TraceSnapshot::Lane l;
    l.lane = lane;
    std::vector<TraceEvent> bulk = rings->bulk.Snapshot();
    std::vector<TraceEvent> critical = rings->critical.Snapshot();
    l.events.reserve(bulk.size() + critical.size());
    l.events.insert(l.events.end(), bulk.begin(), bulk.end());
    l.events.insert(l.events.end(), critical.begin(), critical.end());
    // Lanes record events in completion order with retroactive start times
    // (kAdmissionWait starts at submit time but is recorded after earlier
    // slices), so neither ring is sorted by start — a full sort is needed,
    // not a merge. stable_sort keeps recording order among equal starts.
    std::stable_sort(l.events.begin(), l.events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.start_nanos < b.start_nanos;
                     });
    l.recorded = rings->offered.load(std::memory_order_relaxed);
    l.dropped_sampled = rings->dropped_sampled();
    l.dropped_lost = rings->dropped_lost();
    l.dropped = l.dropped_sampled + l.dropped_lost;
    snap.lanes.push_back(std::move(l));
  }
  return snap;
}

uint64_t EngineTracer::total_recorded() const {
  uint64_t n = 0;
  for (const auto& slot : lanes_) {
    if (const LaneRings* rings = slot.load(std::memory_order_acquire)) {
      n += rings->offered.load(std::memory_order_relaxed);
    }
  }
  return n;
}

std::vector<EngineTracer::LaneStats> EngineTracer::lane_stats() const {
  std::vector<LaneStats> stats;
  for (int lane = 0; lane < kMaxLanes; ++lane) {
    const LaneRings* rings = lanes_[lane].load(std::memory_order_acquire);
    if (rings == nullptr ||
        rings->offered.load(std::memory_order_relaxed) == 0) {
      continue;
    }
    LaneStats s;
    s.lane = lane;
    s.recorded = rings->offered.load(std::memory_order_relaxed);
    s.dropped_sampled = rings->dropped_sampled();
    s.dropped_lost = rings->dropped_lost();
    s.dropped = s.dropped_sampled + s.dropped_lost;
    stats.push_back(s);
  }
  return stats;
}

uint64_t EngineTracer::total_dropped() const {
  return total_dropped_sampled() + total_dropped_lost();
}

uint64_t EngineTracer::total_dropped_sampled() const {
  uint64_t n = 0;
  for (const auto& slot : lanes_) {
    if (const LaneRings* rings = slot.load(std::memory_order_acquire)) {
      n += rings->dropped_sampled();
    }
  }
  return n;
}

uint64_t EngineTracer::total_dropped_lost() const {
  uint64_t n = 0;
  for (const auto& slot : lanes_) {
    if (const LaneRings* rings = slot.load(std::memory_order_acquire)) {
      n += rings->dropped_lost();
    }
  }
  return n;
}

}  // namespace aqe
