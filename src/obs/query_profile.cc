#include "obs/query_profile.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <utility>

#include "engine/query_engine.h"

namespace aqe {

namespace {

void Append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

struct Interval {
  int64_t start = 0;
  int64_t end = 0;
};

/// Wall-clock footprint of a set of (possibly overlapping, multi-worker)
/// intervals: merge and sum. Destroys the input order.
double UnionSeconds(std::vector<Interval>& intervals) {
  if (intervals.empty()) return 0;
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  int64_t covered = 0;
  int64_t cur_start = intervals.front().start;
  int64_t cur_end = intervals.front().end;
  for (const Interval& iv : intervals) {
    if (iv.start > cur_end) {
      covered += cur_end - cur_start;
      cur_start = iv.start;
      cur_end = iv.end;
    } else {
      cur_end = std::max(cur_end, iv.end);
    }
  }
  covered += cur_end - cur_start;
  return static_cast<double>(covered) / 1e9;
}

/// Aggregation state per (pipeline, mode) while folding morsel events.
struct ModeAgg {
  uint64_t morsels = 0;
  uint64_t tuples = 0;
  double busy_seconds = 0;
  std::vector<Interval> intervals;
};

}  // namespace

QueryProfile BuildQueryProfile(const TraceSnapshot& snapshot,
                               const QueryRunResult& result,
                               uint32_t query_id,
                               const std::string& plan_name) {
  QueryProfile prof;
  prof.query_id = query_id;
  prof.plan_name = plan_name;
  prof.total_seconds = result.total_seconds;
  prof.queue_wait_seconds = result.queue_wait_seconds;
  prof.exec_seconds = result.exec_seconds_total;

  // Fold the query's events: per-(pipeline, mode) morsel aggregates, task
  // slices (for on-CPU attribution), compiles and cache hits.
  std::map<std::pair<uint16_t, uint8_t>, ModeAgg> modes;
  struct LaneSpans {
    std::vector<Interval> slices;   // sorted later
    std::vector<Interval> morsels;  // candidates for outside-slice credit
  };
  std::map<int, LaneSpans> lanes;
  for (const auto& lane : snapshot.lanes) {
    // Conservative: a lane that dropped *any* events may have lost part of
    // this query's window, so aggregates below can undercount.
    if (lane.dropped > 0) prof.lossy = true;
    for (const TraceEvent& e : lane.events) {
      if (e.query_id != query_id) continue;
      switch (e.kind) {
        case TraceEventKind::kMorsel: {
          ModeAgg& agg = modes[{e.pipeline_id, e.detail}];
          ++agg.morsels;
          agg.tuples += e.payload;
          agg.busy_seconds +=
              static_cast<double>(e.end_nanos - e.start_nanos) / 1e9;
          agg.intervals.push_back({e.start_nanos, e.end_nanos});
          lanes[lane.lane].morsels.push_back({e.start_nanos, e.end_nanos});
          break;
        }
        case TraceEventKind::kTaskSlice:
          prof.on_cpu_seconds +=
              static_cast<double>(e.end_nanos - e.start_nanos) / 1e9;
          lanes[lane.lane].slices.push_back({e.start_nanos, e.end_nanos});
          break;
        case TraceEventKind::kCompile:
          prof.compile_seconds +=
              static_cast<double>(e.end_nanos - e.start_nanos) / 1e9;
          ++prof.compiles;
          break;
        case TraceEventKind::kCacheHit:
          ++prof.cache_hits;
          break;
        default:
          break;
      }
    }
  }

  // On-CPU credit for helper morsels: the controller's morsels run inside
  // the query's own task slices (already counted); helper-task morsels on
  // other workers have no enclosing slice of this query and count extra.
  for (auto& [lane, spans] : lanes) {
    std::sort(spans.slices.begin(), spans.slices.end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start;
              });
    for (const Interval& m : spans.morsels) {
      auto it = std::upper_bound(
          spans.slices.begin(), spans.slices.end(), m,
          [](const Interval& a, const Interval& b) {
            return a.start < b.start;
          });
      const bool inside = it != spans.slices.begin() &&
                          std::prev(it)->end >= m.end;
      if (!inside) {
        prof.on_cpu_seconds += static_cast<double>(m.end - m.start) / 1e9;
      }
    }
  }

  for (const PipelineReport& report : result.pipelines) {
    PipelineProfile pp;
    pp.name = report.name;
    pp.pipeline_index = report.pipeline_index;
    pp.tuples = report.tuples;
    pp.wall_seconds = report.exec_seconds;
    pp.exec_only_seconds = report.exec_only_seconds;
    pp.initial_mode = report.initial_mode;
    pp.final_mode = report.final_mode;
    pp.artifact_cache_hit = report.artifact_cache_hit;
    pp.pruning = report.pruning;
    pp.pruning_cache_hit = report.pruning_cache_hit;
    for (uint8_t mode = 0; mode <= 2; ++mode) {
      auto it = modes.find({static_cast<uint16_t>(pp.pipeline_index), mode});
      if (it == modes.end()) continue;
      ModeSliceProfile slice;
      slice.mode = static_cast<ExecMode>(mode);
      slice.morsels = it->second.morsels;
      slice.tuples = it->second.tuples;
      slice.busy_seconds = it->second.busy_seconds;
      slice.wall_seconds = UnionSeconds(it->second.intervals);
      pp.modes.push_back(slice);
    }
    for (const ModeSwitchRecord& rec : report.mode_switches) {
      ModeSwitchProfile sw;
      sw.target = rec.target;
      sw.r0 = rec.r0;
      sw.remaining_tuples = rec.remaining_tuples;
      sw.t_current_seconds = rec.t_current_seconds;
      sw.predicted_seconds = rec.t_chosen_seconds;
      sw.realized_seconds = rec.realized_seconds;
      pp.switches.push_back(sw);
    }
    prof.pipelines.push_back(std::move(pp));
  }
  double pipeline_exec_only = 0;
  for (const PipelineProfile& pp : prof.pipelines) {
    pipeline_exec_only += pp.exec_only_seconds;
  }
  prof.engine_step_seconds =
      std::max(0.0, prof.exec_seconds - pipeline_exec_only);
  return prof;
}

std::string QueryProfile::ToJson() const {
  std::string out;
  out.reserve(1024);
  Append(out,
         "{\"query\":%u,\"plan\":\"%s\",\"total_s\":%.6f,"
         "\"queue_wait_s\":%.6f,\"exec_s\":%.6f,\"engine_step_s\":%.6f,"
         "\"on_cpu_s\":%.6f,"
         "\"compile_s\":%.6f,\"compiles\":%llu,\"cache_hits\":%llu,"
         "\"cpu_samples\":%llu,\"peak_memory_bytes\":%llu,"
         "\"lossy\":%s,\"pipelines\":[",
         query_id, JsonEscape(plan_name).c_str(), total_seconds,
         queue_wait_seconds, exec_seconds, engine_step_seconds,
         on_cpu_seconds, compile_seconds,
         static_cast<unsigned long long>(compiles),
         static_cast<unsigned long long>(cache_hits),
         static_cast<unsigned long long>(cpu_samples),
         static_cast<unsigned long long>(peak_memory_bytes),
         lossy ? "true" : "false");
  bool first_p = true;
  for (const PipelineProfile& pp : pipelines) {
    Append(out,
           "%s{\"name\":\"%s\",\"index\":%u,\"tuples\":%llu,"
           "\"wall_s\":%.6f,\"exec_only_s\":%.6f,\"initial_mode\":\"%s\","
           "\"final_mode\":\"%s\",\"cache_hit\":%s,",
           first_p ? "" : ",", JsonEscape(pp.name).c_str(),
           pp.pipeline_index, static_cast<unsigned long long>(pp.tuples),
           pp.wall_seconds, pp.exec_only_seconds,
           ExecModeName(pp.initial_mode), ExecModeName(pp.final_mode),
           pp.artifact_cache_hit ? "true" : "false");
    first_p = false;
    if (pp.pruning.analyzed) {
      Append(out,
             "\"pruning\":{\"path\":\"%s\",\"selected_rows\":%llu,"
             "\"table_rows\":%llu,\"selected_fraction\":%.6f,"
             "\"zone_blocks_pruned\":%llu,\"zone_blocks_total\":%llu,"
             "\"posting_entries\":%llu,\"domain_ranges\":%llu,"
             "\"analysis_s\":%.6f,\"cached\":%s},",
             AccessPathKindName(pp.pruning.primary_path),
             static_cast<unsigned long long>(pp.pruning.selected_rows),
             static_cast<unsigned long long>(pp.pruning.table_rows),
             pp.pruning.selected_fraction(),
             static_cast<unsigned long long>(pp.pruning.zone_blocks_pruned),
             static_cast<unsigned long long>(pp.pruning.zone_blocks_total),
             static_cast<unsigned long long>(pp.pruning.posting_entries),
             static_cast<unsigned long long>(pp.pruning.domain_ranges),
             pp.pruning.analysis_seconds,
             pp.pruning_cache_hit ? "true" : "false");
    }
    out += "\"modes\":[";
    bool first_m = true;
    for (const ModeSliceProfile& m : pp.modes) {
      Append(out,
             "%s{\"mode\":\"%s\",\"morsels\":%llu,\"tuples\":%llu,"
             "\"busy_s\":%.6f,\"wall_s\":%.6f,\"tuples_per_s\":%.0f}",
             first_m ? "" : ",", ExecModeName(m.mode),
             static_cast<unsigned long long>(m.morsels),
             static_cast<unsigned long long>(m.tuples), m.busy_seconds,
             m.wall_seconds, m.tuples_per_sec());
      first_m = false;
    }
    out += "],\"switches\":[";
    bool first_s = true;
    for (const ModeSwitchProfile& sw : pp.switches) {
      Append(out,
             "%s{\"target\":\"%s\",\"r0\":%.1f,\"remaining\":%llu,"
             "\"t_current_s\":%.6f,\"predicted_s\":%.6f,"
             "\"realized_s\":%.6f,\"error_pct\":%.1f}",
             first_s ? "" : ",", ExecModeName(sw.target), sw.r0,
             static_cast<unsigned long long>(sw.remaining_tuples),
             sw.t_current_seconds, sw.predicted_seconds,
             sw.realized_seconds, sw.error_pct());
      first_s = false;
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string ExplainAnalyze(const QueryRunResult& result) {
  if (result.profile == nullptr) {
    return "EXPLAIN ANALYZE unavailable: run with "
           "QueryRunOptions::collect_profile = true\n";
  }
  const QueryProfile& p = *result.profile;
  std::string out;
  Append(out, "EXPLAIN ANALYZE  %s  (query %u)%s\n", p.plan_name.c_str(),
         p.query_id, p.lossy ? "  [lossy: trace ring dropped events]" : "");
  Append(out,
         "  total %.3f ms = queue %.3f ms + service %.3f ms; exec %.3f ms; "
         "on-cpu %.3f ms\n",
         p.total_seconds * 1e3, p.queue_wait_seconds * 1e3,
         (p.total_seconds - p.queue_wait_seconds) * 1e3,
         p.exec_seconds * 1e3, p.on_cpu_seconds * 1e3);
  Append(out, "  compile %.3f ms this query (%llu jits, %llu cache hits)\n",
         p.compile_seconds * 1e3,
         static_cast<unsigned long long>(p.compiles),
         static_cast<unsigned long long>(p.cache_hits));
  Append(out, "  engine steps %.3f ms (finalize / merge / top-k)\n",
         p.engine_step_seconds * 1e3);
  Append(out, "  cpu-samples %llu; peak memory %llu bytes\n",
         static_cast<unsigned long long>(p.cpu_samples),
         static_cast<unsigned long long>(p.peak_memory_bytes));
  for (const PipelineProfile& pp : p.pipelines) {
    Append(out,
           "  pipeline %u \"%s\": %.3f ms wall (%.3f ms exec-only), "
           "%llu tuples, %s -> %s%s\n",
           pp.pipeline_index, pp.name.c_str(), pp.wall_seconds * 1e3,
           pp.exec_only_seconds * 1e3,
           static_cast<unsigned long long>(pp.tuples),
           ExecModeName(pp.initial_mode), ExecModeName(pp.final_mode),
           pp.artifact_cache_hit ? ", cache hit" : "");
    if (pp.pruning.analyzed) {
      Append(out,
             "    access path %-10s: %llu / %llu rows scheduled (%.1f%%), "
             "%llu / %llu zone blocks pruned, %llu posting entries, "
             "%llu ranges, analysis %.3f ms%s\n",
             AccessPathKindName(pp.pruning.primary_path),
             static_cast<unsigned long long>(pp.pruning.selected_rows),
             static_cast<unsigned long long>(pp.pruning.table_rows),
             pp.pruning.selected_fraction() * 100.0,
             static_cast<unsigned long long>(pp.pruning.zone_blocks_pruned),
             static_cast<unsigned long long>(pp.pruning.zone_blocks_total),
             static_cast<unsigned long long>(pp.pruning.posting_entries),
             static_cast<unsigned long long>(pp.pruning.domain_ranges),
             pp.pruning.analysis_seconds * 1e3,
             pp.pruning_cache_hit ? "  [cached decision]" : "");
    }
    for (const ModeSliceProfile& m : pp.modes) {
      Append(out,
             "    mode %-11s: %6llu morsels, %10llu tuples, "
             "%8.3f ms busy, %8.3f ms wall, %7.2f M tuples/s\n",
             ExecModeName(m.mode),
             static_cast<unsigned long long>(m.morsels),
             static_cast<unsigned long long>(m.tuples),
             m.busy_seconds * 1e3, m.wall_seconds * 1e3,
             m.tuples_per_sec() / 1e6);
    }
    for (const ModeSwitchProfile& sw : pp.switches) {
      Append(out,
             "    switch -> %s: predicted %.3f ms (stay: %.3f ms), "
             "realized %.3f ms, error %+.1f%%  [r0=%.0f t/s, %llu tuples "
             "remained]\n",
             ExecModeName(sw.target), sw.predicted_seconds * 1e3,
             sw.t_current_seconds * 1e3, sw.realized_seconds * 1e3,
             sw.error_pct(), sw.r0,
             static_cast<unsigned long long>(sw.remaining_tuples));
    }
  }
  return out;
}

}  // namespace aqe
