#ifndef AQE_OBS_QUERY_PROFILE_H_
#define AQE_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/function_handle.h"
#include "index/access_path.h"
#include "obs/tracer.h"

namespace aqe {

struct QueryRunResult;  // engine/query_engine.h (avoids a circular include)

/// Per-(pipeline, ExecMode) execution summary folded out of the morsel
/// events: how many morsels/tuples ran in that mode, the summed per-morsel
/// busy time across all workers, and the wall-clock footprint (the union of
/// the mode's morsel intervals — what "time spent in this mode" means when
/// several workers overlap).
struct ModeSliceProfile {
  ExecMode mode = ExecMode::kBytecode;
  uint64_t morsels = 0;
  uint64_t tuples = 0;
  double busy_seconds = 0;
  double wall_seconds = 0;

  double tuples_per_sec() const {
    return busy_seconds > 0 ? static_cast<double>(tuples) / busy_seconds : 0;
  }
};

/// One §III-C compile decision audited: the controller's extrapolated
/// durations against the remainder the pipeline actually took.
struct ModeSwitchProfile {
  ExecMode target = ExecMode::kUnoptimized;
  double r0 = 0;                 ///< observed rate [tuples/s/thread]
  uint64_t remaining_tuples = 0;
  double t_current_seconds = 0;  ///< predicted: stay in current mode
  double predicted_seconds = 0;  ///< predicted: T(chosen)
  double realized_seconds = 0;   ///< decision -> pipeline end, measured

  /// Signed prediction error: +x% means the switch ran x% slower than the
  /// extrapolation promised.
  double error_pct() const {
    return predicted_seconds > 0
               ? (realized_seconds - predicted_seconds) / predicted_seconds *
                     100.0
               : 0;
  }
};

struct PipelineProfile {
  std::string name;
  uint32_t pipeline_index = 0;
  uint64_t tuples = 0;
  double wall_seconds = 0;       ///< pipeline start -> drained
  double exec_only_seconds = 0;  ///< wall minus blocking compile
  ExecMode initial_mode = ExecMode::kBytecode;
  ExecMode final_mode = ExecMode::kBytecode;
  bool artifact_cache_hit = false;
  /// Scan-pruning access-path decision (pruning.analyzed == false when the
  /// source table has no indexes or pruning was disabled for the run).
  PruningStats pruning;
  bool pruning_cache_hit = false;  ///< decision reused, analysis skipped
  std::vector<ModeSliceProfile> modes;
  std::vector<ModeSwitchProfile> switches;
};

/// Everything EXPLAIN ANALYZE knows about one completed query, folded from
/// the engine's trace rings (events keyed by query id) plus the run result.
struct QueryProfile {
  uint32_t query_id = 0;
  std::string plan_name;
  double total_seconds = 0;
  double queue_wait_seconds = 0;  ///< time-in-queue (admission -> first slice)
  double exec_seconds = 0;        ///< result.exec_seconds_total
  /// Exec time spent outside the pipelines (join-table finalize, aggregate
  /// merge, top-k): exec_seconds minus the pipelines' exec-only time. With
  /// it, the per-pipeline per-mode breakdown below sums back to
  /// exec_seconds (morsel-loop bookkeeping is the only unattributed rest).
  double engine_step_seconds = 0;
  /// Time-on-CPU: summed task-slice durations plus helper-morsel time that
  /// ran outside the query's own slices. > exec when workers overlap.
  double on_cpu_seconds = 0;
  /// JIT wall time this query paid itself (kCompile events attributed to
  /// it). 0 on warm runs — the cache absorbed compilation.
  double compile_seconds = 0;
  uint64_t compiles = 0;
  uint64_t cache_hits = 0;  ///< artifacts reused instead of compiled
  /// Continuous-profiler samples attributed to this query (0 when the
  /// sampler never caught it — short queries at low Hz).
  uint64_t cpu_samples = 0;
  /// Peak tracked allocation across the query's lifetime (memory
  /// accounting; 0 when the engine ran without a tracker).
  uint64_t peak_memory_bytes = 0;
  /// True when any trace ring dropped events inside the query's window:
  /// morsel/mode aggregates below may undercount.
  bool lossy = false;
  std::vector<PipelineProfile> pipelines;

  std::string ToJson() const;
};

/// Folds `snapshot`'s events for `query_id` into a QueryProfile. The
/// snapshot must be taken after the query completed (the engine does this
/// before resolving the promise when QueryRunOptions::collect_profile is
/// set); `result` supplies the per-pipeline reports and totals.
QueryProfile BuildQueryProfile(const TraceSnapshot& snapshot,
                               const QueryRunResult& result,
                               uint32_t query_id,
                               const std::string& plan_name);

/// Human-readable profile: per-pipeline per-mode time, throughput, and one
/// predicted-vs-realized verdict line per mode switch. Returns a hint when
/// the result carries no profile (collect_profile was off).
std::string ExplainAnalyze(const QueryRunResult& result);

}  // namespace aqe

#endif  // AQE_OBS_QUERY_PROFILE_H_
