#ifndef AQE_OBS_STATS_SERVER_H_
#define AQE_OBS_STATS_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace aqe {

/// Minimal observability HTTP endpoint: one thread, blocking accept (with
/// a 100 ms poll so Stop() is prompt), HTTP/1.0, connection-per-request.
/// No dependencies beyond POSIX sockets — this is a diagnosis port, not a
/// serving layer; the deliberate smallness keeps it auditable and keeps
/// the engine's first network socket out of every default configuration
/// (the engine only constructs it when QueryEngineOptions::stats_port is
/// set). Binds 127.0.0.1 only.
///
/// Routes (fixed): GET /metrics -> handlers.metrics_text (Prometheus text
/// exposition), GET /trace.json -> handlers.trace_json (Chrome trace),
/// GET /profiles -> handlers.profiles_json (recent QueryProfiles +
/// anomalies), GET /profile -> handlers.profile_text (continuous-profiler
/// collapsed stacks, flamegraph.pl input). Anything else is 404. Handlers
/// run on the server thread and must be thread-safe against the engine.
class StatsServer {
 public:
  struct Handlers {
    std::function<std::string()> metrics_text;
    std::function<std::string()> trace_json;
    std::function<std::string()> profiles_json;
    std::function<std::string()> profile_text;
  };

  /// Binds 127.0.0.1:`port` (0 = ephemeral; read the bound port back via
  /// port()) and starts the serve thread. On bind failure the server is
  /// inert: ok() is false and port() is -1.
  StatsServer(int port, Handlers handlers);
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Stops accepting and joins the serve thread. Idempotent; the
  /// destructor calls it.
  void Stop();

  bool ok() const { return listen_fd_ >= 0; }
  int port() const { return port_; }

 private:
  void Serve();

  Handlers handlers_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace aqe

#endif  // AQE_OBS_STATS_SERVER_H_
