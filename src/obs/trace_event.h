#ifndef AQE_OBS_TRACE_EVENT_H_
#define AQE_OBS_TRACE_EVENT_H_

#include <cstdint>
#include <cstring>

namespace aqe {

/// What a trace event describes. Every value doubles as the event's name in
/// the exporters (TraceEventKindName), so adding a kind means adding a name.
enum class TraceEventKind : uint8_t {
  kNone = 0,
  /// Span: submit -> first task slice (admission queue + scheduler deque).
  /// detail = scheduling class, d0 = the admission layer's estimated
  /// service time [ms] (what WFQ admission charged the class clock).
  kAdmissionWait,
  /// Span: one query-task slice on a worker (an engine step, a pipeline
  /// setup, or one controller morsel + evaluation). detail = class,
  /// payload = stage index.
  kTaskSlice,
  /// Span: one morsel through the current variant. detail = ExecMode,
  /// payload = tuples.
  kMorsel,
  /// Instant: a pipeline's morsel domain opened. payload = total tuples.
  kPipelineStart,
  /// Instant: a §III-C evaluation chose to compile. detail = target
  /// ExecMode, payload = remaining tuples, d0 = observed rate r0
  /// [tuples/s/thread], d1 = extrapolated duration of staying in the
  /// current mode [s], d2 = extrapolated duration under the chosen mode
  /// [s], payload2 = runtime-call fraction (bit-cast double).
  kModeSwitch,
  /// Span: JIT compile start -> finish (machine-code generation).
  /// detail = target ExecMode, payload = LLVM instruction count.
  kCompile,
  /// Instant: artifact-cache pipeline lookup reused a cached artifact.
  /// payload = 0 for bytecode, 1 for machine code.
  kCacheHit,
  /// Instant: pipeline lookup found nothing usable (translation follows).
  kCacheMiss,
  /// Instant: a compiled artifact was written back. detail = ExecMode.
  kCachePublish,
  /// Span: first task slice -> completion (service time; queue wait
  /// excluded). payload = result rows, d0 = queue wait [s],
  /// d1 = total [s].
  kQueryDone,
  /// Instant: the regression sentinel flagged a completed query as
  /// anomalously slow for its plan fingerprint. payload = fingerprint
  /// cache key, detail = AnomalyCause, d0 = expected (EWMA) service
  /// [ms], d1 = observed service [ms], d2 = queue wait [ms].
  kAnomaly,
  /// Instant: the scan-pruning access-path decision for one pipeline
  /// (src/index/). detail = AccessPathKind, payload = selected (scheduled)
  /// rows, payload2 = table rows, d0 = estimated selectivity
  /// (selected/table), d1 = analysis seconds (0 on a pruning-cache hit),
  /// d2 = posting-list entries read.
  kScanPrune,
};

const char* TraceEventKindName(TraceEventKind kind);

/// One binary trace event: exactly 64 bytes (8 ring words), fixed layout.
/// Meaning of payload/detail/d0..d2 depends on `kind` (see above); query_id
/// 0 means "not attributed to a query" (bench/test harness recordings).
struct TraceEvent {
  int64_t start_nanos = 0;  ///< MonotonicNanos timeline
  int64_t end_nanos = 0;    ///< == start_nanos for instant events
  uint64_t payload = 0;
  uint64_t payload2 = 0;
  double d0 = 0;
  double d1 = 0;
  double d2 = 0;
  uint32_t query_id = 0;
  uint16_t pipeline_id = 0;
  TraceEventKind kind = TraceEventKind::kNone;
  uint8_t detail = 0;  ///< ExecMode or scheduling class, by kind
};

static_assert(sizeof(TraceEvent) == 64, "events must stay 8 ring words");

inline double TraceEventBitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

inline uint64_t TraceEventDoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace aqe

#endif  // AQE_OBS_TRACE_EVENT_H_
