#ifndef AQE_OBS_METRICS_H_
#define AQE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace aqe {

/// Monotonic atomic counter. Hot paths hold the pointer returned by
/// MetricsRegistry::GetCounter and Add() lock-free.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins signed gauge (footprints, limits, weights).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// What a histogram reports: percentiles interpolated from the log-linear
/// buckets (no samples stored), plus exact count/sum/max and the non-empty
/// buckets themselves (ascending upper bound, per-bucket count — the
/// Prometheus exposition and ToJson serialize these).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  /// (exclusive upper bound, count) for every bucket with count > 0,
  /// ascending. Counts sum to `count`.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;

  double mean() const {
    return count == 0 ? 0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Log-linear latency histogram: each power-of-two octave splits into
/// 2^kSubBucketBits linear sub-buckets, so a bucket's width is at most
/// 1/2^kSubBucketBits of its value (12.5% at the default 3 bits) and
/// p50/p95/p99 interpolate to a few percent without storing samples.
/// Record() is wait-free: one bucket fetch_add, count/sum fetch_adds and a
/// CAS-loop max. Values are unit-agnostic; by convention registry names
/// carry the unit suffix (`_us`).
class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  /// Octaves [kSubBucketBits, 64) plus the exact small-value range.
  static constexpr int kBuckets = (64 - kSubBucketBits + 1) * kSubBuckets;

  void Record(uint64_t value);

  HistogramSnapshot Snapshot() const;
  void Reset();

  /// Bucket mapping, exposed for tests: BucketLowerBound(BucketIndex(v))
  /// <= v < BucketUpperBound(BucketIndex(v)).
  static int BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(int bucket);
  static uint64_t BucketUpperBound(int bucket);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// One registry snapshot: every metric by name, ready for JSON or asserts.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  uint64_t counter(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;

  /// Machine-readable dump:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}.
  std::string ToJson() const;
};

/// Name -> metric registry. Get* registers on first sight and returns a
/// stable pointer (metrics are never removed), so subsystems resolve their
/// metrics once and update lock-free; the mutex guards only registration
/// and snapshotting.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every counter and histogram (gauges keep their last value:
  /// they describe current state, not accumulation). Phase-delta hygiene
  /// for benches; concurrent updates during a reset land in the new phase.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace aqe

#endif  // AQE_OBS_METRICS_H_
