#ifndef AQE_OBS_EXPORT_H_
#define AQE_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace aqe {

/// Renders a TraceSnapshot as Chrome-trace/Perfetto JSON (the "JSON Array
/// with metadata" flavor: {"displayTimeUnit":...,"traceEvents":[...]}),
/// loadable in chrome://tracing and ui.perfetto.dev. One track per lane
/// (worker threads first, external-controller leases after), spans as
/// complete events, point events as instants, and one flow per query id
/// linking admission wait -> task slices -> completion across tracks.
std::string ChromeTraceJson(const TraceSnapshot& snapshot);

/// Renders the ASCII swimlane chart (threads x time, Fig 14 style) from a
/// TraceSnapshot: morsels print the pipeline digit (digit = interpreted,
/// letter = compiled), compilations print '#'. Byte-compatible with the
/// retired TraceRecorder::Render so goldens and eyeballs carry over.
std::string RenderTextTrace(const TraceSnapshot& snapshot, int num_lanes,
                            int width = 100);

/// Renders a MetricsSnapshot in Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, histograms as
/// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`. Metric
/// names are sanitized ('.'/'-' -> '_') and prefixed `aqe_`; the stats
/// server serves this at GET /metrics.
std::string PrometheusText(const MetricsSnapshot& snapshot);

}  // namespace aqe

#endif  // AQE_OBS_EXPORT_H_
