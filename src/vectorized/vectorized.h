#ifndef AQE_VECTORIZED_VECTORIZED_H_
#define AQE_VECTORIZED_VECTORIZED_H_

#include "plan/plan.h"

namespace aqe {

/// Column-at-a-time execution of a pipeline — the MonetDB stand-in of
/// Tables I/II (see DESIGN.md): no compilation, tight per-primitive loops
/// over vectors of 1024 values with selection vectors, paying
/// materialization instead of per-tuple interpretation overhead.
/// Single-threaded.
void RunPipelineVectorized(const QueryProgram& program,
                           const PipelineSpec& spec, QueryContext* ctx);

/// Vector size used by the engine (exposed for tests).
constexpr uint64_t kVectorSize = 1024;

}  // namespace aqe

#endif  // AQE_VECTORIZED_VECTORIZED_H_
