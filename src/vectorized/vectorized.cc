#include "vectorized/vectorized.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"
#include "simd/simd.h"

namespace aqe {
namespace {

using Vec = std::vector<int64_t>;
using Sel = std::vector<int>;

double AsF64(int64_t bits) {
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}
int64_t FromF64(double d) {
  int64_t bits;
  std::memcpy(&bits, &d, 8);
  return bits;
}

/// Evaluates `expr` for the lanes in `sel`, writing lane-indexed results to
/// `out`. Each node runs as one tight loop over the selection — the
/// vectorized-primitive execution model.
void EvalVec(const Expr& expr, const std::vector<Vec>& slot_vecs,
             const Sel& sel, uint64_t block_n, Vec* out) {
  out->resize(block_n);
  switch (expr.kind) {
    case ExprKind::kSlot: {
      const Vec& src = slot_vecs[static_cast<size_t>(expr.slot)];
      for (int lane : sel) (*out)[static_cast<size_t>(lane)] = src[static_cast<size_t>(lane)];
      return;
    }
    case ExprKind::kConstI64:
      for (int lane : sel) (*out)[static_cast<size_t>(lane)] = expr.i64_value;
      return;
    case ExprKind::kConstF64:
      for (int lane : sel) (*out)[static_cast<size_t>(lane)] = FromF64(expr.f64_value);
      return;
    case ExprKind::kNot: {
      Vec a;
      EvalVec(*expr.children[0], slot_vecs, sel, block_n, &a);
      for (int lane : sel) {
        (*out)[static_cast<size_t>(lane)] = a[static_cast<size_t>(lane)] == 0;
      }
      return;
    }
    case ExprKind::kBitmapTest: {
      Vec code;
      EvalVec(*expr.children[0], slot_vecs, sel, block_n, &code);
      if (sel.size() == block_n) {
        // Dense selection (sel is always an ascending subset of [0, n), so
        // full size means identity): hand the whole vector to the SIMD
        // gather kernel instead of probing lane by lane.
        BitmapTestI64(code.data(), static_cast<int>(block_n), expr.bitmap,
                      out->data());
        return;
      }
      for (int lane : sel) {
        (*out)[static_cast<size_t>(lane)] =
            expr.bitmap[static_cast<uint64_t>(code[static_cast<size_t>(lane)])] != 0;
      }
      return;
    }
    case ExprKind::kLike: {
      // One matcher invocation per selected lane — the vectorized engine
      // pays the call per row just like the compiled runtime-call path.
      Vec code;
      EvalVec(*expr.children[0], slot_vecs, sel, block_n, &code);
      for (int lane : sel) {
        (*out)[static_cast<size_t>(lane)] =
            expr.like_pred->Matches(code[static_cast<size_t>(lane)]) ? 1 : 0;
      }
      return;
    }
    case ExprKind::kBoolToI64: {
      Vec a;
      EvalVec(*expr.children[0], slot_vecs, sel, block_n, &a);
      for (int lane : sel) {
        (*out)[static_cast<size_t>(lane)] = a[static_cast<size_t>(lane)] != 0;
      }
      return;
    }
    case ExprKind::kCastF64: {
      Vec a;
      EvalVec(*expr.children[0], slot_vecs, sel, block_n, &a);
      for (int lane : sel) {
        (*out)[static_cast<size_t>(lane)] =
            FromF64(static_cast<double>(a[static_cast<size_t>(lane)]));
      }
      return;
    }
    default:
      break;
  }
  // Binary kinds.
  Vec a, b;
  EvalVec(*expr.children[0], slot_vecs, sel, block_n, &a);
  EvalVec(*expr.children[1], slot_vecs, sel, block_n, &b);
  switch (expr.kind) {
#define AQE_VEC_LOOP(op_expr)                                       \
  for (int lane : sel) {                                            \
    size_t i = static_cast<size_t>(lane);                           \
    (*out)[i] = (op_expr);                                          \
  }                                                                 \
  return
    case ExprKind::kAdd: AQE_VEC_LOOP(a[i] + b[i]);
    case ExprKind::kSub: AQE_VEC_LOOP(a[i] - b[i]);
    case ExprKind::kMul: AQE_VEC_LOOP(a[i] * b[i]);
    case ExprKind::kDiv: AQE_VEC_LOOP(a[i] / b[i]);
    case ExprKind::kCheckedAdd: {
      for (int lane : sel) {
        size_t i = static_cast<size_t>(lane);
        int64_t r;
        AQE_CHECK_MSG(!__builtin_add_overflow(a[i], b[i], &r),
                      "overflow in vectorized execution");
        (*out)[i] = r;
      }
      return;
    }
    case ExprKind::kCheckedSub: {
      for (int lane : sel) {
        size_t i = static_cast<size_t>(lane);
        int64_t r;
        AQE_CHECK_MSG(!__builtin_sub_overflow(a[i], b[i], &r),
                      "overflow in vectorized execution");
        (*out)[i] = r;
      }
      return;
    }
    case ExprKind::kCheckedMul: {
      for (int lane : sel) {
        size_t i = static_cast<size_t>(lane);
        int64_t r;
        AQE_CHECK_MSG(!__builtin_mul_overflow(a[i], b[i], &r),
                      "overflow in vectorized execution");
        (*out)[i] = r;
      }
      return;
    }
    case ExprKind::kFAdd: AQE_VEC_LOOP(FromF64(AsF64(a[i]) + AsF64(b[i])));
    case ExprKind::kFSub: AQE_VEC_LOOP(FromF64(AsF64(a[i]) - AsF64(b[i])));
    case ExprKind::kFMul: AQE_VEC_LOOP(FromF64(AsF64(a[i]) * AsF64(b[i])));
    case ExprKind::kFDiv: AQE_VEC_LOOP(FromF64(AsF64(a[i]) / AsF64(b[i])));
    case ExprKind::kEq: AQE_VEC_LOOP(a[i] == b[i]);
    case ExprKind::kNe: AQE_VEC_LOOP(a[i] != b[i]);
    case ExprKind::kLt: AQE_VEC_LOOP(a[i] < b[i]);
    case ExprKind::kLe: AQE_VEC_LOOP(a[i] <= b[i]);
    case ExprKind::kGt: AQE_VEC_LOOP(a[i] > b[i]);
    case ExprKind::kGe: AQE_VEC_LOOP(a[i] >= b[i]);
    case ExprKind::kAnd: AQE_VEC_LOOP((a[i] != 0) & (b[i] != 0));
    case ExprKind::kOr: AQE_VEC_LOOP((a[i] != 0) | (b[i] != 0));
#undef AQE_VEC_LOOP
    default:
      AQE_UNREACHABLE("bad ExprKind in vectorized evaluation");
  }
}

/// Materializes only the selected lanes of a scan column (other lanes keep
/// the vector's zero-fill — no downstream loop reads them). Used after
/// selection pushdown so non-probed columns pay per survivor, not per row.
void LoadColumnVecSel(const Column& column, uint64_t base, uint64_t n,
                      const Sel& sel, Vec* out) {
  out->resize(n);
  switch (column.type()) {
    case DataType::kI32: {
      const auto* data = static_cast<const int32_t*>(column.data()) + base;
      for (int lane : sel) {
        (*out)[static_cast<size_t>(lane)] = data[lane];
      }
      return;
    }
    case DataType::kI64: {
      const auto* data = static_cast<const int64_t*>(column.data()) + base;
      for (int lane : sel) {
        (*out)[static_cast<size_t>(lane)] = data[lane];
      }
      return;
    }
    case DataType::kF64: {
      const auto* data = static_cast<const double*>(column.data()) + base;
      for (int lane : sel) {
        (*out)[static_cast<size_t>(lane)] = FromF64(data[lane]);
      }
      return;
    }
  }
  AQE_UNREACHABLE("bad DataType");
}

/// Materializes one scan column for a block, widening to i64.
void LoadColumnVec(const Column& column, uint64_t base, uint64_t n, Vec* out) {
  out->resize(n);
  switch (column.type()) {
    case DataType::kI32: {
      const auto* data = static_cast<const int32_t*>(column.data()) + base;
      for (uint64_t i = 0; i < n; ++i) (*out)[i] = data[i];
      return;
    }
    case DataType::kI64: {
      const auto* data = static_cast<const int64_t*>(column.data()) + base;
      for (uint64_t i = 0; i < n; ++i) (*out)[i] = data[i];
      return;
    }
    case DataType::kF64: {
      const auto* data = static_cast<const double*>(column.data()) + base;
      for (uint64_t i = 0; i < n; ++i) (*out)[i] = FromF64(data[i]);
      return;
    }
  }
  AQE_UNREACHABLE("bad DataType");
}

}  // namespace

void RunPipelineVectorized(const QueryProgram& program,
                           const PipelineSpec& spec, QueryContext* ctx) {
  const Table* table = program.ResolveTable(spec.source_table, *ctx);
  const uint64_t rows = table->num_rows();
  std::vector<const Column*> columns;
  for (int c : spec.scan_columns) columns.push_back(&table->column(c));

  AggHashTable* agg_local = nullptr;
  if (const auto* agg = std::get_if<SinkAgg>(&spec.sink)) {
    agg_local = ctx->agg_sets[static_cast<size_t>(agg->agg)]->Local();
  }

  // Dictionary-aware selection pushdown: when the pipeline opens with a
  // bitmap filter over a raw scan column, probe the column's codes straight
  // out of storage and materialize every column only for the survivors —
  // the probe happens BEFORE any lane is widened to i64.
  int pushdown_slot = -1;
  const uint8_t* pushdown_bitmap = nullptr;
  if (!spec.ops.empty()) {
    if (const auto* filter = std::get_if<OpFilter>(&spec.ops[0])) {
      const Expr& pred = *filter->predicate;
      if (pred.kind == ExprKind::kBitmapTest &&
          pred.children[0]->kind == ExprKind::kSlot) {
        const int slot = pred.children[0]->slot;
        if (slot >= 0 && static_cast<size_t>(slot) < columns.size() &&
            columns[static_cast<size_t>(slot)]->type() != DataType::kF64) {
          pushdown_slot = slot;
          pushdown_bitmap = pred.bitmap;
        }
      }
    }
  }
  static_assert(sizeof(int) == sizeof(int32_t),
                "selection vectors feed the SIMD probe kernels directly");

  std::vector<Vec> slot_vecs;
  Vec tmp;
  Sel sel;
  for (uint64_t base = 0; base < rows; base += kVectorSize) {
    const uint64_t n = std::min(kVectorSize, rows - base);
    slot_vecs.clear();
    size_t first_op = 0;
    if (pushdown_slot >= 0) {
      const Column& probe_col = *columns[static_cast<size_t>(pushdown_slot)];
      sel.assign(n, 0);
      int hits;
      if (probe_col.type() == DataType::kI32) {
        hits = BitmapProbeSelI32(
            static_cast<const int32_t*>(probe_col.data()) + base,
            static_cast<int>(n), pushdown_bitmap, sel.data());
      } else {
        hits = BitmapProbeSelI64(
            static_cast<const int64_t*>(probe_col.data()) + base,
            static_cast<int>(n), pushdown_bitmap, sel.data());
      }
      if (hits == 0) continue;
      sel.resize(static_cast<size_t>(hits));
      first_op = 1;
      for (const Column* column : columns) {
        slot_vecs.emplace_back();
        LoadColumnVecSel(*column, base, n, sel, &slot_vecs.back());
      }
    } else {
      for (const Column* column : columns) {
        slot_vecs.emplace_back();
        LoadColumnVec(*column, base, n, &slot_vecs.back());
      }
      sel.resize(n);
      for (uint64_t i = 0; i < n; ++i) sel[i] = static_cast<int>(i);
    }

    for (size_t op_index = first_op; op_index < spec.ops.size(); ++op_index) {
      const PipelineOp& op = spec.ops[op_index];
      if (sel.empty()) break;
      if (const auto* filter = std::get_if<OpFilter>(&op)) {
        EvalVec(*filter->predicate, slot_vecs, sel, n, &tmp);
        Sel next;
        next.reserve(sel.size());
        for (int lane : sel) {
          if (tmp[static_cast<size_t>(lane)] != 0) next.push_back(lane);
        }
        sel = std::move(next);
      } else if (const auto* compute = std::get_if<OpCompute>(&op)) {
        slot_vecs.emplace_back();
        EvalVec(*compute->expr, slot_vecs, sel, n,
                &slot_vecs.back());
      } else {
        const auto& probe = std::get<OpProbe>(op);
        JoinHashTable* ht =
            ctx->join_tables[static_cast<size_t>(probe.ht)].get();
        AQE_CHECK_MSG(ht != nullptr, "join table not built");
        EvalVec(*probe.key, slot_vecs, sel, n, &tmp);
        Sel next;
        next.reserve(sel.size());
        size_t payload_base = slot_vecs.size();
        if (probe.kind == JoinKind::kInner) {
          for (int k = 0; k < probe.payload_slots; ++k) {
            slot_vecs.emplace_back(n);
          }
        }
        for (int lane : sel) {
          size_t i = static_cast<size_t>(lane);
          void* node = ht->Lookup(tmp[i]);
          if (probe.kind == JoinKind::kAnti) {
            if (node == nullptr) next.push_back(lane);
            continue;
          }
          if (node == nullptr) continue;
          if (probe.kind == JoinKind::kInner) {
            const auto* payload = reinterpret_cast<const int64_t*>(
                static_cast<const uint8_t*>(node) + 16);
            for (int k = 0; k < probe.payload_slots; ++k) {
              slot_vecs[payload_base + static_cast<size_t>(k)][i] = payload[k];
            }
          }
          next.push_back(lane);
        }
        sel = std::move(next);
      }
    }
    if (sel.empty()) continue;

    if (const auto* build = std::get_if<SinkBuild>(&spec.sink)) {
      JoinHashTable* ht =
          ctx->join_tables[static_cast<size_t>(build->ht)].get();
      AQE_CHECK_MSG(ht != nullptr, "join table not built");
      Vec key;
      EvalVec(*build->key, slot_vecs, sel, n, &key);
      std::vector<Vec> payload_vecs(build->payload.size());
      for (size_t k = 0; k < build->payload.size(); ++k) {
        EvalVec(*build->payload[k], slot_vecs, sel, n, &payload_vecs[k]);
      }
      for (int lane : sel) {
        size_t i = static_cast<size_t>(lane);
        auto* payload = static_cast<int64_t*>(ht->Insert(key[i]));
        for (size_t k = 0; k < payload_vecs.size(); ++k) {
          payload[k] = payload_vecs[k][i];
        }
      }
    } else if (const auto* agg = std::get_if<SinkAgg>(&spec.sink)) {
      Vec key;
      EvalVec(*agg->key, slot_vecs, sel, n, &key);
      std::vector<Vec> value_vecs(agg->items.size());
      for (size_t k = 0; k < agg->items.size(); ++k) {
        if (agg->items[k].kind != AggKind::kCount) {
          EvalVec(*agg->items[k].value, slot_vecs, sel, n, &value_vecs[k]);
        }
      }
      for (int lane : sel) {
        size_t i = static_cast<size_t>(lane);
        auto* payload = static_cast<int64_t*>(agg_local->FindOrInsert(key[i]));
        for (size_t k = 0; k < agg->items.size(); ++k) {
          switch (agg->items[k].kind) {
            case AggKind::kCount: payload[k] += 1; break;
            case AggKind::kSum: payload[k] += value_vecs[k][i]; break;
            case AggKind::kMin:
              payload[k] = std::min(payload[k], value_vecs[k][i]);
              break;
            case AggKind::kMax:
              payload[k] = std::max(payload[k], value_vecs[k][i]);
              break;
          }
        }
      }
    } else {
      const auto& out = std::get<SinkOutput>(spec.sink);
      OutputBuffer* buffer = ctx->outputs[static_cast<size_t>(out.output)].get();
      std::vector<Vec> value_vecs(out.values.size());
      for (size_t k = 0; k < out.values.size(); ++k) {
        EvalVec(*out.values[k], slot_vecs, sel, n, &value_vecs[k]);
      }
      for (int lane : sel) {
        size_t i = static_cast<size_t>(lane);
        int64_t* row = buffer->AllocRow();
        for (size_t k = 0; k < value_vecs.size(); ++k) {
          row[k] = value_vecs[k][i];
        }
      }
    }
  }
}

}  // namespace aqe
