#include "jit/jit_compiler.h"

#include <vector>

#include <llvm/ExecutionEngine/Orc/LLJIT.h>
#include <llvm/ExecutionEngine/Orc/ThreadSafeModule.h>
#include <llvm/IR/LegacyPassManager.h>
#include <llvm/IR/Module.h>
#include <llvm/Support/TargetSelect.h>
#include <llvm/Transforms/InstCombine/InstCombine.h>
#include <llvm/Transforms/Scalar.h>
#include <llvm/Transforms/Scalar/GVN.h>
#include <llvm/Transforms/Utils.h>

#include "common/status.h"
#include "common/timer.h"

namespace aqe {
namespace {

void InitializeLlvmOnce() {
  static bool initialized = [] {
    llvm::InitializeNativeTarget();
    llvm::InitializeNativeTargetAsmPrinter();
    return true;
  }();
  (void)initialized;
}

/// Runs the paper's §V optimization pass list over the module.
void RunOptimizationPasses(llvm::Module* module) {
  llvm::legacy::FunctionPassManager fpm(module);
  fpm.add(llvm::createInstructionCombiningPass());  // peephole
  fpm.add(llvm::createReassociatePass());
  fpm.add(llvm::createGVNPass());  // common subexpression elimination
  fpm.add(llvm::createCFGSimplificationPass());
  fpm.add(llvm::createAggressiveDCEPass());
  fpm.doInitialization();
  for (llvm::Function& fn : *module) {
    if (!fn.isDeclaration()) fpm.run(fn);
  }
  fpm.doFinalization();
}

class OrcCompiledModule : public CompiledModule {
 public:
  OrcCompiledModule(std::unique_ptr<llvm::orc::LLJIT> jit,
                    double ir_pass_millis, double codegen_millis,
                    uint64_t approx_code_bytes)
      : jit_(std::move(jit)),
        ir_pass_millis_(ir_pass_millis),
        codegen_millis_(codegen_millis),
        approx_code_bytes_(approx_code_bytes) {}

  void* Lookup(const std::string& name) override {
    auto sym = jit_->lookup(name);
    if (!sym) {
      llvm::consumeError(sym.takeError());
      return nullptr;
    }
    return reinterpret_cast<void*>(sym->getAddress());
  }

  double ir_pass_millis() const override { return ir_pass_millis_; }
  double codegen_millis() const override { return codegen_millis_; }
  uint64_t approx_code_bytes() const override { return approx_code_bytes_; }

 private:
  std::unique_ptr<llvm::orc::LLJIT> jit_;
  double ir_pass_millis_;
  double codegen_millis_;
  uint64_t approx_code_bytes_;
};

}  // namespace

const char* JitModeName(JitMode mode) {
  switch (mode) {
    case JitMode::kUnoptimized: return "unoptimized";
    case JitMode::kOptimized: return "optimized";
  }
  AQE_UNREACHABLE("bad JitMode");
}

std::unique_ptr<CompiledModule> JitCompile(IrModule mod, JitMode mode,
                                           const RuntimeRegistry& registry) {
  InitializeLlvmOnce();

  // IR optimization passes (timed separately; Fig 1 reports this stage on
  // its own).
  double ir_pass_millis = 0;
  if (mode == JitMode::kOptimized) {
    Timer timer;
    RunOptimizationPasses(&mod.module());
    ir_pass_millis = timer.ElapsedMillis();
  }

  // Collect the function names to compile eagerly after setup, and the
  // post-optimization IR size the code-footprint estimate is based on
  // (roughly 16 bytes of machine code + allocator overhead per IR
  // instruction on x86-64; an estimate is all the byte budget needs).
  std::vector<std::string> function_names;
  uint64_t ir_instructions = 0;
  for (const llvm::Function& fn : mod.module()) {
    if (fn.isDeclaration()) continue;
    function_names.push_back(fn.getName().str());
    for (const llvm::BasicBlock& block : fn) ir_instructions += block.size();
  }
  const uint64_t approx_code_bytes = 4096 + ir_instructions * 16;

  Timer codegen_timer;
  auto jtmb = llvm::orc::JITTargetMachineBuilder::detectHost();
  AQE_CHECK_MSG(!!jtmb, "cannot detect host target");
  if (mode == JitMode::kUnoptimized) {
    jtmb->setCodeGenOptLevel(llvm::CodeGenOpt::None);
    jtmb->getOptions().EnableFastISel = true;
  } else {
    jtmb->setCodeGenOptLevel(llvm::CodeGenOpt::Default);
  }
  auto jit_or = llvm::orc::LLJITBuilder()
                    .setJITTargetMachineBuilder(std::move(*jtmb))
                    .create();
  AQE_CHECK_MSG(!!jit_or, "LLJIT creation failed");
  std::unique_ptr<llvm::orc::LLJIT> jit = std::move(*jit_or);

  // Expose the C++ query runtime as absolute symbols (§IV-E).
  llvm::orc::SymbolMap symbols;
  for (const auto& [name, entry] : registry.entries()) {
    symbols[jit->mangleAndIntern(name)] = llvm::JITEvaluatedSymbol(
        reinterpret_cast<llvm::JITTargetAddress>(entry.address),
        llvm::JITSymbolFlags::Exported | llvm::JITSymbolFlags::Callable);
  }
  AQE_CHECK(!jit->getMainJITDylib().define(
      llvm::orc::absoluteSymbols(std::move(symbols))));

  auto [module, context] = mod.Release();
  AQE_CHECK(!jit->addIRModule(llvm::orc::ThreadSafeModule(
      std::move(module), std::move(context))));

  // Force eager compilation so the reported codegen time covers machine
  // code generation, and later Lookups are cheap.
  for (const std::string& name : function_names) {
    auto sym = jit->lookup(name);
    AQE_CHECK_MSG(!!sym, "JIT compilation failed");
  }
  double codegen_millis = codegen_timer.ElapsedMillis();

  return std::make_unique<OrcCompiledModule>(std::move(jit), ir_pass_millis,
                                             codegen_millis,
                                             approx_code_bytes);
}

}  // namespace aqe
