#ifndef AQE_JIT_JIT_COMPILER_H_
#define AQE_JIT_JIT_COMPILER_H_

#include <memory>
#include <string>

#include "ir/ir_module.h"
#include "runtime/runtime_registry.h"

namespace aqe {

/// Machine-code generation modes (§V "unoptimized" / "optimized"):
///  - kUnoptimized: no IR passes, fast instruction selection, lowest backend
///    optimization level — cheap compilation, decent code.
///  - kOptimized: the paper's hand-picked IR pass list (peephole/instcombine,
///    reassociate, common-subexpression elimination via GVN, CFG
///    simplification, aggressive DCE) plus full backend optimization —
///    expensive compilation, fastest code.
enum class JitMode { kUnoptimized, kOptimized };

const char* JitModeName(JitMode mode);

/// A module compiled to machine code. Owns the underlying ORC JIT; looked-up
/// addresses stay valid for the lifetime of this object.
class CompiledModule {
 public:
  virtual ~CompiledModule() = default;

  /// Address of a compiled function, or nullptr if absent.
  virtual void* Lookup(const std::string& name) = 0;

  /// Time spent running IR optimization passes (ms; 0 for unoptimized).
  virtual double ir_pass_millis() const = 0;
  /// Time spent generating machine code (ms).
  virtual double codegen_millis() const = 0;
  /// Estimated resident footprint of the compiled code (machine code +
  /// JIT bookkeeping), derived from the compiled IR size. The artifact
  /// cache charges this against its byte budget.
  virtual uint64_t approx_code_bytes() const = 0;
};

/// Compiles `mod` (consumed) to machine code. Runtime functions registered
/// in `registry` are resolvable as absolute symbols. Compilation is eager:
/// when this returns, Lookup is a hash lookup, not a compile.
std::unique_ptr<CompiledModule> JitCompile(IrModule mod, JitMode mode,
                                           const RuntimeRegistry& registry);

}  // namespace aqe

#endif  // AQE_JIT_JIT_COMPILER_H_
