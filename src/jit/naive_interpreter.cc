#include "jit/naive_interpreter.h"

#include <cstring>

#include <llvm/ADT/DenseMap.h>
#include <llvm/IR/Constants.h>
#include <llvm/IR/Instructions.h>
#include <llvm/IR/IntrinsicInst.h>
#include <llvm/IR/Intrinsics.h>

#include "common/status.h"

namespace aqe {
namespace {

uint64_t MaskTo(uint64_t v, unsigned bits) {
  return bits >= 64 ? v : (v & ((uint64_t{1} << bits) - 1));
}

int64_t SignExt(uint64_t v, unsigned bits) {
  if (bits >= 64) return static_cast<int64_t>(v);
  uint64_t sign = uint64_t{1} << (bits - 1);
  return static_cast<int64_t>((v ^ sign) - sign);
}

double AsDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t FromDouble(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

unsigned BitWidthOf(const llvm::Type* type) {
  if (type->isPointerTy()) return 64;
  if (type->isDoubleTy()) return 64;
  return type->getIntegerBitWidth();
}

using F0 = uint64_t (*)();
using F1 = uint64_t (*)(uint64_t);
using F2 = uint64_t (*)(uint64_t, uint64_t);
using F3 = uint64_t (*)(uint64_t, uint64_t, uint64_t);
using F4 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t);
using F5 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t);
using F6 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                        uint64_t);
using F7 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                        uint64_t, uint64_t);
using F8 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                        uint64_t, uint64_t, uint64_t);

/// One interpreter activation.
class Frame {
 public:
  Frame(const llvm::Function& fn, const uint64_t* args, int num_args,
        const RuntimeRegistry& registry)
      : fn_(fn), registry_(registry) {
    AQE_CHECK(static_cast<size_t>(num_args) == fn.arg_size());
    for (int i = 0; i < num_args; ++i) {
      values_[fn.getArg(static_cast<unsigned>(i))] = args[i];
    }
  }

  uint64_t Run();

 private:
  uint64_t Eval(const llvm::Value* v) const;
  uint64_t EvalConstant(const llvm::Constant* c) const;
  void Exec(const llvm::Instruction& inst);
  void ExecBinary(const llvm::BinaryOperator& bin);
  void ExecCall(const llvm::CallInst& call);
  uint8_t* EvalGep(const llvm::GetElementPtrInst& gep) const;

  const llvm::Function& fn_;
  const RuntimeRegistry& registry_;
  llvm::DenseMap<const llvm::Value*, uint64_t> values_;
  // Overflow-intrinsic pairs: second (flag) component.
  llvm::DenseMap<const llvm::Value*, uint64_t> pair_flags_;
  const llvm::BasicBlock* block_ = nullptr;
  const llvm::BasicBlock* prev_block_ = nullptr;
  uint64_t result_ = 0;
  bool done_ = false;
};

uint64_t Frame::EvalConstant(const llvm::Constant* c) const {
  if (const auto* ci = llvm::dyn_cast<llvm::ConstantInt>(c)) {
    return ci->getZExtValue();
  }
  if (const auto* cf = llvm::dyn_cast<llvm::ConstantFP>(c)) {
    return cf->getValueAPF().bitcastToAPInt().getZExtValue();
  }
  if (llvm::isa<llvm::ConstantPointerNull>(c) ||
      llvm::isa<llvm::UndefValue>(c)) {
    return 0;
  }
  // Embedded runtime pointers: inttoptr/bitcast constant expressions.
  if (const auto* ce = llvm::dyn_cast<llvm::ConstantExpr>(c)) {
    if (ce->getOpcode() == llvm::Instruction::IntToPtr ||
        ce->getOpcode() == llvm::Instruction::PtrToInt ||
        ce->getOpcode() == llvm::Instruction::BitCast) {
      return EvalConstant(llvm::cast<llvm::Constant>(ce->getOperand(0)));
    }
  }
  AQE_UNREACHABLE("unsupported constant in naive interpretation");
}

uint64_t Frame::Eval(const llvm::Value* v) const {
  if (const auto* c = llvm::dyn_cast<llvm::Constant>(v)) {
    return EvalConstant(c);
  }
  auto it = values_.find(v);
  AQE_CHECK_MSG(it != values_.end(), "use of undefined value");
  return it->second;
}

void Frame::ExecBinary(const llvm::BinaryOperator& bin) {
  const llvm::Type* type = bin.getType();
  uint64_t a = Eval(bin.getOperand(0));
  uint64_t b = Eval(bin.getOperand(1));
  if (type->isDoubleTy()) {
    double x = AsDouble(a), y = AsDouble(b), r = 0;
    switch (bin.getOpcode()) {
      case llvm::Instruction::FAdd: r = x + y; break;
      case llvm::Instruction::FSub: r = x - y; break;
      case llvm::Instruction::FMul: r = x * y; break;
      case llvm::Instruction::FDiv: r = x / y; break;
      default: AQE_UNREACHABLE("unsupported fp binop");
    }
    values_[&bin] = FromDouble(r);
    return;
  }
  unsigned bits = BitWidthOf(type);
  uint64_t r = 0;
  switch (bin.getOpcode()) {
    case llvm::Instruction::Add: r = a + b; break;
    case llvm::Instruction::Sub: r = a - b; break;
    case llvm::Instruction::Mul: r = a * b; break;
    case llvm::Instruction::SDiv:
      r = static_cast<uint64_t>(SignExt(a, bits) / SignExt(b, bits));
      break;
    case llvm::Instruction::UDiv: r = MaskTo(a, bits) / MaskTo(b, bits); break;
    case llvm::Instruction::SRem:
      r = static_cast<uint64_t>(SignExt(a, bits) % SignExt(b, bits));
      break;
    case llvm::Instruction::URem: r = MaskTo(a, bits) % MaskTo(b, bits); break;
    case llvm::Instruction::And: r = a & b; break;
    case llvm::Instruction::Or: r = a | b; break;
    case llvm::Instruction::Xor: r = a ^ b; break;
    case llvm::Instruction::Shl: r = a << (b & (bits - 1)); break;
    case llvm::Instruction::LShr: r = MaskTo(a, bits) >> (b & (bits - 1)); break;
    case llvm::Instruction::AShr:
      r = static_cast<uint64_t>(SignExt(a, bits) >> (b & (bits - 1)));
      break;
    default: AQE_UNREACHABLE("unsupported binop");
  }
  values_[&bin] = MaskTo(r, bits);
}

uint8_t* Frame::EvalGep(const llvm::GetElementPtrInst& gep) const {
  uint8_t* addr = reinterpret_cast<uint8_t*>(Eval(gep.getPointerOperand()));
  AQE_CHECK_MSG(gep.getNumIndices() == 1, "naive interp: single-index GEPs");
  const llvm::Type* elem = gep.getSourceElementType();
  uint64_t scale =
      elem->isDoubleTy() || elem->isPointerTy()
          ? 8
          : std::max<uint64_t>(1, elem->getIntegerBitWidth() / 8);
  int64_t index = SignExt(Eval(gep.getOperand(1)),
                          BitWidthOf(gep.getOperand(1)->getType()));
  return addr + index * static_cast<int64_t>(scale);
}

void Frame::ExecCall(const llvm::CallInst& call) {
  const llvm::Function* callee = call.getCalledFunction();
  AQE_CHECK_MSG(callee != nullptr, "indirect call in naive interpretation");
  llvm::Intrinsic::ID id = callee->getIntrinsicID();
  if (id == llvm::Intrinsic::sadd_with_overflow ||
      id == llvm::Intrinsic::ssub_with_overflow ||
      id == llvm::Intrinsic::smul_with_overflow) {
    unsigned bits = BitWidthOf(call.getArgOperand(0)->getType());
    int64_t a = SignExt(Eval(call.getArgOperand(0)), bits);
    int64_t b = SignExt(Eval(call.getArgOperand(1)), bits);
    int64_t wide = 0;
    bool overflow = false;
    switch (id) {
      case llvm::Intrinsic::sadd_with_overflow:
        overflow = __builtin_add_overflow(a, b, &wide);
        break;
      case llvm::Intrinsic::ssub_with_overflow:
        overflow = __builtin_sub_overflow(a, b, &wide);
        break;
      default:
        overflow = __builtin_mul_overflow(a, b, &wide);
        break;
    }
    if (bits < 64 && !overflow) {
      overflow = wide != SignExt(MaskTo(static_cast<uint64_t>(wide), bits),
                                 bits);
    }
    values_[&call] = MaskTo(static_cast<uint64_t>(wide), bits);
    pair_flags_[&call] = overflow ? 1 : 0;
    return;
  }
  if (callee->isIntrinsic()) {
    switch (id) {
      case llvm::Intrinsic::lifetime_start:
      case llvm::Intrinsic::lifetime_end:
      case llvm::Intrinsic::donothing:
      case llvm::Intrinsic::assume:
        return;
      default:
        AQE_UNREACHABLE("unsupported intrinsic in naive interpretation");
    }
  }
  const RuntimeRegistry::Entry* entry =
      registry_.Find(callee->getName().str());
  AQE_CHECK_MSG(entry != nullptr, "call to unregistered runtime function");
  uint64_t args[8];
  unsigned n = call.arg_size();
  AQE_CHECK(n <= 8 && static_cast<int>(n) == entry->num_args);
  for (unsigned i = 0; i < n; ++i) args[i] = Eval(call.getArgOperand(i));
  uint64_t target = reinterpret_cast<uint64_t>(entry->address);
  uint64_t r = 0;
  switch (n) {
    case 0: r = reinterpret_cast<F0>(target)(); break;
    case 1: r = reinterpret_cast<F1>(target)(args[0]); break;
    case 2: r = reinterpret_cast<F2>(target)(args[0], args[1]); break;
    case 3: r = reinterpret_cast<F3>(target)(args[0], args[1], args[2]); break;
    case 4: r = reinterpret_cast<F4>(target)(args[0], args[1], args[2], args[3]); break;
    case 5: r = reinterpret_cast<F5>(target)(args[0], args[1], args[2], args[3], args[4]); break;
    case 6: r = reinterpret_cast<F6>(target)(args[0], args[1], args[2], args[3], args[4], args[5]); break;
    case 7: r = reinterpret_cast<F7>(target)(args[0], args[1], args[2], args[3], args[4], args[5], args[6]); break;
    case 8: r = reinterpret_cast<F8>(target)(args[0], args[1], args[2], args[3], args[4], args[5], args[6], args[7]); break;
  }
  if (entry->returns_value) values_[&call] = r;
}

void Frame::Exec(const llvm::Instruction& inst) {
  switch (inst.getOpcode()) {
    case llvm::Instruction::Add: case llvm::Instruction::Sub:
    case llvm::Instruction::Mul: case llvm::Instruction::SDiv:
    case llvm::Instruction::UDiv: case llvm::Instruction::SRem:
    case llvm::Instruction::URem: case llvm::Instruction::And:
    case llvm::Instruction::Or: case llvm::Instruction::Xor:
    case llvm::Instruction::Shl: case llvm::Instruction::LShr:
    case llvm::Instruction::AShr: case llvm::Instruction::FAdd:
    case llvm::Instruction::FSub: case llvm::Instruction::FMul:
    case llvm::Instruction::FDiv:
      ExecBinary(llvm::cast<llvm::BinaryOperator>(inst));
      break;
    case llvm::Instruction::FNeg:
      values_[&inst] = FromDouble(-AsDouble(Eval(inst.getOperand(0))));
      break;
    case llvm::Instruction::ICmp: {
      const auto& cmp = llvm::cast<llvm::ICmpInst>(inst);
      unsigned bits = BitWidthOf(cmp.getOperand(0)->getType());
      uint64_t ua = MaskTo(Eval(cmp.getOperand(0)), bits);
      uint64_t ub = MaskTo(Eval(cmp.getOperand(1)), bits);
      int64_t sa = SignExt(ua, bits), sb = SignExt(ub, bits);
      bool r = false;
      switch (cmp.getPredicate()) {
        case llvm::CmpInst::ICMP_EQ: r = ua == ub; break;
        case llvm::CmpInst::ICMP_NE: r = ua != ub; break;
        case llvm::CmpInst::ICMP_SLT: r = sa < sb; break;
        case llvm::CmpInst::ICMP_SLE: r = sa <= sb; break;
        case llvm::CmpInst::ICMP_SGT: r = sa > sb; break;
        case llvm::CmpInst::ICMP_SGE: r = sa >= sb; break;
        case llvm::CmpInst::ICMP_ULT: r = ua < ub; break;
        case llvm::CmpInst::ICMP_ULE: r = ua <= ub; break;
        case llvm::CmpInst::ICMP_UGT: r = ua > ub; break;
        case llvm::CmpInst::ICMP_UGE: r = ua >= ub; break;
        default: AQE_UNREACHABLE("bad icmp predicate");
      }
      values_[&inst] = r ? 1 : 0;
      break;
    }
    case llvm::Instruction::FCmp: {
      const auto& cmp = llvm::cast<llvm::FCmpInst>(inst);
      double x = AsDouble(Eval(cmp.getOperand(0)));
      double y = AsDouble(Eval(cmp.getOperand(1)));
      bool r = false;
      switch (cmp.getPredicate()) {
        case llvm::CmpInst::FCMP_OEQ: r = x == y; break;
        case llvm::CmpInst::FCMP_ONE: r = x < y || x > y; break;
        case llvm::CmpInst::FCMP_OLT: r = x < y; break;
        case llvm::CmpInst::FCMP_OLE: r = x <= y; break;
        case llvm::CmpInst::FCMP_OGT: r = x > y; break;
        case llvm::CmpInst::FCMP_OGE: r = x >= y; break;
        case llvm::CmpInst::FCMP_UNE: r = !(x == y); break;
        default: AQE_UNREACHABLE("bad fcmp predicate");
      }
      values_[&inst] = r ? 1 : 0;
      break;
    }
    case llvm::Instruction::SExt: {
      unsigned from = BitWidthOf(inst.getOperand(0)->getType());
      unsigned to = BitWidthOf(inst.getType());
      values_[&inst] = MaskTo(
          static_cast<uint64_t>(SignExt(Eval(inst.getOperand(0)), from)), to);
      break;
    }
    case llvm::Instruction::ZExt: {
      unsigned from = BitWidthOf(inst.getOperand(0)->getType());
      values_[&inst] = MaskTo(Eval(inst.getOperand(0)), from);
      break;
    }
    case llvm::Instruction::Trunc: {
      unsigned to = BitWidthOf(inst.getType());
      values_[&inst] = MaskTo(Eval(inst.getOperand(0)), to);
      break;
    }
    case llvm::Instruction::SIToFP: {
      unsigned from = BitWidthOf(inst.getOperand(0)->getType());
      values_[&inst] = FromDouble(
          static_cast<double>(SignExt(Eval(inst.getOperand(0)), from)));
      break;
    }
    case llvm::Instruction::UIToFP: {
      unsigned from = BitWidthOf(inst.getOperand(0)->getType());
      values_[&inst] = FromDouble(
          static_cast<double>(MaskTo(Eval(inst.getOperand(0)), from)));
      break;
    }
    case llvm::Instruction::FPToSI: {
      unsigned to = BitWidthOf(inst.getType());
      values_[&inst] = MaskTo(
          static_cast<uint64_t>(
              static_cast<int64_t>(AsDouble(Eval(inst.getOperand(0))))),
          to);
      break;
    }
    case llvm::Instruction::BitCast:
    case llvm::Instruction::PtrToInt:
    case llvm::Instruction::IntToPtr:
      values_[&inst] = Eval(inst.getOperand(0));
      break;
    case llvm::Instruction::Load: {
      const auto& load = llvm::cast<llvm::LoadInst>(inst);
      const llvm::Value* ptr = load.getPointerOperand();
      const uint8_t* addr = reinterpret_cast<const uint8_t*>(Eval(ptr));
      const llvm::Type* type = load.getType();
      uint64_t v = 0;
      if (type->isDoubleTy()) {
        std::memcpy(&v, addr, 8);
      } else {
        unsigned bytes = std::max(1u, BitWidthOf(type) / 8);
        std::memcpy(&v, addr, bytes);
        v = MaskTo(v, BitWidthOf(type));
      }
      values_[&load] = v;
      break;
    }
    case llvm::Instruction::Store: {
      const auto& store = llvm::cast<llvm::StoreInst>(inst);
      uint8_t* addr =
          reinterpret_cast<uint8_t*>(Eval(store.getPointerOperand()));
      uint64_t v = Eval(store.getValueOperand());
      const llvm::Type* type = store.getValueOperand()->getType();
      unsigned bytes =
          type->isDoubleTy() ? 8 : std::max(1u, BitWidthOf(type) / 8);
      std::memcpy(addr, &v, bytes);
      break;
    }
    case llvm::Instruction::GetElementPtr:
      values_[&inst] = reinterpret_cast<uint64_t>(
          EvalGep(llvm::cast<llvm::GetElementPtrInst>(inst)));
      break;
    case llvm::Instruction::Call:
      ExecCall(llvm::cast<llvm::CallInst>(inst));
      break;
    case llvm::Instruction::ExtractValue: {
      const auto& ev = llvm::cast<llvm::ExtractValueInst>(inst);
      const llvm::Value* agg = ev.getAggregateOperand();
      AQE_CHECK(ev.getNumIndices() == 1);
      values_[&ev] = ev.getIndices()[0] == 0 ? values_.lookup(agg)
                                             : pair_flags_.lookup(agg);
      break;
    }
    case llvm::Instruction::Select: {
      const auto& sel = llvm::cast<llvm::SelectInst>(inst);
      values_[&sel] = Eval(sel.getCondition()) != 0
                          ? Eval(sel.getTrueValue())
                          : Eval(sel.getFalseValue());
      break;
    }
    case llvm::Instruction::Br: {
      const auto& br = llvm::cast<llvm::BranchInst>(inst);
      prev_block_ = block_;
      block_ = br.isUnconditional()
                   ? br.getSuccessor(0)
                   : (Eval(br.getCondition()) != 0 ? br.getSuccessor(0)
                                                   : br.getSuccessor(1));
      break;
    }
    case llvm::Instruction::Ret: {
      const auto& ret = llvm::cast<llvm::ReturnInst>(inst);
      result_ = ret.getNumOperands() == 0 ? 0 : Eval(ret.getOperand(0));
      done_ = true;
      break;
    }
    case llvm::Instruction::Unreachable:
      AQE_UNREACHABLE("naive interp reached llvm unreachable");
    default:
      AQE_UNREACHABLE("unsupported instruction in naive interpretation");
  }
}

uint64_t Frame::Run() {
  block_ = &fn_.getEntryBlock();
  prev_block_ = nullptr;
  while (!done_) {
    // Phi nodes first, with parallel-copy semantics.
    llvm::SmallVector<std::pair<const llvm::PHINode*, uint64_t>, 4> phi_vals;
    for (const llvm::PHINode& phi : block_->phis()) {
      const llvm::Value* incoming =
          phi.getIncomingValueForBlock(prev_block_);
      phi_vals.emplace_back(&phi, Eval(incoming));
    }
    for (const auto& [phi, value] : phi_vals) values_[phi] = value;

    const llvm::BasicBlock* current = block_;
    for (const llvm::Instruction& inst : *current) {
      if (llvm::isa<llvm::PHINode>(inst)) continue;
      Exec(inst);
      // Terminators end the block (covers self-loops where block_ ==
      // current after the branch).
      if (done_ || inst.isTerminator()) break;
    }
  }
  return result_;
}

}  // namespace

uint64_t NaiveIrInterpret(const llvm::Function& fn, const uint64_t* args,
                          int num_args, const RuntimeRegistry& registry) {
  Frame frame(fn, args, num_args, registry);
  return frame.Run();
}

}  // namespace aqe
