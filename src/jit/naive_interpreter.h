#ifndef AQE_JIT_NAIVE_INTERPRETER_H_
#define AQE_JIT_NAIVE_INTERPRETER_H_

#include <cstdint>

#include <llvm/IR/Function.h>

#include "runtime/runtime_registry.h"

namespace aqe {

/// Direct interpreter over llvm::Instruction objects — the stand-in for
/// LLVM's built-in IR interpreter in Fig 2 ("LLVM IR"). Intentionally built
/// the way that interpreter is built: it chases the pointer-based in-memory
/// IR representation and dispatches each instruction on its runtime operand
/// type, which is exactly why the paper measures it ~800x slower than
/// machine code and why the bytecode VM of §IV exists.
///
/// Arguments/return use the same raw 8-byte-slot convention as VmExecute.
uint64_t NaiveIrInterpret(const llvm::Function& fn, const uint64_t* args,
                          int num_args, const RuntimeRegistry& registry);

}  // namespace aqe

#endif  // AQE_JIT_NAIVE_INTERPRETER_H_
