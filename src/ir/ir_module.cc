#include "ir/ir_module.h"

#include <llvm/IR/Verifier.h>
#include <llvm/Support/raw_ostream.h>

namespace aqe {

IrModule::IrModule(const std::string& name)
    : context_(std::make_unique<llvm::LLVMContext>()),
      module_(std::make_unique<llvm::Module>(name, *context_)) {}

IrModule::~IrModule() = default;

std::pair<std::unique_ptr<llvm::Module>, std::unique_ptr<llvm::LLVMContext>>
IrModule::Release() {
  return {std::move(module_), std::move(context_)};
}

std::string IrModule::Verify() const {
  std::string out;
  llvm::raw_string_ostream os(out);
  if (llvm::verifyModule(*module_, &os)) {
    os.flush();
    return out;
  }
  return "";
}

std::string IrModule::Print() const {
  std::string out;
  llvm::raw_string_ostream os(out);
  module_->print(os, nullptr);
  os.flush();
  return out;
}

}  // namespace aqe
