#ifndef AQE_IR_IR_MODULE_H_
#define AQE_IR_IR_MODULE_H_

#include <memory>
#include <string>

#include <llvm/IR/IRBuilder.h>
#include <llvm/IR/LLVMContext.h>
#include <llvm/IR/Module.h>

namespace aqe {

/// Owns one llvm::Module plus its LLVMContext. Each query compilation (and
/// each background recompilation) builds its own IrModule so contexts are
/// never shared across threads — LLVMContext is not thread-safe.
class IrModule {
 public:
  explicit IrModule(const std::string& name);
  ~IrModule();

  IrModule(const IrModule&) = delete;
  IrModule& operator=(const IrModule&) = delete;
  IrModule(IrModule&&) = default;
  IrModule& operator=(IrModule&&) = default;

  llvm::LLVMContext& context() { return *context_; }
  llvm::Module& module() { return *module_; }

  /// Releases ownership (context first, then module) for handing to ORC's
  /// ThreadSafeModule. The IrModule is empty afterwards.
  std::pair<std::unique_ptr<llvm::Module>, std::unique_ptr<llvm::LLVMContext>>
  Release();

  /// Verifies the module; returns an error description or "" if valid.
  std::string Verify() const;

  /// Textual IR (for debugging / tests).
  std::string Print() const;

 private:
  std::unique_ptr<llvm::LLVMContext> context_;
  std::unique_ptr<llvm::Module> module_;
};

}  // namespace aqe

#endif  // AQE_IR_IR_MODULE_H_
