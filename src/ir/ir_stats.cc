#include "ir/ir_stats.h"

#include <llvm/IR/Function.h>
#include <llvm/IR/Instructions.h>
#include <llvm/IR/Module.h>

namespace aqe {

IrFunctionStats ComputeFunctionStats(const llvm::Function& fn) {
  IrFunctionStats stats;
  for (const llvm::BasicBlock& bb : fn) {
    ++stats.basic_blocks;
    for (const llvm::Instruction& inst : bb) {
      ++stats.instructions;
      if (llvm::isa<llvm::CallInst>(inst)) ++stats.calls;
    }
  }
  return stats;
}

uint64_t CountModuleInstructions(const llvm::Module& mod) {
  uint64_t total = 0;
  for (const llvm::Function& fn : mod) {
    if (fn.isDeclaration()) continue;
    total += ComputeFunctionStats(fn).instructions;
  }
  return total;
}

}  // namespace aqe
