#include "ir/ir_stats.h"

#include <llvm/IR/Function.h>
#include <llvm/IR/Instructions.h>
#include <llvm/IR/IntrinsicInst.h>
#include <llvm/IR/Module.h>

namespace aqe {

IrFunctionStats ComputeFunctionStats(const llvm::Function& fn) {
  IrFunctionStats stats;
  const llvm::BasicBlock* entry = fn.empty() ? nullptr : &fn.getEntryBlock();
  for (const llvm::BasicBlock& bb : fn) {
    ++stats.basic_blocks;
    const bool in_loop =
        &bb != entry &&
        !llvm::isa<llvm::UnreachableInst>(bb.getTerminator());
    for (const llvm::Instruction& inst : bb) {
      ++stats.instructions;
      const auto* call = llvm::dyn_cast<llvm::CallInst>(&inst);
      if (call != nullptr) ++stats.calls;
      if (!in_loop) continue;
      ++stats.loop_instructions;
      if (call != nullptr && !llvm::isa<llvm::IntrinsicInst>(call)) {
        ++stats.loop_calls;
      }
    }
  }
  return stats;
}

uint64_t CountModuleInstructions(const llvm::Module& mod) {
  uint64_t total = 0;
  for (const llvm::Function& fn : mod) {
    if (fn.isDeclaration()) continue;
    total += ComputeFunctionStats(fn).instructions;
  }
  return total;
}

}  // namespace aqe
