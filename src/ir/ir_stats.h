#ifndef AQE_IR_IR_STATS_H_
#define AQE_IR_IR_STATS_H_

#include <cstdint>

namespace llvm {
class Function;
class Module;
}  // namespace llvm

namespace aqe {

/// Instruction/block counts for a function. The adaptive cost model (Fig 7)
/// predicts compilation time as a linear function of `instructions`
/// (the near-linear correlation shown in the paper's Fig 6).
struct IrFunctionStats {
  uint64_t instructions = 0;
  uint64_t basic_blocks = 0;
  uint64_t calls = 0;
  /// Per-tuple work, for the runtime-call-density signal: instructions and
  /// non-intrinsic calls in every block except the function entry (the
  /// once-per-invocation binding hoists) and unreachable-terminated blocks
  /// (the overflow trap). Calls counted here are opaque runtime-function
  /// boundaries code generation cannot fuse across — the worker spends
  /// real time in them in *every* mode, which caps compiled speedup.
  uint64_t loop_instructions = 0;
  uint64_t loop_calls = 0;
};

IrFunctionStats ComputeFunctionStats(const llvm::Function& fn);

/// Total instruction count over all defined functions in the module.
uint64_t CountModuleInstructions(const llvm::Module& mod);

}  // namespace aqe

#endif  // AQE_IR_IR_STATS_H_
