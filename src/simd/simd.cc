#include "simd/simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define AQE_SIMD_X86 1
#include <immintrin.h>
#endif

namespace aqe {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference tier. These define the semantics; the SSE2/AVX2 tiers are
// differentially tested against them (tests/simd_test.cc).
// ---------------------------------------------------------------------------

int ProbeSelI32Scalar(const int32_t* codes, int count, const uint8_t* bitmap,
                      int32_t* sel) {
  int k = 0;
  for (int i = 0; i < count; ++i) {
    if (bitmap[codes[i]] != 0) sel[k++] = i;
  }
  return k;
}

int ProbeSelI64Scalar(const int64_t* codes, int count, const uint8_t* bitmap,
                      int32_t* sel) {
  int k = 0;
  for (int i = 0; i < count; ++i) {
    if (bitmap[codes[i]] != 0) sel[k++] = i;
  }
  return k;
}

void TestI64Scalar(const int64_t* codes, int count, const uint8_t* bitmap,
                   int64_t* out) {
  for (int i = 0; i < count; ++i) {
    out[i] = bitmap[codes[i]] != 0;
  }
}

size_t FindSubstrScalar(const char* hay, size_t hay_len, const char* needle,
                        size_t needle_len) {
  if (needle_len > hay_len) return SIZE_MAX;
  const char* base = hay;
  size_t rem = hay_len;
  while (rem >= needle_len) {
    const char* c = static_cast<const char*>(
        memchr(base, needle[0], rem - needle_len + 1));
    if (c == nullptr) return SIZE_MAX;
    if (memcmp(c, needle, needle_len) == 0) {
      return static_cast<size_t>(c - hay);
    }
    rem = hay_len - static_cast<size_t>(c - hay) - 1;
    base = c + 1;
  }
  return SIZE_MAX;
}

#if AQE_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 tier. No gather instruction exists at this level, so the bitmap
// probes keep scalar byte loads but replace the per-lane branch with a
// 4-lane match mask consumed by a branch-free emission loop (one iteration
// per matching lane, not per lane). The substring kernel is the classic
// first/last-byte block filter.
// ---------------------------------------------------------------------------

inline int EmitSelFromMask(unsigned mask, int base, int32_t* sel, int k) {
  while (mask != 0) {
    sel[k++] = base + __builtin_ctz(mask);
    mask &= mask - 1;
  }
  return k;
}

int ProbeSelI32Sse2(const int32_t* codes, int count, const uint8_t* bitmap,
                    int32_t* sel) {
  int k = 0;
  int i = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 4 <= count; i += 4) {
    const __m128i v =
        _mm_set_epi32(bitmap[codes[i + 3]], bitmap[codes[i + 2]],
                      bitmap[codes[i + 1]], bitmap[codes[i]]);
    const unsigned eq = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, zero))));
    k = EmitSelFromMask(~eq & 0xFu, i, sel, k);
  }
  for (; i < count; ++i) {
    if (bitmap[codes[i]] != 0) sel[k++] = i;
  }
  return k;
}

int ProbeSelI64Sse2(const int64_t* codes, int count, const uint8_t* bitmap,
                    int32_t* sel) {
  int k = 0;
  int i = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 4 <= count; i += 4) {
    const __m128i v =
        _mm_set_epi32(bitmap[codes[i + 3]], bitmap[codes[i + 2]],
                      bitmap[codes[i + 1]], bitmap[codes[i]]);
    const unsigned eq = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, zero))));
    k = EmitSelFromMask(~eq & 0xFu, i, sel, k);
  }
  for (; i < count; ++i) {
    if (bitmap[codes[i]] != 0) sel[k++] = i;
  }
  return k;
}

size_t FindSubstrSse2(const char* hay, size_t hay_len, const char* needle,
                      size_t needle_len) {
  if (needle_len > hay_len) return SIZE_MAX;
  if (needle_len == 1) {
    const char* c = static_cast<const char*>(memchr(hay, needle[0], hay_len));
    return c == nullptr ? SIZE_MAX : static_cast<size_t>(c - hay);
  }
  const __m128i first = _mm_set1_epi8(needle[0]);
  const __m128i last = _mm_set1_epi8(needle[needle_len - 1]);
  size_t i = 0;
  // The block loads touch hay[i .. i+needle_len-1+15]; stay in bounds.
  while (i + needle_len + 15 <= hay_len) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hay + i));
    const __m128i b = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(hay + i + needle_len - 1));
    unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(
        _mm_and_si128(_mm_cmpeq_epi8(a, first), _mm_cmpeq_epi8(b, last))));
    while (mask != 0) {
      const size_t j = i + __builtin_ctz(mask);
      mask &= mask - 1;
      if (memcmp(hay + j + 1, needle + 1, needle_len - 2) == 0) return j;
    }
    i += 16;
  }
  const size_t tail = FindSubstrScalar(hay + i, hay_len - i, needle,
                                       needle_len);
  return tail == SIZE_MAX ? SIZE_MAX : i + tail;
}

// ---------------------------------------------------------------------------
// AVX2 tier. The bitmap probes use vpgatherdd: 8 (i32) / 4 (i64) codes per
// gather, 4 bytes fetched at bitmap + code — the source of the
// kSimdBitmapPadding contract. Compiled via the target attribute so the
// translation unit builds without -mavx2; never called unless cpuid says
// the instructions exist.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) int ProbeSelI32Avx2(const int32_t* codes,
                                                    int count,
                                                    const uint8_t* bitmap,
                                                    int32_t* sel) {
  int k = 0;
  int i = 0;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i byte_mask = _mm256_set1_epi32(0xFF);
  for (; i + 8 <= count; i += 8) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    const __m256i g = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(bitmap), c, 1);
    const __m256i v = _mm256_and_si256(g, byte_mask);
    const unsigned eq = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, zero))));
    k = EmitSelFromMask(~eq & 0xFFu, i, sel, k);
  }
  for (; i < count; ++i) {
    if (bitmap[codes[i]] != 0) sel[k++] = i;
  }
  return k;
}

__attribute__((target("avx2"))) int ProbeSelI64Avx2(const int64_t* codes,
                                                    int count,
                                                    const uint8_t* bitmap,
                                                    int32_t* sel) {
  int k = 0;
  int i = 0;
  const __m128i zero = _mm_setzero_si128();
  const __m128i byte_mask = _mm_set1_epi32(0xFF);
  for (; i + 4 <= count; i += 4) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    const __m128i g = _mm256_i64gather_epi32(
        reinterpret_cast<const int*>(bitmap), c, 1);
    const __m128i v = _mm_and_si128(g, byte_mask);
    const unsigned eq = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, zero))));
    k = EmitSelFromMask(~eq & 0xFu, i, sel, k);
  }
  for (; i < count; ++i) {
    if (bitmap[codes[i]] != 0) sel[k++] = i;
  }
  return k;
}

__attribute__((target("avx2"))) void TestI64Avx2(const int64_t* codes,
                                                 int count,
                                                 const uint8_t* bitmap,
                                                 int64_t* out) {
  int i = 0;
  const __m128i zero = _mm_setzero_si128();
  const __m128i byte_mask = _mm_set1_epi32(0xFF);
  const __m128i ones = _mm_set1_epi32(1);
  for (; i + 4 <= count; i += 4) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    const __m128i g = _mm256_i64gather_epi32(
        reinterpret_cast<const int*>(bitmap), c, 1);
    const __m128i v = _mm_and_si128(g, byte_mask);
    // 0/-1 per lane for "code misses" -> invert, mask to 0/1, widen to i64.
    const __m128i miss = _mm_cmpeq_epi32(v, zero);
    const __m128i hit01 = _mm_andnot_si128(miss, ones);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_cvtepi32_epi64(hit01));
  }
  for (; i < count; ++i) {
    out[i] = bitmap[codes[i]] != 0;
  }
}

__attribute__((target("avx2"))) size_t FindSubstrAvx2(const char* hay,
                                                      size_t hay_len,
                                                      const char* needle,
                                                      size_t needle_len) {
  if (needle_len > hay_len) return SIZE_MAX;
  if (needle_len == 1) {
    const char* c = static_cast<const char*>(memchr(hay, needle[0], hay_len));
    return c == nullptr ? SIZE_MAX : static_cast<size_t>(c - hay);
  }
  const __m256i first = _mm256_set1_epi8(needle[0]);
  const __m256i last = _mm256_set1_epi8(needle[needle_len - 1]);
  size_t i = 0;
  while (i + needle_len + 31 <= hay_len) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hay + i));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hay + i + needle_len - 1));
    unsigned mask = static_cast<unsigned>(_mm256_movemask_epi8(_mm256_and_si256(
        _mm256_cmpeq_epi8(a, first), _mm256_cmpeq_epi8(b, last))));
    while (mask != 0) {
      const size_t j = i + __builtin_ctz(mask);
      mask &= mask - 1;
      if (memcmp(hay + j + 1, needle + 1, needle_len - 2) == 0) return j;
    }
    i += 32;
  }
  const size_t tail =
      FindSubstrSse2(hay + i, hay_len - i, needle, needle_len);
  return tail == SIZE_MAX ? SIZE_MAX : i + tail;
}

#endif  // AQE_SIMD_X86

// ---------------------------------------------------------------------------
// Level selection and dispatch. The kernel table is resolved exactly once
// (first use) so steady-state calls are one indirect jump, not a cpuid or
// getenv per block.
// ---------------------------------------------------------------------------

SimdLevel ClampToDetected(SimdLevel want) {
  const SimdLevel have = DetectedSimdLevel();
  return static_cast<int>(want) < static_cast<int>(have) ? want : have;
}

SimdLevel ParseLevelEnv() {
  const char* env = std::getenv("AQE_SIMD");
  if (env == nullptr || *env == '\0') return DetectedSimdLevel();
  if (strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
  if (strcmp(env, "sse2") == 0) return ClampToDetected(SimdLevel::kSSE2);
  if (strcmp(env, "avx2") == 0) return ClampToDetected(SimdLevel::kAVX2);
  return DetectedSimdLevel();  // unknown value: ignore the override
}

struct KernelTable {
  int (*probe_sel_i32)(const int32_t*, int, const uint8_t*, int32_t*);
  int (*probe_sel_i64)(const int64_t*, int, const uint8_t*, int32_t*);
  void (*test_i64)(const int64_t*, int, const uint8_t*, int64_t*);
  size_t (*find_substr)(const char*, size_t, const char*, size_t);
};

KernelTable TableFor(SimdLevel level) {
#if AQE_SIMD_X86
  switch (level) {
    case SimdLevel::kAVX2:
      return {ProbeSelI32Avx2, ProbeSelI64Avx2, TestI64Avx2, FindSubstrAvx2};
    case SimdLevel::kSSE2:
      // No SSE2 gather exists; the per-lane test keeps the scalar kernel.
      return {ProbeSelI32Sse2, ProbeSelI64Sse2, TestI64Scalar,
              FindSubstrSse2};
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return {ProbeSelI32Scalar, ProbeSelI64Scalar, TestI64Scalar,
          FindSubstrScalar};
}

const KernelTable& ActiveKernels() {
  static const KernelTable table = TableFor(ActiveSimdLevel());
  return table;
}

}  // namespace

SimdLevel DetectedSimdLevel() {
#if AQE_SIMD_X86
  static const SimdLevel detected = [] {
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAVX2;
    if (__builtin_cpu_supports("sse2")) return SimdLevel::kSSE2;
    return SimdLevel::kScalar;
  }();
  return detected;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel active = ParseLevelEnv();
  return active;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSSE2:
      return "sse2";
    case SimdLevel::kAVX2:
      return "avx2";
  }
  return "?";
}

int BitmapProbeSelI32(const int32_t* codes, int count, const uint8_t* bitmap,
                      int32_t* sel) {
  return ActiveKernels().probe_sel_i32(codes, count, bitmap, sel);
}

int BitmapProbeSelI64(const int64_t* codes, int count, const uint8_t* bitmap,
                      int32_t* sel) {
  return ActiveKernels().probe_sel_i64(codes, count, bitmap, sel);
}

void BitmapTestI64(const int64_t* codes, int count, const uint8_t* bitmap,
                   int64_t* out) {
  ActiveKernels().test_i64(codes, count, bitmap, out);
}

size_t FindSubstr(const char* hay, size_t hay_len, const char* needle,
                  size_t needle_len) {
  return ActiveKernels().find_substr(hay, hay_len, needle, needle_len);
}

int BitmapProbeSelI32At(SimdLevel level, const int32_t* codes, int count,
                        const uint8_t* bitmap, int32_t* sel) {
  return TableFor(ClampToDetected(level))
      .probe_sel_i32(codes, count, bitmap, sel);
}

int BitmapProbeSelI64At(SimdLevel level, const int64_t* codes, int count,
                        const uint8_t* bitmap, int32_t* sel) {
  return TableFor(ClampToDetected(level))
      .probe_sel_i64(codes, count, bitmap, sel);
}

void BitmapTestI64At(SimdLevel level, const int64_t* codes, int count,
                     const uint8_t* bitmap, int64_t* out) {
  TableFor(ClampToDetected(level)).test_i64(codes, count, bitmap, out);
}

size_t FindSubstrAt(SimdLevel level, const char* hay, size_t hay_len,
                    const char* needle, size_t needle_len) {
  return TableFor(ClampToDetected(level))
      .find_substr(hay, hay_len, needle, needle_len);
}

}  // namespace aqe
