#ifndef AQE_SIMD_SIMD_H_
#define AQE_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace aqe {

/// Instruction-set tiers of the hand-written kernels (see simd/DESIGN.md).
/// Every kernel exists at every level; kScalar is the semantics-defining
/// differential reference the higher tiers are tested against.
enum class SimdLevel { kScalar = 0, kSSE2 = 1, kAVX2 = 2 };

const char* SimdLevelName(SimdLevel level);

/// The level selected once at startup: the best the CPU supports, clamped by
/// the AQE_SIMD environment override ("scalar", "sse2", "avx2"). The
/// override can only lower the level — requesting avx2 on a non-avx2 CPU
/// yields the best available tier.
SimdLevel ActiveSimdLevel();

/// What the hardware supports (ignores AQE_SIMD); non-x86 builds report
/// kScalar.
SimdLevel DetectedSimdLevel();

/// Trailing readable bytes every bitmap passed to the probe kernels must
/// have beyond its last code: the AVX2 tier gathers 4 bytes at
/// bitmap + code and may read up to 3 bytes past bitmap[max_code].
/// QueryProgram::AddBitmap pads its bitmaps accordingly.
constexpr size_t kSimdBitmapPadding = 4;

// --- bitmap probe kernels ---------------------------------------------------
// bitmap is byte-per-code (bitmap[code] != 0 means match); codes must be
// valid indices (the dictionary-encoding invariant).

/// Writes the lane indices whose code matches into `sel` (ascending) and
/// returns how many matched. The workhorse of dictionary-aware selection
/// pushdown: raw i32 code column -> selection vector, no materialization.
int BitmapProbeSelI32(const int32_t* codes, int count, const uint8_t* bitmap,
                      int32_t* sel);
int BitmapProbeSelI64(const int64_t* codes, int count, const uint8_t* bitmap,
                      int32_t* sel);

/// Per-lane 0/1 result into int64 lanes (the vectorized engine's
/// kBitmapTest when the probe is not in selection-pushdown position).
void BitmapTestI64(const int64_t* codes, int count, const uint8_t* bitmap,
                   int64_t* out);

// --- substring search -------------------------------------------------------

/// First occurrence of needle in hay, or SIZE_MAX. Backs
/// Dictionary::MatchContains and the literal segments of LIKE '%x%y%'
/// bitmap construction. needle_len must be >= 1.
size_t FindSubstr(const char* hay, size_t hay_len, const char* needle,
                  size_t needle_len);

// --- forced-level variants --------------------------------------------------
// Same kernels with an explicit level, for the differential tests and the
// AQE_SIMD bench toggle. Levels above DetectedSimdLevel() fall back to the
// best the CPU supports.

int BitmapProbeSelI32At(SimdLevel level, const int32_t* codes, int count,
                        const uint8_t* bitmap, int32_t* sel);
int BitmapProbeSelI64At(SimdLevel level, const int64_t* codes, int count,
                        const uint8_t* bitmap, int32_t* sel);
void BitmapTestI64At(SimdLevel level, const int64_t* codes, int count,
                     const uint8_t* bitmap, int64_t* out);
size_t FindSubstrAt(SimdLevel level, const char* hay, size_t hay_len,
                    const char* needle, size_t needle_len);

}  // namespace aqe

#endif  // AQE_SIMD_SIMD_H_
