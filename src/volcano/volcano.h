#ifndef AQE_VOLCANO_VOLCANO_H_
#define AQE_VOLCANO_VOLCANO_H_

#include "plan/plan.h"

namespace aqe {

/// Volcano-style tuple-at-a-time interpretation of a pipeline — the
/// PostgreSQL stand-in of Tables I/II (see DESIGN.md): no compilation of
/// any kind, one virtual-dispatch-style expression walk per tuple, rows
/// pulled through the operator chain one at a time. Single-threaded.
void RunPipelineVolcano(const QueryProgram& program, const PipelineSpec& spec,
                        QueryContext* ctx);

}  // namespace aqe

#endif  // AQE_VOLCANO_VOLCANO_H_
