#include "volcano/volcano.h"

#include <cstring>

#include "common/status.h"

namespace aqe {
namespace {

/// Widened scan of one value.
int64_t LoadWidened(const Column& column, uint64_t row) {
  switch (column.type()) {
    case DataType::kI32: return column.GetI32(row);
    case DataType::kI64: return column.GetI64(row);
    case DataType::kF64: {
      double d = column.GetF64(row);
      int64_t bits;
      std::memcpy(&bits, &d, 8);
      return bits;
    }
  }
  AQE_UNREACHABLE("bad DataType");
}

}  // namespace

void RunPipelineVolcano(const QueryProgram& program, const PipelineSpec& spec,
                        QueryContext* ctx) {
  const Table* table = program.ResolveTable(spec.source_table, *ctx);
  const uint64_t rows = table->num_rows();
  std::vector<const Column*> columns;
  for (int c : spec.scan_columns) columns.push_back(&table->column(c));

  AggHashTable* agg_local = nullptr;
  if (const auto* agg = std::get_if<SinkAgg>(&spec.sink)) {
    agg_local = ctx->agg_sets[static_cast<size_t>(agg->agg)]->Local();
  }

  std::vector<int64_t> slots;
  for (uint64_t row = 0; row < rows; ++row) {
    slots.clear();
    for (const Column* column : columns) {
      slots.push_back(LoadWidened(*column, row));
    }
    bool keep = true;
    for (const PipelineOp& op : spec.ops) {
      if (const auto* filter = std::get_if<OpFilter>(&op)) {
        if (EvalExpr(*filter->predicate, slots.data()) == 0) {
          keep = false;
          break;
        }
      } else if (const auto* compute = std::get_if<OpCompute>(&op)) {
        slots.push_back(EvalExpr(*compute->expr, slots.data()));
      } else {
        const auto& probe = std::get<OpProbe>(op);
        JoinHashTable* ht =
            ctx->join_tables[static_cast<size_t>(probe.ht)].get();
        AQE_CHECK_MSG(ht != nullptr, "join table not built");
        int64_t key = EvalExpr(*probe.key, slots.data());
        void* node = ht->Lookup(key);
        if (probe.kind == JoinKind::kAnti) {
          if (node != nullptr) {
            keep = false;
            break;
          }
        } else if (node == nullptr) {
          keep = false;
          break;
        } else if (probe.kind == JoinKind::kInner) {
          const auto* payload = reinterpret_cast<const int64_t*>(
              static_cast<const uint8_t*>(node) + 16);
          for (int k = 0; k < probe.payload_slots; ++k) {
            slots.push_back(payload[k]);
          }
        }
      }
    }
    if (!keep) continue;

    if (const auto* build = std::get_if<SinkBuild>(&spec.sink)) {
      JoinHashTable* ht =
          ctx->join_tables[static_cast<size_t>(build->ht)].get();
      AQE_CHECK_MSG(ht != nullptr, "join table not built");
      int64_t key = EvalExpr(*build->key, slots.data());
      auto* payload = static_cast<int64_t*>(ht->Insert(key));
      for (size_t k = 0; k < build->payload.size(); ++k) {
        payload[k] = EvalExpr(*build->payload[k], slots.data());
      }
    } else if (const auto* agg = std::get_if<SinkAgg>(&spec.sink)) {
      int64_t key = EvalExpr(*agg->key, slots.data());
      auto* payload = static_cast<int64_t*>(agg_local->FindOrInsert(key));
      for (size_t k = 0; k < agg->items.size(); ++k) {
        const AggItem& item = agg->items[k];
        switch (item.kind) {
          case AggKind::kCount: payload[k] += 1; break;
          case AggKind::kSum:
            payload[k] += EvalExpr(*item.value, slots.data());
            break;
          case AggKind::kMin: {
            int64_t v = EvalExpr(*item.value, slots.data());
            payload[k] = std::min(payload[k], v);
            break;
          }
          case AggKind::kMax: {
            int64_t v = EvalExpr(*item.value, slots.data());
            payload[k] = std::max(payload[k], v);
            break;
          }
        }
      }
    } else {
      const auto& out = std::get<SinkOutput>(spec.sink);
      int64_t* row_out =
          ctx->outputs[static_cast<size_t>(out.output)]->AllocRow();
      for (size_t k = 0; k < out.values.size(); ++k) {
        row_out[k] = EvalExpr(*out.values[k], slots.data());
      }
    }
  }
}

}  // namespace aqe
