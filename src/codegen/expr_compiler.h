#ifndef AQE_CODEGEN_EXPR_COMPILER_H_
#define AQE_CODEGEN_EXPR_COMPILER_H_

#include <map>
#include <vector>

#include <llvm/IR/IRBuilder.h>

#include "plan/expr.h"

namespace aqe {

/// Compiles Expr trees to LLVM IR. Bound to one worker function: `builder`
/// tracks the current insertion point (checked arithmetic splits the block
/// and branches to `overflow_block`, which must call the runtime's overflow
/// handler and end in unreachable — the exact §IV-F pattern the bytecode
/// translator fuses back into one macro op).
///
/// `bitmap_values` maps a kBitmapTest bitmap pointer to the i64 value
/// holding its runtime base address (loaded from the worker's binding
/// array), and `like_values` does the same for kLike predicate objects.
/// When absent, the pointer is embedded as a constant — acceptable for
/// standalone kernels, but position-dependent, so the pipeline path always
/// supplies the maps (the artifact cache relies on them).
class ExprCompiler {
 public:
  ExprCompiler(llvm::IRBuilder<>* builder, llvm::BasicBlock* overflow_block,
               const std::map<const uint8_t*, llvm::Value*>* bitmap_values =
                   nullptr,
               const std::map<const LikePredicate*, llvm::Value*>*
                   like_values = nullptr)
      : builder_(builder),
        overflow_block_(overflow_block),
        bitmap_values_(bitmap_values),
        like_values_(like_values) {}

  /// Compiles `expr` against the current slot values. Bool results are i1,
  /// I64 results i64, F64 results double.
  llvm::Value* Compile(const Expr& expr,
                       const std::vector<llvm::Value*>& slots);

  /// Compiles an overflow-checked i64 op (add/sub/mul by intrinsic id).
  llvm::Value* CheckedOp(llvm::Intrinsic::ID intrinsic, llvm::Value* lhs,
                         llvm::Value* rhs);

 private:
  llvm::IRBuilder<>* builder_;
  llvm::BasicBlock* overflow_block_;
  const std::map<const uint8_t*, llvm::Value*>* bitmap_values_;
  const std::map<const LikePredicate*, llvm::Value*>* like_values_;
};

}  // namespace aqe

#endif  // AQE_CODEGEN_EXPR_COMPILER_H_
