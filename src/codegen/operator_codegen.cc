#include "codegen/operator_codegen.h"

#include <map>

#include <llvm/IR/IRBuilder.h>
#include <llvm/IR/Intrinsics.h>

#include "codegen/expr_compiler.h"
#include "common/status.h"

namespace aqe {
namespace {

template <typename Pred>
bool AnyExprNode(const Expr& expr, const Pred& pred) {
  if (pred(expr)) return true;
  for (const auto& child : expr.children) {
    if (AnyExprNode(*child, pred)) return true;
  }
  return false;
}

/// True when any expression node of the pipeline satisfies `pred` — the
/// reachability scan behind the entry block's binding hoists.
template <typename Pred>
bool AnyPipelineExpr(const PipelineSpec& spec, const Pred& pred) {
  for (const PipelineOp& op : spec.ops) {
    if (const auto* filter = std::get_if<OpFilter>(&op)) {
      if (AnyExprNode(*filter->predicate, pred)) return true;
    } else if (const auto* compute = std::get_if<OpCompute>(&op)) {
      if (AnyExprNode(*compute->expr, pred)) return true;
    } else if (AnyExprNode(*std::get<OpProbe>(op).key, pred)) {
      return true;
    }
  }
  if (const auto* build = std::get_if<SinkBuild>(&spec.sink)) {
    if (AnyExprNode(*build->key, pred)) return true;
    for (const auto& p : build->payload) {
      if (AnyExprNode(*p, pred)) return true;
    }
  } else if (const auto* agg = std::get_if<SinkAgg>(&spec.sink)) {
    if (AnyExprNode(*agg->key, pred)) return true;
    for (const AggItem& item : agg->items) {
      if (item.value != nullptr && AnyExprNode(*item.value, pred)) {
        return true;
      }
    }
  } else {
    for (const auto& v : std::get<SinkOutput>(spec.sink).values) {
      if (AnyExprNode(*v, pred)) return true;
    }
  }
  return false;
}

bool PipelineUsesBitmap(const PipelineSpec& spec, const uint8_t* bitmap) {
  return AnyPipelineExpr(spec, [bitmap](const Expr& e) {
    return e.kind == ExprKind::kBitmapTest && e.bitmap == bitmap;
  });
}

bool PipelineUsesLikePred(const PipelineSpec& spec,
                          const LikePredicate* pred) {
  return AnyPipelineExpr(spec, [pred](const Expr& e) {
    return e.kind == ExprKind::kLike && e.like_pred == pred;
  });
}

/// Per-function emission state.
struct WorkerEmitter {
  WorkerEmitter(const PipelineSpec& spec, const PipelineBindings& bindings,
                IrModule* mod, const std::string& fn_name)
      : spec(spec), bindings(bindings), mod(mod), b(mod->context()) {
    auto* i64 = llvm::Type::getInt64Ty(mod->context());
    auto* fty = llvm::FunctionType::get(
        llvm::Type::getVoidTy(mod->context()), {i64, i64, i64, i64}, false);
    fn = llvm::Function::Create(fty, llvm::Function::ExternalLinkage, fn_name,
                                &mod->module());
    fn->getArg(0)->setName("state");
    fn->getArg(1)->setName("begin");
    fn->getArg(2)->setName("end");
    fn->getArg(3)->setName("extra");
  }

  llvm::FunctionCallee RuntimeFn(const char* name, int args) {
    auto* i64 = b.getInt64Ty();
    std::vector<llvm::Type*> params(static_cast<size_t>(args), i64);
    return mod->module().getOrInsertFunction(
        name, llvm::FunctionType::get(i64, params, false));
  }
  llvm::FunctionCallee RuntimeFnVoid(const char* name, int args) {
    auto* i64 = b.getInt64Ty();
    std::vector<llvm::Type*> params(static_cast<size_t>(args), i64);
    return mod->module().getOrInsertFunction(
        name, llvm::FunctionType::get(b.getVoidTy(), params, false));
  }

  /// Loads binding slot `index` of the packed binding array (`state`, arg 0)
  /// as i64. Emitted in the entry block so every binding is read once per
  /// worker invocation and stays loop-invariant.
  llvm::Value* BindingValue(size_t index) {
    return LoadSlotAt(fn->getArg(0), static_cast<int>(8 * index));
  }

  /// Loads an 8-byte value at byte offset `offset` from an address held in
  /// an i64 value, as i64* arithmetic so the VM fuses it (§IV-F). `offset`
  /// must be a multiple of 8.
  llvm::Value* LoadSlotAt(llvm::Value* addr_i64, int offset) {
    AQE_CHECK(offset % 8 == 0);
    llvm::Value* ptr =
        b.CreateIntToPtr(addr_i64, b.getInt64Ty()->getPointerTo());
    llvm::Value* slot =
        b.CreateGEP(b.getInt64Ty(), ptr, b.getInt64(offset / 8));
    return b.CreateLoad(b.getInt64Ty(), slot);
  }
  void StoreSlotAt(llvm::Value* addr_i64, int offset, llvm::Value* value) {
    AQE_CHECK(offset % 8 == 0);
    llvm::Value* ptr =
        b.CreateIntToPtr(addr_i64, b.getInt64Ty()->getPointerTo());
    llvm::Value* slot =
        b.CreateGEP(b.getInt64Ty(), ptr, b.getInt64(offset / 8));
    b.CreateStore(ToRawI64(value), slot);
  }

  /// Normalizes expression results to raw i64 for storage in payloads,
  /// aggregates and output rows: doubles are bit-cast, booleans widen to
  /// 0/1.
  llvm::Value* ToRawI64(llvm::Value* v) {
    if (v->getType()->isDoubleTy()) {
      return b.CreateBitCast(v, b.getInt64Ty());
    }
    if (v->getType()->isIntegerTy(1)) {
      return b.CreateZExt(v, b.getInt64Ty());
    }
    return v;
  }

  void Emit();

  const PipelineSpec& spec;
  const PipelineBindings& bindings;
  IrModule* mod;
  llvm::IRBuilder<> b;
  llvm::Function* fn = nullptr;
  llvm::BasicBlock* overflow_block = nullptr;
  llvm::BasicBlock* latch = nullptr;
};

void WorkerEmitter::Emit() {
  auto& ctx = mod->context();
  auto* entry = llvm::BasicBlock::Create(ctx, "entry", fn);
  auto* head = llvm::BasicBlock::Create(ctx, "loop.head", fn);
  auto* body = llvm::BasicBlock::Create(ctx, "loop.body", fn);
  latch = llvm::BasicBlock::Create(ctx, "loop.latch", fn);
  auto* exit = llvm::BasicBlock::Create(ctx, "exit", fn);
  overflow_block = llvm::BasicBlock::Create(ctx, "overflow", fn);

  // Overflow path: report and trap (noreturn).
  b.SetInsertPoint(overflow_block);
  b.CreateCall(RuntimeFnVoid("aqe_raise_overflow", 0));
  b.CreateUnreachable();

  // Entry: load every runtime handle this pipeline touches from the packed
  // binding array (`state`) and hoist the loop-invariant values. Nothing
  // run-specific is embedded in the generated code.
  b.SetInsertPoint(entry);
  std::vector<llvm::Value*> column_bases;
  for (size_t c = 0; c < spec.scan_columns.size(); ++c) {
    column_bases.push_back(BindingValue(bindings.ColumnSlot(c)));
  }
  std::vector<llvm::Value*> join_table_values(bindings.join_tables.size(),
                                              nullptr);
  for (const PipelineOp& op : spec.ops) {
    if (const auto* probe = std::get_if<OpProbe>(&op)) {
      auto ht = static_cast<size_t>(probe->ht);
      if (join_table_values[ht] == nullptr) {
        join_table_values[ht] = BindingValue(bindings.JoinTableSlot(ht));
      }
    }
  }
  std::map<const uint8_t*, llvm::Value*> bitmap_values;
  for (size_t id = 0; id < bindings.bitmaps.size(); ++id) {
    if (PipelineUsesBitmap(spec, bindings.bitmaps[id])) {
      bitmap_values[bindings.bitmaps[id]] =
          BindingValue(bindings.BitmapSlot(id));
    }
  }
  std::map<const LikePredicate*, llvm::Value*> like_values;
  for (size_t id = 0; id < bindings.like_preds.size(); ++id) {
    if (PipelineUsesLikePred(spec, bindings.like_preds[id])) {
      like_values[bindings.like_preds[id]] =
          BindingValue(bindings.LikePredSlot(id));
    }
  }
  llvm::Value* agg_local = nullptr;
  llvm::Value* build_table = nullptr;
  llvm::Value* output_buffer = nullptr;
  if (const auto* agg_sink = std::get_if<SinkAgg>(&spec.sink)) {
    llvm::Value* set =
        BindingValue(bindings.AggSetSlot(static_cast<size_t>(agg_sink->agg)));
    agg_local = b.CreateCall(RuntimeFn("aqe_agg_local", 1), {set});
  } else if (const auto* build_sink = std::get_if<SinkBuild>(&spec.sink)) {
    build_table = BindingValue(
        bindings.JoinTableSlot(static_cast<size_t>(build_sink->ht)));
  } else if (const auto* out_sink = std::get_if<SinkOutput>(&spec.sink)) {
    output_buffer = BindingValue(
        bindings.OutputSlot(static_cast<size_t>(out_sink->output)));
  }
  b.CreateBr(head);

  // Loop head: i in [begin, end). Generated as `condbr cond, body, exit`
  // (continue-first), the layout the CFG analysis expects.
  b.SetInsertPoint(head);
  auto* i = b.CreatePHI(b.getInt64Ty(), 2, "i");
  auto* in_range = b.CreateICmpULT(i, fn->getArg(2));
  b.CreateCondBr(in_range, body, exit);

  b.SetInsertPoint(body);
  ExprCompiler exprs(&b, overflow_block, &bitmap_values, &like_values);

  // Scan: materialize the requested columns into slots, widening i32 to
  // i64. These are the fusable gep+load pairs of §IV-F.
  std::vector<llvm::Value*> slots;
  for (size_t c = 0; c < spec.scan_columns.size(); ++c) {
    llvm::Value* base_i64 = column_bases[c];
    switch (bindings.column_types[c]) {
      case DataType::kI32: {
        llvm::Value* base =
            b.CreateIntToPtr(base_i64, b.getInt32Ty()->getPointerTo());
        llvm::Value* addr = b.CreateGEP(b.getInt32Ty(), base, i);
        slots.push_back(
            b.CreateSExt(b.CreateLoad(b.getInt32Ty(), addr), b.getInt64Ty()));
        break;
      }
      case DataType::kI64: {
        llvm::Value* base =
            b.CreateIntToPtr(base_i64, b.getInt64Ty()->getPointerTo());
        llvm::Value* addr = b.CreateGEP(b.getInt64Ty(), base, i);
        slots.push_back(b.CreateLoad(b.getInt64Ty(), addr));
        break;
      }
      case DataType::kF64: {
        llvm::Value* base =
            b.CreateIntToPtr(base_i64, b.getDoubleTy()->getPointerTo());
        llvm::Value* addr = b.CreateGEP(b.getDoubleTy(), base, i);
        slots.push_back(b.CreateLoad(b.getDoubleTy(), addr));
        break;
      }
    }
  }

  // Operator chain.
  for (const PipelineOp& op : spec.ops) {
    if (const auto* filter = std::get_if<OpFilter>(&op)) {
      llvm::Value* keep = exprs.Compile(*filter->predicate, slots);
      auto* cont = llvm::BasicBlock::Create(ctx, "filter.pass", fn);
      b.CreateCondBr(keep, cont, latch);
      b.SetInsertPoint(cont);
    } else if (const auto* compute = std::get_if<OpCompute>(&op)) {
      slots.push_back(exprs.Compile(*compute->expr, slots));
    } else {
      const auto& probe = std::get<OpProbe>(op);
      llvm::Value* ht = join_table_values[static_cast<size_t>(probe.ht)];
      llvm::Value* key = exprs.Compile(*probe.key, slots);
      llvm::Value* node =
          b.CreateCall(RuntimeFn("aqe_jht_lookup", 2), {ht, key});
      llvm::Value* found = b.CreateICmpNE(node, b.getInt64(0));
      switch (probe.kind) {
        case JoinKind::kInner: {
          auto* cont = llvm::BasicBlock::Create(ctx, "probe.hit", fn);
          b.CreateCondBr(found, cont, latch);
          b.SetInsertPoint(cont);
          for (int k = 0; k < probe.payload_slots; ++k) {
            slots.push_back(LoadSlotAt(node, 16 + 8 * k));
          }
          break;
        }
        case JoinKind::kSemi: {
          auto* cont = llvm::BasicBlock::Create(ctx, "semi.hit", fn);
          b.CreateCondBr(found, cont, latch);
          b.SetInsertPoint(cont);
          break;
        }
        case JoinKind::kAnti: {
          auto* cont = llvm::BasicBlock::Create(ctx, "anti.miss", fn);
          b.CreateCondBr(found, latch, cont);
          b.SetInsertPoint(cont);
          break;
        }
      }
    }
  }

  // Sink.
  if (const auto* build = std::get_if<SinkBuild>(&spec.sink)) {
    llvm::Value* key = exprs.Compile(*build->key, slots);
    llvm::Value* payload =
        b.CreateCall(RuntimeFn("aqe_jht_insert", 2), {build_table, key});
    for (size_t k = 0; k < build->payload.size(); ++k) {
      StoreSlotAt(payload, static_cast<int>(8 * k),
                  exprs.Compile(*build->payload[k], slots));
    }
  } else if (const auto* agg = std::get_if<SinkAgg>(&spec.sink)) {
    llvm::Value* key = exprs.Compile(*agg->key, slots);
    llvm::Value* payload =
        b.CreateCall(RuntimeFn("aqe_agg_find_or_insert", 2),
                     {agg_local, key});
    for (size_t k = 0; k < agg->items.size(); ++k) {
      const AggItem& item = agg->items[k];
      int offset = static_cast<int>(8 * k);
      llvm::Value* current = LoadSlotAt(payload, offset);
      llvm::Value* updated = nullptr;
      switch (item.kind) {
        case AggKind::kCount:
          updated = item.checked
                        ? exprs.CheckedOp(llvm::Intrinsic::sadd_with_overflow,
                                          current, b.getInt64(1))
                        : b.CreateAdd(current, b.getInt64(1));
          break;
        case AggKind::kSum: {
          llvm::Value* value = ToRawI64(exprs.Compile(*item.value, slots));
          updated = item.checked
                        ? exprs.CheckedOp(llvm::Intrinsic::sadd_with_overflow,
                                          current, value)
                        : b.CreateAdd(current, value);
          break;
        }
        case AggKind::kMin: {
          llvm::Value* value = exprs.Compile(*item.value, slots);
          updated = b.CreateSelect(b.CreateICmpSLT(value, current), value,
                                   current);
          break;
        }
        case AggKind::kMax: {
          llvm::Value* value = exprs.Compile(*item.value, slots);
          updated = b.CreateSelect(b.CreateICmpSGT(value, current), value,
                                   current);
          break;
        }
      }
      StoreSlotAt(payload, offset, updated);
    }
  } else {
    const auto& out = std::get<SinkOutput>(spec.sink);
    llvm::Value* row =
        b.CreateCall(RuntimeFn("aqe_out_alloc_row", 1), {output_buffer});
    for (size_t k = 0; k < out.values.size(); ++k) {
      StoreSlotAt(row, static_cast<int>(8 * k),
                  exprs.Compile(*out.values[k], slots));
    }
  }
  b.CreateBr(latch);

  // Latch and exit.
  b.SetInsertPoint(latch);
  auto* next = b.CreateAdd(i, b.getInt64(1));
  b.CreateBr(head);
  b.SetInsertPoint(exit);
  b.CreateRetVoid();

  i->addIncoming(fn->getArg(1), entry);
  i->addIncoming(next, latch);
}

}  // namespace

std::vector<uint64_t> PipelineBindings::Pack() const {
  std::vector<uint64_t> values;
  values.reserve(NumSlots());
  for (const void* p : column_data) {
    values.push_back(reinterpret_cast<uint64_t>(p));
  }
  for (void* p : join_tables) values.push_back(reinterpret_cast<uint64_t>(p));
  for (void* p : agg_sets) values.push_back(reinterpret_cast<uint64_t>(p));
  for (void* p : outputs) values.push_back(reinterpret_cast<uint64_t>(p));
  for (const uint8_t* p : bitmaps) {
    values.push_back(reinterpret_cast<uint64_t>(p));
  }
  for (const LikePredicate* p : like_preds) {
    values.push_back(reinterpret_cast<uint64_t>(p));
  }
  return values;
}

void EmitWorkerFunction(const PipelineSpec& spec,
                        const PipelineBindings& bindings, IrModule* mod,
                        const std::string& fn_name) {
  WorkerEmitter emitter(spec, bindings, mod, fn_name);
  emitter.Emit();
}

}  // namespace aqe
