#include "codegen/expr_compiler.h"

#include <llvm/IR/Intrinsics.h>
#include <llvm/IR/Module.h>

#include "common/status.h"

namespace aqe {

llvm::Value* ExprCompiler::CheckedOp(llvm::Intrinsic::ID intrinsic,
                                     llvm::Value* lhs, llvm::Value* rhs) {
  llvm::Function* fn = builder_->GetInsertBlock()->getParent();
  llvm::Value* pair = builder_->CreateBinaryIntrinsic(intrinsic, lhs, rhs);
  llvm::Value* value = builder_->CreateExtractValue(pair, 0);
  llvm::Value* flag = builder_->CreateExtractValue(pair, 1);
  llvm::BasicBlock* cont =
      llvm::BasicBlock::Create(builder_->getContext(), "ovf.cont", fn);
  builder_->CreateCondBr(flag, overflow_block_, cont);
  builder_->SetInsertPoint(cont);
  return value;
}

llvm::Value* ExprCompiler::Compile(const Expr& expr,
                                   const std::vector<llvm::Value*>& slots) {
  auto child = [&](size_t i) { return Compile(*expr.children[i], slots); };
  llvm::IRBuilder<>& b = *builder_;
  switch (expr.kind) {
    case ExprKind::kSlot: {
      AQE_CHECK(expr.slot >= 0 &&
                static_cast<size_t>(expr.slot) < slots.size());
      return slots[static_cast<size_t>(expr.slot)];
    }
    case ExprKind::kConstI64: return b.getInt64(static_cast<uint64_t>(expr.i64_value));
    case ExprKind::kConstF64:
      return llvm::ConstantFP::get(b.getDoubleTy(), expr.f64_value);
    case ExprKind::kAdd: return b.CreateAdd(child(0), child(1));
    case ExprKind::kSub: return b.CreateSub(child(0), child(1));
    case ExprKind::kMul: return b.CreateMul(child(0), child(1));
    case ExprKind::kDiv: return b.CreateSDiv(child(0), child(1));
    case ExprKind::kCheckedAdd: {
      llvm::Value* l = child(0);
      llvm::Value* r = child(1);
      return CheckedOp(llvm::Intrinsic::sadd_with_overflow, l, r);
    }
    case ExprKind::kCheckedSub: {
      llvm::Value* l = child(0);
      llvm::Value* r = child(1);
      return CheckedOp(llvm::Intrinsic::ssub_with_overflow, l, r);
    }
    case ExprKind::kCheckedMul: {
      llvm::Value* l = child(0);
      llvm::Value* r = child(1);
      return CheckedOp(llvm::Intrinsic::smul_with_overflow, l, r);
    }
    case ExprKind::kFAdd: return b.CreateFAdd(child(0), child(1));
    case ExprKind::kFSub: return b.CreateFSub(child(0), child(1));
    case ExprKind::kFMul: return b.CreateFMul(child(0), child(1));
    case ExprKind::kFDiv: return b.CreateFDiv(child(0), child(1));
    case ExprKind::kEq: return b.CreateICmpEQ(child(0), child(1));
    case ExprKind::kNe: return b.CreateICmpNE(child(0), child(1));
    case ExprKind::kLt: return b.CreateICmpSLT(child(0), child(1));
    case ExprKind::kLe: return b.CreateICmpSLE(child(0), child(1));
    case ExprKind::kGt: return b.CreateICmpSGT(child(0), child(1));
    case ExprKind::kGe: return b.CreateICmpSGE(child(0), child(1));
    case ExprKind::kAnd: return b.CreateAnd(child(0), child(1));
    case ExprKind::kOr: return b.CreateOr(child(0), child(1));
    case ExprKind::kNot: return b.CreateNot(child(0));
    case ExprKind::kBitmapTest: {
      llvm::Value* code = child(0);
      llvm::Value* base_i64 = nullptr;
      if (bitmap_values_ != nullptr) {
        auto it = bitmap_values_->find(expr.bitmap);
        AQE_CHECK_MSG(it != bitmap_values_->end(),
                      "bitmap missing from the worker's binding array");
        base_i64 = it->second;
      } else {
        base_i64 = b.getInt64(reinterpret_cast<uint64_t>(expr.bitmap));
      }
      llvm::Value* base = b.CreateIntToPtr(
          base_i64, llvm::Type::getInt8PtrTy(b.getContext()));
      llvm::Value* addr = b.CreateGEP(b.getInt8Ty(), base, code);
      llvm::Value* byte = b.CreateLoad(b.getInt8Ty(), addr);
      // Compare at i32 width: the VM's statically typed icmp opcodes cover
      // the widths the query compiler emits (i32/i64), not i8.
      return b.CreateICmpNE(b.CreateZExt(byte, b.getInt32Ty()),
                            b.getInt32(0));
    }
    case ExprKind::kLike: {
      // Per-row runtime call: the deliberate anti-fusion case. The callee
      // is a registered runtime function (uniform i64 ABI), so the VM
      // translator and JIT both resolve it; the predicate address comes
      // from the binding array to keep artifacts position-independent.
      llvm::Value* code = child(0);
      llvm::Value* pred_i64 = nullptr;
      if (like_values_ != nullptr) {
        auto it = like_values_->find(expr.like_pred);
        AQE_CHECK_MSG(it != like_values_->end(),
                      "LIKE predicate missing from the worker's binding array");
        pred_i64 = it->second;
      } else {
        pred_i64 = b.getInt64(reinterpret_cast<uint64_t>(expr.like_pred));
      }
      llvm::Module* mod = b.GetInsertBlock()->getParent()->getParent();
      auto* i64 = b.getInt64Ty();
      llvm::FunctionCallee callee = mod->getOrInsertFunction(
          "aqe_like_match", llvm::FunctionType::get(i64, {i64, i64}, false));
      llvm::Value* match = b.CreateCall(callee, {pred_i64, code});
      return b.CreateICmpNE(match, b.getInt64(0));
    }
    case ExprKind::kCastF64:
      return b.CreateSIToFP(child(0), b.getDoubleTy());
    case ExprKind::kBoolToI64:
      return b.CreateZExt(child(0), b.getInt64Ty());
  }
  AQE_UNREACHABLE("bad ExprKind");
}

}  // namespace aqe
