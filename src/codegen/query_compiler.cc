#include "codegen/query_compiler.h"

#include "common/status.h"
#include "common/timer.h"
#include "ir/ir_stats.h"

namespace aqe {

PipelineBindings BindPipeline(const QueryProgram& program,
                              const PipelineSpec& spec,
                              const QueryContext& ctx) {
  PipelineBindings bindings;
  const Table* table = program.ResolveTable(spec.source_table, ctx);
  for (int col : spec.scan_columns) {
    bindings.column_data.push_back(table->column(col).data());
    bindings.column_types.push_back(table->column(col).type());
  }
  for (const auto& jt : ctx.join_tables) {
    bindings.join_tables.push_back(jt.get());
  }
  for (const auto& agg : ctx.agg_sets) {
    bindings.agg_sets.push_back(agg.get());
  }
  for (const auto& out : ctx.outputs) {
    bindings.outputs.push_back(out.get());
  }
  for (const auto& bitmap : program.bitmaps()) {
    bindings.bitmaps.push_back(bitmap->data());
  }
  for (const auto& pred : program.like_predicates()) {
    bindings.like_preds.push_back(pred.get());
  }
  return bindings;
}

void ValidatePipelineBindings(const PipelineSpec& spec,
                              const PipelineBindings& bindings) {
  for (const PipelineOp& op : spec.ops) {
    if (const auto* probe = std::get_if<OpProbe>(&op)) {
      AQE_CHECK_MSG(
          bindings.join_tables[static_cast<size_t>(probe->ht)] != nullptr,
          "join table not bound");
    }
  }
  if (const auto* build = std::get_if<SinkBuild>(&spec.sink)) {
    AQE_CHECK_MSG(
        bindings.join_tables[static_cast<size_t>(build->ht)] != nullptr,
        "join table not bound");
  } else if (const auto* agg = std::get_if<SinkAgg>(&spec.sink)) {
    AQE_CHECK_MSG(bindings.agg_sets[static_cast<size_t>(agg->agg)] != nullptr,
                  "agg set not bound");
  } else {
    const auto& out = std::get<SinkOutput>(spec.sink);
    AQE_CHECK_MSG(bindings.outputs[static_cast<size_t>(out.output)] != nullptr,
                  "output buffer not bound");
  }
}

uint64_t PipelineCardinality(const QueryProgram& program,
                             const PipelineSpec& spec,
                             const QueryContext& ctx) {
  return program.ResolveTable(spec.source_table, ctx)->num_rows();
}

GeneratedPipeline GeneratePipeline(const PipelineSpec& spec,
                                   const PipelineBindings& bindings,
                                   const std::string& fn_name) {
  Timer timer;
  GeneratedPipeline result;
  result.mod = std::make_unique<IrModule>("pipeline_" + spec.name);
  EmitWorkerFunction(spec, bindings, result.mod.get(), fn_name);
  const llvm::Function* fn = result.mod->module().getFunction(fn_name);
  AQE_CHECK(fn != nullptr);
  const IrFunctionStats stats = ComputeFunctionStats(*fn);
  result.instructions = stats.instructions;
  result.loop_instructions = stats.loop_instructions;
  result.loop_calls = stats.loop_calls;
  result.codegen_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace aqe
