#ifndef AQE_CODEGEN_QUERY_COMPILER_H_
#define AQE_CODEGEN_QUERY_COMPILER_H_

#include <memory>
#include <string>

#include "codegen/operator_codegen.h"
#include "ir/ir_module.h"
#include "plan/plan.h"

namespace aqe {

/// A pipeline translated to LLVM IR, with the bookkeeping the adaptive cost
/// model needs (instruction count, Fig 6) and the timing Fig 1 / Table I
/// report as "code generation".
struct GeneratedPipeline {
  std::unique_ptr<IrModule> mod;
  uint64_t instructions = 0;
  /// Loop-body IR counts for the runtime-call-density cost-model input
  /// (see IrFunctionStats): per-tuple instructions and opaque runtime
  /// calls the generated code pays in every execution mode.
  uint64_t loop_instructions = 0;
  uint64_t loop_calls = 0;
  double codegen_millis = 0;
};

/// Resolves a pipeline's runtime addresses against a query context: scan
/// column base pointers, join tables, aggregation sets, output buffers.
/// Requires temp tables / join tables used by this pipeline to exist.
PipelineBindings BindPipeline(const QueryProgram& program,
                              const PipelineSpec& spec,
                              const QueryContext& ctx);

/// Checks that every runtime object `spec` dereferences is present in
/// `bindings` (codegen no longer sees the addresses, so this is the place
/// the "join table not created yet" class of plan bugs is caught).
void ValidatePipelineBindings(const PipelineSpec& spec,
                              const PipelineBindings& bindings);

/// Source-table cardinality of a pipeline (the pipeline's total work,
/// always known at pipeline start, §III-A).
uint64_t PipelineCardinality(const QueryProgram& program,
                             const PipelineSpec& spec,
                             const QueryContext& ctx);

/// Generates the worker-function module for one pipeline. Deterministic:
/// the adaptive controller re-invokes it for each compilation request
/// (code generation costs well under a millisecond, Fig 1).
GeneratedPipeline GeneratePipeline(const PipelineSpec& spec,
                                   const PipelineBindings& bindings,
                                   const std::string& fn_name = "worker");

}  // namespace aqe

#endif  // AQE_CODEGEN_QUERY_COMPILER_H_
