#ifndef AQE_CODEGEN_OPERATOR_CODEGEN_H_
#define AQE_CODEGEN_OPERATOR_CODEGEN_H_

#include <string>
#include <vector>

#include "ir/ir_module.h"
#include "plan/pipeline.h"
#include "storage/column.h"

namespace aqe {

/// Resolved runtime addresses for one pipeline: everything the generated
/// code needs is embedded as constants (data-centric code generation — the
/// generated worker is specific to this query execution's data structures).
struct PipelineBindings {
  const void* state = nullptr;  ///< unused; the ABI keeps a state parameter
  std::vector<const void*> column_data;  ///< per scan column, base pointer
  std::vector<DataType> column_types;    ///< per scan column
  std::vector<void*> join_tables;        ///< per program join-table id
  std::vector<void*> agg_sets;           ///< per program agg id
  std::vector<void*> outputs;            ///< per program output id
};

/// Emits `void <fn_name>(i64 state, i64 begin, i64 end, i64 extra)` into
/// `mod`: the §III-A worker function — a scan loop over [begin, end) rows,
/// the per-tuple operator chain, and the sink. All four parameters are i64
/// so the same function is callable as the WorkerFn ABI by machine code and
/// through the VM.
void EmitWorkerFunction(const PipelineSpec& spec,
                        const PipelineBindings& bindings, IrModule* mod,
                        const std::string& fn_name = "worker");

}  // namespace aqe

#endif  // AQE_CODEGEN_OPERATOR_CODEGEN_H_
