#ifndef AQE_CODEGEN_OPERATOR_CODEGEN_H_
#define AQE_CODEGEN_OPERATOR_CODEGEN_H_

#include <string>
#include <vector>

#include "ir/ir_module.h"
#include "plan/pipeline.h"
#include "storage/column.h"

namespace aqe {

/// Resolved runtime addresses for one pipeline. The generated worker does
/// NOT embed them: it loads them from the packed binding array (`Pack()`)
/// passed through the worker's `state` argument, so the same bytecode and
/// machine code can be re-executed against a different QueryContext — the
/// property the plan-keyed artifact cache relies on (src/cache/DESIGN.md).
/// Codegen only consumes the *shape* of the bindings (counts and column
/// types); the addresses matter at run time.
struct PipelineBindings {
  std::vector<const void*> column_data;  ///< per scan column, base pointer
  std::vector<DataType> column_types;    ///< per scan column
  std::vector<void*> join_tables;        ///< per program join-table id
  std::vector<void*> agg_sets;           ///< per program agg id
  std::vector<void*> outputs;            ///< per program output id
  std::vector<const uint8_t*> bitmaps;   ///< per program bitmap, decl order
  /// Per program LIKE predicate, decl order (src/strings/).
  std::vector<const LikePredicate*> like_preds;

  /// Slot indices (8-byte units) into the packed binding array. The layout
  /// is a pure function of the counts, so structurally equal plans agree on
  /// it even when the addresses differ.
  size_t ColumnSlot(size_t c) const { return c; }
  size_t JoinTableSlot(size_t id) const { return column_data.size() + id; }
  size_t AggSetSlot(size_t id) const {
    return column_data.size() + join_tables.size() + id;
  }
  size_t OutputSlot(size_t id) const {
    return column_data.size() + join_tables.size() + agg_sets.size() + id;
  }
  size_t BitmapSlot(size_t id) const {
    return column_data.size() + join_tables.size() + agg_sets.size() +
           outputs.size() + id;
  }
  size_t LikePredSlot(size_t id) const {
    return column_data.size() + join_tables.size() + agg_sets.size() +
           outputs.size() + bitmaps.size() + id;
  }
  size_t NumSlots() const {
    return column_data.size() + join_tables.size() + agg_sets.size() +
           outputs.size() + bitmaps.size() + like_preds.size();
  }

  /// The per-run binding array the worker receives as `state`. The caller
  /// keeps the vector alive for the duration of the pipeline.
  std::vector<uint64_t> Pack() const;
};

/// Emits `void <fn_name>(i64 state, i64 begin, i64 end, i64 extra)` into
/// `mod`: the §III-A worker function — a scan loop over [begin, end) rows,
/// the per-tuple operator chain, and the sink. All four parameters are i64
/// so the same function is callable as the WorkerFn ABI by machine code and
/// through the VM. `state` must point at `bindings.Pack()` when the worker
/// runs; all binding loads are hoisted into the entry block.
void EmitWorkerFunction(const PipelineSpec& spec,
                        const PipelineBindings& bindings, IrModule* mod,
                        const std::string& fn_name = "worker");

}  // namespace aqe

#endif  // AQE_CODEGEN_OPERATOR_CODEGEN_H_
