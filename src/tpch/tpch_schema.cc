#include "tpch/tpch_schema.h"

#include <algorithm>

namespace aqe::tpch {

int32_t DateToDays(int year, int month, int day) {
  // Howard Hinnant's days_from_civil algorithm.
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void DaysToDate(int32_t days, int* year, int* month, int* day) {
  // Howard Hinnant's civil_from_days algorithm.
  int32_t z = days + 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *year = y + (*month <= 2);
}

void CreateTpchSchema(Catalog* catalog) {
  Table* region = catalog->CreateTable("region");
  region->AddColumn("r_regionkey", DataType::kI32);
  region->AddColumn("r_name", DataType::kI32, /*dictionary=*/true);

  Table* nation = catalog->CreateTable("nation");
  nation->AddColumn("n_nationkey", DataType::kI32);
  nation->AddColumn("n_name", DataType::kI32, /*dictionary=*/true);
  nation->AddColumn("n_regionkey", DataType::kI32);

  Table* supplier = catalog->CreateTable("supplier");
  supplier->AddColumn("s_suppkey", DataType::kI64);
  supplier->AddColumn("s_nationkey", DataType::kI32);
  supplier->AddColumn("s_acctbal", DataType::kI64);  // decimal

  Table* customer = catalog->CreateTable("customer");
  customer->AddColumn("c_custkey", DataType::kI64);
  customer->AddColumn("c_name", DataType::kI32, /*dictionary=*/true);
  customer->AddColumn("c_nationkey", DataType::kI32);
  customer->AddColumn("c_mktsegment", DataType::kI32, /*dictionary=*/true);

  Table* part = catalog->CreateTable("part");
  part->AddColumn("p_partkey", DataType::kI64);
  part->AddColumn("p_brand", DataType::kI32, /*dictionary=*/true);
  part->AddColumn("p_type", DataType::kI32, /*dictionary=*/true);
  part->AddColumn("p_size", DataType::kI32);
  part->AddColumn("p_container", DataType::kI32, /*dictionary=*/true);
  part->AddColumn("p_retailprice", DataType::kI64);  // decimal

  Table* partsupp = catalog->CreateTable("partsupp");
  partsupp->AddColumn("ps_partkey", DataType::kI64);
  partsupp->AddColumn("ps_suppkey", DataType::kI64);
  partsupp->AddColumn("ps_availqty", DataType::kI32);
  partsupp->AddColumn("ps_supplycost", DataType::kI64);  // decimal

  Table* orders = catalog->CreateTable("orders");
  orders->AddColumn("o_orderkey", DataType::kI64);
  orders->AddColumn("o_custkey", DataType::kI64);
  orders->AddColumn("o_orderstatus", DataType::kI32, /*dictionary=*/true);
  orders->AddColumn("o_totalprice", DataType::kI64);  // decimal
  orders->AddColumn("o_orderdate", DataType::kI32);
  orders->AddColumn("o_orderpriority", DataType::kI32, /*dictionary=*/true);
  orders->AddColumn("o_shippriority", DataType::kI32);
  // Free-form comment text (Q13's '%special%requests%' predicate). Nearly
  // every value is distinct, so the dictionary is high-cardinality — the
  // workload that forces LIKE onto the per-row runtime-call path.
  orders->AddColumn("o_comment", DataType::kI32, /*dictionary=*/true);

  Table* lineitem = catalog->CreateTable("lineitem");
  lineitem->AddColumn("l_orderkey", DataType::kI64);
  lineitem->AddColumn("l_partkey", DataType::kI64);
  lineitem->AddColumn("l_suppkey", DataType::kI64);
  lineitem->AddColumn("l_linenumber", DataType::kI32);
  lineitem->AddColumn("l_quantity", DataType::kI64);       // decimal
  lineitem->AddColumn("l_extendedprice", DataType::kI64);  // decimal
  lineitem->AddColumn("l_discount", DataType::kI64);       // decimal
  lineitem->AddColumn("l_tax", DataType::kI64);            // decimal
  lineitem->AddColumn("l_returnflag", DataType::kI32, /*dictionary=*/true);
  lineitem->AddColumn("l_linestatus", DataType::kI32, /*dictionary=*/true);
  lineitem->AddColumn("l_shipdate", DataType::kI32);
  lineitem->AddColumn("l_commitdate", DataType::kI32);
  lineitem->AddColumn("l_receiptdate", DataType::kI32);
  lineitem->AddColumn("l_shipinstruct", DataType::kI32, /*dictionary=*/true);
  lineitem->AddColumn("l_shipmode", DataType::kI32, /*dictionary=*/true);
}

Cardinalities CardinalitiesForScale(double sf) {
  auto scaled = [sf](double base) {
    return static_cast<uint64_t>(std::max(1.0, base * sf));
  };
  Cardinalities c;
  c.region = 5;
  c.nation = 25;
  c.supplier = scaled(10000);
  c.customer = scaled(150000);
  c.part = scaled(200000);
  c.partsupp = c.part * 4;
  c.orders = scaled(1500000);
  return c;
}

}  // namespace aqe::tpch
