#ifndef AQE_TPCH_TPCH_GEN_H_
#define AQE_TPCH_TPCH_GEN_H_

#include <cstdint>

#include "storage/table.h"

namespace aqe::tpch {

/// Populates an empty TPC-H schema (see CreateTpchSchema) with deterministic
/// synthetic data at scale factor `sf`. Distributions follow the TPC-H spec
/// closely enough that the selectivities of the implemented queries match
/// (see DESIGN.md). The same (sf, seed) always produces identical data.
void GenerateTpchData(Catalog* catalog, double sf, uint64_t seed = 19940801);

/// Convenience: CreateTpchSchema + GenerateTpchData.
void BuildTpchDatabase(Catalog* catalog, double sf, uint64_t seed = 19940801);

}  // namespace aqe::tpch

#endif  // AQE_TPCH_TPCH_GEN_H_
