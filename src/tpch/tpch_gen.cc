#include "tpch/tpch_gen.h"

#include <array>
#include <cstdio>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "index/table_index.h"
#include "tpch/tpch_schema.h"

namespace aqe::tpch {
namespace {

constexpr const char* kRegionNames[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                         "MIDDLE EAST"};

// Nation -> region mapping per the TPC-H spec.
struct NationSpec {
  const char* name;
  int region;
};
constexpr NationSpec kNations[25] = {
    {"ALGERIA", 0},        {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},         {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},         {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},      {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},          {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},        {"MOZAMBIQUE", 0},{"PERU", 1},
    {"CHINA", 2},          {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},        {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

constexpr const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                      "MACHINERY", "HOUSEHOLD"};
constexpr const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                        "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kShipModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                       "TRUCK",   "MAIL", "FOB"};
constexpr const char* kInstructions[4] = {"DELIVER IN PERSON", "COLLECT COD",
                                          "NONE", "TAKE BACK RETURN"};
constexpr const char* kTypeSyllable1[6] = {"STANDARD", "SMALL",  "MEDIUM",
                                           "LARGE",    "ECONOMY", "PROMO"};
constexpr const char* kTypeSyllable2[5] = {"ANODIZED", "BURNISHED", "PLATED",
                                           "POLISHED", "BRUSHED"};
constexpr const char* kTypeSyllable3[5] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                           "COPPER"};
constexpr const char* kContainerSyllable1[5] = {"SM", "LG", "MED", "JUMBO",
                                                "WRAP"};
constexpr const char* kContainerSyllable2[8] = {"CASE", "BOX", "BAG", "JAR",
                                                "PKG", "PACK", "CAN", "DRUM"};
constexpr const char* kCommentWords[16] = {
    "carefully", "quickly",  "furiously", "ironic",      "final",
    "pending",   "bold",     "regular",   "express",     "deposits",
    "accounts",  "packages", "theodolites", "foxes",     "ideas",
    "platelets"};

void GenRegionNation(Catalog* catalog) {
  Table* region = catalog->GetTable("region");
  for (int i = 0; i < 5; ++i) {
    region->column(0).AppendI32(i);
    region->column(1).AppendI32(region->dictionary(1).GetOrAdd(kRegionNames[i]));
  }
  Table* nation = catalog->GetTable("nation");
  for (int i = 0; i < 25; ++i) {
    nation->column(0).AppendI32(i);
    nation->column(1).AppendI32(nation->dictionary(1).GetOrAdd(kNations[i].name));
    nation->column(2).AppendI32(kNations[i].region);
  }
}

void GenSupplier(Catalog* catalog, uint64_t count, Random* rng) {
  Table* t = catalog->GetTable("supplier");
  Column& suppkey = t->column("s_suppkey");
  Column& nationkey = t->column("s_nationkey");
  Column& acctbal = t->column("s_acctbal");
  for (uint64_t i = 0; i < count; ++i) {
    suppkey.AppendI64(static_cast<int64_t>(i) + 1);
    nationkey.AppendI32(static_cast<int32_t>(rng->NextBelow(25)));
    acctbal.AppendI64(rng->NextRange(-99999, 999999));  // -999.99..9999.99
  }
}

void GenCustomer(Catalog* catalog, uint64_t count, Random* rng) {
  Table* t = catalog->GetTable("customer");
  Column& custkey = t->column("c_custkey");
  Column& name = t->column("c_name");
  Column& nationkey = t->column("c_nationkey");
  Column& mktsegment = t->column("c_mktsegment");
  Dictionary& name_dict = t->dictionary(t->ColumnIndex("c_name"));
  Dictionary& seg_dict = t->dictionary(t->ColumnIndex("c_mktsegment"));
  char buf[32];
  for (uint64_t i = 0; i < count; ++i) {
    custkey.AppendI64(static_cast<int64_t>(i) + 1);
    std::snprintf(buf, sizeof(buf), "Customer#%09llu",
                  static_cast<unsigned long long>(i + 1));
    name.AppendI32(name_dict.GetOrAdd(buf));
    nationkey.AppendI32(static_cast<int32_t>(rng->NextBelow(25)));
    mktsegment.AppendI32(seg_dict.GetOrAdd(kSegments[rng->NextBelow(5)]));
  }
}

void GenPart(Catalog* catalog, uint64_t count, Random* rng) {
  Table* t = catalog->GetTable("part");
  Column& partkey = t->column("p_partkey");
  Column& brand = t->column("p_brand");
  Column& type = t->column("p_type");
  Column& size = t->column("p_size");
  Column& container = t->column("p_container");
  Column& retail = t->column("p_retailprice");
  Dictionary& brand_dict = t->dictionary(t->ColumnIndex("p_brand"));
  Dictionary& type_dict = t->dictionary(t->ColumnIndex("p_type"));
  Dictionary& cont_dict = t->dictionary(t->ColumnIndex("p_container"));
  char buf[64];
  for (uint64_t i = 0; i < count; ++i) {
    partkey.AppendI64(static_cast<int64_t>(i) + 1);
    std::snprintf(buf, sizeof(buf), "Brand#%llu%llu",
                  static_cast<unsigned long long>(rng->NextBelow(5) + 1),
                  static_cast<unsigned long long>(rng->NextBelow(5) + 1));
    brand.AppendI32(brand_dict.GetOrAdd(buf));
    std::snprintf(buf, sizeof(buf), "%s %s %s",
                  kTypeSyllable1[rng->NextBelow(6)],
                  kTypeSyllable2[rng->NextBelow(5)],
                  kTypeSyllable3[rng->NextBelow(5)]);
    type.AppendI32(type_dict.GetOrAdd(buf));
    size.AppendI32(static_cast<int32_t>(rng->NextBelow(50)) + 1);
    std::snprintf(buf, sizeof(buf), "%s %s",
                  kContainerSyllable1[rng->NextBelow(5)],
                  kContainerSyllable2[rng->NextBelow(8)]);
    container.AppendI32(cont_dict.GetOrAdd(buf));
    // p_retailprice per spec: 90000 + (partkey/10 mod 20001) + 100*(partkey mod 1000), /100.
    int64_t pk = static_cast<int64_t>(i) + 1;
    retail.AppendI64(90000 + (pk / 10) % 20001 + 100 * (pk % 1000));
  }
}

void GenPartsupp(Catalog* catalog, uint64_t part_count, uint64_t supp_count,
                 Random* rng) {
  Table* t = catalog->GetTable("partsupp");
  Column& ps_partkey = t->column("ps_partkey");
  Column& ps_suppkey = t->column("ps_suppkey");
  Column& ps_availqty = t->column("ps_availqty");
  Column& ps_supplycost = t->column("ps_supplycost");
  for (uint64_t p = 1; p <= part_count; ++p) {
    for (int s = 0; s < 4; ++s) {
      ps_partkey.AppendI64(static_cast<int64_t>(p));
      // Spec formula spreads the 4 suppliers of a part across the range.
      uint64_t sk = (p + s * (supp_count / 4 + (p - 1) / supp_count)) %
                        supp_count + 1;
      ps_suppkey.AppendI64(static_cast<int64_t>(sk));
      ps_availqty.AppendI32(static_cast<int32_t>(rng->NextBelow(9999)) + 1);
      ps_supplycost.AppendI64(rng->NextRange(100, 100000));  // 1.00..1000.00
    }
  }
}

struct OrderDates {
  int32_t min_orderdate;
  int32_t max_orderdate;
};

void GenOrdersAndLineitem(Catalog* catalog, uint64_t order_count,
                          uint64_t cust_count, uint64_t part_count,
                          uint64_t supp_count, Random* rng) {
  Table* ot = catalog->GetTable("orders");
  Table* lt = catalog->GetTable("lineitem");

  Column& o_orderkey = ot->column("o_orderkey");
  Column& o_custkey = ot->column("o_custkey");
  Column& o_orderstatus = ot->column("o_orderstatus");
  Column& o_totalprice = ot->column("o_totalprice");
  Column& o_orderdate = ot->column("o_orderdate");
  Column& o_orderpriority = ot->column("o_orderpriority");
  Column& o_shippriority = ot->column("o_shippriority");
  Dictionary& status_dict = ot->dictionary(ot->ColumnIndex("o_orderstatus"));
  Dictionary& prio_dict = ot->dictionary(ot->ColumnIndex("o_orderpriority"));
  Column& o_comment = ot->column("o_comment");
  Dictionary& cmt_dict = ot->dictionary(ot->ColumnIndex("o_comment"));

  Column& l_orderkey = lt->column("l_orderkey");
  Column& l_partkey = lt->column("l_partkey");
  Column& l_suppkey = lt->column("l_suppkey");
  Column& l_linenumber = lt->column("l_linenumber");
  Column& l_quantity = lt->column("l_quantity");
  Column& l_extendedprice = lt->column("l_extendedprice");
  Column& l_discount = lt->column("l_discount");
  Column& l_tax = lt->column("l_tax");
  Column& l_returnflag = lt->column("l_returnflag");
  Column& l_linestatus = lt->column("l_linestatus");
  Column& l_shipdate = lt->column("l_shipdate");
  Column& l_commitdate = lt->column("l_commitdate");
  Column& l_receiptdate = lt->column("l_receiptdate");
  Column& l_shipinstruct = lt->column("l_shipinstruct");
  Column& l_shipmode = lt->column("l_shipmode");
  Dictionary& rf_dict = lt->dictionary(lt->ColumnIndex("l_returnflag"));
  Dictionary& ls_dict = lt->dictionary(lt->ColumnIndex("l_linestatus"));
  Dictionary& si_dict = lt->dictionary(lt->ColumnIndex("l_shipinstruct"));
  Dictionary& sm_dict = lt->dictionary(lt->ColumnIndex("l_shipmode"));

  // Register dictionary entries in a fixed order so codes are stable across
  // scale factors (query constants resolve codes at plan time regardless).
  for (const char* s : {"F", "O", "P"}) status_dict.GetOrAdd(s);
  for (const char* s : kPriorities) prio_dict.GetOrAdd(s);
  for (const char* s : {"R", "A", "N"}) rf_dict.GetOrAdd(s);
  for (const char* s : {"O", "F"}) ls_dict.GetOrAdd(s);
  for (const char* s : kInstructions) si_dict.GetOrAdd(s);
  for (const char* s : kShipModes) sm_dict.GetOrAdd(s);

  // Comments draw from their own deterministic stream so the text column
  // does not perturb the long-standing key/date/price distributions (and
  // the query results derived from them).
  Random comment_rng(0x5EA7C0DEu);

  const int32_t start_date = DateToDays(1992, 1, 1);
  const int32_t end_date = DateToDays(1998, 8, 2);
  // The "current date" used by the spec: lines shipped after it are still 'O'.
  const int32_t current_date = DateToDays(1995, 6, 17);

  // The part retail prices, re-derived (cheaper than a column lookup loop).
  auto retail_price = [](int64_t pk) {
    return 90000 + (pk / 10) % 20001 + 100 * (pk % 1000);
  };

  for (uint64_t o = 0; o < order_count; ++o) {
    // Sparse order keys like the spec (gaps of 8 every 32 keys).
    int64_t okey = static_cast<int64_t>((o / 8) * 32 + o % 8 + 1);
    int32_t odate = static_cast<int32_t>(
        start_date + rng->NextBelow(static_cast<uint64_t>(
                         end_date - start_date - 151)));
    int lines = static_cast<int>(rng->NextBelow(7)) + 1;
    int64_t total = 0;
    int f_lines = 0;
    for (int ln = 0; ln < lines; ++ln) {
      int64_t pk = static_cast<int64_t>(rng->NextBelow(part_count)) + 1;
      int64_t sk = static_cast<int64_t>(rng->NextBelow(supp_count)) + 1;
      int64_t qty_units = static_cast<int64_t>(rng->NextBelow(50)) + 1;
      int64_t eprice = qty_units * retail_price(pk);
      int64_t discount = rng->NextRange(0, 10);   // 0.00 .. 0.10
      int64_t tax = rng->NextRange(0, 8);         // 0.00 .. 0.08
      int32_t sdate = odate + static_cast<int32_t>(rng->NextBelow(121)) + 1;
      int32_t cdate = odate + static_cast<int32_t>(rng->NextBelow(61)) + 30;
      int32_t rdate = sdate + static_cast<int32_t>(rng->NextBelow(30)) + 1;
      bool shipped = rdate <= current_date;
      const char* rflag = shipped ? (rng->NextBool(0.5) ? "R" : "A") : "N";
      const char* lstatus = sdate > current_date ? "O" : "F";
      if (lstatus[0] == 'F') ++f_lines;

      l_orderkey.AppendI64(okey);
      l_partkey.AppendI64(pk);
      l_suppkey.AppendI64(sk);
      l_linenumber.AppendI32(ln + 1);
      l_quantity.AppendI64(qty_units * 100);
      l_extendedprice.AppendI64(eprice);
      l_discount.AppendI64(discount);
      l_tax.AppendI64(tax);
      l_returnflag.AppendI32(rf_dict.GetOrAdd(rflag));
      l_linestatus.AppendI32(ls_dict.GetOrAdd(lstatus));
      l_shipdate.AppendI32(sdate);
      l_commitdate.AppendI32(cdate);
      l_receiptdate.AppendI32(rdate);
      l_shipinstruct.AppendI32(
          si_dict.GetOrAdd(kInstructions[rng->NextBelow(4)]));
      l_shipmode.AppendI32(sm_dict.GetOrAdd(kShipModes[rng->NextBelow(7)]));
      total += eprice;
    }
    const char* ostatus =
        f_lines == lines ? "F" : (f_lines == 0 ? "O" : "P");
    o_orderkey.AppendI64(okey);
    o_custkey.AppendI64(static_cast<int64_t>(rng->NextBelow(cust_count)) + 1);
    o_orderstatus.AppendI32(status_dict.GetOrAdd(ostatus));
    o_totalprice.AppendI64(total);
    o_orderdate.AppendI32(odate);
    o_orderpriority.AppendI32(prio_dict.GetOrAdd(kPriorities[rng->NextBelow(5)]));
    o_shippriority.AppendI32(0);

    // Pseudo-text comment of 4..8 vocabulary words; ~2% of orders embed
    // "special ... requests" in order, the Q13 predicate's target. Nearly
    // all comments are distinct, making this the engine's high-cardinality
    // dictionary column.
    std::string comment;
    const int words = 4 + static_cast<int>(comment_rng.NextBelow(5));
    const bool special = comment_rng.NextBool(0.02);
    const int special_at =
        special ? static_cast<int>(comment_rng.NextBelow(
                      static_cast<uint64_t>(words - 1)))
                : -1;
    for (int wi = 0; wi < words; ++wi) {
      if (!comment.empty()) comment += ' ';
      if (wi == special_at) {
        comment += "special";
      } else if (special && wi == special_at + 1) {
        comment += "requests";
      } else {
        comment += kCommentWords[comment_rng.NextBelow(16)];
      }
    }
    o_comment.AppendI32(cmt_dict.GetOrAdd(comment));
  }
}

}  // namespace

void GenerateTpchData(Catalog* catalog, double sf, uint64_t seed) {
  Random rng(seed);
  Cardinalities card = CardinalitiesForScale(sf);
  GenRegionNation(catalog);
  GenSupplier(catalog, card.supplier, &rng);
  GenCustomer(catalog, card.customer, &rng);
  GenPart(catalog, card.part, &rng);
  GenPartsupp(catalog, card.part, card.supplier, &rng);
  GenOrdersAndLineitem(catalog, card.orders, card.customer, card.part,
                       card.supplier, &rng);
  // Establish the order-preserving dictionary invariant after bulk load:
  // codes become lexicographic, so LIKE-prefix predicates lower to integer
  // range compares (strings/like_lowering) and code order matches string
  // order everywhere. Queries resolve codes at plan time, so the remap is
  // invisible to them.
  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    catalog->GetTable(name)->SortDictionaries();
  }
  // Secondary indexes (zone maps, dictionary-code CSR, inverted token
  // index) are built after the dictionaries are sorted so code order
  // matches string order inside the index structures too. o_comment is the
  // one free-text column queries probe with %word% patterns.
  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    TableIndexOptions options;
    if (std::string(name) == "orders") options.text_columns = {"o_comment"};
    AttachTableIndexes(catalog->GetTable(name), std::move(options));
  }
}

void BuildTpchDatabase(Catalog* catalog, double sf, uint64_t seed) {
  CreateTpchSchema(catalog);
  GenerateTpchData(catalog, sf, seed);
}

}  // namespace aqe::tpch
