#ifndef AQE_TPCH_TPCH_SCHEMA_H_
#define AQE_TPCH_TPCH_SCHEMA_H_

#include <cstdint>

#include "storage/table.h"

namespace aqe::tpch {

/// Converts a calendar date to days since 1970-01-01 (proleptic Gregorian).
/// TPC-H date columns are stored as I32 days; query constants use this too.
int32_t DateToDays(int year, int month, int day);

/// Inverse of DateToDays.
void DaysToDate(int32_t days, int* year, int* month, int* day);

/// Creates the eight TPC-H tables (empty) in `catalog` with the column
/// subset/encodings described in DESIGN.md.
void CreateTpchSchema(Catalog* catalog);

/// TPC-H cardinalities at scale factor `sf`.
struct Cardinalities {
  uint64_t region;
  uint64_t nation;
  uint64_t supplier;
  uint64_t customer;
  uint64_t part;
  uint64_t partsupp;
  uint64_t orders;
};

Cardinalities CardinalitiesForScale(double sf);

}  // namespace aqe::tpch

#endif  // AQE_TPCH_TPCH_SCHEMA_H_
