#include "runtime/join_hash_table.h"

#include <cstring>

#include "common/status.h"
#include "obs/memory_tracker.h"

namespace aqe {

namespace {
/// Index of the calling worker thread, assigned by the scheduler (0 for the
/// main thread / single-threaded use). Also used by the aggregation runtime.
thread_local int t_thread_index = 0;
constexpr int kMaxThreads = 64;
}  // namespace

namespace runtime_internal {
void SetThreadIndex(int index) {
  AQE_CHECK(index >= 0 && index < kMaxThreads);
  t_thread_index = index;
}
int GetThreadIndex() { return t_thread_index; }
}  // namespace runtime_internal

struct JoinHashTable::Arena {
  static constexpr size_t kChunkBytes = 1 << 20;
  std::vector<std::unique_ptr<uint8_t[]>> chunks;
  size_t used_in_chunk = kChunkBytes;  // force first allocation
  QueryMemoryTracker* tracker = nullptr;

  uint8_t* Alloc(size_t bytes) {
    AQE_CHECK(bytes <= kChunkBytes);
    if (used_in_chunk + bytes > kChunkBytes) {
      chunks.push_back(std::make_unique<uint8_t[]>(kChunkBytes));
      used_in_chunk = 0;
      if (tracker != nullptr) tracker->Charge(kChunkBytes);
    }
    uint8_t* p = chunks.back().get() + used_in_chunk;
    used_in_chunk += bytes;
    return p;
  }
};

JoinHashTable::JoinHashTable(uint64_t expected_entries,
                             uint32_t payload_slots,
                             QueryMemoryTracker* tracker)
    : payload_slots_(payload_slots), tracker_(tracker) {
  uint64_t buckets = 16;
  while (buckets < expected_entries) buckets <<= 1;
  directory_ = std::vector<std::atomic<uint8_t*>>(buckets);
  for (auto& slot : directory_) slot.store(nullptr, std::memory_order_relaxed);
  mask_ = buckets - 1;
  arenas_.resize(kMaxThreads);
  if (tracker_ != nullptr) {
    tracker_->Charge(directory_.size() * sizeof(std::atomic<uint8_t*>));
  }
}

JoinHashTable::~JoinHashTable() {
  if (tracker_ == nullptr) return;
  uint64_t bytes = directory_.size() * sizeof(std::atomic<uint8_t*>);
  for (const auto& arena : arenas_) {
    if (arena != nullptr) bytes += arena->chunks.size() * Arena::kChunkBytes;
  }
  tracker_->Release(bytes);
}

uint64_t JoinHashTable::HashKey(int64_t key) {
  // Multiplicative hashing with a finalizer (good spread for dense keys).
  uint64_t h = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return h;
}

uint8_t* JoinHashTable::AllocNode() {
  int index = runtime_internal::GetThreadIndex();
  Arena* arena = arenas_[static_cast<size_t>(index)].get();
  if (arena == nullptr) {
    std::lock_guard<std::mutex> lock(arena_mutex_);
    if (arenas_[static_cast<size_t>(index)] == nullptr) {
      auto fresh = std::make_unique<Arena>();
      fresh->tracker = tracker_;
      arenas_[static_cast<size_t>(index)] = std::move(fresh);
    }
    arena = arenas_[static_cast<size_t>(index)].get();
  }
  return arena->Alloc(node_bytes());
}

void* JoinHashTable::Insert(int64_t key) {
  uint8_t* node = AllocNode();
  *reinterpret_cast<int64_t*>(node + 8) = key;
  std::memset(node + 16, 0, payload_slots_ * 8);
  std::atomic<uint8_t*>& head = directory_[HashKey(key) & mask_];
  uint8_t* expected = head.load(std::memory_order_relaxed);
  do {
    *reinterpret_cast<uint8_t**>(node) = expected;
  } while (!head.compare_exchange_weak(expected, node,
                                       std::memory_order_release,
                                       std::memory_order_relaxed));
  size_.fetch_add(1, std::memory_order_relaxed);
  return node + 16;
}

void* JoinHashTable::Lookup(int64_t key) const {
  uint8_t* node =
      directory_[HashKey(key) & mask_].load(std::memory_order_acquire);
  while (node != nullptr &&
         *reinterpret_cast<const int64_t*>(node + 8) != key) {
    node = *reinterpret_cast<uint8_t* const*>(node);
  }
  return node;
}

void* JoinHashTable::Next(void* node, int64_t key) {
  uint8_t* next = *reinterpret_cast<uint8_t* const*>(node);
  while (next != nullptr &&
         *reinterpret_cast<const int64_t*>(next + 8) != key) {
    next = *reinterpret_cast<uint8_t* const*>(next);
  }
  return next;
}

}  // namespace aqe
