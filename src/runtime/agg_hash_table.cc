#include "runtime/agg_hash_table.h"

#include <cstring>

#include "common/status.h"
#include "obs/memory_tracker.h"

namespace aqe {

namespace {
uint64_t HashKey(int64_t key) {
  uint64_t h = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return h;
}
}  // namespace

AggHashTable::AggHashTable(uint32_t payload_slots,
                           std::vector<int64_t> init_values,
                           QueryMemoryTracker* tracker)
    : payload_slots_(payload_slots),
      init_values_(std::move(init_values)),
      tracker_(tracker) {
  AQE_CHECK(init_values_.size() == payload_slots_);
  capacity_ = 64;
  mask_ = capacity_ - 1;
  data_.resize(capacity_ * entry_bytes());
  occupied_.assign(capacity_, 0);
  if (tracker_ != nullptr) {
    charged_bytes_ = data_.size() + occupied_.size();
    tracker_->Charge(charged_bytes_);
  }
}

AggHashTable::~AggHashTable() {
  if (tracker_ != nullptr && charged_bytes_ > 0) {
    tracker_->Release(charged_bytes_);
  }
}

AggHashTable::AggHashTable(AggHashTable&& other) noexcept
    : payload_slots_(other.payload_slots_),
      init_values_(std::move(other.init_values_)),
      capacity_(other.capacity_),
      mask_(other.mask_),
      size_(other.size_),
      data_(std::move(other.data_)),
      occupied_(std::move(other.occupied_)),
      tracker_(other.tracker_),
      charged_bytes_(other.charged_bytes_) {
  // The charge moves with the storage; the source must not double-release.
  other.tracker_ = nullptr;
  other.charged_bytes_ = 0;
}

AggHashTable& AggHashTable::operator=(AggHashTable&& other) noexcept {
  if (this == &other) return *this;
  if (tracker_ != nullptr && charged_bytes_ > 0) {
    tracker_->Release(charged_bytes_);
  }
  payload_slots_ = other.payload_slots_;
  init_values_ = std::move(other.init_values_);
  capacity_ = other.capacity_;
  mask_ = other.mask_;
  size_ = other.size_;
  data_ = std::move(other.data_);
  occupied_ = std::move(other.occupied_);
  tracker_ = other.tracker_;
  charged_bytes_ = other.charged_bytes_;
  other.tracker_ = nullptr;
  other.charged_bytes_ = 0;
  return *this;
}

void* AggHashTable::FindOrInsert(int64_t key) {
  if (size_ * 4 >= capacity_ * 3) Grow();
  uint64_t slot = HashKey(key) & mask_;
  for (;;) {
    if (!occupied_[slot]) {
      occupied_[slot] = 1;
      uint8_t* entry = EntryAt(slot);
      *reinterpret_cast<int64_t*>(entry) = key;
      std::memcpy(entry + 8, init_values_.data(), payload_slots_ * 8);
      ++size_;
      return entry + 8;
    }
    if (*reinterpret_cast<const int64_t*>(EntryAt(slot)) == key) {
      return EntryAt(slot) + 8;
    }
    slot = (slot + 1) & mask_;
  }
}

void* AggHashTable::Find(int64_t key) const {
  uint64_t slot = HashKey(key) & mask_;
  for (;;) {
    if (!occupied_[slot]) return nullptr;
    if (*reinterpret_cast<const int64_t*>(EntryAt(slot)) == key) {
      return EntryAt(slot) + 8;
    }
    slot = (slot + 1) & mask_;
  }
}

void AggHashTable::Grow() {
  uint64_t old_capacity = capacity_;
  std::vector<uint8_t> old_data = std::move(data_);
  std::vector<uint8_t> old_occupied = std::move(occupied_);
  capacity_ *= 2;
  mask_ = capacity_ - 1;
  data_.resize(capacity_ * entry_bytes());
  occupied_.assign(capacity_, 0);
  if (tracker_ != nullptr) {
    const uint64_t footprint = data_.size() + occupied_.size();
    tracker_->Charge(footprint - charged_bytes_);
    charged_bytes_ = footprint;
  }
  const uint8_t* old_base = old_data.data();
  for (uint64_t i = 0; i < old_capacity; ++i) {
    if (!old_occupied[i]) continue;
    const uint8_t* entry = old_base + i * entry_bytes();
    int64_t key = *reinterpret_cast<const int64_t*>(entry);
    uint64_t slot = HashKey(key) & mask_;
    while (occupied_[slot]) slot = (slot + 1) & mask_;
    occupied_[slot] = 1;
    std::memcpy(EntryAt(slot), entry, entry_bytes());
  }
}

void AggHashTable::ForEach(
    const std::function<void(int64_t, void*)>& fn) const {
  for (uint64_t i = 0; i < capacity_; ++i) {
    if (!occupied_[i]) continue;
    uint8_t* entry = EntryAt(i);
    fn(*reinterpret_cast<const int64_t*>(entry), entry + 8);
  }
}

AggHashTableSet::AggHashTableSet(uint32_t payload_slots,
                                 std::vector<int64_t> init_values,
                                 int max_threads)
    : payload_slots_(payload_slots), init_values_(std::move(init_values)) {
  tables_.resize(static_cast<size_t>(max_threads));
}

AggHashTable* AggHashTableSet::Local() {
  int index = runtime_internal::GetThreadIndex();
  AQE_CHECK(static_cast<size_t>(index) < tables_.size());
  auto& table = tables_[static_cast<size_t>(index)];
  if (table == nullptr) {
    table = std::make_unique<AggHashTable>(payload_slots_, init_values_,
                                           tracker_);
  }
  return table.get();
}

std::vector<AggHashTable*> AggHashTableSet::NonEmptyTables() const {
  std::vector<AggHashTable*> result;
  for (const auto& table : tables_) {
    if (table != nullptr && table->size() > 0) result.push_back(table.get());
  }
  return result;
}

void AggHashTableSet::MergeInto(
    AggHashTable* target,
    const std::function<void(uint32_t, int64_t*, int64_t)>& merge) const {
  for (const auto& table : tables_) {
    if (table == nullptr) continue;
    table->ForEach([&](int64_t key, void* payload) {
      auto* src = reinterpret_cast<const int64_t*>(payload);
      auto* dst = reinterpret_cast<int64_t*>(target->FindOrInsert(key));
      for (uint32_t s = 0; s < payload_slots_; ++s) {
        merge(s, &dst[s], src[s]);
      }
    });
  }
}

}  // namespace aqe
