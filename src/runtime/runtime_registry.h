#ifndef AQE_RUNTIME_RUNTIME_REGISTRY_H_
#define AQE_RUNTIME_RUNTIME_REGISTRY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace aqe {

/// Registry of C++ runtime functions callable from generated code — by the
/// JIT (resolved as absolute symbols) and by the bytecode VM (call opcodes
/// with the function address as immediate). §IV-E: "as we know all exported
/// C++ functions, we can identify missing opcodes at compile time"; here the
/// registry CHECKs that every function's signature fits the VM calling
/// convention (up to 8 integer-class args, i64-or-void return).
class RuntimeRegistry {
 public:
  struct Entry {
    void* address = nullptr;
    int num_args = 0;
    bool returns_value = false;  // i64-class return (else void)
  };

  /// The process-wide registry, populated by RegisterBuiltinRuntime() (done
  /// on first access).
  static RuntimeRegistry& Global();

  void Register(const std::string& name, void* address, int num_args,
                bool returns_value);

  /// Returns nullptr if not registered.
  const Entry* Find(const std::string& name) const;

  /// All entries (for the JIT's absolute-symbol map).
  const std::unordered_map<std::string, Entry>& entries() const {
    return entries_;
  }

 private:
  std::unordered_map<std::string, Entry> entries_;
};

/// Registers the built-in query runtime (hash tables, output buffers, …);
/// implemented in runtime_functions.cc. Idempotent.
void RegisterBuiltinRuntime(RuntimeRegistry* registry);

}  // namespace aqe

#endif  // AQE_RUNTIME_RUNTIME_REGISTRY_H_
