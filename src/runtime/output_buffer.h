#ifndef AQE_RUNTIME_OUTPUT_BUFFER_H_
#define AQE_RUNTIME_OUTPUT_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace aqe {

class QueryMemoryTracker;

/// Collects result rows produced by generated code. Each row is a fixed
/// number of 8-byte slots (integers/decimals raw, doubles bit-cast). Worker
/// threads append into thread-local sub-buffers; Rows() concatenates them
/// (row order across threads is unspecified — ORDER BY happens engine-side).
class OutputBuffer {
 public:
  explicit OutputBuffer(uint32_t row_slots, int max_threads = 64);
  ~OutputBuffer();

  /// Memory accounting for chunks allocated from now on; the tracker must
  /// outlive the buffer (both are owned by the same query).
  void set_memory_tracker(QueryMemoryTracker* tracker) { tracker_ = tracker; }

  /// Reserves one row in the calling thread's sub-buffer and returns the
  /// pointer to its first slot (valid until the next AllocRow on the same
  /// thread... the sub-buffer is deque-like chunked, pointers stay valid).
  int64_t* AllocRow();

  uint32_t row_slots() const { return row_slots_; }
  uint64_t num_rows() const;

  /// All rows, concatenated. Each inner vector is one row.
  std::vector<std::vector<int64_t>> Rows() const;

 private:
  struct ThreadBuffer {
    static constexpr uint64_t kRowsPerChunk = 1024;
    std::vector<std::unique_ptr<int64_t[]>> chunks;
    uint64_t rows = 0;
  };

  uint32_t row_slots_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  QueryMemoryTracker* tracker_ = nullptr;
  /// What tracker_ was charged so far; the destructor releases exactly
  /// this, so chunks allocated before set_memory_tracker (never charged)
  /// are never over-released. Atomic: AllocRow charges from many threads.
  std::atomic<uint64_t> charged_bytes_{0};
  mutable std::mutex create_mutex_;
};

}  // namespace aqe

#endif  // AQE_RUNTIME_OUTPUT_BUFFER_H_
