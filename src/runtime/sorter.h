#ifndef AQE_RUNTIME_SORTER_H_
#define AQE_RUNTIME_SORTER_H_

#include <cstdint>
#include <vector>

namespace aqe {

/// A sort key: slot index within the row plus direction and interpretation.
struct SortKey {
  uint32_t slot;
  bool descending = false;
  bool as_double = false;  ///< compare the slot's bits as a double
};

/// Sorts materialized result rows (engine-side, at a pipeline boundary —
/// ORDER BY / TOP-K are not part of the generated worker functions, matching
/// the paper's queryStart/C++ split).
void SortRows(std::vector<std::vector<int64_t>>* rows,
              const std::vector<SortKey>& keys);

/// SortRows + truncation to the first `limit` rows.
void TopK(std::vector<std::vector<int64_t>>* rows,
          const std::vector<SortKey>& keys, uint64_t limit);

}  // namespace aqe

#endif  // AQE_RUNTIME_SORTER_H_
