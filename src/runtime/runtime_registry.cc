#include "runtime/runtime_registry.h"

#include "common/status.h"

namespace aqe {

RuntimeRegistry& RuntimeRegistry::Global() {
  static RuntimeRegistry* registry = [] {
    auto* r = new RuntimeRegistry();
    RegisterBuiltinRuntime(r);
    return r;
  }();
  return *registry;
}

void RuntimeRegistry::Register(const std::string& name, void* address,
                               int num_args, bool returns_value) {
  AQE_CHECK_MSG(num_args >= 0 && num_args <= 8, "too many runtime args");
  AQE_CHECK_MSG(address != nullptr, "null runtime function");
  Entry entry{address, num_args, returns_value};
  auto [it, inserted] = entries_.emplace(name, entry);
  if (!inserted) {
    // Idempotent re-registration must agree with the existing entry.
    AQE_CHECK_MSG(it->second.address == address &&
                      it->second.num_args == num_args &&
                      it->second.returns_value == returns_value,
                  "conflicting runtime registration");
  }
}

const RuntimeRegistry::Entry* RuntimeRegistry::Find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace aqe
