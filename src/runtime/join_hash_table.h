#ifndef AQE_RUNTIME_JOIN_HASH_TABLE_H_
#define AQE_RUNTIME_JOIN_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace aqe {

class QueryMemoryTracker;

/// Chaining hash table for hash joins, usable concurrently from generated
/// code (JIT or VM alike). The directory is sized up front from the build
/// pipeline's known input cardinality (morsel framework always knows the
/// total work of a pipeline, §III-A); inserts are lock-free CAS pushes onto
/// the bucket chains, with nodes carved from per-thread arenas.
///
/// Node layout (seen by generated code):
///   [0]  next node pointer
///   [8]  join key (i64)
///   [16] payload: `payload_slots` 8-byte values
class JoinHashTable {
 public:
  /// `expected_entries` sizes the directory (an upper bound is fine);
  /// `payload_slots` is the number of 8-byte payload values per entry.
  /// `tracker` (may be null) is charged for the directory up front and for
  /// each per-thread arena chunk as build inserts allocate them.
  JoinHashTable(uint64_t expected_entries, uint32_t payload_slots,
                QueryMemoryTracker* tracker = nullptr);
  ~JoinHashTable();

  JoinHashTable(const JoinHashTable&) = delete;
  JoinHashTable& operator=(const JoinHashTable&) = delete;

  /// Inserts `key` and returns the payload pointer for the new entry.
  /// Thread-safe; called per build tuple from generated code.
  void* Insert(int64_t key);

  /// First chain node whose key equals `key`, or nullptr.
  void* Lookup(int64_t key) const;

  /// Next matching node after `node`, or nullptr.
  static void* Next(void* node, int64_t key);

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }
  uint32_t payload_slots() const { return payload_slots_; }

  /// Total bytes of one node.
  uint32_t node_bytes() const { return 16 + payload_slots_ * 8; }

  /// Iterates all entries (single-threaded; for tests and ht-scan
  /// pipelines). Calls fn(key, payload_ptr).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint64_t b = 0; b < directory_.size(); ++b) {
      for (uint8_t* node = directory_[b].load(std::memory_order_acquire);
           node != nullptr;
           node = *reinterpret_cast<uint8_t* const*>(node)) {
        fn(*reinterpret_cast<const int64_t*>(node + 8),
           reinterpret_cast<void*>(node + 16));
      }
    }
  }

 private:
  struct Arena;

  static uint64_t HashKey(int64_t key);
  uint8_t* AllocNode();

  std::vector<std::atomic<uint8_t*>> directory_;
  uint64_t mask_;
  uint32_t payload_slots_;
  std::atomic<uint64_t> size_{0};
  QueryMemoryTracker* tracker_ = nullptr;

  mutable std::mutex arena_mutex_;
  std::vector<std::unique_ptr<Arena>> arenas_;
};

}  // namespace aqe

#endif  // AQE_RUNTIME_JOIN_HASH_TABLE_H_
