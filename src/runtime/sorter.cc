#include "runtime/sorter.h"

#include <algorithm>
#include <cstring>

namespace aqe {

namespace {
bool RowLess(const std::vector<int64_t>& a, const std::vector<int64_t>& b,
             const std::vector<SortKey>& keys) {
  for (const SortKey& key : keys) {
    int64_t x = a[key.slot];
    int64_t y = b[key.slot];
    int cmp;
    if (key.as_double) {
      double dx, dy;
      std::memcpy(&dx, &x, 8);
      std::memcpy(&dy, &y, 8);
      cmp = dx < dy ? -1 : (dx > dy ? 1 : 0);
    } else {
      cmp = x < y ? -1 : (x > y ? 1 : 0);
    }
    if (cmp != 0) return key.descending ? cmp > 0 : cmp < 0;
  }
  return false;
}
}  // namespace

void SortRows(std::vector<std::vector<int64_t>>* rows,
              const std::vector<SortKey>& keys) {
  std::stable_sort(rows->begin(), rows->end(),
                   [&keys](const auto& a, const auto& b) {
                     return RowLess(a, b, keys);
                   });
}

void TopK(std::vector<std::vector<int64_t>>* rows,
          const std::vector<SortKey>& keys, uint64_t limit) {
  SortRows(rows, keys);
  if (rows->size() > limit) rows->resize(limit);
}

}  // namespace aqe
