#include "runtime/runtime_functions.h"

#include <cstdio>
#include <cstdlib>

#include "runtime/agg_hash_table.h"
#include "runtime/join_hash_table.h"
#include "runtime/output_buffer.h"
#include "runtime/runtime_registry.h"
#include "strings/string_predicate.h"

namespace aqe {
namespace rt {

uint64_t aqe_jht_insert(uint64_t ht, uint64_t key) {
  return reinterpret_cast<uint64_t>(
      reinterpret_cast<JoinHashTable*>(ht)->Insert(static_cast<int64_t>(key)));
}

uint64_t aqe_jht_lookup(uint64_t ht, uint64_t key) {
  return reinterpret_cast<uint64_t>(
      reinterpret_cast<const JoinHashTable*>(ht)->Lookup(
          static_cast<int64_t>(key)));
}

uint64_t aqe_jht_next(uint64_t node, uint64_t key) {
  return reinterpret_cast<uint64_t>(JoinHashTable::Next(
      reinterpret_cast<void*>(node), static_cast<int64_t>(key)));
}

uint64_t aqe_agg_local(uint64_t set) {
  return reinterpret_cast<uint64_t>(
      reinterpret_cast<AggHashTableSet*>(set)->Local());
}

uint64_t aqe_agg_find_or_insert(uint64_t ht, uint64_t key) {
  return reinterpret_cast<uint64_t>(
      reinterpret_cast<AggHashTable*>(ht)->FindOrInsert(
          static_cast<int64_t>(key)));
}

uint64_t aqe_out_alloc_row(uint64_t out) {
  return reinterpret_cast<uint64_t>(
      reinterpret_cast<OutputBuffer*>(out)->AllocRow());
}

uint64_t aqe_like_match(uint64_t pred, uint64_t code) {
  return reinterpret_cast<const LikePredicate*>(pred)->Matches(
             static_cast<int64_t>(code))
             ? 1
             : 0;
}

void aqe_raise_overflow() {
  std::fprintf(stderr, "aqe: arithmetic overflow during query execution\n");
  std::abort();
}

}  // namespace rt

void RegisterBuiltinRuntime(RuntimeRegistry* registry) {
  auto reg = [registry](const char* name, auto* fn, int num_args,
                        bool returns_value) {
    registry->Register(name, reinterpret_cast<void*>(fn), num_args,
                       returns_value);
  };
  reg("aqe_jht_insert", &rt::aqe_jht_insert, 2, true);
  reg("aqe_jht_lookup", &rt::aqe_jht_lookup, 2, true);
  reg("aqe_jht_next", &rt::aqe_jht_next, 2, true);
  reg("aqe_agg_local", &rt::aqe_agg_local, 1, true);
  reg("aqe_agg_find_or_insert", &rt::aqe_agg_find_or_insert, 2, true);
  reg("aqe_out_alloc_row", &rt::aqe_out_alloc_row, 1, true);
  reg("aqe_like_match", &rt::aqe_like_match, 2, true);
  reg("aqe_raise_overflow", &rt::aqe_raise_overflow, 0, false);
}

}  // namespace aqe
