#include "runtime/output_buffer.h"

#include "common/status.h"
#include "obs/memory_tracker.h"
#include "runtime/agg_hash_table.h"

namespace aqe {

OutputBuffer::OutputBuffer(uint32_t row_slots, int max_threads)
    : row_slots_(row_slots) {
  AQE_CHECK(row_slots_ > 0);
  buffers_.resize(static_cast<size_t>(max_threads));
}

OutputBuffer::~OutputBuffer() {
  const uint64_t bytes = charged_bytes_.load(std::memory_order_relaxed);
  if (tracker_ != nullptr && bytes > 0) tracker_->Release(bytes);
}

int64_t* OutputBuffer::AllocRow() {
  int index = runtime_internal::GetThreadIndex();
  AQE_CHECK(static_cast<size_t>(index) < buffers_.size());
  auto& buffer = buffers_[static_cast<size_t>(index)];
  if (buffer == nullptr) {
    // Lazily created; creation races are impossible (one thread per index)
    // but Rows() may run concurrently with other threads' creation, hence
    // the lock.
    std::lock_guard<std::mutex> lock(create_mutex_);
    buffer = std::make_unique<ThreadBuffer>();
  }
  uint64_t row_in_chunk = buffer->rows % ThreadBuffer::kRowsPerChunk;
  if (row_in_chunk == 0) {
    buffer->chunks.push_back(std::make_unique<int64_t[]>(
        ThreadBuffer::kRowsPerChunk * row_slots_));
    if (tracker_ != nullptr) {
      const uint64_t chunk_bytes =
          ThreadBuffer::kRowsPerChunk * row_slots_ * sizeof(int64_t);
      tracker_->Charge(chunk_bytes);
      charged_bytes_.fetch_add(chunk_bytes, std::memory_order_relaxed);
    }
  }
  ++buffer->rows;
  return buffer->chunks.back().get() + row_in_chunk * row_slots_;
}

uint64_t OutputBuffer::num_rows() const {
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    if (buffer != nullptr) total += buffer->rows;
  }
  return total;
}

std::vector<std::vector<int64_t>> OutputBuffer::Rows() const {
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(num_rows());
  for (const auto& buffer : buffers_) {
    if (buffer == nullptr) continue;
    for (uint64_t r = 0; r < buffer->rows; ++r) {
      const int64_t* src =
          buffer->chunks[r / ThreadBuffer::kRowsPerChunk].get() +
          (r % ThreadBuffer::kRowsPerChunk) * row_slots_;
      rows.emplace_back(src, src + row_slots_);
    }
  }
  return rows;
}

}  // namespace aqe
