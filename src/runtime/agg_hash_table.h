#ifndef AQE_RUNTIME_AGG_HASH_TABLE_H_
#define AQE_RUNTIME_AGG_HASH_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace aqe {

class QueryMemoryTracker;

namespace runtime_internal {
/// Worker-thread index plumbing shared by the runtime (set by the morsel
/// scheduler, read by thread-local runtime structures).
void SetThreadIndex(int index);
int GetThreadIndex();
}  // namespace runtime_internal

/// Linear-probing hash table for group-by aggregation. One instance per
/// worker thread (obtained via AggHashTableSet); generated code updates the
/// aggregate slots in place, the engine merges the per-thread tables when
/// the pipeline finishes.
///
/// Entry layout (seen by generated code): [key i64][slots...]; FindOrInsert
/// returns the pointer to the first aggregate slot.
class AggHashTable {
 public:
  /// `payload_slots` aggregate values per group, initialized to
  /// `init_values` (size payload_slots) on first touch. `tracker` (may be
  /// null) is charged for the backing arrays, including growth.
  AggHashTable(uint32_t payload_slots, std::vector<int64_t> init_values,
               QueryMemoryTracker* tracker = nullptr);
  ~AggHashTable();

  AggHashTable(const AggHashTable&) = delete;
  AggHashTable& operator=(const AggHashTable&) = delete;
  AggHashTable(AggHashTable&& other) noexcept;
  AggHashTable& operator=(AggHashTable&& other) noexcept;

  /// Payload pointer for `key`, inserting an initialized entry if new.
  void* FindOrInsert(int64_t key);

  /// Payload pointer for `key` or nullptr (no insert).
  void* Find(int64_t key) const;

  uint64_t size() const { return size_; }
  uint32_t payload_slots() const { return payload_slots_; }

  /// Iterates entries: fn(key, payload pointer).
  void ForEach(const std::function<void(int64_t, void*)>& fn) const;

 private:
  uint32_t entry_bytes() const { return 8 + payload_slots_ * 8; }
  uint8_t* EntryAt(uint64_t slot) const {
    return const_cast<uint8_t*>(data_.data()) + slot * entry_bytes();
  }
  void Grow();

  uint32_t payload_slots_;
  std::vector<int64_t> init_values_;
  uint64_t capacity_;  // power of two
  uint64_t mask_;
  uint64_t size_ = 0;
  std::vector<uint8_t> data_;      // capacity_ * entry_bytes()
  std::vector<uint8_t> occupied_;  // capacity_ bytes
  QueryMemoryTracker* tracker_ = nullptr;
  uint64_t charged_bytes_ = 0;  ///< what tracker_ was charged so far
};

/// The per-thread set of aggregation tables for one aggregation operator.
/// Generated code calls aqe_agg_local(set) to fetch its thread's table.
class AggHashTableSet {
 public:
  AggHashTableSet(uint32_t payload_slots, std::vector<int64_t> init_values,
                  int max_threads = 64);

  /// Memory accounting for tables created from now on (existing tables are
  /// not retro-charged; the engine attaches the tracker before execution).
  void set_memory_tracker(QueryMemoryTracker* tracker) { tracker_ = tracker; }

  /// Table of the calling worker thread (created lazily).
  AggHashTable* Local();

  /// All thread tables that were actually created.
  std::vector<AggHashTable*> NonEmptyTables() const;

  /// Merges all per-thread tables with a per-slot merge function:
  /// merge(slot_index, accumulator_ptr, value) — engine-side, not generated.
  void MergeInto(
      AggHashTable* target,
      const std::function<void(uint32_t, int64_t*, int64_t)>& merge) const;

 private:
  uint32_t payload_slots_;
  std::vector<int64_t> init_values_;
  std::vector<std::unique_ptr<AggHashTable>> tables_;
  QueryMemoryTracker* tracker_ = nullptr;
};

}  // namespace aqe

#endif  // AQE_RUNTIME_AGG_HASH_TABLE_H_
