#ifndef AQE_RUNTIME_RUNTIME_FUNCTIONS_H_
#define AQE_RUNTIME_RUNTIME_FUNCTIONS_H_

#include <cstdint>

namespace aqe {

/// The C++ query runtime callable from generated code. Every function uses
/// the uniform i64 ABI (pointers and integers as uint64_t, doubles
/// bit-cast) so one VM call convention covers all of them (§IV-E). The IR
/// code generator declares them with matching i64 signatures.
///
/// Registered names equal the C++ identifiers.
namespace rt {

/// JoinHashTable::Insert — returns the new entry's payload pointer.
uint64_t aqe_jht_insert(uint64_t ht, uint64_t key);
/// JoinHashTable::Lookup — first matching chain node or 0.
uint64_t aqe_jht_lookup(uint64_t ht, uint64_t key);
/// JoinHashTable::Next — next matching chain node or 0.
uint64_t aqe_jht_next(uint64_t node, uint64_t key);

/// AggHashTableSet::Local — the calling thread's aggregation table.
uint64_t aqe_agg_local(uint64_t set);
/// AggHashTable::FindOrInsert — payload pointer for the group key.
uint64_t aqe_agg_find_or_insert(uint64_t ht, uint64_t key);

/// OutputBuffer::AllocRow — pointer to a fresh result row.
uint64_t aqe_out_alloc_row(uint64_t out);

/// LikePredicate::Matches — 1 iff the dictionary code's string matches the
/// compiled LIKE pattern (src/strings/). The per-row call path of string
/// predicates: deliberately opaque to fusion, so it exercises the regime
/// where compiled speedup shrinks (the runtime-call-density cost-model
/// input). Codes outside the dictionary never match.
uint64_t aqe_like_match(uint64_t pred, uint64_t code);

/// Reports an arithmetic overflow in a query. Aborts the process — the
/// engine's contract is that TPC-H data never overflows; a production
/// system would abort only the query (§IV-F discusses overflow checking).
void aqe_raise_overflow();

}  // namespace rt
}  // namespace aqe

#endif  // AQE_RUNTIME_RUNTIME_FUNCTIONS_H_
