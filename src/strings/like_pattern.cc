#include "strings/like_pattern.h"

#include <algorithm>

#include "common/status.h"
#include "simd/simd.h"

namespace aqe {
namespace {

bool HasWildcard(std::string_view s, char wildcard) {
  return s.find(wildcard) != std::string_view::npos;
}

}  // namespace

const char* LikePatternClassName(LikePatternClass pattern_class) {
  switch (pattern_class) {
    case LikePatternClass::kMatchAll: return "match-all";
    case LikePatternClass::kEquality: return "equality";
    case LikePatternClass::kPrefix: return "prefix";
    case LikePatternClass::kSuffix: return "suffix";
    case LikePatternClass::kContains: return "contains";
    case LikePatternClass::kGeneral: return "general";
  }
  AQE_UNREACHABLE("bad LikePatternClass");
}

LikeMatcher LikeMatcher::Compile(std::string_view pattern) {
  LikeMatcher m;
  m.pattern_.assign(pattern.data(), pattern.size());

  const bool has_pct = HasWildcard(pattern, '%');
  const bool has_us = HasWildcard(pattern, '_');

  if (!has_pct && !has_us) {
    m.class_ = LikePatternClass::kEquality;
    m.literal_ = m.pattern_;
    m.min_length_ = m.literal_.size();
    return m;
  }
  if (!pattern.empty() &&
      pattern.find_first_not_of('%') == std::string_view::npos) {
    m.class_ = LikePatternClass::kMatchAll;
    return m;
  }
  if (!has_us) {
    const size_t lead = pattern.find_first_not_of('%');
    const size_t last = pattern.find_last_not_of('%');
    std::string_view core = pattern.substr(lead, last - lead + 1);
    if (!HasWildcard(core, '%')) {
      const bool pct_front = lead > 0;
      const bool pct_back = last + 1 < pattern.size();
      m.literal_.assign(core.data(), core.size());
      m.min_length_ = core.size();
      if (!pct_front && pct_back) {
        m.class_ = LikePatternClass::kPrefix;
        return m;
      }
      if (pct_front && pct_back) {
        m.class_ = LikePatternClass::kContains;
        return m;
      }
      m.class_ = LikePatternClass::kSuffix;  // pct_front && !pct_back
      return m;
    }
  }

  // General: split at '%' into segments, compile each to shift-or masks.
  m.class_ = LikePatternClass::kGeneral;
  m.anchored_front_ = pattern.front() != '%';
  m.anchored_back_ = pattern.back() != '%';
  size_t pos = 0;
  while (pos < pattern.size()) {
    const size_t pct = pattern.find('%', pos);
    const size_t end = pct == std::string_view::npos ? pattern.size() : pct;
    if (end > pos) {
      Segment seg;
      seg.chars.assign(pattern.data() + pos, end - pos);
      seg.literal = !HasWildcard(seg.chars, '_');
      if (seg.chars.size() <= 64) {
        seg.bit_parallel = true;
        seg.masks.fill(~0ull);
        for (size_t i = 0; i < seg.chars.size(); ++i) {
          const uint64_t bit = 1ull << i;
          if (seg.chars[i] == '_') {
            for (auto& mask : seg.masks) mask &= ~bit;
          } else {
            seg.masks[static_cast<uint8_t>(seg.chars[i])] &= ~bit;
          }
        }
      }
      m.min_length_ += seg.chars.size();
      m.segments_.push_back(std::move(seg));
    }
    pos = end + 1;
  }
  return m;
}

bool LikeMatcher::MatchesAt(const Segment& seg, std::string_view s,
                            size_t pos) {
  if (pos + seg.chars.size() > s.size()) return false;
  for (size_t i = 0; i < seg.chars.size(); ++i) {
    const char pc = seg.chars[i];
    if (pc != '_' && pc != s[pos + i]) return false;
  }
  return true;
}

size_t LikeMatcher::FindFrom(const Segment& seg, std::string_view s,
                             size_t from) {
  const size_t len = seg.chars.size();
  if (from + len > s.size()) return std::string_view::npos;
  if (seg.literal) {
    const size_t p =
        FindSubstr(s.data() + from, s.size() - from, seg.chars.data(), len);
    return p == SIZE_MAX ? std::string_view::npos : from + p;
  }
  if (seg.bit_parallel) {
    // Shift-or: a 0 bit at position i means "a match of chars[0..i] ends
    // here". One shift+or per input byte, no per-character branches.
    uint64_t state = ~0ull;
    const uint64_t accept = 1ull << (len - 1);
    for (size_t j = from; j < s.size(); ++j) {
      state = (state << 1) | seg.masks[static_cast<uint8_t>(s[j])];
      if ((state & accept) == 0) return j + 1 - len;
    }
    return std::string_view::npos;
  }
  for (size_t p = from; p + len <= s.size(); ++p) {
    if (MatchesAt(seg, s, p)) return p;
  }
  return std::string_view::npos;
}

bool LikeMatcher::MatchGeneral(std::string_view s) const {
  if (s.size() < min_length_) return false;
  size_t pos = 0;
  for (size_t k = 0; k < segments_.size(); ++k) {
    const Segment& seg = segments_[k];
    const bool first = k == 0;
    const bool last = k + 1 == segments_.size();
    if (first && anchored_front_) {
      if (!MatchesAt(seg, s, 0)) return false;
      pos = seg.chars.size();
      if (last && anchored_back_) return pos == s.size();
      continue;
    }
    if (last && anchored_back_) {
      // Anchor at the end; everything before it was matched greedily, so
      // any non-overlapping placement works iff this one does.
      const size_t end = s.size() - seg.chars.size();
      return end >= pos && MatchesAt(seg, s, end);
    }
    const size_t p = FindFrom(seg, s, pos);
    if (p == std::string_view::npos) return false;
    pos = p + seg.chars.size();
  }
  return true;
}

bool LikeMatcher::Matches(std::string_view s) const {
  switch (class_) {
    case LikePatternClass::kMatchAll:
      return true;
    case LikePatternClass::kEquality:
      return s == literal_;
    case LikePatternClass::kPrefix:
      return s.size() >= literal_.size() &&
             s.compare(0, literal_.size(), literal_) == 0;
    case LikePatternClass::kSuffix:
      return s.size() >= literal_.size() &&
             s.compare(s.size() - literal_.size(), literal_.size(),
                       literal_) == 0;
    case LikePatternClass::kContains:
      return FindSubstr(s.data(), s.size(), literal_.data(),
                        literal_.size()) != SIZE_MAX;
    case LikePatternClass::kGeneral:
      return MatchGeneral(s);
  }
  AQE_UNREACHABLE("bad LikePatternClass");
}

}  // namespace aqe
