#ifndef AQE_STRINGS_LIKE_LOWERING_H_
#define AQE_STRINGS_LIKE_LOWERING_H_

#include <string_view>

#include "plan/expr.h"
#include "plan/plan.h"
#include "storage/table.h"
#include "strings/like_pattern.h"

namespace aqe {

/// Which per-row representation a LIKE predicate lowers to.
enum class LikeStrategy {
  /// Decide from the dictionary: pre-evaluate when the distinct-string
  /// count is small enough that the setup cost amortizes over the scan
  /// (the decision rule in src/strings/DESIGN.md).
  kAuto,
  /// Force the dictionary pre-evaluation path (code-range compare or
  /// byte-per-code bitmap probe; fuses with the VM's br_* ops).
  kBitmap,
  /// Force the per-row runtime call (`aqe_like_match`): the call-heavy
  /// regime where compiled speedup shrinks. What high-cardinality
  /// dictionaries get under kAuto; benches force it to measure the gap.
  kRuntimeCall,
  /// Force the inverted-token-index access path: lower as a runtime call
  /// (the residual verify) and rely on scan pruning to schedule only the
  /// morsels holding candidate rows. Falls back to kRuntimeCall semantics
  /// when the table carries no token index for the column — the expression
  /// is identical either way; only the scan domain differs.
  kIndex,
};

struct LikeLoweringOptions {
  LikeStrategy strategy = LikeStrategy::kAuto;
  /// kAuto never pre-evaluates more distinct strings than this...
  uint32_t bitmap_max_codes = 1u << 16;
  /// ...nor when the dictionary holds more than this fraction of the
  /// table's rows (each distinct string must amortize its one evaluation
  /// over the rows that carry it).
  double max_distinct_fraction = 0.125;
  /// kAuto consults the table's inverted token index (when one covers the
  /// column): if the pattern's candidate rows are at most
  /// `index_max_selectivity` of the table, the bitmap build — which must
  /// evaluate the matcher over *every* distinct string — cannot beat
  /// posting intersection + residual verify over the few candidate
  /// morsels, so the lowering emits the runtime call and leaves row
  /// selection to scan pruning (src/index/DESIGN.md has the full rule).
  bool consult_index = true;
  double index_max_selectivity = 0.05;
};

/// The lowered predicate plus what the lowering chose (benches and tests
/// assert on the decision; DESIGN.md documents the rule).
struct LoweredLike {
  ExprPtr expr;  ///< Bool predicate over the code in `code_slot`
  bool used_bitmap = false;          ///< pre-evaluation path taken
  bool used_runtime_call = false;    ///< kLike runtime-call expression
  /// The decision expects scan pruning to serve this predicate from the
  /// token index (runtime call emitted as the residual verify only).
  bool chose_index_path = false;
  /// Candidate-row fraction estimated from the token index; 1.0 when the
  /// index was not consulted or could not help.
  double index_selectivity = 1.0;
  LikePatternClass pattern_class = LikePatternClass::kGeneral;
};

/// Lowers `<column> LIKE <pattern>` against the dictionary of
/// `table.column(column_index)`, whose code the pipeline scans into
/// `code_slot`. Wildcard-free patterns become a single code compare and
/// prefix patterns on a sorted dictionary a code-range compare — both
/// carry the pattern as plain I64 literals, so pattern variants
/// patch-share cached bytecode exactly like numeric constants. Everything
/// else either pre-evaluates into a program-owned bitmap (kBitmapTest) or
/// becomes a kLike runtime call whose matcher reaches the worker through
/// the binding array.
LoweredLike LowerLikePredicate(QueryProgram* program, const Table& table,
                               int column_index, int code_slot,
                               std::string_view pattern,
                               const LikeLoweringOptions& options = {});

}  // namespace aqe

#endif  // AQE_STRINGS_LIKE_LOWERING_H_
