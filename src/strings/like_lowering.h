#ifndef AQE_STRINGS_LIKE_LOWERING_H_
#define AQE_STRINGS_LIKE_LOWERING_H_

#include <string_view>

#include "plan/expr.h"
#include "plan/plan.h"
#include "storage/table.h"
#include "strings/like_pattern.h"

namespace aqe {

/// Which per-row representation a LIKE predicate lowers to.
enum class LikeStrategy {
  /// Decide from the dictionary: pre-evaluate when the distinct-string
  /// count is small enough that the setup cost amortizes over the scan
  /// (the decision rule in src/strings/DESIGN.md).
  kAuto,
  /// Force the dictionary pre-evaluation path (code-range compare or
  /// byte-per-code bitmap probe; fuses with the VM's br_* ops).
  kBitmap,
  /// Force the per-row runtime call (`aqe_like_match`): the call-heavy
  /// regime where compiled speedup shrinks. What high-cardinality
  /// dictionaries get under kAuto; benches force it to measure the gap.
  kRuntimeCall,
};

struct LikeLoweringOptions {
  LikeStrategy strategy = LikeStrategy::kAuto;
  /// kAuto never pre-evaluates more distinct strings than this...
  uint32_t bitmap_max_codes = 1u << 16;
  /// ...nor when the dictionary holds more than this fraction of the
  /// table's rows (each distinct string must amortize its one evaluation
  /// over the rows that carry it).
  double max_distinct_fraction = 0.125;
};

/// The lowered predicate plus what the lowering chose (benches and tests
/// assert on the decision; DESIGN.md documents the rule).
struct LoweredLike {
  ExprPtr expr;  ///< Bool predicate over the code in `code_slot`
  bool used_bitmap = false;          ///< pre-evaluation path taken
  bool used_runtime_call = false;    ///< kLike runtime-call expression
  LikePatternClass pattern_class = LikePatternClass::kGeneral;
};

/// Lowers `<column> LIKE <pattern>` against the dictionary of
/// `table.column(column_index)`, whose code the pipeline scans into
/// `code_slot`. Wildcard-free patterns become a single code compare and
/// prefix patterns on a sorted dictionary a code-range compare — both
/// carry the pattern as plain I64 literals, so pattern variants
/// patch-share cached bytecode exactly like numeric constants. Everything
/// else either pre-evaluates into a program-owned bitmap (kBitmapTest) or
/// becomes a kLike runtime call whose matcher reaches the worker through
/// the binding array.
LoweredLike LowerLikePredicate(QueryProgram* program, const Table& table,
                               int column_index, int code_slot,
                               std::string_view pattern,
                               const LikeLoweringOptions& options = {});

}  // namespace aqe

#endif  // AQE_STRINGS_LIKE_LOWERING_H_
