#ifndef AQE_STRINGS_STRING_PREDICATE_H_
#define AQE_STRINGS_STRING_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "storage/dictionary.h"
#include "strings/like_pattern.h"

namespace aqe {

/// A compiled LIKE predicate bound to a dictionary column: the runtime
/// object behind the per-row call path (`aqe_like_match`). Owned by the
/// QueryProgram (AddLikePredicate); the worker receives its address through
/// the packed binding array, so cached bytecode and machine code stay
/// position-independent — two plans differing only in the pattern literal
/// share artifacts without patching.
struct LikePredicate {
  LikeMatcher matcher;
  const Dictionary* dict = nullptr;  ///< not owned

  /// True iff `code` is a valid code of `dict` whose string matches. Codes
  /// outside [0, dict->size()) — e.g. the -1 an absent-constant lookup
  /// yields — never match (SQL LIKE is never true for missing values).
  bool Matches(int64_t code) const {
    if (dict == nullptr || code < 0 || code >= dict->size()) return false;
    return matcher.Matches(dict->Get(static_cast<int32_t>(code)));
  }
};

/// HyPer-style dictionary pre-evaluation: runs `matcher` once per distinct
/// string, producing the byte-per-code bitmap a kBitmapTest probes per row.
/// Specialized pattern classes use the dictionary's native primitives.
std::vector<uint8_t> BuildLikeBitmap(const Dictionary& dict,
                                     const LikeMatcher& matcher);

}  // namespace aqe

#endif  // AQE_STRINGS_STRING_PREDICATE_H_
