#ifndef AQE_STRINGS_LIKE_PATTERN_H_
#define AQE_STRINGS_LIKE_PATTERN_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aqe {

/// Shape of a SQL LIKE pattern after classification. The specialized
/// classes map onto cheap string primitives (and, for dictionary columns,
/// onto code ranges or pre-evaluated bitmaps); kGeneral falls back to the
/// compiled segment matcher.
enum class LikePatternClass : uint8_t {
  kMatchAll,  ///< only '%' wildcards: matches every string
  kEquality,  ///< no wildcards at all (includes the empty pattern)
  kPrefix,    ///< lit%  (one trailing '%', no '_')
  kSuffix,    ///< %lit
  kContains,  ///< %lit%
  kGeneral,   ///< anything else: '_' anywhere, or interior '%'
};

const char* LikePatternClassName(LikePatternClass pattern_class);

/// A LIKE pattern compiled into a matcher object. Specialized classes keep
/// the literal and match with one string primitive; general patterns are
/// split at '%' into segments of literal-or-'_' characters, each compiled
/// to a bit-parallel shift-or automaton (Baeza-Yates–Gonnet; '_' is the
/// character class of everything) when it fits a 64-bit state word, with a
/// naive scan fallback for longer segments. Matching walks the segments
/// greedily left to right, anchoring the first/last segment when the
/// pattern does not start/end with '%' — linear in the input for the
/// patterns queries use.
///
/// No escape syntax: '%' and '_' are always wildcards (the TPC-H predicates
/// this engine targets never escape them).
class LikeMatcher {
 public:
  /// Compiles `pattern`. Always succeeds; every pattern has a meaning
  /// (the empty pattern matches exactly the empty string).
  static LikeMatcher Compile(std::string_view pattern);

  bool Matches(std::string_view s) const;

  LikePatternClass pattern_class() const { return class_; }
  const std::string& pattern() const { return pattern_; }
  /// The literal of the specialized classes (empty for kMatchAll/kGeneral).
  const std::string& literal() const { return literal_; }
  /// Minimum input length any match requires (sum of segment lengths).
  size_t min_length() const { return min_length_; }

 private:
  /// One maximal run of non-'%' pattern characters ('_' included).
  struct Segment {
    std::string chars;
    /// Shift-or masks: bit i of masks[c] is SET when chars[i] does NOT
    /// match byte c ('_' matches everything). Only built when
    /// chars.size() <= 64.
    std::array<uint64_t, 256> masks;
    bool bit_parallel = false;
    /// No '_' in chars: the segment is a plain substring, so the unanchored
    /// search can use the SIMD block filter instead of the byte-at-a-time
    /// shift-or automaton.
    bool literal = false;
  };

  static bool MatchesAt(const Segment& seg, std::string_view s, size_t pos);
  static size_t FindFrom(const Segment& seg, std::string_view s, size_t from);
  bool MatchGeneral(std::string_view s) const;

  LikePatternClass class_ = LikePatternClass::kEquality;
  std::string pattern_;
  std::string literal_;
  std::vector<Segment> segments_;
  bool anchored_front_ = false;  ///< pattern does not start with '%'
  bool anchored_back_ = false;   ///< pattern does not end with '%'
  size_t min_length_ = 0;
};

}  // namespace aqe

#endif  // AQE_STRINGS_LIKE_PATTERN_H_
