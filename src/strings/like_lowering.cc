#include "strings/like_lowering.h"

#include <algorithm>
#include <vector>

#include "common/status.h"
#include "index/table_index.h"
#include "strings/string_predicate.h"

namespace aqe {

LoweredLike LowerLikePredicate(QueryProgram* program, const Table& table,
                               int column_index, int code_slot,
                               std::string_view pattern,
                               const LikeLoweringOptions& options) {
  AQE_CHECK_MSG(table.has_dictionary(column_index),
                "LIKE over a non-dictionary column");
  const Dictionary& dict = table.dictionary(column_index);
  LikeMatcher matcher = LikeMatcher::Compile(pattern);

  LoweredLike result;
  result.pattern_class = matcher.pattern_class();

  // Pattern-independent structure: these classes become pure integer
  // compares whose literals flow through the constant-patch table, so any
  // strategy request collapses to the same (cheapest) form.
  switch (matcher.pattern_class()) {
    case LikePatternClass::kMatchAll:
      // Codes are always >= 0 > -1: constant-true with the same expression
      // shape as a one-sided range predicate.
      result.expr = Ge(Slot(code_slot), I64(-1));
      return result;
    case LikePatternClass::kEquality: {
      // The classic dictionary rewrite: equality on the code. An absent
      // literal compares against -1, which no code ever is — constant
      // false without changing the expression structure.
      const int64_t code = dict.Find(matcher.literal());
      result.expr = Eq(Slot(code_slot), I64(code));
      return result;
    }
    case LikePatternClass::kPrefix:
      if (dict.is_sorted()) {
        // Order-preserving dictionary: the prefix owns a contiguous code
        // range, so LIKE 'x%' is two fusable integer compares.
        const auto [lo, hi] = dict.PrefixRange(matcher.literal());
        result.expr =
            And(Ge(Slot(code_slot), I64(lo)), Lt(Slot(code_slot), I64(hi)));
        return result;
      }
      break;
    default:
      break;
  }

  // Token-index consultation: estimate how much of the table the pattern's
  // candidate rows cover. A selective pattern over an indexed column is
  // served best by the runtime call + scan pruning (posting intersection
  // schedules only candidate morsels; the call is the residual verify) —
  // pre-evaluating a bitmap would pay one matcher evaluation per distinct
  // string for rows that mostly never get scanned.
  bool index_usable = false;
  double index_selectivity = 1.0;
  if ((options.strategy == LikeStrategy::kIndex ||
       (options.strategy == LikeStrategy::kAuto && options.consult_index)) &&
      table.indexes() != nullptr && table.num_rows() > 0) {
    const TableIndexes& idx = *table.indexes();
    const auto text_it = idx.text_indexes.find(column_index);
    const auto csr_it = idx.dict_indexes.find(column_index);
    if (text_it != idx.text_indexes.end() &&
        csr_it != idx.dict_indexes.end()) {
      std::vector<int32_t> candidates;
      if (text_it->second.CandidateCodes(pattern, &candidates)) {
        uint64_t candidate_rows = 0;
        for (const int32_t code : candidates) {
          candidate_rows += static_cast<uint64_t>(
              csr_it->second.RowsEnd(code) - csr_it->second.RowsBegin(code));
        }
        index_usable = true;
        index_selectivity = static_cast<double>(candidate_rows) /
                            static_cast<double>(table.num_rows());
      }
    }
  }

  bool bitmap = options.strategy == LikeStrategy::kBitmap;
  if (options.strategy == LikeStrategy::kAuto) {
    const auto codes = static_cast<uint64_t>(dict.size());
    const double max_codes = std::max(
        1.0, static_cast<double>(table.num_rows()) *
                 options.max_distinct_fraction);
    bitmap = codes <= options.bitmap_max_codes &&
             static_cast<double>(codes) <= max_codes;
    if (index_usable && index_selectivity <= options.index_max_selectivity) {
      bitmap = false;  // the index path wins; see decision rule above
    }
  }
  const bool index_path =
      options.strategy == LikeStrategy::kIndex ||
      (options.strategy == LikeStrategy::kAuto && index_usable &&
       index_selectivity <= options.index_max_selectivity);

  if (index_path) {
    const LikePredicate* pred =
        program->AddLikePredicate({std::move(matcher), &dict});
    result.expr = LikeMatch(pred, Slot(code_slot));
    result.used_runtime_call = true;
    result.chose_index_path = index_usable;
    result.index_selectivity = index_selectivity;
    return result;
  }

  if (bitmap) {
    const uint8_t* bits = program->AddBitmap(BuildLikeBitmap(dict, matcher));
    result.expr = BitmapTest(bits, Slot(code_slot));
    result.used_bitmap = true;
    return result;
  }
  const LikePredicate* pred =
      program->AddLikePredicate({std::move(matcher), &dict});
  result.expr = LikeMatch(pred, Slot(code_slot));
  result.used_runtime_call = true;
  return result;
}

}  // namespace aqe
