#include "strings/string_predicate.h"

namespace aqe {

std::vector<uint8_t> BuildLikeBitmap(const Dictionary& dict,
                                     const LikeMatcher& matcher) {
  switch (matcher.pattern_class()) {
    case LikePatternClass::kPrefix:
      return dict.MatchPrefix(matcher.literal());
    case LikePatternClass::kContains:
      return dict.MatchContains(matcher.literal());
    default:
      return dict.MatchBitmap(
          [&matcher](std::string_view s) { return matcher.Matches(s); });
  }
}

}  // namespace aqe
