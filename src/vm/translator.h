#ifndef AQE_VM_TRANSLATOR_H_
#define AQE_VM_TRANSLATOR_H_

#include <memory>

#include <llvm/IR/Function.h>

#include "runtime/runtime_registry.h"
#include "vm/bytecode.h"
#include "vm/register_allocator.h"

namespace aqe {

/// Options for LLVM-IR-to-bytecode translation.
struct TranslatorOptions {
  RegAllocStrategy strategy = RegAllocStrategy::kLoopAware;
  /// Window size (in blocks) for RegAllocStrategy::kWindow.
  int window_size = 16;
  /// Enables the §IV-F macro-op fusion (overflow-check sequences and
  /// GEP+load/store pairs collapse to one VM instruction each).
  bool fuse_macro_ops = true;
  /// Enables the compare-and-branch peephole (extends §IV-F): a single-use
  /// icmp/fcmp feeding the block's condbr fuses into one br_<pred>_<ty>
  /// superinstruction. Independent of fuse_macro_ops so the ablation bench
  /// can isolate its effect.
  bool fuse_cmp_branches = true;
  /// Enables the constant-operand forms of the fused compare-and-branch
  /// (br_*_imm): a compare against a query constant reads it from a private
  /// literal-pool slot instead of burning a constant-pool register and its
  /// entry load. Only effective together with fuse_cmp_branches.
  bool fuse_imm_cmp_branches = true;
  /// Enables the third superinstruction tier (br_load_*): a single-use
  /// indexed load feeding an already-fused compare-and-branch folds into it,
  /// executing the whole scan-filter kernel body — load, compare, branch —
  /// in one dispatch. Only effective together with fuse_macro_ops and
  /// fuse_cmp_branches (it builds on both fused GEPs and fused compares).
  bool fuse_load_cmp_branches = true;
  /// Splits a conditional branch whose condition is a single-use conjunction
  /// (`and i1` tree) of block-local predicates into a short-circuit chain of
  /// branches, so each fusable compare becomes its own br_* superinstruction
  /// and the first failing term exits the row early. The JIT keeps the
  /// original and-tree IR (which LLVM vectorizes); only the bytecode sees
  /// the chain. Only effective together with fuse_cmp_branches.
  bool fuse_branch_chains = true;
};

/// Process-wide cumulative translation counters, accumulated by every
/// TranslateToBytecode call (each BcProgram also carries its own per-program
/// counts). The engine's observability snapshot reports these; benches
/// reset them between phases so warm-phase numbers stay clean.
struct TranslatorCounters {
  uint64_t programs = 0;            ///< translations performed
  uint64_t bytecode_ops = 0;        ///< VM instructions emitted
  uint64_t fused_instructions = 0;  ///< LLVM instructions folded by fusion
  uint64_t fused_cmp_branches = 0;
  uint64_t fused_cmp_branch_imms = 0;
  uint64_t fused_load_cmp_branches = 0;
};

TranslatorCounters TranslatorCountersSnapshot();
void ResetTranslatorCounters();

/// Translates `fn` into a BcProgram following Fig 9: compute liveness and
/// block order, then translate block by block, allocating registers as
/// values become live, folding subsumed instruction sequences, propagating
/// phi values at block ends, and releasing registers whose values died.
/// Linear in the size of the function.
///
/// Calls must target functions registered in `registry` (resolved here, at
/// translation time, so the interpreter just jumps through the immediate).
BcProgram TranslateToBytecode(const llvm::Function& fn,
                              const RuntimeRegistry& registry,
                              const TranslatorOptions& options = {});

}  // namespace aqe

#endif  // AQE_VM_TRANSLATOR_H_
