#ifndef AQE_VM_TRANSLATOR_H_
#define AQE_VM_TRANSLATOR_H_

#include <memory>

#include <llvm/IR/Function.h>

#include "runtime/runtime_registry.h"
#include "vm/bytecode.h"
#include "vm/register_allocator.h"

namespace aqe {

/// Options for LLVM-IR-to-bytecode translation.
struct TranslatorOptions {
  RegAllocStrategy strategy = RegAllocStrategy::kLoopAware;
  /// Window size (in blocks) for RegAllocStrategy::kWindow.
  int window_size = 16;
  /// Enables the §IV-F macro-op fusion (overflow-check sequences and
  /// GEP+load/store pairs collapse to one VM instruction each).
  bool fuse_macro_ops = true;
  /// Enables the compare-and-branch peephole (extends §IV-F): a single-use
  /// icmp/fcmp feeding the block's condbr fuses into one br_<pred>_<ty>
  /// superinstruction. Independent of fuse_macro_ops so the ablation bench
  /// can isolate its effect.
  bool fuse_cmp_branches = true;
  /// Enables the constant-operand forms of the fused compare-and-branch
  /// (br_*_imm): a compare against a query constant reads it from a private
  /// literal-pool slot instead of burning a constant-pool register and its
  /// entry load. Only effective together with fuse_cmp_branches.
  bool fuse_imm_cmp_branches = true;
};

/// Translates `fn` into a BcProgram following Fig 9: compute liveness and
/// block order, then translate block by block, allocating registers as
/// values become live, folding subsumed instruction sequences, propagating
/// phi values at block ends, and releasing registers whose values died.
/// Linear in the size of the function.
///
/// Calls must target functions registered in `registry` (resolved here, at
/// translation time, so the interpreter just jumps through the immediate).
BcProgram TranslateToBytecode(const llvm::Function& fn,
                              const RuntimeRegistry& registry,
                              const TranslatorOptions& options = {});

}  // namespace aqe

#endif  // AQE_VM_TRANSLATOR_H_
