#include "vm/translator.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include <llvm/ADT/SmallVector.h>
#include <llvm/IR/Constants.h>
#include <llvm/IR/InstrTypes.h>
#include <llvm/IR/Instructions.h>
#include <llvm/IR/IntrinsicInst.h>
#include <llvm/IR/Intrinsics.h>

#include "analysis/cfg_analysis.h"
#include "analysis/liveness.h"
#include "common/status.h"

namespace aqe {
namespace {

/// VM value classes; chosen by the LLVM type of an operand/result.
enum class TypeClass { kI1, kI8, kI16, kI32, kI64, kF64 };

TypeClass ClassifyType(const llvm::Type* type) {
  if (type->isPointerTy()) return TypeClass::kI64;
  if (type->isDoubleTy()) return TypeClass::kF64;
  if (const auto* it = llvm::dyn_cast<llvm::IntegerType>(type)) {
    switch (it->getBitWidth()) {
      case 1: return TypeClass::kI1;
      case 8: return TypeClass::kI8;
      case 16: return TypeClass::kI16;
      case 32: return TypeClass::kI32;
      case 64: return TypeClass::kI64;
    }
  }
  AQE_UNREACHABLE("unsupported LLVM type in bytecode translation");
}

struct FusedOverflow {
  const llvm::ExtractValueInst* value_extract = nullptr;  // may be null
  const llvm::BasicBlock* overflow_block = nullptr;
  const llvm::BasicBlock* continue_block = nullptr;
};

/// The Fig 9 translator. One instance per function; linear passes only.
class Translator {
 public:
  Translator(const llvm::Function& fn, const RuntimeRegistry& registry,
             const TranslatorOptions& options)
      : fn_(fn),
        registry_(registry),
        options_(options),
        cfg_(fn),
        live_(ComputeLiveness(fn, cfg_)),
        alloc_(options.strategy, options.window_size) {}

  BcProgram Run();

 private:
  // --- planning -----------------------------------------------------------
  void PlanFusion();
  void PlanCmpBranchFusion();
  void PlanBranchChainFusion();
  void PlanLoadCmpBranchFusion();
  void CountBlockLocalUses();
  void BuildRangeLists();

  // --- register handling ----------------------------------------------------
  bool IsSingleBlock(const llvm::Value* v) const {
    const LiveRange& r = live_.range(v);
    return r.start == r.end;
  }
  uint32_t AllocFor(const llvm::Value* v) {
    const LiveRange& r = live_.range(v);
    uint32_t reg = alloc_.Alloc(r.start, r.end);
    value_reg_[v] = reg;
    return reg;
  }
  /// Register for a value already defined/allocated, or a constant slot.
  uint32_t GetReg(const llvm::Value* v);
  /// GetReg + block-local use accounting (releases dead block-local regs).
  uint32_t UseReg(const llvm::Value* v);
  uint32_t ConstSlot(uint64_t bits);
  uint32_t ConstOperandSlot(const llvm::Constant* c);
  void ReleaseValue(const llvm::Value* v);

  // --- emission --------------------------------------------------------------
  uint32_t Emit(Opcode op, uint32_t a1 = 0, uint32_t a2 = 0, uint32_t a3 = 0,
                uint64_t lit = 0) {
    AQE_CHECK_MSG((a1 | a2 | a3) <= 0xFFFF,
                  "operand exceeds compact 16-bit instruction field");
    program_.code.push_back({static_cast<uint16_t>(op),
                             static_cast<uint16_t>(a1),
                             static_cast<uint16_t>(a2),
                             static_cast<uint16_t>(a3), lit});
    return static_cast<uint32_t>(program_.code.size() - 1);
  }
  /// Patches one half of a packed (then, else) branch-target immediate.
  void SetThenTarget(uint32_t index, uint32_t target) {
    BcInstruction& inst = program_.code[index];
    inst.lit = PackBranchTargets(target, UnpackElseTarget(inst.lit));
  }
  void SetElseTarget(uint32_t index, uint32_t target) {
    BcInstruction& inst = program_.code[index];
    inst.lit = PackBranchTargets(UnpackThenTarget(inst.lit), target);
  }
  void TranslateBlock(int label);
  void TranslateInstruction(const llvm::Instruction& inst);
  void TranslateBinary(const llvm::BinaryOperator& bin);
  void TranslateICmp(const llvm::ICmpInst& cmp);
  void TranslateFCmp(const llvm::FCmpInst& cmp);
  void TranslateCast(const llvm::CastInst& cast);
  void TranslateLoad(const llvm::LoadInst& load);
  void TranslateStore(const llvm::StoreInst& store);
  void TranslateGep(const llvm::GetElementPtrInst& gep);
  void TranslateCall(const llvm::CallInst& call);
  void TranslateOverflowIntrinsic(const llvm::CallInst& call);
  void TranslateExtractValue(const llvm::ExtractValueInst& ev);
  void TranslateSelect(const llvm::SelectInst& sel);
  void TranslateTerminator(const llvm::Instruction& term);

  /// Emits one fused compare-and-branch superinstruction for a compare
  /// planned in fused_cmp_ (picking the load-fused / immediate / register
  /// form) and returns its instruction index. Branch targets are left for
  /// the caller to patch.
  uint32_t EmitFusedCmpBranch(const llvm::CmpInst* cmp, Opcode op);
  /// Emits one element of a short-circuit branch chain: the fused form when
  /// the leaf was planned for compare fusion, otherwise a plain condbr on
  /// the leaf's register.
  uint32_t EmitChainElement(const llvm::Value* leaf);

  /// Decomposes a GEP into (base, index value or null, scale, const offset).
  struct GepParts {
    const llvm::Value* base;
    const llvm::Value* index;  // nullptr if fully constant
    uint32_t scale;
    int32_t offset;
  };
  GepParts DecomposeGep(const llvm::GetElementPtrInst& gep);

  /// Emits the phi copies for edge (from -> to) as a parallel copy.
  void EmitPhiCopies(const llvm::BasicBlock* from, const llvm::BasicBlock* to);

  /// Emits a branch whose target is patched to `target`'s block start.
  void EmitBranchTo(const llvm::BasicBlock* target);

  /// Registers that instruction index `index`'s field needs patching to the
  /// start of `block` (field: 0 -> whole lit, 1 -> then half of the packed
  /// lit, 2 -> else half).
  void AddFixup(uint32_t index, int field, const llvm::BasicBlock* block) {
    fixups_.push_back({index, field, cfg_.LabelOf(block)});
  }

  const llvm::Function& fn_;
  const RuntimeRegistry& registry_;
  TranslatorOptions options_;
  CfgAnalysis cfg_;
  LivenessInfo live_;
  RegisterAllocator alloc_;
  BcProgram program_;

  llvm::DenseMap<const llvm::Value*, uint32_t> value_reg_;
  llvm::DenseMap<const llvm::Value*, uint32_t> pair_flag_reg_;
  std::unordered_map<uint64_t, uint32_t> const_slots_;  // keys may be ~0, unsafe for DenseMap
  llvm::DenseSet<const llvm::Instruction*> subsumed_;
  llvm::DenseMap<const llvm::Instruction*, FusedOverflow> fused_overflow_;
  /// Single-use compares fused into their block's condbr (compare-and-branch
  /// superinstructions); value = the fused opcode.
  llvm::DenseMap<const llvm::Instruction*, Opcode> fused_cmp_;
  /// Fused compares whose indexed-load operand additionally folds into the
  /// superinstruction (br_load_*); value = the subsumed load.
  llvm::DenseMap<const llvm::Instruction*, const llvm::LoadInst*>
      fused_cmp_load_;
  /// Conditional branches whose condition is a single-use same-block and-tree
  /// of i1 predicates: the terminator emits a short-circuit chain of
  /// branches (one per leaf, in source order) instead of materializing the
  /// conjunction.
  llvm::DenseMap<const llvm::Instruction*, std::vector<const llvm::Value*>>
      branch_chains_;
  /// The subsumed `and` nodes of planned branch chains. Non-fused chain
  /// leaves are read (as plain condbr conditions) when the chain is emitted
  /// at the terminator, so these count as register-reading users in the
  /// block-local use accounting.
  llvm::DenseSet<const llvm::Instruction*> chain_ands_;
  /// Value extracts of fused overflow pairs: subsumed (they emit no code)
  /// yet they own the fused op's destination register.
  llvm::DenseSet<const llvm::Instruction*> fused_value_extracts_;
  llvm::DenseMap<const llvm::Instruction*, int> local_uses_;
  llvm::DenseSet<const llvm::Instruction*> released_;
  std::vector<std::vector<const llvm::Value*>> alloc_at_entry_;   // per label
  std::vector<std::vector<const llvm::Value*>> release_at_end_;   // per label
  std::vector<uint32_t> block_start_;

  struct Fixup {
    uint32_t index;
    int field;
    int target_label;
  };
  std::vector<Fixup> fixups_;
  uint32_t scratch_reg_ = 0;
  bool scratch_allocated_ = false;
  int current_label_ = 0;
};

bool IsOverflowIntrinsic(const llvm::CallInst& call,
                         llvm::Intrinsic::ID* id_out) {
  const llvm::Function* callee = call.getCalledFunction();
  if (callee == nullptr) return false;
  llvm::Intrinsic::ID id = callee->getIntrinsicID();
  if (id == llvm::Intrinsic::sadd_with_overflow ||
      id == llvm::Intrinsic::ssub_with_overflow ||
      id == llvm::Intrinsic::smul_with_overflow) {
    *id_out = id;
    return true;
  }
  return false;
}

/// Maps a fusable compare to its compare-and-branch superinstruction;
/// returns false when the predicate/width has no fused form.
bool FusedCmpBranchOpcode(const llvm::CmpInst& cmp, Opcode* out) {
  if (const auto* icmp = llvm::dyn_cast<llvm::ICmpInst>(&cmp)) {
    const llvm::Type* t = icmp->getOperand(0)->getType();
    bool is32;
    if (t->isIntegerTy(32)) {
      is32 = true;
    } else if (t->isIntegerTy(64) || t->isPointerTy()) {
      is32 = false;
    } else {
      return false;
    }
    switch (icmp->getPredicate()) {
      case llvm::CmpInst::ICMP_EQ:
        *out = is32 ? Opcode::k_br_eq_i32 : Opcode::k_br_eq_i64; return true;
      case llvm::CmpInst::ICMP_NE:
        *out = is32 ? Opcode::k_br_ne_i32 : Opcode::k_br_ne_i64; return true;
      case llvm::CmpInst::ICMP_SLT:
        *out = is32 ? Opcode::k_br_slt_i32 : Opcode::k_br_slt_i64; return true;
      case llvm::CmpInst::ICMP_SLE:
        *out = is32 ? Opcode::k_br_sle_i32 : Opcode::k_br_sle_i64; return true;
      case llvm::CmpInst::ICMP_SGT:
        *out = is32 ? Opcode::k_br_sgt_i32 : Opcode::k_br_sgt_i64; return true;
      case llvm::CmpInst::ICMP_SGE:
        *out = is32 ? Opcode::k_br_sge_i32 : Opcode::k_br_sge_i64; return true;
      case llvm::CmpInst::ICMP_ULT:
        *out = is32 ? Opcode::k_br_ult_i32 : Opcode::k_br_ult_i64; return true;
      case llvm::CmpInst::ICMP_ULE:
        *out = is32 ? Opcode::k_br_ule_i32 : Opcode::k_br_ule_i64; return true;
      case llvm::CmpInst::ICMP_UGT:
        *out = is32 ? Opcode::k_br_ugt_i32 : Opcode::k_br_ugt_i64; return true;
      case llvm::CmpInst::ICMP_UGE:
        *out = is32 ? Opcode::k_br_uge_i32 : Opcode::k_br_uge_i64; return true;
      default:
        return false;
    }
  }
  if (const auto* fcmp = llvm::dyn_cast<llvm::FCmpInst>(&cmp)) {
    if (!fcmp->getOperand(0)->getType()->isDoubleTy()) return false;
    switch (fcmp->getPredicate()) {
      case llvm::CmpInst::FCMP_OLT: *out = Opcode::k_br_folt_f64; return true;
      case llvm::CmpInst::FCMP_OGT: *out = Opcode::k_br_fogt_f64; return true;
      default:
        return false;
    }
  }
  return false;
}

/// Maps a fused compare-and-branch opcode to its mirrored form (operands
/// swapped: c < x  ==  x > c), so a constant LHS can still use the
/// immediate encoding.
bool MirrorCmpBranchOpcode(Opcode op, Opcode* out) {
  switch (op) {
    case Opcode::k_br_eq_i32: case Opcode::k_br_eq_i64:
    case Opcode::k_br_ne_i32: case Opcode::k_br_ne_i64:
      *out = op; return true;
    case Opcode::k_br_slt_i32: *out = Opcode::k_br_sgt_i32; return true;
    case Opcode::k_br_slt_i64: *out = Opcode::k_br_sgt_i64; return true;
    case Opcode::k_br_sle_i32: *out = Opcode::k_br_sge_i32; return true;
    case Opcode::k_br_sle_i64: *out = Opcode::k_br_sge_i64; return true;
    case Opcode::k_br_sgt_i32: *out = Opcode::k_br_slt_i32; return true;
    case Opcode::k_br_sgt_i64: *out = Opcode::k_br_slt_i64; return true;
    case Opcode::k_br_sge_i32: *out = Opcode::k_br_sle_i32; return true;
    case Opcode::k_br_sge_i64: *out = Opcode::k_br_sle_i64; return true;
    case Opcode::k_br_ult_i32: *out = Opcode::k_br_ugt_i32; return true;
    case Opcode::k_br_ult_i64: *out = Opcode::k_br_ugt_i64; return true;
    case Opcode::k_br_ule_i32: *out = Opcode::k_br_uge_i32; return true;
    case Opcode::k_br_ule_i64: *out = Opcode::k_br_uge_i64; return true;
    case Opcode::k_br_ugt_i32: *out = Opcode::k_br_ult_i32; return true;
    case Opcode::k_br_ugt_i64: *out = Opcode::k_br_ult_i64; return true;
    case Opcode::k_br_uge_i32: *out = Opcode::k_br_ule_i32; return true;
    case Opcode::k_br_uge_i64: *out = Opcode::k_br_ule_i64; return true;
    case Opcode::k_br_folt_f64: *out = Opcode::k_br_fogt_f64; return true;
    case Opcode::k_br_fogt_f64: *out = Opcode::k_br_folt_f64; return true;
    default: return false;
  }
}

/// Maps a register-register fused compare-and-branch to its immediate form.
bool ImmCmpBranchOpcode(Opcode op, Opcode* out) {
  switch (op) {
#define AQE_IMM_CASE(name) \
  case Opcode::k_##name: *out = Opcode::k_##name##_imm; return true;
    AQE_IMM_CASE(br_eq_i32) AQE_IMM_CASE(br_eq_i64)
    AQE_IMM_CASE(br_ne_i32) AQE_IMM_CASE(br_ne_i64)
    AQE_IMM_CASE(br_slt_i32) AQE_IMM_CASE(br_slt_i64)
    AQE_IMM_CASE(br_sle_i32) AQE_IMM_CASE(br_sle_i64)
    AQE_IMM_CASE(br_sgt_i32) AQE_IMM_CASE(br_sgt_i64)
    AQE_IMM_CASE(br_sge_i32) AQE_IMM_CASE(br_sge_i64)
    AQE_IMM_CASE(br_ult_i32) AQE_IMM_CASE(br_ult_i64)
    AQE_IMM_CASE(br_ule_i32) AQE_IMM_CASE(br_ule_i64)
    AQE_IMM_CASE(br_ugt_i32) AQE_IMM_CASE(br_ugt_i64)
    AQE_IMM_CASE(br_uge_i32) AQE_IMM_CASE(br_uge_i64)
    AQE_IMM_CASE(br_folt_f64) AQE_IMM_CASE(br_fogt_f64)
#undef AQE_IMM_CASE
    default: return false;
  }
}

/// Maps a fused compare-and-branch opcode to the form that also swallows the
/// compare's indexed load (br_load_*, reg or imm RHS). Only the integer
/// forms exist: the load supplies the LHS, and f64 loads keep the two-op
/// path (no br_load_*_f64 — scan filters compare integer columns).
bool LoadCmpBranchOpcode(Opcode op, bool imm, Opcode* out) {
  switch (op) {
#define AQE_LCB_CASE(pred)                                              \
  case Opcode::k_br_##pred:                                             \
    *out = imm ? Opcode::k_br_load_##pred##_imm : Opcode::k_br_load_##pred; \
    return true;
    AQE_LCB_CASE(eq_i32) AQE_LCB_CASE(eq_i64)
    AQE_LCB_CASE(ne_i32) AQE_LCB_CASE(ne_i64)
    AQE_LCB_CASE(slt_i32) AQE_LCB_CASE(slt_i64)
    AQE_LCB_CASE(sle_i32) AQE_LCB_CASE(sle_i64)
    AQE_LCB_CASE(sgt_i32) AQE_LCB_CASE(sgt_i64)
    AQE_LCB_CASE(sge_i32) AQE_LCB_CASE(sge_i64)
    AQE_LCB_CASE(ult_i32) AQE_LCB_CASE(ult_i64)
    AQE_LCB_CASE(ule_i32) AQE_LCB_CASE(ule_i64)
    AQE_LCB_CASE(ugt_i32) AQE_LCB_CASE(ugt_i64)
    AQE_LCB_CASE(uge_i32) AQE_LCB_CASE(uge_i64)
#undef AQE_LCB_CASE
    default: return false;
  }
}

/// A plain integer/double constant whose raw bits can live in a literal-pool
/// immediate. Returns true and sets `bits`; false for every other constant
/// kind (pointers, constant expressions — those keep the register path).
bool FusableImmediateBits(const llvm::Value* v, uint64_t* bits) {
  if (const auto* ci = llvm::dyn_cast<llvm::ConstantInt>(v)) {
    *bits = ci->getZExtValue();
    return true;
  }
  if (const auto* cf = llvm::dyn_cast<llvm::ConstantFP>(v)) {
    *bits = cf->getValueAPF().bitcastToAPInt().getZExtValue();
    return true;
  }
  return false;
}

void Translator::PlanCmpBranchFusion() {
  if (!options_.fuse_cmp_branches) return;
  for (const llvm::BasicBlock& bb : fn_) {
    if (cfg_.LabelOf(&bb) < 0) continue;
    const auto* br = llvm::dyn_cast<llvm::BranchInst>(bb.getTerminator());
    // The overflow-pair fusion may already own this terminator.
    if (br == nullptr || !br->isConditional() || subsumed_.contains(br)) {
      continue;
    }
    const auto* cmp = llvm::dyn_cast<llvm::CmpInst>(br->getCondition());
    if (cmp == nullptr || cmp->getParent() != &bb || !cmp->hasOneUse()) {
      continue;
    }
    Opcode op;
    if (!FusedCmpBranchOpcode(*cmp, &op)) continue;
    fused_cmp_[cmp] = op;
    subsumed_.insert(cmp);  // the terminator emits the fused branch
  }
}

void Translator::PlanBranchChainFusion() {
  // A filter like `a >= x && a < y && b < z` reaches the translator as an
  // and-tree feeding one condbr: the compares all execute, the `and`s fold
  // them into one bit, and only the loop-bound compare fuses. Splitting the
  // conjunction into a chain of branches — each leaf tests and jumps, a
  // failing term exits the row immediately — lets every fusable leaf become
  // its own br_*/br_load_* superinstruction and short-circuits the
  // evaluation. Done here rather than in codegen so the JIT keeps the
  // branch-free and-tree IR, which LLVM can vectorize.
  if (!options_.fuse_cmp_branches || !options_.fuse_branch_chains) return;
  for (const llvm::BasicBlock& bb : fn_) {
    if (cfg_.LabelOf(&bb) < 0) continue;
    const auto* br = llvm::dyn_cast<llvm::BranchInst>(bb.getTerminator());
    if (br == nullptr || !br->isConditional() || subsumed_.contains(br)) {
      continue;
    }
    // An interior node must be consumed only by its parent (or the branch)
    // and live in this block, so folding it away is invisible elsewhere.
    auto is_chain_and = [&](const llvm::Value* v) -> const llvm::BinaryOperator* {
      const auto* bin = llvm::dyn_cast<llvm::BinaryOperator>(v);
      if (bin != nullptr && bin->getOpcode() == llvm::Instruction::And &&
          bin->getType()->isIntegerTy(1) && bin->getParent() == &bb &&
          bin->hasOneUse() && !subsumed_.contains(bin)) {
        return bin;
      }
      return nullptr;
    };
    if (is_chain_and(br->getCondition()) == nullptr) continue;
    // Flatten the tree left-to-right. Leaves are arbitrary i1 values: a
    // fusable single-use compare becomes a fused chain element; anything
    // else still computes in the block body and chains via a plain condbr.
    std::vector<const llvm::BinaryOperator*> nodes;
    std::vector<const llvm::Value*> leaves;
    llvm::SmallVector<const llvm::Value*, 8> work;
    work.push_back(br->getCondition());
    while (!work.empty()) {
      const llvm::Value* v = work.pop_back_val();
      if (const llvm::BinaryOperator* bin = is_chain_and(v)) {
        nodes.push_back(bin);
        work.push_back(bin->getOperand(1));
        work.push_back(bin->getOperand(0));
        continue;
      }
      leaves.push_back(v);
    }
    for (const llvm::BinaryOperator* node : nodes) {
      subsumed_.insert(node);
      chain_ands_.insert(node);
    }
    for (const llvm::Value* leaf : leaves) {
      const auto* cmp = llvm::dyn_cast<llvm::CmpInst>(leaf);
      Opcode op;
      if (cmp == nullptr || cmp->getParent() != &bb || !cmp->hasOneUse() ||
          subsumed_.contains(cmp) || !FusedCmpBranchOpcode(*cmp, &op)) {
        continue;
      }
      fused_cmp_[cmp] = op;  // load/imm planning now applies to it too
      subsumed_.insert(cmp);
    }
    branch_chains_[br] = std::move(leaves);
    // The conjunction nodes fold away entirely; fused leaves are counted
    // when their chain element is emitted.
    program_.fused_instructions += static_cast<uint32_t>(nodes.size());
  }
}

void Translator::PlanLoadCmpBranchFusion() {
  // Third superinstruction tier: a compare already planned for
  // compare-and-branch fusion whose LHS (or, mirrored, RHS) is a single-use
  // indexed load of the matching width folds the load in too — the exact
  // `buf[i] <pred> x` shape of every scan-filter loop. The br_load_*
  // encoding has no scale/offset field (lit carries the branch targets), so
  // only the implied-scale, zero-offset GEP shape qualifies.
  if (!options_.fuse_macro_ops || !options_.fuse_cmp_branches ||
      !options_.fuse_load_cmp_branches) {
    return;
  }
  for (const auto& [cmp_inst, op] : fused_cmp_) {
    const auto* cmp = llvm::cast<llvm::CmpInst>(cmp_inst);
    const llvm::BasicBlock* bb = cmp->getParent();
    auto fusable_load = [&](const llvm::Value* v) -> const llvm::LoadInst* {
      const auto* load = llvm::dyn_cast<llvm::LoadInst>(v);
      if (load == nullptr || load->getParent() != bb || !load->hasOneUse() ||
          subsumed_.contains(load)) {
        return nullptr;
      }
      const llvm::Type* ty = load->getType();
      if (!ty->isIntegerTy(32) && !ty->isIntegerTy(64)) return nullptr;
      const auto* gep =
          llvm::dyn_cast<llvm::GetElementPtrInst>(load->getPointerOperand());
      // Only an already-fused single-index GEP whose element type equals the
      // loaded type (scale == width, offset == 0) fits the encoding; a
      // constant index would fold into an offset instead.
      if (gep == nullptr || !subsumed_.contains(gep) ||
          gep->getNumIndices() != 1 || gep->getSourceElementType() != ty ||
          llvm::isa<llvm::ConstantInt>(gep->getOperand(1))) {
        return nullptr;
      }
      // Fusing moves the load's read to the terminator; nothing in between
      // may write memory.
      for (const llvm::Instruction* cur = load->getNextNode();
           cur != bb->getTerminator(); cur = cur->getNextNode()) {
        if (cur->mayWriteToMemory()) return nullptr;
      }
      return load;
    };
    Opcode effective = op;
    const llvm::LoadInst* load = fusable_load(cmp->getOperand(0));
    if (load == nullptr) {
      // A load on the RHS works through the mirrored predicate
      // (x < buf[i]  ==  buf[i] > x).
      Opcode mirrored;
      if (MirrorCmpBranchOpcode(op, &mirrored)) {
        effective = mirrored;
        load = fusable_load(cmp->getOperand(1));
      }
    }
    Opcode unused;
    if (load == nullptr || !LoadCmpBranchOpcode(effective, false, &unused)) {
      continue;
    }
    fused_cmp_load_[cmp] = load;
    subsumed_.insert(load);  // the terminator performs the load
  }
}

void Translator::PlanFusion() {
  if (!options_.fuse_macro_ops) return;
  for (const llvm::BasicBlock& bb : fn_) {
    if (cfg_.LabelOf(&bb) < 0) continue;
    for (const llvm::Instruction& inst : bb) {
      // GEP + single load/store user in the same block fuses into the
      // memory access.
      if (const auto* gep = llvm::dyn_cast<llvm::GetElementPtrInst>(&inst)) {
        if (!gep->hasOneUse()) continue;
        const auto* user = llvm::dyn_cast<llvm::Instruction>(*gep->user_begin());
        if (user == nullptr || user->getParent() != &bb) continue;
        bool is_load = llvm::isa<llvm::LoadInst>(user);
        bool is_store = llvm::isa<llvm::StoreInst>(user) &&
                        llvm::cast<llvm::StoreInst>(user)->getPointerOperand()
                            == gep;
        if (is_load || is_store) subsumed_.insert(gep);
        continue;
      }
      // Overflow-check sequence: pair call + extracts + condbr on the flag.
      const auto* call = llvm::dyn_cast<llvm::CallInst>(&inst);
      llvm::Intrinsic::ID id;
      if (call == nullptr || !IsOverflowIntrinsic(*call, &id)) continue;
      const llvm::ExtractValueInst* value_extract = nullptr;
      const llvm::ExtractValueInst* flag_extract = nullptr;
      bool fusable = true;
      for (const llvm::User* user : call->users()) {
        const auto* ev = llvm::dyn_cast<llvm::ExtractValueInst>(user);
        if (ev == nullptr || ev->getParent() != &bb ||
            ev->getNumIndices() != 1) {
          fusable = false;
          break;
        }
        if (ev->getIndices()[0] == 0) {
          if (value_extract != nullptr) fusable = false;
          value_extract = ev;
        } else {
          if (flag_extract != nullptr) fusable = false;
          flag_extract = ev;
        }
      }
      if (!fusable || flag_extract == nullptr) continue;
      // The flag's only user must be this block's terminating condbr.
      if (!flag_extract->hasOneUse()) continue;
      const auto* br =
          llvm::dyn_cast<llvm::BranchInst>(*flag_extract->user_begin());
      if (br == nullptr || br != bb.getTerminator() || !br->isConditional() ||
          br->getCondition() != flag_extract) {
        continue;
      }
      // Between the call and the terminator only this call's extracts may
      // appear: the fused op branches early, so nothing with side effects
      // may be skipped.
      bool clean = true;
      for (const llvm::Instruction* cursor = call->getNextNode();
           cursor != br; cursor = cursor->getNextNode()) {
        const auto* ev = llvm::dyn_cast<llvm::ExtractValueInst>(cursor);
        if (ev == nullptr || ev->getAggregateOperand() != call) {
          clean = false;
          break;
        }
      }
      if (!clean) continue;
      // The overflow side must not need phi copies (our codegen's overflow
      // blocks are plain error-raising blocks).
      const llvm::BasicBlock* ovf_block = br->getSuccessor(0);
      const llvm::BasicBlock* cont_block = br->getSuccessor(1);
      if (llvm::isa<llvm::PHINode>(ovf_block->front())) continue;
      FusedOverflow plan;
      plan.value_extract = value_extract;
      plan.overflow_block = ovf_block;
      plan.continue_block = cont_block;
      fused_overflow_[call] = plan;
      subsumed_.insert(call);  // the call site emits the fused op
      if (value_extract != nullptr) {
        subsumed_.insert(value_extract);
        fused_value_extracts_.insert(value_extract);
      }
      subsumed_.insert(flag_extract);
      subsumed_.insert(br);
      program_.fused_instructions += 3;  // extracts + condbr folded
    }
  }
}

void Translator::CountBlockLocalUses() {
  // For values confined to one block we release their register after the
  // last in-block use ("release them when the last user of that value is
  // gone", §IV-B) instead of waiting for the block end. Count the uses a
  // translated program will actually perform.
  for (const llvm::BasicBlock& bb : fn_) {
    if (cfg_.LabelOf(&bb) < 0) continue;
    for (const llvm::Instruction& inst : bb) {
      if (inst.getType()->isVoidTy()) continue;
      if (!live_.tracked(&inst) || !IsSingleBlock(&inst)) continue;
      // Only values that actually own a register participate; fused GEPs,
      // flag extracts and fused pair calls never materialize one.
      if (subsumed_.contains(&inst) && !fused_value_extracts_.contains(&inst)) {
        continue;
      }
      int count = 0;
      for (const llvm::Use& use : inst.uses()) {
        const auto* user = llvm::cast<llvm::Instruction>(use.getUser());
        if (subsumed_.contains(user)) {
          // Subsumed instructions mostly vanish, but four kinds still read
          // their operands when their fused replacement is emitted: fused
          // GEPs (re-read at the fusing memory op), fused overflow calls
          // (the macro op reads both addends), fused compares (the
          // compare-and-branch superinstruction reads both operands at the
          // terminator), and branch-chain `and` nodes (a non-fused chain
          // leaf's register is read by its condbr element). Fused extracts
          // and condbrs never read the pair register.
          if (llvm::isa<llvm::GetElementPtrInst>(user) ||
              fused_overflow_.count(user) != 0 ||
              fused_cmp_.count(user) != 0 ||
              chain_ands_.contains(user)) {
            ++count;
          }
          continue;
        }
        ++count;
      }
      local_uses_[&inst] = count;
    }
  }
}

void Translator::BuildRangeLists() {
  int n = cfg_.num_blocks();
  alloc_at_entry_.assign(static_cast<size_t>(n), {});
  release_at_end_.assign(static_cast<size_t>(n), {});
  for (const llvm::Value* v : live_.values()) {
    bool is_arg = llvm::isa<llvm::Argument>(v);
    if (const auto* inst = llvm::dyn_cast<llvm::Instruction>(v)) {
      // Subsumed instructions own no register — except the value extract of
      // a fused pair, which owns the fused op's destination.
      if (subsumed_.contains(inst) && !fused_value_extracts_.contains(inst)) {
        continue;
      }
    }
    const LiveRange& r = live_.range(v);
    if (!is_arg && IsSingleBlock(v)) continue;  // allocated at definition
    alloc_at_entry_[static_cast<size_t>(r.start)].push_back(v);
    release_at_end_[static_cast<size_t>(r.end)].push_back(v);
  }
}

uint32_t Translator::ConstSlot(uint64_t bits) {
  if (bits == 0) return 0;
  if (bits == 1) return 1;
  auto it = const_slots_.find(bits);
  if (it != const_slots_.end()) return it->second;
  uint32_t offset = alloc_.AllocPermanent();
  const_slots_[bits] = offset;
  program_.constant_pool.push_back({offset, bits});
  return offset;
}

uint32_t Translator::ConstOperandSlot(const llvm::Constant* c) {
  if (const auto* ci = llvm::dyn_cast<llvm::ConstantInt>(c)) {
    return ConstSlot(ci->getZExtValue());
  }
  if (const auto* cf = llvm::dyn_cast<llvm::ConstantFP>(c)) {
    return ConstSlot(cf->getValueAPF().bitcastToAPInt().getZExtValue());
  }
  if (llvm::isa<llvm::ConstantPointerNull>(c) ||
      llvm::isa<llvm::UndefValue>(c)) {
    return 0;
  }
  // Embedded runtime pointers: inttoptr/bitcast constant expressions.
  if (const auto* ce = llvm::dyn_cast<llvm::ConstantExpr>(c)) {
    if (ce->getOpcode() == llvm::Instruction::IntToPtr ||
        ce->getOpcode() == llvm::Instruction::PtrToInt ||
        ce->getOpcode() == llvm::Instruction::BitCast) {
      return ConstOperandSlot(llvm::cast<llvm::Constant>(ce->getOperand(0)));
    }
  }
  AQE_UNREACHABLE("unsupported constant kind in bytecode translation");
}

uint32_t Translator::GetReg(const llvm::Value* v) {
  if (const auto* c = llvm::dyn_cast<llvm::Constant>(v)) {
    return ConstOperandSlot(c);
  }
  auto it = value_reg_.find(v);
  AQE_CHECK_MSG(it != value_reg_.end(), "operand without register");
  return it->second;
}

uint32_t Translator::UseReg(const llvm::Value* v) {
  uint32_t reg = GetReg(v);
  const auto* inst = llvm::dyn_cast<llvm::Instruction>(v);
  if (inst != nullptr) {
    auto it = local_uses_.find(inst);
    if (it != local_uses_.end()) {
      AQE_CHECK_MSG(it->second > 0, "block-local use count underflow");
      if (--it->second == 0) ReleaseValue(v);
    }
  }
  return reg;
}

void Translator::ReleaseValue(const llvm::Value* v) {
  const auto* inst = llvm::dyn_cast<llvm::Instruction>(v);
  if (inst != nullptr) {
    if (released_.contains(inst)) return;
    released_.insert(inst);
  }
  const LiveRange& r = live_.range(v);
  auto it = value_reg_.find(v);
  if (it == value_reg_.end()) return;
  alloc_.Release(it->second, r.start, r.end);
  auto flag_it = pair_flag_reg_.find(v);
  if (flag_it != pair_flag_reg_.end()) {
    alloc_.Release(flag_it->second, r.start, r.end);
  }
}

// --- per-instruction translation ---------------------------------------------

void Translator::TranslateBinary(const llvm::BinaryOperator& bin) {
  TypeClass tc = ClassifyType(bin.getType());
  uint32_t a2 = UseReg(bin.getOperand(0));
  uint32_t a3 = UseReg(bin.getOperand(1));
  uint32_t a1 = value_reg_.lookup(&bin);
  Opcode op;
  const bool is32 = tc == TypeClass::kI32;
  switch (bin.getOpcode()) {
    case llvm::Instruction::Add:
      op = is32 ? Opcode::k_add_i32 : Opcode::k_add_i64; break;
    case llvm::Instruction::Sub:
      op = is32 ? Opcode::k_sub_i32 : Opcode::k_sub_i64; break;
    case llvm::Instruction::Mul:
      op = is32 ? Opcode::k_mul_i32 : Opcode::k_mul_i64; break;
    case llvm::Instruction::SDiv:
      op = is32 ? Opcode::k_sdiv_i32 : Opcode::k_sdiv_i64; break;
    case llvm::Instruction::UDiv:
      op = is32 ? Opcode::k_udiv_i32 : Opcode::k_udiv_i64; break;
    case llvm::Instruction::SRem:
      op = is32 ? Opcode::k_srem_i32 : Opcode::k_srem_i64; break;
    case llvm::Instruction::URem:
      op = is32 ? Opcode::k_urem_i32 : Opcode::k_urem_i64; break;
    case llvm::Instruction::And:
      op = tc == TypeClass::kI1 ? Opcode::k_and_i1
           : is32 ? Opcode::k_and_i32 : Opcode::k_and_i64;
      break;
    case llvm::Instruction::Or:
      op = tc == TypeClass::kI1 ? Opcode::k_or_i1
           : is32 ? Opcode::k_or_i32 : Opcode::k_or_i64;
      break;
    case llvm::Instruction::Xor:
      op = tc == TypeClass::kI1 ? Opcode::k_xor_i1
           : is32 ? Opcode::k_xor_i32 : Opcode::k_xor_i64;
      break;
    case llvm::Instruction::Shl:
      op = is32 ? Opcode::k_shl_i32 : Opcode::k_shl_i64; break;
    case llvm::Instruction::LShr:
      op = is32 ? Opcode::k_lshr_i32 : Opcode::k_lshr_i64; break;
    case llvm::Instruction::AShr:
      op = is32 ? Opcode::k_ashr_i32 : Opcode::k_ashr_i64; break;
    case llvm::Instruction::FAdd: op = Opcode::k_fadd_f64; break;
    case llvm::Instruction::FSub: op = Opcode::k_fsub_f64; break;
    case llvm::Instruction::FMul: op = Opcode::k_fmul_f64; break;
    case llvm::Instruction::FDiv: op = Opcode::k_fdiv_f64; break;
    default:
      AQE_UNREACHABLE("unsupported binary operator");
  }
  Emit(op, a1, a2, a3);
}

void Translator::TranslateICmp(const llvm::ICmpInst& cmp) {
  TypeClass tc = ClassifyType(cmp.getOperand(0)->getType());
  AQE_CHECK_MSG(tc == TypeClass::kI32 || tc == TypeClass::kI64,
                "icmp on unsupported width");
  const bool is32 = tc == TypeClass::kI32;
  uint32_t a2 = UseReg(cmp.getOperand(0));
  uint32_t a3 = UseReg(cmp.getOperand(1));
  uint32_t a1 = value_reg_.lookup(&cmp);
  Opcode op;
  switch (cmp.getPredicate()) {
    case llvm::CmpInst::ICMP_EQ:
      op = is32 ? Opcode::k_icmp_eq_i32 : Opcode::k_icmp_eq_i64; break;
    case llvm::CmpInst::ICMP_NE:
      op = is32 ? Opcode::k_icmp_ne_i32 : Opcode::k_icmp_ne_i64; break;
    case llvm::CmpInst::ICMP_SLT:
      op = is32 ? Opcode::k_icmp_slt_i32 : Opcode::k_icmp_slt_i64; break;
    case llvm::CmpInst::ICMP_SLE:
      op = is32 ? Opcode::k_icmp_sle_i32 : Opcode::k_icmp_sle_i64; break;
    case llvm::CmpInst::ICMP_SGT:
      op = is32 ? Opcode::k_icmp_sgt_i32 : Opcode::k_icmp_sgt_i64; break;
    case llvm::CmpInst::ICMP_SGE:
      op = is32 ? Opcode::k_icmp_sge_i32 : Opcode::k_icmp_sge_i64; break;
    case llvm::CmpInst::ICMP_ULT:
      op = is32 ? Opcode::k_icmp_ult_i32 : Opcode::k_icmp_ult_i64; break;
    case llvm::CmpInst::ICMP_ULE:
      op = is32 ? Opcode::k_icmp_ule_i32 : Opcode::k_icmp_ule_i64; break;
    case llvm::CmpInst::ICMP_UGT:
      op = is32 ? Opcode::k_icmp_ugt_i32 : Opcode::k_icmp_ugt_i64; break;
    case llvm::CmpInst::ICMP_UGE:
      op = is32 ? Opcode::k_icmp_uge_i32 : Opcode::k_icmp_uge_i64; break;
    default:
      AQE_UNREACHABLE("unsupported icmp predicate");
  }
  Emit(op, a1, a2, a3);
}

void Translator::TranslateFCmp(const llvm::FCmpInst& cmp) {
  uint32_t a2 = UseReg(cmp.getOperand(0));
  uint32_t a3 = UseReg(cmp.getOperand(1));
  uint32_t a1 = value_reg_.lookup(&cmp);
  Opcode op;
  switch (cmp.getPredicate()) {
    case llvm::CmpInst::FCMP_OEQ: op = Opcode::k_fcmp_oeq_f64; break;
    case llvm::CmpInst::FCMP_ONE: op = Opcode::k_fcmp_one_f64; break;
    case llvm::CmpInst::FCMP_OLT: op = Opcode::k_fcmp_olt_f64; break;
    case llvm::CmpInst::FCMP_OLE: op = Opcode::k_fcmp_ole_f64; break;
    case llvm::CmpInst::FCMP_OGT: op = Opcode::k_fcmp_ogt_f64; break;
    case llvm::CmpInst::FCMP_OGE: op = Opcode::k_fcmp_oge_f64; break;
    case llvm::CmpInst::FCMP_UNE: op = Opcode::k_fcmp_une_f64; break;
    default:
      AQE_UNREACHABLE("unsupported fcmp predicate");
  }
  Emit(op, a1, a2, a3);
}

void Translator::TranslateCast(const llvm::CastInst& cast) {
  TypeClass from = ClassifyType(cast.getSrcTy());
  TypeClass to = ClassifyType(cast.getDestTy());
  uint32_t a2 = UseReg(cast.getOperand(0));
  uint32_t a1 = value_reg_.lookup(&cast);
  auto pick = [&](Opcode op) { Emit(op, a1, a2); };
  switch (cast.getOpcode()) {
    case llvm::Instruction::SExt:
      if (from == TypeClass::kI1 && to == TypeClass::kI64) return pick(Opcode::k_sext_i1_i64);
      if (from == TypeClass::kI8 && to == TypeClass::kI64) return pick(Opcode::k_sext_i8_i64);
      if (from == TypeClass::kI8 && to == TypeClass::kI32) return pick(Opcode::k_sext_i8_i32);
      if (from == TypeClass::kI16 && to == TypeClass::kI64) return pick(Opcode::k_sext_i16_i64);
      if (from == TypeClass::kI16 && to == TypeClass::kI32) return pick(Opcode::k_sext_i16_i32);
      if (from == TypeClass::kI32 && to == TypeClass::kI64) return pick(Opcode::k_sext_i32_i64);
      break;
    case llvm::Instruction::ZExt:
      if (from == TypeClass::kI1 && to == TypeClass::kI8) return pick(Opcode::k_zext_i1_i8);
      if (from == TypeClass::kI1 && to == TypeClass::kI32) return pick(Opcode::k_zext_i1_i32);
      if (from == TypeClass::kI1 && to == TypeClass::kI64) return pick(Opcode::k_zext_i1_i64);
      if (from == TypeClass::kI8 && to == TypeClass::kI32) return pick(Opcode::k_zext_i8_i32);
      if (from == TypeClass::kI8 && to == TypeClass::kI64) return pick(Opcode::k_zext_i8_i64);
      if (from == TypeClass::kI16 && to == TypeClass::kI32) return pick(Opcode::k_zext_i16_i32);
      if (from == TypeClass::kI16 && to == TypeClass::kI64) return pick(Opcode::k_zext_i16_i64);
      if (from == TypeClass::kI32 && to == TypeClass::kI64) return pick(Opcode::k_zext_i32_i64);
      break;
    case llvm::Instruction::Trunc:
      if (from == TypeClass::kI64 && to == TypeClass::kI32) return pick(Opcode::k_trunc_i64_i32);
      if (from == TypeClass::kI64 && to == TypeClass::kI16) return pick(Opcode::k_trunc_i64_i16);
      if (from == TypeClass::kI64 && to == TypeClass::kI8) return pick(Opcode::k_trunc_i64_i8);
      if (from == TypeClass::kI64 && to == TypeClass::kI1) return pick(Opcode::k_trunc_i64_i1);
      if (from == TypeClass::kI32 && to == TypeClass::kI16) return pick(Opcode::k_trunc_i32_i16);
      if (from == TypeClass::kI32 && to == TypeClass::kI8) return pick(Opcode::k_trunc_i32_i8);
      if (from == TypeClass::kI32 && to == TypeClass::kI1) return pick(Opcode::k_trunc_i32_i1);
      break;
    case llvm::Instruction::SIToFP:
      if (from == TypeClass::kI32) return pick(Opcode::k_sitofp_i32_f64);
      if (from == TypeClass::kI64) return pick(Opcode::k_sitofp_i64_f64);
      break;
    case llvm::Instruction::UIToFP:
      if (from == TypeClass::kI64) return pick(Opcode::k_uitofp_i64_f64);
      break;
    case llvm::Instruction::FPToSI:
      if (to == TypeClass::kI64) return pick(Opcode::k_fptosi_f64_i64);
      if (to == TypeClass::kI32) return pick(Opcode::k_fptosi_f64_i32);
      break;
    case llvm::Instruction::BitCast:
      if (from == TypeClass::kI64 && to == TypeClass::kF64) return pick(Opcode::k_bitcast_i64_f64);
      if (from == TypeClass::kF64 && to == TypeClass::kI64) return pick(Opcode::k_bitcast_f64_i64);
      if (cast.getSrcTy()->isPointerTy() && cast.getDestTy()->isPointerTy()) {
        return pick(Opcode::k_mov64);
      }
      break;
    case llvm::Instruction::PtrToInt:
    case llvm::Instruction::IntToPtr:
      if (from == TypeClass::kI64 && to == TypeClass::kI64) {
        return pick(Opcode::k_mov64);
      }
      break;
    default:
      break;
  }
  AQE_UNREACHABLE("unsupported cast in bytecode translation");
}

Translator::GepParts Translator::DecomposeGep(
    const llvm::GetElementPtrInst& gep) {
  AQE_CHECK_MSG(gep.getNumIndices() == 1,
                "bytecode translation supports single-index GEPs only");
  const llvm::Type* elem = gep.getSourceElementType();
  AQE_CHECK_MSG(elem->isIntegerTy() || elem->isDoubleTy() ||
                    elem->isPointerTy(),
                "GEP element type must be scalar");
  uint32_t scale = elem->isIntegerTy()
                       ? elem->getIntegerBitWidth() / 8
                       : 8;
  if (scale == 0) scale = 1;  // i1 arrays: byte-addressed
  GepParts parts{gep.getPointerOperand(), nullptr, scale, 0};
  const llvm::Value* index = gep.getOperand(1);
  if (const auto* ci = llvm::dyn_cast<llvm::ConstantInt>(index)) {
    parts.offset = static_cast<int32_t>(ci->getSExtValue() *
                                        static_cast<int64_t>(scale));
    parts.scale = 0;
  } else {
    parts.index = index;
  }
  return parts;
}

void Translator::TranslateLoad(const llvm::LoadInst& load) {
  TypeClass tc = ClassifyType(load.getType());
  uint32_t a1 = value_reg_.lookup(&load);
  const llvm::Value* ptr = load.getPointerOperand();
  const auto* gep = llvm::dyn_cast<llvm::GetElementPtrInst>(ptr);
  if (gep != nullptr && subsumed_.contains(gep)) {
    GepParts parts = DecomposeGep(*gep);
    ++program_.fused_instructions;
    uint32_t base = UseReg(parts.base);
    if (parts.index == nullptr) {
      Opcode op;
      switch (tc) {
        case TypeClass::kI1:
        case TypeClass::kI8: op = Opcode::k_load_i8; break;
        case TypeClass::kI16: op = Opcode::k_load_i16; break;
        case TypeClass::kI32: op = Opcode::k_load_i32; break;
        case TypeClass::kI64: op = Opcode::k_load_i64; break;
        case TypeClass::kF64: op = Opcode::k_load_f64; break;
      }
      Emit(op, a1, base, 0, static_cast<uint64_t>(
                                static_cast<uint32_t>(parts.offset)));
      return;
    }
    uint32_t idx = UseReg(parts.index);
    Opcode op;
    switch (tc) {
      case TypeClass::kI1:
      case TypeClass::kI8: op = Opcode::k_load_idx_i8; break;
      case TypeClass::kI16: op = Opcode::k_load_idx_i16; break;
      case TypeClass::kI32: op = Opcode::k_load_idx_i32; break;
      case TypeClass::kI64: op = Opcode::k_load_idx_i64; break;
      case TypeClass::kF64: op = Opcode::k_load_idx_f64; break;
    }
    Emit(op, a1, base, idx, PackScaleOffset(parts.scale, parts.offset));
    return;
  }
  uint32_t addr = UseReg(ptr);
  Opcode op;
  switch (tc) {
    case TypeClass::kI1:
    case TypeClass::kI8: op = Opcode::k_load_i8; break;
    case TypeClass::kI16: op = Opcode::k_load_i16; break;
    case TypeClass::kI32: op = Opcode::k_load_i32; break;
    case TypeClass::kI64: op = Opcode::k_load_i64; break;
    case TypeClass::kF64: op = Opcode::k_load_f64; break;
  }
  Emit(op, a1, addr, 0, 0);
}

void Translator::TranslateStore(const llvm::StoreInst& store) {
  TypeClass tc = ClassifyType(store.getValueOperand()->getType());
  uint32_t value = UseReg(store.getValueOperand());
  const llvm::Value* ptr = store.getPointerOperand();
  const auto* gep = llvm::dyn_cast<llvm::GetElementPtrInst>(ptr);
  if (gep != nullptr && subsumed_.contains(gep)) {
    GepParts parts = DecomposeGep(*gep);
    ++program_.fused_instructions;
    uint32_t base = UseReg(parts.base);
    if (parts.index == nullptr) {
      Opcode op;
      switch (tc) {
        case TypeClass::kI1:
        case TypeClass::kI8: op = Opcode::k_store_i8; break;
        case TypeClass::kI16: op = Opcode::k_store_i16; break;
        case TypeClass::kI32: op = Opcode::k_store_i32; break;
        case TypeClass::kI64: op = Opcode::k_store_i64; break;
        case TypeClass::kF64: op = Opcode::k_store_f64; break;
      }
      Emit(op, value, base, 0, static_cast<uint64_t>(
                                   static_cast<uint32_t>(parts.offset)));
      return;
    }
    uint32_t idx = UseReg(parts.index);
    Opcode op;
    switch (tc) {
      case TypeClass::kI1:
      case TypeClass::kI8: op = Opcode::k_store_idx_i8; break;
      case TypeClass::kI16: op = Opcode::k_store_idx_i16; break;
      case TypeClass::kI32: op = Opcode::k_store_idx_i32; break;
      case TypeClass::kI64: op = Opcode::k_store_idx_i64; break;
      case TypeClass::kF64: op = Opcode::k_store_idx_f64; break;
    }
    Emit(op, value, base, idx, PackScaleOffset(parts.scale, parts.offset));
    return;
  }
  uint32_t addr = UseReg(ptr);
  Opcode op;
  switch (tc) {
    case TypeClass::kI1:
    case TypeClass::kI8: op = Opcode::k_store_i8; break;
    case TypeClass::kI16: op = Opcode::k_store_i16; break;
    case TypeClass::kI32: op = Opcode::k_store_i32; break;
    case TypeClass::kI64: op = Opcode::k_store_i64; break;
    case TypeClass::kF64: op = Opcode::k_store_f64; break;
  }
  Emit(op, value, addr, 0, 0);
}

void Translator::TranslateGep(const llvm::GetElementPtrInst& gep) {
  GepParts parts = DecomposeGep(gep);
  uint32_t a1 = value_reg_.lookup(&gep);
  uint32_t base = UseReg(parts.base);
  if (parts.index == nullptr) {
    Emit(Opcode::k_gep_const, a1, base, 0,
         static_cast<uint64_t>(static_cast<uint32_t>(parts.offset)));
  } else {
    uint32_t idx = UseReg(parts.index);
    Emit(Opcode::k_gep, a1, base, idx,
         PackScaleOffset(parts.scale, parts.offset));
  }
}

void Translator::TranslateOverflowIntrinsic(const llvm::CallInst& call) {
  llvm::Intrinsic::ID id;
  AQE_CHECK(IsOverflowIntrinsic(call, &id));
  TypeClass tc = ClassifyType(call.getArgOperand(0)->getType());
  AQE_CHECK(tc == TypeClass::kI32 || tc == TypeClass::kI64);
  const bool is32 = tc == TypeClass::kI32;

  auto fused_it = fused_overflow_.find(&call);
  if (fused_it != fused_overflow_.end()) {
    // Fused §IV-F macro op: compute + branch-to-overflow in one VM
    // instruction. The destination register belongs to the value extract
    // (if any; an unused result still needs a scratch destination).
    const FusedOverflow& plan = fused_it->second;
    uint32_t a2 = UseReg(call.getArgOperand(0));
    uint32_t a3 = UseReg(call.getArgOperand(1));
    uint32_t a1 = scratch_reg_;
    if (plan.value_extract != nullptr) {
      // The extract owns the destination; block-local extracts are
      // allocated here, at the fused op (their definition point).
      if (value_reg_.count(plan.value_extract) == 0) {
        AllocFor(plan.value_extract);
      }
      a1 = value_reg_.lookup(plan.value_extract);
    }
    Opcode op;
    switch (id) {
      case llvm::Intrinsic::sadd_with_overflow:
        op = is32 ? Opcode::k_sadd_ovf_br_i32 : Opcode::k_sadd_ovf_br_i64;
        break;
      case llvm::Intrinsic::ssub_with_overflow:
        op = is32 ? Opcode::k_ssub_ovf_br_i32 : Opcode::k_ssub_ovf_br_i64;
        break;
      default:
        op = is32 ? Opcode::k_smul_ovf_br_i32 : Opcode::k_smul_ovf_br_i64;
        break;
    }
    uint32_t index = Emit(op, a1, a2, a3);
    AddFixup(index, /*field=*/0, plan.overflow_block);
    return;
  }

  // Unfused: the pair gets two registers (value, flag); extractvalue copies
  // out of them.
  uint32_t a2 = UseReg(call.getArgOperand(0));
  uint32_t a3 = UseReg(call.getArgOperand(1));
  const LiveRange& r = live_.range(&call);
  // Multi-block pairs were given their value slot at block entry; the flag
  // slot is always allocated here.
  uint32_t val_reg = value_reg_.count(&call) != 0 ? value_reg_.lookup(&call)
                                                  : alloc_.Alloc(r.start, r.end);
  uint32_t flag_reg = alloc_.Alloc(r.start, r.end);
  value_reg_[&call] = val_reg;
  pair_flag_reg_[&call] = flag_reg;
  Opcode op;
  switch (id) {
    case llvm::Intrinsic::sadd_with_overflow:
      op = is32 ? Opcode::k_sadd_ovf_i32 : Opcode::k_sadd_ovf_i64;
      break;
    case llvm::Intrinsic::ssub_with_overflow:
      op = is32 ? Opcode::k_ssub_ovf_i32 : Opcode::k_ssub_ovf_i64;
      break;
    default:
      op = is32 ? Opcode::k_smul_ovf_i32 : Opcode::k_smul_ovf_i64;
      break;
  }
  Emit(op, val_reg, a2, a3, flag_reg);
}

void Translator::TranslateExtractValue(const llvm::ExtractValueInst& ev) {
  // Only {iN, i1} overflow pairs reach here (unfused path).
  const llvm::Value* agg = ev.getAggregateOperand();
  AQE_CHECK_MSG(pair_flag_reg_.count(agg) != 0,
                "extractvalue of unsupported aggregate");
  AQE_CHECK(ev.getNumIndices() == 1);
  uint32_t src = ev.getIndices()[0] == 0 ? value_reg_.lookup(agg)
                                         : pair_flag_reg_.lookup(agg);
  // Account for the use of the pair value.
  UseReg(agg);
  uint32_t a1 = value_reg_.lookup(&ev);
  Emit(Opcode::k_mov64, a1, src);
}

void Translator::TranslateCall(const llvm::CallInst& call) {
  llvm::Intrinsic::ID id;
  if (IsOverflowIntrinsic(call, &id)) {
    TranslateOverflowIntrinsic(call);
    return;
  }
  const llvm::Function* callee = call.getCalledFunction();
  AQE_CHECK_MSG(callee != nullptr, "indirect calls unsupported in bytecode");
  if (callee->isIntrinsic()) {
    switch (callee->getIntrinsicID()) {
      case llvm::Intrinsic::lifetime_start:
      case llvm::Intrinsic::lifetime_end:
      case llvm::Intrinsic::donothing:
      case llvm::Intrinsic::assume:
      case llvm::Intrinsic::dbg_declare:
      case llvm::Intrinsic::dbg_value:
        return;  // no code
      default:
        AQE_UNREACHABLE("unsupported intrinsic in bytecode translation");
    }
  }
  const RuntimeRegistry::Entry* entry =
      registry_.Find(callee->getName().str());
  AQE_CHECK_MSG(entry != nullptr, "call to unregistered runtime function");
  const int nargs = static_cast<int>(call.arg_size());
  AQE_CHECK_MSG(nargs == entry->num_args, "runtime call arity mismatch");
  const bool returns_value = !call.getType()->isVoidTy();
  AQE_CHECK(returns_value == entry->returns_value);
  // Callee addresses live in the literal pool (the compact instruction's
  // lit carries the pool index), keeping raw pointers out of the stream.
  uint64_t target = program_.AddLiteral(
      reinterpret_cast<uint64_t>(entry->address));

  if (nargs <= 2) {
    uint32_t a2 = nargs >= 1 ? UseReg(call.getArgOperand(0)) : 0;
    uint32_t a3 = nargs >= 2 ? UseReg(call.getArgOperand(1)) : 0;
    if (returns_value) {
      uint32_t a1 = value_reg_.lookup(&call);
      static constexpr Opcode kRet[3] = {Opcode::k_call_i64_0,
                                         Opcode::k_call_i64_1,
                                         Opcode::k_call_i64_2};
      Emit(kRet[nargs], a1, a2, a3, target);
    } else {
      static constexpr Opcode kVoid[3] = {Opcode::k_call_void_0,
                                          Opcode::k_call_void_1,
                                          Opcode::k_call_void_2};
      // Shift args down: a1/a2 carry the argument registers.
      Emit(kVoid[nargs], a2, a3, 0, target);
    }
    return;
  }
  for (int i = 0; i < nargs; ++i) {
    Emit(Opcode::k_push_arg, UseReg(call.getArgOperand(i)));
  }
  if (returns_value) {
    Emit(Opcode::k_call_i64_n, value_reg_.lookup(&call),
         static_cast<uint32_t>(nargs), 0, target);
  } else {
    Emit(Opcode::k_call_void_n, 0, static_cast<uint32_t>(nargs), 0, target);
  }
}

void Translator::TranslateSelect(const llvm::SelectInst& sel) {
  TypeClass tc = ClassifyType(sel.getType());
  uint32_t cond = UseReg(sel.getCondition());
  uint32_t tval = UseReg(sel.getTrueValue());
  uint32_t fval = UseReg(sel.getFalseValue());
  uint32_t a1 = value_reg_.lookup(&sel);
  Opcode op;
  switch (tc) {
    case TypeClass::kI32: op = Opcode::k_select_i32; break;
    case TypeClass::kF64: op = Opcode::k_select_f64; break;
    default: op = Opcode::k_select_i64; break;  // i64 + pointers
  }
  // Encoding: a1 = dst, a2 = cond, a3 = true value, lit = false-value reg.
  Emit(op, a1, cond, tval, fval);
}

void Translator::EmitPhiCopies(const llvm::BasicBlock* from,
                               const llvm::BasicBlock* to) {
  // Gather the parallel copy set (dst <- src).
  struct Copy {
    uint32_t dst;
    uint32_t src;
  };
  std::vector<Copy> copies;
  for (const llvm::PHINode& phi : to->phis()) {
    const llvm::Value* incoming = phi.getIncomingValueForBlock(from);
    uint32_t src = UseReg(incoming);
    uint32_t dst = value_reg_.lookup(&phi);
    if (src != dst) copies.push_back({dst, src});
  }
  // Sequentialize: repeatedly emit copies whose destination is not a
  // pending source; break cycles through the scratch register.
  while (!copies.empty()) {
    bool progress = false;
    for (size_t i = 0; i < copies.size(); ++i) {
      uint32_t dst = copies[i].dst;
      bool is_pending_src = false;
      for (size_t j = 0; j < copies.size(); ++j) {
        if (j != i && copies[j].src == dst) {
          is_pending_src = true;
          break;
        }
      }
      if (!is_pending_src) {
        Emit(Opcode::k_mov64, copies[i].dst, copies[i].src);
        copies.erase(copies.begin() + static_cast<ptrdiff_t>(i));
        progress = true;
        break;
      }
    }
    if (!progress) {
      // Cycle: move one source aside into scratch.
      Emit(Opcode::k_mov64, scratch_reg_, copies[0].src);
      for (Copy& c : copies) {
        if (c.src == copies[0].src) c.src = scratch_reg_;
      }
    }
  }
}

void Translator::EmitBranchTo(const llvm::BasicBlock* target) {
  uint32_t index = Emit(Opcode::k_br);
  AddFixup(index, /*field=*/0, target);
}

uint32_t Translator::EmitFusedCmpBranch(const llvm::CmpInst* cmp, Opcode op) {
  const llvm::Value* lhs = cmp->getOperand(0);
  const llvm::Value* rhs = cmp->getOperand(1);
  uint32_t index;
  const llvm::LoadInst* fused_load = fused_cmp_load_.lookup(cmp);
  if (fused_load != nullptr) {
    // Load-compare-and-branch tier: the load supplies the LHS (mirrored
    // into place if it was the RHS); a2/a3 carry the subsumed GEP's
    // base/index, a1 the RHS register or literal-pool index.
    if (lhs != fused_load) {
      Opcode mirrored;
      AQE_CHECK(MirrorCmpBranchOpcode(op, &mirrored));
      op = mirrored;
      std::swap(lhs, rhs);
    }
    uint64_t imm_bits = 0;
    const bool has_imm = options_.fuse_imm_cmp_branches &&
                         FusableImmediateBits(rhs, &imm_bits) &&
                         imm_bits != 0 && imm_bits != 1;
    const auto* gep = llvm::cast<llvm::GetElementPtrInst>(
        fused_load->getPointerOperand());
    GepParts parts = DecomposeGep(*gep);
    uint32_t base = UseReg(parts.base);
    uint32_t idx = UseReg(parts.index);
    Opcode load_op;
    if (has_imm && LoadCmpBranchOpcode(op, /*imm=*/true, &load_op) &&
        program_.literal_pool.size() < 0xFFFF) {
      uint64_t pool_index = program_.AddPrivateLiteral(imm_bits);
      index = Emit(load_op, static_cast<uint32_t>(pool_index), base, idx);
      ++program_.fused_cmp_branch_imms;
    } else {
      AQE_CHECK(LoadCmpBranchOpcode(op, /*imm=*/false, &load_op));
      index = Emit(load_op, UseReg(rhs), base, idx);
    }
    program_.fused_instructions += 3;  // gep + load + compare folded
    ++program_.fused_cmp_branches;
    ++program_.fused_load_cmp_branches;
  } else {
    // Constant-operand form: the literal moves into a private
    // literal-pool slot read directly by the handler, so it neither
    // occupies a permanent register nor pays the entry load. A constant
    // LHS is mirrored (c < x == x > c) onto the same encoding. Bits 0/1
    // keep the register path — the reserved slots already hold them for
    // free.
    uint64_t imm_bits = 0;
    bool has_imm = false;
    if (options_.fuse_cmp_branches && options_.fuse_imm_cmp_branches) {
      if (FusableImmediateBits(rhs, &imm_bits)) {
        has_imm = true;
      } else if (FusableImmediateBits(lhs, &imm_bits)) {
        Opcode mirrored;
        if (MirrorCmpBranchOpcode(op, &mirrored)) {
          op = mirrored;
          std::swap(lhs, rhs);
          has_imm = true;
        }
      }
      if (has_imm && (imm_bits == 0 || imm_bits == 1)) has_imm = false;
    }
    Opcode imm_op;
    if (has_imm && ImmCmpBranchOpcode(op, &imm_op) &&
        program_.literal_pool.size() < 0xFFFF) {
      uint64_t pool_index = program_.AddPrivateLiteral(imm_bits);
      index = Emit(imm_op, static_cast<uint32_t>(pool_index),
                   UseReg(lhs));
      ++program_.fused_cmp_branch_imms;
    } else {
      uint32_t a2 = UseReg(lhs);
      uint32_t a3 = UseReg(rhs);
      index = Emit(op, 0, a2, a3);
    }
    ++program_.fused_instructions;  // the compare folded away
    ++program_.fused_cmp_branches;
  }
  return index;
}

uint32_t Translator::EmitChainElement(const llvm::Value* leaf) {
  const auto* inst = llvm::dyn_cast<llvm::Instruction>(leaf);
  auto it = inst != nullptr ? fused_cmp_.find(inst) : fused_cmp_.end();
  if (it != fused_cmp_.end()) {
    return EmitFusedCmpBranch(llvm::cast<llvm::CmpInst>(inst), it->second);
  }
  return Emit(Opcode::k_condbr, UseReg(leaf));
}

void Translator::TranslateTerminator(const llvm::Instruction& term) {
  const llvm::BasicBlock* bb = term.getParent();
  if (subsumed_.contains(&term)) {
    // Fused overflow branch: only the continue edge remains.
    const auto* br = llvm::cast<llvm::BranchInst>(&term);
    const llvm::BasicBlock* cont = br->getSuccessor(1);
    EmitPhiCopies(bb, cont);
    EmitBranchTo(cont);
    return;
  }
  if (const auto* br = llvm::dyn_cast<llvm::BranchInst>(&term)) {
    if (br->isUnconditional()) {
      EmitPhiCopies(bb, br->getSuccessor(0));
      EmitBranchTo(br->getSuccessor(0));
      return;
    }
    // Short-circuit chain: the condition was a conjunction, so one branch
    // is emitted per leaf. Passing a test falls through to the next chain
    // element; the last element's pass-edge is the real then-successor, and
    // every element's fail-edge is the shared else-successor. Phi copies
    // are valid before any element because all elements target the same
    // two successors.
    if (auto chain_it = branch_chains_.find(br);
        chain_it != branch_chains_.end()) {
      llvm::SmallVector<uint32_t, 8> indices;
      for (const llvm::Value* leaf : chain_it->second) {
        uint32_t idx = EmitChainElement(leaf);
        if (!indices.empty()) SetThenTarget(indices.back(), idx);
        indices.push_back(idx);
      }
      const llvm::BasicBlock* chain_then = br->getSuccessor(0);
      const llvm::BasicBlock* chain_else = br->getSuccessor(1);
      if (llvm::isa<llvm::PHINode>(chain_then->front())) {
        SetThenTarget(indices.back(),
                      static_cast<uint32_t>(program_.code.size()));
        EmitPhiCopies(bb, chain_then);
        EmitBranchTo(chain_then);
      } else {
        AddFixup(indices.back(), /*field=*/1, chain_then);
      }
      if (llvm::isa<llvm::PHINode>(chain_else->front())) {
        const uint32_t stub = static_cast<uint32_t>(program_.code.size());
        EmitPhiCopies(bb, chain_else);
        EmitBranchTo(chain_else);
        for (uint32_t idx : indices) SetElseTarget(idx, stub);
      } else {
        for (uint32_t idx : indices) AddFixup(idx, /*field=*/2, chain_else);
      }
      return;
    }
    // Either a plain condbr on an i1 register, or — when the condition is a
    // single-use compare planned for fusion — one compare-and-branch
    // superinstruction reading the compare's operands directly.
    uint32_t index;
    const auto* cond_inst = llvm::dyn_cast<llvm::Instruction>(
        br->getCondition());
    auto fused_it = cond_inst != nullptr ? fused_cmp_.find(cond_inst)
                                         : fused_cmp_.end();
    if (fused_it != fused_cmp_.end()) {
      index = EmitFusedCmpBranch(llvm::cast<llvm::CmpInst>(cond_inst),
                                 fused_it->second);
    } else {
      uint32_t cond = UseReg(br->getCondition());
      index = Emit(Opcode::k_condbr, cond);
    }
    const llvm::BasicBlock* then_bb = br->getSuccessor(0);
    const llvm::BasicBlock* else_bb = br->getSuccessor(1);
    const bool then_phis = llvm::isa<llvm::PHINode>(then_bb->front());
    const bool else_phis = llvm::isa<llvm::PHINode>(else_bb->front());
    if (then_phis) {
      SetThenTarget(index, static_cast<uint32_t>(program_.code.size()));
      EmitPhiCopies(bb, then_bb);
      EmitBranchTo(then_bb);
    } else {
      AddFixup(index, /*field=*/1, then_bb);
    }
    if (else_phis) {
      SetElseTarget(index, static_cast<uint32_t>(program_.code.size()));
      EmitPhiCopies(bb, else_bb);
      EmitBranchTo(else_bb);
    } else {
      AddFixup(index, /*field=*/2, else_bb);
    }
    return;
  }
  if (const auto* ret = llvm::dyn_cast<llvm::ReturnInst>(&term)) {
    if (ret->getNumOperands() == 0) {
      Emit(Opcode::k_ret_void);
    } else {
      Emit(Opcode::k_ret, UseReg(ret->getOperand(0)));
    }
    return;
  }
  if (llvm::isa<llvm::UnreachableInst>(&term)) {
    Emit(Opcode::k_trap);
    return;
  }
  AQE_UNREACHABLE("unsupported terminator in bytecode translation");
}

void Translator::TranslateInstruction(const llvm::Instruction& inst) {
  if (llvm::isa<llvm::PHINode>(inst)) return;  // handled at edges
  if (inst.isTerminator()) {
    TranslateTerminator(inst);
    return;
  }
  if (subsumed_.contains(&inst)) {
    // Fused overflow calls still emit their macro op; fused GEPs and
    // extracts vanish entirely.
    if (const auto* call = llvm::dyn_cast<llvm::CallInst>(&inst)) {
      if (fused_overflow_.count(call) != 0) TranslateOverflowIntrinsic(*call);
    }
    return;
  }
  // Allocate the destination register for block-local values at their
  // definition (multi-block values were allocated at block entry).
  if (!inst.getType()->isVoidTy() && live_.tracked(&inst) &&
      IsSingleBlock(&inst) && value_reg_.count(&inst) == 0 &&
      !llvm::isa<llvm::CallInst>(inst)) {
    AllocFor(&inst);
  } else if (const auto* call = llvm::dyn_cast<llvm::CallInst>(&inst);
             call != nullptr && !inst.getType()->isVoidTy() &&
             IsSingleBlock(&inst) && value_reg_.count(&inst) == 0) {
    llvm::Intrinsic::ID id;
    if (!IsOverflowIntrinsic(*call, &id)) AllocFor(&inst);
    // overflow pairs allocate their two registers inside
    // TranslateOverflowIntrinsic
  }

  switch (inst.getOpcode()) {
    case llvm::Instruction::Add: case llvm::Instruction::Sub:
    case llvm::Instruction::Mul: case llvm::Instruction::SDiv:
    case llvm::Instruction::UDiv: case llvm::Instruction::SRem:
    case llvm::Instruction::URem: case llvm::Instruction::And:
    case llvm::Instruction::Or: case llvm::Instruction::Xor:
    case llvm::Instruction::Shl: case llvm::Instruction::LShr:
    case llvm::Instruction::AShr: case llvm::Instruction::FAdd:
    case llvm::Instruction::FSub: case llvm::Instruction::FMul:
    case llvm::Instruction::FDiv:
      TranslateBinary(llvm::cast<llvm::BinaryOperator>(inst));
      break;
    case llvm::Instruction::FNeg: {
      uint32_t a2 = UseReg(inst.getOperand(0));
      Emit(Opcode::k_fneg_f64, value_reg_.lookup(&inst), a2);
      break;
    }
    case llvm::Instruction::ICmp:
      TranslateICmp(llvm::cast<llvm::ICmpInst>(inst));
      break;
    case llvm::Instruction::FCmp:
      TranslateFCmp(llvm::cast<llvm::FCmpInst>(inst));
      break;
    case llvm::Instruction::SExt: case llvm::Instruction::ZExt:
    case llvm::Instruction::Trunc: case llvm::Instruction::SIToFP:
    case llvm::Instruction::UIToFP: case llvm::Instruction::FPToSI:
    case llvm::Instruction::BitCast: case llvm::Instruction::PtrToInt:
    case llvm::Instruction::IntToPtr:
      TranslateCast(llvm::cast<llvm::CastInst>(inst));
      break;
    case llvm::Instruction::Load:
      TranslateLoad(llvm::cast<llvm::LoadInst>(inst));
      break;
    case llvm::Instruction::Store:
      TranslateStore(llvm::cast<llvm::StoreInst>(inst));
      break;
    case llvm::Instruction::GetElementPtr:
      TranslateGep(llvm::cast<llvm::GetElementPtrInst>(inst));
      break;
    case llvm::Instruction::Call:
      TranslateCall(llvm::cast<llvm::CallInst>(inst));
      break;
    case llvm::Instruction::ExtractValue:
      TranslateExtractValue(llvm::cast<llvm::ExtractValueInst>(inst));
      break;
    case llvm::Instruction::Select:
      TranslateSelect(llvm::cast<llvm::SelectInst>(inst));
      break;
    default:
      AQE_UNREACHABLE("unsupported instruction in bytecode translation");
  }
}

void Translator::TranslateBlock(int label) {
  current_label_ = label;
  block_start_[static_cast<size_t>(label)] =
      static_cast<uint32_t>(program_.code.size());
  // Allocate registers for values that become live in this block (Fig 9).
  for (const llvm::Value* v :
       alloc_at_entry_[static_cast<size_t>(label)]) {
    if (value_reg_.count(v) == 0) AllocFor(v);
  }
  const llvm::BasicBlock* bb = cfg_.BlockAt(label);
  for (const llvm::Instruction& inst : *bb) {
    TranslateInstruction(inst);
    ++program_.source_instructions;
  }
  // Release registers for values whose lifetime ends here (Fig 9).
  for (const llvm::Value* v : release_at_end_[static_cast<size_t>(label)]) {
    ReleaseValue(v);
  }
}

BcProgram Translator::Run() {
  PlanFusion();
  PlanCmpBranchFusion();
  PlanBranchChainFusion();  // may add to fused_cmp_, so before load planning
  PlanLoadCmpBranchFusion();
  CountBlockLocalUses();
  BuildRangeLists();
  block_start_.assign(static_cast<size_t>(cfg_.num_blocks()), 0);
  scratch_reg_ = alloc_.AllocPermanent();
  scratch_allocated_ = true;

  // Arguments materialize in entry order; the VM copies the incoming values
  // into these registers before executing instruction 0.
  for (const llvm::Argument& arg : fn_.args()) {
    uint32_t reg = value_reg_.count(&arg) != 0 ? value_reg_.lookup(&arg)
                                               : AllocFor(&arg);
    program_.arg_offsets.push_back(reg);
  }

  for (int label = 0; label < cfg_.num_blocks(); ++label) {
    TranslateBlock(label);
  }

  for (const Fixup& fixup : fixups_) {
    uint32_t target = block_start_[static_cast<size_t>(fixup.target_label)];
    switch (fixup.field) {
      case 0: program_.code[fixup.index].lit = target; break;
      case 1: SetThenTarget(fixup.index, target); break;
      case 2: SetElseTarget(fixup.index, target); break;
      default: AQE_UNREACHABLE("bad fixup field");
    }
  }
  program_.register_file_size = alloc_.file_size();
  return std::move(program_);
}

// Cumulative translation counters (TranslatorCountersSnapshot). Relaxed
// atomics: translation happens on worker threads concurrently.
std::atomic<uint64_t> g_programs{0};
std::atomic<uint64_t> g_bytecode_ops{0};
std::atomic<uint64_t> g_fused_instructions{0};
std::atomic<uint64_t> g_fused_cmp_branches{0};
std::atomic<uint64_t> g_fused_cmp_branch_imms{0};
std::atomic<uint64_t> g_fused_load_cmp_branches{0};

}  // namespace

TranslatorCounters TranslatorCountersSnapshot() {
  TranslatorCounters c;
  c.programs = g_programs.load(std::memory_order_relaxed);
  c.bytecode_ops = g_bytecode_ops.load(std::memory_order_relaxed);
  c.fused_instructions = g_fused_instructions.load(std::memory_order_relaxed);
  c.fused_cmp_branches = g_fused_cmp_branches.load(std::memory_order_relaxed);
  c.fused_cmp_branch_imms =
      g_fused_cmp_branch_imms.load(std::memory_order_relaxed);
  c.fused_load_cmp_branches =
      g_fused_load_cmp_branches.load(std::memory_order_relaxed);
  return c;
}

void ResetTranslatorCounters() {
  g_programs.store(0, std::memory_order_relaxed);
  g_bytecode_ops.store(0, std::memory_order_relaxed);
  g_fused_instructions.store(0, std::memory_order_relaxed);
  g_fused_cmp_branches.store(0, std::memory_order_relaxed);
  g_fused_cmp_branch_imms.store(0, std::memory_order_relaxed);
  g_fused_load_cmp_branches.store(0, std::memory_order_relaxed);
}

BcProgram TranslateToBytecode(const llvm::Function& fn,
                              const RuntimeRegistry& registry,
                              const TranslatorOptions& options) {
  Translator translator(fn, registry, options);
  BcProgram program = translator.Run();
  g_programs.fetch_add(1, std::memory_order_relaxed);
  g_bytecode_ops.fetch_add(program.code.size(), std::memory_order_relaxed);
  g_fused_instructions.fetch_add(program.fused_instructions,
                                 std::memory_order_relaxed);
  g_fused_cmp_branches.fetch_add(program.fused_cmp_branches,
                                 std::memory_order_relaxed);
  g_fused_cmp_branch_imms.fetch_add(program.fused_cmp_branch_imms,
                                    std::memory_order_relaxed);
  g_fused_load_cmp_branches.fetch_add(program.fused_load_cmp_branches,
                                      std::memory_order_relaxed);
  return program;
}

}  // namespace aqe
