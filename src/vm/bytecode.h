#ifndef AQE_VM_BYTECODE_H_
#define AQE_VM_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aqe {

/// Opcodes of the bytecode virtual machine (§IV). The instruction set is
/// fixed-length and statically typed: the operand type is baked into the
/// opcode (add_i32 vs add_i64), unlike LLVM IR's single polymorphic add,
/// which is what makes interpretation cheap. Macro opcodes (…_ovf_br,
/// load/store with fused address arithmetic, compare-and-branch) collapse
/// frequently occurring LLVM instruction sequences into one VM instruction
/// (§IV-F).
///
/// Macro list format: V(name) — the semantics are implemented in one line
/// each in the shared handler list (vm/interpreter_ops.inc), which both
/// dispatch engines include (see vm/DESIGN.md).
#define AQE_OPCODE_LIST(V)                                                   \
  /* moves and constants */                                                  \
  V(mov64)          /* r[a1] = r[a2] (full slot; used for phi copies) */     \
  /* integer arithmetic */                                                   \
  V(add_i32) V(add_i64) V(sub_i32) V(sub_i64) V(mul_i32) V(mul_i64)          \
  V(sdiv_i32) V(sdiv_i64) V(udiv_i32) V(udiv_i64)                            \
  V(srem_i32) V(srem_i64) V(urem_i32) V(urem_i64)                            \
  /* overflow-checked macro ops: result + branch-on-overflow in one */       \
  V(sadd_ovf_br_i32) V(sadd_ovf_br_i64) V(ssub_ovf_br_i32)                   \
  V(ssub_ovf_br_i64) V(smul_ovf_br_i32) V(smul_ovf_br_i64)                   \
  /* unfused overflow intrinsics (value + flag), for the fusion ablation */  \
  V(sadd_ovf_i32) V(sadd_ovf_i64) V(ssub_ovf_i32) V(ssub_ovf_i64)            \
  V(smul_ovf_i32) V(smul_ovf_i64)                                            \
  /* bitwise */                                                              \
  V(and_i1) V(and_i32) V(and_i64) V(or_i1) V(or_i32) V(or_i64)               \
  V(xor_i1) V(xor_i32) V(xor_i64)                                            \
  V(shl_i32) V(shl_i64) V(lshr_i32) V(lshr_i64) V(ashr_i32) V(ashr_i64)      \
  /* integer comparisons -> i1 */                                            \
  V(icmp_eq_i32) V(icmp_eq_i64) V(icmp_ne_i32) V(icmp_ne_i64)                \
  V(icmp_slt_i32) V(icmp_slt_i64) V(icmp_sle_i32) V(icmp_sle_i64)            \
  V(icmp_sgt_i32) V(icmp_sgt_i64) V(icmp_sge_i32) V(icmp_sge_i64)            \
  V(icmp_ult_i32) V(icmp_ult_i64) V(icmp_ule_i32) V(icmp_ule_i64)            \
  V(icmp_ugt_i32) V(icmp_ugt_i64) V(icmp_uge_i32) V(icmp_uge_i64)            \
  /* compare-and-branch superinstructions (§IV-F extended): fuse a          \
     single-use icmp/fcmp with the condbr that consumes it. a2/a3 are the    \
     operands; lit packs (then << 32 | else) instruction indices. */         \
  V(br_eq_i32) V(br_eq_i64) V(br_ne_i32) V(br_ne_i64)                        \
  V(br_slt_i32) V(br_slt_i64) V(br_sle_i32) V(br_sle_i64)                    \
  V(br_sgt_i32) V(br_sgt_i64) V(br_sge_i32) V(br_sge_i64)                    \
  V(br_ult_i32) V(br_ult_i64) V(br_ule_i32) V(br_ule_i64)                    \
  V(br_ugt_i32) V(br_ugt_i64) V(br_uge_i32) V(br_uge_i64)                    \
  V(br_folt_f64) V(br_fogt_f64)                                              \
  /* constant-operand compare-and-branch: r[a2] <pred> literal_pool[a1],     \
     lit packs the branch targets. Query constants stay out of the register  \
     file entirely — no permanent slot, no entry load. */                    \
  V(br_eq_i32_imm) V(br_eq_i64_imm) V(br_ne_i32_imm) V(br_ne_i64_imm)        \
  V(br_slt_i32_imm) V(br_slt_i64_imm) V(br_sle_i32_imm) V(br_sle_i64_imm)    \
  V(br_sgt_i32_imm) V(br_sgt_i64_imm) V(br_sge_i32_imm) V(br_sge_i64_imm)    \
  V(br_ult_i32_imm) V(br_ult_i64_imm) V(br_ule_i32_imm) V(br_ule_i64_imm)    \
  V(br_ugt_i32_imm) V(br_ugt_i64_imm) V(br_uge_i32_imm) V(br_uge_i64_imm)    \
  V(br_folt_f64_imm) V(br_fogt_f64_imm)                                      \
  /* load-compare-and-branch: the scan-filter kernel in one dispatch.        \
     tmp = *(ty*)(r[a2] + r[a3]*sizeof(ty)); branch on tmp <pred> r[a1].     \
     The element scale is implied by the type and the byte offset is zero    \
     (the peephole only fires for that GEP shape); lit packs the branch      \
     targets, so no field is left for a scale/offset immediate. */           \
  V(br_load_eq_i32) V(br_load_eq_i64) V(br_load_ne_i32) V(br_load_ne_i64)    \
  V(br_load_slt_i32) V(br_load_slt_i64) V(br_load_sle_i32)                   \
  V(br_load_sle_i64) V(br_load_sgt_i32) V(br_load_sgt_i64)                   \
  V(br_load_sge_i32) V(br_load_sge_i64) V(br_load_ult_i32)                   \
  V(br_load_ult_i64) V(br_load_ule_i32) V(br_load_ule_i64)                   \
  V(br_load_ugt_i32) V(br_load_ugt_i64) V(br_load_uge_i32)                   \
  V(br_load_uge_i64)                                                         \
  /* constant-RHS forms: tmp <pred> literal_pool[a1] */                      \
  V(br_load_eq_i32_imm) V(br_load_eq_i64_imm) V(br_load_ne_i32_imm)          \
  V(br_load_ne_i64_imm) V(br_load_slt_i32_imm) V(br_load_slt_i64_imm)        \
  V(br_load_sle_i32_imm) V(br_load_sle_i64_imm) V(br_load_sgt_i32_imm)       \
  V(br_load_sgt_i64_imm) V(br_load_sge_i32_imm) V(br_load_sge_i64_imm)       \
  V(br_load_ult_i32_imm) V(br_load_ult_i64_imm) V(br_load_ule_i32_imm)       \
  V(br_load_ule_i64_imm) V(br_load_ugt_i32_imm) V(br_load_ugt_i64_imm)       \
  V(br_load_uge_i32_imm) V(br_load_uge_i64_imm)                              \
  /* floating point */                                                       \
  V(fadd_f64) V(fsub_f64) V(fmul_f64) V(fdiv_f64) V(fneg_f64)                \
  V(fcmp_oeq_f64) V(fcmp_one_f64) V(fcmp_olt_f64) V(fcmp_ole_f64)            \
  V(fcmp_ogt_f64) V(fcmp_oge_f64) V(fcmp_une_f64)                            \
  /* casts */                                                                \
  V(sext_i1_i64) V(sext_i8_i64) V(sext_i32_i64) V(sext_i8_i32)               \
  V(sext_i16_i64) V(sext_i16_i32)                                            \
  V(zext_i1_i32) V(zext_i1_i64) V(zext_i8_i32) V(zext_i8_i64)                \
  V(zext_i16_i32) V(zext_i16_i64) V(zext_i32_i64) V(zext_i1_i8)              \
  V(trunc_i64_i32) V(trunc_i64_i16) V(trunc_i64_i8) V(trunc_i32_i8)          \
  V(trunc_i64_i1) V(trunc_i32_i1) V(trunc_i32_i16)                           \
  V(sitofp_i32_f64) V(sitofp_i64_f64) V(fptosi_f64_i64) V(fptosi_f64_i32)    \
  V(uitofp_i64_f64) V(bitcast_i64_f64) V(bitcast_f64_i64)                    \
  /* select: r[a1] = r[a2] ? r[a3] : r[lit] */                               \
  V(select_i32) V(select_i64) V(select_f64)                                  \
  /* memory: plain (address in register, constant byte offset in lit) */     \
  V(load_i8) V(load_i16) V(load_i32) V(load_i64) V(load_f64)                 \
  V(store_i8) V(store_i16) V(store_i32) V(store_i64) V(store_f64)            \
  /* memory: fused GEP + access — lit packs scale (hi32) and offset (lo32),  \
     address = r[a2] + r[a3]*scale + offset (§IV-F macro op) */              \
  V(load_idx_i8) V(load_idx_i16) V(load_idx_i32) V(load_idx_i64)             \
  V(load_idx_f64)                                                            \
  V(store_idx_i8) V(store_idx_i16) V(store_idx_i32) V(store_idx_i64)         \
  V(store_idx_f64)                                                           \
  /* standalone pointer arithmetic: r[a1] = r[a2] + r[a3]*scale + offset */  \
  V(gep) V(gep_const) /* gep_const: r[a1] = r[a2] + offset */                \
  /* control flow: targets are instruction indices */                        \
  V(br)        /* lit = target */                                            \
  V(condbr)    /* a1 = cond reg, lit packs (then << 32 | else) */            \
  V(ret_void) V(ret) /* ret: returns full 8-byte slot r[a1] */               \
  V(trap)      /* llvm unreachable */                                        \
  /* calls to registered C++ runtime functions; lit = literal-pool index of \
     the callee address. All runtime functions take/return i64-compatible    \
     values (DESIGN.md). */                                                  \
  V(call_i64_0) V(call_i64_1) V(call_i64_2)                                  \
  V(call_void_0) V(call_void_1) V(call_void_2)                               \
  V(push_arg)  /* append r[a1] to the pending argument buffer */             \
  V(call_i64_n) V(call_void_n) /* a2 = nargs, consumes pending args */

enum class Opcode : uint16_t {
#define AQE_DECLARE_OPCODE(name) k_##name,
  AQE_OPCODE_LIST(AQE_DECLARE_OPCODE)
#undef AQE_DECLARE_OPCODE
      kNumOpcodes
};

/// Opcode mnemonic for disassembly.
const char* OpcodeName(Opcode op);

/// One fixed-length, compact (16-byte) VM instruction: four 16-bit fields
/// and a 64-bit immediate, so four instructions fill one cache line instead
/// of the previous 24-byte encoding's 2.67.
///
/// a1..a3 index 8-byte register-file *slots* (not byte offsets — slot
/// indices keep them inside 16 bits; the interpreter shifts by 3) or, for
/// control flow, carry small immediates. `lit` is the wide immediate:
/// branch target(s), packed scale/offset, flag slot, or the literal-pool
/// index of a callee address.
struct BcInstruction {
  uint16_t op;
  uint16_t a1;
  uint16_t a2;
  uint16_t a3;
  uint64_t lit;
};
static_assert(sizeof(BcInstruction) == 16, "compact fixed-length encoding");

/// Packs the (scale, offset) immediate of fused memory ops.
inline uint64_t PackScaleOffset(uint32_t scale, int32_t offset) {
  return (static_cast<uint64_t>(scale) << 32) |
         static_cast<uint32_t>(offset);
}
inline uint32_t UnpackScale(uint64_t lit) {
  return static_cast<uint32_t>(lit >> 32);
}
inline int32_t UnpackOffset(uint64_t lit) {
  return static_cast<int32_t>(static_cast<uint32_t>(lit));
}

/// Packs the (then, else) instruction indices of condbr and the
/// compare-and-branch superinstructions.
inline uint64_t PackBranchTargets(uint32_t then_target, uint32_t else_target) {
  return (static_cast<uint64_t>(then_target) << 32) | else_target;
}
inline uint32_t UnpackThenTarget(uint64_t lit) {
  return static_cast<uint32_t>(lit >> 32);
}
inline uint32_t UnpackElseTarget(uint64_t lit) {
  return static_cast<uint32_t>(lit);
}

/// Which interpreter loop executes a program. kSwitch is the classic
/// for(;;)-switch with one shared indirect branch; kThreaded is
/// direct-threaded dispatch (computed goto), one indirect branch per
/// handler. kDefault resolves to the compile-time AQE_VM_DISPATCH choice.
enum class VmDispatch { kDefault, kSwitch, kThreaded };

const char* VmDispatchName(VmDispatch dispatch);

/// A translated function: the unit the FunctionHandle stores alongside (or
/// instead of) compiled machine code.
struct BcProgram {
  std::vector<BcInstruction> code;

  /// Size of the register file in bytes (8-byte slots). Slots 0 and 1 hold
  /// the constants 0 and 1 (§IV-A).
  uint32_t register_file_size = 16;

  /// Constants materialized into the register file on entry.
  struct PoolEntry {
    uint32_t slot;
    uint64_t value;
  };
  std::vector<PoolEntry> constant_pool;

  /// Wide immediates that do not fit the instruction (callee addresses);
  /// call instructions store an index into this pool in `lit`. Keeping
  /// addresses out of the instruction stream makes programs relocatable.
  std::vector<uint64_t> literal_pool;

  /// Register slots that receive the function arguments, in order.
  std::vector<uint32_t> arg_offsets;

  /// Dispatch engine this program is executed with (kDefault = the
  /// compile-time selection; see VmResolveDispatch).
  VmDispatch dispatch = VmDispatch::kDefault;

  /// Stats for the cost model and the ablation benches.
  uint64_t source_instructions = 0;  ///< LLVM instructions translated
  uint64_t fused_instructions = 0;   ///< LLVM instructions folded away
  uint64_t fused_cmp_branches = 0;   ///< compare-and-branch superinstructions
  /// Subset of fused_cmp_branches whose constant operand was folded into a
  /// literal-pool immediate (br_*_imm) instead of a constant-pool register.
  uint64_t fused_cmp_branch_imms = 0;
  /// Subset of fused_cmp_branches that additionally swallowed the compare's
  /// indexed load (br_load_*): load + compare + branch in one dispatch.
  uint64_t fused_load_cmp_branches = 0;

  /// Interns `value` into literal_pool and returns its index.
  uint64_t AddLiteral(uint64_t value);

  /// Appends `value` to literal_pool *without* interning. Immediate-operand
  /// superinstructions need a private slot: the constant-patch table may
  /// rewrite it for literal-only plan variants, which must never alias a
  /// callee address or another instruction's immediate.
  uint64_t AddPrivateLiteral(uint64_t value);

  /// Human-readable disassembly; round-trips every instruction field (see
  /// ParseDisassembly in tests/vm_dispatch_test.cc).
  std::string Disassemble() const;
};

}  // namespace aqe

#endif  // AQE_VM_BYTECODE_H_
