#ifndef AQE_VM_INTERPRETER_H_
#define AQE_VM_INTERPRETER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "vm/bytecode.h"

namespace aqe {

/// True when the direct-threaded (computed-goto) engine was compiled in
/// (GCC/Clang label-address extension).
bool VmThreadedDispatchAvailable();

/// True when AQE_VM_PROFILE is set (and not "0"): every interpreted dispatch
/// is counted per opcode and the hot-order list is emitted at process exit —
/// to stderr, or to the file the variable names. Profiled execution always
/// uses the (counting) switch engine; opcode frequencies are
/// engine-independent, and the hot loops stay count-free.
bool VmProfileEnabled();

/// The dispatch counts collected so far, hottest first, one
/// "<count> <opcode>" line each. This is the list vm/interpreter_ops.inc's
/// handler layout is ordered by (see the profile-guided layout note there).
std::string VmProfileHotOrder();

/// Programmatic equivalent of AQE_VM_PROFILE: while enabled, interpreted
/// execution routes through the counting switch engine and bumps the
/// per-opcode dispatch counters. No atexit dump; the engine's metrics
/// snapshot reads VmProfileCounts() instead. Thread-safe; affects morsels
/// started after the switch.
void VmSetProfileCounting(bool enabled);

/// True when either AQE_VM_PROFILE or VmSetProfileCounting enables counting.
bool VmProfileCountingEnabled();

struct VmOpcodeCount {
  const char* opcode;  ///< static OpcodeName string
  uint64_t count;
};

/// Non-zero per-opcode dispatch counts, in opcode order.
std::vector<VmOpcodeCount> VmProfileCounts();

/// Zeroes the dispatch counters (phase-delta hygiene).
void VmResetProfileCounts();

/// Resolves kDefault to the engine selected at compile time via the
/// AQE_VM_DISPATCH CMake switch (THREADED where available, else SWITCH);
/// kSwitch/kThreaded pass through (kThreaded falls back to kSwitch when the
/// extension is unavailable).
VmDispatch VmResolveDispatch(VmDispatch dispatch);

/// Executes a translated program with the given arguments (each argument is
/// one 8-byte register slot: integers zero/sign-agnostic raw bits, pointers
/// as addresses, doubles bit-cast). Returns the raw 8-byte slot of the `ret`
/// instruction (0 for `ret_void`); callers mask to the function's return
/// width.
///
/// `dispatch` picks the interpreter loop; kDefault defers to
/// program.dispatch and then to the compile-time default. Both engines
/// execute the identical handler list (vm/interpreter_ops.inc) and produce
/// bit-identical results.
///
/// The register file lives on the interpreter's stack when it fits (§IV-A);
/// larger files fall back to the heap.
uint64_t VmExecute(const BcProgram& program, const uint64_t* args,
                   int num_args, VmDispatch dispatch = VmDispatch::kDefault);

/// Convenience for the worker-function ABI
/// `void worker(void* state, uint64_t begin, uint64_t end, void* vm_program)`
/// (§IV-E: the trailing argument is the program itself, redundant for
/// machine code, required by the VM).
void VmExecuteWorker(const BcProgram& program, void* state, uint64_t begin,
                     uint64_t end);

}  // namespace aqe

#endif  // AQE_VM_INTERPRETER_H_
