#include "vm/register_allocator.h"

#include "common/status.h"

namespace aqe {

const char* RegAllocStrategyName(RegAllocStrategy strategy) {
  switch (strategy) {
    case RegAllocStrategy::kNoReuse: return "no-reuse";
    case RegAllocStrategy::kWindow: return "window";
    case RegAllocStrategy::kLoopAware: return "loop-aware";
  }
  AQE_UNREACHABLE("bad strategy");
}

RegisterAllocator::RegisterAllocator(RegAllocStrategy strategy,
                                     int window_size)
    : strategy_(strategy), window_size_(window_size) {
  AQE_CHECK(window_size_ > 0);
}

uint32_t RegisterAllocator::Alloc(int start_block, int end_block) {
  (void)start_block;
  (void)end_block;
  if (!free_list_.empty()) {
    uint32_t slot = free_list_.back();
    free_list_.pop_back();
    return slot;
  }
  return next_slot_++;
}

uint32_t RegisterAllocator::AllocPermanent() { return next_slot_++; }

void RegisterAllocator::Release(uint32_t slot, int start_block,
                                int end_block) {
  switch (strategy_) {
    case RegAllocStrategy::kNoReuse:
      return;
    case RegAllocStrategy::kWindow:
      // Reuse only when the whole live range sits inside one window of
      // `window_size_` consecutive blocks; ranges that cross a window
      // boundary keep their slot forever (conservatively correct, larger
      // register file).
      if (start_block / window_size_ != end_block / window_size_) return;
      break;
    case RegAllocStrategy::kLoopAware:
      break;
  }
  free_list_.push_back(slot);
}

}  // namespace aqe
