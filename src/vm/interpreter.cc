#include "vm/interpreter.h"

#include <cstring>
#include <memory>
#include <vector>

#include "common/status.h"

namespace aqe {
namespace {

// Register accessors: `regs` is the byte-addressed register file; offsets
// come from the instruction fields (Fig 8's `regs + ip->a1`).
#define R_I8(off) (*reinterpret_cast<int8_t*>(regs + (off)))
#define R_U8(off) (*reinterpret_cast<uint8_t*>(regs + (off)))
#define R_I16(off) (*reinterpret_cast<int16_t*>(regs + (off)))
#define R_U16(off) (*reinterpret_cast<uint16_t*>(regs + (off)))
#define R_I32(off) (*reinterpret_cast<int32_t*>(regs + (off)))
#define R_U32(off) (*reinterpret_cast<uint32_t*>(regs + (off)))
#define R_I64(off) (*reinterpret_cast<int64_t*>(regs + (off)))
#define R_U64(off) (*reinterpret_cast<uint64_t*>(regs + (off)))
#define R_F64(off) (*reinterpret_cast<double*>(regs + (off)))
#define R_PTR(off) (*reinterpret_cast<uint8_t**>(regs + (off)))

// Call-target casts. All runtime functions use i64-compatible args/returns
// (see RuntimeRegistry).
using F0 = uint64_t (*)();
using F1 = uint64_t (*)(uint64_t);
using F2 = uint64_t (*)(uint64_t, uint64_t);
using F3 = uint64_t (*)(uint64_t, uint64_t, uint64_t);
using F4 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t);
using F5 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t);
using F6 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                        uint64_t);
using F7 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                        uint64_t, uint64_t);
using F8 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                        uint64_t, uint64_t, uint64_t);

uint64_t DispatchN(uint64_t target, const uint64_t* a, uint32_t n) {
  switch (n) {
    case 0: return reinterpret_cast<F0>(target)();
    case 1: return reinterpret_cast<F1>(target)(a[0]);
    case 2: return reinterpret_cast<F2>(target)(a[0], a[1]);
    case 3: return reinterpret_cast<F3>(target)(a[0], a[1], a[2]);
    case 4: return reinterpret_cast<F4>(target)(a[0], a[1], a[2], a[3]);
    case 5: return reinterpret_cast<F5>(target)(a[0], a[1], a[2], a[3], a[4]);
    case 6:
      return reinterpret_cast<F6>(target)(a[0], a[1], a[2], a[3], a[4], a[5]);
    case 7:
      return reinterpret_cast<F7>(target)(a[0], a[1], a[2], a[3], a[4], a[5],
                                          a[6]);
    case 8:
      return reinterpret_cast<F8>(target)(a[0], a[1], a[2], a[3], a[4], a[5],
                                          a[6], a[7]);
  }
  AQE_UNREACHABLE("bad call arity");
}

/// Address computation of the fused GEP+memory macro ops (§IV-F):
/// base + index * scale + offset, all from one instruction.
#define IDX_ADDR(inst) \
  (R_PTR((inst).a2) + R_I64((inst).a3) * UnpackScale((inst).lit) + \
   UnpackOffset((inst).lit))
#define MEM_ADDR(inst) \
  (R_PTR((inst).a2) + static_cast<int32_t>(static_cast<uint32_t>((inst).lit)))

uint64_t Run(const BcProgram& program, uint8_t* regs) {
  const BcInstruction* code = program.code.data();
  uint64_t argbuf[8];
  uint32_t argn = 0;
  size_t ip = 0;
  for (;;) {
    const BcInstruction& inst = code[ip++];
    switch (static_cast<Opcode>(inst.op)) {
      case Opcode::k_mov64: R_U64(inst.a1) = R_U64(inst.a2); break;

      case Opcode::k_add_i32: R_I32(inst.a1) = static_cast<int32_t>(R_U32(inst.a2) + R_U32(inst.a3)); break;
      case Opcode::k_add_i64: R_I64(inst.a1) = static_cast<int64_t>(R_U64(inst.a2) + R_U64(inst.a3)); break;
      case Opcode::k_sub_i32: R_I32(inst.a1) = static_cast<int32_t>(R_U32(inst.a2) - R_U32(inst.a3)); break;
      case Opcode::k_sub_i64: R_I64(inst.a1) = static_cast<int64_t>(R_U64(inst.a2) - R_U64(inst.a3)); break;
      case Opcode::k_mul_i32: R_I32(inst.a1) = static_cast<int32_t>(R_U32(inst.a2) * R_U32(inst.a3)); break;
      case Opcode::k_mul_i64: R_I64(inst.a1) = static_cast<int64_t>(R_U64(inst.a2) * R_U64(inst.a3)); break;
      case Opcode::k_sdiv_i32: R_I32(inst.a1) = R_I32(inst.a2) / R_I32(inst.a3); break;
      case Opcode::k_sdiv_i64: R_I64(inst.a1) = R_I64(inst.a2) / R_I64(inst.a3); break;
      case Opcode::k_udiv_i32: R_U32(inst.a1) = R_U32(inst.a2) / R_U32(inst.a3); break;
      case Opcode::k_udiv_i64: R_U64(inst.a1) = R_U64(inst.a2) / R_U64(inst.a3); break;
      case Opcode::k_srem_i32: R_I32(inst.a1) = R_I32(inst.a2) % R_I32(inst.a3); break;
      case Opcode::k_srem_i64: R_I64(inst.a1) = R_I64(inst.a2) % R_I64(inst.a3); break;
      case Opcode::k_urem_i32: R_U32(inst.a1) = R_U32(inst.a2) % R_U32(inst.a3); break;
      case Opcode::k_urem_i64: R_U64(inst.a1) = R_U64(inst.a2) % R_U64(inst.a3); break;

      case Opcode::k_sadd_ovf_br_i32: { int32_t r; if (__builtin_add_overflow(R_I32(inst.a2), R_I32(inst.a3), &r)) { ip = inst.lit; break; } R_I32(inst.a1) = r; break; }
      case Opcode::k_sadd_ovf_br_i64: { int64_t r; if (__builtin_add_overflow(R_I64(inst.a2), R_I64(inst.a3), &r)) { ip = inst.lit; break; } R_I64(inst.a1) = r; break; }
      case Opcode::k_ssub_ovf_br_i32: { int32_t r; if (__builtin_sub_overflow(R_I32(inst.a2), R_I32(inst.a3), &r)) { ip = inst.lit; break; } R_I32(inst.a1) = r; break; }
      case Opcode::k_ssub_ovf_br_i64: { int64_t r; if (__builtin_sub_overflow(R_I64(inst.a2), R_I64(inst.a3), &r)) { ip = inst.lit; break; } R_I64(inst.a1) = r; break; }
      case Opcode::k_smul_ovf_br_i32: { int32_t r; if (__builtin_mul_overflow(R_I32(inst.a2), R_I32(inst.a3), &r)) { ip = inst.lit; break; } R_I32(inst.a1) = r; break; }
      case Opcode::k_smul_ovf_br_i64: { int64_t r; if (__builtin_mul_overflow(R_I64(inst.a2), R_I64(inst.a3), &r)) { ip = inst.lit; break; } R_I64(inst.a1) = r; break; }

      case Opcode::k_sadd_ovf_i32: { int32_t r; R_U8(inst.lit) = __builtin_add_overflow(R_I32(inst.a2), R_I32(inst.a3), &r) ? 1 : 0; R_I32(inst.a1) = r; break; }
      case Opcode::k_sadd_ovf_i64: { int64_t r; R_U8(inst.lit) = __builtin_add_overflow(R_I64(inst.a2), R_I64(inst.a3), &r) ? 1 : 0; R_I64(inst.a1) = r; break; }
      case Opcode::k_ssub_ovf_i32: { int32_t r; R_U8(inst.lit) = __builtin_sub_overflow(R_I32(inst.a2), R_I32(inst.a3), &r) ? 1 : 0; R_I32(inst.a1) = r; break; }
      case Opcode::k_ssub_ovf_i64: { int64_t r; R_U8(inst.lit) = __builtin_sub_overflow(R_I64(inst.a2), R_I64(inst.a3), &r) ? 1 : 0; R_I64(inst.a1) = r; break; }
      case Opcode::k_smul_ovf_i32: { int32_t r; R_U8(inst.lit) = __builtin_mul_overflow(R_I32(inst.a2), R_I32(inst.a3), &r) ? 1 : 0; R_I32(inst.a1) = r; break; }
      case Opcode::k_smul_ovf_i64: { int64_t r; R_U8(inst.lit) = __builtin_mul_overflow(R_I64(inst.a2), R_I64(inst.a3), &r) ? 1 : 0; R_I64(inst.a1) = r; break; }

      case Opcode::k_and_i1: R_U8(inst.a1) = R_U8(inst.a2) & R_U8(inst.a3); break;
      case Opcode::k_and_i32: R_U32(inst.a1) = R_U32(inst.a2) & R_U32(inst.a3); break;
      case Opcode::k_and_i64: R_U64(inst.a1) = R_U64(inst.a2) & R_U64(inst.a3); break;
      case Opcode::k_or_i1: R_U8(inst.a1) = R_U8(inst.a2) | R_U8(inst.a3); break;
      case Opcode::k_or_i32: R_U32(inst.a1) = R_U32(inst.a2) | R_U32(inst.a3); break;
      case Opcode::k_or_i64: R_U64(inst.a1) = R_U64(inst.a2) | R_U64(inst.a3); break;
      case Opcode::k_xor_i1: R_U8(inst.a1) = R_U8(inst.a2) ^ R_U8(inst.a3); break;
      case Opcode::k_xor_i32: R_U32(inst.a1) = R_U32(inst.a2) ^ R_U32(inst.a3); break;
      case Opcode::k_xor_i64: R_U64(inst.a1) = R_U64(inst.a2) ^ R_U64(inst.a3); break;
      case Opcode::k_shl_i32: R_U32(inst.a1) = R_U32(inst.a2) << (R_U32(inst.a3) & 31); break;
      case Opcode::k_shl_i64: R_U64(inst.a1) = R_U64(inst.a2) << (R_U64(inst.a3) & 63); break;
      case Opcode::k_lshr_i32: R_U32(inst.a1) = R_U32(inst.a2) >> (R_U32(inst.a3) & 31); break;
      case Opcode::k_lshr_i64: R_U64(inst.a1) = R_U64(inst.a2) >> (R_U64(inst.a3) & 63); break;
      case Opcode::k_ashr_i32: R_I32(inst.a1) = R_I32(inst.a2) >> (R_U32(inst.a3) & 31); break;
      case Opcode::k_ashr_i64: R_I64(inst.a1) = R_I64(inst.a2) >> (R_U64(inst.a3) & 63); break;

      case Opcode::k_icmp_eq_i32: R_U8(inst.a1) = R_U32(inst.a2) == R_U32(inst.a3); break;
      case Opcode::k_icmp_eq_i64: R_U8(inst.a1) = R_U64(inst.a2) == R_U64(inst.a3); break;
      case Opcode::k_icmp_ne_i32: R_U8(inst.a1) = R_U32(inst.a2) != R_U32(inst.a3); break;
      case Opcode::k_icmp_ne_i64: R_U8(inst.a1) = R_U64(inst.a2) != R_U64(inst.a3); break;
      case Opcode::k_icmp_slt_i32: R_U8(inst.a1) = R_I32(inst.a2) < R_I32(inst.a3); break;
      case Opcode::k_icmp_slt_i64: R_U8(inst.a1) = R_I64(inst.a2) < R_I64(inst.a3); break;
      case Opcode::k_icmp_sle_i32: R_U8(inst.a1) = R_I32(inst.a2) <= R_I32(inst.a3); break;
      case Opcode::k_icmp_sle_i64: R_U8(inst.a1) = R_I64(inst.a2) <= R_I64(inst.a3); break;
      case Opcode::k_icmp_sgt_i32: R_U8(inst.a1) = R_I32(inst.a2) > R_I32(inst.a3); break;
      case Opcode::k_icmp_sgt_i64: R_U8(inst.a1) = R_I64(inst.a2) > R_I64(inst.a3); break;
      case Opcode::k_icmp_sge_i32: R_U8(inst.a1) = R_I32(inst.a2) >= R_I32(inst.a3); break;
      case Opcode::k_icmp_sge_i64: R_U8(inst.a1) = R_I64(inst.a2) >= R_I64(inst.a3); break;
      case Opcode::k_icmp_ult_i32: R_U8(inst.a1) = R_U32(inst.a2) < R_U32(inst.a3); break;
      case Opcode::k_icmp_ult_i64: R_U8(inst.a1) = R_U64(inst.a2) < R_U64(inst.a3); break;
      case Opcode::k_icmp_ule_i32: R_U8(inst.a1) = R_U32(inst.a2) <= R_U32(inst.a3); break;
      case Opcode::k_icmp_ule_i64: R_U8(inst.a1) = R_U64(inst.a2) <= R_U64(inst.a3); break;
      case Opcode::k_icmp_ugt_i32: R_U8(inst.a1) = R_U32(inst.a2) > R_U32(inst.a3); break;
      case Opcode::k_icmp_ugt_i64: R_U8(inst.a1) = R_U64(inst.a2) > R_U64(inst.a3); break;
      case Opcode::k_icmp_uge_i32: R_U8(inst.a1) = R_U32(inst.a2) >= R_U32(inst.a3); break;
      case Opcode::k_icmp_uge_i64: R_U8(inst.a1) = R_U64(inst.a2) >= R_U64(inst.a3); break;

      case Opcode::k_fadd_f64: R_F64(inst.a1) = R_F64(inst.a2) + R_F64(inst.a3); break;
      case Opcode::k_fsub_f64: R_F64(inst.a1) = R_F64(inst.a2) - R_F64(inst.a3); break;
      case Opcode::k_fmul_f64: R_F64(inst.a1) = R_F64(inst.a2) * R_F64(inst.a3); break;
      case Opcode::k_fdiv_f64: R_F64(inst.a1) = R_F64(inst.a2) / R_F64(inst.a3); break;
      case Opcode::k_fneg_f64: R_F64(inst.a1) = -R_F64(inst.a2); break;
      case Opcode::k_fcmp_oeq_f64: R_U8(inst.a1) = R_F64(inst.a2) == R_F64(inst.a3); break;
      case Opcode::k_fcmp_one_f64: R_U8(inst.a1) = R_F64(inst.a2) < R_F64(inst.a3) || R_F64(inst.a2) > R_F64(inst.a3); break;
      case Opcode::k_fcmp_olt_f64: R_U8(inst.a1) = R_F64(inst.a2) < R_F64(inst.a3); break;
      case Opcode::k_fcmp_ole_f64: R_U8(inst.a1) = R_F64(inst.a2) <= R_F64(inst.a3); break;
      case Opcode::k_fcmp_ogt_f64: R_U8(inst.a1) = R_F64(inst.a2) > R_F64(inst.a3); break;
      case Opcode::k_fcmp_oge_f64: R_U8(inst.a1) = R_F64(inst.a2) >= R_F64(inst.a3); break;
      case Opcode::k_fcmp_une_f64: R_U8(inst.a1) = !(R_F64(inst.a2) == R_F64(inst.a3)); break;

      case Opcode::k_sext_i1_i64: R_I64(inst.a1) = R_U8(inst.a2) ? -1 : 0; break;
      case Opcode::k_sext_i8_i64: R_I64(inst.a1) = R_I8(inst.a2); break;
      case Opcode::k_sext_i8_i32: R_I32(inst.a1) = R_I8(inst.a2); break;
      case Opcode::k_sext_i16_i64: R_I64(inst.a1) = R_I16(inst.a2); break;
      case Opcode::k_sext_i16_i32: R_I32(inst.a1) = R_I16(inst.a2); break;
      case Opcode::k_sext_i32_i64: R_I64(inst.a1) = R_I32(inst.a2); break;
      case Opcode::k_zext_i1_i8: R_U8(inst.a1) = R_U8(inst.a2); break;
      case Opcode::k_zext_i1_i32: R_U32(inst.a1) = R_U8(inst.a2); break;
      case Opcode::k_zext_i1_i64: R_U64(inst.a1) = R_U8(inst.a2); break;
      case Opcode::k_zext_i8_i32: R_U32(inst.a1) = R_U8(inst.a2); break;
      case Opcode::k_zext_i8_i64: R_U64(inst.a1) = R_U8(inst.a2); break;
      case Opcode::k_zext_i16_i32: R_U32(inst.a1) = R_U16(inst.a2); break;
      case Opcode::k_zext_i16_i64: R_U64(inst.a1) = R_U16(inst.a2); break;
      case Opcode::k_zext_i32_i64: R_U64(inst.a1) = R_U32(inst.a2); break;
      case Opcode::k_trunc_i64_i32: R_U32(inst.a1) = static_cast<uint32_t>(R_U64(inst.a2)); break;
      case Opcode::k_trunc_i64_i16: R_U16(inst.a1) = static_cast<uint16_t>(R_U64(inst.a2)); break;
      case Opcode::k_trunc_i64_i8: R_U8(inst.a1) = static_cast<uint8_t>(R_U64(inst.a2)); break;
      case Opcode::k_trunc_i64_i1: R_U8(inst.a1) = R_U64(inst.a2) & 1; break;
      case Opcode::k_trunc_i32_i16: R_U16(inst.a1) = static_cast<uint16_t>(R_U32(inst.a2)); break;
      case Opcode::k_trunc_i32_i8: R_U8(inst.a1) = static_cast<uint8_t>(R_U32(inst.a2)); break;
      case Opcode::k_trunc_i32_i1: R_U8(inst.a1) = R_U32(inst.a2) & 1; break;
      case Opcode::k_sitofp_i32_f64: R_F64(inst.a1) = R_I32(inst.a2); break;
      case Opcode::k_sitofp_i64_f64: R_F64(inst.a1) = static_cast<double>(R_I64(inst.a2)); break;
      case Opcode::k_fptosi_f64_i64: R_I64(inst.a1) = static_cast<int64_t>(R_F64(inst.a2)); break;
      case Opcode::k_fptosi_f64_i32: R_I32(inst.a1) = static_cast<int32_t>(R_F64(inst.a2)); break;
      case Opcode::k_uitofp_i64_f64: R_F64(inst.a1) = static_cast<double>(R_U64(inst.a2)); break;
      case Opcode::k_bitcast_i64_f64: R_U64(inst.a1) = R_U64(inst.a2); break;
      case Opcode::k_bitcast_f64_i64: R_U64(inst.a1) = R_U64(inst.a2); break;

      case Opcode::k_select_i32: R_U32(inst.a1) = R_U8(inst.a2) ? R_U32(inst.a3) : R_U32(static_cast<uint32_t>(inst.lit)); break;
      case Opcode::k_select_i64: R_U64(inst.a1) = R_U8(inst.a2) ? R_U64(inst.a3) : R_U64(static_cast<uint32_t>(inst.lit)); break;
      case Opcode::k_select_f64: R_F64(inst.a1) = R_U8(inst.a2) ? R_F64(inst.a3) : R_F64(static_cast<uint32_t>(inst.lit)); break;

      case Opcode::k_load_i8: R_U8(inst.a1) = *reinterpret_cast<const uint8_t*>(MEM_ADDR(inst)); break;
      case Opcode::k_load_i16: R_U16(inst.a1) = *reinterpret_cast<const uint16_t*>(MEM_ADDR(inst)); break;
      case Opcode::k_load_i32: R_U32(inst.a1) = *reinterpret_cast<const uint32_t*>(MEM_ADDR(inst)); break;
      case Opcode::k_load_i64: R_U64(inst.a1) = *reinterpret_cast<const uint64_t*>(MEM_ADDR(inst)); break;
      case Opcode::k_load_f64: R_F64(inst.a1) = *reinterpret_cast<const double*>(MEM_ADDR(inst)); break;
      case Opcode::k_store_i8: *reinterpret_cast<uint8_t*>(MEM_ADDR(inst)) = R_U8(inst.a1); break;
      case Opcode::k_store_i16: *reinterpret_cast<uint16_t*>(MEM_ADDR(inst)) = R_U16(inst.a1); break;
      case Opcode::k_store_i32: *reinterpret_cast<uint32_t*>(MEM_ADDR(inst)) = R_U32(inst.a1); break;
      case Opcode::k_store_i64: *reinterpret_cast<uint64_t*>(MEM_ADDR(inst)) = R_U64(inst.a1); break;
      case Opcode::k_store_f64: *reinterpret_cast<double*>(MEM_ADDR(inst)) = R_F64(inst.a1); break;

      case Opcode::k_load_idx_i8: R_U8(inst.a1) = *reinterpret_cast<const uint8_t*>(IDX_ADDR(inst)); break;
      case Opcode::k_load_idx_i16: R_U16(inst.a1) = *reinterpret_cast<const uint16_t*>(IDX_ADDR(inst)); break;
      case Opcode::k_load_idx_i32: R_U32(inst.a1) = *reinterpret_cast<const uint32_t*>(IDX_ADDR(inst)); break;
      case Opcode::k_load_idx_i64: R_U64(inst.a1) = *reinterpret_cast<const uint64_t*>(IDX_ADDR(inst)); break;
      case Opcode::k_load_idx_f64: R_F64(inst.a1) = *reinterpret_cast<const double*>(IDX_ADDR(inst)); break;
      case Opcode::k_store_idx_i8: *reinterpret_cast<uint8_t*>(IDX_ADDR(inst)) = R_U8(inst.a1); break;
      case Opcode::k_store_idx_i16: *reinterpret_cast<uint16_t*>(IDX_ADDR(inst)) = R_U16(inst.a1); break;
      case Opcode::k_store_idx_i32: *reinterpret_cast<uint32_t*>(IDX_ADDR(inst)) = R_U32(inst.a1); break;
      case Opcode::k_store_idx_i64: *reinterpret_cast<uint64_t*>(IDX_ADDR(inst)) = R_U64(inst.a1); break;
      case Opcode::k_store_idx_f64: *reinterpret_cast<double*>(IDX_ADDR(inst)) = R_F64(inst.a1); break;

      case Opcode::k_gep: R_PTR(inst.a1) = R_PTR(inst.a2) + R_I64(inst.a3) * UnpackScale(inst.lit) + UnpackOffset(inst.lit); break;
      case Opcode::k_gep_const: R_PTR(inst.a1) = R_PTR(inst.a2) + static_cast<int32_t>(static_cast<uint32_t>(inst.lit)); break;

      case Opcode::k_br: ip = inst.lit; break;
      case Opcode::k_condbr: ip = R_U8(inst.a1) ? inst.a2 : inst.a3; break;
      case Opcode::k_ret_void: return 0;
      case Opcode::k_ret: return R_U64(inst.a1);
      case Opcode::k_trap: AQE_UNREACHABLE("VM trap (llvm unreachable)");

      case Opcode::k_call_i64_0: R_U64(inst.a1) = reinterpret_cast<F0>(inst.lit)(); break;
      case Opcode::k_call_i64_1: R_U64(inst.a1) = reinterpret_cast<F1>(inst.lit)(R_U64(inst.a2)); break;
      case Opcode::k_call_i64_2: R_U64(inst.a1) = reinterpret_cast<F2>(inst.lit)(R_U64(inst.a2), R_U64(inst.a3)); break;
      case Opcode::k_call_void_0: reinterpret_cast<F0>(inst.lit)(); break;
      case Opcode::k_call_void_1: reinterpret_cast<F1>(inst.lit)(R_U64(inst.a1)); break;
      case Opcode::k_call_void_2: reinterpret_cast<F2>(inst.lit)(R_U64(inst.a1), R_U64(inst.a2)); break;
      case Opcode::k_push_arg: AQE_CHECK(argn < 8); argbuf[argn++] = R_U64(inst.a1); break;
      case Opcode::k_call_i64_n: R_U64(inst.a1) = DispatchN(inst.lit, argbuf, inst.a2); argn = 0; break;
      case Opcode::k_call_void_n: DispatchN(inst.lit, argbuf, inst.a2); argn = 0; break;

      case Opcode::kNumOpcodes:
        AQE_UNREACHABLE("bad opcode");
    }
  }
}

void InitRegisters(const BcProgram& program, const uint64_t* args,
                   int num_args, uint8_t* regs) {
  // §IV-A: slots 0 and 8 always hold the constants 0 and 1.
  R_U64(0) = 0;
  R_U64(8) = 1;
  for (const BcProgram::PoolEntry& entry : program.constant_pool) {
    R_U64(entry.offset) = entry.value;
  }
  AQE_CHECK(static_cast<size_t>(num_args) == program.arg_offsets.size());
  for (int i = 0; i < num_args; ++i) {
    R_U64(program.arg_offsets[static_cast<size_t>(i)]) = args[i];
  }
}

#undef R_I8
#undef R_U8
#undef R_I16
#undef R_U16
#undef R_I32
#undef R_U32
#undef R_I64
#undef R_U64
#undef R_F64
#undef R_PTR
#undef IDX_ADDR
#undef MEM_ADDR

constexpr uint32_t kStackRegisterBytes = 16384;

}  // namespace

uint64_t VmExecute(const BcProgram& program, const uint64_t* args,
                   int num_args) {
  AQE_CHECK(!program.code.empty());
  if (program.register_file_size <= kStackRegisterBytes) {
    alignas(16) uint8_t regs[kStackRegisterBytes];
    InitRegisters(program, args, num_args, regs);
    return Run(program, regs);
  }
  std::vector<uint8_t> heap_regs(program.register_file_size);
  InitRegisters(program, args, num_args, heap_regs.data());
  return Run(program, heap_regs.data());
}

void VmExecuteWorker(const BcProgram& program, void* state, uint64_t begin,
                     uint64_t end) {
  uint64_t args[4] = {reinterpret_cast<uint64_t>(state), begin, end,
                      reinterpret_cast<uint64_t>(&program)};
  VmExecute(program, args, static_cast<int>(program.arg_offsets.size()));
}

}  // namespace aqe
