#include "vm/interpreter.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"

// The threaded engine needs the GCC/Clang label-address extension.
#if defined(__GNUC__) || defined(__clang__)
#define AQE_VM_HAS_COMPUTED_GOTO 1
#else
#define AQE_VM_HAS_COMPUTED_GOTO 0
#endif

namespace aqe {
namespace {

// Register accessors: `regs` is the register file; a1..a3 are 8-byte *slot
// indices* (the compact encoding keeps them in 16 bits), so the byte address
// is regs + (slot << 3). Narrow values occupy the low bytes of their slot.
#define RSLOT(slot) (regs + (static_cast<size_t>(slot) << 3))
#define R_I8(slot) (*reinterpret_cast<int8_t*>(RSLOT(slot)))
#define R_U8(slot) (*reinterpret_cast<uint8_t*>(RSLOT(slot)))
#define R_I16(slot) (*reinterpret_cast<int16_t*>(RSLOT(slot)))
#define R_U16(slot) (*reinterpret_cast<uint16_t*>(RSLOT(slot)))
#define R_I32(slot) (*reinterpret_cast<int32_t*>(RSLOT(slot)))
#define R_U32(slot) (*reinterpret_cast<uint32_t*>(RSLOT(slot)))
#define R_I64(slot) (*reinterpret_cast<int64_t*>(RSLOT(slot)))
#define R_U64(slot) (*reinterpret_cast<uint64_t*>(RSLOT(slot)))
#define R_F64(slot) (*reinterpret_cast<double*>(RSLOT(slot)))
#define R_PTR(slot) (*reinterpret_cast<uint8_t**>(RSLOT(slot)))

// Call-target casts. All runtime functions use i64-compatible args/returns
// (see RuntimeRegistry).
using F0 = uint64_t (*)();
using F1 = uint64_t (*)(uint64_t);
using F2 = uint64_t (*)(uint64_t, uint64_t);
using F3 = uint64_t (*)(uint64_t, uint64_t, uint64_t);
using F4 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t);
using F5 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t);
using F6 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                        uint64_t);
using F7 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                        uint64_t, uint64_t);
using F8 = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                        uint64_t, uint64_t, uint64_t);

uint64_t DispatchN(uint64_t target, const uint64_t* a, uint32_t n) {
  switch (n) {
    case 0: return reinterpret_cast<F0>(target)();
    case 1: return reinterpret_cast<F1>(target)(a[0]);
    case 2: return reinterpret_cast<F2>(target)(a[0], a[1]);
    case 3: return reinterpret_cast<F3>(target)(a[0], a[1], a[2]);
    case 4: return reinterpret_cast<F4>(target)(a[0], a[1], a[2], a[3]);
    case 5: return reinterpret_cast<F5>(target)(a[0], a[1], a[2], a[3], a[4]);
    case 6:
      return reinterpret_cast<F6>(target)(a[0], a[1], a[2], a[3], a[4], a[5]);
    case 7:
      return reinterpret_cast<F7>(target)(a[0], a[1], a[2], a[3], a[4], a[5],
                                          a[6]);
    case 8:
      return reinterpret_cast<F8>(target)(a[0], a[1], a[2], a[3], a[4], a[5],
                                          a[6], a[7]);
  }
  AQE_UNREACHABLE("bad call arity");
}

/// Address computation of the fused GEP+memory macro ops (§IV-F):
/// base + index * scale + offset, all from one instruction.
#define IDX_ADDR(inst) \
  (R_PTR((inst)->a2) + R_I64((inst)->a3) * UnpackScale((inst)->lit) + \
   UnpackOffset((inst)->lit))
#define MEM_ADDR(inst) \
  (R_PTR((inst)->a2) + \
   static_cast<int32_t>(static_cast<uint32_t>((inst)->lit)))
/// Compare-and-branch superinstructions: jump to the packed then/else target.
#define VM_CMP_BR(expr) \
  ip = code + ((expr) ? UnpackThenTarget(I->lit) : UnpackElseTarget(I->lit))

/// Element loads of the load-compare-and-branch superinstructions
/// (br_load_*): the scale is implied by the element type and the byte offset
/// is zero — the peephole only fuses that GEP shape, because `lit` carries
/// the branch targets and has no room for a scale/offset immediate.
#define LCB_I32(inst) \
  (*reinterpret_cast<const int32_t*>(R_PTR((inst)->a2) + R_I64((inst)->a3) * 4))
#define LCB_U32(inst)                                                        \
  (*reinterpret_cast<const uint32_t*>(R_PTR((inst)->a2) +                    \
                                      R_I64((inst)->a3) * 4))
#define LCB_I64(inst) \
  (*reinterpret_cast<const int64_t*>(R_PTR((inst)->a2) + R_I64((inst)->a3) * 8))
#define LCB_U64(inst)                                                        \
  (*reinterpret_cast<const uint64_t*>(R_PTR((inst)->a2) +                    \
                                      R_I64((inst)->a3) * 8))

/// Double view of a literal-pool immediate (br_*_f64_imm).
inline double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Per-opcode dispatch counts collected under AQE_VM_PROFILE (or the
/// programmatic VmSetProfileCounting switch); feeds the hot-order list that
/// drives the handler layout in interpreter_ops.inc, and the engine's
/// metrics snapshot.
std::atomic<uint64_t>
    g_dispatch_counts[static_cast<size_t>(Opcode::kNumOpcodes)];

/// Runtime (env-independent) switch: lets the engine's observability API
/// enable per-opcode counting for a phase and read the counts back without
/// restarting the process.
std::atomic<bool> g_profile_counting{false};

void VmProfileDumpAtExit() {
  const char* dest = std::getenv("AQE_VM_PROFILE");
  std::string list = VmProfileHotOrder();
  FILE* f = stderr;
  if (dest != nullptr && dest[0] != '\0' && std::strcmp(dest, "1") != 0) {
    f = std::fopen(dest, "w");
    if (f == nullptr) f = stderr;
  }
  std::fprintf(f, "# AQE_VM_PROFILE hot-order dispatch counts\n%s",
               list.c_str());
  if (f != stderr) std::fclose(f);
}

bool VmProfileEnabledImpl() {
  const char* v = std::getenv("AQE_VM_PROFILE");
  const bool on =
      v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  if (on) std::atexit(VmProfileDumpAtExit);
  return on;
}

/// The classic interpreter loop (Fig 8): one switch, one shared indirect
/// branch that every opcode funnels through. The kProfile instantiation
/// counts every dispatch (AQE_VM_PROFILE); the regular one stays count-free.
template <bool kProfile>
uint64_t RunSwitch(const BcProgram& program, uint8_t* regs) {
  const BcInstruction* code = program.code.data();
  const uint64_t* lp = program.literal_pool.data();
  uint64_t argbuf[8];
  uint32_t argn = 0;
  const BcInstruction* ip = code;
  const BcInstruction* I;
  for (;;) {
    I = ip++;
    if constexpr (kProfile) {
      g_dispatch_counts[I->op].fetch_add(1, std::memory_order_relaxed);
    }
    switch (static_cast<Opcode>(I->op)) {
#define VM_CASE(name) case Opcode::k_##name: {
#define VM_NEXT \
  }             \
  break
#include "vm/interpreter_ops.inc"
#undef VM_CASE
#undef VM_NEXT
      case Opcode::kNumOpcodes:
        AQE_UNREACHABLE("bad opcode");
    }
  }
}

#if AQE_VM_HAS_COMPUTED_GOTO
/// Direct-threaded dispatch: a label per opcode and a computed goto at the
/// end of every handler, so each opcode owns its own indirect branch and the
/// branch predictor can learn per-opcode successor patterns (the classic
/// threaded-code win over the shared switch dispatch site).
uint64_t RunThreaded(const BcProgram& program, uint8_t* regs) {
  static const void* kTargets[] = {
#define AQE_LABEL_ADDR(name) &&T_##name,
      AQE_OPCODE_LIST(AQE_LABEL_ADDR)
#undef AQE_LABEL_ADDR
  };
  const BcInstruction* code = program.code.data();
  const uint64_t* lp = program.literal_pool.data();
  uint64_t argbuf[8];
  uint32_t argn = 0;
  const BcInstruction* ip = code;
  const BcInstruction* I;
  I = ip++;
  goto* kTargets[I->op];
#define VM_CASE(name) T_##name : {
#define VM_NEXT \
  }             \
  I = ip++;     \
  goto* kTargets[I->op]
#include "vm/interpreter_ops.inc"
#undef VM_CASE
#undef VM_NEXT
}
#endif  // AQE_VM_HAS_COMPUTED_GOTO

void InitRegisters(const BcProgram& program, const uint64_t* args,
                   int num_args, uint8_t* regs) {
  // §IV-A: slots 0 and 1 always hold the constants 0 and 1.
  R_U64(0) = 0;
  R_U64(1) = 1;
  for (const BcProgram::PoolEntry& entry : program.constant_pool) {
    R_U64(entry.slot) = entry.value;
  }
  AQE_CHECK(static_cast<size_t>(num_args) == program.arg_offsets.size());
  for (int i = 0; i < num_args; ++i) {
    R_U64(program.arg_offsets[static_cast<size_t>(i)]) = args[i];
  }
}

#undef RSLOT
#undef R_I8
#undef R_U8
#undef R_I16
#undef R_U16
#undef R_I32
#undef R_U32
#undef R_I64
#undef R_U64
#undef R_F64
#undef R_PTR
#undef IDX_ADDR
#undef MEM_ADDR
#undef VM_CMP_BR
#undef LCB_I32
#undef LCB_U32
#undef LCB_I64
#undef LCB_U64

constexpr uint32_t kStackRegisterBytes = 16384;

uint64_t Run(const BcProgram& program, uint8_t* regs, VmDispatch dispatch) {
  // Opcode frequencies are engine-independent, so the profile build always
  // runs the (counting) switch engine and the hot loops stay count-free.
  if (VmProfileEnabled() ||
      g_profile_counting.load(std::memory_order_relaxed)) {
    return RunSwitch<true>(program, regs);
  }
#if AQE_VM_HAS_COMPUTED_GOTO
  if (dispatch == VmDispatch::kThreaded) return RunThreaded(program, regs);
#endif
  (void)dispatch;
  return RunSwitch<false>(program, regs);
}

}  // namespace

bool VmProfileEnabled() {
  static const bool on = VmProfileEnabledImpl();
  return on;
}

std::string VmProfileHotOrder() {
  std::vector<std::pair<uint64_t, uint16_t>> rows;
  for (uint16_t op = 0; op < static_cast<uint16_t>(Opcode::kNumOpcodes);
       ++op) {
    uint64_t n = g_dispatch_counts[op].load(std::memory_order_relaxed);
    if (n != 0) rows.emplace_back(n, op);
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::string out;
  char line[96];
  for (const auto& [n, op] : rows) {
    std::snprintf(line, sizeof(line), "%14llu %s\n",
                  static_cast<unsigned long long>(n),
                  OpcodeName(static_cast<Opcode>(op)));
    out += line;
  }
  return out;
}

void VmSetProfileCounting(bool enabled) {
  g_profile_counting.store(enabled, std::memory_order_relaxed);
}

bool VmProfileCountingEnabled() {
  return VmProfileEnabled() ||
         g_profile_counting.load(std::memory_order_relaxed);
}

std::vector<VmOpcodeCount> VmProfileCounts() {
  std::vector<VmOpcodeCount> counts;
  for (uint16_t op = 0; op < static_cast<uint16_t>(Opcode::kNumOpcodes);
       ++op) {
    uint64_t n = g_dispatch_counts[op].load(std::memory_order_relaxed);
    if (n != 0) counts.push_back({OpcodeName(static_cast<Opcode>(op)), n});
  }
  return counts;
}

void VmResetProfileCounts() {
  for (auto& count : g_dispatch_counts) {
    count.store(0, std::memory_order_relaxed);
  }
}

bool VmThreadedDispatchAvailable() { return AQE_VM_HAS_COMPUTED_GOTO != 0; }

VmDispatch VmResolveDispatch(VmDispatch dispatch) {
  if (dispatch == VmDispatch::kDefault) {
#if defined(AQE_VM_DISPATCH_SWITCH)
    dispatch = VmDispatch::kSwitch;
#else
    dispatch = VmDispatch::kThreaded;
#endif
  }
  if (dispatch == VmDispatch::kThreaded && !VmThreadedDispatchAvailable()) {
    dispatch = VmDispatch::kSwitch;
  }
  return dispatch;
}

uint64_t VmExecute(const BcProgram& program, const uint64_t* args,
                   int num_args, VmDispatch dispatch) {
  AQE_CHECK(!program.code.empty());
  if (dispatch == VmDispatch::kDefault) dispatch = program.dispatch;
  dispatch = VmResolveDispatch(dispatch);
  if (program.register_file_size <= kStackRegisterBytes) {
    alignas(16) uint8_t regs[kStackRegisterBytes];
    InitRegisters(program, args, num_args, regs);
    return Run(program, regs, dispatch);
  }
  std::vector<uint8_t> heap_regs(program.register_file_size);
  InitRegisters(program, args, num_args, heap_regs.data());
  return Run(program, heap_regs.data(), dispatch);
}

void VmExecuteWorker(const BcProgram& program, void* state, uint64_t begin,
                     uint64_t end) {
  // The worker ABI has exactly four parameters; a program expecting more
  // would read past `args` — fail loudly instead.
  AQE_CHECK(program.arg_offsets.size() <= 4);
  uint64_t args[4] = {reinterpret_cast<uint64_t>(state), begin, end,
                      reinterpret_cast<uint64_t>(&program)};
  VmExecute(program, args, static_cast<int>(program.arg_offsets.size()));
}

}  // namespace aqe
