#ifndef AQE_VM_REGISTER_ALLOCATOR_H_
#define AQE_VM_REGISTER_ALLOCATOR_H_

#include <cstdint>
#include <vector>

namespace aqe {

/// Register-allocation strategies compared in §IV-C (the TPC-DS q55
/// anecdote: no-reuse 36 KB, windowed 21 KB, loop-aware 6 KB).
enum class RegAllocStrategy {
  /// Every value gets a fresh slot; nothing is ever reused.
  kNoReuse,
  /// A slot is reused only if the value's whole live range falls inside one
  /// fixed window of basic blocks — the "consider only a fixed number of
  /// neighboring basic blocks" approach of some JIT compilers.
  kWindow,
  /// Full reuse driven by the paper's loop-aware linear-time live ranges.
  kLoopAware,
};

const char* RegAllocStrategyName(RegAllocStrategy strategy);

/// Hands out 8-byte register-file slots (as slot *indices* — the compact
/// 16-byte instruction encoding stores them in 16-bit fields) and tracks the
/// high-water mark. Slots 0 and 1 are pre-reserved for the constants 0 and 1
/// (§IV-A), so allocation starts at slot 2.
class RegisterAllocator {
 public:
  explicit RegisterAllocator(RegAllocStrategy strategy, int window_size = 16);

  /// Allocates a slot for a value live in blocks [start_block, end_block].
  uint32_t Alloc(int start_block, int end_block);

  /// Allocates a slot that is never released (constants, scratch).
  uint32_t AllocPermanent();

  /// Returns a slot to the free list if the strategy permits reuse.
  void Release(uint32_t slot, int start_block, int end_block);

  /// Register file size in bytes (high-water mark, 8-byte slots).
  uint32_t file_size() const { return next_slot_ * 8; }

 private:
  RegAllocStrategy strategy_;
  int window_size_;
  uint32_t next_slot_ = 2;
  std::vector<uint32_t> free_list_;
};

}  // namespace aqe

#endif  // AQE_VM_REGISTER_ALLOCATOR_H_
