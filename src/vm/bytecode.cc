#include "vm/bytecode.h"

#include <cstdio>

namespace aqe {

const char* OpcodeName(Opcode op) {
  static const char* kNames[] = {
#define AQE_OPCODE_NAME(name) #name,
      AQE_OPCODE_LIST(AQE_OPCODE_NAME)
#undef AQE_OPCODE_NAME
  };
  auto index = static_cast<uint16_t>(op);
  if (index >= static_cast<uint16_t>(Opcode::kNumOpcodes)) return "<bad>";
  return kNames[index];
}

const char* VmDispatchName(VmDispatch dispatch) {
  switch (dispatch) {
    case VmDispatch::kDefault: return "default";
    case VmDispatch::kSwitch: return "switch";
    case VmDispatch::kThreaded: return "threaded";
  }
  return "<bad>";
}

uint64_t BcProgram::AddLiteral(uint64_t value) {
  for (size_t i = 0; i < literal_pool.size(); ++i) {
    if (literal_pool[i] == value) return i;
  }
  literal_pool.push_back(value);
  return literal_pool.size() - 1;
}

uint64_t BcProgram::AddPrivateLiteral(uint64_t value) {
  literal_pool.push_back(value);
  return literal_pool.size() - 1;
}

std::string BcProgram::Disassemble() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "; register file: %u bytes, %zu constants, %zu literals, "
                "%zu args\n",
                register_file_size, constant_pool.size(), literal_pool.size(),
                arg_offsets.size());
  out += line;
  for (size_t i = 0; i < code.size(); ++i) {
    const BcInstruction& inst = code[i];
    std::snprintf(line, sizeof(line), "%04zx %-18s %6u %6u %6u  0x%llx\n", i,
                  OpcodeName(static_cast<Opcode>(inst.op)), inst.a1, inst.a2,
                  inst.a3, static_cast<unsigned long long>(inst.lit));
    out += line;
  }
  return out;
}

}  // namespace aqe
