#include "index/zone_map.h"

#include <algorithm>
#include <limits>

#include "common/status.h"
#include "storage/table.h"

namespace aqe {

namespace {

/// splitmix64 finalizer: cheap, well-mixed hash for the presence filter.
uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool ZoneMaps::PresenceMayContain(const uint64_t* words, int64_t value) {
  const uint64_t h = MixHash(static_cast<uint64_t>(value));
  const uint32_t bits = kPresenceWords * 64;
  const uint32_t b0 = static_cast<uint32_t>(h) % bits;
  const uint32_t b1 = static_cast<uint32_t>(h >> 32) % bits;
  return (words[b0 / 64] >> (b0 % 64) & 1) && (words[b1 / 64] >> (b1 % 64) & 1);
}

ZoneMaps ZoneMaps::Build(const Table& table, uint32_t block_rows) {
  AQE_CHECK(block_rows > 0);
  ZoneMaps zones;
  zones.block_rows_ = block_rows;
  const uint64_t rows = table.num_rows();
  zones.num_blocks_ = (rows + block_rows - 1) / block_rows;
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    if (col.type() == DataType::kF64 || rows == 0) continue;
    ColumnZones cz;
    cz.column = c;
    cz.min.assign(zones.num_blocks_, std::numeric_limits<int64_t>::max());
    cz.max.assign(zones.num_blocks_, std::numeric_limits<int64_t>::min());
    cz.has_presence = table.has_dictionary(c);
    if (cz.has_presence) {
      cz.presence.assign(zones.num_blocks_ * kPresenceWords, 0);
    }
    const uint32_t bits = kPresenceWords * 64;
    for (uint64_t b = 0; b < zones.num_blocks_; ++b) {
      const uint64_t begin = b * block_rows;
      const uint64_t end = std::min(rows, begin + block_rows);
      int64_t lo = cz.min[b], hi = cz.max[b];
      uint64_t* words =
          cz.has_presence ? cz.presence.data() + b * kPresenceWords : nullptr;
      for (uint64_t r = begin; r < end; ++r) {
        const int64_t v = col.GetAsI64(r);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        if (words != nullptr) {
          const uint64_t h = MixHash(static_cast<uint64_t>(v));
          const uint32_t b0 = static_cast<uint32_t>(h) % bits;
          const uint32_t b1 = static_cast<uint32_t>(h >> 32) % bits;
          words[b0 / 64] |= 1ull << (b0 % 64);
          words[b1 / 64] |= 1ull << (b1 % 64);
        }
      }
      cz.min[b] = lo;
      cz.max[b] = hi;
    }
    zones.columns_.push_back(std::move(cz));
  }
  return zones;
}

const ZoneMaps::ColumnZones* ZoneMaps::ForColumn(int column) const {
  for (const ColumnZones& cz : columns_) {
    if (cz.column == column) return &cz;
  }
  return nullptr;
}

uint64_t ZoneMaps::approx_bytes() const {
  uint64_t bytes = 0;
  for (const ColumnZones& cz : columns_) {
    bytes += cz.min.size() * sizeof(int64_t) * 2 +
             cz.presence.size() * sizeof(uint64_t);
  }
  return bytes;
}

}  // namespace aqe
