#include "index/text_index.h"

#include <algorithm>
#include <map>

#include "storage/dictionary.h"

namespace aqe {

namespace {

bool IsTokenByte(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}

/// Appends the maximal alphanumeric runs of `s` to `out`.
void Tokenize(std::string_view s, std::vector<std::string>* out) {
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && !IsTokenByte(s[i])) ++i;
    size_t begin = i;
    while (i < s.size() && IsTokenByte(s[i])) ++i;
    if (i > begin) out->emplace_back(s.substr(begin, i - begin));
  }
}

}  // namespace

TokenIndex TokenIndex::Build(const Dictionary& dict) {
  // std::map keeps tokens sorted, so the flattened layout is deterministic
  // regardless of hash seeds. Token vocabularies are small; build time is
  // dominated by tokenizing the distinct strings, not map overhead.
  std::map<std::string, std::vector<int32_t>> postings;
  std::vector<std::string> tokens;
  for (int32_t code = 0; code < dict.size(); ++code) {
    tokens.clear();
    Tokenize(dict.Get(code), &tokens);
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (const std::string& t : tokens) postings[t].push_back(code);
  }
  TokenIndex index;
  index.tokens_.reserve(postings.size());
  index.offsets_.reserve(postings.size() + 1);
  index.offsets_.push_back(0);
  for (auto& [token, codes] : postings) {
    index.tokens_.push_back(token);
    index.codes_.insert(index.codes_.end(), codes.begin(), codes.end());
    index.offsets_.push_back(index.codes_.size());
  }
  return index;
}

std::vector<std::string> TokenIndex::PatternParts(std::string_view pattern) {
  std::vector<std::string> parts;
  std::string current;
  auto flush = [&]() {
    if (current.size() >= kMinSubpart) parts.push_back(current);
    current.clear();
  };
  for (char c : pattern) {
    // '%' and '_' end the literal chunk ('_' can match a separator, so a
    // sub-part may not continue across it); separator bytes end the
    // sub-part within a chunk.
    if (c == '%' || c == '_' || !IsTokenByte(c)) {
      flush();
    } else {
      current.push_back(c);
    }
  }
  flush();
  return parts;
}

bool TokenIndex::CandidateCodes(std::string_view pattern,
                                std::vector<int32_t>* out,
                                uint64_t* posting_entries_touched) const {
  const std::vector<std::string> parts = PatternParts(pattern);
  if (parts.empty()) return false;
  out->clear();
  std::vector<int32_t> part_codes;
  std::vector<int32_t> merged;
  for (size_t p = 0; p < parts.size(); ++p) {
    // Union of postings over tokens containing the sub-part: a substring
    // scan of the (small) token vocabulary.
    part_codes.clear();
    for (size_t t = 0; t < tokens_.size(); ++t) {
      if (tokens_[t].find(parts[p]) == std::string::npos) continue;
      const size_t begin = offsets_[t], end = offsets_[t + 1];
      part_codes.insert(part_codes.end(), codes_.begin() + begin,
                        codes_.begin() + end);
      if (posting_entries_touched != nullptr) {
        *posting_entries_touched += end - begin;
      }
    }
    std::sort(part_codes.begin(), part_codes.end());
    part_codes.erase(std::unique(part_codes.begin(), part_codes.end()),
                     part_codes.end());
    if (p == 0) {
      *out = part_codes;
    } else {
      merged.clear();
      std::set_intersection(out->begin(), out->end(), part_codes.begin(),
                            part_codes.end(), std::back_inserter(merged));
      out->swap(merged);
    }
    if (out->empty()) break;  // conjunction already empty
  }
  return true;
}

uint64_t TokenIndex::approx_bytes() const {
  uint64_t bytes = offsets_.size() * sizeof(uint64_t) +
                   codes_.size() * sizeof(int32_t);
  for (const std::string& t : tokens_) bytes += t.size() + sizeof(std::string);
  return bytes;
}

}  // namespace aqe
