#include "index/table_index.h"

#include <chrono>

#include "common/status.h"
#include "storage/table.h"

namespace aqe {

std::shared_ptr<const TableIndexes> BuildTableIndexes(
    const Table& table, TableIndexOptions options) {
  const auto t0 = std::chrono::steady_clock::now();
  auto indexes = std::make_shared<TableIndexes>();
  indexes->rows = table.num_rows();
  indexes->zones = ZoneMaps::Build(table, options.zone_block_rows);
  indexes->approx_bytes = indexes->zones.approx_bytes();
  for (int c = 0; c < table.num_columns(); ++c) {
    if (!table.has_dictionary(c)) continue;
    DictCodeIndex idx =
        DictCodeIndex::Build(table.column(c), table.dictionary(c).size());
    indexes->approx_bytes += idx.approx_bytes();
    indexes->dict_indexes.emplace(c, std::move(idx));
  }
  for (const std::string& name : options.text_columns) {
    const int c = table.ColumnIndex(name);
    AQE_CHECK(table.has_dictionary(c));
    TokenIndex idx = TokenIndex::Build(table.dictionary(c));
    indexes->approx_bytes += idx.approx_bytes();
    indexes->text_indexes.emplace(c, std::move(idx));
  }
  indexes->options = std::move(options);
  indexes->build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return indexes;
}

void AttachTableIndexes(Table* table, TableIndexOptions options) {
  table->set_indexes(BuildTableIndexes(*table, std::move(options)));
}

}  // namespace aqe
