#ifndef AQE_INDEX_ZONE_MAP_H_
#define AQE_INDEX_ZONE_MAP_H_

#include <cstdint>
#include <vector>

namespace aqe {

class Table;

/// Per-block min/max summaries over every integer column of a table
/// ("zone maps" / small materialized aggregates), plus a per-block code
/// presence filter for dictionary columns. Blocks are fixed-size row
/// ranges aligned with the morsel queue's initial morsel size, so pruning
/// a block prunes (at least) one would-be morsel. Built once after bulk
/// load; immutable.
class ZoneMaps {
 public:
  /// Presence-filter size: 512 bits per block per dictionary column.
  static constexpr uint32_t kPresenceWords = 8;

  struct ColumnZones {
    int column = -1;
    std::vector<int64_t> min;  ///< per block
    std::vector<int64_t> max;
    /// Dictionary columns only: blocked Bloom filter (2 probes) over the
    /// codes present in each block, so equality on a code can prune blocks
    /// whose [min, max] happens to straddle it.
    bool has_presence = false;
    std::vector<uint64_t> presence;  ///< num_blocks * kPresenceWords
  };

  /// Builds zones for every kI32/kI64 column (F64 columns are skipped — no
  /// query predicate compares them to integer constants).
  static ZoneMaps Build(const Table& table, uint32_t block_rows);

  uint32_t block_rows() const { return block_rows_; }
  uint64_t num_blocks() const { return num_blocks_; }

  /// Zones of one column; nullptr when the column has none (F64 / empty).
  const ColumnZones* ForColumn(int column) const;

  /// Tests `words` (one block's kPresenceWords filter) for `value`. False
  /// positives possible, false negatives impossible.
  static bool PresenceMayContain(const uint64_t* words, int64_t value);

  uint64_t approx_bytes() const;

 private:
  uint32_t block_rows_ = 0;
  uint64_t num_blocks_ = 0;
  std::vector<ColumnZones> columns_;
};

}  // namespace aqe

#endif  // AQE_INDEX_ZONE_MAP_H_
