#include "index/dict_index.h"

#include <algorithm>

#include "common/status.h"
#include "storage/column.h"

namespace aqe {

DictCodeIndex DictCodeIndex::Build(const Column& column, int32_t num_codes) {
  AQE_CHECK(column.type() == DataType::kI32 && num_codes >= 0);
  DictCodeIndex index;
  const uint64_t rows = column.size();
  const size_t n = static_cast<size_t>(num_codes);
  // Counting sort: one pass for per-code counts, one to place row ids —
  // rows are visited in order, so ids come out ascending within each code.
  index.offsets_.assign(n + 1, 0);
  const int32_t* codes = static_cast<const int32_t*>(column.data());
  for (uint64_t r = 0; r < rows; ++r) {
    const int32_t code = codes[r];
    AQE_CHECK(code >= 0 && code < num_codes);
    ++index.offsets_[static_cast<size_t>(code) + 1];
  }
  for (size_t c = 1; c <= n; ++c) index.offsets_[c] += index.offsets_[c - 1];
  index.row_ids_.resize(rows);
  std::vector<uint64_t> cursor(index.offsets_.begin(), index.offsets_.end() - 1);
  for (uint64_t r = 0; r < rows; ++r) {
    index.row_ids_[cursor[static_cast<size_t>(codes[r])]++] =
        static_cast<uint32_t>(r);
  }
  return index;
}

uint64_t DictCodeIndex::CountForCodeRange(int64_t lo, int64_t hi) const {
  lo = std::max<int64_t>(lo, 0);
  hi = std::min<int64_t>(hi, num_codes());
  if (lo >= hi) return 0;
  return offsets_[static_cast<size_t>(hi)] - offsets_[static_cast<size_t>(lo)];
}

void DictCodeIndex::CollectRows(int64_t lo, int64_t hi,
                                std::vector<uint32_t>* out) const {
  lo = std::max<int64_t>(lo, 0);
  hi = std::min<int64_t>(hi, num_codes());
  if (lo >= hi) return;
  out->insert(out->end(), row_ids_.begin() + offsets_[static_cast<size_t>(lo)],
              row_ids_.begin() + offsets_[static_cast<size_t>(hi)]);
}

const uint32_t* DictCodeIndex::RowsBegin(int32_t code) const {
  if (code < 0 || code >= num_codes()) return row_ids_.data();
  return row_ids_.data() + offsets_[static_cast<size_t>(code)];
}

const uint32_t* DictCodeIndex::RowsEnd(int32_t code) const {
  if (code < 0 || code >= num_codes()) return row_ids_.data();
  return row_ids_.data() + offsets_[static_cast<size_t>(code) + 1];
}

}  // namespace aqe
