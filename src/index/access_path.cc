#include "index/access_path.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "index/table_index.h"
#include "storage/table.h"
#include "strings/string_predicate.h"

namespace aqe {

const char* AccessPathKindName(AccessPathKind kind) {
  switch (kind) {
    case AccessPathKind::kFullScan: return "full-scan";
    case AccessPathKind::kZoneMap: return "zone-map";
    case AccessPathKind::kDictRange: return "dict-range";
    case AccessPathKind::kDictBitmap: return "dict-bitmap";
    case AccessPathKind::kTextIndex: return "text-index";
  }
  return "?";
}

namespace {

constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();

/// Conjunctive bounds accumulated per scan slot.
struct SlotInterval {
  int64_t lo = kI64Min;
  int64_t hi = kI64Max;
  bool constrained = false;
  bool empty() const { return lo > hi; }
  void Tighten(int64_t new_lo, int64_t new_hi) {
    lo = std::max(lo, new_lo);
    hi = std::min(hi, new_hi);
    constrained = true;
  }
};

/// One row-granular candidate set derived from an index, with the path
/// that produced it (smallest set wins the "primary path" label).
struct CandidateSet {
  std::vector<uint32_t> rows;  ///< sorted ascending
  AccessPathKind path = AccessPathKind::kFullScan;
};

int MaxSlotUsed(const Expr& e) {
  int max_slot = e.kind == ExprKind::kSlot ? e.slot : -1;
  for (const ExprPtr& child : e.children) {
    max_slot = std::max(max_slot, MaxSlotUsed(*child));
  }
  return max_slot;
}

/// Flattens kAnd trees into a conjunct list.
void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kAnd) {
    for (const ExprPtr& child : e.children) CollectConjuncts(*child, out);
  } else {
    out->push_back(&e);
  }
}

bool IsCompare(ExprKind kind) {
  switch (kind) {
    case ExprKind::kEq:
    case ExprKind::kLt:
    case ExprKind::kLe:
    case ExprKind::kGt:
    case ExprKind::kGe:
      return true;
    default:
      return false;
  }
}

/// Applies `slot <op> value` to the slot's interval.
void ApplyCompare(ExprKind op, int64_t value, SlotInterval* interval) {
  switch (op) {
    case ExprKind::kEq: interval->Tighten(value, value); break;
    case ExprKind::kLt:
      interval->Tighten(kI64Min, value == kI64Min ? kI64Min : value - 1);
      break;
    case ExprKind::kLe: interval->Tighten(kI64Min, value); break;
    case ExprKind::kGt:
      interval->Tighten(value == kI64Max ? kI64Max : value + 1, kI64Max);
      break;
    case ExprKind::kGe: interval->Tighten(value, kI64Max); break;
    default: break;
  }
}

/// The mirrored operator of `value <op> slot`.
ExprKind MirrorCompare(ExprKind op) {
  switch (op) {
    case ExprKind::kLt: return ExprKind::kGt;
    case ExprKind::kLe: return ExprKind::kGe;
    case ExprKind::kGt: return ExprKind::kLt;
    case ExprKind::kGe: return ExprKind::kLe;
    default: return op;  // kEq is symmetric
  }
}

/// Builds block-aligned ranges from the keep bitmap (runs of kept blocks).
std::vector<MorselRange> RangesFromBlocks(const std::vector<char>& keep,
                                          uint32_t block_rows, uint64_t rows) {
  std::vector<MorselRange> ranges;
  for (uint64_t b = 0; b < keep.size();) {
    if (!keep[b]) { ++b; continue; }
    uint64_t e = b;
    while (e < keep.size() && keep[e]) ++e;
    ranges.push_back({b * block_rows, std::min(rows, e * block_rows)});
    b = e;
  }
  return ranges;
}

/// Merges sorted candidate rows into ranges, bridging gaps below the
/// threshold.
std::vector<MorselRange> RangesFromRows(const std::vector<uint32_t>& rows,
                                        uint64_t merge_gap) {
  std::vector<MorselRange> ranges;
  for (uint32_t r : rows) {
    if (!ranges.empty() && r < ranges.back().end + merge_gap) {
      ranges.back().end = static_cast<uint64_t>(r) + 1;
    } else {
      ranges.push_back({r, static_cast<uint64_t>(r) + 1});
    }
  }
  return ranges;
}

}  // namespace

ScanPruning AnalyzeScanPruning(const PipelineSpec& spec, const Table& table,
                               const AccessPathOptions& options) {
  ScanPruning result;
  const TableIndexes* idx = table.indexes();
  result.stats.table_rows = table.num_rows();
  result.stats.selected_rows = table.num_rows();
  if (idx == nullptr) return result;
  const auto t0 = std::chrono::steady_clock::now();
  result.stats.analyzed = true;
  result.stats.zone_blocks_total = idx->zones.num_blocks();
  const uint64_t rows = table.num_rows();
  const int num_scan_slots = static_cast<int>(spec.scan_columns.size());

  // 1. Gather the usable conjuncts: every OpFilter in the chain, flattened
  // across kAnd, restricted to predicates over scan slots only. Ops never
  // *add* source rows a filter could resurrect, so a row failing any such
  // conjunct contributes nothing to the sink — pruning it is sound.
  std::vector<const Expr*> conjuncts;
  for (const PipelineOp& op : spec.ops) {
    if (const OpFilter* filter = std::get_if<OpFilter>(&op)) {
      CollectConjuncts(*filter->predicate, &conjuncts);
    }
  }

  std::vector<SlotInterval> intervals(static_cast<size_t>(num_scan_slots));
  struct BitmapPred { int slot; const uint8_t* bitmap; };
  struct TextPred { int slot; const LikePredicate* pred; };
  std::vector<BitmapPred> bitmap_preds;
  std::vector<TextPred> text_preds;
  for (const Expr* c : conjuncts) {
    if (MaxSlotUsed(*c) >= num_scan_slots) continue;
    if (IsCompare(c->kind)) {
      const Expr& lhs = *c->children[0];
      const Expr& rhs = *c->children[1];
      if (lhs.kind == ExprKind::kSlot && rhs.kind == ExprKind::kConstI64) {
        ApplyCompare(c->kind, rhs.i64_value,
                     &intervals[static_cast<size_t>(lhs.slot)]);
      } else if (lhs.kind == ExprKind::kConstI64 &&
                 rhs.kind == ExprKind::kSlot) {
        ApplyCompare(MirrorCompare(c->kind), lhs.i64_value,
                     &intervals[static_cast<size_t>(rhs.slot)]);
      }
    } else if (c->kind == ExprKind::kBitmapTest &&
               c->children[0]->kind == ExprKind::kSlot) {
      bitmap_preds.push_back({c->children[0]->slot, c->bitmap});
    } else if (c->kind == ExprKind::kLike &&
               c->children[0]->kind == ExprKind::kSlot &&
               c->like_pred != nullptr) {
      text_preds.push_back({c->children[0]->slot, c->like_pred});
    }
    // Everything else (kOr, kNot, arithmetic, computed slots) stays
    // residual-only.
  }

  auto finish = [&](std::shared_ptr<const ScanDomain> domain,
                    uint64_t selected) {
    result.stats.selected_rows = selected;
    result.stats.analysis_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (domain != nullptr) {
      result.stats.domain_ranges =
          static_cast<uint32_t>(domain->ranges.size());
    }
    result.domain = std::move(domain);
    return result;
  };

  // Contradictory bounds (e.g. equality with a code the dictionary doesn't
  // contain lowers to `slot == -1` on a non-negative code column... or any
  // empty interval): nothing can match.
  for (int s = 0; s < num_scan_slots; ++s) {
    SlotInterval& iv = intervals[static_cast<size_t>(s)];
    // Codes are non-negative: clamp dict-column intervals so an absent-code
    // equality (slot == -1) becomes visibly empty.
    if (iv.constrained && table.has_dictionary(spec.scan_columns[s])) {
      iv.lo = std::max<int64_t>(iv.lo, 0);
      iv.hi = std::min<int64_t>(
          iv.hi, table.dictionary(spec.scan_columns[s]).size() - 1);
    }
    if (iv.constrained && iv.empty()) {
      result.stats.primary_path = AccessPathKind::kZoneMap;
      result.stats.zone_blocks_pruned = result.stats.zone_blocks_total;
      return finish(ScanDomain::Make({}, rows), 0);
    }
  }

  // 2. Zone-map pass: block-granular keep bitmap from the interval bounds
  // plus the presence filter for point lookups on dictionary columns.
  const uint32_t block_rows = idx->zones.block_rows();
  std::vector<char> keep(idx->zones.num_blocks(), 1);
  bool zones_used = false;
  for (int s = 0; s < num_scan_slots; ++s) {
    const SlotInterval& iv = intervals[static_cast<size_t>(s)];
    if (!iv.constrained) continue;
    const ZoneMaps::ColumnZones* cz =
        idx->zones.ForColumn(spec.scan_columns[s]);
    if (cz == nullptr) continue;
    zones_used = true;
    const bool point = iv.lo == iv.hi && cz->has_presence;
    for (uint64_t b = 0; b < keep.size(); ++b) {
      if (!keep[b]) continue;
      if (iv.hi < cz->min[b] || iv.lo > cz->max[b]) {
        keep[b] = 0;
      } else if (point &&
                 !ZoneMaps::PresenceMayContain(
                     cz->presence.data() + b * ZoneMaps::kPresenceWords,
                     iv.lo)) {
        keep[b] = 0;
      }
    }
  }
  uint64_t blocks_kept = 0;
  for (char k : keep) blocks_kept += k;
  result.stats.zone_blocks_pruned = keep.size() - blocks_kept;

  // 3. Row-granular candidate sets from the CSR / token indexes. Each set
  // is a superset of the rows its predicate can match; the conjunction is
  // their intersection.
  std::vector<CandidateSet> sets;
  const uint64_t max_candidates = static_cast<uint64_t>(
      options.max_candidate_fraction * static_cast<double>(rows));
  auto dict_index_for = [&](int slot) -> const DictCodeIndex* {
    auto it = idx->dict_indexes.find(spec.scan_columns[slot]);
    return it == idx->dict_indexes.end() ? nullptr : &it->second;
  };
  // 3a. Narrow code ranges on dictionary columns (equality and LIKE-prefix
  // lowered to code-range compares).
  for (int s = 0; s < num_scan_slots; ++s) {
    const SlotInterval& iv = intervals[static_cast<size_t>(s)];
    if (!iv.constrained || (iv.lo == kI64Min && iv.hi == kI64Max)) continue;
    const DictCodeIndex* csr = dict_index_for(s);
    if (csr == nullptr) continue;
    const int64_t hi = iv.hi == kI64Max ? csr->num_codes() : iv.hi + 1;
    if (csr->CountForCodeRange(iv.lo, hi) > max_candidates) continue;
    CandidateSet set;
    set.path = AccessPathKind::kDictRange;
    csr->CollectRows(iv.lo, hi, &set.rows);
    std::sort(set.rows.begin(), set.rows.end());
    sets.push_back(std::move(set));
  }
  // 3b. Bitmap membership (pre-evaluated LIKE / IN bitmaps).
  for (const BitmapPred& bp : bitmap_preds) {
    const DictCodeIndex* csr = dict_index_for(bp.slot);
    if (csr == nullptr) continue;
    const int32_t codes = csr->num_codes();
    uint64_t count = 0;
    for (int32_t c = 0; c < codes; ++c) {
      if (bp.bitmap[c]) count += csr->CountForCodeRange(c, c + 1);
    }
    if (count > max_candidates) continue;
    CandidateSet set;
    set.path = AccessPathKind::kDictBitmap;
    set.rows.reserve(count);
    for (int32_t c = 0; c < codes; ++c) {
      if (bp.bitmap[c]) csr->CollectRows(c, c + 1, &set.rows);
    }
    std::sort(set.rows.begin(), set.rows.end());
    sets.push_back(std::move(set));
  }
  // 3c. Inverted token index for LIKE runtime-call predicates.
  for (const TextPred& tp : text_preds) {
    auto it = idx->text_indexes.find(spec.scan_columns[tp.slot]);
    const DictCodeIndex* csr = dict_index_for(tp.slot);
    if (it == idx->text_indexes.end() || csr == nullptr) continue;
    std::vector<int32_t> codes;
    if (!it->second.CandidateCodes(tp.pred->matcher.pattern(), &codes,
                                   &result.stats.posting_entries)) {
      continue;
    }
    uint64_t count = 0;
    for (int32_t c : codes) count += csr->CountForCodeRange(c, c + 1);
    if (count > max_candidates) continue;
    CandidateSet set;
    set.path = AccessPathKind::kTextIndex;
    set.rows.reserve(count);
    for (int32_t c : codes) csr->CollectRows(c, c + 1, &set.rows);
    std::sort(set.rows.begin(), set.rows.end());
    sets.push_back(std::move(set));
  }

  // 4. Combine: intersect the candidate sets, drop candidates in
  // zone-pruned blocks, merge into ranges. Without candidate sets the kept
  // blocks are the domain.
  std::vector<MorselRange> ranges;
  if (!sets.empty()) {
    size_t primary = 0;
    for (size_t i = 1; i < sets.size(); ++i) {
      if (sets[i].rows.size() < sets[primary].rows.size()) primary = i;
    }
    result.stats.primary_path = sets[primary].path;
    std::vector<uint32_t> candidates = std::move(sets[0].rows);
    std::vector<uint32_t> merged;
    for (size_t i = 1; i < sets.size(); ++i) {
      merged.clear();
      std::set_intersection(candidates.begin(), candidates.end(),
                            sets[i].rows.begin(), sets[i].rows.end(),
                            std::back_inserter(merged));
      candidates.swap(merged);
    }
    if (result.stats.zone_blocks_pruned > 0) {
      candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                      [&](uint32_t r) {
                                        return !keep[r / block_rows];
                                      }),
                       candidates.end());
    }
    result.stats.candidate_rows = candidates.size();
    ranges = RangesFromRows(candidates, options.merge_gap_rows);
  } else if (zones_used && result.stats.zone_blocks_pruned > 0) {
    result.stats.primary_path = AccessPathKind::kZoneMap;
    ranges = RangesFromBlocks(keep, block_rows, rows);
  } else {
    return finish(nullptr, rows);  // nothing to prune with
  }

  std::shared_ptr<const ScanDomain> domain = ScanDomain::Make(ranges, rows);
  const uint64_t selected = domain->selected();
  if (static_cast<double>(rows - selected) <
      options.min_prune_fraction * static_cast<double>(rows)) {
    // Not selective enough to pay the per-range overhead: keep the dense
    // scan (stats still report what the analysis found).
    result.stats.primary_path = AccessPathKind::kFullScan;
    return finish(nullptr, rows);
  }
  return finish(std::move(domain), selected);
}

}  // namespace aqe
