#ifndef AQE_INDEX_TEXT_INDEX_H_
#define AQE_INDEX_TEXT_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aqe {

class Dictionary;

/// Inverted token index over a dictionary-encoded text column: the distinct
/// strings are tokenized at build time (maximal alphanumeric runs) and each
/// token maps to the sorted list of dictionary *codes* containing it. Rows
/// are resolved through the column's DictCodeIndex, so postings stay as
/// small as the token dictionary — for comment-style columns the token
/// vocabulary is tiny while the code space is huge, which is exactly the
/// regime where the per-row LIKE call path drowns (BENCH_strings highcard).
///
/// Candidate generation is a strict superset of the true matches: every
/// literal alphanumeric sub-part of the pattern must appear inside some
/// token of a matching string, so intersecting per-sub-part posting unions
/// can never lose a match. The residual LikeMatcher verify on the surviving
/// rows restores exact semantics.
class TokenIndex {
 public:
  /// Sub-parts shorter than this are ignored for candidate generation
  /// (they match nearly everything and only cost intersection time).
  static constexpr size_t kMinSubpart = 2;

  static TokenIndex Build(const Dictionary& dict);

  size_t num_tokens() const { return tokens_.size(); }
  uint64_t posting_entries() const { return codes_.size(); }

  /// The literal alphanumeric sub-parts of a LIKE pattern usable for
  /// candidate generation: the pattern is split at '%' and '_' into literal
  /// chunks, each chunk split again at non-alphanumeric bytes; sub-parts
  /// shorter than kMinSubpart are dropped. Any string matching the pattern
  /// contains each sub-part inside one of its tokens.
  static std::vector<std::string> PatternParts(std::string_view pattern);

  /// Sorted candidate dictionary codes for `pattern`: the intersection over
  /// sub-parts of the union of postings of tokens containing the sub-part.
  /// Returns false when the pattern has no usable sub-part (index cannot
  /// help); true with a possibly-empty `out` otherwise.
  /// `posting_entries_touched` (optional) accumulates the posting-list
  /// lengths read — the observability "work done by the index" number.
  bool CandidateCodes(std::string_view pattern, std::vector<int32_t>* out,
                      uint64_t* posting_entries_touched = nullptr) const;

  uint64_t approx_bytes() const;

 private:
  std::vector<std::string> tokens_;  ///< sorted (deterministic layout)
  std::vector<uint64_t> offsets_;    ///< token t postings = codes_[offsets_[t], offsets_[t+1])
  std::vector<int32_t> codes_;       ///< ascending within each token
};

}  // namespace aqe

#endif  // AQE_INDEX_TEXT_INDEX_H_
