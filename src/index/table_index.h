#ifndef AQE_INDEX_TABLE_INDEX_H_
#define AQE_INDEX_TABLE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/dict_index.h"
#include "index/text_index.h"
#include "index/zone_map.h"

namespace aqe {

class Table;

struct TableIndexOptions {
  /// Zone-map block size in rows. Matches the morsel queue's initial morsel
  /// size so "blocks pruned" is "morsels never scheduled".
  uint32_t zone_block_rows = 1024;
  /// Names of dictionary columns to build inverted token indexes for
  /// (comment-style text columns probed with %word% patterns).
  std::vector<std::string> text_columns;
};

/// All secondary index structures of one table (see src/index/DESIGN.md).
/// Built once after bulk load + Table::SortDictionaries; immutable, shared
/// by reference from scan-pruning analysis and cached ScanDomains.
struct TableIndexes {
  TableIndexOptions options;
  ZoneMaps zones;
  /// Code → sorted rows, for every dictionary column (keyed by column index).
  std::unordered_map<int, DictCodeIndex> dict_indexes;
  /// Token → codes, for the configured text columns (keyed by column index).
  std::unordered_map<int, TokenIndex> text_indexes;
  uint64_t rows = 0;
  double build_seconds = 0;
  uint64_t approx_bytes = 0;
};

std::shared_ptr<const TableIndexes> BuildTableIndexes(
    const Table& table, TableIndexOptions options = {});

/// Builds and attaches (Table::set_indexes) in one call.
void AttachTableIndexes(Table* table, TableIndexOptions options = {});

}  // namespace aqe

#endif  // AQE_INDEX_TABLE_INDEX_H_
