#ifndef AQE_INDEX_DICT_INDEX_H_
#define AQE_INDEX_DICT_INDEX_H_

#include <cstdint>
#include <vector>

namespace aqe {

class Column;

/// CSR inverted mapping of a dictionary-encoded column: code → the sorted
/// row ids carrying it. Doubles as the hash index over dictionary codes
/// (the dictionary's own hash map resolves string → code in O(1); this
/// structure resolves code → rows in O(result)) and, because codes are
/// grouped contiguously, as the prefix index: after Table::SortDictionaries
/// a LIKE-prefix predicate maps to a code range [lo, hi) via
/// Dictionary::PrefixRange, and that range's rows are one contiguous CSR
/// slice. Built once after bulk load; immutable.
class DictCodeIndex {
 public:
  /// `column` must be the I32 code column; `num_codes` its dictionary size.
  static DictCodeIndex Build(const Column& column, int32_t num_codes);

  int32_t num_codes() const { return static_cast<int32_t>(offsets_.size()) - 1; }
  uint64_t rows() const { return row_ids_.size(); }

  /// Rows carrying codes in [lo, hi), clamped to the valid code range.
  /// O(1) — offsets difference.
  uint64_t CountForCodeRange(int64_t lo, int64_t hi) const;

  /// Appends the rows carrying codes in [lo, hi) to `out`. Rows are
  /// ascending per code but NOT across codes — the caller sorts once after
  /// collecting all candidate rows.
  void CollectRows(int64_t lo, int64_t hi, std::vector<uint32_t>* out) const;

  /// Row ids carrying exactly `code` (ascending); empty span for codes
  /// outside [0, num_codes).
  const uint32_t* RowsBegin(int32_t code) const;
  const uint32_t* RowsEnd(int32_t code) const;

  uint64_t approx_bytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           row_ids_.size() * sizeof(uint32_t);
  }

 private:
  std::vector<uint64_t> offsets_;  ///< size num_codes + 1
  std::vector<uint32_t> row_ids_;  ///< grouped by code, ascending within
};

}  // namespace aqe

#endif  // AQE_INDEX_DICT_INDEX_H_
