#ifndef AQE_INDEX_ACCESS_PATH_H_
#define AQE_INDEX_ACCESS_PATH_H_

#include <cstdint>
#include <memory>

#include "exec/morsel.h"
#include "plan/pipeline.h"

namespace aqe {

class Table;

/// Which index structure drove a scan's pruning (the most selective one
/// when several combined). Traced and shown in EXPLAIN ANALYZE.
enum class AccessPathKind : uint8_t {
  kFullScan,    ///< no pruning (no indexes, no usable conjunct, not selective)
  kZoneMap,     ///< block-granular min/max (+ presence) pruning only
  kDictRange,   ///< dictionary-code equality/range via the CSR index
  kDictBitmap,  ///< kBitmapTest set-membership via the CSR index
  kTextIndex,   ///< inverted token index posting intersection
};

const char* AccessPathKindName(AccessPathKind kind);

/// What the pruning analysis did and saved — per-pipeline observability.
struct PruningStats {
  bool analyzed = false;         ///< indexes existed and analysis ran
  uint64_t table_rows = 0;
  uint64_t selected_rows = 0;    ///< rows that will enter the morsel queue
  uint64_t zone_blocks_total = 0;
  uint64_t zone_blocks_pruned = 0;
  uint64_t candidate_rows = 0;   ///< row-granular index candidates (0 = none)
  uint64_t posting_entries = 0;  ///< posting-list entries read
  uint32_t domain_ranges = 0;    ///< physical ranges of the final domain
  AccessPathKind primary_path = AccessPathKind::kFullScan;
  double analysis_seconds = 0;

  /// Fraction of the table's rows that will be scheduled (1.0 = full scan).
  double selected_fraction() const {
    return table_rows > 0
               ? static_cast<double>(selected_rows) / table_rows
               : 1.0;
  }
};

/// Result of the access-path decision for one pipeline's scan: a ScanDomain
/// restricting which morsels are ever scheduled (null = full scan) plus the
/// stats above. The domain is a superset of the matching rows — every
/// predicate still runs on the scheduled rows, so results are identical to
/// a full scan by construction.
struct ScanPruning {
  std::shared_ptr<const ScanDomain> domain;
  PruningStats stats;
};

/// Thresholds of the access-path decision rule (src/index/DESIGN.md §4).
struct AccessPathOptions {
  /// Row-granular index candidates are adopted only when they cover at most
  /// this fraction of the table; above it, gathering + sorting the row ids
  /// costs more than letting the scan run with zone-map pruning alone.
  double max_candidate_fraction = 0.10;
  /// Candidate rows closer than this merge into one scheduled range (the
  /// rows in the gap are scanned and filtered by the residual predicate —
  /// cheaper than per-range claim overhead for near-adjacent hits). Kept
  /// small: a range claim costs one CAS + worker invocation (~tens of ns)
  /// while every bridged gap row pays the full residual predicate, so
  /// merging only wins across near-adjacent hits.
  uint64_t merge_gap_rows = 16;
  /// Keep the plain full scan unless at least this fraction of rows is
  /// pruned — a domain with per-range bookkeeping must pay for itself.
  double min_prune_fraction = 0.05;
};

/// Evaluates `spec`'s filter conjuncts against `table.indexes()` and
/// decides the scan's access path. Only conjuncts over scan slots are
/// considered (computed slots and unrecognized shapes are ignored — they
/// stay residual, which is always sound). Returns a no-op full scan when
/// the table has no indexes.
ScanPruning AnalyzeScanPruning(const PipelineSpec& spec, const Table& table,
                               const AccessPathOptions& options = {});

}  // namespace aqe

#endif  // AQE_INDEX_ACCESS_PATH_H_
