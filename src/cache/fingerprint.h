#ifndef AQE_CACHE_FINGERPRINT_H_
#define AQE_CACHE_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "plan/plan.h"
#include "vm/bytecode.h"
#include "vm/translator.h"

namespace aqe {

/// Canonical identity of a query plan, split into the parts that determine
/// the generated artifacts (the structural hash) and the parts that are
/// patchable at hit time (the query constants).
///
/// The structural hash covers the program name, every declaration (tables,
/// join tables, aggregation sets, outputs, bitmap indices), the stage
/// sequence, and each pipeline's operator/sink/expression shape. Expression
/// constants (kConstI64 / kConstF64) are hashed as *placeholders*; their raw
/// 8-byte values are collected into `constants` in deterministic preorder
/// traversal, so two queries differing only in literals share a structural
/// hash and differ in the constant vector. Runtime addresses never enter
/// the fingerprint: workers read them from the per-run binding array.
struct PlanFingerprint {
  uint64_t structural_hash = 0;
  /// Pipeline expression constants, traversal order (f64 bit-cast).
  std::vector<uint64_t> constants;
  /// Hash of `constants` (fast pre-filter; equality is decided on vectors).
  uint64_t constants_hash = 0;
  /// Per-pipeline [begin, end) slice into `constants`.
  std::vector<std::pair<uint32_t, uint32_t>> pipeline_constants;
  /// LIKE patterns (kLike expressions), traversal order — extracted as
  /// literals exactly like numeric constants, but they need no patch slots:
  /// the matcher object reaches the worker through the binding array, so
  /// plans differing only in patterns share bytecode *and* machine code
  /// as-is. Recorded for introspection and tests.
  std::vector<std::string> string_literals;
  std::string plan_name;
};

PlanFingerprint FingerprintProgram(const QueryProgram& program);

/// Folds the translator options that shape bytecode into a cache key: two
/// runs may only share artifacts when they agree on fusion flags and the
/// register-allocation strategy.
uint64_t ArtifactCacheKey(const PlanFingerprint& fingerprint,
                          const TranslatorOptions& options);

/// Maps each of a pipeline's fingerprint constants to the pool slot that
/// materializes it, so a literal-only plan variant can reuse the bytecode by
/// patching `pool_indices` with its own constant values. A slot is either a
/// constant-pool index (plain) or — when the translator folded the constant
/// into an immediate-operand superinstruction (br_*_imm) — a literal-pool
/// index tagged with `kLiteralPoolBit`. Constants with no private slot at
/// all — the values 0/1 (reserved registers) and duplicated literals
/// (interned) — are marked `kPinned`: a variant may still patch-share the
/// bytecode as long as its pinned constants equal the baseline's.
/// `patchable == false` means the mapping could not be established at all
/// (e.g. a constant was folded) and the bytecode may only be reused for an
/// exact constant match.
struct ConstantPatchTable {
  static constexpr uint32_t kPinned = 0xFFFFFFFFu;
  /// Tag: the slot indexes literal_pool, not constant_pool.
  static constexpr uint32_t kLiteralPoolBit = 0x80000000u;
  bool patchable = false;
  std::vector<uint32_t> pool_indices;  ///< one per pipeline constant
};

struct PipelineBindings;

/// Builds the patch table for `real` (the program translated from `spec`
/// with its genuine constants, under `translator_options`): re-runs codegen
/// and translation over a clone of `spec` whose constants are replaced by
/// distinctive sentinel values, then diffs the two constant pools. Any
/// structural difference between the sentinel and real programs makes the
/// pipeline unpatchable — never incorrect.
/// `constants` is the fingerprint constant vector, [begin, end) the
/// pipeline's slice.
ConstantPatchTable BuildConstantPatchTable(
    const BcProgram& real, const PipelineSpec& spec,
    const PipelineBindings& bindings, const RuntimeRegistry& registry,
    const TranslatorOptions& translator_options,
    const std::vector<uint64_t>& constants, uint32_t begin, uint32_t end);

}  // namespace aqe

#endif  // AQE_CACHE_FINGERPRINT_H_
