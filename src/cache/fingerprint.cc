#include "cache/fingerprint.h"

#include <cstring>

#include "codegen/query_compiler.h"
#include "common/status.h"

namespace aqe {
namespace {

/// FNV-1a-style 64-bit hash stream with a 64-bit finalizer mix. Collisions
/// across distinct plan shapes are what tests/cache_test.cc's suite-wide
/// check guards against.
class HashStream {
 public:
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ = (hash_ ^ ((v >> (8 * i)) & 0xFF)) * 0x100000001B3ULL;
    }
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    for (char c : s) {
      hash_ = (hash_ ^ static_cast<uint8_t>(c)) * 0x100000001B3ULL;
    }
  }
  uint64_t digest() const {
    // splitmix64 finalizer: diffuses the low-entropy FNV state.
    uint64_t z = hash_ + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// Tags keep adjacent fields from aliasing (e.g. a slot index vs a count).
enum Tag : uint64_t {
  kTagExpr = 0xE1,
  kTagConst = 0xE2,
  kTagOp = 0xE3,
  kTagSink = 0xE4,
  kTagPipeline = 0xE5,
  kTagStage = 0xE6,
  kTagDecl = 0xE7,
  kTagLike = 0xE8,
};

struct FingerprintBuilder {
  const QueryProgram& program;
  HashStream hash;
  std::vector<uint64_t> constants;
  std::vector<std::string> string_literals;

  explicit FingerprintBuilder(const QueryProgram& program)
      : program(program) {}

  /// Index of `bitmap` in the program's bitmap list (its binding-array
  /// slot). Unknown pointers (not owned by the program) are hashed by
  /// address, which safely makes such plans unshareable.
  void HashBitmap(const uint8_t* bitmap) {
    const auto& bitmaps = program.bitmaps();
    for (size_t i = 0; i < bitmaps.size(); ++i) {
      if (bitmaps[i]->data() == bitmap) {
        hash.U64(i);
        return;
      }
    }
    hash.U64(reinterpret_cast<uint64_t>(bitmap));
  }

  /// Index of `pred` in the program's LIKE-predicate list (its
  /// binding-array slot); the *pattern* is extracted as a string literal,
  /// not hashed — pattern-only variants share artifacts without patching
  /// because the matcher flows through the binding array.
  void HashLikePred(const LikePredicate* pred) {
    const auto& preds = program.like_predicates();
    for (size_t i = 0; i < preds.size(); ++i) {
      if (preds[i].get() == pred) {
        hash.U64(i);
        string_literals.push_back(pred->matcher.pattern());
        return;
      }
    }
    hash.U64(reinterpret_cast<uint64_t>(pred));
  }

  void HashExpr(const Expr& expr) {
    hash.U64(kTagExpr);
    hash.U64(static_cast<uint64_t>(expr.kind));
    hash.U64(static_cast<uint64_t>(expr.type));
    switch (expr.kind) {
      case ExprKind::kSlot:
        hash.I64(expr.slot);
        break;
      case ExprKind::kConstI64:
        hash.U64(kTagConst);
        constants.push_back(static_cast<uint64_t>(expr.i64_value));
        break;
      case ExprKind::kConstF64: {
        hash.U64(kTagConst);
        uint64_t bits;
        std::memcpy(&bits, &expr.f64_value, sizeof(bits));
        constants.push_back(bits);
        break;
      }
      case ExprKind::kBitmapTest:
        HashBitmap(expr.bitmap);
        break;
      case ExprKind::kLike:
        hash.U64(kTagLike);
        HashLikePred(expr.like_pred);
        break;
      default:
        break;
    }
    hash.U64(expr.children.size());
    for (const auto& child : expr.children) HashExpr(*child);
  }

  void HashPipeline(const PipelineSpec& spec) {
    hash.U64(kTagPipeline);
    hash.Str(spec.name);
    hash.I64(spec.source_table);
    hash.U64(spec.scan_columns.size());
    for (int c : spec.scan_columns) hash.I64(c);
    hash.U64(spec.ops.size());
    for (const PipelineOp& op : spec.ops) {
      hash.U64(kTagOp);
      hash.U64(op.index());
      if (const auto* filter = std::get_if<OpFilter>(&op)) {
        HashExpr(*filter->predicate);
      } else if (const auto* compute = std::get_if<OpCompute>(&op)) {
        HashExpr(*compute->expr);
      } else {
        const auto& probe = std::get<OpProbe>(op);
        hash.I64(probe.ht);
        hash.I64(probe.payload_slots);
        hash.U64(static_cast<uint64_t>(probe.kind));
        HashExpr(*probe.key);
      }
    }
    hash.U64(kTagSink);
    hash.U64(spec.sink.index());
    if (const auto* build = std::get_if<SinkBuild>(&spec.sink)) {
      hash.I64(build->ht);
      HashExpr(*build->key);
      hash.U64(build->payload.size());
      for (const auto& p : build->payload) HashExpr(*p);
    } else if (const auto* agg = std::get_if<SinkAgg>(&spec.sink)) {
      hash.I64(agg->agg);
      HashExpr(*agg->key);
      hash.U64(agg->items.size());
      for (const AggItem& item : agg->items) {
        hash.U64(static_cast<uint64_t>(item.kind));
        hash.U64(item.checked ? 1 : 0);
        hash.U64(item.value != nullptr ? 1 : 0);
        if (item.value != nullptr) HashExpr(*item.value);
      }
    } else {
      const auto& out = std::get<SinkOutput>(spec.sink);
      hash.I64(out.output);
      hash.U64(out.values.size());
      for (const auto& v : out.values) HashExpr(*v);
    }
  }
};

/// Sentinel constant for global constant index `i`: a distinctive high
/// pattern no real query literal or structural codegen constant uses, with
/// the index folded in so every sentinel is unique.
uint64_t ConstantSentinel(uint32_t i) {
  return 0x5EA7C0DE00000000ULL | (0xA0000ULL + i);
}

/// Replaces the non-pinned constants of `expr` (preorder, same traversal as
/// FingerprintBuilder) with sentinels. `next` is the running global index,
/// `pinned` is indexed by local position (global - `base`).
struct SentinelRewriter {
  uint32_t base;
  const std::vector<bool>& pinned;
  uint32_t next;

  void Visit(Expr* expr) {
    if (expr->kind == ExprKind::kConstI64) {
      if (!pinned[next - base]) {
        expr->i64_value = static_cast<int64_t>(ConstantSentinel(next));
      }
      ++next;
    } else if (expr->kind == ExprKind::kConstF64) {
      if (!pinned[next - base]) {
        uint64_t bits = ConstantSentinel(next);
        std::memcpy(&expr->f64_value, &bits, sizeof(bits));
      }
      ++next;
    }
    for (auto& child : expr->children) Visit(child.get());
  }
};

void ReplaceSpecConstants(PipelineSpec* spec, uint32_t first_index,
                          const std::vector<bool>& pinned) {
  SentinelRewriter rw{first_index, pinned, first_index};
  for (PipelineOp& op : spec->ops) {
    if (auto* filter = std::get_if<OpFilter>(&op)) {
      rw.Visit(filter->predicate.get());
    } else if (auto* compute = std::get_if<OpCompute>(&op)) {
      rw.Visit(compute->expr.get());
    } else {
      rw.Visit(std::get<OpProbe>(op).key.get());
    }
  }
  if (auto* build = std::get_if<SinkBuild>(&spec->sink)) {
    rw.Visit(build->key.get());
    for (auto& p : build->payload) rw.Visit(p.get());
  } else if (auto* agg = std::get_if<SinkAgg>(&spec->sink)) {
    rw.Visit(agg->key.get());
    for (AggItem& item : agg->items) {
      if (item.value != nullptr) rw.Visit(item.value.get());
    }
  } else {
    for (auto& v : std::get<SinkOutput>(spec->sink).values) {
      rw.Visit(v.get());
    }
  }
}

/// Everything but the constant-pool and literal-pool *values* must match
/// for the sentinel diff to be meaningful (literal-pool entries carry the
/// immediates of br_*_imm superinstructions, which differ between the
/// sentinel and real translations; BuildConstantPatchTable verifies the
/// non-immediate entries — callee addresses — value by value).
bool StructurallyEqual(const BcProgram& a, const BcProgram& b) {
  if (a.code.size() != b.code.size() ||
      a.constant_pool.size() != b.constant_pool.size() ||
      a.literal_pool.size() != b.literal_pool.size() ||
      a.arg_offsets != b.arg_offsets ||
      a.register_file_size != b.register_file_size) {
    return false;
  }
  if (!a.code.empty() &&
      std::memcmp(a.code.data(), b.code.data(),
                  a.code.size() * sizeof(BcInstruction)) != 0) {
    return false;
  }
  for (size_t i = 0; i < a.constant_pool.size(); ++i) {
    if (a.constant_pool[i].slot != b.constant_pool[i].slot) return false;
  }
  return true;
}

}  // namespace

PlanFingerprint FingerprintProgram(const QueryProgram& program) {
  PlanFingerprint fp;
  fp.plan_name = program.name();
  FingerprintBuilder builder(program);
  HashStream& h = builder.hash;

  h.Str(program.name());

  h.U64(kTagDecl);
  h.U64(static_cast<uint64_t>(program.num_join_tables()));
  for (int j = 0; j < program.num_join_tables(); ++j) {
    h.U64(program.join_payload_slots(j));
  }
  // Aggregation/output declaration counts: they fix the binding-array
  // layout. Their payload shapes live in runtime objects built fresh per
  // context (never in cached artifacts), so counts suffice here; the plan
  // name above anchors the opaque engine steps that consume them.
  h.U64(static_cast<uint64_t>(program.num_agg_sets()));
  h.U64(static_cast<uint64_t>(program.num_outputs()));
  h.U64(program.bitmaps().size());
  // LIKE-predicate count fixes the binding-array layout like the bitmap
  // count does (LikePredSlot comes after BitmapSlot).
  h.U64(program.like_predicates().size());

  h.U64(kTagStage);
  h.U64(program.stages().size());
  for (const QueryProgram::Stage& stage : program.stages()) {
    h.I64(stage.pipeline);  // -1 marks an (opaque) engine step
  }

  for (const PipelineSpec& spec : program.pipelines()) {
    uint32_t begin = static_cast<uint32_t>(builder.constants.size());
    builder.HashPipeline(spec);
    // Anchor the scanned table's declaration: a base table by name, a temp
    // table by index (its schema is validated again at bind time).
    QueryProgram::TableDeclView decl = program.table_decl(spec.source_table);
    if (decl.base_name != nullptr) {
      h.Str(*decl.base_name);
    } else {
      h.I64(~decl.temp_index);
    }
    fp.pipeline_constants.emplace_back(
        begin, static_cast<uint32_t>(builder.constants.size()));
  }

  fp.structural_hash = h.digest();
  fp.constants = std::move(builder.constants);
  fp.string_literals = std::move(builder.string_literals);
  HashStream ch;
  for (uint64_t c : fp.constants) ch.U64(c);
  fp.constants_hash = ch.digest();
  return fp;
}

uint64_t ArtifactCacheKey(const PlanFingerprint& fingerprint,
                          const TranslatorOptions& options) {
  HashStream h;
  h.U64(fingerprint.structural_hash);
  h.U64(static_cast<uint64_t>(options.strategy));
  h.U64(static_cast<uint64_t>(options.window_size));
  h.U64((options.fuse_imm_cmp_branches ? 4 : 0) |
        (options.fuse_macro_ops ? 2 : 0) | (options.fuse_cmp_branches ? 1 : 0));
  return h.digest();
}

ConstantPatchTable BuildConstantPatchTable(
    const BcProgram& real, const PipelineSpec& spec,
    const PipelineBindings& bindings, const RuntimeRegistry& registry,
    const TranslatorOptions& translator_options,
    const std::vector<uint64_t>& constants, uint32_t begin, uint32_t end) {
  ConstantPatchTable table;
  if (begin == end) {
    table.patchable = true;  // nothing to patch: any constant vector fits
    return table;
  }

  // Constants the translator gives no private pool slot: 0/1 live in the
  // reserved registers, duplicated literals are interned into one slot.
  // They stay pinned — the sentinel translation keeps their real values so
  // the program structure matches, and a variant may only patch-share when
  // its pinned constants agree with the baseline.
  std::vector<bool> pinned(end - begin, false);
  for (uint32_t i = begin; i < end; ++i) {
    const uint64_t v = constants[i];
    if (v == 0 || v == 1) {
      pinned[i - begin] = true;
      continue;
    }
    for (uint32_t j = begin; j < end; ++j) {
      if (j != i && constants[j] == v) {
        pinned[i - begin] = true;
        break;
      }
    }
  }

  PipelineSpec sentinel_spec = ClonePipelineSpec(spec);
  ReplaceSpecConstants(&sentinel_spec, begin, pinned);
  GeneratedPipeline generated = GeneratePipeline(sentinel_spec, bindings);
  BcProgram sentinel = TranslateToBytecode(
      *generated.mod->module().getFunction("worker"), registry,
      translator_options);

  // Any remaining structural drift (constant folding, a literal colliding
  // with a codegen-internal constant, ...) makes the artifact exact-match
  // only — never incorrect.
  if (!StructurallyEqual(sentinel, real)) return table;

  table.pool_indices.reserve(end - begin);
  std::vector<bool> literal_claimed(sentinel.literal_pool.size(), false);
  for (uint32_t i = begin; i < end; ++i) {
    if (pinned[i - begin]) {
      table.pool_indices.push_back(ConstantPatchTable::kPinned);
      continue;
    }
    // A sentinel lands either in the constant pool (register operand) or in
    // the literal pool (immediate-operand superinstruction); finding it in
    // both, twice, or neither makes the pipeline exact-match only.
    const uint64_t wanted = ConstantSentinel(i);
    int found_const = -1;
    int found_lit = -1;
    for (size_t p = 0; p < sentinel.constant_pool.size(); ++p) {
      if (sentinel.constant_pool[p].value == wanted) {
        if (found_const >= 0) return table;  // duplicated sentinel: bail
        found_const = static_cast<int>(p);
      }
    }
    for (size_t p = 0; p < sentinel.literal_pool.size(); ++p) {
      if (sentinel.literal_pool[p] == wanted) {
        if (found_lit >= 0) return table;
        found_lit = static_cast<int>(p);
      }
    }
    if ((found_const >= 0) == (found_lit >= 0)) return table;
    // The real program must carry the genuine literal in the same slot.
    if (found_const >= 0) {
      if (real.constant_pool[static_cast<size_t>(found_const)].value !=
          constants[i]) {
        return table;
      }
      table.pool_indices.push_back(static_cast<uint32_t>(found_const));
    } else {
      if (real.literal_pool[static_cast<size_t>(found_lit)] != constants[i]) {
        return table;
      }
      literal_claimed[static_cast<size_t>(found_lit)] = true;
      table.pool_indices.push_back(static_cast<uint32_t>(found_lit) |
                                   ConstantPatchTable::kLiteralPoolBit);
    }
  }
  // Every literal-pool entry not claimed by a sentinel (callee addresses,
  // pinned immediates) must match exactly, or the programs differ in ways
  // the patch table cannot express.
  for (size_t p = 0; p < sentinel.literal_pool.size(); ++p) {
    if (!literal_claimed[p] && sentinel.literal_pool[p] != real.literal_pool[p]) {
      return table;
    }
  }
  table.patchable = true;
  return table;
}

}  // namespace aqe
